module bcwan

go 1.22
