// Quickstart: one complete BcWAN exchange (the paper's Fig. 3) on an
// in-process network — a provisioned sensor delivers a reading to its
// home recipient through a foreign gateway that is paid on-chain for the
// delivery.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bcwan"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A federation: one blockchain, one authorized miner (the paper's
	// EC2 master role), a treasury that funds actors.
	net, err := bcwan.NewNetwork(bcwan.DefaultNetworkConfig())
	if err != nil {
		return err
	}

	// A foreign gateway — operated by a different party than the data's
	// recipient, and paid per delivery.
	gw, err := net.NewGateway(bcwan.DefaultGatewayConfig())
	if err != nil {
		return err
	}

	// The recipient (home network): funded, and its @R → IP binding
	// published on-chain so any gateway can resolve it (§4.3).
	rcpt, err := net.NewRecipient("203.0.113.20:7000", bcwan.DefaultRecipientConfig())
	if err != nil {
		return err
	}
	fmt.Printf("recipient blockchain address @R: %s\n", rcpt.Address())
	fmt.Printf("recipient published IP binding:  %s\n\n", rcpt.NetAddr())

	// Provisioning phase (§4.4): the sensor gets the shared AES-256 key
	// K, its RSA-512 signing key Sk, and @R.
	sensor, err := rcpt.ProvisionSensor()
	if err != nil {
		return err
	}
	fmt.Printf("sensor %s provisioned\n\n", sensor.EUI())

	// The full Fig. 3 exchange: ephemeral key handout, double
	// encryption + signature, delivery, Listing-1 payment, claim
	// (revealing eSk on-chain), decryption.
	msg, err := net.RunExchange(sensor, gw, rcpt, []byte("21.5C;48%"))
	if err != nil {
		return err
	}

	fmt.Printf("recipient decrypted: %q (from sensor %s)\n", msg.Plaintext, msg.DevEUI)
	fmt.Printf("gateway balance after claim: %d units\n", gw.Wallet().Balance(net.Ledger().UTXO()))
	fmt.Printf("chain height: %d blocks\n", net.Chain().Height())
	return nil
}
