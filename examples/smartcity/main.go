// Smart-city scenario: the paper's motivating workload — a utility's
// metering fleet roams across gateways owned by other parties. Thirty
// sensors report readings through whichever of three foreign gateways is
// closest; every delivery is paid through the fair exchange, and the run
// ends with a per-gateway revenue statement — the incentive that The
// Things Network and PicoWAN lack (§3).
//
// Run with:
//
//	go run ./examples/smartcity
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bcwan"
)

const (
	sensors         = 30
	gateways        = 3
	readingsPerNode = 3
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net, err := bcwan.NewNetwork(bcwan.DefaultNetworkConfig())
	if err != nil {
		return err
	}

	// Three independently owned gateways.
	gws := make([]*bcwan.Gateway, gateways)
	for i := range gws {
		if gws[i], err = net.NewGateway(bcwan.DefaultGatewayConfig()); err != nil {
			return err
		}
	}

	// The utility's home network.
	rcpt, err := net.NewRecipient("203.0.113.30:7000", bcwan.DefaultRecipientConfig())
	if err != nil {
		return err
	}

	fleet := make([]*bcwan.Sensor, sensors)
	for i := range fleet {
		if fleet[i], err = rcpt.ProvisionSensor(); err != nil {
			return err
		}
	}
	fmt.Printf("provisioned %d meters; %d foreign gateways; recipient @R %s\n\n",
		sensors, gateways, rcpt.Address())

	rng := rand.New(rand.NewSource(42))
	delivered := 0
	perGateway := make([]int, gateways)
	for round := 0; round < readingsPerNode; round++ {
		for i, sensor := range fleet {
			// A moving meter reaches a different gateway per reading.
			g := rng.Intn(gateways)
			reading := fmt.Sprintf("kWh=%05.1f", 100+rng.Float64()*50)
			msg, err := net.RunExchange(sensor, gws[g], rcpt, []byte(reading))
			if err != nil {
				return fmt.Errorf("meter %d round %d: %w", i, round, err)
			}
			if string(msg.Plaintext) != reading {
				return fmt.Errorf("meter %d: corrupted reading %q", i, msg.Plaintext)
			}
			delivered++
			perGateway[g]++
		}
	}

	fmt.Printf("delivered %d readings across %d rounds\n\n", delivered, readingsPerNode)
	fmt.Println("gateway settlement (deliveries are paid, §4.1):")
	utxo := net.Ledger().UTXO()
	for i, gw := range gws {
		fmt.Printf("  gateway %d: %3d deliveries, balance %6d units\n",
			i, perGateway[i], gw.Wallet().Balance(utxo))
	}
	fmt.Printf("\nchain height: %d blocks, recipient balance: %d units\n",
		net.Chain().Height(), rcpt.Wallet().Balance(utxo))
	return nil
}
