// Attack scenario: the §6 discussion made executable. A malicious
// recipient double-spends its payment after the gateway reveals the
// ephemeral key with zero confirmations (the PoC policy), stealing the
// data; waiting one confirmation closes the hole at the cost of one block
// interval. The run also demonstrates the Listing-1 refund path: a
// payment whose gateway disappears is reclaimed after the time lock.
//
// Run with:
//
//	go run ./examples/attack
package main

import (
	"fmt"
	"log"
	"time"

	"bcwan/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("BcWAN double-spend exposure (§6): the gateway reveals eSk against")
	fmt.Println("an unconfirmed payment; a malicious recipient races a conflicting")
	fmt.Println("transaction to the miner.")
	fmt.Println()

	results := make([]*experiments.DoubleSpendResult, 0, 3)
	for _, confs := range []int64{0, 1, 6} {
		res, err := experiments.RunDoubleSpend(experiments.DoubleSpendConfig{
			Seed:              7,
			Trials:            20,
			WaitConfirmations: confs,
			RaceWinProb:       0.8, // aggressive, well-connected attacker
			Price:             100,
			BlockInterval:     15 * time.Second,
		})
		if err != nil {
			return err
		}
		results = append(results, res)
	}
	experiments.WriteDoubleSpend(log.Writer(), results)

	fmt.Println("With 0 confirmations the attacker steals roughly its race-win rate;")
	fmt.Println("with ≥1 confirmation on the permissioned chain the gateway never")
	fmt.Println("reveals eSk before being paid — at the price of one block interval")
	fmt.Println("of latency per confirmation (the paper quotes 6 conf × 10 min on")
	fmt.Println("Bitcoin as the reason it accepted the zero-confirmation risk).")
	fmt.Println()

	fmt.Println("Reputation alternative (§4.4) for contrast:")
	cmp := experiments.RunReputationComparison(7, 10, 0.3, 0.5, 5000, 100)
	experiments.WriteReputation(log.Writer(), cmp)
	return nil
}
