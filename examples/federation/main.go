// Federation economy: the paper's conclusion claims BcWAN lets "parties
// with a shared goal securely deploy a common network in a fair manner" —
// and that "parties that don't participate to the network aren't able to
// take advantage of foreign property". This example runs a closed economy
// of three companies, each operating gateways (earning) and sensors
// (spending), plus one free-rider with sensors but no gateway. After a few
// hundred exchanges the contributors' balances stay near equilibrium while
// the free-rider only drains — the incentive structure The Things Network
// and PicoWAN lack (§3).
//
// Run with:
//
//	go run ./examples/federation
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bcwan"
)

type company struct {
	name    string
	actor   *bcwan.Actor
	rcpt    *bcwan.Recipient
	sensors []*bcwan.Sensor
	spent   int
	earned  int
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net, err := bcwan.NewNetwork(bcwan.DefaultNetworkConfig())
	if err != nil {
		return err
	}

	specs := []struct {
		name     string
		gateways int
	}{
		{"acme-metering", 2},
		{"urbansense", 1},
		{"aquatrack", 1},
		{"freerider", 0}, // sensors only; contributes nothing
	}

	companies := make([]*company, 0, len(specs))
	var allGateways []*bcwan.Gateway
	for i, spec := range specs {
		c := &company{name: spec.name, actor: net.NewActor(spec.name)}
		for g := 0; g < spec.gateways; g++ {
			gw, err := c.actor.AddGateway(bcwan.DefaultGatewayConfig())
			if err != nil {
				return err
			}
			allGateways = append(allGateways, gw)
		}
		c.rcpt, err = net.NewRecipient(fmt.Sprintf("203.0.113.%d:7000", 40+i), bcwan.DefaultRecipientConfig())
		if err != nil {
			return err
		}
		for s := 0; s < 5; s++ {
			sensor, err := c.rcpt.ProvisionSensor()
			if err != nil {
				return err
			}
			c.sensors = append(c.sensors, sensor)
		}
		companies = append(companies, c)
	}

	// Every company's master gateway is where its own fleet would home;
	// roaming sensors use whoever is nearby — here, a random foreign
	// gateway.
	for _, c := range companies {
		if len(c.actor.Gateways()) == 0 {
			continue
		}
		master, err := c.actor.MasterGateway()
		if err != nil {
			return err
		}
		fmt.Printf("%-14s master gateway: %s\n", c.name, master.Wallet().Address())
	}
	fmt.Println()

	rng := rand.New(rand.NewSource(7))
	const rounds = 8
	for round := 0; round < rounds; round++ {
		for _, c := range companies {
			for _, sensor := range c.sensors {
				gw := allGateways[rng.Intn(len(allGateways))]
				reading := fmt.Sprintf("r%d", round)
				if _, err := net.RunExchange(sensor, gw, c.rcpt, []byte(reading)); err != nil {
					return fmt.Errorf("%s: %w", c.name, err)
				}
				c.spent++
			}
		}
	}

	fmt.Printf("after %d exchanges:\n\n", rounds*len(companies)*5)
	fmt.Printf("%-14s %9s %10s %12s %14s\n", "company", "gateways", "exchanges", "gw revenue", "net position")
	utxo := net.Ledger().UTXO()
	price := int(bcwan.DefaultGatewayConfig().Price)
	for _, c := range companies {
		revenue := 0
		for _, gw := range c.actor.Gateways() {
			revenue += int(gw.Wallet().Balance(utxo))
		}
		net := revenue - c.spent*price
		fmt.Printf("%-14s %9d %10d %12d %+14d\n",
			c.name, len(c.actor.Gateways()), c.spent, revenue, net)
	}
	fmt.Println("\ncontributors recoup their spending through deliveries; the")
	fmt.Println("free-rider can only pay — it cannot 'take advantage of foreign")
	fmt.Println("property' without contributing (paper, conclusion).")
	return nil
}
