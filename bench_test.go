// Benchmarks regenerating the paper's evaluation, one per table/figure
// (see DESIGN.md §2 for the index). Each bench runs a scaled experiment
// per iteration and reports the headline quantity the paper's figure
// shows via b.ReportMetric — mean latency for Figs. 5/6, the message
// budget for the §5.2 setup, loss rates for the §6/§4.4 ablations.
//
// Paper-scale numbers (2000 exchanges, 5×30 sensors) are produced by
// `go run ./cmd/bcwan-bench`; these benches use reduced populations so
// `go test -bench=.` completes in minutes.
package bcwan_test

import (
	"crypto/rand"
	"fmt"
	"testing"
	"time"

	"bcwan/internal/bccrypto"
	"bcwan/internal/experiments"
	"bcwan/internal/lora"
)

// benchConfig scales the paper setup down for testing.B iteration.
func benchConfig(base experiments.Config) experiments.Config {
	base.Gateways = 2
	base.SensorsPerGateway = 5
	base.Exchanges = 40
	return base
}

// reportLatency publishes the figure's headline metrics.
func reportLatency(b *testing.B, res *experiments.Result) {
	b.Helper()
	b.ReportMetric(res.Summary.Mean.Seconds(), "s-mean/exchange")
	b.ReportMetric(res.Summary.Median.Seconds(), "s-median/exchange")
	b.ReportMetric(float64(res.Failed), "failed")
}

// BenchmarkFig4MessageFormat regenerates the Fig. 4 arithmetic: the
// 34-byte AES frame and the 128-byte double-encryption+signature payload.
func BenchmarkFig4MessageFormat(b *testing.B) {
	key := make([]byte, bccrypto.AESKeySize)
	eKey, err := bccrypto.GenerateRSA512(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	nodeKey, err := bccrypto.GenerateRSA512(rand.Reader)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame, err := bccrypto.EncryptFrame(rand.Reader, key, []byte("21.5C"))
		if err != nil {
			b.Fatal(err)
		}
		if len(frame) != bccrypto.CanonicalFrameLen {
			b.Fatalf("frame = %d B, want %d (Fig. 4)", len(frame), bccrypto.CanonicalFrameLen)
		}
		em, err := bccrypto.EncryptRSA512(rand.Reader, eKey.Public(), frame)
		if err != nil {
			b.Fatal(err)
		}
		sig := bccrypto.SignRSA512(nodeKey, em)
		if len(em)+len(sig) != 128 {
			b.Fatalf("payload = %d B, want 128 (§5.1)", len(em)+len(sig))
		}
	}
	b.ReportMetric(float64(bccrypto.CanonicalFrameLen), "frame-bytes")
	b.ReportMetric(128, "payload-bytes")
}

// BenchmarkFig5LatencyNoVerification regenerates Fig. 5: exchange latency
// with block verification disabled (paper mean 1.604 s).
func BenchmarkFig5LatencyNoVerification(b *testing.B) {
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(experiments.Fig5Config())
		cfg.Seed = int64(i + 1)
		res, err := experiments.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportLatency(b, last)
}

// BenchmarkFig6LatencyWithVerification regenerates Fig. 6: exchange
// latency with the Multichain verification stall (paper mean 30.241 s).
func BenchmarkFig6LatencyWithVerification(b *testing.B) {
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(experiments.Fig6Config())
		cfg.Seed = int64(i + 1)
		res, err := experiments.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportLatency(b, last)
}

// BenchmarkSetupDutyCycleBudget regenerates the §5.2 capacity figure:
// the duty-cycle message budget at SF7 (paper: 183 msg/sensor/hour).
func BenchmarkSetupDutyCycleBudget(b *testing.B) {
	var budget float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.BudgetTable(132, 0.01)
		if err != nil {
			b.Fatal(err)
		}
		budget = rows[0].MsgsPerHour
	}
	b.ReportMetric(budget, "msgs-per-hour-SF7")
}

// BenchmarkAblationConfirmations regenerates the §6 latency cost of the
// confirmation policy: each confirmation adds about one block interval.
func BenchmarkAblationConfirmations(b *testing.B) {
	var added time.Duration
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(experiments.Fig5Config())
		cfg.Exchanges = 10
		results, err := experiments.SweepConfirmations(cfg, []int64{0, 1})
		if err != nil {
			b.Fatal(err)
		}
		added = results[1].Summary.Mean - results[0].Summary.Mean
	}
	b.ReportMetric(added.Seconds(), "s-added-per-confirmation")
}

// BenchmarkAblationDoubleSpend regenerates the §6 attack outcome: gateway
// loss rate with zero confirmations versus one.
func BenchmarkAblationDoubleSpend(b *testing.B) {
	var loss0, loss1 float64
	for i := 0; i < b.N; i++ {
		for _, confs := range []int64{0, 1} {
			res, err := experiments.RunDoubleSpend(experiments.DoubleSpendConfig{
				Seed:              int64(i + 1),
				Trials:            10,
				WaitConfirmations: confs,
				RaceWinProb:       0.5,
				Price:             100,
				BlockInterval:     15 * time.Second,
			})
			if err != nil {
				b.Fatal(err)
			}
			if confs == 0 {
				loss0 = res.LossRate
			} else {
				loss1 = res.LossRate
			}
		}
	}
	b.ReportMetric(loss0*100, "loss-pct-0conf")
	b.ReportMetric(loss1*100, "loss-pct-1conf")
}

// BenchmarkAblationReputation regenerates the §4.4 comparison: the
// reputation baseline's payment loss rate (BcWAN's is structurally 0).
func BenchmarkAblationReputation(b *testing.B) {
	var loss float64
	for i := 0; i < b.N; i++ {
		cmp := experiments.RunReputationComparison(int64(i+1), 10, 0.3, 0.5, 5000, 100)
		loss = cmp.Reputation.LossRate
	}
	b.ReportMetric(loss*100, "reputation-loss-pct")
	b.ReportMetric(0, "bcwan-loss-pct")
}

// BenchmarkAblationBlockInterval regenerates the block-interval sweep
// (verification on): longer intervals mean fewer stalls.
func BenchmarkAblationBlockInterval(b *testing.B) {
	var short, long time.Duration
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(experiments.Fig6Config())
		cfg.Exchanges = 20
		results, err := experiments.SweepBlockInterval(cfg, []time.Duration{15 * time.Second, 60 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		short, long = results[0].Summary.Mean, results[1].Summary.Mean
	}
	b.ReportMetric(short.Seconds(), "s-mean-15s-interval")
	b.ReportMetric(long.Seconds(), "s-mean-60s-interval")
}

// BenchmarkAblationGatewayCount regenerates the gateway-count sweep: the
// P2P design keeps latency flat as the federation grows.
func BenchmarkAblationGatewayCount(b *testing.B) {
	var small, large time.Duration
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(experiments.Fig5Config())
		cfg.Exchanges = 20
		results, err := experiments.SweepGateways(cfg, []int{2, 8})
		if err != nil {
			b.Fatal(err)
		}
		small, large = results[0].Summary.Mean, results[1].Summary.Mean
	}
	b.ReportMetric(small.Seconds(), "s-mean-2gw")
	b.ReportMetric(large.Seconds(), "s-mean-8gw")
}

// BenchmarkAblationSpreadingFactor regenerates the SF sweep: SF8 roughly
// doubles airtime over SF7; SF9+ cannot carry the 148-byte payload.
func BenchmarkAblationSpreadingFactor(b *testing.B) {
	var sf7, sf8 time.Duration
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(experiments.Fig5Config())
		cfg.Exchanges = 20
		results, err := experiments.SweepSpreadingFactor(cfg, []lora.SpreadingFactor{lora.SF7, lora.SF8})
		if err != nil {
			b.Fatal(err)
		}
		sf7, sf8 = results[0].Summary.Mean, results[1].Summary.Mean
	}
	b.ReportMetric(sf7.Seconds(), "s-mean-SF7")
	b.ReportMetric(sf8.Seconds(), "s-mean-SF8")
}

// BenchmarkLegacyBaseline regenerates the centralized Fig. 1 latency the
// discussion (§6) compares against: BcWAN's overhead stays "a few
// seconds" over the trusted architecture.
func BenchmarkLegacyBaseline(b *testing.B) {
	var legacy experiments.LatencyStats
	for i := 0; i < b.N; i++ {
		stats, err := experiments.LegacyLatency(benchConfig(experiments.Fig5Config()), 1000)
		if err != nil {
			b.Fatal(err)
		}
		legacy = stats
	}
	b.ReportMetric(legacy.Mean.Seconds(), "s-mean-legacy")
}

// BenchmarkBlockConnect regenerates the validation-pipeline ablation:
// block-connect throughput (txs/sec) as VerifyWorkers sweeps 0→8 with a
// cold signature cache, plus the warm mempool-primed path. On a
// single-CPU host the worker sweep is flat and the cache is the win;
// with more cores the cold sweep shows the pool's speedup too.
func BenchmarkBlockConnect(b *testing.B) {
	cfg := experiments.BlockConnectConfig{
		Blocks: 4, TxsPerBlock: 12, Workers: []int{0, 1, 2, 4, 8},
	}
	var results []*experiments.BlockConnectResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = experiments.RunBlockConnect(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range results {
		name := fmt.Sprintf("txs-per-sec-%dw-cold", r.Workers)
		if r.Warm {
			name = fmt.Sprintf("txs-per-sec-%dw-warm", r.Workers)
		}
		b.ReportMetric(r.TxsPerSec, name)
	}
}
