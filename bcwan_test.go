package bcwan

import (
	"errors"
	"testing"
)

func testNetwork(t *testing.T) *Network {
	t.Helper()
	net, err := NewNetwork(DefaultNetworkConfig())
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestQuickstartFlow(t *testing.T) {
	net := testNetwork(t)
	gw, err := net.NewGateway(DefaultGatewayConfig())
	if err != nil {
		t.Fatal(err)
	}
	rcpt, err := net.NewRecipient("192.0.2.9:7000", DefaultRecipientConfig())
	if err != nil {
		t.Fatal(err)
	}
	sensor, err := rcpt.ProvisionSensor()
	if err != nil {
		t.Fatal(err)
	}

	msg, err := net.RunExchange(sensor, gw, rcpt, []byte("21.5C"))
	if err != nil {
		t.Fatal(err)
	}
	if string(msg.Plaintext) != "21.5C" {
		t.Fatalf("plaintext = %q", msg.Plaintext)
	}
	// The gateway earned the price minus its claim fee.
	if got := gw.Wallet().Balance(net.Ledger().UTXO()); got == 0 {
		t.Fatal("gateway not paid")
	}
}

func TestMultipleSensorsAndGateways(t *testing.T) {
	net := testNetwork(t)
	rcpt, err := net.NewRecipient("192.0.2.9:7000", DefaultRecipientConfig())
	if err != nil {
		t.Fatal(err)
	}
	gws := make([]*Gateway, 2)
	for i := range gws {
		gws[i], err = net.NewGateway(DefaultGatewayConfig())
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		sensor, err := rcpt.ProvisionSensor()
		if err != nil {
			t.Fatal(err)
		}
		// Roaming: alternate gateways.
		msg, err := net.RunExchange(sensor, gws[i%2], rcpt, []byte{byte('0' + i)})
		if err != nil {
			t.Fatalf("exchange %d: %v", i, err)
		}
		if msg.Plaintext[0] != byte('0'+i) {
			t.Fatalf("exchange %d plaintext = %q", i, msg.Plaintext)
		}
	}
}

func TestSensorsGetDistinctEUIs(t *testing.T) {
	net := testNetwork(t)
	rcpt, err := net.NewRecipient("192.0.2.9:7000", DefaultRecipientConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, err := rcpt.ProvisionSensor()
	if err != nil {
		t.Fatal(err)
	}
	b, err := rcpt.ProvisionSensor()
	if err != nil {
		t.Fatal(err)
	}
	if a.EUI() == b.EUI() {
		t.Fatal("duplicate EUIs")
	}
}

func TestRecipientAddressResolvable(t *testing.T) {
	net := testNetwork(t)
	rcpt, err := net.NewRecipient("198.51.100.4:7001", DefaultRecipientConfig())
	if err != nil {
		t.Fatal(err)
	}
	binding, err := net.Directory().Lookup(rcpt.Wallet().PubKeyHash())
	if err != nil {
		t.Fatal(err)
	}
	if binding.NetAddr != "198.51.100.4:7001" {
		t.Fatalf("resolved %q", binding.NetAddr)
	}
	if rcpt.Address() == "" {
		t.Fatal("empty @R address")
	}
}

func TestExchangeFailureWrapsSentinel(t *testing.T) {
	net := testNetwork(t)
	gw, err := net.NewGateway(DefaultGatewayConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Recipient that refuses the price.
	cfg := DefaultRecipientConfig()
	cfg.MaxPrice = 0
	rcpt, err := net.NewRecipient("192.0.2.9:7000", cfg)
	if err != nil {
		t.Fatal(err)
	}
	sensor, err := rcpt.ProvisionSensor()
	if err != nil {
		t.Fatal(err)
	}
	_, err = net.RunExchange(sensor, gw, rcpt, []byte("x"))
	if !errors.Is(err, ErrExchangeIncomplete) {
		t.Fatalf("err = %v, want ErrExchangeIncomplete", err)
	}
}

func TestNetworkDefaultsApplied(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if net.Chain().Params().BlockInterval <= 0 {
		t.Fatal("block interval default not applied")
	}
	if _, err := net.MineBlock(); err != nil {
		t.Fatal(err)
	}
}

func TestFundMovesTreasuryMoney(t *testing.T) {
	net := testNetwork(t)
	rcpt, err := net.NewRecipient("192.0.2.9:7000", DefaultRecipientConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Funded with 1,000,000, minus the 1-unit fee of the IP-binding
	// publish transaction.
	if got := rcpt.Wallet().Balance(net.Ledger().UTXO()); got != 1_000_000-1 {
		t.Fatalf("recipient balance = %d, want 999999", got)
	}
}

func TestActorMasterGatewayElection(t *testing.T) {
	net := testNetwork(t)
	actor := net.NewActor("acme")
	if _, err := actor.MasterGateway(); err == nil {
		t.Fatal("election with no gateways succeeded")
	}
	for i := 0; i < 3; i++ {
		if _, err := actor.AddGateway(DefaultGatewayConfig()); err != nil {
			t.Fatal(err)
		}
	}
	master, err := actor.MasterGateway()
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic: repeated elections agree.
	again, err := actor.MasterGateway()
	if err != nil {
		t.Fatal(err)
	}
	if master != again {
		t.Fatal("election not deterministic")
	}
	// The winner has the smallest pubkey hash.
	best := master.Wallet().PubKeyHash()
	for _, gw := range actor.Gateways() {
		h := gw.Wallet().PubKeyHash()
		for i := range h {
			if h[i] != best[i] {
				if h[i] < best[i] {
					t.Fatal("election did not pick the smallest hash")
				}
				break
			}
		}
	}
	if len(actor.Gateways()) != 3 {
		t.Fatalf("gateways = %d", len(actor.Gateways()))
	}
}

func TestRunExchangeWithConfirmationPolicy(t *testing.T) {
	net := testNetwork(t)
	cfg := DefaultGatewayConfig()
	cfg.WaitConfirmations = 1
	gw, err := net.NewGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rcpt, err := net.NewRecipient("192.0.2.9:7000", DefaultRecipientConfig())
	if err != nil {
		t.Fatal(err)
	}
	sensor, err := rcpt.ProvisionSensor()
	if err != nil {
		t.Fatal(err)
	}
	// RunExchange claims before mining, so a confirmation-requiring
	// gateway refuses: the public API surfaces the incomplete exchange.
	if _, err := net.RunExchange(sensor, gw, rcpt, []byte("x")); !errors.Is(err, ErrExchangeIncomplete) {
		t.Fatalf("err = %v, want ErrExchangeIncomplete", err)
	}
}
