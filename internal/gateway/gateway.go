// Package gateway implements the BcWAN foreign gateway: it serves
// ephemeral RSA-512 keys to nearby nodes over LoRa, forwards their
// encrypted messages to the right recipient by resolving @R in the
// blockchain, and claims its payment by revealing the ephemeral private
// key (Fig. 3 steps 1–2, 6–7 and 10).
package gateway

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"bcwan/internal/bccrypto"
	"bcwan/internal/chain"
	"bcwan/internal/device"
	"bcwan/internal/fairex"
	"bcwan/internal/lora"
	"bcwan/internal/registry"
	"bcwan/internal/telemetry"
	"bcwan/internal/wallet"
)

// Config tunes a gateway's exchange policy.
type Config struct {
	// Price is the amount asked per delivery.
	Price uint64
	// RefundWindow is the refund lock offered to buyers, in blocks
	// (Listing 1 uses 100).
	RefundWindow int64
	// WaitConfirmations is how many confirmations of the payment the
	// gateway requires before revealing eSk. The paper's PoC uses 0
	// (discussed as a deliberate double-spend exposure in §6).
	WaitConfirmations int64
	// ClaimFee is the fee paid by the claim transaction.
	ClaimFee uint64
}

// DefaultConfig mirrors the proof of concept: no confirmation wait.
func DefaultConfig() Config {
	return Config{Price: 100, RefundWindow: 100, WaitConfirmations: 0, ClaimFee: 1}
}

// Gateway errors.
var (
	// ErrUnknownDevice reports a data frame from a device that never
	// requested a key.
	ErrUnknownDevice = errors.New("gateway: no pending ephemeral key for device")
	// ErrPaymentNotVisible reports a payment txid the gateway cannot
	// see in its mempool or chain.
	ErrPaymentNotVisible = errors.New("gateway: payment transaction not visible")
	// ErrNotEnoughConfirmations reports a payment below the configured
	// confirmation threshold.
	ErrNotEnoughConfirmations = errors.New("gateway: payment lacks confirmations")
)

// pendingExchange is the per-message state between key handout and claim.
type pendingExchange struct {
	key *bccrypto.RSA512PrivateKey
	pub []byte
	// issued is when the key was handed out; zero unless the gateway is
	// instrumented (it only feeds the key-disclosure histogram).
	issued time.Time
}

// exchangeKey identifies one pending exchange: the ephemeral pair is
// minted per key request, and the device echoes the request counter in
// its data frame so retransmitted requests cannot desynchronize the pair.
type exchangeKey struct {
	eui     lora.DevEUI
	counter uint32
}

// maxPending bounds abandoned exchange state.
const maxPending = 10_000

// Gateway is one foreign gateway.
type Gateway struct {
	cfg    Config
	wallet *wallet.Wallet
	ledger fairex.Ledger
	dir    *registry.Directory
	random io.Reader

	mu           sync.Mutex
	pending      map[exchangeKey]*pendingExchange
	pendingOrder []exchangeKey
	metrics      *gatewayMetrics

	// Stats counts protocol outcomes.
	Stats Stats
}

// Stats aggregates gateway outcomes for the experiment reports.
type Stats struct {
	KeysIssued     uint64
	Deliveries     uint64
	Claims         uint64
	FailedClaims   uint64
	UnknownDevices uint64
	// OffChainClaims counts exchanges settled through a payment-channel
	// update instead of an on-chain claim transaction.
	OffChainClaims uint64
}

// New creates a gateway.
func New(cfg Config, w *wallet.Wallet, ledger fairex.Ledger, dir *registry.Directory, random io.Reader) *Gateway {
	return &Gateway{
		cfg:     cfg,
		wallet:  w,
		ledger:  ledger,
		dir:     dir,
		random:  random,
		pending: make(map[exchangeKey]*pendingExchange),
	}
}

// Wallet returns the gateway's wallet.
func (g *Gateway) Wallet() *wallet.Wallet { return g.wallet }

// Price returns the amount the gateway asks per delivery.
func (g *Gateway) Price() uint64 { return g.cfg.Price }

// Instrument registers exchange metrics in reg (started/settled/failed
// counters and key-disclosure latency). Call before concurrent use; a
// nil registry is a no-op.
func (g *Gateway) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.metrics = newGatewayMetrics(reg)
}

// HandleKeyRequest performs Fig. 3 steps 1–2: mint an ephemeral RSA-512
// pair for this message and answer with the public half.
func (g *Gateway) HandleKeyRequest(f *lora.Frame) (*lora.Frame, error) {
	if f.Type != lora.FrameKeyRequest {
		return nil, fmt.Errorf("gateway: frame type %d is not a key request", f.Type)
	}
	key, err := bccrypto.GenerateRSA512(g.random)
	if err != nil {
		return nil, fmt.Errorf("gateway: ephemeral keygen: %w", err)
	}
	pub := bccrypto.MarshalRSA512PublicKey(key.Public())
	ek := exchangeKey{eui: f.DevEUI, counter: f.Counter}
	g.mu.Lock()
	if _, exists := g.pending[ek]; !exists {
		g.pendingOrder = append(g.pendingOrder, ek)
	}
	pend := &pendingExchange{key: key, pub: pub}
	if g.metrics != nil {
		pend.issued = time.Now()
		g.metrics.exchangesStarted.Inc()
	}
	g.pending[ek] = pend
	if len(g.pendingOrder) > maxPending {
		evict := g.pendingOrder[0]
		g.pendingOrder = g.pendingOrder[1:]
		delete(g.pending, evict)
	}
	g.Stats.KeysIssued++
	g.mu.Unlock()
	// The response echoes the request counter; the device repeats it in
	// its data frame to name this exchange.
	return &lora.Frame{
		Type:    lora.FrameKeyResponse,
		DevEUI:  f.DevEUI,
		Counter: f.Counter,
		Payload: pub,
	}, nil
}

// HandleData performs Fig. 3 steps 6–7: decode (Em ‖ Sig ‖ @R), resolve
// the recipient's IP in the blockchain directory, and produce the
// Delivery to send over TCP together with the destination address.
func (g *Gateway) HandleData(f *lora.Frame) (*fairex.Delivery, string, error) {
	if f.Type != lora.FrameData {
		return nil, "", fmt.Errorf("gateway: frame type %d is not a data frame", f.Type)
	}
	payload, err := device.DecodeDataPayload(f.Payload)
	if err != nil {
		return nil, "", fmt.Errorf("gateway: %w", err)
	}
	ek := exchangeKey{eui: f.DevEUI, counter: f.Counter}
	g.mu.Lock()
	pend, ok := g.pending[ek]
	g.mu.Unlock()
	if !ok {
		g.mu.Lock()
		g.Stats.UnknownDevices++
		g.mu.Unlock()
		return nil, "", fmt.Errorf("%w: %s (exchange %d)", ErrUnknownDevice, f.DevEUI, f.Counter)
	}
	binding, err := g.dir.Lookup(payload.Recipient)
	if err != nil {
		return nil, "", fmt.Errorf("gateway: resolve @R %x: %w", payload.Recipient, err)
	}
	d := &fairex.Delivery{
		DevEUI:            f.DevEUI,
		Exchange:          f.Counter,
		Em:                payload.Em,
		EPk:               pend.pub,
		Sig:               payload.Sig,
		GatewayPubKeyHash: g.wallet.PubKeyHash(),
		Price:             g.cfg.Price,
		RefundWindow:      g.cfg.RefundWindow,
	}
	g.mu.Lock()
	g.Stats.Deliveries++
	g.mu.Unlock()
	return d, binding.NetAddr, nil
}

// VerifyAndClaim performs Fig. 3 step 10: after the recipient announces
// its payment transaction, check it honors the terms, optionally wait for
// confirmations, then build and submit the claim transaction whose
// unlocking script reveals eSk.
func (g *Gateway) VerifyAndClaim(devEUI lora.DevEUI, exchange uint32, paymentID chain.Hash, offerHeight int64) (*chain.Tx, error) {
	ek := exchangeKey{eui: devEUI, counter: exchange}
	g.mu.Lock()
	pend, ok := g.pending[ek]
	g.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s (exchange %d)", ErrUnknownDevice, devEUI, exchange)
	}

	payment, visible := g.ledger.PendingTx(paymentID)
	confirmed := false
	if !visible {
		var conf *chain.Tx
		conf, _, confirmed = g.ledger.FindTx(paymentID)
		if !confirmed {
			return nil, fmt.Errorf("%w: %s", ErrPaymentNotVisible, paymentID)
		}
		payment = conf
	}

	// Re-derive the delivery terms to validate the payment.
	d := &fairex.Delivery{
		DevEUI:            devEUI,
		Exchange:          exchange,
		EPk:               pend.pub,
		GatewayPubKeyHash: g.wallet.PubKeyHash(),
		Price:             g.cfg.Price,
		RefundWindow:      g.cfg.RefundWindow,
	}
	if err := fairex.CheckPayment(d, payment, offerHeight); err != nil {
		g.bumpFailed()
		return nil, err
	}

	if g.cfg.WaitConfirmations > 0 {
		if got := g.ledger.Confirmations(paymentID); got < g.cfg.WaitConfirmations {
			return nil, fmt.Errorf("%w: have %d, want %d",
				ErrNotEnoughConfirmations, got, g.cfg.WaitConfirmations)
		}
	}

	claim, err := g.wallet.BuildClaim(
		chain.OutPoint{TxID: paymentID, Index: 0}, payment.Outputs[0], pend.key, g.cfg.ClaimFee)
	if err != nil {
		g.bumpFailed()
		return nil, fmt.Errorf("gateway: build claim: %w", err)
	}
	if err := g.ledger.Submit(claim); err != nil {
		g.bumpFailed()
		return nil, fmt.Errorf("gateway: submit claim: %w", err)
	}
	g.mu.Lock()
	g.Stats.Claims++
	delete(g.pending, ek)
	if g.metrics != nil {
		g.metrics.exchangesSettled.Inc()
		if !pend.issued.IsZero() {
			g.metrics.keyDisclosureSeconds.ObserveSince(pend.issued)
		}
	}
	g.mu.Unlock()
	return claim, nil
}

// DiscloseKey settles an exchange off-chain: it returns the marshaled
// ephemeral private key for a pending exchange and retires it. The caller
// (the channel manager) invokes this only after a channel update covering
// the exchange price has been verified, countersigned, and persisted —
// the off-chain analogue of the claim transaction revealing eSk.
func (g *Gateway) DiscloseKey(devEUI lora.DevEUI, exchange uint32) ([]byte, error) {
	ek := exchangeKey{eui: devEUI, counter: exchange}
	g.mu.Lock()
	defer g.mu.Unlock()
	pend, ok := g.pending[ek]
	if !ok {
		return nil, fmt.Errorf("%w: %s (exchange %d)", ErrUnknownDevice, devEUI, exchange)
	}
	delete(g.pending, ek)
	g.Stats.OffChainClaims++
	if g.metrics != nil {
		g.metrics.exchangesSettled.Inc()
		if !pend.issued.IsZero() {
			g.metrics.keyDisclosureSeconds.ObserveSince(pend.issued)
		}
	}
	return bccrypto.MarshalRSA512PrivateKey(pend.key), nil
}

func (g *Gateway) bumpFailed() {
	g.mu.Lock()
	g.Stats.FailedClaims++
	if g.metrics != nil {
		g.metrics.exchangesFailed.Inc()
	}
	g.mu.Unlock()
}
