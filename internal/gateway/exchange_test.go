package gateway_test

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"
	"time"

	"bcwan/internal/bccrypto"
	"bcwan/internal/chain"
	"bcwan/internal/device"
	"bcwan/internal/fairex"
	"bcwan/internal/gateway"
	"bcwan/internal/lora"
	"bcwan/internal/recipient"
	"bcwan/internal/registry"
	"bcwan/internal/script"
	"bcwan/internal/wallet"
)

// world wires the full Fig. 3 cast: a provisioned sensor, a foreign
// gateway, a recipient, a shared chain with a single miner, and the
// on-chain IP directory.
type world struct {
	t         *testing.T
	chain     *chain.Chain
	pool      *chain.Mempool
	miner     *chain.Miner
	ledger    *fairex.Node
	dir       *registry.Directory
	dev       *device.Device
	gw        *gateway.Gateway
	rcpt      *recipient.Recipient
	nodeKey   *bccrypto.RSA512PrivateKey
	sharedKey []byte
	now       time.Time
}

const recipientFunds = 1_000_000

func newWorld(t *testing.T, gwCfg gateway.Config, rcptCfg recipient.Config) *world {
	t.Helper()
	gwWallet, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	rcptWallet, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	minerW, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}

	genesis := chain.GenesisBlock(map[[20]byte]uint64{
		rcptWallet.PubKeyHash(): recipientFunds,
	})
	c, err := chain.New(chain.DefaultParams(), genesis)
	if err != nil {
		t.Fatal(err)
	}
	c.AuthorizeMiner(minerW.PublicBytes())
	pool := chain.NewMempool()
	ledger := &fairex.Node{Chain: c, Pool: pool}

	dir := registry.NewDirectory()
	dir.Attach(c)

	// Sensor provisioning: shared K, node signing key, @R.
	sharedKey := make([]byte, bccrypto.AESKeySize)
	if _, err := rand.Read(sharedKey); err != nil {
		t.Fatal(err)
	}
	nodeKey, err := bccrypto.GenerateRSA512(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	eui := lora.DevEUI{0xde, 0xca, 0xfb, 0xad, 0, 0, 0, 1}
	dev, err := device.New(device.Provisioning{
		DevEUI:        eui,
		SharedKey:     sharedKey,
		SigningKey:    nodeKey,
		RecipientAddr: rcptWallet.PubKeyHash(),
	}, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}

	rcpt := recipient.New(rcptCfg, rcptWallet, ledger, rand.Reader)
	rcpt.Provision(eui, recipient.DeviceInfo{SharedKey: sharedKey, NodePub: nodeKey.Public()})

	w := &world{
		t:         t,
		chain:     c,
		pool:      pool,
		miner:     chain.NewMiner(minerW.Key(), c, pool, rand.Reader),
		ledger:    ledger,
		dir:       dir,
		dev:       dev,
		gw:        gateway.New(gwCfg, gwWallet, ledger, dir, rand.Reader),
		rcpt:      rcpt,
		nodeKey:   nodeKey,
		sharedKey: sharedKey,
		now:       time.Date(2018, 12, 10, 0, 0, 0, 0, time.UTC),
	}

	// The recipient publishes its IP binding on-chain (§4.3).
	pub, err := registry.BuildPublish(rcptWallet, c.UTXO(), "192.0.2.50:7100", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ledger.Submit(pub); err != nil {
		t.Fatal(err)
	}
	w.mine()
	return w
}

func (w *world) mine() *chain.Block {
	w.t.Helper()
	w.now = w.now.Add(w.chain.Params().BlockInterval)
	b, err := w.miner.Mine(w.now)
	if err != nil {
		w.t.Fatal(err)
	}
	return b
}

// runExchange executes one complete Fig. 3 exchange and returns the
// decrypted message.
func (w *world) runExchange(plaintext string) (*recipient.Message, error) {
	w.t.Helper()
	// Steps 1–2 over LoRa.
	keyResp, err := w.gw.HandleKeyRequest(w.dev.KeyRequestFrame())
	if err != nil {
		return nil, err
	}
	// Steps 3–5 on the node.
	dataFrame, err := w.dev.DataFrame([]byte(plaintext), keyResp.Payload, keyResp.Counter)
	if err != nil {
		return nil, err
	}
	// Steps 6–7 on the gateway.
	offerHeight := w.chain.Height()
	delivery, netAddr, err := w.gw.HandleData(dataFrame)
	if err != nil {
		return nil, err
	}
	if netAddr != "192.0.2.50:7100" {
		w.t.Fatalf("resolved %q, want the published binding", netAddr)
	}
	// Steps 8–9 on the recipient.
	payment, err := w.rcpt.HandleDelivery(delivery)
	if err != nil {
		return nil, err
	}
	// Step 10: the gateway sees the payment and claims it.
	if _, err := w.gw.VerifyAndClaim(delivery.DevEUI, delivery.Exchange, payment.ID(), offerHeight); err != nil {
		return nil, err
	}
	// The claim confirms; the recipient extracts eSk and decrypts.
	w.mine()
	return w.rcpt.SettleClaim(payment.ID())
}

func TestFullExchangeFig3(t *testing.T) {
	w := newWorld(t, gateway.DefaultConfig(), recipient.DefaultConfig())

	msg, err := w.runExchange("21.5C;48%")
	if err != nil {
		t.Fatal(err)
	}
	if string(msg.Plaintext) != "21.5C;48%" {
		t.Fatalf("plaintext = %q", msg.Plaintext)
	}

	// Both payment and claim are on-chain.
	if w.gw.Stats.Claims != 1 || w.rcpt.Stats.Decryptions != 1 {
		t.Fatalf("stats: gw=%+v rcpt=%+v", w.gw.Stats, w.rcpt.Stats)
	}
	// The gateway was paid: price − claim fee.
	if got := w.gw.Wallet().Balance(w.chain.UTXO()); got != 100-1 {
		t.Fatalf("gateway balance = %d, want 99", got)
	}
}

func TestMultipleSequentialExchanges(t *testing.T) {
	w := newWorld(t, gateway.DefaultConfig(), recipient.DefaultConfig())
	for i, plaintext := range []string{"1.0", "2.0", "3.0"} {
		msg, err := w.runExchange(plaintext)
		if err != nil {
			t.Fatalf("exchange %d: %v", i, err)
		}
		if string(msg.Plaintext) != plaintext {
			t.Fatalf("exchange %d plaintext = %q", i, msg.Plaintext)
		}
	}
	if got := w.gw.Wallet().Balance(w.chain.UTXO()); got != 3*99 {
		t.Fatalf("gateway balance = %d, want %d", got, 3*99)
	}
}

func TestGatewayCannotDecryptPayload(t *testing.T) {
	// Confidentiality (§4.4 property 1): the gateway holds eSk, so it
	// can strip the RSA layer — but the AES layer under K must stop it.
	w := newWorld(t, gateway.DefaultConfig(), recipient.DefaultConfig())

	keyResp, err := w.gw.HandleKeyRequest(w.dev.KeyRequestFrame())
	if err != nil {
		t.Fatal(err)
	}
	dataFrame, err := w.dev.DataFrame([]byte("secret"), keyResp.Payload, keyResp.Counter)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := device.DecodeDataPayload(dataFrame.Payload)
	if err != nil {
		t.Fatal(err)
	}
	// Adversarial gateway: decrypt Em with its own eSk.
	eKeyBytes := keyResp.Payload
	_ = eKeyBytes
	// The gateway's pending key is internal; simulate by regenerating
	// the attack from the protocol surface: the gateway knows eSk, so
	// emulate with a fresh exchange where we control the key.
	eKey, err := bccrypto.GenerateRSA512(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := w.dev.DataFrame([]byte("secret"), bccrypto.MarshalRSA512PublicKey(eKey.Public()), 1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := device.DecodeDataPayload(frame.Payload)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := bccrypto.DecryptRSA512(eKey, p2.Em)
	if err != nil {
		t.Fatal(err)
	}
	// inner is the AES frame; without K it must not decrypt.
	wrongKey := make([]byte, bccrypto.AESKeySize)
	if pt, err := bccrypto.DecryptFrame(wrongKey, inner); err == nil && string(pt) == "secret" {
		t.Fatal("gateway recovered plaintext without K")
	}
	_ = payload
}

func TestRecipientRejectsTamperedDelivery(t *testing.T) {
	w := newWorld(t, gateway.DefaultConfig(), recipient.DefaultConfig())

	keyResp, err := w.gw.HandleKeyRequest(w.dev.KeyRequestFrame())
	if err != nil {
		t.Fatal(err)
	}
	dataFrame, err := w.dev.DataFrame([]byte("x"), keyResp.Payload, keyResp.Counter)
	if err != nil {
		t.Fatal(err)
	}
	delivery, _, err := w.gw.HandleData(dataFrame)
	if err != nil {
		t.Fatal(err)
	}

	// Tamper with Em: signature verification must fail (§4.4 integrity).
	tampered := *delivery
	tampered.Em = append([]byte(nil), delivery.Em...)
	tampered.Em[0] ^= 0x01
	if _, err := w.rcpt.HandleDelivery(&tampered); !errors.Is(err, fairex.ErrBadOfferSignature) {
		t.Fatalf("tampered Em err = %v, want ErrBadOfferSignature", err)
	}

	// Substitute the ephemeral key (a MITM gateway swapping ePk): the
	// signature covers ePk, so this must fail too.
	otherKey, err := bccrypto.GenerateRSA512(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	swapped := *delivery
	swapped.EPk = bccrypto.MarshalRSA512PublicKey(otherKey.Public())
	if _, err := w.rcpt.HandleDelivery(&swapped); !errors.Is(err, fairex.ErrBadOfferSignature) {
		t.Fatalf("swapped ePk err = %v, want ErrBadOfferSignature", err)
	}
}

func TestRecipientRejectsOverpricedOffer(t *testing.T) {
	gwCfg := gateway.DefaultConfig()
	gwCfg.Price = 10_000
	rcptCfg := recipient.DefaultConfig()
	rcptCfg.MaxPrice = 100
	w := newWorld(t, gwCfg, rcptCfg)

	keyResp, err := w.gw.HandleKeyRequest(w.dev.KeyRequestFrame())
	if err != nil {
		t.Fatal(err)
	}
	dataFrame, err := w.dev.DataFrame([]byte("x"), keyResp.Payload, keyResp.Counter)
	if err != nil {
		t.Fatal(err)
	}
	delivery, _, err := w.gw.HandleData(dataFrame)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.rcpt.HandleDelivery(delivery); !errors.Is(err, fairex.ErrPriceTooHigh) {
		t.Fatalf("err = %v, want ErrPriceTooHigh", err)
	}
}

func TestRecipientRejectsUnknownSensor(t *testing.T) {
	w := newWorld(t, gateway.DefaultConfig(), recipient.DefaultConfig())
	d := &fairex.Delivery{DevEUI: lora.DevEUI{0xff}}
	if _, err := w.rcpt.HandleDelivery(d); !errors.Is(err, recipient.ErrUnknownSensor) {
		t.Fatalf("err = %v, want ErrUnknownSensor", err)
	}
}

func TestGatewayRejectsDataWithoutKeyRequest(t *testing.T) {
	w := newWorld(t, gateway.DefaultConfig(), recipient.DefaultConfig())
	eKey, err := bccrypto.GenerateRSA512(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := w.dev.DataFrame([]byte("x"), bccrypto.MarshalRSA512PublicKey(eKey.Public()), 999)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.gw.HandleData(frame); !errors.Is(err, gateway.ErrUnknownDevice) {
		t.Fatalf("err = %v, want ErrUnknownDevice", err)
	}
}

func TestGatewayClaimRequiresVisiblePayment(t *testing.T) {
	w := newWorld(t, gateway.DefaultConfig(), recipient.DefaultConfig())
	keyReq := w.dev.KeyRequestFrame()
	if _, err := w.gw.HandleKeyRequest(keyReq); err != nil {
		t.Fatal(err)
	}
	_, err := w.gw.VerifyAndClaim(w.dev.EUI(), keyReq.Counter, chain.Hash{0x99}, 0)
	if !errors.Is(err, gateway.ErrPaymentNotVisible) {
		t.Fatalf("err = %v, want ErrPaymentNotVisible", err)
	}
}

func TestGatewayRejectsUnderpayment(t *testing.T) {
	w := newWorld(t, gateway.DefaultConfig(), recipient.DefaultConfig())

	keyResp, err := w.gw.HandleKeyRequest(w.dev.KeyRequestFrame())
	if err != nil {
		t.Fatal(err)
	}
	dataFrame, err := w.dev.DataFrame([]byte("x"), keyResp.Payload, keyResp.Counter)
	if err != nil {
		t.Fatal(err)
	}
	offerHeight := w.chain.Height()
	delivery, _, err := w.gw.HandleData(dataFrame)
	if err != nil {
		t.Fatal(err)
	}

	// A cheating recipient pays 1 instead of the price.
	cheap := *delivery
	cheap.Price = 1
	w.rcpt.Provision(w.dev.EUI(), recipient.DeviceInfo{SharedKey: w.sharedKey, NodePub: w.nodeKey.Public()})
	payment, err := w.rcpt.HandleDelivery(&cheap)
	if err != nil {
		t.Fatal(err)
	}
	_, err = w.gw.VerifyAndClaim(delivery.DevEUI, delivery.Exchange, payment.ID(), offerHeight)
	if !errors.Is(err, fairex.ErrBadPayment) {
		t.Fatalf("err = %v, want ErrBadPayment", err)
	}
	if w.gw.Stats.FailedClaims != 1 {
		t.Fatalf("FailedClaims = %d, want 1", w.gw.Stats.FailedClaims)
	}
}

func TestGatewayWaitsForConfirmations(t *testing.T) {
	gwCfg := gateway.DefaultConfig()
	gwCfg.WaitConfirmations = 2
	w := newWorld(t, gwCfg, recipient.DefaultConfig())

	keyResp, err := w.gw.HandleKeyRequest(w.dev.KeyRequestFrame())
	if err != nil {
		t.Fatal(err)
	}
	dataFrame, err := w.dev.DataFrame([]byte("x"), keyResp.Payload, keyResp.Counter)
	if err != nil {
		t.Fatal(err)
	}
	offerHeight := w.chain.Height()
	delivery, _, err := w.gw.HandleData(dataFrame)
	if err != nil {
		t.Fatal(err)
	}
	payment, err := w.rcpt.HandleDelivery(delivery)
	if err != nil {
		t.Fatal(err)
	}

	// Unconfirmed: the gateway refuses to reveal eSk.
	if _, err := w.gw.VerifyAndClaim(delivery.DevEUI, delivery.Exchange, payment.ID(), offerHeight); !errors.Is(err, gateway.ErrNotEnoughConfirmations) {
		t.Fatalf("err = %v, want ErrNotEnoughConfirmations", err)
	}
	w.mine() // 1 confirmation
	if _, err := w.gw.VerifyAndClaim(delivery.DevEUI, delivery.Exchange, payment.ID(), offerHeight); !errors.Is(err, gateway.ErrNotEnoughConfirmations) {
		t.Fatalf("err = %v, want ErrNotEnoughConfirmations at 1 conf", err)
	}
	w.mine() // 2 confirmations
	if _, err := w.gw.VerifyAndClaim(delivery.DevEUI, delivery.Exchange, payment.ID(), offerHeight); err != nil {
		t.Fatalf("claim at 2 confs: %v", err)
	}
}

func TestRecipientRefundsExpiredExchange(t *testing.T) {
	w := newWorld(t, gateway.DefaultConfig(), recipient.DefaultConfig())

	keyResp, err := w.gw.HandleKeyRequest(w.dev.KeyRequestFrame())
	if err != nil {
		t.Fatal(err)
	}
	dataFrame, err := w.dev.DataFrame([]byte("x"), keyResp.Payload, keyResp.Counter)
	if err != nil {
		t.Fatal(err)
	}
	delivery, _, err := w.gw.HandleData(dataFrame)
	if err != nil {
		t.Fatal(err)
	}
	payment, err := w.rcpt.HandleDelivery(delivery)
	if err != nil {
		t.Fatal(err)
	}
	w.mine()

	// The gateway vanishes without claiming. Before expiry the refund
	// is rejected by the chain.
	if _, err := w.rcpt.Refund(payment.ID()); err == nil {
		t.Fatal("early refund accepted")
	}
	// Note: the failed Refund dropped the pending entry? It must NOT.
	if len(w.rcpt.PendingPayments()) != 1 {
		t.Fatal("failed refund dropped the pending exchange")
	}

	params, err := script.ParseKeyRelease(payment.Outputs[0].Lock)
	if err != nil {
		t.Fatal(err)
	}
	for w.chain.Height() < params.RefundHeight {
		w.mine()
	}
	if _, err := w.rcpt.Refund(payment.ID()); err != nil {
		t.Fatalf("refund after expiry: %v", err)
	}
	w.mine()
	if w.rcpt.Stats.Refunds != 1 {
		t.Fatalf("Refunds = %d, want 1", w.rcpt.Stats.Refunds)
	}
}

func TestSettleClaimBeforeClaimFails(t *testing.T) {
	w := newWorld(t, gateway.DefaultConfig(), recipient.DefaultConfig())

	keyResp, err := w.gw.HandleKeyRequest(w.dev.KeyRequestFrame())
	if err != nil {
		t.Fatal(err)
	}
	dataFrame, err := w.dev.DataFrame([]byte("x"), keyResp.Payload, keyResp.Counter)
	if err != nil {
		t.Fatal(err)
	}
	delivery, _, err := w.gw.HandleData(dataFrame)
	if err != nil {
		t.Fatal(err)
	}
	payment, err := w.rcpt.HandleDelivery(delivery)
	if err != nil {
		t.Fatal(err)
	}
	w.mine()
	if _, err := w.rcpt.SettleClaim(payment.ID()); !errors.Is(err, fairex.ErrNoClaim) {
		t.Fatalf("err = %v, want ErrNoClaim", err)
	}
}

func TestDeliveryPayloadSizes(t *testing.T) {
	// The paper's payload arithmetic: Em and Sig are 64 bytes each (the
	// 128-byte minimum), the data payload adds the 20-byte @R.
	w := newWorld(t, gateway.DefaultConfig(), recipient.DefaultConfig())
	keyResp, err := w.gw.HandleKeyRequest(w.dev.KeyRequestFrame())
	if err != nil {
		t.Fatal(err)
	}
	dataFrame, err := w.dev.DataFrame([]byte("21.5C"), keyResp.Payload, keyResp.Counter)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := device.DecodeDataPayload(dataFrame.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload.Em) != 64 || len(payload.Sig) != 64 {
		t.Fatalf("Em=%d Sig=%d, want 64/64", len(payload.Em), len(payload.Sig))
	}
	if len(dataFrame.Payload) != 148 {
		t.Fatalf("payload = %d bytes, want 148 (128 + 20-byte @R)", len(dataFrame.Payload))
	}
	// The whole frame fits a single SF7 LoRa transmission.
	if total := len(dataFrame.Encode()); total > lora.MaxPayload(lora.SF7) {
		t.Fatalf("frame %d bytes exceeds SF7 capacity", total)
	}
	if !bytes.Equal(payload.Recipient[:], func() []byte { h := w.rcpt.Wallet().PubKeyHash(); return h[:] }()) {
		t.Fatal("payload @R mismatch")
	}
}
