package gateway

import "bcwan/internal/telemetry"

// gatewayMetrics instruments the fair-exchange protocol. All fields are
// nil-safe no-ops when the gateway is not instrumented.
type gatewayMetrics struct {
	exchangesStarted *telemetry.Counter
	exchangesSettled *telemetry.Counter
	exchangesFailed  *telemetry.Counter
	// keyDisclosureSeconds measures the full exchange latency: from the
	// ephemeral key handout (Fig. 3 step 2) to the claim transaction
	// that disclosed the private key (step 10).
	keyDisclosureSeconds *telemetry.Histogram
}

func newGatewayMetrics(reg *telemetry.Registry) *gatewayMetrics {
	ns := reg.Namespace("gateway")
	return &gatewayMetrics{
		exchangesStarted:     ns.Counter("exchanges_started_total", "Fair exchanges opened by an ephemeral key handout."),
		exchangesSettled:     ns.Counter("exchanges_settled_total", "Fair exchanges settled by a successful claim."),
		exchangesFailed:      ns.Counter("exchanges_failed_total", "Fair exchanges that failed payment checks or claim submission."),
		keyDisclosureSeconds: ns.Histogram("key_disclosure_seconds", "Latency from ephemeral key handout to claim submission.", nil),
	}
}
