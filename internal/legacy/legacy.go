// Package legacy implements the classic centralized LoRaWAN architecture
// of the paper's Fig. 1 — end-devices, gateways, a single network server,
// and application servers — as the "trustful IoT network" baseline BcWAN
// is compared against. There is no blockchain and no payment: the network
// server is the trusted third party BcWAN removes.
package legacy

import (
	"errors"
	"fmt"
	"sync"

	"bcwan/internal/bccrypto"
	"bcwan/internal/lora"
)

// Errors.
var (
	// ErrUnknownDevice reports an uplink from an unregistered device.
	ErrUnknownDevice = errors.New("legacy: device not registered")
	// ErrNoSession reports a missing application session key.
	ErrNoSession = errors.New("legacy: no application session key")
)

// Message is a decrypted application payload.
type Message struct {
	DevEUI    lora.DevEUI
	Plaintext []byte
	GatewayID string
}

// AppServer terminates the application session: it holds the AppSKey
// analogue (an AES-256 key shared with the device) and decrypts uplinks.
type AppServer struct {
	name string

	mu      sync.Mutex
	keys    map[lora.DevEUI][]byte
	inbox   []Message
	onRecv  func(Message)
	dropped uint64
}

// NewAppServer creates an application server.
func NewAppServer(name string) *AppServer {
	return &AppServer{name: name, keys: make(map[lora.DevEUI][]byte)}
}

// Provision installs a device's application key.
func (a *AppServer) Provision(eui lora.DevEUI, key []byte) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.keys[eui] = append([]byte(nil), key...)
}

// OnReceive installs a delivery callback (in addition to the inbox).
func (a *AppServer) OnReceive(fn func(Message)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.onRecv = fn
}

// Deliver decrypts and stores one uplink.
func (a *AppServer) Deliver(eui lora.DevEUI, gatewayID string, frame []byte) error {
	a.mu.Lock()
	key, ok := a.keys[eui]
	a.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSession, eui)
	}
	plaintext, err := bccrypto.DecryptFrame(key, frame)
	if err != nil {
		a.mu.Lock()
		a.dropped++
		a.mu.Unlock()
		return fmt.Errorf("legacy: decrypt %s: %w", eui, err)
	}
	msg := Message{DevEUI: eui, Plaintext: plaintext, GatewayID: gatewayID}
	a.mu.Lock()
	a.inbox = append(a.inbox, msg)
	fn := a.onRecv
	a.mu.Unlock()
	if fn != nil {
		fn(msg)
	}
	return nil
}

// Inbox returns a copy of all received messages.
func (a *AppServer) Inbox() []Message {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Message(nil), a.inbox...)
}

// NetworkServer is the centralized core network: it deduplicates uplinks
// received by several gateways and routes each device to its application
// server. It is the single point of control (and failure) that motivates
// BcWAN.
type NetworkServer struct {
	mu     sync.Mutex
	routes map[lora.DevEUI]*AppServer
	// seen deduplicates (DevEUI, counter) pairs: several gateways may
	// relay the same uplink.
	seen map[dedupKey]bool

	// Stats counts routing outcomes.
	Stats Stats
}

type dedupKey struct {
	eui     lora.DevEUI
	counter uint32
}

// Stats aggregates network-server outcomes.
type Stats struct {
	Uplinks    uint64
	Duplicates uint64
	Routed     uint64
	Unknown    uint64
}

// NewNetworkServer creates an empty core network.
func NewNetworkServer() *NetworkServer {
	return &NetworkServer{
		routes: make(map[lora.DevEUI]*AppServer),
		seen:   make(map[dedupKey]bool),
	}
}

// Register routes a device to its application server.
func (ns *NetworkServer) Register(eui lora.DevEUI, app *AppServer) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.routes[eui] = app
}

// HandleUplink processes a gateway-forwarded frame: dedup, route,
// deliver.
func (ns *NetworkServer) HandleUplink(gatewayID string, f *lora.Frame) error {
	ns.mu.Lock()
	ns.Stats.Uplinks++
	key := dedupKey{eui: f.DevEUI, counter: f.Counter}
	if ns.seen[key] {
		ns.Stats.Duplicates++
		ns.mu.Unlock()
		return nil
	}
	ns.seen[key] = true
	app, ok := ns.routes[f.DevEUI]
	if !ok {
		ns.Stats.Unknown++
		ns.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownDevice, f.DevEUI)
	}
	ns.Stats.Routed++
	ns.mu.Unlock()
	return app.Deliver(f.DevEUI, gatewayID, f.Payload)
}
