package legacy

import (
	"crypto/rand"
	"errors"
	"testing"

	"bcwan/internal/bccrypto"
	"bcwan/internal/lora"
)

func testKey() []byte {
	key := make([]byte, bccrypto.AESKeySize)
	for i := range key {
		key[i] = byte(i)
	}
	return key
}

func encFrame(t *testing.T, key []byte, plaintext string) []byte {
	t.Helper()
	frame, err := bccrypto.EncryptFrame(rand.Reader, key, []byte(plaintext))
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

func TestUplinkRoutedAndDecrypted(t *testing.T) {
	ns := NewNetworkServer()
	app := NewAppServer("metering")
	eui := lora.DevEUI{1}
	key := testKey()
	app.Provision(eui, key)
	ns.Register(eui, app)

	var delivered []Message
	app.OnReceive(func(m Message) { delivered = append(delivered, m) })

	f := &lora.Frame{Type: lora.FrameData, DevEUI: eui, Counter: 1, Payload: encFrame(t, key, "19.5C")}
	if err := ns.HandleUplink("gw-1", f); err != nil {
		t.Fatal(err)
	}
	if len(delivered) != 1 || string(delivered[0].Plaintext) != "19.5C" {
		t.Fatalf("delivered = %+v", delivered)
	}
	if delivered[0].GatewayID != "gw-1" {
		t.Fatalf("gateway = %q", delivered[0].GatewayID)
	}
	if got := app.Inbox(); len(got) != 1 {
		t.Fatalf("inbox = %d", len(got))
	}
}

func TestDuplicateUplinksDeduplicated(t *testing.T) {
	// Two gateways hear the same transmission; the network server must
	// deliver once.
	ns := NewNetworkServer()
	app := NewAppServer("app")
	eui := lora.DevEUI{2}
	key := testKey()
	app.Provision(eui, key)
	ns.Register(eui, app)

	payload := encFrame(t, key, "x")
	f := &lora.Frame{Type: lora.FrameData, DevEUI: eui, Counter: 7, Payload: payload}
	if err := ns.HandleUplink("gw-1", f); err != nil {
		t.Fatal(err)
	}
	if err := ns.HandleUplink("gw-2", f); err != nil {
		t.Fatal(err)
	}
	if len(app.Inbox()) != 1 {
		t.Fatalf("inbox = %d, want 1 (dedup)", len(app.Inbox()))
	}
	if ns.Stats.Duplicates != 1 {
		t.Fatalf("Duplicates = %d, want 1", ns.Stats.Duplicates)
	}
}

func TestUnknownDeviceRejected(t *testing.T) {
	ns := NewNetworkServer()
	f := &lora.Frame{Type: lora.FrameData, DevEUI: lora.DevEUI{9}, Counter: 1}
	if err := ns.HandleUplink("gw", f); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("err = %v, want ErrUnknownDevice", err)
	}
	if ns.Stats.Unknown != 1 {
		t.Fatalf("Unknown = %d", ns.Stats.Unknown)
	}
}

func TestUnprovisionedSessionRejected(t *testing.T) {
	ns := NewNetworkServer()
	app := NewAppServer("app")
	eui := lora.DevEUI{3}
	ns.Register(eui, app) // routed, but no AppSKey provisioned

	f := &lora.Frame{Type: lora.FrameData, DevEUI: eui, Counter: 1, Payload: encFrame(t, testKey(), "x")}
	if err := ns.HandleUplink("gw", f); !errors.Is(err, ErrNoSession) {
		t.Fatalf("err = %v, want ErrNoSession", err)
	}
}

func TestCorruptedPayloadRejected(t *testing.T) {
	ns := NewNetworkServer()
	app := NewAppServer("app")
	eui := lora.DevEUI{4}
	key := testKey()
	app.Provision(eui, key)
	ns.Register(eui, app)

	payload := encFrame(t, key, "x")
	payload[len(payload)-1] ^= 0xff
	f := &lora.Frame{Type: lora.FrameData, DevEUI: eui, Counter: 1, Payload: payload}
	if err := ns.HandleUplink("gw", f); err == nil {
		// CBC padding may, rarely, still parse; accept either an error
		// or a garbage non-"x" delivery — but never the plaintext.
		inbox := app.Inbox()
		if len(inbox) == 1 && string(inbox[0].Plaintext) == "x" {
			t.Fatal("corrupted frame decrypted to original plaintext")
		}
	}
}
