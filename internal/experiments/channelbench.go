package experiments

import (
	"crypto/rand"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"bcwan/internal/bccrypto"
	"bcwan/internal/chain"
	"bcwan/internal/daemon"
	"bcwan/internal/device"
	"bcwan/internal/gateway"
	"bcwan/internal/lora"
	"bcwan/internal/p2p"
	"bcwan/internal/recipient"
	"bcwan/internal/wallet"
)

// ChannelBenchConfig sizes the off-chain settlement experiment behind
// the payment-channel subsystem (DESIGN.md §14): one sensor streams
// Deliveries readings through a gateway/recipient pair, once settled
// per-message on-chain (a payment and a claim transaction mined for
// every reading) and once through a single payment channel (two anchor
// transactions total: the funding and the batched close).
type ChannelBenchConfig struct {
	Deliveries int    // readings streamed per mode
	Capacity   uint64 // channel funding capacity
	Price      uint64 // per-delivery price
	// BlockIntervalMS is the federation's block-production cadence: every
	// mined block costs this much wall clock before the settlement it
	// carries is durable. 0 mines on demand — useful for deterministic
	// tests, but it hides the confirmation latency that per-message
	// settlement pays once per reading in a real deployment (the paper
	// runs 15 s intervals; the bench scales that down to keep CI fast).
	BlockIntervalMS int
}

// DefaultChannelBenchConfig is the committed-baseline workload: enough
// deliveries that the per-message mode pays its block interval ~150
// times while the channel amortizes both anchors across the batch.
func DefaultChannelBenchConfig() ChannelBenchConfig {
	return ChannelBenchConfig{Deliveries: 150, Capacity: 50_000, Price: 100, BlockIntervalMS: 100}
}

// ChannelBenchResult is the measured cost of one settlement mode.
type ChannelBenchResult struct {
	Mode             string  // "onchain" or "channel"
	Deliveries       int     // readings settled end to end
	ElapsedMS        float64 // first uplink → last settlement durable on-chain/off-chain
	DeliveriesPerSec float64
	OnChainTxs       int64 // non-coinbase transactions mined during the stream
	BlocksMined      int64 // blocks mined during the stream
}

// channelBenchTimeout bounds each wait; the mesh is in-memory and
// fault-free, so reaching it means the settlement path is broken.
const channelBenchTimeout = 2 * time.Minute

// channelBench is one three-node federation (miner + gateway daemon +
// recipient daemon over an in-memory mesh, deliveries over real TCP)
// with a provisioned sensor. Each mode runs on a fresh instance so the
// two workloads differ only in settlement path.
type channelBench struct {
	cfg    ChannelBenchConfig
	master *daemon.Node
	gwd    *daemon.GatewayDaemon
	rcptd  *daemon.RecipientDaemon
	dev    *device.Device
	// rcptMgr is the payer-side channel manager (channel mode only).
	rcptMgr *daemon.ChannelManager
}

func newChannelBench(cfg ChannelBenchConfig, channels bool) (*channelBench, error) {
	treasury, err := wallet.New(rand.Reader)
	if err != nil {
		return nil, err
	}
	minerKey, err := bccrypto.GenerateECKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	params := chain.DefaultParams()
	genesis := chain.GenesisBlock(map[[20]byte]uint64{treasury.PubKeyHash(): 10_000_000})
	miners := [][]byte{minerKey.PublicBytes()}
	tr := p2p.NewMemTransport()

	cb := &channelBench{cfg: cfg}
	cb.master, err = daemon.NewNode(daemon.NodeConfig{
		Genesis: genesis, Params: params, Miners: miners,
		MinerKey: minerKey, MineInterval: time.Hour, Transport: tr,
	})
	if err != nil {
		return nil, err
	}
	gwNode, err := daemon.NewNode(daemon.NodeConfig{
		Genesis: genesis, Params: params, Miners: miners,
		Transport: tr, Peers: []string{cb.master.P2PAddr()},
	})
	if err != nil {
		cb.close()
		return nil, err
	}
	rcptNode, err := daemon.NewNode(daemon.NodeConfig{
		Genesis: genesis, Params: params, Miners: miners,
		Transport: tr, Peers: []string{cb.master.P2PAddr(), gwNode.P2PAddr()},
	})
	if err != nil {
		gwNode.Close()
		cb.close()
		return nil, err
	}
	gwCfg := gateway.DefaultConfig()
	gwCfg.Price = cfg.Price
	cb.gwd, err = daemon.NewGatewayDaemon(gwNode, gwCfg, rand.Reader, nil)
	if err != nil {
		gwNode.Close()
		rcptNode.Close()
		cb.close()
		return nil, err
	}
	cb.rcptd, err = daemon.NewRecipientDaemon(rcptNode, recipient.DefaultConfig(), "127.0.0.1:0", rand.Reader, nil)
	if err != nil {
		gwNode.Close()
		rcptNode.Close()
		cb.close()
		return nil, err
	}
	if channels {
		ccfg := daemon.DefaultChannelConfig()
		ccfg.Capacity = cfg.Capacity
		if _, err := cb.gwd.EnableChannels(ccfg); err != nil {
			cb.close()
			return nil, err
		}
		if cb.rcptMgr, err = cb.rcptd.EnableChannels(ccfg); err != nil {
			cb.close()
			return nil, err
		}
	}

	// Fund the recipient and publish its binding before the clock runs.
	fund, err := treasury.BuildPayment(cb.master.Ledger().UTXO(),
		cb.rcptd.Recipient.Wallet().PubKeyHash(), 1_000_000, 1)
	if err != nil {
		cb.close()
		return nil, err
	}
	if err := cb.master.Ledger().Submit(fund); err != nil {
		cb.close()
		return nil, err
	}
	if err := cb.mine(); err != nil {
		cb.close()
		return nil, err
	}
	bindTx, err := cb.rcptd.PublishBinding(1)
	if err != nil {
		cb.close()
		return nil, err
	}
	if err := cb.waitMasterPooled(bindTx.ID()); err != nil {
		cb.close()
		return nil, err
	}
	if err := cb.mine(); err != nil {
		cb.close()
		return nil, err
	}

	// Provision the sensor.
	sharedKey := make([]byte, bccrypto.AESKeySize)
	if _, err := rand.Read(sharedKey); err != nil {
		cb.close()
		return nil, err
	}
	nodeKey, err := bccrypto.GenerateRSA512(rand.Reader)
	if err != nil {
		cb.close()
		return nil, err
	}
	eui := lora.DevEUI{0xbe, 0xc4}
	cb.dev, err = device.New(device.Provisioning{
		DevEUI:        eui,
		SharedKey:     sharedKey,
		SigningKey:    nodeKey,
		RecipientAddr: cb.rcptd.Recipient.Wallet().PubKeyHash(),
	}, rand.Reader)
	if err != nil {
		cb.close()
		return nil, err
	}
	cb.rcptd.Recipient.Provision(eui, recipient.DeviceInfo{SharedKey: sharedKey, NodePub: nodeKey.Public()})
	return cb, nil
}

func (cb *channelBench) close() {
	if cb.rcptd != nil {
		cb.rcptd.Close()
		cb.rcptd.Node.Close()
	}
	if cb.gwd != nil {
		cb.gwd.Node.Close()
	}
	if cb.master != nil {
		cb.master.Close()
	}
}

// mine mints one block on the master and waits for both replicas. The
// configured block interval elapses first: a block is only available at
// the federation's production cadence, so every settlement that needs
// one pays that latency.
func (cb *channelBench) mine() error {
	if cb.cfg.BlockIntervalMS > 0 {
		time.Sleep(time.Duration(cb.cfg.BlockIntervalMS) * time.Millisecond)
	}
	b, err := cb.master.MineNow()
	if err != nil {
		return err
	}
	h := b.Header.Height
	return cb.waitFor("replicas to adopt the block", func() bool {
		return cb.gwd.Node.Chain().Height() >= h && cb.rcptd.Node.Chain().Height() >= h
	})
}

func (cb *channelBench) waitMasterPooled(id chain.Hash) error {
	return cb.waitFor(fmt.Sprintf("tx %s to reach the miner pool", id), func() bool {
		_, ok := cb.master.Ledger().PendingTx(id)
		return ok
	})
}

func (cb *channelBench) waitFor(what string, cond func() bool) error {
	deadline := time.Now().Add(channelBenchTimeout)
	for !cond() {
		if time.Now().After(deadline) {
			return fmt.Errorf("channel bench: timed out waiting for %s", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
	return nil
}

// uplink runs one key-request + data-frame exchange.
func (cb *channelBench) uplink(i int) error {
	keyResp, err := cb.gwd.HandleUplink(cb.dev.KeyRequestFrame())
	if err != nil {
		return fmt.Errorf("key request %d: %w", i, err)
	}
	frame, err := cb.dev.DataFrame([]byte(fmt.Sprintf("r=%06d", i)), keyResp.Payload, keyResp.Counter)
	if err != nil {
		return fmt.Errorf("data frame %d: %w", i, err)
	}
	if _, err := cb.gwd.HandleUplink(frame); err != nil {
		return fmt.Errorf("deliver %d: %w", i, err)
	}
	return nil
}

// minedSince counts non-coinbase transactions and blocks on the master
// chain above the given height.
func (cb *channelBench) minedSince(height int64) (txs, blocks int64) {
	ch := cb.master.Chain()
	for h := height + 1; h <= ch.Height(); h++ {
		if b, ok := ch.BlockAt(h); ok {
			txs += int64(len(b.Txs) - 1)
			blocks++
		}
	}
	return txs, blocks
}

// runOnChain settles every delivery per-message: the payment and claim
// are mined before the next reading, exactly what a gateway without
// channels pays today.
func (cb *channelBench) runOnChain() (*ChannelBenchResult, error) {
	startHeight := cb.master.Chain().Height()
	start := time.Now()
	for i := 0; i < cb.cfg.Deliveries; i++ {
		if err := cb.uplink(i); err != nil {
			return nil, err
		}
		// The uplink returns with the payment and the zero-conf claim
		// pooled; mine them so the recipient settles before the next
		// reading.
		if err := cb.waitFor("payment and claim to pool", func() bool {
			return cb.master.Ledger().Pool.Len() >= 2
		}); err != nil {
			return nil, err
		}
		if err := cb.mine(); err != nil {
			return nil, err
		}
		want := i + 1
		if err := cb.waitFor("the claim to settle", func() bool {
			return len(cb.rcptd.Inbox()) >= want
		}); err != nil {
			return nil, err
		}
	}
	elapsed := msSince(start)
	txs, blocks := cb.minedSince(startHeight)
	return &ChannelBenchResult{
		Mode:             "onchain",
		Deliveries:       cb.cfg.Deliveries,
		ElapsedMS:        elapsed,
		DeliveriesPerSec: float64(cb.cfg.Deliveries) / (elapsed / 1000),
		OnChainTxs:       txs,
		BlocksMined:      blocks,
	}, nil
}

// runChannel settles every delivery off-chain: the first uplink opens
// and funds the channel (one mined anchor), the stream settles through
// signed commitment updates, and one batched close settles the whole
// balance (the second anchor).
func (cb *channelBench) runChannel() (*ChannelBenchResult, error) {
	startHeight := cb.master.Chain().Height()
	start := time.Now()

	// First delivery opens the channel; mine the funding anchor.
	if err := cb.uplink(0); err != nil {
		return nil, err
	}
	list, err := cb.rcptMgr.ListChannels()
	if err != nil {
		return nil, err
	}
	summaries := list.([]daemon.ChannelSummary)
	if len(summaries) != 1 {
		return nil, fmt.Errorf("channel bench: %d channels after the first delivery, want 1", len(summaries))
	}
	fundingID, err := chain.HashFromString(summaries[0].ID)
	if err != nil {
		return nil, err
	}
	if err := cb.waitMasterPooled(fundingID); err != nil {
		return nil, err
	}
	if err := cb.mine(); err != nil {
		return nil, err
	}

	for i := 1; i < cb.cfg.Deliveries; i++ {
		if err := cb.uplink(i); err != nil {
			return nil, err
		}
	}
	if got := len(cb.rcptd.Inbox()); got != cb.cfg.Deliveries {
		return nil, fmt.Errorf("channel bench: %d readings settled, want %d", got, cb.cfg.Deliveries)
	}

	// Batched close: one commitment settles the whole stream.
	if _, err := cb.rcptMgr.CloseChannel(summaries[0].ID); err != nil {
		return nil, err
	}
	op := chain.OutPoint{TxID: fundingID, Index: 0}
	if err := cb.waitFor("the close commitment to pool", func() bool {
		return cb.master.Ledger().Pool.Len() >= 1
	}); err != nil {
		return nil, err
	}
	if err := cb.mine(); err != nil {
		return nil, err
	}
	if _, _, ok := cb.master.Chain().FindSpender(op); !ok {
		return nil, fmt.Errorf("channel bench: close commitment not mined")
	}
	elapsed := msSince(start)
	txs, blocks := cb.minedSince(startHeight)
	return &ChannelBenchResult{
		Mode:             "channel",
		Deliveries:       cb.cfg.Deliveries,
		ElapsedMS:        elapsed,
		DeliveriesPerSec: float64(cb.cfg.Deliveries) / (elapsed / 1000),
		OnChainTxs:       txs,
		BlocksMined:      blocks,
	}, nil
}

// RunChannelBench measures the delivery stream under both settlement
// paths, each on a fresh federation with an identical workload shape.
func RunChannelBench(cfg ChannelBenchConfig) ([]*ChannelBenchResult, error) {
	if cfg.Deliveries < 2 || cfg.Capacity == 0 || cfg.Price == 0 {
		return nil, fmt.Errorf("channel bench config must be positive with ≥ 2 deliveries: %+v", cfg)
	}
	if need := (cfg.Price+1)*uint64(cfg.Deliveries) + 1; cfg.Capacity < need {
		return nil, fmt.Errorf("channel bench: capacity %d cannot carry %d deliveries at price %d",
			cfg.Capacity, cfg.Deliveries, cfg.Price)
	}
	var results []*ChannelBenchResult
	for _, mode := range []string{"onchain", "channel"} {
		cb, err := newChannelBench(cfg, mode == "channel")
		if err != nil {
			return nil, fmt.Errorf("channel bench %s: %w", mode, err)
		}
		var res *ChannelBenchResult
		if mode == "channel" {
			res, err = cb.runChannel()
		} else {
			res, err = cb.runOnChain()
		}
		cb.close()
		if err != nil {
			return nil, fmt.Errorf("channel bench %s: %w", mode, err)
		}
		results = append(results, res)
	}
	return results, nil
}

// ChannelSpeedupRatio is channel deliveries/sec over on-chain
// deliveries/sec — the headline number of the channel subsystem; 0 when
// either row is missing or non-positive. Both modes run on the same
// machine with the same workload, so the ratio is machine-independent
// and CI gates on it directly.
func ChannelSpeedupRatio(results []*ChannelBenchResult) float64 {
	var onchain, channel float64
	for _, r := range results {
		switch r.Mode {
		case "onchain":
			onchain = r.DeliveriesPerSec
		case "channel":
			channel = r.DeliveriesPerSec
		}
	}
	if onchain <= 0 || channel <= 0 {
		return 0
	}
	return channel / onchain
}

// ChannelTxReduction is the on-chain transaction count ratio
// (per-message over channel) — how many mined transactions one channel
// anchor pair replaces; 0 when either row is missing or empty.
func ChannelTxReduction(results []*ChannelBenchResult) float64 {
	var onchain, channel int64
	for _, r := range results {
		switch r.Mode {
		case "onchain":
			onchain = r.OnChainTxs
		case "channel":
			channel = r.OnChainTxs
		}
	}
	if onchain <= 0 || channel <= 0 {
		return 0
	}
	return float64(onchain) / float64(channel)
}

// WriteChannelBench prints both settlement paths side by side with the
// ratios the CI gate tracks.
func WriteChannelBench(w io.Writer, cfg ChannelBenchConfig, results []*ChannelBenchResult) {
	fmt.Fprintf(w, "== Delivery settlement: per-message on-chain vs payment channel (%d deliveries, price %d, capacity %d, %dms blocks) ==\n",
		cfg.Deliveries, cfg.Price, cfg.Capacity, cfg.BlockIntervalMS)
	fmt.Fprintf(w, "%-10s %12s %12s %16s %14s %14s\n",
		"mode", "deliveries", "elapsed", "deliveries/sec", "on-chain txs", "blocks mined")
	for _, r := range results {
		fmt.Fprintf(w, "%-10s %12d %9.0fms %16.1f %14d %14d\n",
			r.Mode, r.Deliveries, r.ElapsedMS, r.DeliveriesPerSec, r.OnChainTxs, r.BlocksMined)
	}
	if ratio := ChannelSpeedupRatio(results); ratio > 0 {
		fmt.Fprintf(w, "deliveries/sec speedup: %.1fx\n", ratio)
	}
	if ratio := ChannelTxReduction(results); ratio > 0 {
		fmt.Fprintf(w, "on-chain tx reduction: %.1fx\n", ratio)
	}
	fmt.Fprintln(w)
}

// channelJSONRow is one machine-readable settlement measurement.
type channelJSONRow struct {
	Mode             string  `json:"mode"`
	Deliveries       int     `json:"deliveries"`
	ElapsedMS        float64 `json:"elapsed_ms"`
	DeliveriesPerSec float64 `json:"deliveries_per_sec"`
	OnChainTxs       int64   `json:"onchain_txs"`
	BlocksMined      int64   `json:"blocks_mined"`
}

// channelJSON is the BENCH_channel.json document bcwan-benchgate
// consumes: it floors the candidate's own channel/on-chain speedup and
// transaction-reduction ratios.
type channelJSON struct {
	Deliveries      int              `json:"deliveries"`
	Capacity        uint64           `json:"capacity"`
	Price           uint64           `json:"price"`
	BlockIntervalMS int              `json:"block_interval_ms"`
	SpeedupRatio    float64          `json:"speedup_ratio"`
	TxReduction     float64          `json:"tx_reduction"`
	Results         []channelJSONRow `json:"results"`
}

// WriteChannelBenchJSON writes the measurements as machine-readable
// JSON to path, creating parent directories as needed.
func WriteChannelBenchJSON(path string, cfg ChannelBenchConfig, results []*ChannelBenchResult) error {
	doc := channelJSON{
		Deliveries:      cfg.Deliveries,
		Capacity:        cfg.Capacity,
		Price:           cfg.Price,
		BlockIntervalMS: cfg.BlockIntervalMS,
		SpeedupRatio:    ChannelSpeedupRatio(results),
		TxReduction:     ChannelTxReduction(results),
	}
	for _, r := range results {
		doc.Results = append(doc.Results, channelJSONRow{
			Mode:             r.Mode,
			Deliveries:       r.Deliveries,
			ElapsedMS:        r.ElapsedMS,
			DeliveriesPerSec: r.DeliveriesPerSec,
			OnChainTxs:       r.OnChainTxs,
			BlocksMined:      r.BlocksMined,
		})
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
