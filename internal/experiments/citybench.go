package experiments

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	mrand "math/rand"
	"os"
	"path/filepath"
	"time"

	"bcwan/internal/bccrypto"
	"bcwan/internal/chain"
	"bcwan/internal/fairex"
	"bcwan/internal/lora"
	"bcwan/internal/netsim"
	"bcwan/internal/script"
	"bcwan/internal/simtime"
	"bcwan/internal/wallet"
)

// The city benchmark scales the BcWAN substrate from the paper's
// five-gateway campus to a metropolitan deployment: a 10×10 gateway
// lattice at 2 km pitch covering an 18×18 km city, ten thousand
// uplink-only devices with a realistic SF7–SF12 mix, diurnal and bursty
// traffic, roaming devices and gateway outages, and the delivery
// credits settled on a real chain in one batched payment per interval.
// It exists to exercise the discrete-event engine at the scale the
// heap scheduler and the spatial radio index were built for — the
// all-pairs seed engine collapses quadratically here — and to emit the
// devices-vs-latency/success/chain-load scaling curve CI gates on.

// CityTier is one point on the scaling curve.
type CityTier struct {
	// Devices is the uplink-only sensor population.
	Devices int
	// Gateways is the receiving lattice size (laid out on a
	// ceil(sqrt(G)) × ceil(sqrt(G)) grid).
	Gateways int
}

// CityConfig parameterizes the metropolitan campaign.
type CityConfig struct {
	// Seed makes every tier reproducible.
	Seed int64
	// Tiers is the scaling curve, smallest first.
	Tiers []CityTier
	// SimDuration is the virtual time simulated per tier.
	SimDuration time.Duration
	// MeanUplinkInterval is a device's mean spacing between uplink
	// events at the diurnal baseline rate.
	MeanUplinkInterval time.Duration
	// DiurnalAmplitude modulates the arrival rate sinusoidally in
	// [1-A, 1+A] over DiurnalPeriod — the compressed day/night cycle.
	DiurnalAmplitude float64
	// DiurnalPeriod is the length of one compressed day.
	DiurnalPeriod time.Duration
	// BurstFraction of devices emit BurstSize back-to-back frames per
	// uplink event (alarm-style reporters) instead of one.
	BurstFraction float64
	// BurstSize is the frames per burst event.
	BurstSize int
	// MobileFraction of devices roam: every MoveInterval they jump to
	// a fresh uniform position in the city.
	MobileFraction float64
	// MoveInterval spaces a mobile device's position changes.
	MoveInterval time.Duration
	// ChurnInterval is the mean uptime between one gateway's outages.
	ChurnInterval time.Duration
	// OutageDuration is how long a churned gateway stays deaf.
	OutageDuration time.Duration
	// GatewaySpacing is the lattice pitch in meters.
	GatewaySpacing float64
	// DutyCycle is the devices' radio budget (EU868: 0.01).
	DutyCycle float64
	// SettleInterval batches delivery credits into one chain payment.
	SettleInterval time.Duration
	// BlockInterval paces the settlement chain's miner.
	BlockInterval time.Duration
	// PricePerDelivery is the credit per first-accepted frame.
	PricePerDelivery uint64
}

// DefaultCityConfig is the committed-baseline campaign: a compressed
// two-hour day over three tiers ending at the 10k-device, 100-gateway
// city of the benchmark's headline.
func DefaultCityConfig() CityConfig {
	return CityConfig{
		Seed:               7,
		Tiers:              []CityTier{{1000, 16}, {3000, 36}, {10_000, 100}},
		SimDuration:        2 * time.Hour,
		MeanUplinkInterval: 10 * time.Minute,
		DiurnalAmplitude:   0.6,
		DiurnalPeriod:      2 * time.Hour,
		BurstFraction:      0.05,
		BurstSize:          4,
		MobileFraction:     0.10,
		MoveInterval:       10 * time.Minute,
		ChurnInterval:      30 * time.Minute,
		OutageDuration:     5 * time.Minute,
		GatewaySpacing:     2000,
		DutyCycle:          0.01,
		SettleInterval:     5 * time.Minute,
		BlockInterval:      30 * time.Second,
		PricePerDelivery:   10,
	}
}

// QuickCityConfig is a seconds-scale reduction for -quick runs and the
// default test suite's smoke coverage.
func QuickCityConfig() CityConfig {
	cfg := DefaultCityConfig()
	cfg.Tiers = []CityTier{{60, 4}, {150, 9}}
	cfg.SimDuration = 10 * time.Minute
	cfg.MeanUplinkInterval = time.Minute
	cfg.DiurnalPeriod = 10 * time.Minute
	cfg.MoveInterval = 2 * time.Minute
	cfg.ChurnInterval = 4 * time.Minute
	cfg.OutageDuration = 30 * time.Second
	cfg.SettleInterval = 2 * time.Minute
	return cfg
}

// CityTierResult is the measured outcome of one tier.
type CityTierResult struct {
	Devices  int
	Gateways int

	// FramesSent counts uplink frames enqueued at devices (a burst
	// counts each frame); FramesDelivered counts frames first-accepted
	// at the recipient after dedupe, Duplicates the redundant copies
	// other gateways forwarded, OutageDrops the frames a deaf gateway
	// overheard and discarded.
	FramesSent      uint64
	FramesDelivered uint64
	Duplicates      uint64
	OutageDrops     uint64
	SuccessRate     float64

	// Latency is enqueue → first recipient acceptance: it includes
	// duty-cycle waits, CAD backoffs, airtime and the WAN leg.
	Latencies []time.Duration
	Latency   LatencyStats

	Channel lora.ChannelStats

	// Chain load of the batched settlement layer.
	SettleTxs     int
	Blocks        int
	PayoutOutputs int
	CreditsPaid   uint64

	GatewayOutages int
	DeviceMoves    int

	// WallClockMS is the real time this tier took; with FramesSent it
	// yields the frames-per-wall-second scaling the gate tracks.
	WallClockMS      float64
	FramesPerWallSec float64
}

// citySFWeights is the device population's spreading-factor mix, in
// percent: urban deployments skew toward the fast short-range factors,
// with a long-range tail that stresses the wide SF11/SF12 collision
// domains.
var citySFWeights = []struct {
	sf  lora.SpreadingFactor
	pct int
}{
	{lora.SF7, 30}, {lora.SF8, 25}, {lora.SF9, 20},
	{lora.SF10, 15}, {lora.SF11, 7}, {lora.SF12, 3},
}

// cityPayloadLen keeps every frame under SF12's 51-byte EU868 cap:
// 13 B MAC header + 24 B reading = 37 B on air.
const cityPayloadLen = 24

// cityFrameKey identifies one uplink frame end to end.
type cityFrameKey struct {
	dev     int
	counter uint32
}

type cityGateway struct {
	idx       int
	radio     *lora.Radio
	lock      []byte // settlement payout script
	downUntil time.Time
}

type cityDevice struct {
	idx     int
	radio   *lora.Radio
	duty    *lora.DutyCycle
	sf      lora.SpreadingFactor
	eui     lora.DevEUI
	counter uint32
	mobile  bool
	bursty  bool
}

// cityPayer chains the recipient's settlement payments the way the
// sync bench's feeder does: each settlement spends its predecessor's
// change output, so coin selection stays O(1) across hundreds of
// settlements.
type cityPayer struct {
	key  *bccrypto.ECKey
	lock []byte
	op   chain.OutPoint
	val  uint64
}

// citySim is one tier's world.
type citySim struct {
	cfg   CityConfig
	tier  CityTier
	sched *simtime.Scheduler
	rng   *mrand.Rand
	wan   *netsim.Network

	chain  *chain.Chain
	pool   *chain.Mempool
	miner  *chain.Miner
	ledger *fairex.Node
	payer  *cityPayer

	channel  *lora.Channel
	gateways []*cityGateway
	devices  []*cityDevice

	end    time.Time
	width  float64 // city side length in meters
	seen   map[cityFrameKey]bool
	sentAt map[cityFrameKey]time.Time

	// credits accumulates per-gateway payouts since the last settle.
	credits []uint64

	res CityTierResult
}

func cityDevEUI(idx int) lora.DevEUI {
	var eui lora.DevEUI
	binary.BigEndian.PutUint32(eui[0:4], uint32(idx))
	eui[7] = 0xc7
	return eui
}

func cityDevIdx(eui lora.DevEUI) int {
	return int(binary.BigEndian.Uint32(eui[0:4]))
}

// newCitySim builds one tier: the gateway lattice, the device
// population and the settlement chain.
func newCitySim(cfg CityConfig, tier CityTier) (*citySim, error) {
	s := &citySim{
		cfg:     cfg,
		tier:    tier,
		sched:   simtime.NewScheduler(simOrigin),
		rng:     mrand.New(mrand.NewSource(cfg.Seed + int64(tier.Devices)*1_000_003 + int64(tier.Gateways))),
		wan:     netsim.NewPlanetLab(cfg.Seed, tier.Gateways+1),
		seen:    make(map[cityFrameKey]bool),
		sentAt:  make(map[cityFrameKey]time.Time),
		credits: make([]uint64, tier.Gateways),
		end:     simOrigin.Add(cfg.SimDuration),
	}
	s.res.Devices = tier.Devices
	s.res.Gateways = tier.Gateways

	// Settlement chain: the recipient's payer key is funded in genesis,
	// one authorized miner anchors the batches.
	payerKey, err := bccrypto.GenerateECKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	minerWallet, err := wallet.New(rand.Reader)
	if err != nil {
		return nil, err
	}
	payerLock := script.PayToPubKeyHash(payerKey.PubKeyHash())
	params := chain.DefaultParams()
	params.BlockInterval = cfg.BlockInterval
	genesis := chain.GenesisBlock(map[[20]byte]uint64{payerKey.PubKeyHash(): 1 << 40})
	c, err := chain.New(params, genesis)
	if err != nil {
		return nil, err
	}
	c.AuthorizeMiner(minerWallet.PublicBytes())
	s.chain = c
	s.pool = chain.NewMempool()
	s.pool.UseVerifier(c.Verifier())
	s.miner = chain.NewMiner(minerWallet.Key(), c, s.pool, rand.Reader)
	s.ledger = &fairex.Node{Chain: c, Pool: s.pool}
	coinbase := genesis.Txs[0]
	for i, out := range coinbase.Outputs {
		if out.Value == 1<<40 {
			s.payer = &cityPayer{
				key:  payerKey,
				lock: payerLock,
				op:   chain.OutPoint{TxID: coinbase.ID(), Index: uint32(i)},
				val:  out.Value,
			}
		}
	}
	if s.payer == nil {
		return nil, errors.New("citybench: genesis did not fund the payer")
	}

	// Radio substrate: gateways on a square lattice; only they carry
	// receive handlers, so the channel's spatial grid indexes exactly
	// the lattice.
	s.channel = lora.NewChannel(s.sched, lora.DefaultPathLoss(), lora.DefaultPHY())
	side := int(math.Ceil(math.Sqrt(float64(tier.Gateways))))
	s.width = float64(side-1) * cfg.GatewaySpacing
	if side < 2 {
		s.width = cfg.GatewaySpacing
	}
	for i := 0; i < tier.Gateways; i++ {
		pos := lora.Position{
			X: float64(i%side) * cfg.GatewaySpacing,
			Y: float64(i/side) * cfg.GatewaySpacing,
		}
		var payout [20]byte
		binary.BigEndian.PutUint32(payout[:4], uint32(i))
		payout[19] = 0x9a
		g := &cityGateway{
			idx:   i,
			radio: s.channel.NewRadio(fmt.Sprintf("citygw-%d", i), pos),
			lock:  script.PayToPubKeyHash(payout),
		}
		g.radio.OnReceive(func(f lora.RxFrame) { s.onGatewayRx(g, f) })
		s.gateways = append(s.gateways, g)
	}

	for i := 0; i < tier.Devices; i++ {
		duty, err := lora.NewDutyCycle(cfg.DutyCycle)
		if err != nil {
			return nil, err
		}
		d := &cityDevice{
			idx:    i,
			radio:  s.channel.NewRadio(fmt.Sprintf("citydev-%d", i), s.randomPos()),
			duty:   duty,
			sf:     s.pickSF(),
			eui:    cityDevEUI(i),
			mobile: s.rng.Float64() < cfg.MobileFraction,
			bursty: s.rng.Float64() < cfg.BurstFraction,
		}
		s.devices = append(s.devices, d)
	}
	return s, nil
}

func (s *citySim) randomPos() lora.Position {
	return lora.Position{X: s.rng.Float64() * s.width, Y: s.rng.Float64() * s.width}
}

func (s *citySim) pickSF() lora.SpreadingFactor {
	n := s.rng.Intn(100)
	for _, w := range citySFWeights {
		if n < w.pct {
			return w.sf
		}
		n -= w.pct
	}
	return lora.SF12
}

// recipientIdx is the recipient's WAN node (gateways occupy 0..G-1).
func (s *citySim) recipientIdx() int { return s.tier.Gateways }

// diurnalRate is the arrival-rate multiplier at virtual instant t.
func (s *citySim) diurnalRate(t time.Time) float64 {
	if s.cfg.DiurnalAmplitude <= 0 || s.cfg.DiurnalPeriod <= 0 {
		return 1
	}
	phase := 2 * math.Pi * float64(t.Sub(simOrigin)) / float64(s.cfg.DiurnalPeriod)
	rate := 1 + s.cfg.DiurnalAmplitude*math.Sin(phase)
	if rate < 0.1 {
		rate = 0.1
	}
	return rate
}

// start arms every recurring process: device uplinks, roaming, gateway
// churn, settlement and mining.
func (s *citySim) start() {
	for _, d := range s.devices {
		d := d
		jitter := time.Duration(s.rng.Int63n(int64(s.cfg.MeanUplinkInterval)))
		s.sched.After(jitter, func(now time.Time) { s.deviceTick(d, now) })
		if d.mobile {
			wait := s.cfg.MoveInterval + time.Duration(s.rng.Int63n(int64(s.cfg.MoveInterval)))
			s.sched.After(wait, func(now time.Time) { s.moveTick(d, now) })
		}
	}
	for _, g := range s.gateways {
		g := g
		s.sched.After(s.expDuration(s.cfg.ChurnInterval), func(now time.Time) { s.churnTick(g, now) })
	}
	s.sched.After(s.cfg.SettleInterval, s.settleTick)
	s.sched.After(s.cfg.BlockInterval, s.mineTick)
}

// expDuration draws an exponential interval with the given mean.
func (s *citySim) expDuration(mean time.Duration) time.Duration {
	d := time.Duration(s.rng.ExpFloat64() * float64(mean))
	if d < time.Second {
		d = time.Second
	}
	return d
}

// deviceTick emits one uplink event (a single frame, or a burst) and
// schedules the next at the diurnally modulated rate.
func (s *citySim) deviceTick(d *cityDevice, now time.Time) {
	if !now.Before(s.end) {
		return
	}
	frames := 1
	if d.bursty && s.cfg.BurstSize > 1 {
		frames = s.cfg.BurstSize
	}
	s.sendFrames(d, frames)
	gap := time.Duration(float64(s.expDuration(s.cfg.MeanUplinkInterval)) / s.diurnalRate(now))
	s.sched.After(gap, func(t time.Time) { s.deviceTick(d, t) })
}

// sendFrames enqueues count frames; burst frames chain off each other's
// transmit completion so the device's half-duplex radio never eats its
// own burst.
func (s *citySim) sendFrames(d *cityDevice, count int) {
	counter := d.counter
	d.counter++
	key := cityFrameKey{dev: d.idx, counter: counter}
	s.sentAt[key] = s.sched.Now()
	s.res.FramesSent++

	payload := make([]byte, cityPayloadLen)
	binary.BigEndian.PutUint32(payload[:4], counter)
	frame := &lora.Frame{Type: lora.FrameData, DevEUI: d.eui, Counter: counter, Payload: payload}
	s.transmitWhenFree(d, frame.Encode(), func(at time.Time, airtime time.Duration) {
		if count <= 1 {
			return
		}
		// Next burst frame once this one has left the antenna.
		s.sched.At(at.Add(airtime+50*time.Millisecond), func(time.Time) {
			s.sendFrames(d, count-1)
		})
	})
}

// transmitWhenFree mirrors the PoC firmware's transmit path at the
// device's own spreading factor: wait out the duty budget, listen
// before talk, back off on a busy channel.
func (s *citySim) transmitWhenFree(d *cityDevice, payload []byte, onSent func(at time.Time, airtime time.Duration)) {
	expected, err := lora.TimeOnAir(len(payload), d.sf, s.channel.PHY())
	if err != nil {
		return
	}
	var attempt func(tries int)
	attempt = func(tries int) {
		freq := lora.DefaultChannels[s.rng.Intn(len(lora.DefaultChannels))]
		at := d.duty.NextFree(s.sched.Now(), expected)
		s.sched.At(at, func(t time.Time) {
			if tries < maxCADBackoffs && d.radio.Busy(freq, d.sf) {
				backoff := 20*time.Millisecond + time.Duration(s.rng.Int63n(int64(180*time.Millisecond)))
				s.sched.After(backoff, func(time.Time) { attempt(tries + 1) })
				return
			}
			airtime, err := d.radio.Transmit(payload, d.sf, freq)
			if err != nil {
				// Half-duplex clash with this device's own in-flight
				// frame; retry like a busy channel.
				if tries < maxCADBackoffs {
					backoff := 20*time.Millisecond + time.Duration(s.rng.Int63n(int64(180*time.Millisecond)))
					s.sched.After(backoff, func(time.Time) { attempt(tries + 1) })
				}
				return
			}
			d.duty.Record(t, airtime)
			if onSent != nil {
				onSent(t, airtime)
			}
		})
	}
	attempt(0)
}

// moveTick relocates a roaming device and re-arms.
func (s *citySim) moveTick(d *cityDevice, now time.Time) {
	if !now.Before(s.end) {
		return
	}
	d.radio.SetPos(s.randomPos())
	s.res.DeviceMoves++
	s.sched.After(s.cfg.MoveInterval, func(t time.Time) { s.moveTick(d, t) })
}

// churnTick takes a gateway down for OutageDuration and re-arms the
// next outage after an exponential uptime.
func (s *citySim) churnTick(g *cityGateway, now time.Time) {
	if !now.Before(s.end) {
		return
	}
	g.downUntil = now.Add(s.cfg.OutageDuration)
	s.res.GatewayOutages++
	wait := s.cfg.OutageDuration + s.expDuration(s.cfg.ChurnInterval)
	s.sched.After(wait, func(t time.Time) { s.churnTick(g, t) })
}

// onGatewayRx forwards an overheard frame across the WAN to the
// recipient — unless the gateway is in an outage window.
func (s *citySim) onGatewayRx(g *cityGateway, f lora.RxFrame) {
	if g.downUntil.After(f.Received) {
		s.res.OutageDrops++
		return
	}
	frame, err := lora.DecodeFrame(f.Payload)
	if err != nil || frame.Type != lora.FrameData {
		return
	}
	lat := s.wan.Latency(g.idx, s.recipientIdx())
	s.sched.After(lat, func(t time.Time) { s.onRecipient(g, frame, t) })
}

// onRecipient dedupes by (device, counter): the first gateway to land a
// copy earns the delivery credit and stops the latency clock.
func (s *citySim) onRecipient(g *cityGateway, frame *lora.Frame, at time.Time) {
	key := cityFrameKey{dev: cityDevIdx(frame.DevEUI), counter: frame.Counter}
	if s.seen[key] {
		s.res.Duplicates++
		return
	}
	s.seen[key] = true
	s.res.FramesDelivered++
	if created, ok := s.sentAt[key]; ok {
		s.res.Latencies = append(s.res.Latencies, at.Sub(created))
		delete(s.sentAt, key)
	}
	s.credits[g.idx] += s.cfg.PricePerDelivery
}

// settleTick batches the accumulated credits into one chained payment
// with one output per credited gateway, in gateway order.
func (s *citySim) settleTick(now time.Time) {
	s.settle()
	if now.Before(s.end) {
		s.sched.After(s.cfg.SettleInterval, s.settleTick)
	}
}

// settle builds, signs and submits the batch payment; a no-op when no
// gateway earned anything since the last batch.
func (s *citySim) settle() {
	var total uint64
	outputs := []chain.TxOut{{Value: 0, Lock: s.payer.lock}} // change, filled below
	payouts := 0
	for i, c := range s.credits {
		if c == 0 {
			continue
		}
		outputs = append(outputs, chain.TxOut{Value: c, Lock: s.gateways[i].lock})
		total += c
		payouts++
		s.credits[i] = 0
	}
	if payouts == 0 {
		return
	}
	outputs[0].Value = s.payer.val - total
	tx := &chain.Tx{
		Version: 1,
		Inputs:  []chain.TxIn{{Prev: s.payer.op}},
		Outputs: outputs,
	}
	digest := tx.SigHash(0, s.payer.lock)
	sig, err := s.payer.key.SignDigest(rand.Reader, digest[:])
	if err != nil {
		return
	}
	tx.Inputs[0].Unlock = script.UnlockP2PKH(sig, s.payer.key.PublicBytes())
	if err := s.ledger.Submit(tx); err != nil {
		return
	}
	s.payer.op = chain.OutPoint{TxID: tx.ID(), Index: 0}
	s.payer.val -= total
	s.res.SettleTxs++
	s.res.PayoutOutputs += payouts
	s.res.CreditsPaid += total
}

// mineTick anchors pending settlements; the loop outlives the traffic
// by two intervals so the final batch confirms inside the run.
func (s *citySim) mineTick(now time.Time) {
	if s.pool.Len() > 0 {
		if _, err := s.miner.Mine(now); err == nil {
			s.res.Blocks++
		}
	}
	if now.Before(s.end.Add(2 * s.cfg.BlockInterval)) {
		s.sched.After(s.cfg.BlockInterval, s.mineTick)
	}
}

// runCityTier executes one tier to completion.
func runCityTier(cfg CityConfig, tier CityTier) (*CityTierResult, error) {
	wallStart := time.Now()
	s, err := newCitySim(cfg, tier)
	if err != nil {
		return nil, err
	}
	s.start()
	s.sched.Run()
	// Credits delivered after the last in-run settle: one final batch.
	s.settle()
	if s.pool.Len() > 0 {
		if _, err := s.miner.Mine(s.sched.Now()); err == nil {
			s.res.Blocks++
		}
	}
	s.res.Channel = s.channel.Stats
	s.res.Latency = Summarize(s.res.Latencies)
	if s.res.FramesSent > 0 {
		s.res.SuccessRate = float64(s.res.FramesDelivered) / float64(s.res.FramesSent)
	}
	s.res.WallClockMS = msSince(wallStart)
	if s.res.WallClockMS > 0 {
		s.res.FramesPerWallSec = float64(s.res.FramesSent) / (s.res.WallClockMS / 1000)
	}
	return &s.res, nil
}

// RunCityBench runs every tier of the scaling curve, smallest first.
func RunCityBench(cfg CityConfig) ([]*CityTierResult, error) {
	if len(cfg.Tiers) == 0 {
		return nil, errors.New("citybench: at least one tier required")
	}
	if cfg.SimDuration <= 0 || cfg.MeanUplinkInterval <= 0 || cfg.SettleInterval <= 0 ||
		cfg.BlockInterval <= 0 || cfg.GatewaySpacing <= 0 || cfg.PricePerDelivery == 0 {
		return nil, fmt.Errorf("citybench: durations, spacing and price must be positive: %+v", cfg)
	}
	for _, tier := range cfg.Tiers {
		if tier.Devices <= 0 || tier.Gateways <= 0 {
			return nil, fmt.Errorf("citybench: tier %+v must be positive", tier)
		}
	}
	var results []*CityTierResult
	for _, tier := range cfg.Tiers {
		res, err := runCityTier(cfg, tier)
		if err != nil {
			return nil, fmt.Errorf("citybench tier %dx%d: %w", tier.Devices, tier.Gateways, err)
		}
		results = append(results, res)
	}
	return results, nil
}

// WriteCityBench prints the scaling curve as a table.
func WriteCityBench(w io.Writer, cfg CityConfig, results []*CityTierResult) {
	fmt.Fprintf(w, "== City scale: %s of traffic, %.0f m lattice pitch, settle every %s ==\n",
		cfg.SimDuration, cfg.GatewaySpacing, cfg.SettleInterval)
	fmt.Fprintf(w, "%8s %5s %8s %9s %7s %9s %9s %9s %6s %7s %8s %9s\n",
		"devices", "gws", "sent", "delivered", "succ", "lat p50", "lat p95", "lat max",
		"txs", "payouts", "wall", "frames/s")
	for _, r := range results {
		fmt.Fprintf(w, "%8d %5d %8d %9d %5.1f%% %9s %9s %9s %6d %7d %7.1fs %9.0f\n",
			r.Devices, r.Gateways, r.FramesSent, r.FramesDelivered, 100*r.SuccessRate,
			r.Latency.Median.Round(time.Millisecond), r.Latency.P95.Round(time.Millisecond),
			r.Latency.Max.Round(time.Millisecond),
			r.SettleTxs, r.PayoutOutputs, r.WallClockMS/1000, r.FramesPerWallSec)
	}
	fmt.Fprintln(w)
}

// cityJSONTier is one machine-readable scaling-curve row.
type cityJSONTier struct {
	Devices          int     `json:"devices"`
	Gateways         int     `json:"gateways"`
	FramesSent       uint64  `json:"frames_sent"`
	FramesDelivered  uint64  `json:"frames_delivered"`
	Duplicates       uint64  `json:"duplicates"`
	OutageDrops      uint64  `json:"outage_drops"`
	SuccessRate      float64 `json:"success_rate"`
	LatencyMedianMS  float64 `json:"latency_median_ms"`
	LatencyP95MS     float64 `json:"latency_p95_ms"`
	LatencyMaxMS     float64 `json:"latency_max_ms"`
	SettleTxs        int     `json:"settle_txs"`
	Blocks           int     `json:"blocks"`
	PayoutOutputs    int     `json:"payout_outputs"`
	CreditsPaid      uint64  `json:"credits_paid"`
	GatewayOutages   int     `json:"gateway_outages"`
	DeviceMoves      int     `json:"device_moves"`
	WallClockMS      float64 `json:"wall_clock_ms"`
	FramesPerWallSec float64 `json:"frames_per_wall_sec"`
}

// cityJSON is the BENCH_city.json document bcwan-benchgate consumes.
type cityJSON struct {
	Seed                 int64          `json:"seed"`
	SimDurationMS        int64          `json:"sim_duration_ms"`
	MeanUplinkIntervalMS int64          `json:"mean_uplink_interval_ms"`
	SettleIntervalMS     int64          `json:"settle_interval_ms"`
	BlockIntervalMS      int64          `json:"block_interval_ms"`
	GatewaySpacingM      float64        `json:"gateway_spacing_m"`
	Tiers                []cityJSONTier `json:"tiers"`
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// WriteCityBenchJSON writes the scaling curve as machine-readable JSON
// to path, creating parent directories as needed.
func WriteCityBenchJSON(path string, cfg CityConfig, results []*CityTierResult) error {
	doc := cityJSON{
		Seed:                 cfg.Seed,
		SimDurationMS:        cfg.SimDuration.Milliseconds(),
		MeanUplinkIntervalMS: cfg.MeanUplinkInterval.Milliseconds(),
		SettleIntervalMS:     cfg.SettleInterval.Milliseconds(),
		BlockIntervalMS:      cfg.BlockInterval.Milliseconds(),
		GatewaySpacingM:      cfg.GatewaySpacing,
	}
	for _, r := range results {
		doc.Tiers = append(doc.Tiers, cityJSONTier{
			Devices:          r.Devices,
			Gateways:         r.Gateways,
			FramesSent:       r.FramesSent,
			FramesDelivered:  r.FramesDelivered,
			Duplicates:       r.Duplicates,
			OutageDrops:      r.OutageDrops,
			SuccessRate:      r.SuccessRate,
			LatencyMedianMS:  durMS(r.Latency.Median),
			LatencyP95MS:     durMS(r.Latency.P95),
			LatencyMaxMS:     durMS(r.Latency.Max),
			SettleTxs:        r.SettleTxs,
			Blocks:           r.Blocks,
			PayoutOutputs:    r.PayoutOutputs,
			CreditsPaid:      r.CreditsPaid,
			GatewayOutages:   r.GatewayOutages,
			DeviceMoves:      r.DeviceMoves,
			WallClockMS:      r.WallClockMS,
			FramesPerWallSec: r.FramesPerWallSec,
		})
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
