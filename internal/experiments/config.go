package experiments

import (
	"time"

	"bcwan/internal/lora"
)

// Config parameterizes one latency experiment run. The defaults mirror
// the paper's §5.2 setup: 5 PlanetLab-like nodes, 30 sensors per node,
// SF7 at 1 % duty cycle, 128-byte payload + header, an EC2-like master
// that is the only miner, and 2000 measured exchanges.
type Config struct {
	// Seed makes the run reproducible.
	Seed int64
	// Gateways is the number of foreign gateway nodes (5 in §5.2).
	Gateways int
	// SensorsPerGateway is the sensor population per gateway (30).
	SensorsPerGateway int
	// SF is the LoRa spreading factor (SF7).
	SF lora.SpreadingFactor
	// DutyCycle is the sensors' radio budget (0.01).
	DutyCycle float64
	// Exchanges is the total number of measured exchanges (2000).
	Exchanges int
	// MeanInterArrival spaces a sensor's consecutive exchanges.
	MeanInterArrival time.Duration
	// BlockInterval is the Multichain average mining time tunable.
	BlockInterval time.Duration
	// VerificationStall is how long a daemon's blockchain module is
	// unresponsive after each block arrival — the behaviour the paper
	// observed in Multichain ("the block verification made the
	// Multichain daemon stall ... upon each block arrival"). Zero
	// reproduces Fig. 5; the calibrated default reproduces Fig. 6.
	VerificationStall time.Duration
	// WaitConfirmations is the gateway's confirmation policy before
	// revealing eSk (0 in the PoC; the §6 ablation sweeps it).
	WaitConfirmations int64
	// DaemonProcessing models the per-step daemon overhead (RPC hop,
	// signature checks, transaction building) of the PoC's software
	// stack on 4-core/512 MB PlanetLab nodes.
	DaemonProcessing time.Duration
	// NodeCompute models the Nucleo-144's crypto time per message
	// (AES + RSA-512 encrypt + RSA-512 sign on a Cortex-M7).
	NodeCompute time.Duration
	// Price is the per-delivery price in chain units.
	Price uint64
	// ExchangeTimeout abandons an exchange (LoRa loss, stalled
	// daemon) after this long; the sensor retries as a new exchange.
	ExchangeTimeout time.Duration
	// MaxRetries bounds per-exchange LoRa retransmissions.
	MaxRetries int
}

// Baseline reproduces the shared §5.2 setup.
func Baseline() Config {
	return Config{
		Seed:              1,
		Gateways:          5,
		SensorsPerGateway: 30,
		SF:                lora.SF7,
		DutyCycle:         0.01,
		Exchanges:         2000,
		MeanInterArrival:  60 * time.Second,
		BlockInterval:     15 * time.Second,
		VerificationStall: 0,
		WaitConfirmations: 0,
		// Calibration: with three WAN legs and four daemon steps, a
		// 230 ms step overhead reproduces the paper's 1.604 s mean
		// (their stack crossed a Python LoRa layer, the Go daemon and
		// Multichain's JSON-RPC per step).
		DaemonProcessing: 230 * time.Millisecond,
		NodeCompute:      60 * time.Millisecond,
		Price:            100,
		ExchangeTimeout:  240 * time.Second,
		MaxRetries:       4,
	}
}

// Fig5Config is the "no block verification" configuration (mean 1.604 s
// in the paper).
func Fig5Config() Config {
	return Baseline()
}

// Fig6Config enables the verification stall (mean 30.241 s in the
// paper). The stall length is calibrated so that a step landing in a
// stall waits long enough to reproduce the order-of-magnitude blowup the
// paper reports.
func Fig6Config() Config {
	cfg := Baseline()
	cfg.VerificationStall = 13950 * time.Millisecond
	// Stall cycles stretch exchanges toward minutes; give attempts more
	// room before retrying.
	cfg.ExchangeTimeout = 360 * time.Second
	return cfg
}

// scale reduces an experiment for fast unit tests.
func (c Config) scale(gateways, sensors, exchanges int) Config {
	c.Gateways = gateways
	c.SensorsPerGateway = sensors
	c.Exchanges = exchanges
	return c
}
