package experiments

import (
	"crypto/rand"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"bcwan/internal/bccrypto"
	"bcwan/internal/chain"
	"bcwan/internal/daemon"
	"bcwan/internal/p2p"
	"bcwan/internal/wallet"
)

// RelayBenchConfig sizes the gossip-relay experiment: the ablation
// behind the inventory/compact-block relay (DESIGN.md §12). The same
// transaction-then-block workload runs twice over a sparse daemon mesh
// — once with the legacy full-payload flood, once with the inv/getdata
// + compact-block relay — and the bytes-on-wire plus time-to-full-
// propagation are compared side by side.
type RelayBenchConfig struct {
	Nodes       int // mesh size
	Degree      int // outbound dials per node (ring + doubling chords)
	TxsPerBlock int // payments gossiped then mined per block
	Blocks      int // mined blocks (workload rounds)
}

// DefaultRelayBenchConfig is the committed-baseline workload: a 16-node
// mesh where every block's transactions are gossiped to every pool
// before mining, the regime the compact sketch is designed for.
func DefaultRelayBenchConfig() RelayBenchConfig {
	return RelayBenchConfig{Nodes: 16, Degree: 3, TxsPerBlock: 32, Blocks: 3}
}

// RelayBenchResult is the measured cost of one relay mode.
type RelayBenchResult struct {
	Mode          string  // "flood" or "inv"
	BytesPerBlock int64   // total wire bytes sent across the mesh, per block round
	PropagationMS float64 // mean MineNow → every-node-at-height latency
	HitRate       float64 // compact reconstructions resolved from the mempool alone
	TxnRoundTrips uint64  // getblocktxn round trips across the mesh
	FullFallbacks uint64  // reconstructions abandoned for a full-block fetch
}

// relayBenchTimeout bounds each propagation wait; the mesh is in-memory
// and fault-free, so reaching it means the relay is broken, not slow.
const relayBenchTimeout = 30 * time.Second

// meshNeighbors returns the outbound dial targets of node i: the ring
// successor plus doubling chords (offsets 1, 2, 4, ...), which keeps the
// diameter logarithmic at any degree.
func meshNeighbors(i, nodes, degree int) []int {
	var out []int
	offset := 1
	for j := 0; j < degree; j++ {
		n := (i + offset) % nodes
		if n != i {
			out = append(out, n)
		}
		offset *= 2
	}
	return out
}

// relayMesh is one running instance of the benchmark cluster.
type relayMesh struct {
	cfg     RelayBenchConfig
	params  chain.Params
	nodes   []*daemon.Node
	wallets []*wallet.Wallet
}

// newRelayMesh boots cfg.Nodes daemons (node 0 mines) over a shared
// in-memory transport with the sparse dial plan, and waits until every
// link is bidirectional so announcements reach every neighbor.
func newRelayMesh(cfg RelayBenchConfig, flood bool) (*relayMesh, error) {
	minerKey, err := bccrypto.GenerateECKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	m := &relayMesh{cfg: cfg, params: chain.DefaultParams()}
	alloc := make(map[[20]byte]uint64, cfg.TxsPerBlock)
	for i := 0; i < cfg.TxsPerBlock; i++ {
		w, err := wallet.New(rand.Reader)
		if err != nil {
			return nil, err
		}
		m.wallets = append(m.wallets, w)
		alloc[w.PubKeyHash()] = 1 << 32
	}
	genesis := chain.GenesisBlock(alloc)

	tr := p2p.NewMemTransport()
	for i := 0; i < cfg.Nodes; i++ {
		nc := daemon.NodeConfig{
			Genesis:      genesis,
			Params:       m.params,
			Miners:       [][]byte{minerKey.PublicBytes()},
			Transport:    tr,
			MineInterval: time.Hour,
			FloodRelay:   flood,
		}
		if i == 0 {
			nc.MinerKey = minerKey
		}
		n, err := daemon.NewNode(nc)
		if err != nil {
			m.close()
			return nil, err
		}
		m.nodes = append(m.nodes, n)
	}

	// Dial the mesh, then sync-nudge so every dialee registers its
	// dialer (inbound peers register on the first received message).
	degrees := make([]map[int]bool, cfg.Nodes)
	for i := range degrees {
		degrees[i] = make(map[int]bool)
	}
	for i, n := range m.nodes {
		for _, j := range meshNeighbors(i, cfg.Nodes, cfg.Degree) {
			if err := n.Connect(m.nodes[j].P2PAddr()); err != nil {
				m.close()
				return nil, fmt.Errorf("relay bench: dial %d→%d: %w", i, j, err)
			}
			degrees[i][j] = true
			degrees[j][i] = true
		}
		n.RequestSync()
	}
	err = m.waitFor("bidirectional mesh", func() bool {
		for i, n := range m.nodes {
			if int(n.Telemetry().Gauge("bcwan_p2p_peer_count", "").Value()) != len(degrees[i]) {
				return false
			}
		}
		return true
	})
	if err != nil {
		m.close()
		return nil, err
	}
	return m, nil
}

func (m *relayMesh) close() {
	for _, n := range m.nodes {
		n.Close()
	}
}

func (m *relayMesh) waitFor(what string, cond func() bool) error {
	deadline := time.Now().Add(relayBenchTimeout)
	for !cond() {
		if time.Now().After(deadline) {
			return fmt.Errorf("relay bench: timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// sum adds one counter across every node in the mesh.
func (m *relayMesh) sum(name string) uint64 {
	var total uint64
	for _, n := range m.nodes {
		total += n.Telemetry().Counter(name, "").Value()
	}
	return total
}

// run drives the workload: per block, gossip TxsPerBlock payments from
// node 0 until every pool holds them, then mine and time full
// propagation of the block.
func (m *relayMesh) run(mode string) (*RelayBenchResult, error) {
	res := &RelayBenchResult{Mode: mode}
	miner := m.nodes[0]
	startBytes := m.sum("bcwan_p2p_bytes_out_total")
	var propagation time.Duration
	for round := 0; round < m.cfg.Blocks; round++ {
		for i, w := range m.wallets {
			tx, err := w.BuildPayment(miner.Chain().UTXO(), w.PubKeyHash(), 1000, 1)
			if err != nil {
				return nil, fmt.Errorf("relay bench: payment %d round %d: %w", i, round, err)
			}
			if err := miner.Ledger().Submit(tx); err != nil {
				return nil, fmt.Errorf("relay bench: submit %d round %d: %w", i, round, err)
			}
		}
		err := m.waitFor("warm pools", func() bool {
			for _, n := range m.nodes {
				if n.Ledger().Pool.Len() != m.cfg.TxsPerBlock {
					return false
				}
			}
			return true
		})
		if err != nil {
			return nil, err
		}
		want := int64(round + 1)
		start := time.Now()
		if _, err := miner.MineNow(); err != nil {
			return nil, fmt.Errorf("relay bench: mine round %d: %w", round, err)
		}
		err = m.waitFor(fmt.Sprintf("height %d everywhere", want), func() bool {
			for _, n := range m.nodes {
				if n.Chain().Height() != want {
					return false
				}
			}
			return true
		})
		if err != nil {
			return nil, err
		}
		propagation += time.Since(start)
	}
	// Let trailing announcements (re-relayed invs, duplicate sketches)
	// drain so both modes pay for their full message cost.
	time.Sleep(50 * time.Millisecond)

	res.BytesPerBlock = int64(m.sum("bcwan_p2p_bytes_out_total")-startBytes) / int64(m.cfg.Blocks)
	res.PropagationMS = float64(propagation.Microseconds()) / 1000 / float64(m.cfg.Blocks)
	hits := m.sum("bcwan_daemon_cmpct_hits_total")
	res.TxnRoundTrips = m.sum("bcwan_daemon_cmpct_txn_requests_total")
	res.FullFallbacks = m.sum("bcwan_daemon_cmpct_full_fallbacks_total")
	if attempts := hits + res.TxnRoundTrips + res.FullFallbacks; attempts > 0 {
		res.HitRate = float64(hits) / float64(attempts)
	}
	return res, nil
}

// RunRelayBench measures the workload under both relay modes: the
// legacy flood first (the baseline the paper's gossip layer started
// from), then the inventory/compact-block relay.
func RunRelayBench(cfg RelayBenchConfig) ([]*RelayBenchResult, error) {
	if cfg.Nodes < 2 || cfg.Degree < 1 || cfg.TxsPerBlock < 1 || cfg.Blocks < 1 {
		return nil, fmt.Errorf("relay bench config must be positive: %+v", cfg)
	}
	var results []*RelayBenchResult
	for _, mode := range []string{"flood", "inv"} {
		mesh, err := newRelayMesh(cfg, mode == "flood")
		if err != nil {
			return nil, err
		}
		res, err := mesh.run(mode)
		mesh.close()
		if err != nil {
			return nil, fmt.Errorf("relay bench %s: %w", mode, err)
		}
		results = append(results, res)
	}
	return results, nil
}

// RelayReductionRatio is flood bytes-per-block over inv bytes-per-block
// — the headline number of the relay redesign; 0 when either row is
// missing or non-positive.
func RelayReductionRatio(results []*RelayBenchResult) float64 {
	var flood, inv int64
	for _, r := range results {
		switch r.Mode {
		case "flood":
			flood = r.BytesPerBlock
		case "inv":
			inv = r.BytesPerBlock
		}
	}
	if flood <= 0 || inv <= 0 {
		return 0
	}
	return float64(flood) / float64(inv)
}

// WriteRelayBench prints both modes side by side with the byte
// reduction ratio the CI gate tracks.
func WriteRelayBench(w io.Writer, cfg RelayBenchConfig, results []*RelayBenchResult) {
	fmt.Fprintf(w, "== Gossip relay: flood vs inventory/compact (%d nodes, degree %d, %d tx × %d blocks) ==\n",
		cfg.Nodes, cfg.Degree, cfg.TxsPerBlock, cfg.Blocks)
	fmt.Fprintf(w, "%-8s %16s %16s %10s %14s %14s\n",
		"mode", "bytes/block", "propagation", "hit rate", "txn roundtrips", "full fallbacks")
	for _, r := range results {
		hit := "-"
		if r.Mode == "inv" {
			hit = fmt.Sprintf("%8.0f%%", 100*r.HitRate)
		}
		fmt.Fprintf(w, "%-8s %16d %13.2fms %10s %14d %14d\n",
			r.Mode, r.BytesPerBlock, r.PropagationMS, hit, r.TxnRoundTrips, r.FullFallbacks)
	}
	if ratio := RelayReductionRatio(results); ratio > 0 {
		fmt.Fprintf(w, "wire-byte reduction: %.1fx\n", ratio)
	}
	fmt.Fprintln(w)
}

// relayJSONRow is one machine-readable relay measurement.
type relayJSONRow struct {
	Mode          string  `json:"mode"`
	BytesPerBlock int64   `json:"bytes_per_block"`
	PropagationMS float64 `json:"propagation_ms"`
	HitRate       float64 `json:"hit_rate"`
	TxnRoundTrips uint64  `json:"txn_roundtrips"`
	FullFallbacks uint64  `json:"full_fallbacks"`
}

// relayJSON is the BENCH_relay.json document bcwan-benchgate consumes:
// it bounds the inv row's bytes_per_block against the committed
// baseline and floors its reconstruction hit rate.
type relayJSON struct {
	Nodes          int            `json:"nodes"`
	Degree         int            `json:"degree"`
	TxsPerBlock    int            `json:"txs_per_block"`
	Blocks         int            `json:"blocks"`
	ReductionRatio float64        `json:"reduction_ratio"`
	Results        []relayJSONRow `json:"results"`
}

// WriteRelayBenchJSON writes the measurements as machine-readable JSON
// to path, creating parent directories as needed.
func WriteRelayBenchJSON(path string, cfg RelayBenchConfig, results []*RelayBenchResult) error {
	doc := relayJSON{
		Nodes:          cfg.Nodes,
		Degree:         cfg.Degree,
		TxsPerBlock:    cfg.TxsPerBlock,
		Blocks:         cfg.Blocks,
		ReductionRatio: RelayReductionRatio(results),
	}
	for _, r := range results {
		doc.Results = append(doc.Results, relayJSONRow{
			Mode:          r.Mode,
			BytesPerBlock: r.BytesPerBlock,
			PropagationMS: r.PropagationMS,
			HitRate:       r.HitRate,
			TxnRoundTrips: r.TxnRoundTrips,
			FullFallbacks: r.FullFallbacks,
		})
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
