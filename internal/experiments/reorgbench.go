package experiments

import (
	"crypto/rand"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"bcwan/internal/chain"
	"bcwan/internal/script"
	"bcwan/internal/wallet"
)

// ReorgConfig sizes the reorganization-cost experiment: the ablation
// behind the undo-journal machinery. A depth-d reorg is performed on
// chains of increasing length; with per-block undo data the cost is
// O(d) disconnects + O(d+1) connects, so the rows should be flat where
// a replay-from-genesis design would scale linearly with chain length.
type ReorgConfig struct {
	ChainLengths []int // best-chain heights to measure at
	Depth        int   // blocks disconnected per reorg
	Iterations   int   // measured reorgs per chain length
}

// DefaultReorgConfig measures the acceptance bound of DESIGN.md §11: a
// depth-2 reorg at height 1,000 must land within 5x its cost at height
// 100.
func DefaultReorgConfig() ReorgConfig {
	return ReorgConfig{ChainLengths: []int{100, 1000}, Depth: 2, Iterations: 30}
}

// ReorgResult is the measured reorg cost at one chain length.
type ReorgResult struct {
	ChainLen   int
	Depth      int
	Iterations int
	Elapsed    time.Duration // total time inside the reorg-triggering AddBlock calls
	NsPerReorg int64
}

// reorgFixture owns one growing chain; each measured reorg forks
// Depth blocks below the tip and connects Depth+1 fork blocks, leaving
// the chain one block taller (so iterations never rewind each other).
type reorgFixture struct {
	c      *chain.Chain
	minerW *wallet.Wallet
	now    time.Time
	nonce  int64
}

// forkBlock builds a coinbase-only block on parent signed by the miner
// wallet. The nonce lands in the coinbase unlock script so fork blocks
// minting at the same height on different branches still have unique
// transaction IDs.
func (fix *reorgFixture) forkBlock(parent *chain.Block) (*chain.Block, error) {
	fix.nonce++
	coinbase := &chain.Tx{
		Inputs: []chain.TxIn{{
			Prev: chain.OutPoint{Index: 0xffffffff},
			Unlock: script.NewBuilder().
				AddInt64(parent.Header.Height + 1).
				AddInt64(fix.nonce).
				AddData([]byte("reorgbench")).Script(),
		}},
		Outputs: []chain.TxOut{{
			Value: fix.c.Params().CoinbaseReward,
			Lock:  script.PayToPubKeyHash(fix.minerW.PubKeyHash()),
		}},
	}
	b := &chain.Block{
		Header: chain.Header{
			Version:    1,
			PrevBlock:  parent.ID(),
			MerkleRoot: chain.MerkleRoot([]*chain.Tx{coinbase}),
			Time:       fix.now.UnixNano(),
			Height:     parent.Header.Height + 1,
		},
		Txs: []*chain.Tx{coinbase},
	}
	if err := b.Header.Sign(fix.minerW.Key(), rand.Reader); err != nil {
		return nil, err
	}
	return b, nil
}

// buildReorgFixture mines a coinbase-only chain of the given length.
func buildReorgFixture(blocks int) (*reorgFixture, error) {
	minerW, err := wallet.New(rand.Reader)
	if err != nil {
		return nil, err
	}
	genesis := chain.GenesisBlock(map[[20]byte]uint64{minerW.PubKeyHash(): 1 << 32})
	c, err := chain.New(chain.DefaultParams(), genesis)
	if err != nil {
		return nil, err
	}
	c.AuthorizeMiner(minerW.PublicBytes())
	miner := chain.NewMiner(minerW.Key(), c, chain.NewMempool(), rand.Reader)
	now := time.Date(2018, 12, 10, 0, 0, 0, 0, time.UTC)
	for i := 0; i < blocks; i++ {
		now = now.Add(15 * time.Second)
		if _, err := miner.Mine(now); err != nil {
			return nil, err
		}
	}
	return &reorgFixture{c: c, minerW: minerW, now: now}, nil
}

// measure performs cfg.Iterations depth-cfg.Depth reorgs, timing only
// the AddBlock calls of the overtaking branch.
func (fix *reorgFixture) measure(cfg ReorgConfig, chainLen int) (*ReorgResult, error) {
	res := &ReorgResult{ChainLen: chainLen, Depth: cfg.Depth, Iterations: cfg.Iterations}
	for i := 0; i < cfg.Iterations; i++ {
		tip := fix.c.Tip()
		parent, ok := fix.c.BlockAt(tip.Header.Height - int64(cfg.Depth))
		if !ok {
			return nil, fmt.Errorf("reorg bench: missing fork point below height %d", tip.Header.Height)
		}
		branch := make([]*chain.Block, 0, cfg.Depth+1)
		for j := 0; j <= cfg.Depth; j++ {
			b, err := fix.forkBlock(parent)
			if err != nil {
				return nil, err
			}
			branch = append(branch, b)
			parent = b
		}
		start := time.Now()
		for _, b := range branch {
			if err := fix.c.AddBlock(b); err != nil {
				return nil, fmt.Errorf("reorg bench: fork block %d: %w", b.Header.Height, err)
			}
		}
		res.Elapsed += time.Since(start)
		if fix.c.Tip().ID() != parent.ID() {
			return nil, fmt.Errorf("reorg bench: overtaking branch did not become best at iteration %d", i)
		}
	}
	if cfg.Iterations > 0 {
		res.NsPerReorg = res.Elapsed.Nanoseconds() / int64(cfg.Iterations)
	}
	return res, nil
}

// RunReorg measures the reorg cost at every configured chain length.
func RunReorg(cfg ReorgConfig) ([]*ReorgResult, error) {
	if cfg.Depth <= 0 || cfg.Iterations <= 0 || len(cfg.ChainLengths) == 0 {
		return nil, fmt.Errorf("reorg config must be positive: %+v", cfg)
	}
	var results []*ReorgResult
	for _, chainLen := range cfg.ChainLengths {
		if chainLen <= cfg.Depth {
			return nil, fmt.Errorf("reorg bench: chain length %d must exceed depth %d", chainLen, cfg.Depth)
		}
		fix, err := buildReorgFixture(chainLen)
		if err != nil {
			return nil, err
		}
		res, err := fix.measure(cfg, chainLen)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	return results, nil
}

// WriteReorg prints the reorg-cost table with each row's scaling ratio
// against the shortest chain — the number the CI gate bounds at 5x.
func WriteReorg(w io.Writer, cfg ReorgConfig, results []*ReorgResult) {
	fmt.Fprintf(w, "== Reorg cost (depth %d, %d reorgs per length) ==\n", cfg.Depth, cfg.Iterations)
	fmt.Fprintf(w, "%-12s %14s %10s\n", "chain length", "per reorg", "vs first")
	var base int64
	for _, r := range results {
		if base == 0 {
			base = r.NsPerReorg
		}
		ratio := ""
		if base > 0 {
			ratio = fmt.Sprintf("%9.2fx", float64(r.NsPerReorg)/float64(base))
		}
		fmt.Fprintf(w, "%-12d %14s %10s\n",
			r.ChainLen, time.Duration(r.NsPerReorg).Round(time.Microsecond), ratio)
	}
	fmt.Fprintln(w)
}

// reorgJSONRow is one machine-readable reorg measurement.
type reorgJSONRow struct {
	ChainLen   int   `json:"chain_len"`
	Depth      int   `json:"depth"`
	Iterations int   `json:"iterations"`
	NsPerReorg int64 `json:"ns_per_reorg"`
}

// reorgJSON is the BENCH_reorg.json document. ScalingRatio is the
// longest chain's per-reorg cost over the shortest chain's; bcwan-benchgate
// asserts it stays at or below the 5x acceptance bound.
type reorgJSON struct {
	Depth        int            `json:"depth"`
	ScalingRatio float64        `json:"scaling_ratio"`
	Results      []reorgJSONRow `json:"results"`
}

// ReorgScalingRatio is last-row cost over first-row cost (rows are in
// ascending chain-length order); 0 with fewer than two rows.
func ReorgScalingRatio(results []*ReorgResult) float64 {
	if len(results) < 2 || results[0].NsPerReorg <= 0 {
		return 0
	}
	return float64(results[len(results)-1].NsPerReorg) / float64(results[0].NsPerReorg)
}

// WriteReorgJSON writes the measurements as machine-readable JSON to
// path, creating parent directories as needed.
func WriteReorgJSON(path string, cfg ReorgConfig, results []*ReorgResult) error {
	doc := reorgJSON{Depth: cfg.Depth, ScalingRatio: ReorgScalingRatio(results)}
	for _, r := range results {
		doc.Results = append(doc.Results, reorgJSONRow{
			ChainLen:   r.ChainLen,
			Depth:      r.Depth,
			Iterations: r.Iterations,
			NsPerReorg: r.NsPerReorg,
		})
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
