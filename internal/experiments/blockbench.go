package experiments

import (
	"crypto/rand"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"bcwan/internal/chain"
	"bcwan/internal/telemetry"
	"bcwan/internal/wallet"
)

// BlockConnectConfig sizes the block-connect throughput experiment: the
// ablation behind Params.VerifyWorkers. A fixed sequence of signed
// blocks is built once, then replayed into fresh chains that differ only
// in worker count and signature-cache priming.
type BlockConnectConfig struct {
	Blocks      int   // blocks in the replayed sequence
	TxsPerBlock int   // payment transactions per block (plus a coinbase)
	Workers     []int // VerifyWorkers values to sweep; 0 = seed's sequential path
	// Repeats replays each configuration this many times and reports
	// the fastest run, suppressing scheduler noise so the CI regression
	// gate's 25% threshold measures the code, not the runner.
	Repeats int
}

// DefaultBlockConnectConfig is the paper-scale sweep: the worker widths
// of the Fig. 5/6 ablation discussion.
func DefaultBlockConnectConfig() BlockConnectConfig {
	return BlockConnectConfig{Blocks: 12, TxsPerBlock: 24, Workers: []int{0, 1, 2, 4, 8}, Repeats: 5}
}

// BlockConnectResult is one replay measurement. The signature-cache
// fields come from the replay chain's telemetry snapshot, covering the
// whole replay (warm runs include the mempool-priming verifications).
type BlockConnectResult struct {
	Workers         int           // VerifyWorkers for this run
	Warm            bool          // true when txs passed through the mempool first (shared sig cache primed)
	Elapsed         time.Duration // total time inside Chain.AddBlock
	Blocks          int
	Txs             int // payment txs connected (coinbases excluded)
	TxsPerSec       float64
	SigCacheHits    uint64
	SigCacheMisses  uint64
	SigCacheHitRate float64 // hits / (hits + misses); 0 when no lookups ran
}

// blockConnectFixture is the prebuilt block sequence plus everything a
// replay needs to reconstruct an identical chain.
type blockConnectFixture struct {
	params   chain.Params
	genesis  []byte
	blocks   [][]byte
	payments int // per block
}

// buildBlockConnectFixture constructs the canonical block sequence: n
// wallets each spend their single output once per block, so every block
// carries exactly n independent signed payments.
func buildBlockConnectFixture(cfg BlockConnectConfig) (*blockConnectFixture, error) {
	params := chain.DefaultParams()

	wallets := make([]*wallet.Wallet, cfg.TxsPerBlock)
	alloc := make(map[[20]byte]uint64, cfg.TxsPerBlock)
	for i := range wallets {
		w, err := wallet.New(rand.Reader)
		if err != nil {
			return nil, err
		}
		wallets[i] = w
		alloc[w.PubKeyHash()] = 1 << 32
	}
	minerW, err := wallet.New(rand.Reader)
	if err != nil {
		return nil, err
	}

	genesis := chain.GenesisBlock(alloc)
	c, err := chain.New(params, genesis)
	if err != nil {
		return nil, err
	}
	c.AuthorizeMiner(minerW.PublicBytes())
	pool := chain.NewMempool()
	pool.UseVerifier(c.Verifier())
	miner := chain.NewMiner(minerW.Key(), c, pool, rand.Reader)

	now := time.Date(2018, 12, 10, 0, 0, 0, 0, time.UTC)
	fix := &blockConnectFixture{
		params:   params,
		genesis:  genesis.Serialize(),
		payments: cfg.TxsPerBlock,
	}
	for b := 0; b < cfg.Blocks; b++ {
		for _, w := range wallets {
			tx, err := w.BuildPayment(c.UTXO(), w.PubKeyHash(), 1000, 1)
			if err != nil {
				return nil, err
			}
			if err := pool.Accept(tx, c.UTXO(), c.Height(), params); err != nil {
				return nil, err
			}
		}
		now = now.Add(params.BlockInterval)
		blk, err := miner.Mine(now)
		if err != nil {
			return nil, err
		}
		fix.blocks = append(fix.blocks, blk.Serialize())
	}
	return fix, nil
}

// replay connects the fixture's blocks into a fresh chain configured
// with the given worker count, timing only Chain.AddBlock. When warm is
// true, each block's payments are first admitted through a mempool
// sharing the chain's verifier — the production handoff — so block
// connect finds their script checks already cached.
func (fix *blockConnectFixture) replay(workers int, warm bool) (*BlockConnectResult, error) {
	params := fix.params
	params.VerifyWorkers = workers
	genesis, err := chain.DeserializeBlock(fix.genesis)
	if err != nil {
		return nil, err
	}
	c, err := chain.New(params, genesis)
	if err != nil {
		return nil, err
	}
	first, err := chain.DeserializeBlock(fix.blocks[0])
	if err != nil {
		return nil, err
	}
	c.AuthorizeMiner(first.Header.MinerPubKey)

	pool := chain.NewMempool()
	pool.UseVerifier(c.Verifier())
	// A per-replay registry isolates each run's signature-cache stats.
	reg := telemetry.NewRegistry()
	c.Instrument(reg)
	pool.Instrument(reg)

	res := &BlockConnectResult{Workers: workers, Warm: warm, Blocks: len(fix.blocks)}
	for _, raw := range fix.blocks {
		blk, err := chain.DeserializeBlock(raw)
		if err != nil {
			return nil, err
		}
		if warm {
			for _, tx := range blk.Txs[1:] {
				if err := pool.Accept(tx, c.UTXO(), c.Height(), params); err != nil {
					return nil, fmt.Errorf("mempool admission: %w", err)
				}
			}
		}
		start := time.Now()
		err = c.AddBlock(blk)
		res.Elapsed += time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("block %d: %w", blk.Header.Height, err)
		}
		res.Txs += len(blk.Txs) - 1
	}
	if res.Elapsed > 0 {
		res.TxsPerSec = float64(res.Txs) / res.Elapsed.Seconds()
	}
	res.SigCacheHits = uint64(snapshotValue(reg, "bcwan_chain_sigcache_hits_total"))
	res.SigCacheMisses = uint64(snapshotValue(reg, "bcwan_chain_sigcache_misses_total"))
	if total := res.SigCacheHits + res.SigCacheMisses; total > 0 {
		res.SigCacheHitRate = float64(res.SigCacheHits) / float64(total)
	}
	return res, nil
}

// snapshotValue reads one unlabeled series from a registry snapshot,
// returning 0 when absent.
func snapshotValue(reg *telemetry.Registry, name string) float64 {
	for _, m := range reg.Snapshot() {
		if m.Name == name && len(m.Labels) == 0 {
			return m.Value
		}
	}
	return 0
}

// RunBlockConnect builds the block sequence once and replays it cold
// (empty signature cache) at every requested worker count, then warm
// (mempool-primed cache) at the same counts.
func RunBlockConnect(cfg BlockConnectConfig) ([]*BlockConnectResult, error) {
	if cfg.Blocks <= 0 || cfg.TxsPerBlock <= 0 {
		return nil, fmt.Errorf("block-connect config must be positive: %+v", cfg)
	}
	if len(cfg.Workers) == 0 {
		cfg.Workers = DefaultBlockConnectConfig().Workers
	}
	if cfg.Repeats <= 0 {
		cfg.Repeats = 1
	}
	fix, err := buildBlockConnectFixture(cfg)
	if err != nil {
		return nil, err
	}
	var results []*BlockConnectResult
	for _, warm := range []bool{false, true} {
		for _, w := range cfg.Workers {
			// Best of cfg.Repeats: the minimum elapsed time is the run
			// least disturbed by the scheduler. Cache stats are identical
			// across repeats (each replay starts from a fresh chain).
			var best *BlockConnectResult
			for r := 0; r < cfg.Repeats; r++ {
				res, err := fix.replay(w, warm)
				if err != nil {
					return nil, err
				}
				if best == nil || res.Elapsed < best.Elapsed {
					best = res
				}
			}
			results = append(results, best)
		}
	}
	return results, nil
}

// WriteBlockConnect prints the throughput sweep. The cold rows isolate
// the worker pool; the warm rows show the mempool→block-connect cache
// handoff, where block connect skips every script already verified at
// admission.
func WriteBlockConnect(w io.Writer, cfg BlockConnectConfig, results []*BlockConnectResult) {
	fmt.Fprintf(w, "== Block-connect throughput (%d blocks x %d txs) ==\n", cfg.Blocks, cfg.TxsPerBlock)
	fmt.Fprintf(w, "%-8s %-22s %12s %12s %9s\n", "workers", "sig cache", "connect", "txs/sec", "hit rate")
	var base float64
	for _, r := range results {
		cache := "cold"
		if r.Warm {
			cache = "warm (mempool-primed)"
		}
		speedup := ""
		if r.Workers == 0 && !r.Warm {
			base = r.TxsPerSec
		} else if base > 0 {
			speedup = fmt.Sprintf("  (%.2fx vs sequential cold)", r.TxsPerSec/base)
		}
		fmt.Fprintf(w, "%-8d %-22s %12s %12.0f %8.0f%%%s\n",
			r.Workers, cache, r.Elapsed.Round(time.Microsecond), r.TxsPerSec, r.SigCacheHitRate*100, speedup)
	}
	fmt.Fprintln(w)
}

// blockConnectJSONRow is one machine-readable sweep row.
type blockConnectJSONRow struct {
	Workers         int     `json:"workers"`
	Warm            bool    `json:"warm"`
	NsPerBlock      int64   `json:"ns_per_block"`
	BlocksPerSec    float64 `json:"blocks_per_sec"`
	TxsPerSec       float64 `json:"txs_per_sec"`
	SigCacheHits    uint64  `json:"sigcache_hits"`
	SigCacheMisses  uint64  `json:"sigcache_misses"`
	SigCacheHitRate float64 `json:"sigcache_hit_rate"`
}

// blockConnectJSON is the BENCH_blockconnect.json document.
type blockConnectJSON struct {
	Blocks      int                   `json:"blocks"`
	TxsPerBlock int                   `json:"txs_per_block"`
	Repeats     int                   `json:"repeats"`
	Results     []blockConnectJSONRow `json:"results"`
}

// WriteBlockConnectJSON writes the sweep as machine-readable JSON to
// path, creating parent directories as needed.
func WriteBlockConnectJSON(path string, cfg BlockConnectConfig, results []*BlockConnectResult) error {
	doc := blockConnectJSON{Blocks: cfg.Blocks, TxsPerBlock: cfg.TxsPerBlock, Repeats: cfg.Repeats}
	for _, r := range results {
		row := blockConnectJSONRow{
			Workers:         r.Workers,
			Warm:            r.Warm,
			TxsPerSec:       r.TxsPerSec,
			SigCacheHits:    r.SigCacheHits,
			SigCacheMisses:  r.SigCacheMisses,
			SigCacheHitRate: r.SigCacheHitRate,
		}
		if r.Blocks > 0 {
			row.NsPerBlock = r.Elapsed.Nanoseconds() / int64(r.Blocks)
		}
		if r.Elapsed > 0 {
			row.BlocksPerSec = float64(r.Blocks) / r.Elapsed.Seconds()
		}
		doc.Results = append(doc.Results, row)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
