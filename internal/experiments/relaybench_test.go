package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestMeshNeighbors(t *testing.T) {
	for i := 0; i < 16; i++ {
		ns := meshNeighbors(i, 16, 3)
		if len(ns) != 3 {
			t.Fatalf("node %d has %d neighbors, want 3", i, len(ns))
		}
		seen := map[int]bool{i: true}
		for _, n := range ns {
			if seen[n] {
				t.Fatalf("node %d neighbor list %v repeats or self-links", i, ns)
			}
			seen[n] = true
		}
	}
	// Degenerate mesh: a 2-node "ring" must still link the pair once.
	if ns := meshNeighbors(0, 2, 3); len(ns) == 0 {
		t.Fatal("2-node mesh has no links")
	}
}

func TestRelayBenchInvBeatsFlood(t *testing.T) {
	cfg := RelayBenchConfig{Nodes: 6, Degree: 2, TxsPerBlock: 6, Blocks: 2}
	results, err := RunRelayBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Mode != "flood" || results[1].Mode != "inv" {
		t.Fatalf("want [flood inv] rows, got %+v", results)
	}
	flood, inv := results[0], results[1]
	if inv.BytesPerBlock >= flood.BytesPerBlock {
		t.Fatalf("inv relay moved %d bytes/block, flood moved %d — no reduction",
			inv.BytesPerBlock, flood.BytesPerBlock)
	}
	if inv.HitRate < 0.9 {
		t.Fatalf("warm-pool reconstruction hit rate %.2f, want ≥ 0.90", inv.HitRate)
	}
	if inv.FullFallbacks != 0 {
		t.Fatalf("fault-free mesh fell back to %d full blocks", inv.FullFallbacks)
	}
	if ratio := RelayReductionRatio(results); ratio <= 1 {
		t.Fatalf("reduction ratio %.2f, want > 1", ratio)
	}

	var text bytes.Buffer
	WriteRelayBench(&text, cfg, results)
	if !bytes.Contains(text.Bytes(), []byte("wire-byte reduction")) {
		t.Fatalf("report missing reduction line:\n%s", text.String())
	}

	path := filepath.Join(t.TempDir(), "BENCH_relay.json")
	if err := WriteRelayBenchJSON(path, cfg, results); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Nodes          int     `json:"nodes"`
		ReductionRatio float64 `json:"reduction_ratio"`
		Results        []struct {
			Mode          string `json:"mode"`
			BytesPerBlock int64  `json:"bytes_per_block"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Nodes != cfg.Nodes || len(doc.Results) != 2 || doc.ReductionRatio <= 1 {
		t.Fatalf("JSON document malformed: %+v", doc)
	}
}
