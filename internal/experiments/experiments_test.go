package experiments

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bcwan/internal/lora"
)

// Scaled-down configs keep unit tests fast; the full paper-scale runs
// live in the bench harness.
func smallFig5() Config { return Fig5Config().scale(2, 5, 30) }
func smallFig6() Config { return Fig6Config().scale(2, 5, 30) }

func TestFig5RunCompletesAllExchanges(t *testing.T) {
	res, err := Run(smallFig5())
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed+res.Failed != 30 {
		t.Fatalf("completed %d + failed %d != 30", res.Completed, res.Failed)
	}
	if res.Failed > 2 {
		t.Fatalf("failed = %d, want ≤ 2 without stalls", res.Failed)
	}
	// Without verification stalls the mean sits in the low seconds
	// (paper: 1.604 s).
	if res.Summary.Mean < 500*time.Millisecond || res.Summary.Mean > 5*time.Second {
		t.Fatalf("mean = %v, want low seconds", res.Summary.Mean)
	}
}

func TestFig6StallDominatesLatency(t *testing.T) {
	res5, err := Run(smallFig5())
	if err != nil {
		t.Fatal(err)
	}
	res6, err := Run(smallFig6())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline: verification blows latency up by an order
	// of magnitude (1.604 s → 30.241 s ≈ 19×). Require ≥ 5× at this
	// small scale.
	ratio := float64(res6.Summary.Mean) / float64(res5.Summary.Mean)
	if ratio < 5 {
		t.Fatalf("stall ratio = %.1fx, want ≥ 5x (paper ≈ 19x)", ratio)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(smallFig5())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallFig5())
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary.Mean != b.Summary.Mean || a.Completed != b.Completed {
		t.Fatalf("same seed, different results: %v vs %v", a.Summary, b.Summary)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := smallFig5()
	cfg.Gateways = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero gateways accepted")
	}
}

func TestBudgetTableMatchesPaperOrder(t *testing.T) {
	rows, err := BudgetTable(132, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 SFs", len(rows))
	}
	// SF7 budget ≈ paper's 183 (same order; see EXPERIMENTS.md).
	sf7 := rows[0]
	if sf7.SF != lora.SF7 || sf7.MsgsPerHour < 120 || sf7.MsgsPerHour > 220 {
		t.Fatalf("SF7 budget = %.1f, want same order as paper's 183", sf7.MsgsPerHour)
	}
	// Budgets fall monotonically with SF until the payload stops
	// fitting (SF10+ caps at 51 B < 132 B).
	if rows[1].MsgsPerHour >= rows[0].MsgsPerHour {
		t.Fatal("SF8 budget not below SF7")
	}
	for _, r := range rows[3:] {
		if r.MsgsPerHour != 0 {
			t.Fatalf("%s: 132 B payload should not fit", r.SF)
		}
	}
}

func TestSummarizeStats(t *testing.T) {
	lat := []time.Duration{
		1 * time.Second, 2 * time.Second, 3 * time.Second,
		4 * time.Second, 10 * time.Second,
	}
	s := Summarize(lat)
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Mean != 4*time.Second {
		t.Fatalf("mean = %v, want 4s", s.Mean)
	}
	if s.Median != 3*time.Second {
		t.Fatalf("median = %v, want 3s", s.Median)
	}
	if s.Min != time.Second || s.Max != 10*time.Second {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.StdDev <= 0 {
		t.Fatal("stddev not positive")
	}
	if Summarize(nil).Count != 0 {
		t.Fatal("empty sample not zero")
	}
}

func TestHistogram(t *testing.T) {
	lat := []time.Duration{
		100 * time.Millisecond, 150 * time.Millisecond, 1200 * time.Millisecond,
	}
	h := NewHistogram(lat, time.Second)
	if len(h.Counts) != 2 || h.Counts[0] != 2 || h.Counts[1] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	out := h.Render(10)
	if !strings.Contains(out, "#") {
		t.Fatalf("render = %q", out)
	}
	if NewHistogram(nil, time.Second).Render(10) == "" {
		t.Fatal("empty histogram renders nothing")
	}
}

func TestSweepConfirmationsAddsBlockLatency(t *testing.T) {
	base := smallFig5()
	base.Exchanges = 10
	base.SensorsPerGateway = 2
	results, err := SweepConfirmations(base, []int64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// One confirmation adds roughly a block interval (15 s) to the
	// mean.
	added := results[1].Summary.Mean - results[0].Summary.Mean
	if added < base.BlockInterval/2 {
		t.Fatalf("1 confirmation added only %v, want ≥ %v", added, base.BlockInterval/2)
	}
}

func TestSweepSpreadingFactorRaisesLatency(t *testing.T) {
	base := smallFig5()
	base.Exchanges = 10
	base.SensorsPerGateway = 2
	results, err := SweepSpreadingFactor(base, []lora.SpreadingFactor{lora.SF7, lora.SF8})
	if err != nil {
		t.Fatal(err)
	}
	if results[1].Summary.Mean <= results[0].Summary.Mean {
		t.Fatalf("SF8 mean %v not above SF7 mean %v",
			results[1].Summary.Mean, results[0].Summary.Mean)
	}
}

func TestSpreadingFactorAboveSF8CannotCarryExchange(t *testing.T) {
	// EU868 caps SF9 payloads at 115 B; the 148 B (Em‖Sig‖@R) data
	// payload does not fit in a single frame, so every exchange fails —
	// the protocol as specified is SF7/SF8-only without fragmentation.
	base := smallFig5()
	base.Exchanges = 4
	base.SensorsPerGateway = 2
	base.SF = lora.SF9
	base.ExchangeTimeout = 30 * time.Second
	base.MaxRetries = 0
	res, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 0 {
		t.Fatalf("completed = %d, want 0 at SF9", res.Completed)
	}
	if res.Failed != 4 {
		t.Fatalf("failed = %d, want 4", res.Failed)
	}
}

func TestDoubleSpendZeroConfirmationsLoses(t *testing.T) {
	res, err := RunDoubleSpend(DoubleSpendConfig{
		Seed:              3,
		Trials:            6,
		WaitConfirmations: 0,
		RaceWinProb:       1.0, // attacker always wins the race
		Price:             100,
		BlockInterval:     15 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LossRate != 1.0 {
		t.Fatalf("loss rate = %.2f, want 1.0 when the attacker always wins", res.LossRate)
	}
	if res.AddedLatency != 0 {
		t.Fatalf("added latency = %v, want 0", res.AddedLatency)
	}
}

func TestDoubleSpendConfirmationsProtect(t *testing.T) {
	res, err := RunDoubleSpend(DoubleSpendConfig{
		Seed:              3,
		Trials:            6,
		WaitConfirmations: 1,
		RaceWinProb:       1.0,
		Price:             100,
		BlockInterval:     15 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LossRate != 0 {
		t.Fatalf("loss rate = %.2f, want 0 with 1 confirmation on a permissioned chain", res.LossRate)
	}
	if res.AddedLatency != 15*time.Second {
		t.Fatalf("added latency = %v, want one block interval", res.AddedLatency)
	}
}

func TestDoubleSpendHonestRecipientSafe(t *testing.T) {
	res, err := RunDoubleSpend(DoubleSpendConfig{
		Seed:              3,
		Trials:            4,
		WaitConfirmations: 0,
		RaceWinProb:       0, // attacker never wins
		Price:             100,
		BlockInterval:     15 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LossRate != 0 {
		t.Fatalf("loss rate = %.2f, want 0 when the race is never won", res.LossRate)
	}
}

func TestReputationComparison(t *testing.T) {
	cmp := RunReputationComparison(5, 10, 0.3, 0.5, 3000, 100)
	if cmp.Reputation.LossRate <= 0 {
		t.Fatal("reputation baseline lost nothing — comparison vacuous")
	}
	if cmp.BcWANLossRate != 0 {
		t.Fatal("BcWAN loss rate must be structurally zero")
	}
}

func TestLegacyLatencyFasterThanBcWAN(t *testing.T) {
	cfg := smallFig5()
	legacy, err := LegacyLatency(cfg, 200)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Mean >= res.Summary.Mean {
		t.Fatalf("legacy mean %v not below BcWAN mean %v — the decentralization overhead must be visible",
			legacy.Mean, res.Summary.Mean)
	}
	// But BcWAN stays "close to real-time" (§6): within low seconds.
	if res.Summary.Mean > 5*time.Second {
		t.Fatalf("BcWAN mean %v not near-real-time", res.Summary.Mean)
	}
}

func TestReportsRender(t *testing.T) {
	res, err := Run(smallFig5())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	WriteFigureReport(&sb, "Fig. 5", PaperFig5MeanSeconds, res)
	rows, err := BudgetTable(132, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	WriteBudgetTable(&sb, rows, 132, 0.01)
	WriteSweep(&sb, "sweep", []string{"a"}, []*Result{res})
	WriteReputation(&sb, RunReputationComparison(1, 5, 0.2, 0.5, 500, 100))
	legacy, err := LegacyLatency(smallFig5(), 50)
	if err != nil {
		t.Fatal(err)
	}
	WriteLegacyComparison(&sb, legacy, res)
	out := sb.String()
	for _, want := range []string{"Fig. 5", "paper:", "msgs/sensor/h", "reputation:", "overhead factor"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestLabelHelpers(t *testing.T) {
	if got := SFLabels([]lora.SpreadingFactor{lora.SF7})[0]; got != "SF7" {
		t.Fatal(got)
	}
	if got := DurationLabels([]time.Duration{time.Second})[0]; got != "1s" {
		t.Fatal(got)
	}
	if got := IntLabels([]int{7})[0]; got != "7" {
		t.Fatal(got)
	}
	if got := Int64Labels([]int64{7})[0]; got != "7" {
		t.Fatal(got)
	}
}

func TestLatencyRatioFig6OverFig5SameOrderAsPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale calibration check")
	}
	res5, err := Run(Fig5Config().scale(3, 8, 120))
	if err != nil {
		t.Fatal(err)
	}
	res6, err := Run(Fig6Config().scale(3, 8, 120))
	if err != nil {
		t.Fatal(err)
	}
	paperRatio := PaperFig6MeanSeconds / PaperFig5MeanSeconds // ≈ 18.9
	ratio := float64(res6.Summary.Mean) / float64(res5.Summary.Mean)
	if ratio < paperRatio/3 || ratio > paperRatio*3 {
		t.Fatalf("ratio = %.1f, want within 3x of paper's %.1f", ratio, paperRatio)
	}
	// And the absolute means stay in the paper's regimes.
	if math.Abs(res5.Summary.Mean.Seconds()-PaperFig5MeanSeconds) > 1.5 {
		t.Fatalf("Fig5 mean %.2fs too far from paper's %.2fs",
			res5.Summary.Mean.Seconds(), PaperFig5MeanSeconds)
	}
	if res6.Summary.Mean.Seconds() < 10 || res6.Summary.Mean.Seconds() > 90 {
		t.Fatalf("Fig6 mean %.2fs outside the paper's regime (~30s)", res6.Summary.Mean.Seconds())
	}
}

func TestBlockConnectSweep(t *testing.T) {
	cfg := BlockConnectConfig{Blocks: 3, TxsPerBlock: 4, Workers: []int{0, 2}}
	results, err := RunBlockConnect(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two cache states x two worker counts, ordered cold-first.
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4", len(results))
	}
	for i, r := range results {
		if r.Blocks != cfg.Blocks || r.Txs != cfg.Blocks*cfg.TxsPerBlock {
			t.Fatalf("result %d connected %d blocks / %d txs, want %d / %d",
				i, r.Blocks, r.Txs, cfg.Blocks, cfg.Blocks*cfg.TxsPerBlock)
		}
		if wantWarm := i >= 2; r.Warm != wantWarm {
			t.Fatalf("result %d warm = %v, want %v", i, r.Warm, wantWarm)
		}
		if r.TxsPerSec <= 0 {
			t.Fatalf("result %d throughput not positive", i)
		}
		if r.SigCacheHitRate < 0 || r.SigCacheHitRate > 1 {
			t.Fatalf("result %d hit rate = %v", i, r.SigCacheHitRate)
		}
		// Warm replays verified every payment at admission, so block
		// connect must find those checks cached.
		if r.Warm && r.SigCacheHits == 0 {
			t.Fatalf("result %d warm replay had zero sig-cache hits", i)
		}
	}
	var buf strings.Builder
	WriteBlockConnect(&buf, cfg, results)
	if !strings.Contains(buf.String(), "warm (mempool-primed)") {
		t.Fatalf("report missing warm rows:\n%s", buf.String())
	}

	path := filepath.Join(t.TempDir(), "results", "BENCH_blockconnect.json")
	if err := WriteBlockConnectJSON(path, cfg, results); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Blocks  int `json:"blocks"`
		Results []struct {
			Workers         int     `json:"workers"`
			NsPerBlock      int64   `json:"ns_per_block"`
			BlocksPerSec    float64 `json:"blocks_per_sec"`
			SigCacheHitRate float64 `json:"sigcache_hit_rate"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Blocks != cfg.Blocks || len(doc.Results) != len(results) {
		t.Fatalf("JSON doc = %d blocks / %d rows, want %d / %d",
			doc.Blocks, len(doc.Results), cfg.Blocks, len(results))
	}
	for i, row := range doc.Results {
		if row.NsPerBlock <= 0 || row.BlocksPerSec <= 0 {
			t.Fatalf("JSON row %d has non-positive timing: %+v", i, row)
		}
	}
}

func TestBlockConnectRejectsBadConfig(t *testing.T) {
	if _, err := RunBlockConnect(BlockConnectConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
}
