package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestSyncBenchSnapshotBeatsReplay(t *testing.T) {
	cfg := SyncBenchConfig{Height: 600, SnapshotInterval: 128, SnapshotChunkSize: 32 << 10, TxsPerBlock: 2}
	results, err := RunSyncBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Mode != "replay" || results[1].Mode != "snapshot" {
		t.Fatalf("want [replay snapshot] rows, got %+v", results)
	}
	replay, snapshot := results[0], results[1]
	if replay.PruneBase != 0 || replay.BlocksReplayed < cfg.Height {
		t.Fatalf("replay join should fetch full history: %+v", replay)
	}
	if snapshot.PruneBase < cfg.SnapshotInterval || snapshot.PruneBase%cfg.SnapshotInterval != 0 {
		t.Fatalf("snapshot prune base = %d, want a boundary ≥ %d", snapshot.PruneBase, cfg.SnapshotInterval)
	}
	if snapshot.BlocksReplayed >= replay.BlocksReplayed {
		t.Fatalf("snapshot join executed %d bodies, replay %d — no body savings",
			snapshot.BlocksReplayed, replay.BlocksReplayed)
	}
	// At this small height the wall-clock gap is noisy, so the test only
	// asserts direction on the structural numbers and that the ratio is
	// well-formed; the committed full-scale run is what CI gates.
	if ratio := SyncSpeedupRatio(results); ratio <= 0 {
		t.Fatalf("speedup ratio %.2f, want > 0", ratio)
	}

	var text bytes.Buffer
	WriteSyncBench(&text, cfg, results)
	if !bytes.Contains(text.Bytes(), []byte("first-delivery speedup")) {
		t.Fatalf("report missing speedup line:\n%s", text.String())
	}

	path := filepath.Join(t.TempDir(), "BENCH_sync.json")
	if err := WriteSyncBenchJSON(path, cfg, results); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Height       int64   `json:"height"`
		SpeedupRatio float64 `json:"speedup_ratio"`
		Results      []struct {
			Mode      string `json:"mode"`
			PruneBase int64  `json:"prune_base"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Height != cfg.Height || len(doc.Results) != 2 || doc.Results[1].PruneBase == 0 {
		t.Fatalf("JSON document malformed: %+v", doc)
	}
}

func TestSyncBenchRejectsDegenerateConfig(t *testing.T) {
	if _, err := RunSyncBench(SyncBenchConfig{Height: 0, SnapshotInterval: 8, SnapshotChunkSize: 1, TxsPerBlock: 1}); err == nil {
		t.Fatal("want error for zero height")
	}
	if _, err := RunSyncBench(SyncBenchConfig{Height: 32, SnapshotInterval: 8, SnapshotChunkSize: 1, TxsPerBlock: 0}); err == nil {
		t.Fatal("want error for a bodiless workload")
	}
	// No boundary strictly behind the tip: nothing to bootstrap from.
	if _, err := RunSyncBench(SyncBenchConfig{Height: 10, SnapshotInterval: 8, SnapshotChunkSize: 1, TxsPerBlock: 1}); err == nil {
		t.Fatal("want error when no snapshot boundary fits")
	}
}
