package experiments

import (
	"fmt"
	"io"
	"time"

	"bcwan/internal/lora"
)

// Paper-reported reference values, for side-by-side output.
const (
	// PaperFig5MeanSeconds is the paper's mean exchange latency without
	// block verification.
	PaperFig5MeanSeconds = 1.604
	// PaperFig6MeanSeconds is the paper's mean with block verification.
	PaperFig6MeanSeconds = 30.241
	// PaperMsgsPerHour is the §5.2 "theoretical maximum" per sensor.
	PaperMsgsPerHour = 183
)

// WriteFigureReport prints one latency figure in the same terms the
// paper reports: per-exchange series statistics plus a distribution.
func WriteFigureReport(w io.Writer, title string, paperMean float64, res *Result) {
	fmt.Fprintf(w, "== %s ==\n", title)
	fmt.Fprintf(w, "setup: %d gateways x %d sensors, %s, duty %.0f%%, block interval %s, stall %s, %d exchanges\n",
		res.Config.Gateways, res.Config.SensorsPerGateway, res.Config.SF,
		res.Config.DutyCycle*100, res.Config.BlockInterval,
		res.Config.VerificationStall, res.Config.Exchanges)
	fmt.Fprintf(w, "completed %d, failed %d, LoRa retries %d, blocks mined %d\n",
		res.Completed, res.Failed, res.Retries, res.Blocks)
	fmt.Fprintf(w, "measured: %s\n", res.Summary)
	if paperMean > 0 {
		fmt.Fprintf(w, "paper:    mean=%.3fs   (ratio measured/paper = %.2f)\n",
			paperMean, res.Summary.Mean.Seconds()/paperMean)
	}
	width := res.Summary.Max / 24
	if width <= 0 {
		width = time.Second
	}
	fmt.Fprintf(w, "latency distribution:\n%s", NewHistogram(res.Latencies, width).Render(40))
	fmt.Fprintln(w)
}

// WriteBudgetTable prints the §5.2 duty-cycle capacity rows.
func WriteBudgetTable(w io.Writer, rows []DutyCycleBudget, payloadLen int, duty float64) {
	fmt.Fprintf(w, "== Duty-cycle budget (payload %d B, duty %.0f%%) ==\n", payloadLen, duty*100)
	fmt.Fprintf(w, "%-6s %12s %14s\n", "SF", "time-on-air", "msgs/sensor/h")
	for _, r := range rows {
		if r.MsgsPerHour == 0 {
			fmt.Fprintf(w, "%-6s %12s %14s\n", r.SF, "-", "payload too big")
			continue
		}
		fmt.Fprintf(w, "%-6s %12s %14.1f\n", r.SF, r.TimeOnAir.Round(time.Millisecond), r.MsgsPerHour)
	}
	fmt.Fprintf(w, "paper (§5.2, SF7): %d msgs/sensor/h\n\n", PaperMsgsPerHour)
}

// WriteSweep prints one summary row per sweep point.
func WriteSweep(w io.Writer, title string, labels []string, results []*Result) {
	fmt.Fprintf(w, "== %s ==\n", title)
	fmt.Fprintf(w, "%-14s %10s %10s %10s %10s %8s\n", "point", "mean", "median", "p95", "max", "failed")
	for i, res := range results {
		fmt.Fprintf(w, "%-14s %9.3fs %9.3fs %9.3fs %9.3fs %8d\n",
			labels[i], res.Summary.Mean.Seconds(), res.Summary.Median.Seconds(),
			res.Summary.P95.Seconds(), res.Summary.Max.Seconds(), res.Failed)
	}
	fmt.Fprintln(w)
}

// WriteDoubleSpend prints the §6 attack table rows.
func WriteDoubleSpend(w io.Writer, results []*DoubleSpendResult) {
	fmt.Fprintln(w, "== Double-spend exposure vs confirmation policy (§6) ==")
	fmt.Fprintf(w, "%-14s %12s %14s %14s\n", "confirmations", "loss rate", "keys lost", "added latency")
	for _, r := range results {
		fmt.Fprintf(w, "%-14d %11.1f%% %14d %14s\n",
			r.Config.WaitConfirmations, r.LossRate*100, r.KeyRevealedUnpaid, r.AddedLatency)
	}
	fmt.Fprintln(w)
}

// WriteReputation prints the §4.4 baseline comparison.
func WriteReputation(w io.Writer, cmp ReputationComparison) {
	fmt.Fprintln(w, "== Fair exchange vs reputation baseline (§4.4) ==")
	r := cmp.Reputation
	fmt.Fprintf(w, "reputation: %d exchanges, %d delivered, %d cheated, %d refused, loss rate %.2f%%\n",
		r.Exchanges, r.Delivered, r.Cheated, r.Refused, r.LossRate*100)
	fmt.Fprintf(w, "bcwan:      loss rate %.2f%% (script-enforced atomic exchange)\n\n", cmp.BcWANLossRate*100)
}

// WriteLegacyComparison prints the centralized-baseline latency next to a
// BcWAN result.
func WriteLegacyComparison(w io.Writer, legacy LatencyStats, bcwan *Result) {
	fmt.Fprintln(w, "== Legacy LoRaWAN (Fig. 1) vs BcWAN (Fig. 2) ==")
	fmt.Fprintf(w, "legacy (trusted network server): %s\n", legacy)
	fmt.Fprintf(w, "bcwan  (blockchain, no TTP):     %s\n", bcwan.Summary)
	fmt.Fprintf(w, "overhead factor (mean): %.2fx\n\n",
		bcwan.Summary.Mean.Seconds()/legacy.Mean.Seconds())
}

// SFLabels renders sweep labels for spreading factors.
func SFLabels(sfs []lora.SpreadingFactor) []string {
	out := make([]string, len(sfs))
	for i, sf := range sfs {
		out[i] = sf.String()
	}
	return out
}

// DurationLabels renders sweep labels for durations.
func DurationLabels(ds []time.Duration) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.String()
	}
	return out
}

// IntLabels renders sweep labels for integers.
func IntLabels(ns []int) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = fmt.Sprintf("%d", n)
	}
	return out
}

// Int64Labels renders sweep labels for int64s.
func Int64Labels(ns []int64) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = fmt.Sprintf("%d", n)
	}
	return out
}
