package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestCityBenchSmoke runs the quick campaign end to end and checks the
// structural invariants of the city world: traffic flows, dedupe works,
// churn and roaming actually happen, and the settlement chain pays out
// exactly one credit per first-accepted frame.
func TestCityBenchSmoke(t *testing.T) {
	cfg := QuickCityConfig()
	results, err := RunCityBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(cfg.Tiers) {
		t.Fatalf("got %d tiers, want %d", len(results), len(cfg.Tiers))
	}
	for i, r := range results {
		tier := cfg.Tiers[i]
		if r.Devices != tier.Devices || r.Gateways != tier.Gateways {
			t.Errorf("tier %d: %dx%d, want %dx%d", i, r.Devices, r.Gateways, tier.Devices, tier.Gateways)
		}
		if r.FramesSent == 0 || r.FramesDelivered == 0 {
			t.Fatalf("tier %d: no traffic (sent %d, delivered %d)", i, r.FramesSent, r.FramesDelivered)
		}
		if r.SuccessRate < 0.8 {
			t.Errorf("tier %d: success rate %.3f below smoke floor 0.8", i, r.SuccessRate)
		}
		if r.Duplicates == 0 {
			t.Errorf("tier %d: no duplicate receptions — the lattice should overhear most frames at several gateways", i)
		}
		if r.GatewayOutages == 0 || r.DeviceMoves == 0 {
			t.Errorf("tier %d: churn/roaming idle (outages %d, moves %d)", i, r.GatewayOutages, r.DeviceMoves)
		}
		if r.SettleTxs == 0 || r.Blocks == 0 || r.PayoutOutputs == 0 {
			t.Errorf("tier %d: settlement chain idle (txs %d, blocks %d, payouts %d)",
				i, r.SettleTxs, r.Blocks, r.PayoutOutputs)
		}
		// Every first-accepted frame is worth exactly one credit, and
		// the final post-run batch settles everything delivered.
		if want := r.FramesDelivered * cfg.PricePerDelivery; r.CreditsPaid != want {
			t.Errorf("tier %d: credits paid %d, want %d (%d deliveries × %d)",
				i, r.CreditsPaid, want, r.FramesDelivered, cfg.PricePerDelivery)
		}
		if uint64(len(r.Latencies)) != r.FramesDelivered {
			t.Errorf("tier %d: %d latency samples for %d deliveries", i, len(r.Latencies), r.FramesDelivered)
		}
		if r.Latency.P95 <= 0 || r.Latency.Median <= 0 {
			t.Errorf("tier %d: degenerate latency summary %+v", i, r.Latency)
		}
		if r.Channel.Transmissions == 0 || r.Channel.Deliveries == 0 {
			t.Errorf("tier %d: channel stats idle: %+v", i, r.Channel)
		}
	}
}

// TestCityBenchDeterminism re-runs one tier with the same seed and
// requires identical results: device placement, SF mix, traffic,
// roaming, churn, WAN latencies and settlement all draw from seeded
// generators in scheduler order, so nothing but wall-clock may differ.
func TestCityBenchDeterminism(t *testing.T) {
	cfg := QuickCityConfig()
	cfg.Tiers = cfg.Tiers[:1]
	a, err := RunCityBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCityBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x, y := a[0], b[0]
	if x.FramesSent != y.FramesSent || x.FramesDelivered != y.FramesDelivered ||
		x.Duplicates != y.Duplicates || x.OutageDrops != y.OutageDrops {
		t.Errorf("traffic diverged: %d/%d/%d/%d vs %d/%d/%d/%d",
			x.FramesSent, x.FramesDelivered, x.Duplicates, x.OutageDrops,
			y.FramesSent, y.FramesDelivered, y.Duplicates, y.OutageDrops)
	}
	if x.Channel != y.Channel {
		t.Errorf("channel stats diverged: %+v vs %+v", x.Channel, y.Channel)
	}
	if x.SettleTxs != y.SettleTxs || x.Blocks != y.Blocks ||
		x.PayoutOutputs != y.PayoutOutputs || x.CreditsPaid != y.CreditsPaid {
		t.Errorf("settlement diverged: %d/%d/%d/%d vs %d/%d/%d/%d",
			x.SettleTxs, x.Blocks, x.PayoutOutputs, x.CreditsPaid,
			y.SettleTxs, y.Blocks, y.PayoutOutputs, y.CreditsPaid)
	}
	if x.GatewayOutages != y.GatewayOutages || x.DeviceMoves != y.DeviceMoves {
		t.Errorf("churn/roaming diverged: %d/%d vs %d/%d",
			x.GatewayOutages, x.DeviceMoves, y.GatewayOutages, y.DeviceMoves)
	}
	if len(x.Latencies) != len(y.Latencies) {
		t.Fatalf("latency sample counts diverged: %d vs %d", len(x.Latencies), len(y.Latencies))
	}
	for i := range x.Latencies {
		if x.Latencies[i] != y.Latencies[i] {
			t.Fatalf("latency sample %d diverged: %v vs %v", i, x.Latencies[i], y.Latencies[i])
		}
	}
}

// TestCityBenchJSON round-trips the scaling-curve document the CI gate
// consumes.
func TestCityBenchJSON(t *testing.T) {
	cfg := QuickCityConfig()
	cfg.Tiers = cfg.Tiers[:1]
	results, err := RunCityBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "results", "BENCH_city.json")
	if err := WriteCityBenchJSON(path, cfg, results); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Seed          int64 `json:"seed"`
		SimDurationMS int64 `json:"sim_duration_ms"`
		Tiers         []struct {
			Devices     int     `json:"devices"`
			Gateways    int     `json:"gateways"`
			SuccessRate float64 `json:"success_rate"`
			SettleTxs   int     `json:"settle_txs"`
		} `json:"tiers"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Seed != cfg.Seed || doc.SimDurationMS != cfg.SimDuration.Milliseconds() {
		t.Errorf("header = seed %d / %d ms, want %d / %d", doc.Seed, doc.SimDurationMS,
			cfg.Seed, cfg.SimDuration.Milliseconds())
	}
	if len(doc.Tiers) != 1 || doc.Tiers[0].Devices != results[0].Devices ||
		doc.Tiers[0].Gateways != results[0].Gateways ||
		doc.Tiers[0].SuccessRate != results[0].SuccessRate ||
		doc.Tiers[0].SettleTxs != results[0].SettleTxs {
		t.Errorf("tiers round-trip mismatch: %+v vs %+v", doc.Tiers, results[0])
	}
}

// TestCityBenchConfigValidation rejects degenerate campaigns.
func TestCityBenchConfigValidation(t *testing.T) {
	if _, err := RunCityBench(CityConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	cfg := QuickCityConfig()
	cfg.Tiers = []CityTier{{0, 4}}
	if _, err := RunCityBench(cfg); err == nil {
		t.Error("zero-device tier accepted")
	}
	cfg = QuickCityConfig()
	cfg.SimDuration = 0
	if _, err := RunCityBench(cfg); err == nil {
		t.Error("zero-duration campaign accepted")
	}
}
