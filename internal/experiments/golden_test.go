package experiments

import (
	"testing"
	"time"

	"bcwan/internal/lora"
)

// goldenRun pins one experiment configuration to the exact output of the
// pre-heap pre-grid engine (linear-scan Sim timers, all-pairs radio
// delivery, rescanning duty cycle), captured on the seed tree immediately
// before the engines were replaced. Any drift in timer fire order, radio
// delivery/collision outcomes or duty-cycle arithmetic shows up here as a
// changed latency distribution or channel counter.
type goldenRun struct {
	name      string
	cfg       Config
	completed int
	failed    int
	retries   int
	blocks    int
	mean      time.Duration
	median    time.Duration
	p95       time.Duration
	max       time.Duration
	channel   lora.ChannelStats
}

var goldenRuns = []goldenRun{
	{
		name:      "fig5-small",
		cfg:       Fig5Config().scale(2, 5, 30),
		completed: 30,
		retries:   1,
		blocks:    14,
		mean:      1661790299,
		median:    1634427268,
		p95:       1782620083,
		max:       1852764656,
		channel:   lora.ChannelStats{Transmissions: 91, Deliveries: 453, Collisions: 0, OutOfRange: 546, HalfDuplex: 2},
	},
	{
		name:      "fig6-small",
		cfg:       Fig6Config().scale(2, 5, 30),
		completed: 30,
		retries:   55,
		blocks:    15,
		mean:      26506761272,
		median:    15667960731,
		p95:       60576664779,
		max:       75673895634,
		channel:   lora.ChannelStats{Transmissions: 199, Deliveries: 716, Collisions: 258, OutOfRange: 1194, HalfDuplex: 21},
	},
	{
		name:      "fig5-mid",
		cfg:       Fig5Config().scale(3, 8, 120),
		completed: 120,
		retries:   6,
		blocks:    36,
		mean:      1678826391,
		median:    1641484574,
		p95:       1737930287,
		max:       5998003506,
		channel:   lora.ChannelStats{Transmissions: 374, Deliveries: 2952, Collisions: 16, OutOfRange: 6732, HalfDuplex: 24},
	},
}

// TestGoldenFigureEquivalence replays the fig5/fig6 configurations and
// requires results identical to the seed engine. The fig6 case is the
// sharpest probe: verification stalls align many retries on the same
// deadline, so any tie-break or ordering change cascades into different
// collision counts.
func TestGoldenFigureEquivalence(t *testing.T) {
	for _, g := range goldenRuns {
		g := g
		t.Run(g.name, func(t *testing.T) {
			res, err := Run(g.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Completed != g.completed || res.Failed != g.failed || res.Retries != g.retries {
				t.Errorf("completed/failed/retries = %d/%d/%d, golden %d/%d/%d",
					res.Completed, res.Failed, res.Retries, g.completed, g.failed, g.retries)
			}
			if res.Blocks != g.blocks {
				t.Errorf("blocks = %d, golden %d", res.Blocks, g.blocks)
			}
			if res.Summary.Mean != g.mean || res.Summary.Median != g.median ||
				res.Summary.P95 != g.p95 || res.Summary.Max != g.max {
				t.Errorf("latency mean/median/p95/max = %d/%d/%d/%d, golden %d/%d/%d/%d",
					res.Summary.Mean, res.Summary.Median, res.Summary.P95, res.Summary.Max,
					g.mean, g.median, g.p95, g.max)
			}
			if res.Channel != g.channel {
				t.Errorf("channel stats = %+v, golden %+v", res.Channel, g.channel)
			}
		})
	}
}
