package experiments

import (
	"bytes"
	"crypto/rand"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"bcwan/internal/bccrypto"
	"bcwan/internal/chain"
	"bcwan/internal/daemon"
	"bcwan/internal/p2p"
	"bcwan/internal/script"
	"bcwan/internal/wallet"
)

// SyncBenchConfig sizes the cold-start experiment behind the headers-
// first sync redesign (DESIGN.md §13): a miner builds Height blocks of
// history, then a fresh gateway joins and the time from first dial to
// first settled delivery is measured twice — once over the legacy
// genesis-replay path (every body fetched and executed), once over the
// headers + signed-snapshot bootstrap.
type SyncBenchConfig struct {
	Height            int64 // server chain height before the joiner dials
	SnapshotInterval  int64 // miner commitment spacing
	SnapshotChunkSize int   // served chunk payload size in bytes
	TxsPerBlock       int   // payment bodies mined into every block
}

// DefaultSyncBenchConfig is the committed-baseline workload: the
// height-100k join of the paper's gateway cold-start scenario, with a
// snapshot boundary close enough to the tip that the backfilled tail
// stays a few dozen getdata batches, and enough payment traffic per
// block that replaying history costs what it costs in production —
// script verification of every body, not just the header spine.
func DefaultSyncBenchConfig() SyncBenchConfig {
	return SyncBenchConfig{Height: 100_000, SnapshotInterval: 8192, SnapshotChunkSize: 256 << 10, TxsPerBlock: 4}
}

// SyncBenchResult is the measured cost of one join mode.
type SyncBenchResult struct {
	Mode            string  // "replay" or "snapshot"
	ColdStartMS     float64 // dial → caught up with the server tip
	FirstDeliveryMS float64 // dial → first payment settled on the joiner
	BytesIn         int64   // wire bytes the joiner received
	PruneBase       int64   // joiner's horizon after the join (0 = full history)
	BlocksReplayed  int64   // bodies fetched and executed during the join
}

// syncBenchTimeout bounds each wait; the mesh is in-memory and
// fault-free, so reaching it means the join path is broken, not slow.
const syncBenchTimeout = 10 * time.Minute

// legacySyncBatch mirrors the daemon's cap on one legacy sync response
// (maxSyncBlocks): the replay driver re-requests as soon as a full
// batch has connected.
const legacySyncBatch = 64

// joinerRetryInterval paces the snapshot joiner's stall-retry ticks and
// the replay driver's stall window alike, so neither mode is favored by
// the driver cadence. It sits above the worst-case batch verification
// time — the machine self-paces off responses, and a retry firing while
// a batch is still being checked would inject duplicate traffic.
const joinerRetryInterval = 25 * time.Millisecond

// syncBench is one server-plus-history instance; both join modes run
// against the same mined chain so the workloads differ only in path.
type syncBench struct {
	cfg     SyncBenchConfig
	params  chain.Params
	tr      p2p.Transport
	miners  [][]byte
	genesis *chain.Block
	server  *daemon.Node
	wallets []*wallet.Wallet // one spendable genesis output per mode
	feeder  *txFeeder
}

// txFeeder fills the mined history with real transaction bodies: one key
// chains zero-fee self-payments, each spending its predecessor's output,
// so coin selection stays O(1) no matter how long the chain grows (the
// wallet's generic path scans the whole UTXO set per payment, which
// would make a 100k-block build quadratic). These bodies are what
// separates the two join paths — the genesis replay re-executes every
// script, the snapshot bootstrap skips every body below the horizon.
type txFeeder struct {
	key  *bccrypto.ECKey
	lock []byte // the P2PKH lock on every output the feeder creates
	op   chain.OutPoint
	val  uint64
}

// next builds and signs the successor self-payment.
func (f *txFeeder) next() (*chain.Tx, error) {
	tx := &chain.Tx{
		Version: 1,
		Inputs:  []chain.TxIn{{Prev: f.op}},
		Outputs: []chain.TxOut{{Value: f.val, Lock: f.lock}},
	}
	digest := tx.SigHash(0, f.lock)
	sig, err := f.key.SignDigest(rand.Reader, digest[:])
	if err != nil {
		return nil, err
	}
	tx.Inputs[0].Unlock = script.UnlockP2PKH(sig, f.key.PublicBytes())
	f.op = chain.OutPoint{TxID: tx.ID(), Index: 0}
	return tx, nil
}

// newSyncBench mines cfg.Height coinbase blocks on an isolated miner
// daemon. Mining through the daemon (not an offline chain) keeps the
// snapshot side honest: the miner publishes its signed commitments at
// every interval boundary exactly as a production node would.
func newSyncBench(cfg SyncBenchConfig) (*syncBench, error) {
	minerKey, err := bccrypto.GenerateECKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	sb := &syncBench{
		cfg:    cfg,
		params: chain.DefaultParams(),
		tr:     p2p.NewMemTransport(),
		miners: [][]byte{minerKey.PublicBytes()},
	}
	alloc := make(map[[20]byte]uint64, 3)
	for i := 0; i < 2; i++ {
		w, err := wallet.New(rand.Reader)
		if err != nil {
			return nil, err
		}
		sb.wallets = append(sb.wallets, w)
		alloc[w.PubKeyHash()] = 1 << 32
	}
	feederKey, err := bccrypto.GenerateECKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	feedLock := script.PayToPubKeyHash(feederKey.PubKeyHash())
	alloc[feederKey.PubKeyHash()] = 1 << 32
	sb.genesis = chain.GenesisBlock(alloc)
	coinbase := sb.genesis.Txs[0]
	for i, out := range coinbase.Outputs {
		if bytes.Equal(out.Lock, feedLock) {
			sb.feeder = &txFeeder{
				key:  feederKey,
				lock: feedLock,
				op:   chain.OutPoint{TxID: coinbase.ID(), Index: uint32(i)},
				val:  out.Value,
			}
		}
	}

	sb.server, err = daemon.NewNode(daemon.NodeConfig{
		Genesis:           sb.genesis,
		Params:            sb.params,
		Miners:            sb.miners,
		MinerKey:          minerKey,
		Transport:         sb.tr,
		MineInterval:      time.Hour,
		SnapshotInterval:  cfg.SnapshotInterval,
		SnapshotChunkSize: cfg.SnapshotChunkSize,
	})
	if err != nil {
		return nil, err
	}
	for sb.server.Chain().Height() < cfg.Height {
		for t := 0; t < cfg.TxsPerBlock; t++ {
			tx, err := sb.feeder.next()
			if err == nil {
				err = sb.server.Ledger().Submit(tx)
			}
			if err != nil {
				sb.close()
				return nil, fmt.Errorf("sync bench: feed height %d: %w", sb.server.Chain().Height()+1, err)
			}
		}
		if _, err := sb.server.MineNow(); err != nil {
			sb.close()
			return nil, fmt.Errorf("sync bench: mine height %d: %w", sb.server.Chain().Height()+1, err)
		}
	}
	return sb, nil
}

func (sb *syncBench) close() {
	if sb.server != nil {
		sb.server.Close()
	}
}

func waitUntil(what string, cond func() bool) error {
	deadline := time.Now().Add(syncBenchTimeout)
	for !cond() {
		if time.Now().After(deadline) {
			return fmt.Errorf("sync bench: timed out waiting for %s", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
	return nil
}

// run measures one cold start: boot a fresh joiner against the server,
// wait until it has caught up with the tip, then settle one payment
// through it and stop the clock when the joiner sees the spend
// confirmed.
func (sb *syncBench) run(mode string, wlt *wallet.Wallet) (*SyncBenchResult, error) {
	res := &SyncBenchResult{Mode: mode}
	target := sb.server.Chain().Height()

	start := time.Now()
	joiner, err := daemon.NewNode(daemon.NodeConfig{
		Genesis:           sb.genesis,
		Params:            sb.params,
		Miners:            sb.miners,
		Transport:         sb.tr,
		MineInterval:      time.Hour,
		Peers:             []string{sb.server.P2PAddr()},
		SyncRetryInterval: joinerRetryInterval,
		SnapshotInterval:  sb.cfg.SnapshotInterval,
		SnapshotChunkSize: sb.cfg.SnapshotChunkSize,
		LegacySyncOnly:    mode == "replay",
	})
	if err != nil {
		return nil, err
	}
	defer joiner.Close()

	if mode == "replay" {
		err = sb.driveLegacyJoin(joiner, target)
	} else {
		err = waitUntil("snapshot joiner live at tip", func() bool {
			return joiner.SyncInfo().Phase == "live" && joiner.Chain().Height() >= target
		})
	}
	if err != nil {
		return nil, err
	}
	res.ColdStartMS = msSince(start)

	// First delivery: a payment submitted at the freshly joined gateway,
	// relayed to the miner, mined, and seen settled back on the joiner.
	tx, err := wlt.BuildPayment(joiner.Chain().UTXO(), wlt.PubKeyHash(), 1000, 1)
	if err != nil {
		return nil, fmt.Errorf("sync bench %s: payment: %w", mode, err)
	}
	if err := joiner.Ledger().Submit(tx); err != nil {
		return nil, fmt.Errorf("sync bench %s: submit: %w", mode, err)
	}
	if err := waitUntil("payment to reach the miner pool", func() bool {
		return sb.server.Ledger().Pool.Len() > 0
	}); err != nil {
		return nil, err
	}
	if _, err := sb.server.MineNow(); err != nil {
		return nil, fmt.Errorf("sync bench %s: mine delivery: %w", mode, err)
	}
	if err := waitUntil("delivery to settle on the joiner", func() bool {
		_, _, spent := joiner.Chain().FindSpender(tx.Inputs[0].Prev)
		return spent
	}); err != nil {
		return nil, err
	}
	res.FirstDeliveryMS = msSince(start)

	res.BytesIn = int64(joiner.Telemetry().Counter("bcwan_p2p_bytes_in_total", "").Value())
	res.PruneBase = joiner.Chain().PruneBase()
	res.BlocksReplayed = joiner.Chain().Height() - res.PruneBase
	if mode == "snapshot" {
		if joiner.SyncInfo().FullSyncFallback {
			return nil, fmt.Errorf("sync bench: snapshot joiner degraded to a full sync")
		}
		if res.PruneBase == 0 {
			return nil, fmt.Errorf("sync bench: snapshot joiner never installed a snapshot")
		}
	}
	return res, nil
}

// driveLegacyJoin paces the height-blast anti-entropy the way a real
// restarting gateway does: one request per connected batch, with a
// stall retry. The legacy protocol is requester-paced (no state
// machine), so the driver re-requests as soon as the previous 64-block
// batch has fully connected.
func (sb *syncBench) driveLegacyJoin(joiner *daemon.Node, target int64) error {
	deadline := time.Now().Add(syncBenchTimeout)
	reqAt := joiner.Chain().Height() // NewNode issued the first request
	lastH, lastChange := reqAt, time.Now()
	for {
		h := joiner.Chain().Height()
		if h >= target {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("sync bench: replay join stuck at height %d of %d", h, target)
		}
		if h != lastH {
			lastH, lastChange = h, time.Now()
		}
		if h >= reqAt+legacySyncBatch || time.Since(lastChange) > joinerRetryInterval {
			joiner.RequestSync()
			reqAt, lastChange = h, time.Now()
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t).Microseconds()) / 1000
}

// RunSyncBench measures the cold start under both join paths against
// one shared mined history: the genesis replay first (the baseline the
// redesign retired), then the snapshot bootstrap.
func RunSyncBench(cfg SyncBenchConfig) ([]*SyncBenchResult, error) {
	if cfg.Height < 1 || cfg.SnapshotInterval < 1 || cfg.SnapshotChunkSize < 1 || cfg.TxsPerBlock < 1 {
		return nil, fmt.Errorf("sync bench config must be positive: %+v", cfg)
	}
	if cfg.Height < 2*cfg.SnapshotInterval {
		return nil, fmt.Errorf("sync bench: height %d leaves no snapshot boundary behind the tip (interval %d)",
			cfg.Height, cfg.SnapshotInterval)
	}
	sb, err := newSyncBench(cfg)
	if err != nil {
		return nil, err
	}
	defer sb.close()
	var results []*SyncBenchResult
	for i, mode := range []string{"replay", "snapshot"} {
		res, err := sb.run(mode, sb.wallets[i])
		if err != nil {
			return nil, fmt.Errorf("sync bench %s: %w", mode, err)
		}
		results = append(results, res)
	}
	return results, nil
}

// SyncSpeedupRatio is replay first-delivery time over snapshot
// first-delivery time — the headline number of the sync redesign; 0
// when either row is missing or non-positive. Both joins run on the
// same machine against the same history, so the ratio is
// machine-independent and CI can gate on it directly.
func SyncSpeedupRatio(results []*SyncBenchResult) float64 {
	var replay, snapshot float64
	for _, r := range results {
		switch r.Mode {
		case "replay":
			replay = r.FirstDeliveryMS
		case "snapshot":
			snapshot = r.FirstDeliveryMS
		}
	}
	if replay <= 0 || snapshot <= 0 {
		return 0
	}
	return replay / snapshot
}

// WriteSyncBench prints both join paths side by side with the speedup
// ratio the CI gate tracks.
func WriteSyncBench(w io.Writer, cfg SyncBenchConfig, results []*SyncBenchResult) {
	fmt.Fprintf(w, "== Gateway cold start: genesis replay vs snapshot bootstrap (height %d, snapshot every %d, %d txs/block) ==\n",
		cfg.Height, cfg.SnapshotInterval, cfg.TxsPerBlock)
	fmt.Fprintf(w, "%-10s %14s %16s %14s %12s %14s\n",
		"mode", "cold start", "first delivery", "bytes in", "prune base", "blocks replayed")
	for _, r := range results {
		fmt.Fprintf(w, "%-10s %11.0fms %13.0fms %14d %12d %14d\n",
			r.Mode, r.ColdStartMS, r.FirstDeliveryMS, r.BytesIn, r.PruneBase, r.BlocksReplayed)
	}
	if ratio := SyncSpeedupRatio(results); ratio > 0 {
		fmt.Fprintf(w, "first-delivery speedup: %.1fx\n", ratio)
	}
	fmt.Fprintln(w)
}

// syncJSONRow is one machine-readable cold-start measurement.
type syncJSONRow struct {
	Mode            string  `json:"mode"`
	ColdStartMS     float64 `json:"cold_start_ms"`
	FirstDeliveryMS float64 `json:"first_delivery_ms"`
	BytesIn         int64   `json:"bytes_in"`
	PruneBase       int64   `json:"prune_base"`
	BlocksReplayed  int64   `json:"blocks_replayed"`
}

// syncJSON is the BENCH_sync.json document bcwan-benchgate consumes: it
// floors the candidate's own replay/snapshot speedup ratio and checks
// the snapshot row actually pruned.
type syncJSON struct {
	Height            int64         `json:"height"`
	SnapshotInterval  int64         `json:"snapshot_interval"`
	SnapshotChunkSize int           `json:"snapshot_chunk_size"`
	TxsPerBlock       int           `json:"txs_per_block"`
	SpeedupRatio      float64       `json:"speedup_ratio"`
	Results           []syncJSONRow `json:"results"`
}

// WriteSyncBenchJSON writes the measurements as machine-readable JSON
// to path, creating parent directories as needed.
func WriteSyncBenchJSON(path string, cfg SyncBenchConfig, results []*SyncBenchResult) error {
	doc := syncJSON{
		Height:            cfg.Height,
		SnapshotInterval:  cfg.SnapshotInterval,
		SnapshotChunkSize: cfg.SnapshotChunkSize,
		TxsPerBlock:       cfg.TxsPerBlock,
		SpeedupRatio:      SyncSpeedupRatio(results),
	}
	for _, r := range results {
		doc.Results = append(doc.Results, syncJSONRow{
			Mode:            r.Mode,
			ColdStartMS:     r.ColdStartMS,
			FirstDeliveryMS: r.FirstDeliveryMS,
			BytesIn:         r.BytesIn,
			PruneBase:       r.PruneBase,
			BlocksReplayed:  r.BlocksReplayed,
		})
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
