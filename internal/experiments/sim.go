package experiments

import (
	"crypto/rand"
	"errors"
	"fmt"
	"math"
	mrand "math/rand"
	"time"

	"bcwan/internal/bccrypto"
	"bcwan/internal/chain"
	"bcwan/internal/device"
	"bcwan/internal/fairex"
	"bcwan/internal/gateway"
	"bcwan/internal/lora"
	"bcwan/internal/netsim"
	"bcwan/internal/recipient"
	"bcwan/internal/registry"
	"bcwan/internal/simtime"
	"bcwan/internal/wallet"
)

// Result is the outcome of one latency experiment.
type Result struct {
	Config    Config
	Latencies []time.Duration
	Summary   LatencyStats
	Completed int
	Failed    int
	Retries   int
	Blocks    int
	Channel   lora.ChannelStats
}

// simOrigin anchors virtual time.
var simOrigin = time.Date(2018, 12, 10, 0, 0, 0, 0, time.UTC)

// gatewaySpacing keeps each sensor in range of exactly one gateway at
// SF7 (range ≈ 2.9 km).
const gatewaySpacing = 6000.0

// sensorRadius scatters sensors near their gateway.
const sensorRadius = 1500.0

// gatewayDutyCycle is the EU868 downlink sub-band budget (10 %).
const gatewayDutyCycle = 0.10

// keyResponseTimeout triggers a key-request retransmission.
const keyResponseTimeout = 3 * time.Second

// sim is one experiment instance.
type sim struct {
	cfg   Config
	sched *simtime.Scheduler
	rng   *mrand.Rand
	wan   *netsim.Network

	chain   *chain.Chain
	pool    *chain.Mempool
	miner   *chain.Miner
	ledger  *fairex.Node
	rcpt    *recipient.Recipient
	channel *lora.Channel

	gateways []*simGateway
	sensors  []*simSensor

	// stallUntil[i] is when daemon i's blockchain module becomes
	// responsive again (gateways 0..G-1, recipient = G).
	stallUntil []time.Time

	// active maps a sensor EUI to its in-flight exchange.
	active map[lora.DevEUI]*exchange

	result    Result
	remaining int
	miningOn  bool
}

type simGateway struct {
	idx   int
	gw    *gateway.Gateway
	radio *lora.Radio
	duty  *lora.DutyCycle
}

type simSensor struct {
	idx     int
	gwIdx   int
	dev     *device.Device
	radio   *lora.Radio
	duty    *lora.DutyCycle
	quota   int
	lastTry time.Time
}

// exchange tracks one measured end-to-end exchange.
type exchange struct {
	sensor    *simSensor
	attempt   int
	started   time.Time // first gateway message (paper's clock start)
	haveStart bool
	gotKey    bool
	done      bool
}

// recipientIdx returns the WAN index of the recipient daemon.
func (s *sim) recipientIdx() int { return s.cfg.Gateways }

// masterIdx returns the WAN index of the mining master.
func (s *sim) masterIdx() int { return s.cfg.Gateways + 1 }

// Run executes the experiment to completion.
func Run(cfg Config) (*Result, error) {
	s, err := newSim(cfg)
	if err != nil {
		return nil, err
	}
	s.start()
	s.sched.Run()
	s.result.Channel = s.channel.Stats
	s.result.Summary = Summarize(s.result.Latencies)
	s.result.Config = cfg
	return &s.result, nil
}

func newSim(cfg Config) (*sim, error) {
	if cfg.Gateways <= 0 || cfg.SensorsPerGateway <= 0 || cfg.Exchanges <= 0 {
		return nil, errors.New("experiments: gateways, sensors and exchanges must be positive")
	}
	s := &sim{
		cfg:        cfg,
		sched:      simtime.NewScheduler(simOrigin),
		rng:        mrand.New(mrand.NewSource(cfg.Seed)),
		wan:        netsim.NewPlanetLab(cfg.Seed, cfg.Gateways+2),
		active:     make(map[lora.DevEUI]*exchange),
		stallUntil: make([]time.Time, cfg.Gateways+1),
		remaining:  cfg.Exchanges,
	}

	// Blockchain substrate: recipient funded, master is the only miner.
	rcptWallet, err := wallet.New(rand.Reader)
	if err != nil {
		return nil, err
	}
	minerWallet, err := wallet.New(rand.Reader)
	if err != nil {
		return nil, err
	}
	params := chain.DefaultParams()
	params.BlockInterval = cfg.BlockInterval
	// Every retried attempt can place a payment, so fund several
	// attempts per exchange.
	need := uint64(cfg.Exchanges*(cfg.MaxRetries+2)+64) * (cfg.Price + 8)
	genesis := chain.GenesisBlock(map[[20]byte]uint64{rcptWallet.PubKeyHash(): need})
	c, err := chain.New(params, genesis)
	if err != nil {
		return nil, err
	}
	c.AuthorizeMiner(minerWallet.PublicBytes())
	s.chain = c
	s.pool = chain.NewMempool()
	s.pool.UseVerifier(c.Verifier())
	s.miner = chain.NewMiner(minerWallet.Key(), c, s.pool, rand.Reader)
	s.ledger = &fairex.Node{Chain: c, Pool: s.pool}

	dir := registry.NewDirectory()
	dir.Attach(c)

	rcptCfg := recipient.DefaultConfig()
	rcptCfg.MaxPrice = cfg.Price
	s.rcpt = recipient.New(rcptCfg, rcptWallet, s.ledger, rand.Reader)

	// Radio substrate.
	s.channel = lora.NewChannel(s.sched, lora.DefaultPathLoss(), lora.DefaultPHY())

	for i := 0; i < cfg.Gateways; i++ {
		gwWallet, err := wallet.New(rand.Reader)
		if err != nil {
			return nil, err
		}
		gwCfg := gateway.DefaultConfig()
		gwCfg.Price = cfg.Price
		gwCfg.WaitConfirmations = cfg.WaitConfirmations
		duty, err := lora.NewDutyCycle(gatewayDutyCycle)
		if err != nil {
			return nil, err
		}
		sg := &simGateway{
			idx:   i,
			gw:    gateway.New(gwCfg, gwWallet, s.ledger, dir, rand.Reader),
			radio: s.channel.NewRadio(fmt.Sprintf("gw-%d", i), lora.Position{X: float64(i) * gatewaySpacing}),
			duty:  duty,
		}
		sg.radio.OnReceive(func(f lora.RxFrame) { s.onGatewayRx(sg, f) })
		s.gateways = append(s.gateways, sg)
	}

	// Sensors, provisioned with the shared recipient.
	total := cfg.Gateways * cfg.SensorsPerGateway
	base, extra := cfg.Exchanges/total, cfg.Exchanges%total
	for i := 0; i < total; i++ {
		gwIdx := i / cfg.SensorsPerGateway
		sharedKey := make([]byte, bccrypto.AESKeySize)
		if _, err := rand.Read(sharedKey); err != nil {
			return nil, err
		}
		nodeKey, err := bccrypto.GenerateRSA512(rand.Reader)
		if err != nil {
			return nil, err
		}
		var eui lora.DevEUI
		eui[0] = byte(i >> 8)
		eui[1] = byte(i)
		eui[7] = 0xbc
		dev, err := device.New(device.Provisioning{
			DevEUI:        eui,
			SharedKey:     sharedKey,
			SigningKey:    nodeKey,
			RecipientAddr: rcptWallet.PubKeyHash(),
		}, rand.Reader)
		if err != nil {
			return nil, err
		}
		s.rcpt.Provision(eui, recipient.DeviceInfo{SharedKey: sharedKey, NodePub: nodeKey.Public()})
		duty, err := lora.NewDutyCycle(cfg.DutyCycle)
		if err != nil {
			return nil, err
		}
		angle := s.rng.Float64() * 2 * math.Pi
		r := sensorRadius * (0.2 + 0.8*s.rng.Float64())
		pos := lora.Position{
			X: float64(gwIdx)*gatewaySpacing + r*math.Cos(angle),
			Y: r * math.Sin(angle),
		}
		quota := base
		if i < extra {
			quota++
		}
		sn := &simSensor{
			idx:   i,
			gwIdx: gwIdx,
			dev:   dev,
			radio: s.channel.NewRadio(fmt.Sprintf("sensor-%d", i), pos),
			duty:  duty,
			quota: quota,
		}
		sn.radio.OnReceive(func(f lora.RxFrame) { s.onSensorRx(sn, f) })
		s.sensors = append(s.sensors, sn)
	}

	// Recipient publishes its IP binding; one bootstrap block carries
	// it (the paper's EC2 master bootstraps the nodes).
	pub, err := registry.BuildPublish(rcptWallet, c.UTXO(), "203.0.113.10:7000", 1)
	if err != nil {
		return nil, err
	}
	if err := s.ledger.Submit(pub); err != nil {
		return nil, err
	}
	if _, err := s.miner.Mine(simOrigin); err != nil {
		return nil, err
	}
	s.result.Blocks++
	return s, nil
}

// start schedules the mining loop and every sensor's first exchange.
func (s *sim) start() {
	s.miningOn = true
	s.sched.After(s.cfg.BlockInterval, s.mineTick)
	for _, sn := range s.sensors {
		if sn.quota == 0 {
			continue
		}
		jitter := time.Duration(s.rng.Int63n(int64(s.cfg.MeanInterArrival)))
		sn := sn
		s.sched.After(jitter, func(now time.Time) { s.beginExchange(sn, 0) })
	}
}

// done reports whether all measured exchanges have ended.
func (s *sim) done() bool { return s.remaining <= 0 }

// mineTick mines a block and propagates its arrival (and stall) to every
// daemon.
func (s *sim) mineTick(now time.Time) {
	if s.done() {
		s.miningOn = false
		return
	}
	if _, err := s.miner.Mine(now); err == nil {
		s.result.Blocks++
		for i := 0; i <= s.cfg.Gateways; i++ {
			i := i
			arrive := s.wan.Latency(s.masterIdx(), i)
			s.sched.After(arrive, func(t time.Time) {
				if s.cfg.VerificationStall > 0 {
					until := t.Add(s.cfg.VerificationStall)
					if until.After(s.stallUntil[i]) {
						s.stallUntil[i] = until
					}
				}
			})
		}
	}
	s.sched.After(s.cfg.BlockInterval, s.mineTick)
}

// daemonAt returns when daemon i can process a request arriving at now
// (stall first, then fixed processing time).
func (s *sim) daemonAt(i int, now time.Time) time.Time {
	at := now
	if s.stallUntil[i].After(at) {
		at = s.stallUntil[i]
	}
	return at.Add(s.cfg.DaemonProcessing)
}

// beginExchange starts (or restarts) one measured exchange for a sensor.
func (s *sim) beginExchange(sn *simSensor, attempt int) {
	if attempt == 0 {
		if s.done() {
			return
		}
		// A sensor runs one exchange at a time: if the previous one is
		// still in flight (long stalls under Fig. 6 conditions), defer
		// rather than clobber it.
		if cur, ok := s.active[sn.dev.EUI()]; ok && !cur.done {
			s.sched.After(5*time.Second, func(time.Time) { s.beginExchange(sn, 0) })
			return
		}
		if sn.quota <= 0 {
			return
		}
		sn.quota--
		sn.lastTry = s.sched.Now()
		// Schedule the sensor's next exchange.
		if sn.quota > 0 {
			gap := time.Duration(float64(s.cfg.MeanInterArrival) * (0.5 + s.rng.Float64()))
			s.sched.After(gap, func(time.Time) { s.beginExchange(sn, 0) })
		}
	}
	ex := &exchange{sensor: sn, attempt: attempt}
	s.active[sn.dev.EUI()] = ex

	// Abandon or retry on timeout.
	s.sched.After(s.cfg.ExchangeTimeout, func(time.Time) {
		if ex.done {
			return
		}
		ex.done = true
		delete(s.active, sn.dev.EUI())
		if ex.attempt < s.cfg.MaxRetries {
			s.result.Retries++
			s.beginExchange(sn, ex.attempt+1)
			return
		}
		s.result.Failed++
		s.remaining--
	})

	s.transmitWhenFree(sn.radio, sn.duty, sn.dev.KeyRequestFrame(), nil)
	// Retransmit the key request if no ePk arrives in time.
	s.scheduleKeyRetry(sn, ex, 1)
}

func (s *sim) scheduleKeyRetry(sn *simSensor, ex *exchange, tries int) {
	if tries > s.cfg.MaxRetries {
		return
	}
	// Exponential backoff with jitter: under a verification stall a
	// fixed retry period turns 150 sensors into a downlink storm that
	// exhausts the gateways' 10 % duty budget.
	wait := keyResponseTimeout << (tries - 1)
	wait += time.Duration(s.rng.Int63n(int64(keyResponseTimeout)))
	s.sched.After(wait, func(time.Time) {
		if ex.done || ex.gotKey {
			return
		}
		s.result.Retries++
		s.transmitWhenFree(sn.radio, sn.duty, sn.dev.KeyRequestFrame(), nil)
		s.scheduleKeyRetry(sn, ex, tries+1)
	})
}

// maxCADBackoffs bounds listen-before-talk retries per frame.
const maxCADBackoffs = 24

// transmitWhenFree waits for the duty-cycle budget, performs channel
// activity detection (the SX127x CAD + random backoff of the PoC's
// firmware), and sends the frame on a random EU868 channel.
func (s *sim) transmitWhenFree(radio *lora.Radio, duty *lora.DutyCycle, frame *lora.Frame, onSent func(at time.Time, airtime time.Duration)) {
	payload := frame.Encode()
	expected, err := lora.TimeOnAir(len(payload), s.cfg.SF, s.channel.PHY())
	if err != nil {
		return
	}
	var attempt func(tries int)
	attempt = func(tries int) {
		freq := lora.DefaultChannels[s.rng.Intn(len(lora.DefaultChannels))]
		at := duty.NextFree(s.sched.Now(), expected)
		s.sched.At(at, func(t time.Time) {
			if tries < maxCADBackoffs && radio.Busy(freq, s.cfg.SF) {
				backoff := 20*time.Millisecond + time.Duration(s.rng.Int63n(int64(180*time.Millisecond)))
				s.sched.After(backoff, func(time.Time) { attempt(tries + 1) })
				return
			}
			airtime, err := radio.Transmit(payload, s.cfg.SF, freq)
			if err != nil {
				return
			}
			duty.Record(t, airtime)
			if onSent != nil {
				onSent(t, airtime)
			}
		})
	}
	attempt(0)
}

// onGatewayRx handles frames heard by a gateway radio.
func (s *sim) onGatewayRx(sg *simGateway, f lora.RxFrame) {
	frame, err := lora.DecodeFrame(f.Payload)
	if err != nil {
		return
	}
	switch frame.Type {
	case lora.FrameKeyRequest:
		// Daemon step: mint the ephemeral pair, then downlink ePk.
		s.sched.At(s.daemonAt(sg.idx, f.Received), func(time.Time) {
			ex := s.active[frame.DevEUI]
			if ex == nil || ex.done {
				return
			}
			resp, err := sg.gw.HandleKeyRequest(frame)
			if err != nil {
				return
			}
			s.transmitWhenFree(sg.radio, sg.duty, resp, func(at time.Time, _ time.Duration) {
				// The paper measures "from the first message from
				// the gateway": clock starts when the ePk downlink
				// begins.
				if !ex.done && !ex.haveStart {
					ex.started = at
					ex.haveStart = true
				}
			})
		})

	case lora.FrameData:
		s.sched.At(s.daemonAt(sg.idx, f.Received), func(now time.Time) {
			// Bind the pipeline to the exchange in flight now, so a
			// slow pipeline that outlives its attempt's timeout can
			// not complete a later retry's clock.
			ex := s.active[frame.DevEUI]
			if ex == nil || ex.done {
				return
			}
			offerHeight := s.chain.Height()
			delivery, _, err := sg.gw.HandleData(frame)
			if err != nil {
				return
			}
			// WAN leg: gateway → recipient (Fig. 3 step 7).
			s.sched.After(s.wan.Latency(sg.idx, s.recipientIdx()), func(t2 time.Time) {
				s.sched.At(s.daemonAt(s.recipientIdx(), t2), func(time.Time) {
					payment, err := s.rcpt.HandleDelivery(delivery)
					if err != nil {
						return
					}
					// WAN leg: the payment gossips back to the
					// gateway.
					s.sched.After(s.wan.Latency(s.recipientIdx(), sg.idx), func(t3 time.Time) {
						s.sched.At(s.daemonAt(sg.idx, t3), func(t4 time.Time) {
							s.tryClaim(sg, ex, delivery, payment.ID(), offerHeight, t4)
						})
					})
				})
			})
		})
	}
}

// tryClaim attempts the gateway's claim; with a confirmation policy it
// re-arms on every future block until the payment confirms.
func (s *sim) tryClaim(sg *simGateway, ex *exchange, d *fairex.Delivery, paymentID chain.Hash, offerHeight int64, now time.Time) {
	if ex.done {
		return
	}
	claim, err := sg.gw.VerifyAndClaim(d.DevEUI, d.Exchange, paymentID, offerHeight)
	if err != nil {
		if errors.Is(err, gateway.ErrNotEnoughConfirmations) {
			// Check again shortly after the next expected block.
			s.sched.After(s.cfg.BlockInterval+500*time.Millisecond, func(t time.Time) {
				s.tryClaim(sg, ex, d, paymentID, offerHeight, t)
			})
		}
		return
	}
	// WAN leg: claim gossips to the recipient, which extracts eSk and
	// decrypts (zero-confirmation settle, as in the PoC).
	s.sched.After(s.wan.Latency(sg.idx, s.recipientIdx()), func(t time.Time) {
		s.sched.At(s.daemonAt(s.recipientIdx(), t), func(end time.Time) {
			msg, err := s.rcpt.SettleClaimTx(paymentID, claim)
			if err != nil {
				return
			}
			if ex.done {
				return
			}
			ex.done = true
			if s.active[msg.DevEUI] == ex {
				delete(s.active, msg.DevEUI)
			}
			if ex.haveStart {
				s.result.Latencies = append(s.result.Latencies, end.Sub(ex.started))
			}
			s.result.Completed++
			s.remaining--
		})
	})
}

// onSensorRx handles the gateway's ePk downlink at the node.
func (s *sim) onSensorRx(sn *simSensor, f lora.RxFrame) {
	frame, err := lora.DecodeFrame(f.Payload)
	if err != nil || frame.Type != lora.FrameKeyResponse || frame.DevEUI != sn.dev.EUI() {
		return
	}
	ex, ok := s.active[sn.dev.EUI()]
	if !ok || ex.done || ex.gotKey {
		return
	}
	ex.gotKey = true
	// Node compute (Fig. 3 steps 3–4 on the Nucleo), then the data
	// uplink.
	reading := fmt.Sprintf("t=%04.1f", 15+10*s.rng.Float64())
	s.sched.After(s.cfg.NodeCompute, func(time.Time) {
		dataFrame, err := sn.dev.DataFrame([]byte(reading), frame.Payload, frame.Counter)
		if err != nil {
			return
		}
		s.transmitWhenFree(sn.radio, sn.duty, dataFrame, nil)
	})
}
