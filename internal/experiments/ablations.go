package experiments

import (
	"crypto/rand"
	"fmt"
	mrand "math/rand"
	"time"

	"bcwan/internal/bccrypto"
	"bcwan/internal/chain"
	"bcwan/internal/fairex"
	"bcwan/internal/lora"
	"bcwan/internal/netsim"
	"bcwan/internal/reputation"
	"bcwan/internal/script"
	"bcwan/internal/wallet"
)

// SweepBlockInterval reruns the latency experiment across Multichain's
// block-interval tunable (§5.1 notes the tunables "impact ... the overall
// performance"). Longer intervals mean fewer verification stalls and
// lower mean latency when verification is on.
func SweepBlockInterval(base Config, intervals []time.Duration) ([]*Result, error) {
	out := make([]*Result, 0, len(intervals))
	for _, iv := range intervals {
		cfg := base
		cfg.BlockInterval = iv
		res, err := Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("interval %v: %w", iv, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// SweepGateways reruns the latency experiment across deployment sizes:
// the P2P architecture should keep exchange latency flat as gateways are
// added (no central server to saturate).
func SweepGateways(base Config, gateways []int) ([]*Result, error) {
	out := make([]*Result, 0, len(gateways))
	for _, g := range gateways {
		cfg := base
		cfg.Gateways = g
		// Keep total exchanges constant for comparable statistics.
		res, err := Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("gateways %d: %w", g, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// SweepSpreadingFactor reruns the latency experiment across SF7–SF12:
// airtime grows ~2× per step, raising exchange latency and shrinking the
// duty-cycle budget (§5.2).
func SweepSpreadingFactor(base Config, sfs []lora.SpreadingFactor) ([]*Result, error) {
	out := make([]*Result, 0, len(sfs))
	for _, sf := range sfs {
		cfg := base
		cfg.SF = sf
		res, err := Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sf, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// SweepConfirmations reruns the latency experiment across the gateway's
// confirmation policy (§6): each required confirmation adds roughly one
// block interval to the exchange.
func SweepConfirmations(base Config, confs []int64) ([]*Result, error) {
	out := make([]*Result, 0, len(confs))
	for _, n := range confs {
		cfg := base
		cfg.WaitConfirmations = n
		if n > 0 {
			extra := time.Duration(n+2) * cfg.BlockInterval
			cfg.ExchangeTimeout += extra
			cfg.MeanInterArrival += extra
		}
		res, err := Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("confirmations %d: %w", n, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// DutyCycleBudget reproduces the §5.2 capacity table: the theoretical
// message budget per sensor per hour for each spreading factor at the
// paper's payload size (128 B + 4 B header).
type DutyCycleBudget struct {
	SF          lora.SpreadingFactor
	TimeOnAir   time.Duration
	MsgsPerHour float64
}

// BudgetTable computes the duty-cycle budget for all spreading factors.
// Payloads above an SF's EU868 cap yield a zero row (not transmittable in
// one frame).
func BudgetTable(payloadLen int, duty float64) ([]DutyCycleBudget, error) {
	phy := lora.DefaultPHY()
	var out []DutyCycleBudget
	for sf := lora.SF7; sf <= lora.SF12; sf++ {
		row := DutyCycleBudget{SF: sf}
		if payloadLen <= lora.MaxPayload(sf) {
			toa, err := lora.TimeOnAir(payloadLen, sf, phy)
			if err != nil {
				return nil, err
			}
			budget, err := lora.MaxMessagesPerHour(payloadLen, sf, duty, phy)
			if err != nil {
				return nil, err
			}
			row.TimeOnAir = toa
			row.MsgsPerHour = budget
		}
		out = append(out, row)
	}
	return out, nil
}

// DoubleSpendConfig parameterizes the §6 attack experiment.
type DoubleSpendConfig struct {
	Seed int64
	// Trials is the number of attacked exchanges.
	Trials int
	// WaitConfirmations is the gateway's policy under attack.
	WaitConfirmations int64
	// RaceWinProb is the probability the attacker's conflicting
	// transaction reaches the miner before the honest payment.
	RaceWinProb float64
	// Price per exchange.
	Price uint64
	// BlockInterval for the added-latency accounting.
	BlockInterval time.Duration
}

// DoubleSpendResult reports the attack outcome.
type DoubleSpendResult struct {
	Config DoubleSpendConfig
	// KeyRevealedUnpaid counts exchanges where the gateway disclosed
	// eSk but the payment never confirmed — its revenue loss.
	KeyRevealedUnpaid int
	// ExchangesSafe counts exchanges where the fair exchange held
	// (either paid, or key withheld).
	ExchangesSafe int
	// LossRate is KeyRevealedUnpaid / Trials.
	LossRate float64
	// AddedLatency is the confirmation-wait latency cost per exchange.
	AddedLatency time.Duration
}

// RunDoubleSpend plays the §6 attack on the real chain machinery: a
// malicious recipient pays, obtains eSk the moment the gateway claims
// against the unconfirmed payment, and races a conflicting transaction to
// the miner.
func RunDoubleSpend(cfg DoubleSpendConfig) (*DoubleSpendResult, error) {
	rng := newDeterministicRand(cfg.Seed)
	res := &DoubleSpendResult{Config: cfg}

	for trial := 0; trial < cfg.Trials; trial++ {
		lost, err := runDoubleSpendTrial(cfg, rng.Float64() < cfg.RaceWinProb)
		if err != nil {
			return nil, fmt.Errorf("trial %d: %w", trial, err)
		}
		if lost {
			res.KeyRevealedUnpaid++
		} else {
			res.ExchangesSafe++
		}
	}
	res.LossRate = float64(res.KeyRevealedUnpaid) / float64(cfg.Trials)
	res.AddedLatency = time.Duration(cfg.WaitConfirmations) * cfg.BlockInterval
	return res, nil
}

// runDoubleSpendTrial runs one attacked exchange; it reports whether the
// gateway revealed the key without being paid.
func runDoubleSpendTrial(cfg DoubleSpendConfig, attackerWinsRace bool) (bool, error) {
	gwWallet, err := wallet.New(rand.Reader)
	if err != nil {
		return false, err
	}
	buyerWallet, err := wallet.New(rand.Reader)
	if err != nil {
		return false, err
	}
	minerWallet, err := wallet.New(rand.Reader)
	if err != nil {
		return false, err
	}
	params := chain.DefaultParams()
	params.BlockInterval = cfg.BlockInterval
	genesis := chain.GenesisBlock(map[[20]byte]uint64{buyerWallet.PubKeyHash(): cfg.Price * 10})
	c, err := chain.New(params, genesis)
	if err != nil {
		return false, err
	}
	c.AuthorizeMiner(minerWallet.PublicBytes())
	pool := chain.NewMempool()
	pool.UseVerifier(c.Verifier())
	miner := chain.NewMiner(minerWallet.Key(), c, pool, rand.Reader)
	ledger := &fairex.Node{Chain: c, Pool: pool}

	eKey, err := bccrypto.GenerateRSA512(rand.Reader)
	if err != nil {
		return false, err
	}
	krParams := script.KeyReleaseParams{
		RSAPubKey:         bccrypto.MarshalRSA512PublicKey(eKey.Public()),
		GatewayPubKeyHash: gwWallet.PubKeyHash(),
		RefundHeight:      c.Height() + 100,
		BuyerPubKeyHash:   buyerWallet.PubKeyHash(),
	}
	payment, err := buyerWallet.BuildKeyReleasePayment(ledger.UTXO(), krParams, cfg.Price, 1)
	if err != nil {
		return false, err
	}
	if err := ledger.Submit(payment); err != nil {
		return false, err
	}

	// The attacker's conflicting transaction spends the same inputs back
	// to itself.
	doubleSpend := &chain.Tx{Version: 2}
	var inValue uint64
	baseUTXO := c.UTXO()
	for _, in := range payment.Inputs {
		doubleSpend.Inputs = append(doubleSpend.Inputs, chain.TxIn{Prev: in.Prev})
		if e, ok := baseUTXO.Get(in.Prev); ok {
			inValue += e.Out.Value
		}
	}
	doubleSpend.Outputs = []chain.TxOut{{
		Value: inValue - 1,
		Lock:  script.PayToPubKeyHash(buyerWallet.PubKeyHash()),
	}}
	if err := buyerWallet.SignP2PKHInputs(doubleSpend, baseUTXO); err != nil {
		return false, err
	}

	now := simOrigin
	mine := func() error {
		now = now.Add(cfg.BlockInterval)
		_, err := miner.Mine(now)
		return err
	}

	revealed := false
	if cfg.WaitConfirmations == 0 {
		// The PoC behaviour: claim against the unconfirmed payment —
		// this publishes eSk immediately.
		claim, err := gwWallet.BuildClaim(
			chain.OutPoint{TxID: payment.ID(), Index: 0}, payment.Outputs[0], eKey, 1)
		if err != nil {
			return false, err
		}
		if err := ledger.Submit(claim); err != nil {
			return false, err
		}
		revealed = true
		if attackerWinsRace {
			// The conflicting tx reaches the miner first and evicts
			// both the payment and the now-orphaned claim.
			pool.ForceReplace(doubleSpend)
		}
	} else {
		if attackerWinsRace {
			pool.ForceReplace(doubleSpend)
		}
		// The gateway waits for confirmations before revealing.
		for i := int64(0); i < cfg.WaitConfirmations; i++ {
			if err := mine(); err != nil {
				return false, err
			}
		}
		if c.Confirmations(payment.ID()) >= cfg.WaitConfirmations {
			claim, err := gwWallet.BuildClaim(
				chain.OutPoint{TxID: payment.ID(), Index: 0}, payment.Outputs[0], eKey, 1)
			if err != nil {
				return false, err
			}
			if err := ledger.Submit(claim); err != nil {
				return false, err
			}
			revealed = true
		}
	}
	// Settle the chain.
	for i := 0; i < 3; i++ {
		if err := mine(); err != nil {
			return false, err
		}
	}
	paid := gwWallet.Balance(c.UTXO()) > 0
	return revealed && !paid, nil
}

// ReputationComparison quantifies §4.4: the reputation baseline loses a
// fraction of payments to cheaters, while the script-based fair exchange
// loses none (structurally — the claim path is the only way to learn
// eSk, and it pays the gateway atomically).
type ReputationComparison struct {
	Reputation reputation.SimResult
	// BcWANLossRate is zero by construction; included for the table.
	BcWANLossRate float64
}

// RunReputationComparison runs the Monte Carlo baseline.
func RunReputationComparison(seed int64, gateways int, cheaterFraction, cheatProb float64, rounds int, price uint64) ReputationComparison {
	return ReputationComparison{
		Reputation:    reputation.Simulate(reputation.DefaultConfig(), seed, gateways, cheaterFraction, cheatProb, rounds, price),
		BcWANLossRate: 0,
	}
}

// LegacyLatency estimates the centralized Fig. 1 baseline latency for one
// uplink: data-frame airtime plus two WAN legs (gateway → network server
// → application server) and the same daemon processing — no blockchain
// interaction at all. It uses the same latency model as the BcWAN runs so
// the comparison isolates the architecture.
func LegacyLatency(cfg Config, samples int) (LatencyStats, error) {
	wan := netsim.NewPlanetLab(cfg.Seed, 4)
	phy := lora.DefaultPHY()
	// Frame: 128 B payload + header, as the paper sizes it.
	toa, err := lora.TimeOnAir(132, cfg.SF, phy)
	if err != nil {
		return LatencyStats{}, err
	}
	lat := make([]time.Duration, 0, samples)
	for i := 0; i < samples; i++ {
		total := toa +
			cfg.DaemonProcessing + wan.Latency(0, 1) + // gateway → NS
			cfg.DaemonProcessing + wan.Latency(1, 2) + // NS → AS
			cfg.DaemonProcessing // AS decrypt/deliver
		lat = append(lat, total)
	}
	return Summarize(lat), nil
}

// newDeterministicRand returns a seeded math/rand source for attack
// trials.
func newDeterministicRand(seed int64) *mrand.Rand {
	return mrand.New(mrand.NewSource(seed))
}
