package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestChannelBenchBatchesSettlement(t *testing.T) {
	cfg := ChannelBenchConfig{Deliveries: 10, Capacity: 10_000, Price: 100}
	results, err := RunChannelBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Mode != "onchain" || results[1].Mode != "channel" {
		t.Fatalf("want [onchain channel] rows, got %+v", results)
	}
	onchain, channel := results[0], results[1]
	// Per-message settlement mines a payment and a claim per reading.
	if onchain.OnChainTxs != 2*int64(cfg.Deliveries) {
		t.Fatalf("onchain mode mined %d txs, want %d", onchain.OnChainTxs, 2*cfg.Deliveries)
	}
	if onchain.BlocksMined < int64(cfg.Deliveries) {
		t.Fatalf("onchain mode mined %d blocks, want ≥ %d", onchain.BlocksMined, cfg.Deliveries)
	}
	// The channel settles the whole stream with its two anchors.
	if channel.OnChainTxs != 2 {
		t.Fatalf("channel mode mined %d txs, want exactly the funding and close anchors", channel.OnChainTxs)
	}
	if channel.BlocksMined != 2 {
		t.Fatalf("channel mode mined %d blocks, want 2", channel.BlocksMined)
	}
	// Wall-clock is noisy at this size; the test only asserts the ratios
	// are well-formed — the committed full-scale run is what CI gates.
	if ratio := ChannelSpeedupRatio(results); ratio <= 0 {
		t.Fatalf("speedup ratio %.2f, want > 0", ratio)
	}
	if ratio := ChannelTxReduction(results); ratio != float64(cfg.Deliveries) {
		t.Fatalf("tx reduction %.1f, want %d", ratio, cfg.Deliveries)
	}

	var text bytes.Buffer
	WriteChannelBench(&text, cfg, results)
	if !bytes.Contains(text.Bytes(), []byte("on-chain tx reduction")) {
		t.Fatalf("report missing reduction line:\n%s", text.String())
	}

	path := filepath.Join(t.TempDir(), "BENCH_channel.json")
	if err := WriteChannelBenchJSON(path, cfg, results); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Deliveries  int     `json:"deliveries"`
		TxReduction float64 `json:"tx_reduction"`
		Results     []struct {
			Mode       string `json:"mode"`
			OnChainTxs int64  `json:"onchain_txs"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Deliveries != cfg.Deliveries || len(doc.Results) != 2 || doc.Results[1].OnChainTxs != 2 {
		t.Fatalf("JSON document malformed: %+v", doc)
	}
}

func TestChannelBenchRejectsDegenerateConfig(t *testing.T) {
	if _, err := RunChannelBench(ChannelBenchConfig{Deliveries: 1, Capacity: 10_000, Price: 100}); err == nil {
		t.Fatal("want error for a single-delivery workload")
	}
	if _, err := RunChannelBench(ChannelBenchConfig{Deliveries: 10, Capacity: 100, Price: 100}); err == nil {
		t.Fatal("want error when the capacity cannot carry the stream")
	}
}
