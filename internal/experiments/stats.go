// Package experiments reproduces the paper's evaluation (§5.2): the
// latency of 2000 BcWAN exchanges on a PlanetLab-like deployment with and
// without Multichain's block verification (Figs. 5 and 6), the §5.2
// duty-cycle budget, and the ablations DESIGN.md lists (confirmation
// policy, block interval, gateway count, spreading factor, reputation
// baseline, legacy LoRaWAN baseline, double-spend attack).
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// LatencyStats summarizes a latency sample.
type LatencyStats struct {
	Count  int
	Mean   time.Duration
	Median time.Duration
	P95    time.Duration
	P99    time.Duration
	Min    time.Duration
	Max    time.Duration
	StdDev time.Duration
}

// Summarize computes stats over a sample.
func Summarize(latencies []time.Duration) LatencyStats {
	if len(latencies) == 0 {
		return LatencyStats{}
	}
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var sum time.Duration
	for _, l := range sorted {
		sum += l
	}
	mean := sum / time.Duration(len(sorted))

	var variance float64
	for _, l := range sorted {
		d := float64(l - mean)
		variance += d * d
	}
	variance /= float64(len(sorted))

	return LatencyStats{
		Count:  len(sorted),
		Mean:   mean,
		Median: percentile(sorted, 0.50),
		P95:    percentile(sorted, 0.95),
		P99:    percentile(sorted, 0.99),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		StdDev: time.Duration(sqrt(variance)),
	}
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	// Newton iteration; good enough for reporting.
	x := v
	for i := 0; i < 40; i++ {
		x = (x + v/x) / 2
	}
	return x
}

// String renders the stats on one line.
func (s LatencyStats) String() string {
	return fmt.Sprintf("n=%d mean=%.3fs median=%.3fs p95=%.3fs p99=%.3fs min=%.3fs max=%.3fs",
		s.Count, s.Mean.Seconds(), s.Median.Seconds(), s.P95.Seconds(),
		s.P99.Seconds(), s.Min.Seconds(), s.Max.Seconds())
}

// Histogram bins a latency sample for figure-style output.
type Histogram struct {
	BucketWidth time.Duration
	Counts      []int
	Start       time.Duration
}

// NewHistogram bins latencies with the given bucket width.
func NewHistogram(latencies []time.Duration, width time.Duration) Histogram {
	h := Histogram{BucketWidth: width}
	if len(latencies) == 0 || width <= 0 {
		return h
	}
	max := latencies[0]
	for _, l := range latencies {
		if l > max {
			max = l
		}
	}
	h.Counts = make([]int, int(max/width)+1)
	for _, l := range latencies {
		h.Counts[int(l/width)]++
	}
	return h
}

// Render prints an ASCII histogram, the textual stand-in for the paper's
// latency figures.
func (h Histogram) Render(maxBar int) string {
	var b strings.Builder
	peak := 0
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	if peak == 0 {
		return "(empty)\n"
	}
	for i, c := range h.Counts {
		bar := c * maxBar / peak
		lo := time.Duration(i) * h.BucketWidth
		fmt.Fprintf(&b, "%7.2fs | %-*s %d\n", lo.Seconds(), maxBar, strings.Repeat("#", bar), c)
	}
	return b.String()
}
