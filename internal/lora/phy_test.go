package lora

import (
	"math"
	"testing"
	"time"
)

func TestTimeOnAirKnownValues(t *testing.T) {
	// Reference values computed from the Semtech AN1200.13 formula for
	// BW 125 kHz, CR 4/5, preamble 8, explicit header, CRC on.
	cfg := DefaultPHY()
	tests := []struct {
		payload int
		sf      SpreadingFactor
		wantMS  float64
	}{
		// 51-byte payload values cross-checked against public LoRa
		// airtime calculators.
		{51, SF7, 102.66},
		{51, SF12, 2465.79},
		{13, SF7, 46.34},
		// The paper's 132-byte frame (128 B payload + 4 B header).
		{132, SF7, 220.42},
	}
	for _, tt := range tests {
		got, err := TimeOnAir(tt.payload, tt.sf, cfg)
		if err != nil {
			t.Fatal(err)
		}
		gotMS := float64(got) / float64(time.Millisecond)
		if math.Abs(gotMS-tt.wantMS) > 1.0 {
			t.Errorf("TimeOnAir(%d, %s) = %.2f ms, want %.2f ms", tt.payload, tt.sf, gotMS, tt.wantMS)
		}
	}
}

func TestTimeOnAirMonotonicInPayload(t *testing.T) {
	cfg := DefaultPHY()
	for sf := SF7; sf <= SF12; sf++ {
		prev := time.Duration(0)
		for payload := 0; payload <= 222; payload += 7 {
			toa, err := TimeOnAir(payload, sf, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if toa < prev {
				t.Fatalf("%s: ToA decreased at payload %d", sf, payload)
			}
			prev = toa
		}
	}
}

func TestTimeOnAirMonotonicInSF(t *testing.T) {
	cfg := DefaultPHY()
	prev := time.Duration(0)
	for sf := SF7; sf <= SF12; sf++ {
		toa, err := TimeOnAir(51, sf, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if toa <= prev {
			t.Fatalf("ToA not increasing at %s", sf)
		}
		prev = toa
	}
}

func TestTimeOnAirRejectsBadInput(t *testing.T) {
	cfg := DefaultPHY()
	if _, err := TimeOnAir(10, SpreadingFactor(6), cfg); err == nil {
		t.Error("SF6 accepted")
	}
	if _, err := TimeOnAir(-1, SF7, cfg); err == nil {
		t.Error("negative payload accepted")
	}
	bad := cfg
	bad.BandwidthHz = 0
	if _, err := TimeOnAir(10, SF7, bad); err == nil {
		t.Error("zero bandwidth accepted")
	}
	bad = cfg
	bad.CodingRate = 9
	if _, err := TimeOnAir(10, SF7, bad); err == nil {
		t.Error("bad coding rate accepted")
	}
}

func TestMaxMessagesPerHourPaperSetup(t *testing.T) {
	// §5.2: 128 B payload + 4 B header, SF7, 1 % duty cycle. The paper
	// states a theoretical maximum of 183 msg/sensor/hour; the full
	// AN1200.13 formula gives ≈163 (the paper likely ignored preamble
	// or header overhead). Assert our honest value and its order.
	got, err := MaxMessagesPerHour(132, SF7, 0.01, DefaultPHY())
	if err != nil {
		t.Fatal(err)
	}
	if got < 140 || got > 200 {
		t.Fatalf("budget = %.1f msg/h, want within [140, 200] (paper: 183)", got)
	}
}

func TestMaxMessagesPerHourScalesWithDuty(t *testing.T) {
	a, err := MaxMessagesPerHour(51, SF9, 0.01, DefaultPHY())
	if err != nil {
		t.Fatal(err)
	}
	b, err := MaxMessagesPerHour(51, SF9, 0.10, DefaultPHY())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b/a-10) > 1e-9 {
		t.Fatalf("10x duty cycle gave %.3fx budget", b/a)
	}
}

func TestMaxMessagesPerHourRejectsBadDuty(t *testing.T) {
	if _, err := MaxMessagesPerHour(51, SF7, 0, DefaultPHY()); err == nil {
		t.Error("zero duty cycle accepted")
	}
	if _, err := MaxMessagesPerHour(51, SF7, 1.5, DefaultPHY()); err == nil {
		t.Error("duty cycle > 1 accepted")
	}
}

func TestDutyCycleAllowsBurstWithinBudget(t *testing.T) {
	// Budget semantics: a BcWAN exchange's request+data burst fits
	// back to back — no per-transmission off period.
	dc, err := NewDutyCycle(0.01)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2018, 12, 10, 0, 0, 0, 0, time.UTC)
	if !dc.CanTransmit(start, 50*time.Millisecond) {
		t.Fatal("fresh limiter blocks transmission")
	}
	dc.Record(start, 50*time.Millisecond)
	// Immediately afterwards, a 250 ms data frame still fits the 36 s
	// hourly budget.
	at := start.Add(60 * time.Millisecond)
	if !dc.CanTransmit(at, 250*time.Millisecond) {
		t.Fatal("burst within budget rejected")
	}
}

func TestDutyCycleBlocksWhenBudgetExhausted(t *testing.T) {
	dc, err := NewDutyCycle(0.01)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2018, 12, 10, 0, 0, 0, 0, time.UTC)
	// Exhaust the 36 s budget.
	dc.Record(start, 36*time.Second)
	at := start.Add(time.Minute)
	if dc.CanTransmit(at, time.Millisecond) {
		t.Fatal("transmission allowed with exhausted budget")
	}
	// Budget frees when the hour window slides past the recording.
	free := dc.NextFree(at, time.Millisecond)
	if want := start.Add(time.Hour); !free.Equal(want) {
		t.Fatalf("NextFree = %v, want %v", free, want)
	}
	if !dc.CanTransmit(free, time.Millisecond) {
		t.Fatal("transmission blocked after window slid")
	}
}

func TestDutyCycleOversizedAirtimeNeverFits(t *testing.T) {
	dc, err := NewDutyCycle(0.01)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2018, 12, 10, 0, 0, 0, 0, time.UTC)
	if dc.CanTransmit(start, time.Hour) {
		t.Fatal("airtime above the whole budget accepted")
	}
	if free := dc.NextFree(start, time.Hour); !free.After(start) {
		t.Fatal("NextFree did not push out an impossible transmission")
	}
}

func TestDutyCycleImpliesBudget(t *testing.T) {
	// Property: replaying transmissions as soon as the limiter allows
	// yields the MaxMessagesPerHour budget (±1 message) in the first
	// window.
	cfg := DefaultPHY()
	toa, err := TimeOnAir(132, SF7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := NewDutyCycle(0.01)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2018, 12, 10, 0, 0, 0, 0, time.UTC)
	end := start.Add(time.Hour)
	now := start
	count := 0
	for now.Before(end) {
		if !dc.CanTransmit(now, toa) {
			now = dc.NextFree(now, toa)
			continue
		}
		dc.Record(now, toa)
		count++
		now = now.Add(toa)
	}
	budget, err := MaxMessagesPerHour(132, SF7, 0.01, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(count)-budget) > 1 {
		t.Fatalf("replayed %d messages, budget %.1f", count, budget)
	}
}

func TestNewDutyCycleRejects(t *testing.T) {
	if _, err := NewDutyCycle(0); err == nil {
		t.Error("zero limit accepted")
	}
	if _, err := NewDutyCycle(2); err == nil {
		t.Error("limit > 1 accepted")
	}
}

func TestSpreadingFactorString(t *testing.T) {
	if SF7.String() != "SF7" || SF12.String() != "SF12" {
		t.Fatal("bad SF names")
	}
}

func TestMaxPayloadBySF(t *testing.T) {
	if MaxPayload(SF7) != 222 || MaxPayload(SF9) != 115 || MaxPayload(SF12) != 51 {
		t.Fatal("EU868 payload caps wrong")
	}
}

func BenchmarkTimeOnAir(b *testing.B) {
	cfg := DefaultPHY()
	for i := 0; i < b.N; i++ {
		if _, err := TimeOnAir(132, SF7, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
