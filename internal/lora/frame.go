package lora

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// The BcWAN LoRa MAC frame. The paper's exchange (Fig. 3) needs three
// over-the-air messages: the node's initial request, the gateway's
// ephemeral-key downlink, and the node's data uplink carrying
// (Em ‖ Sig ‖ @R). A minimal frame header — type, device EUI, counter —
// wraps each.

// FrameType distinguishes the Fig. 3 exchange steps.
type FrameType byte

// Frame types.
const (
	// FrameKeyRequest is the node's initial uplink asking for an
	// ephemeral public key.
	FrameKeyRequest FrameType = 1 + iota
	// FrameKeyResponse is the gateway's downlink carrying ePk.
	FrameKeyResponse
	// FrameData is the node's uplink carrying Em ‖ Sig ‖ @R.
	FrameData
)

// DevEUI is the 8-byte device identifier.
type DevEUI [8]byte

// String renders the EUI in hex.
func (e DevEUI) String() string { return fmt.Sprintf("%x", e[:]) }

// Frame is a BcWAN MAC frame.
type Frame struct {
	Type    FrameType
	DevEUI  DevEUI
	Counter uint32
	Payload []byte
}

// FrameHeaderLen is the fixed header size: type + EUI + counter.
const FrameHeaderLen = 1 + 8 + 4

// ErrBadFrameEncoding reports an undecodable frame.
var ErrBadFrameEncoding = errors.New("lora: bad frame encoding")

// Encode serializes the frame.
func (f *Frame) Encode() []byte {
	out := make([]byte, FrameHeaderLen+len(f.Payload))
	out[0] = byte(f.Type)
	copy(out[1:9], f.DevEUI[:])
	binary.BigEndian.PutUint32(out[9:13], f.Counter)
	copy(out[13:], f.Payload)
	return out
}

// DecodeFrame parses a frame.
func DecodeFrame(data []byte) (*Frame, error) {
	if len(data) < FrameHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadFrameEncoding, len(data))
	}
	f := &Frame{
		Type:    FrameType(data[0]),
		Counter: binary.BigEndian.Uint32(data[9:13]),
	}
	if f.Type < FrameKeyRequest || f.Type > FrameData {
		return nil, fmt.Errorf("%w: unknown type %d", ErrBadFrameEncoding, data[0])
	}
	copy(f.DevEUI[:], data[1:9])
	if len(data) > FrameHeaderLen {
		f.Payload = append([]byte(nil), data[FrameHeaderLen:]...)
	}
	return f, nil
}
