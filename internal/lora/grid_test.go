package lora

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"bcwan/internal/simtime"
)

// ---------------------------------------------------------------------------
// Reference implementation: the seed channel, copied verbatim modulo
// renames. It scans every radio on delivery and every active transmission
// on busy/collision checks — the O(radios·transmissions) engine the grid
// index replaced. The property tests pin the indexed engine to it.
// ---------------------------------------------------------------------------

type refRadio struct {
	name     string
	pos      Position
	ch       *refChannel
	handler  func(RxFrame)
	busyTill time.Time
}

type refTransmission struct {
	from    *refRadio
	payload []byte
	sf      SpreadingFactor
	freq    FrequencyHz
	start   time.Time
	end     time.Time
}

func (t *refTransmission) overlaps(o *refTransmission) bool {
	return t.freq == o.freq && t.sf == o.sf &&
		t.start.Before(o.end) && o.start.Before(t.end)
}

type refChannel struct {
	sched  *simtime.Scheduler
	model  PathLossModel
	phy    PHYConfig
	radios []*refRadio
	active []*refTransmission
	Stats  ChannelStats
}

func newRefChannel(sched *simtime.Scheduler, model PathLossModel, phy PHYConfig) *refChannel {
	return &refChannel{sched: sched, model: model, phy: phy}
}

func (c *refChannel) NewRadio(name string, pos Position) *refRadio {
	r := &refRadio{name: name, pos: pos, ch: c}
	c.radios = append(c.radios, r)
	return r
}

func (r *refRadio) Transmit(payload []byte, sf SpreadingFactor, freq FrequencyHz) (time.Duration, error) {
	c := r.ch
	airtime, err := TimeOnAir(len(payload), sf, c.phy)
	if err != nil {
		return 0, err
	}
	if len(payload) > MaxPayload(sf) {
		return 0, fmt.Errorf("lora: payload %d exceeds %s limit %d", len(payload), sf, MaxPayload(sf))
	}
	now := c.sched.Now()
	tx := &refTransmission{from: r, payload: payload, sf: sf, freq: freq, start: now, end: now.Add(airtime)}
	c.active = append(c.active, tx)
	c.Stats.Transmissions++
	if tx.end.After(r.busyTill) {
		r.busyTill = tx.end
	}
	c.sched.At(tx.end, func(at time.Time) { c.deliver(tx, at) })
	return airtime, nil
}

func (c *refChannel) deliver(tx *refTransmission, at time.Time) {
	defer c.prune(at)
	for _, rx := range c.radios {
		if rx == tx.from || rx.handler == nil {
			continue
		}
		d := Distance(tx.from.pos, rx.pos)
		power := c.model.ReceivedPowerDBm(d)
		if power < Sensitivity(tx.sf) {
			c.Stats.OutOfRange++
			continue
		}
		if rx.busyTill.After(tx.start) {
			c.Stats.HalfDuplex++
			continue
		}
		if c.corrupted(tx, rx, power) {
			c.Stats.Collisions++
			continue
		}
		c.Stats.Deliveries++
		rx.handler(RxFrame{
			Payload:  append([]byte(nil), tx.payload...),
			SF:       tx.sf,
			Freq:     tx.freq,
			RSSI:     power,
			Airtime:  tx.end.Sub(tx.start),
			Received: at,
		})
	}
}

func (r *refRadio) Busy(freq FrequencyHz, sf SpreadingFactor) bool {
	c := r.ch
	now := c.sched.Now()
	for _, tx := range c.active {
		if tx.freq != freq || tx.sf != sf || tx.from == r {
			continue
		}
		if !tx.start.After(now) && tx.end.After(now) {
			power := c.model.ReceivedPowerDBm(Distance(tx.from.pos, r.pos))
			if power >= Sensitivity(sf) {
				return true
			}
		}
	}
	return false
}

func (c *refChannel) corrupted(tx *refTransmission, rx *refRadio, rxPower float64) bool {
	for _, other := range c.active {
		if other == tx || !tx.overlaps(other) {
			continue
		}
		interferer := c.model.ReceivedPowerDBm(Distance(other.from.pos, rx.pos))
		if rxPower-interferer < captureThresholdDB {
			return true
		}
	}
	return false
}

func (c *refChannel) prune(now time.Time) {
	cutoff := now.Add(-pruneGrace)
	keep := c.active[:0]
	for _, tx := range c.active {
		if tx.end.After(cutoff) {
			keep = append(keep, tx)
		}
	}
	c.active = keep
}

// ---------------------------------------------------------------------------
// Property test: identical seeded workloads through both engines.
// ---------------------------------------------------------------------------

// rxLog is one observed reception, in a form comparable across engines.
type rxLog struct {
	counter  byte
	sf       SpreadingFactor
	freq     FrequencyHz
	received time.Time
	rssi     float64
}

// TestChannelMatchesNaiveEngine drives the grid-indexed channel and the
// seed all-pairs channel through identical seeded workloads — clustered
// and dispersed placements, mixed SFs/frequencies, CAD probes, mobility —
// and requires identical stats and identical per-radio reception logs.
func TestChannelMatchesNaiveEngine(t *testing.T) {
	const (
		radios   = 120
		txCount  = 400
		probes   = 100
		moves    = 60
		duration = 30 * time.Minute
	)
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(4000 + trial)))
		origin := time.Date(2018, 12, 10, 0, 0, 0, 0, time.UTC)
		model := DefaultPathLoss()
		phy := DefaultPHY()

		schedA := simtime.NewScheduler(origin)
		schedB := simtime.NewScheduler(origin)
		gridCh := NewChannel(schedA, model, phy)
		naiveCh := newRefChannel(schedB, model, phy)

		// Half the trials cluster everything inside one grid cell (the
		// fig5/fig6 regime); the rest disperse radios across many cells so
		// the bulk out-of-range accounting is exercised.
		spread := 2_000.0
		if trial%2 == 1 {
			spread = 8 * gridCh.cellSize
		}
		positions := make([]Position, radios)
		for i := range positions {
			positions[i] = Position{X: rng.Float64() * spread, Y: rng.Float64() * spread}
		}
		logsA := make([][]rxLog, radios)
		logsB := make([][]rxLog, radios)
		gridRadios := make([]*Radio, radios)
		naiveRadios := make([]*refRadio, radios)
		for i := range positions {
			gridRadios[i] = gridCh.NewRadio(fmt.Sprintf("r%d", i), positions[i])
			naiveRadios[i] = naiveCh.NewRadio(fmt.Sprintf("r%d", i), positions[i])
			// ~1/4 of the radios are transmit-only (no handler), like the
			// city campaign's sensors.
			if rng.Intn(4) == 0 {
				continue
			}
			i := i
			gridRadios[i].OnReceive(func(f RxFrame) {
				logsA[i] = append(logsA[i], rxLog{f.Payload[0], f.SF, f.Freq, f.Received, f.RSSI})
			})
			naiveRadios[i].handler = func(f RxFrame) {
				logsB[i] = append(logsB[i], rxLog{f.Payload[0], f.SF, f.Freq, f.Received, f.RSSI})
			}
		}

		var busyA, busyB []bool
		for i := 0; i < txCount; i++ {
			at := time.Duration(rng.Int63n(int64(duration)))
			from := rng.Intn(radios)
			sf := SpreadingFactor(7 + rng.Intn(6))
			freq := DefaultChannels[rng.Intn(len(DefaultChannels))]
			payload := make([]byte, 1+rng.Intn(MaxPayload(sf)))
			payload[0] = byte(i)
			schedA.After(at, func(time.Time) { gridRadios[from].Transmit(payload, sf, freq) })
			schedB.After(at, func(time.Time) { naiveRadios[from].Transmit(payload, sf, freq) })
		}
		for i := 0; i < probes; i++ {
			at := time.Duration(rng.Int63n(int64(duration)))
			who := rng.Intn(radios)
			sf := SpreadingFactor(7 + rng.Intn(6))
			freq := DefaultChannels[rng.Intn(len(DefaultChannels))]
			schedA.After(at, func(time.Time) { busyA = append(busyA, gridRadios[who].Busy(freq, sf)) })
			schedB.After(at, func(time.Time) { busyB = append(busyB, naiveRadios[who].Busy(freq, sf)) })
		}
		for i := 0; i < moves; i++ {
			at := time.Duration(rng.Int63n(int64(duration)))
			who := rng.Intn(radios)
			to := Position{X: rng.Float64() * spread, Y: rng.Float64() * spread}
			schedA.After(at, func(time.Time) { gridRadios[who].SetPos(to) })
			schedB.After(at, func(time.Time) { naiveRadios[who].pos = to })
		}
		schedA.Run()
		schedB.Run()

		if gridCh.Stats != naiveCh.Stats {
			t.Fatalf("trial %d: stats diverged:\ngrid  %+v\nnaive %+v", trial, gridCh.Stats, naiveCh.Stats)
		}
		for i := range logsA {
			if len(logsA[i]) != len(logsB[i]) {
				t.Fatalf("trial %d: radio %d received %d frames on grid, %d on naive",
					trial, i, len(logsA[i]), len(logsB[i]))
			}
			for j := range logsA[i] {
				if logsA[i][j] != logsB[i][j] {
					t.Fatalf("trial %d: radio %d frame %d diverged: grid %+v naive %+v",
						trial, i, j, logsA[i][j], logsB[i][j])
				}
			}
		}
		if len(busyA) != len(busyB) {
			t.Fatalf("trial %d: %d busy probes on grid, %d on naive", trial, len(busyA), len(busyB))
		}
		for i := range busyA {
			if busyA[i] != busyB[i] {
				t.Fatalf("trial %d: busy probe %d diverged: grid %v naive %v", trial, i, busyA[i], busyB[i])
			}
		}
	}
}

// TestGridFarRadiosCountedOutOfRange pins the bulk accounting: a receiver
// beyond the 3×3 neighborhood must show up in OutOfRange exactly as the
// seed engine counted it, without being visited.
func TestGridFarRadiosCountedOutOfRange(t *testing.T) {
	origin := time.Date(2018, 12, 10, 0, 0, 0, 0, time.UTC)
	sched := simtime.NewScheduler(origin)
	c := NewChannel(sched, DefaultPathLoss(), DefaultPHY())
	tx := c.NewRadio("tx", Position{})
	near := c.NewRadio("near", Position{X: 500})
	far := c.NewRadio("far", Position{X: 5 * c.cellSize})
	got := 0
	near.OnReceive(func(RxFrame) { got++ })
	far.OnReceive(func(RxFrame) { t.Fatal("far radio received a frame") })
	if _, err := tx.Transmit([]byte{1}, SF7, DefaultChannels[0]); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if got != 1 {
		t.Fatalf("near radio received %d frames, want 1", got)
	}
	want := ChannelStats{Transmissions: 1, Deliveries: 1, OutOfRange: 1}
	if c.Stats != want {
		t.Fatalf("Stats = %+v, want %+v", c.Stats, want)
	}
}

// TestSetPosMovesDelivery moves a receiver between cells and checks the
// index follows: out of range before the move, delivered after.
func TestSetPosMovesDelivery(t *testing.T) {
	origin := time.Date(2018, 12, 10, 0, 0, 0, 0, time.UTC)
	sched := simtime.NewScheduler(origin)
	c := NewChannel(sched, DefaultPathLoss(), DefaultPHY())
	tx := c.NewRadio("tx", Position{})
	rx := c.NewRadio("rx", Position{X: 4 * c.cellSize})
	got := 0
	rx.OnReceive(func(RxFrame) { got++ })
	if _, err := tx.Transmit([]byte{1}, SF7, DefaultChannels[0]); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if got != 0 || c.Stats.OutOfRange != 1 {
		t.Fatalf("far receiver got %d frames (stats %+v), want none", got, c.Stats)
	}
	rx.SetPos(Position{X: 800})
	if _, err := tx.Transmit([]byte{2}, SF7, DefaultChannels[0]); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if got != 1 {
		t.Fatalf("moved receiver got %d frames, want 1", got)
	}
	if p := rx.Pos(); p.X != 800 || p.Y != 0 {
		t.Fatalf("Pos() = %+v after SetPos", p)
	}
}

// TestOnReceiveNilRemovesFromGrid detaches a handler and checks the radio
// stops participating (and stops being counted).
func TestOnReceiveNilRemovesFromGrid(t *testing.T) {
	origin := time.Date(2018, 12, 10, 0, 0, 0, 0, time.UTC)
	sched := simtime.NewScheduler(origin)
	c := NewChannel(sched, DefaultPathLoss(), DefaultPHY())
	tx := c.NewRadio("tx", Position{})
	rx := c.NewRadio("rx", Position{X: 500})
	rx.OnReceive(func(RxFrame) { t.Fatal("detached radio received") })
	rx.OnReceive(nil)
	if _, err := tx.Transmit([]byte{1}, SF7, DefaultChannels[0]); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	want := ChannelStats{Transmissions: 1}
	if c.Stats != want {
		t.Fatalf("Stats = %+v, want %+v", c.Stats, want)
	}
	if c.handlers != 0 || len(c.grid) != 0 {
		t.Fatalf("grid not empty after handler removal: handlers=%d cells=%d", c.handlers, len(c.grid))
	}
}

// ---------------------------------------------------------------------------
// DutyCycle: ring-buffer engine vs the seed rescanning engine.
// ---------------------------------------------------------------------------

type refDuty struct {
	limit   float64
	window  time.Duration
	records []txRecord
}

func (d *refDuty) budget() time.Duration {
	return time.Duration(float64(d.window) * d.limit)
}

func (d *refDuty) usedSince(cutoff time.Time) time.Duration {
	var used time.Duration
	for _, r := range d.records {
		if r.start.After(cutoff) {
			used += r.airtime
		}
	}
	return used
}

func (d *refDuty) CanTransmit(now time.Time, airtime time.Duration) bool {
	d.prune(now)
	return d.usedSince(now.Add(-d.window))+airtime <= d.budget()
}

func (d *refDuty) NextFree(now time.Time, airtime time.Duration) time.Time {
	d.prune(now)
	if airtime > d.budget() {
		return now.Add(d.window)
	}
	t := now
	for i := 0; i <= len(d.records); i++ {
		if d.usedSince(t.Add(-d.window))+airtime <= d.budget() {
			return t
		}
		oldest := time.Time{}
		for _, r := range d.records {
			if r.start.After(t.Add(-d.window)) {
				if oldest.IsZero() || r.start.Before(oldest) {
					oldest = r.start
				}
			}
		}
		if oldest.IsZero() {
			return t
		}
		t = oldest.Add(d.window)
	}
	return t
}

func (d *refDuty) Record(start time.Time, airtime time.Duration) {
	d.records = append(d.records, txRecord{start: start, airtime: airtime})
}

func (d *refDuty) prune(now time.Time) {
	cutoff := now.Add(-d.window)
	keep := d.records[:0]
	for _, r := range d.records {
		if r.start.After(cutoff) {
			keep = append(keep, r)
		}
	}
	d.records = keep
}

// TestDutyCycleMatchesNaive replays seeded op sequences through both duty
// limiters and requires identical answers from every query, including the
// NextFree window walk.
func TestDutyCycleMatchesNaive(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		ring, err := NewDutyCycle(0.01)
		if err != nil {
			t.Fatal(err)
		}
		naive := &refDuty{limit: 0.01, window: dutyWindow}
		now := time.Date(2018, 12, 10, 0, 0, 0, 0, time.UTC)
		for op := 0; op < 3000; op++ {
			// Mostly march forward; occasionally hold time still.
			if rng.Intn(4) > 0 {
				now = now.Add(time.Duration(rng.Int63n(int64(3 * time.Minute))))
			}
			airtime := time.Duration(rng.Int63n(int64(3*time.Second))) + time.Millisecond
			switch rng.Intn(4) {
			case 0:
				// Record, sometimes backdated to force the sorted-insert
				// path (the naive engine is order-insensitive).
				start := now
				if rng.Intn(10) == 0 {
					start = now.Add(-time.Duration(rng.Int63n(int64(10 * time.Minute))))
				}
				ring.Record(start, airtime)
				naive.Record(start, airtime)
			case 1:
				if got, want := ring.CanTransmit(now, airtime), naive.CanTransmit(now, airtime); got != want {
					t.Fatalf("trial %d op %d: CanTransmit = %v, naive %v", trial, op, got, want)
				}
			case 2:
				got, want := ring.NextFree(now, airtime), naive.NextFree(now, airtime)
				if !got.Equal(want) {
					t.Fatalf("trial %d op %d: NextFree = %v, naive %v (Δ %v)", trial, op, got, want, got.Sub(want))
				}
			default:
				if got, want := ring.Used(now), naive.usedSince(now.Add(-dutyWindow)); got != want {
					t.Fatalf("trial %d op %d: Used = %v, naive %v", trial, op, got, want)
				}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Benchmarks: indexed vs naive at 100 / 1k / 10k radios.
// ---------------------------------------------------------------------------

// benchLayout spreads n handler-equipped radios over a ~32×32-cell area —
// a delivery's 3×3 neighborhood holds under 1% of the fleet, the regime a
// metropolitan deployment lives in.
func benchLayout(n int) []Position {
	rng := rand.New(rand.NewSource(99))
	side := 32.0 * DefaultPathLoss().Range(SF12)
	out := make([]Position, n)
	for i := range out {
		out[i] = Position{X: rng.Float64() * side, Y: rng.Float64() * side}
	}
	return out
}

func BenchmarkChannelDeliver(b *testing.B) {
	origin := time.Date(2018, 12, 10, 0, 0, 0, 0, time.UTC)
	payload := make([]byte, 24)
	for _, n := range []int{100, 1_000, 10_000} {
		positions := benchLayout(n)
		b.Run(fmt.Sprintf("grid/%d", n), func(b *testing.B) {
			sched := simtime.NewScheduler(origin)
			c := NewChannel(sched, DefaultPathLoss(), DefaultPHY())
			sink := 0
			for i, p := range positions {
				r := c.NewRadio(fmt.Sprintf("r%d", i), p)
				r.OnReceive(func(RxFrame) { sink++ })
			}
			sender := c.NewRadio("tx", positions[0])
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sender.Transmit(payload, SF12, DefaultChannels[0]); err != nil {
					b.Fatal(err)
				}
				sched.Run()
			}
		})
		b.Run(fmt.Sprintf("naive/%d", n), func(b *testing.B) {
			sched := simtime.NewScheduler(origin)
			c := newRefChannel(sched, DefaultPathLoss(), DefaultPHY())
			sink := 0
			for i, p := range positions {
				r := c.NewRadio(fmt.Sprintf("r%d", i), p)
				r.handler = func(RxFrame) { sink++ }
			}
			sender := c.NewRadio("tx", positions[0])
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sender.Transmit(payload, SF12, DefaultChannels[0]); err != nil {
					b.Fatal(err)
				}
				sched.Run()
			}
		})
	}
}

// BenchmarkDutyCycleQuery measures the O(1) budget query against a
// limiter holding a full window of records.
func BenchmarkDutyCycleQuery(b *testing.B) {
	run := func(b *testing.B, query func(now time.Time, airtime time.Duration)) {
		now := time.Date(2018, 12, 10, 0, 0, 0, 0, time.UTC)
		for i := 0; i < 1000; i++ {
			now = now.Add(3 * time.Second)
			query(now, 30*time.Millisecond)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			query(now, 30*time.Millisecond)
		}
	}
	b.Run("ring", func(b *testing.B) {
		dc, err := NewDutyCycle(0.01)
		if err != nil {
			b.Fatal(err)
		}
		run(b, func(now time.Time, airtime time.Duration) {
			if dc.CanTransmit(now, airtime) {
				dc.Record(now, airtime)
			}
		})
	})
	b.Run("naive", func(b *testing.B) {
		dc := &refDuty{limit: 0.01, window: dutyWindow}
		run(b, func(now time.Time, airtime time.Duration) {
			if dc.CanTransmit(now, airtime) {
				dc.Record(now, airtime)
			}
		})
	})
}
