package lora

import (
	"fmt"
	"math"
	"sort"
	"time"

	"bcwan/internal/simtime"
	"bcwan/internal/telemetry"
)

// Position is a 2D location in meters.
type Position struct {
	X float64
	Y float64
}

// Distance returns the Euclidean distance in meters.
func Distance(a, b Position) float64 {
	return math.Hypot(a.X-b.X, a.Y-b.Y)
}

// PathLossModel is the log-distance model PL(d) = PL(d0) + 10·n·log10(d/d0)
// with parameters from Petäjäjärvi et al. [6 in the paper], the LoRa
// channel-attenuation study the paper cites.
type PathLossModel struct {
	RefLossDB     float64
	RefDistanceM  float64
	Exponent      float64
	MinDistanceM  float64
	TxPowerDBm    float64
	AntennaGainDB float64
}

// DefaultPathLoss returns the Petäjäjärvi model (PL = 127.41 dB at 1 km,
// exponent 2.08) with the EU868 14 dBm TX power.
func DefaultPathLoss() PathLossModel {
	return PathLossModel{
		RefLossDB:    127.41,
		RefDistanceM: 1000,
		Exponent:     2.08,
		MinDistanceM: 1,
		TxPowerDBm:   14,
	}
}

// LossDB returns the path loss at distance d meters.
func (m PathLossModel) LossDB(d float64) float64 {
	if d < m.MinDistanceM {
		d = m.MinDistanceM
	}
	return m.RefLossDB + 10*m.Exponent*math.Log10(d/m.RefDistanceM)
}

// ReceivedPowerDBm returns the RX power over distance d.
func (m PathLossModel) ReceivedPowerDBm(d float64) float64 {
	return m.TxPowerDBm + m.AntennaGainDB - m.LossDB(d)
}

// Sensitivity returns the SX127x receiver sensitivity (dBm) at 125 kHz
// bandwidth for the spreading factor.
func Sensitivity(sf SpreadingFactor) float64 {
	switch sf {
	case SF7:
		return -123
	case SF8:
		return -126
	case SF9:
		return -129
	case SF10:
		return -132
	case SF11:
		return -134.5
	default:
		return -137
	}
}

// Range returns the maximum distance (meters) at which the given SF is
// receivable under the model.
func (m PathLossModel) Range(sf SpreadingFactor) float64 {
	budget := m.TxPowerDBm + m.AntennaGainDB - Sensitivity(sf)
	return m.RefDistanceM * math.Pow(10, (budget-m.RefLossDB)/(10*m.Exponent))
}

// captureThresholdDB is the co-channel power margin above which the
// stronger of two overlapping transmissions still decodes (capture
// effect).
const captureThresholdDB = 6

// FrequencyHz identifies a radio channel. EU868's three default channels.
var DefaultChannels = []FrequencyHz{868_100_000, 868_300_000, 868_500_000}

// FrequencyHz is a carrier frequency in Hz.
type FrequencyHz int64

// RxFrame is a reception event delivered to a radio.
type RxFrame struct {
	Payload  []byte
	SF       SpreadingFactor
	Freq     FrequencyHz
	RSSI     float64
	From     *Radio
	Airtime  time.Duration
	Received time.Time
}

// Radio is one LoRa transceiver attached to a Channel. Handlers run on
// the channel's scheduler goroutine.
type Radio struct {
	Name     string
	id       int // creation order; fixes handler invocation order
	pos      Position
	ch       *Channel
	handler  func(RxFrame)
	halfDup  bool
	busyTill time.Time
}

// Pos returns the radio's current location.
func (r *Radio) Pos() Position { return r.pos }

// SetPos moves the radio — a device roaming between coverage areas. The
// spatial index follows the move; an in-flight transmission keeps the
// position it was launched and overheard from.
func (r *Radio) SetPos(p Position) {
	if r.handler != nil {
		old := r.ch.cellOf(r.pos)
		if next := r.ch.cellOf(p); next != old {
			r.ch.gridRemove(r, old)
			r.ch.gridInsert(r, next)
		}
	}
	r.pos = p
}

// OnReceive installs (or, with nil, removes) the reception handler. Only
// radios with a handler participate in delivery, so the channel indexes
// exactly those in its spatial grid.
func (r *Radio) OnReceive(fn func(RxFrame)) {
	had := r.handler != nil
	r.handler = fn
	switch {
	case fn != nil && !had:
		r.ch.handlers++
		r.ch.gridInsert(r, r.ch.cellOf(r.pos))
	case fn == nil && had:
		r.ch.handlers--
		r.ch.gridRemove(r, r.ch.cellOf(r.pos))
	}
}

// transmission is an in-flight frame on the channel.
type transmission struct {
	from    *Radio
	fromPos Position // sender position at launch; immune to later SetPos
	payload []byte
	sf      SpreadingFactor
	freq    FrequencyHz
	start   time.Time
	end     time.Time
}

func (t *transmission) overlaps(o *transmission) bool {
	return t.freq == o.freq && t.sf == o.sf &&
		t.start.Before(o.end) && o.start.Before(t.end)
}

// airKey buckets in-flight transmissions by the only dimensions that can
// interact: LoRa spreading factors are quasi-orthogonal, so collision,
// CAD-busy and capture checks all consider same-frequency same-SF frames
// only.
type airKey struct {
	freq FrequencyHz
	sf   SpreadingFactor
}

// cell addresses one square of the spatial grid.
type cell struct {
	x, y int64
}

// Channel is the shared radio medium: it schedules deliveries on a
// discrete-event scheduler, applies path loss + sensitivity, and corrupts
// colliding transmissions (same frequency and SF overlapping in time,
// unless the receiver's stronger signal wins by the capture threshold).
//
// Two indexes keep the medium sub-linear in fleet size. Radios with a
// reception handler live in a spatial grid whose cell edge is the maximum
// receivable distance under the model (SF12 range), so a delivery only
// examines the 3×3 cell neighborhood around the sender — every radio
// outside it is provably below sensitivity at any SF. In-flight
// transmissions are bucketed by (frequency, SF), the only pairs that can
// collide.
type Channel struct {
	sched    *simtime.Scheduler
	model    PathLossModel
	phy      PHYConfig
	radios   []*Radio
	cellSize float64
	grid     map[cell][]*Radio
	handlers int
	active   map[airKey][]*transmission
	inFlight int
	scratch  []*Radio
	// Stats counts channel-level outcomes for the experiment reports.
	Stats ChannelStats

	activeGauge *telemetry.Gauge
	cellGauge   *telemetry.Gauge
}

// ChannelStats aggregates delivery outcomes.
type ChannelStats struct {
	Transmissions uint64
	Deliveries    uint64
	Collisions    uint64
	OutOfRange    uint64
	HalfDuplex    uint64
}

// NewChannel creates a radio medium on the given scheduler.
func NewChannel(sched *simtime.Scheduler, model PathLossModel, phy PHYConfig) *Channel {
	return &Channel{
		sched:    sched,
		model:    model,
		phy:      phy,
		cellSize: model.Range(SF12),
		grid:     make(map[cell][]*Radio),
		active:   make(map[airKey][]*transmission),
	}
}

// Instrument registers the channel gauges on reg. A nil registry is a
// no-op.
func (c *Channel) Instrument(reg *telemetry.Registry) {
	ns := reg.Namespace("lora")
	c.activeGauge = ns.Gauge("active_transmissions", "In-flight frames on the shared medium (including the collision-check grace window).")
	c.cellGauge = ns.Gauge("grid_cells", "Occupied cells of the spatial radio index.")
	c.activeGauge.Set(int64(c.inFlight))
	c.cellGauge.Set(int64(len(c.grid)))
}

// NewRadio attaches a transceiver at the given position.
func (c *Channel) NewRadio(name string, pos Position) *Radio {
	r := &Radio{Name: name, id: len(c.radios), pos: pos, ch: c, halfDup: true}
	c.radios = append(c.radios, r)
	return r
}

// PHY returns the channel's modem configuration.
func (c *Channel) PHY() PHYConfig { return c.phy }

// Model returns the propagation model.
func (c *Channel) Model() PathLossModel { return c.model }

func (c *Channel) cellOf(p Position) cell {
	return cell{x: int64(math.Floor(p.X / c.cellSize)), y: int64(math.Floor(p.Y / c.cellSize))}
}

func (c *Channel) gridInsert(r *Radio, at cell) {
	c.grid[at] = append(c.grid[at], r)
	c.cellGauge.Set(int64(len(c.grid)))
}

func (c *Channel) gridRemove(r *Radio, at cell) {
	rs := c.grid[at]
	for i, other := range rs {
		if other == r {
			rs[i] = rs[len(rs)-1]
			rs = rs[:len(rs)-1]
			break
		}
	}
	if len(rs) == 0 {
		delete(c.grid, at)
	} else {
		c.grid[at] = rs
	}
	c.cellGauge.Set(int64(len(c.grid)))
}

// neighborhood collects every handler-equipped radio within the 3×3 cells
// around p, sorted by creation order so delivery outcomes are independent
// of grid bookkeeping history.
func (c *Channel) neighborhood(p Position) []*Radio {
	center := c.cellOf(p)
	out := c.scratch[:0]
	for dx := int64(-1); dx <= 1; dx++ {
		for dy := int64(-1); dy <= 1; dy++ {
			out = append(out, c.grid[cell{x: center.x + dx, y: center.y + dy}]...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	c.scratch = out
	return out
}

// Transmit schedules a frame from the radio. Delivery callbacks fire at
// start+airtime on every in-range radio whose reception is not corrupted.
// It returns the frame airtime.
func (r *Radio) Transmit(payload []byte, sf SpreadingFactor, freq FrequencyHz) (time.Duration, error) {
	c := r.ch
	airtime, err := TimeOnAir(len(payload), sf, c.phy)
	if err != nil {
		return 0, err
	}
	if len(payload) > MaxPayload(sf) {
		return 0, fmt.Errorf("lora: payload %d exceeds %s limit %d", len(payload), sf, MaxPayload(sf))
	}
	now := c.sched.Now()
	tx := &transmission{
		from:    r,
		fromPos: r.pos,
		payload: payload,
		sf:      sf,
		freq:    freq,
		start:   now,
		end:     now.Add(airtime),
	}
	key := airKey{freq: freq, sf: sf}
	c.active[key] = append(c.active[key], tx)
	c.inFlight++
	c.activeGauge.Set(int64(c.inFlight))
	c.Stats.Transmissions++
	// The sender cannot receive while transmitting (half duplex).
	if tx.end.After(r.busyTill) {
		r.busyTill = tx.end
	}

	c.sched.At(tx.end, func(at time.Time) {
		c.deliver(tx, at)
	})
	return airtime, nil
}

// deliver completes a transmission: every radio in range either receives
// the frame or loses it to a collision. Only the sender's 3×3 cell
// neighborhood is examined; all other handler-equipped radios are more
// than one SF12 range away, hence below sensitivity, and are accounted as
// out of range in bulk.
func (c *Channel) deliver(tx *transmission, at time.Time) {
	defer c.prune(at)
	eligible := c.handlers
	if tx.from.handler != nil {
		eligible--
	}
	evaluated := 0
	for _, rx := range c.neighborhood(tx.fromPos) {
		if rx == tx.from {
			continue
		}
		evaluated++
		d := Distance(tx.fromPos, rx.pos)
		power := c.model.ReceivedPowerDBm(d)
		if power < Sensitivity(tx.sf) {
			c.Stats.OutOfRange++
			continue
		}
		// Half-duplex: a radio that was transmitting during the frame
		// cannot have received it.
		if rx.busyTill.After(tx.start) {
			c.Stats.HalfDuplex++
			continue
		}
		if c.corrupted(tx, rx, power) {
			c.Stats.Collisions++
			continue
		}
		c.Stats.Deliveries++
		rx.handler(RxFrame{
			Payload:  append([]byte(nil), tx.payload...),
			SF:       tx.sf,
			Freq:     tx.freq,
			RSSI:     power,
			From:     tx.from,
			Airtime:  tx.end.Sub(tx.start),
			Received: at,
		})
	}
	c.Stats.OutOfRange += uint64(eligible - evaluated)
}

// Busy reports whether the radio can currently hear an in-flight
// transmission on the given frequency and spreading factor — the SX127x
// channel-activity-detection (CAD) primitive that listen-before-talk
// firmware (e.g. the paper's C. Pham gateway library) uses to avoid
// collisions.
func (r *Radio) Busy(freq FrequencyHz, sf SpreadingFactor) bool {
	c := r.ch
	now := c.sched.Now()
	for _, tx := range c.active[airKey{freq: freq, sf: sf}] {
		if tx.from == r {
			continue
		}
		if !tx.start.After(now) && tx.end.After(now) {
			power := c.model.ReceivedPowerDBm(Distance(tx.fromPos, r.pos))
			if power >= Sensitivity(sf) {
				return true
			}
		}
	}
	return false
}

// corrupted reports whether a concurrent same-channel same-SF
// transmission drowns tx at the receiver.
func (c *Channel) corrupted(tx *transmission, rx *Radio, rxPower float64) bool {
	for _, other := range c.active[airKey{freq: tx.freq, sf: tx.sf}] {
		if other == tx || !tx.overlaps(other) {
			continue
		}
		interferer := c.model.ReceivedPowerDBm(Distance(other.fromPos, rx.pos))
		if rxPower-interferer < captureThresholdDB {
			return true
		}
	}
	return false
}

// pruneGrace keeps finished transmissions around long enough that any
// frame they overlapped (airtime is bounded by a few seconds even at
// SF12) still sees them in its collision check at delivery time.
const pruneGrace = 10 * time.Second

// prune drops transmissions that ended more than pruneGrace before now,
// bucket by bucket. A bucket is only ever scanned by traffic on its own
// (frequency, SF) pair, so the whole map stays proportional to recent
// traffic, not to history.
func (c *Channel) prune(now time.Time) {
	cutoff := now.Add(-pruneGrace)
	for key, txs := range c.active {
		keep := txs[:0]
		for _, tx := range txs {
			if tx.end.After(cutoff) {
				keep = append(keep, tx)
			}
		}
		c.inFlight -= len(txs) - len(keep)
		if len(keep) == 0 {
			delete(c.active, key)
		} else {
			c.active[key] = keep
		}
	}
	c.activeGauge.Set(int64(c.inFlight))
}
