package lora

import (
	"testing"
	"time"

	"bcwan/internal/simtime"
)

var simOrigin = time.Date(2018, 12, 10, 0, 0, 0, 0, time.UTC)

func newTestChannel() (*simtime.Scheduler, *Channel) {
	sched := simtime.NewScheduler(simOrigin)
	ch := NewChannel(sched, DefaultPathLoss(), DefaultPHY())
	return sched, ch
}

func TestPathLossIncreasesWithDistance(t *testing.T) {
	m := DefaultPathLoss()
	if m.LossDB(100) >= m.LossDB(1000) || m.LossDB(1000) >= m.LossDB(5000) {
		t.Fatal("path loss not increasing with distance")
	}
	// Reference point: PL(1 km) = 127.41 dB.
	if got := m.LossDB(1000); got != 127.41 {
		t.Fatalf("LossDB(1km) = %.2f, want 127.41", got)
	}
}

func TestRangeGrowsWithSF(t *testing.T) {
	m := DefaultPathLoss()
	prev := 0.0
	for sf := SF7; sf <= SF12; sf++ {
		r := m.Range(sf)
		if r <= prev {
			t.Fatalf("range not increasing at %s", sf)
		}
		prev = r
	}
	// SF7 range should be km-scale (the paper's "several kilometers").
	if r := m.Range(SF7); r < 1_000 || r > 10_000 {
		t.Fatalf("SF7 range = %.0f m, want km-scale", r)
	}
}

func TestTransmitDelivers(t *testing.T) {
	sched, ch := newTestChannel()
	node := ch.NewRadio("node", Position{0, 0})
	gw := ch.NewRadio("gw", Position{1000, 0})

	var got []RxFrame
	gw.OnReceive(func(f RxFrame) { got = append(got, f) })

	airtime, err := node.Transmit([]byte("hello"), SF7, DefaultChannels[0])
	if err != nil {
		t.Fatal(err)
	}
	sched.Run()

	if len(got) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(got))
	}
	f := got[0]
	if string(f.Payload) != "hello" || f.SF != SF7 || f.From != node {
		t.Fatalf("frame = %+v", f)
	}
	if !f.Received.Equal(simOrigin.Add(airtime)) {
		t.Fatalf("received at %v, want %v", f.Received, simOrigin.Add(airtime))
	}
	if f.RSSI < Sensitivity(SF7) {
		t.Fatalf("RSSI %.1f below sensitivity", f.RSSI)
	}
}

func TestTransmitOutOfRange(t *testing.T) {
	sched, ch := newTestChannel()
	node := ch.NewRadio("node", Position{0, 0})
	far := ch.NewRadio("far", Position{50_000, 0}) // 50 km

	received := 0
	far.OnReceive(func(RxFrame) { received++ })

	if _, err := node.Transmit([]byte("x"), SF7, DefaultChannels[0]); err != nil {
		t.Fatal(err)
	}
	sched.Run()

	if received != 0 {
		t.Fatal("out-of-range radio received a frame")
	}
	if ch.Stats.OutOfRange != 1 {
		t.Fatalf("OutOfRange = %d, want 1", ch.Stats.OutOfRange)
	}
}

func TestHigherSFReachesFarther(t *testing.T) {
	sched, ch := newTestChannel()
	node := ch.NewRadio("node", Position{0, 0})
	// Between SF7 range (~2.9 km) and SF12 range (~13.6 km).
	mid := ch.NewRadio("mid", Position{6_000, 0})

	received := map[SpreadingFactor]int{}
	mid.OnReceive(func(f RxFrame) { received[f.SF]++ })

	if _, err := node.Transmit([]byte("x"), SF7, DefaultChannels[0]); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if _, err := node.Transmit([]byte("x"), SF12, DefaultChannels[0]); err != nil {
		t.Fatal(err)
	}
	sched.Run()

	if received[SF7] != 0 {
		t.Fatal("SF7 frame received beyond its range")
	}
	if received[SF12] != 1 {
		t.Fatal("SF12 frame not received within its range")
	}
}

func TestCollisionCorruptsBoth(t *testing.T) {
	sched, ch := newTestChannel()
	// Two nodes equidistant from the gateway: neither wins capture.
	a := ch.NewRadio("a", Position{0, 1000})
	b := ch.NewRadio("b", Position{0, -1000})
	gw := ch.NewRadio("gw", Position{0, 0})

	received := 0
	gw.OnReceive(func(RxFrame) { received++ })

	if _, err := a.Transmit(make([]byte, 20), SF7, DefaultChannels[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Transmit(make([]byte, 20), SF7, DefaultChannels[0]); err != nil {
		t.Fatal(err)
	}
	sched.Run()

	if received != 0 {
		t.Fatalf("received %d frames from a collision", received)
	}
	if ch.Stats.Collisions != 2 {
		t.Fatalf("Collisions = %d, want 2", ch.Stats.Collisions)
	}
}

func TestCaptureEffect(t *testing.T) {
	sched, ch := newTestChannel()
	near := ch.NewRadio("near", Position{0, 100}) // ≥6 dB stronger at gw
	far := ch.NewRadio("far", Position{0, 2500})
	gw := ch.NewRadio("gw", Position{0, 0})

	var got []string
	gw.OnReceive(func(f RxFrame) { got = append(got, f.From.Name) })

	if _, err := near.Transmit(make([]byte, 20), SF7, DefaultChannels[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := far.Transmit(make([]byte, 20), SF7, DefaultChannels[0]); err != nil {
		t.Fatal(err)
	}
	sched.Run()

	if len(got) != 1 || got[0] != "near" {
		t.Fatalf("capture outcome = %v, want [near]", got)
	}
}

func TestDifferentChannelsDoNotCollide(t *testing.T) {
	sched, ch := newTestChannel()
	a := ch.NewRadio("a", Position{0, 1000})
	b := ch.NewRadio("b", Position{0, -1000})
	gw := ch.NewRadio("gw", Position{0, 0})

	received := 0
	gw.OnReceive(func(RxFrame) { received++ })

	if _, err := a.Transmit(make([]byte, 20), SF7, DefaultChannels[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Transmit(make([]byte, 20), SF7, DefaultChannels[1]); err != nil {
		t.Fatal(err)
	}
	sched.Run()

	if received != 2 {
		t.Fatalf("received = %d, want 2 (no inter-channel collision)", received)
	}
}

func TestDifferentSFsAreOrthogonal(t *testing.T) {
	sched, ch := newTestChannel()
	a := ch.NewRadio("a", Position{0, 1000})
	b := ch.NewRadio("b", Position{0, -1000})
	gw := ch.NewRadio("gw", Position{0, 0})

	received := 0
	gw.OnReceive(func(RxFrame) { received++ })

	if _, err := a.Transmit(make([]byte, 20), SF7, DefaultChannels[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Transmit(make([]byte, 20), SF8, DefaultChannels[0]); err != nil {
		t.Fatal(err)
	}
	sched.Run()

	if received != 2 {
		t.Fatalf("received = %d, want 2 (SFs are orthogonal)", received)
	}
}

func TestHalfDuplexSenderMissesOverlap(t *testing.T) {
	sched, ch := newTestChannel()
	a := ch.NewRadio("a", Position{0, 500})
	b := ch.NewRadio("b", Position{0, -500})

	aReceived := 0
	a.OnReceive(func(RxFrame) { aReceived++ })
	// Different channels so there is no collision — but a is
	// transmitting while b's frame arrives.
	if _, err := a.Transmit(make([]byte, 100), SF7, DefaultChannels[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Transmit(make([]byte, 20), SF7, DefaultChannels[1]); err != nil {
		t.Fatal(err)
	}
	sched.Run()

	if aReceived != 0 {
		t.Fatal("half-duplex radio received while transmitting")
	}
	if ch.Stats.HalfDuplex != 1 {
		t.Fatalf("HalfDuplex = %d, want 1", ch.Stats.HalfDuplex)
	}
}

func TestTransmitRejectsOversizedPayload(t *testing.T) {
	_, ch := newTestChannel()
	node := ch.NewRadio("node", Position{0, 0})
	if _, err := node.Transmit(make([]byte, 52), SF12, DefaultChannels[0]); err == nil {
		t.Fatal("oversized SF12 payload accepted")
	}
}

func TestFrameEncodeDecode(t *testing.T) {
	f := &Frame{
		Type:    FrameData,
		DevEUI:  DevEUI{1, 2, 3, 4, 5, 6, 7, 8},
		Counter: 99,
		Payload: []byte("Em||Sig||@R"),
	}
	back, err := DecodeFrame(f.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Type != f.Type || back.DevEUI != f.DevEUI || back.Counter != f.Counter || string(back.Payload) != string(f.Payload) {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

func TestFrameDecodeRejects(t *testing.T) {
	if _, err := DecodeFrame(nil); err == nil {
		t.Error("nil frame accepted")
	}
	if _, err := DecodeFrame(make([]byte, 5)); err == nil {
		t.Error("short frame accepted")
	}
	bad := (&Frame{Type: FrameData}).Encode()
	bad[0] = 200
	if _, err := DecodeFrame(bad); err == nil {
		t.Error("unknown frame type accepted")
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	f := &Frame{Type: FrameKeyRequest, DevEUI: DevEUI{9}}
	back, err := DecodeFrame(f.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Payload) != 0 {
		t.Fatalf("payload = %x, want empty", back.Payload)
	}
}

func TestManyTransmissionsStatsConsistent(t *testing.T) {
	sched, ch := newTestChannel()
	gw := ch.NewRadio("gw", Position{0, 0})
	delivered := 0
	gw.OnReceive(func(RxFrame) { delivered++ })

	nodes := make([]*Radio, 10)
	for i := range nodes {
		nodes[i] = ch.NewRadio("n", Position{float64(100 * (i + 1)), 0})
	}
	for round := 0; round < 20; round++ {
		for i, n := range nodes {
			n := n
			freq := DefaultChannels[(round+i)%len(DefaultChannels)]
			sched.After(time.Duration(round*300+i*13)*time.Millisecond, func(time.Time) {
				_, err := n.Transmit(make([]byte, 20), SF7, freq)
				if err != nil {
					t.Errorf("transmit: %v", err)
				}
			})
		}
	}
	sched.Run()

	if ch.Stats.Transmissions != 200 {
		t.Fatalf("Transmissions = %d, want 200", ch.Stats.Transmissions)
	}
	if uint64(delivered) != ch.Stats.Deliveries-uint64(deliveriesAmongNodes(ch)) {
		// Deliveries counts node-to-node receptions too only if nodes
		// installed handlers; they did not, so the counts must match.
		t.Fatalf("delivered %d, stats %d", delivered, ch.Stats.Deliveries)
	}
	if delivered == 0 {
		t.Fatal("no deliveries at all")
	}
}

// deliveriesAmongNodes is zero in this test (nodes have no handlers); kept
// explicit for readability.
func deliveriesAmongNodes(*Channel) int { return 0 }

func TestBusyDetectsAudibleTransmission(t *testing.T) {
	sched, ch := newTestChannel()
	a := ch.NewRadio("a", Position{0, 0})
	b := ch.NewRadio("b", Position{500, 0})

	if b.Busy(DefaultChannels[0], SF7) {
		t.Fatal("idle channel reported busy")
	}
	if _, err := a.Transmit(make([]byte, 50), SF7, DefaultChannels[0]); err != nil {
		t.Fatal(err)
	}
	// While the frame is in flight, CAD at b reports busy on the same
	// freq+SF, and idle on others.
	if !b.Busy(DefaultChannels[0], SF7) {
		t.Fatal("in-flight transmission not detected")
	}
	if b.Busy(DefaultChannels[1], SF7) {
		t.Fatal("other frequency reported busy")
	}
	if b.Busy(DefaultChannels[0], SF8) {
		t.Fatal("other SF reported busy")
	}
	// The sender's own transmission does not make its CAD busy.
	if a.Busy(DefaultChannels[0], SF7) {
		t.Fatal("sender hears itself")
	}
	sched.Run()
	if b.Busy(DefaultChannels[0], SF7) {
		t.Fatal("ended transmission still reported busy")
	}
}

func TestBusyIgnoresOutOfRangeTransmitters(t *testing.T) {
	_, ch := newTestChannel()
	far := ch.NewRadio("far", Position{50_000, 0})
	listener := ch.NewRadio("l", Position{0, 0})
	if _, err := far.Transmit(make([]byte, 50), SF7, DefaultChannels[0]); err != nil {
		t.Fatal(err)
	}
	if listener.Busy(DefaultChannels[0], SF7) {
		t.Fatal("inaudible transmission reported busy (hidden terminal must stay hidden)")
	}
}
