// Package lora simulates the LoRa physical and MAC layers that the
// paper's proof of concept ran on real hardware (Nucleo-144 node, RFM95
// gateway shield). The simulator reproduces the properties the evaluation
// depends on: exact time-on-air per spreading factor, the EU868 1 % duty
// cycle that caps per-sensor throughput (183 messages/hour in §5.2),
// log-distance path loss with per-SF sensitivity thresholds, and
// ALOHA-style collisions between concurrent transmissions.
package lora

import (
	"errors"
	"fmt"
	"math"
	"time"

	"bcwan/internal/telemetry"
)

// SpreadingFactor is the LoRa spreading factor, SF7 (fastest) to SF12
// (longest range).
type SpreadingFactor int

// Valid spreading factors.
const (
	SF7 SpreadingFactor = 7 + iota
	SF8
	SF9
	SF10
	SF11
	SF12
)

// ErrBadSpreadingFactor reports an SF outside SF7–SF12.
var ErrBadSpreadingFactor = errors.New("lora: spreading factor out of range")

// Valid reports whether the spreading factor is in range.
func (sf SpreadingFactor) Valid() bool { return sf >= SF7 && sf <= SF12 }

// String renders e.g. "SF7".
func (sf SpreadingFactor) String() string { return fmt.Sprintf("SF%d", int(sf)) }

// PHYConfig carries the modem parameters of the time-on-air formula.
type PHYConfig struct {
	// BandwidthHz is the channel bandwidth (125 kHz in EU868 default
	// channels).
	BandwidthHz float64
	// CodingRate is the CR in 4/(4+CR); 1 means 4/5.
	CodingRate int
	// PreambleSymbols is the programmed preamble length (8 standard).
	PreambleSymbols int
	// ExplicitHeader enables the PHY header (on for LoRaWAN uplinks).
	ExplicitHeader bool
	// CRC enables the payload CRC (on for uplinks).
	CRC bool
}

// DefaultPHY is the EU868 LoRaWAN uplink configuration.
func DefaultPHY() PHYConfig {
	return PHYConfig{
		BandwidthHz:     125_000,
		CodingRate:      1,
		PreambleSymbols: 8,
		ExplicitHeader:  true,
		CRC:             true,
	}
}

// MaxPayload returns the maximum MAC payload (bytes) per spreading factor
// in EU868 (DR0–DR5 M values).
func MaxPayload(sf SpreadingFactor) int {
	switch sf {
	case SF7, SF8:
		return 222 // DR5/DR4 allow 222 at SF7; SF8 is 222 at DR4
	case SF9:
		return 115
	default:
		return 51
	}
}

// TimeOnAir computes the LoRa frame airtime from the Semtech SX127x
// formula (AN1200.13). payloadLen is the PHY payload in bytes.
func TimeOnAir(payloadLen int, sf SpreadingFactor, cfg PHYConfig) (time.Duration, error) {
	if !sf.Valid() {
		return 0, fmt.Errorf("%w: %d", ErrBadSpreadingFactor, int(sf))
	}
	if payloadLen < 0 || cfg.BandwidthHz <= 0 || cfg.CodingRate < 1 || cfg.CodingRate > 4 {
		return 0, fmt.Errorf("lora: invalid time-on-air parameters (len=%d bw=%.0f cr=%d)",
			payloadLen, cfg.BandwidthHz, cfg.CodingRate)
	}
	tSym := math.Pow(2, float64(sf)) / cfg.BandwidthHz // seconds

	// Low data rate optimization is mandated for symbol times ≥ 16 ms
	// (SF11, SF12 at 125 kHz).
	de := 0.0
	if tSym >= 0.016 {
		de = 1
	}
	ih := 1.0
	if cfg.ExplicitHeader {
		ih = 0
	}
	crc := 0.0
	if cfg.CRC {
		crc = 1
	}

	num := 8*float64(payloadLen) - 4*float64(sf) + 28 + 16*crc - 20*ih
	den := 4 * (float64(sf) - 2*de)
	payloadSymbols := 8.0
	if num > 0 {
		payloadSymbols += math.Ceil(num/den) * float64(cfg.CodingRate+4)
	}
	preamble := (float64(cfg.PreambleSymbols) + 4.25) * tSym
	total := preamble + payloadSymbols*tSym
	return time.Duration(total * float64(time.Second)), nil
}

// MaxMessagesPerHour returns the duty-cycle-limited message budget for a
// payload size at the given SF — the §5.2 calculation that yields the
// paper's "theoretical maximum of 183 messages per sensor per hour".
func MaxMessagesPerHour(payloadLen int, sf SpreadingFactor, dutyCycle float64, cfg PHYConfig) (float64, error) {
	if dutyCycle <= 0 || dutyCycle > 1 {
		return 0, fmt.Errorf("lora: duty cycle %f out of (0,1]", dutyCycle)
	}
	toa, err := TimeOnAir(payloadLen, sf, cfg)
	if err != nil {
		return 0, err
	}
	return 3600 * dutyCycle / toa.Seconds(), nil
}

// dutyWindow is the averaging window of the EU868 duty-cycle rule.
const dutyWindow = time.Hour

// DutyCycle enforces the EU868 sub-band duty cycle as a sliding-window
// airtime budget: total time-on-air within any one-hour window must stay
// below limit·window. Budget accounting (rather than a per-transmission
// off-period) permits the request/data burst of a BcWAN exchange while
// still capping throughput at the §5.2 messages-per-hour figure.
//
// Records live in a start-ordered ring buffer with a running airtime sum,
// so budget queries are O(1): expiry pops from the head, recording pushes
// at the tail, and NextFree walks the ring once without rescanning.
type DutyCycle struct {
	limit  float64
	window time.Duration
	buf    []txRecord // ring storage
	head   int        // index of oldest record
	n      int        // live records
	used   time.Duration

	gauge *telemetry.Gauge
}

type txRecord struct {
	start   time.Time
	airtime time.Duration
}

// NewDutyCycle returns a limiter for the given fraction (0.01 = 1 %).
func NewDutyCycle(limit float64) (*DutyCycle, error) {
	if limit <= 0 || limit > 1 {
		return nil, fmt.Errorf("lora: duty cycle %f out of (0,1]", limit)
	}
	return &DutyCycle{limit: limit, window: dutyWindow}, nil
}

// Instrument points the limiter at a gauge that tracks its in-window
// airtime as a fraction of the budget, in parts per million. A nil gauge
// is a no-op.
func (d *DutyCycle) Instrument(g *telemetry.Gauge) {
	d.gauge = g
	d.updateGauge()
}

func (d *DutyCycle) updateGauge() {
	if d.gauge == nil {
		return
	}
	d.gauge.Set(int64(float64(d.used) / float64(d.budget()) * 1e6))
}

// budget returns the allowed airtime per window.
func (d *DutyCycle) budget() time.Duration {
	return time.Duration(float64(d.window) * d.limit)
}

// at returns the i-th oldest live record.
func (d *DutyCycle) at(i int) txRecord {
	return d.buf[(d.head+i)%len(d.buf)]
}

// Used returns the recorded airtime inside the window ending at now.
func (d *DutyCycle) Used(now time.Time) time.Duration {
	d.prune(now)
	return d.used
}

// CanTransmit reports whether a transmission of the given airtime fits
// the budget at the given instant.
func (d *DutyCycle) CanTransmit(now time.Time, airtime time.Duration) bool {
	d.prune(now)
	return d.used+airtime <= d.budget()
}

// NextFree returns the earliest instant at or after now when a
// transmission of the given airtime fits the budget.
//
// The walk mirrors the definition of the sliding window: while the load
// does not fit, slide the window to the instant the oldest in-window
// record expires and drop every record that expires with it. Each live
// record is visited at most once and the ring itself is left untouched —
// only real time passing (prune) retires records.
func (d *DutyCycle) NextFree(now time.Time, airtime time.Duration) time.Time {
	d.prune(now)
	if airtime > d.budget() {
		// Never fits; report a window out as "infinitely throttled".
		return now.Add(d.window)
	}
	t := now
	used := d.used
	i := 0
	for used+airtime > d.budget() && i < d.n {
		oldest := d.at(i)
		t = oldest.start.Add(d.window)
		// Everything starting at or before the oldest record expires with
		// it (the window keeps records starting strictly after its edge).
		for i < d.n && !d.at(i).start.After(oldest.start) {
			used -= d.at(i).airtime
			i++
		}
	}
	return t
}

// Record accounts a transmission beginning at start with the given
// airtime. Starts arrive in order from the simulators; an out-of-order
// start falls back to a sorted insertion so the ring invariant holds.
func (d *DutyCycle) Record(start time.Time, airtime time.Duration) {
	if len(d.buf) == d.n {
		d.grow()
	}
	if d.n > 0 && start.Before(d.at(d.n-1).start) {
		d.insertSorted(txRecord{start: start, airtime: airtime})
	} else {
		d.buf[(d.head+d.n)%len(d.buf)] = txRecord{start: start, airtime: airtime}
		d.n++
	}
	d.used += airtime
	d.updateGauge()
}

// grow doubles the ring, linearizing the live records to the front.
func (d *DutyCycle) grow() {
	next := make([]txRecord, maxInt(4, 2*len(d.buf)))
	for i := 0; i < d.n; i++ {
		next[i] = d.at(i)
	}
	d.buf = next
	d.head = 0
}

// insertSorted places an out-of-order record at its start-ordered slot.
func (d *DutyCycle) insertSorted(r txRecord) {
	// Binary search over ring offsets for the first record after r.start.
	lo, hi := 0, d.n
	for lo < hi {
		mid := (lo + hi) / 2
		if d.at(mid).start.After(r.start) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	// Shift the tail right by one slot.
	for i := d.n; i > lo; i-- {
		d.buf[(d.head+i)%len(d.buf)] = d.buf[(d.head+i-1)%len(d.buf)]
	}
	d.buf[(d.head+lo)%len(d.buf)] = r
	d.n++
}

// prune retires records older than one window before now from the head
// of the ring.
func (d *DutyCycle) prune(now time.Time) {
	cutoff := now.Add(-d.window)
	changed := false
	for d.n > 0 && !d.buf[d.head].start.After(cutoff) {
		d.used -= d.buf[d.head].airtime
		d.buf[d.head] = txRecord{}
		d.head = (d.head + 1) % len(d.buf)
		d.n--
		changed = true
	}
	if d.n == 0 {
		d.head = 0
	}
	if changed {
		d.updateGauge()
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
