// Package lora simulates the LoRa physical and MAC layers that the
// paper's proof of concept ran on real hardware (Nucleo-144 node, RFM95
// gateway shield). The simulator reproduces the properties the evaluation
// depends on: exact time-on-air per spreading factor, the EU868 1 % duty
// cycle that caps per-sensor throughput (183 messages/hour in §5.2),
// log-distance path loss with per-SF sensitivity thresholds, and
// ALOHA-style collisions between concurrent transmissions.
package lora

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// SpreadingFactor is the LoRa spreading factor, SF7 (fastest) to SF12
// (longest range).
type SpreadingFactor int

// Valid spreading factors.
const (
	SF7 SpreadingFactor = 7 + iota
	SF8
	SF9
	SF10
	SF11
	SF12
)

// ErrBadSpreadingFactor reports an SF outside SF7–SF12.
var ErrBadSpreadingFactor = errors.New("lora: spreading factor out of range")

// Valid reports whether the spreading factor is in range.
func (sf SpreadingFactor) Valid() bool { return sf >= SF7 && sf <= SF12 }

// String renders e.g. "SF7".
func (sf SpreadingFactor) String() string { return fmt.Sprintf("SF%d", int(sf)) }

// PHYConfig carries the modem parameters of the time-on-air formula.
type PHYConfig struct {
	// BandwidthHz is the channel bandwidth (125 kHz in EU868 default
	// channels).
	BandwidthHz float64
	// CodingRate is the CR in 4/(4+CR); 1 means 4/5.
	CodingRate int
	// PreambleSymbols is the programmed preamble length (8 standard).
	PreambleSymbols int
	// ExplicitHeader enables the PHY header (on for LoRaWAN uplinks).
	ExplicitHeader bool
	// CRC enables the payload CRC (on for uplinks).
	CRC bool
}

// DefaultPHY is the EU868 LoRaWAN uplink configuration.
func DefaultPHY() PHYConfig {
	return PHYConfig{
		BandwidthHz:     125_000,
		CodingRate:      1,
		PreambleSymbols: 8,
		ExplicitHeader:  true,
		CRC:             true,
	}
}

// MaxPayload returns the maximum MAC payload (bytes) per spreading factor
// in EU868 (DR0–DR5 M values).
func MaxPayload(sf SpreadingFactor) int {
	switch sf {
	case SF7, SF8:
		return 222 // DR5/DR4 allow 222 at SF7; SF8 is 222 at DR4
	case SF9:
		return 115
	default:
		return 51
	}
}

// TimeOnAir computes the LoRa frame airtime from the Semtech SX127x
// formula (AN1200.13). payloadLen is the PHY payload in bytes.
func TimeOnAir(payloadLen int, sf SpreadingFactor, cfg PHYConfig) (time.Duration, error) {
	if !sf.Valid() {
		return 0, fmt.Errorf("%w: %d", ErrBadSpreadingFactor, int(sf))
	}
	if payloadLen < 0 || cfg.BandwidthHz <= 0 || cfg.CodingRate < 1 || cfg.CodingRate > 4 {
		return 0, fmt.Errorf("lora: invalid time-on-air parameters (len=%d bw=%.0f cr=%d)",
			payloadLen, cfg.BandwidthHz, cfg.CodingRate)
	}
	tSym := math.Pow(2, float64(sf)) / cfg.BandwidthHz // seconds

	// Low data rate optimization is mandated for symbol times ≥ 16 ms
	// (SF11, SF12 at 125 kHz).
	de := 0.0
	if tSym >= 0.016 {
		de = 1
	}
	ih := 1.0
	if cfg.ExplicitHeader {
		ih = 0
	}
	crc := 0.0
	if cfg.CRC {
		crc = 1
	}

	num := 8*float64(payloadLen) - 4*float64(sf) + 28 + 16*crc - 20*ih
	den := 4 * (float64(sf) - 2*de)
	payloadSymbols := 8.0
	if num > 0 {
		payloadSymbols += math.Ceil(num/den) * float64(cfg.CodingRate+4)
	}
	preamble := (float64(cfg.PreambleSymbols) + 4.25) * tSym
	total := preamble + payloadSymbols*tSym
	return time.Duration(total * float64(time.Second)), nil
}

// MaxMessagesPerHour returns the duty-cycle-limited message budget for a
// payload size at the given SF — the §5.2 calculation that yields the
// paper's "theoretical maximum of 183 messages per sensor per hour".
func MaxMessagesPerHour(payloadLen int, sf SpreadingFactor, dutyCycle float64, cfg PHYConfig) (float64, error) {
	if dutyCycle <= 0 || dutyCycle > 1 {
		return 0, fmt.Errorf("lora: duty cycle %f out of (0,1]", dutyCycle)
	}
	toa, err := TimeOnAir(payloadLen, sf, cfg)
	if err != nil {
		return 0, err
	}
	return 3600 * dutyCycle / toa.Seconds(), nil
}

// dutyWindow is the averaging window of the EU868 duty-cycle rule.
const dutyWindow = time.Hour

// DutyCycle enforces the EU868 sub-band duty cycle as a sliding-window
// airtime budget: total time-on-air within any one-hour window must stay
// below limit·window. Budget accounting (rather than a per-transmission
// off-period) permits the request/data burst of a BcWAN exchange while
// still capping throughput at the §5.2 messages-per-hour figure.
type DutyCycle struct {
	limit   float64
	window  time.Duration
	records []txRecord
}

type txRecord struct {
	start   time.Time
	airtime time.Duration
}

// NewDutyCycle returns a limiter for the given fraction (0.01 = 1 %).
func NewDutyCycle(limit float64) (*DutyCycle, error) {
	if limit <= 0 || limit > 1 {
		return nil, fmt.Errorf("lora: duty cycle %f out of (0,1]", limit)
	}
	return &DutyCycle{limit: limit, window: dutyWindow}, nil
}

// budget returns the allowed airtime per window.
func (d *DutyCycle) budget() time.Duration {
	return time.Duration(float64(d.window) * d.limit)
}

// usedSince sums airtime of transmissions starting strictly after cutoff
// (a record exactly one window old has just expired).
func (d *DutyCycle) usedSince(cutoff time.Time) time.Duration {
	var used time.Duration
	for _, r := range d.records {
		if r.start.After(cutoff) {
			used += r.airtime
		}
	}
	return used
}

// CanTransmit reports whether a transmission of the given airtime fits
// the budget at the given instant.
func (d *DutyCycle) CanTransmit(now time.Time, airtime time.Duration) bool {
	d.prune(now)
	return d.usedSince(now.Add(-d.window))+airtime <= d.budget()
}

// NextFree returns the earliest instant at or after now when a
// transmission of the given airtime fits the budget.
func (d *DutyCycle) NextFree(now time.Time, airtime time.Duration) time.Time {
	d.prune(now)
	if airtime > d.budget() {
		// Never fits; report a window out as "infinitely throttled".
		return now.Add(d.window)
	}
	t := now
	for i := 0; i <= len(d.records); i++ {
		if d.usedSince(t.Add(-d.window))+airtime <= d.budget() {
			return t
		}
		// Advance to when the oldest in-window record expires.
		oldest := time.Time{}
		for _, r := range d.records {
			if r.start.After(t.Add(-d.window)) {
				if oldest.IsZero() || r.start.Before(oldest) {
					oldest = r.start
				}
			}
		}
		if oldest.IsZero() {
			return t
		}
		t = oldest.Add(d.window)
	}
	return t
}

// Record accounts a transmission beginning at start with the given
// airtime.
func (d *DutyCycle) Record(start time.Time, airtime time.Duration) {
	d.records = append(d.records, txRecord{start: start, airtime: airtime})
}

// prune drops records older than one window before now.
func (d *DutyCycle) prune(now time.Time) {
	cutoff := now.Add(-d.window)
	keep := d.records[:0]
	for _, r := range d.records {
		if r.start.After(cutoff) {
			keep = append(keep, r)
		}
	}
	d.records = keep
}
