// Package channel implements off-chain payment channels between a
// recipient (payer/funder) and a gateway (payee), batching many RSA-512
// key-disclosure settlements into a single on-chain close.
//
// The protocol is a one-way (Spillman-style) channel:
//
//  1. The recipient funds an on-chain 2-of-2 output with a CLTV refund
//     path (script.Channel) — the funding transaction.
//  2. For every delivered message the recipient signs a new commitment
//     transaction spending the funding output: version n+1, cumulative
//     paid amount increased by the message price. The gateway verifies
//     the signature, countersigns, and only then discloses the ephemeral
//     RSA private key.
//  3. Close: the gateway broadcasts the latest fully-signed commitment
//     (unilateral and cooperative close share the same transaction — the
//     highest-version commitment is always the cooperative balance). The
//     payer keeps the signature pair of its highest *acknowledged*
//     commitment, so it too can close unilaterally — at the acked
//     balance — even while a newer update is in flight unacknowledged.
//  4. Abandonment: once the chain reaches the refund height the funder
//     may reclaim the capacity through the CLTV path — but only a
//     channel the gateway earned nothing on is refunded in full; with
//     any acknowledged balance the funder settles by broadcasting the
//     acked commitment instead. A live gateway still closes before the
//     refund height (the daemon does so a safety margin early).
//
// Loss is bounded by one update delta: the payer is at most one signed,
// unacknowledged update ahead of the payee, the payee never discloses
// a key before holding (and persisting) the covering signature, and —
// with SetPriceFloor — never for an update paying less than the
// delivery price.
package channel

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"bcwan/internal/bccrypto"
	"bcwan/internal/chain"
	"bcwan/internal/script"
)

// Channel errors.
var (
	ErrClosed         = errors.New("channel: closed")
	ErrExhausted      = errors.New("channel: capacity exhausted")
	ErrBadUpdate      = errors.New("channel: bad update")
	ErrStaleVersion   = errors.New("channel: stale or replayed version")
	ErrBadSignature   = errors.New("channel: bad signature")
	ErrBadFunding     = errors.New("channel: bad funding transaction")
	ErrNoCommitment   = errors.New("channel: no signed commitment yet")
	ErrRefundTooEarly = errors.New("channel: refund height not reached")
	ErrUnknownChannel = errors.New("channel: unknown channel")
)

// Status is the lifecycle state of a channel endpoint.
type Status uint8

// Channel lifecycle states.
const (
	StatusOpen Status = iota + 1
	StatusClosing
	StatusClosed
	StatusRefunded
)

// String names the status for logs.
func (s Status) String() string {
	switch s {
	case StatusOpen:
		return "open"
	case StatusClosing:
		return "closing"
	case StatusClosed:
		return "closed"
	case StatusRefunded:
		return "refunded"
	default:
		return "unknown"
	}
}

// Params are the immutable terms fixed at channel open.
type Params struct {
	// GatewayPub is the payee's EC public key.
	GatewayPub []byte
	// RecipientPub is the funder/payer's EC public key.
	RecipientPub []byte
	// Capacity is the value locked in the funding output.
	Capacity uint64
	// CloseFee is the miner fee every commitment transaction pays.
	CloseFee uint64
	// RefundHeight is the absolute height at which the funder may
	// reclaim the capacity unilaterally.
	RefundHeight int64
}

// ScriptParams converts the channel terms into the funding script
// template parameters.
func (p Params) ScriptParams() script.ChannelParams {
	return script.ChannelParams{
		GatewayPubKey:    p.GatewayPub,
		RecipientPubKey:  p.RecipientPub,
		RefundHeight:     p.RefundHeight,
		FunderPubKeyHash: bccrypto.Hash160(p.RecipientPub),
	}
}

// State is the persistent view one endpoint holds of a channel. The payer
// and payee views differ only in which signatures are populated and in
// AckedVersion/AckedPaid (payer side: the prefix the payee has confirmed).
type State struct {
	// ID is the funding transaction id; the funding output is (ID, 0).
	ID chain.Hash
	Params
	// Role the local endpoint plays.
	Role Role
	// Version is the highest commitment version this endpoint has signed
	// (payer) or verified and countersigned (payee). Version 0 means no
	// off-chain update has happened yet.
	Version uint64
	// Paid is the cumulative amount paid to the gateway at Version.
	Paid uint64
	// RecipientSig and GatewaySig sign the Version commitment. The payee
	// always holds both for its Version; the payer holds GatewaySig only
	// up to AckedVersion.
	RecipientSig []byte
	GatewaySig   []byte
	// AckedVersion/AckedPaid (payer only): highest version for which the
	// gateway's countersignature has been received. Paid - AckedPaid is
	// the in-flight delta — the payer's maximum possible loss.
	AckedVersion uint64
	AckedPaid    uint64
	// AckedRecipientSig/AckedGatewaySig (payer only) are the signature
	// pair of the AckedVersion commitment. They survive SignUpdate so the
	// payer can always close unilaterally at its acked balance even while
	// a newer update is in flight unacknowledged.
	AckedRecipientSig []byte
	AckedGatewaySig   []byte
	Status            Status
	// PeerAddr is the p2p address of the remote endpoint, when known.
	PeerAddr string
}

// Role distinguishes the two channel endpoints.
type Role uint8

// Endpoint roles.
const (
	RolePayer Role = iota + 1 // recipient: funds the channel, signs updates
	RolePayee                 // gateway: verifies updates, discloses keys, closes
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RolePayer:
		return "payer"
	case RolePayee:
		return "payee"
	default:
		return "unknown"
	}
}

// InFlight returns the payer's unacknowledged delta — the bounded-loss
// window.
func (s *State) InFlight() uint64 {
	if s.Paid < s.AckedPaid {
		return 0
	}
	return s.Paid - s.AckedPaid
}

// Update is one off-chain payment: the payer's signature over commitment
// (Version, Paid) of channel ID.
type Update struct {
	ChannelID    chain.Hash
	Version      uint64
	Paid         uint64
	RecipientSig []byte
}

// versionMarkerPrefix tags the OP_RETURN output that binds a commitment
// transaction to its monotonic version (and makes every commitment tx
// unique even when balances repeat).
var versionMarkerPrefix = []byte("bcch")

// VersionMarker encodes the commitment-version OP_RETURN payload.
func VersionMarker(version uint64) []byte {
	return binary.BigEndian.AppendUint64(append([]byte(nil), versionMarkerPrefix...), version)
}

// ParseVersionMarker decodes a commitment version marker.
func ParseVersionMarker(data []byte) (uint64, bool) {
	if len(data) != len(versionMarkerPrefix)+8 || !bytes.HasPrefix(data, versionMarkerPrefix) {
		return 0, false
	}
	return binary.BigEndian.Uint64(data[len(versionMarkerPrefix):]), true
}

// CommitmentTx builds the (unsigned) commitment transaction for a given
// version and cumulative paid amount: it spends the funding output and
// pays the gateway its cumulative total, the remainder back to the
// funder, and carries an OP_RETURN version marker.
func CommitmentTx(p Params, id chain.Hash, version, paid uint64) (*chain.Tx, error) {
	if paid+p.CloseFee > p.Capacity {
		return nil, fmt.Errorf("%w: paid %d + fee %d > capacity %d", ErrExhausted, paid, p.CloseFee, p.Capacity)
	}
	tx := &chain.Tx{
		Version: 1,
		Inputs:  []chain.TxIn{{Prev: chain.OutPoint{TxID: id, Index: 0}}},
		Outputs: []chain.TxOut{
			{Value: paid, Lock: script.PayToPubKeyHash(bccrypto.Hash160(p.GatewayPub))},
			{Value: p.Capacity - paid - p.CloseFee, Lock: script.PayToPubKeyHash(bccrypto.Hash160(p.RecipientPub))},
			{Value: 0, Lock: script.NullData(VersionMarker(version))},
		},
	}
	return tx, nil
}

// CommitmentDigest returns the digest both parties sign for a commitment.
func CommitmentDigest(p Params, id chain.Hash, version, paid uint64) (chain.Hash, error) {
	tx, err := CommitmentTx(p, id, version, paid)
	if err != nil {
		return chain.Hash{}, err
	}
	return tx.SigHash(0, script.Channel(p.ScriptParams())), nil
}

// SignedCommitment assembles the fully-signed commitment transaction for
// the endpoint's latest state. This is both the cooperative and the
// unilateral close transaction.
func SignedCommitment(s *State) (*chain.Tx, error) {
	if s.Version == 0 || len(s.RecipientSig) == 0 || len(s.GatewaySig) == 0 {
		return nil, ErrNoCommitment
	}
	tx, err := CommitmentTx(s.Params, s.ID, s.Version, s.Paid)
	if err != nil {
		return nil, err
	}
	tx.Inputs[0].Unlock = script.UnlockChannelClose(s.RecipientSig, s.GatewaySig)
	return tx, nil
}

// AckedCommitment assembles the fully-signed commitment transaction at
// the payer's highest acknowledged version. Unlike SignedCommitment it
// keeps working while a newer update is in flight unacknowledged — the
// payer's unilateral close settles the acked balance, never less.
func AckedCommitment(s *State) (*chain.Tx, error) {
	if s.AckedVersion == 0 || len(s.AckedRecipientSig) == 0 || len(s.AckedGatewaySig) == 0 {
		return nil, ErrNoCommitment
	}
	tx, err := CommitmentTx(s.Params, s.ID, s.AckedVersion, s.AckedPaid)
	if err != nil {
		return nil, err
	}
	tx.Inputs[0].Unlock = script.UnlockChannelClose(s.AckedRecipientSig, s.AckedGatewaySig)
	return tx, nil
}

// VerifyFunding checks that a funding transaction's output 0 locks the
// agreed capacity under the channel script for the given terms.
func VerifyFunding(tx *chain.Tx, p Params) error {
	if len(tx.Outputs) == 0 {
		return fmt.Errorf("%w: no outputs", ErrBadFunding)
	}
	out := tx.Outputs[0]
	if out.Value != p.Capacity {
		return fmt.Errorf("%w: output value %d != capacity %d", ErrBadFunding, out.Value, p.Capacity)
	}
	want := script.Channel(p.ScriptParams())
	if !script.Equal(out.Lock, want) {
		return fmt.Errorf("%w: locking script does not match channel terms", ErrBadFunding)
	}
	return nil
}
