package channel

import (
	"bytes"
	"fmt"
	"sync"

	"bcwan/internal/bccrypto"
	"bcwan/internal/chain"
	"bcwan/internal/fairex"
	"bcwan/internal/wallet"
)

// Payer is the recipient-side channel endpoint: it funds the channel and
// signs monotonically-versioned commitment updates.
type Payer struct {
	mu     sync.Mutex
	st     *State
	wallet *wallet.Wallet
	ledger fairex.Ledger
	store  *Store
}

// OpenPayer funds a new channel: it builds and submits the on-chain
// funding transaction and returns the endpoint plus the funding tx for
// relay to the payee.
func OpenPayer(w *wallet.Wallet, ledger fairex.Ledger, store *Store, gatewayPub []byte, capacity, fundFee, closeFee uint64, refundWindow int64, peerAddr string) (*Payer, *chain.Tx, error) {
	if capacity <= closeFee {
		return nil, nil, fmt.Errorf("%w: capacity %d <= close fee %d", ErrExhausted, capacity, closeFee)
	}
	params := Params{
		GatewayPub:   append([]byte(nil), gatewayPub...),
		RecipientPub: w.PublicBytes(),
		Capacity:     capacity,
		CloseFee:     closeFee,
		RefundHeight: ledger.Height() + refundWindow,
	}
	funding, err := w.BuildChannelFunding(ledger.UTXO(), params.ScriptParams(), capacity, fundFee)
	if err != nil {
		return nil, nil, err
	}
	if err := ledger.Submit(funding); err != nil {
		return nil, nil, fmt.Errorf("channel: submit funding: %w", err)
	}
	st := &State{
		ID:       funding.ID(),
		Params:   params,
		Role:     RolePayer,
		Status:   StatusOpen,
		PeerAddr: peerAddr,
	}
	p := &Payer{st: st, wallet: w, ledger: ledger, store: store}
	if err := p.persist(); err != nil {
		return nil, nil, err
	}
	return p, funding, nil
}

// LoadPayer rebuilds a payer endpoint from a persisted state (after a
// restart). The wallet must hold the key matching the state's
// RecipientPub.
func LoadPayer(st *State, w *wallet.Wallet, ledger fairex.Ledger, store *Store) (*Payer, error) {
	if st.Role != RolePayer {
		return nil, fmt.Errorf("%w: state role %s is not payer", ErrUnknownChannel, st.Role)
	}
	return &Payer{st: st, wallet: w, ledger: ledger, store: store}, nil
}

// State returns a copy of the endpoint's channel state.
func (p *Payer) State() State {
	p.mu.Lock()
	defer p.mu.Unlock()
	return *p.st
}

// SignUpdate produces the next commitment update paying delta more to the
// gateway. The signed state is persisted before the update is returned,
// so a crashed payer knows its in-flight delta on restart.
func (p *Payer) SignUpdate(delta uint64) (*Update, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.st.Status != StatusOpen {
		return nil, ErrClosed
	}
	paid := p.st.Paid + delta
	if paid+p.st.CloseFee > p.st.Capacity {
		return nil, fmt.Errorf("%w: paid %d + fee %d > capacity %d", ErrExhausted, paid, p.st.CloseFee, p.st.Capacity)
	}
	version := p.st.Version + 1
	digest, err := CommitmentDigest(p.st.Params, p.st.ID, version, paid)
	if err != nil {
		return nil, err
	}
	sig, err := p.wallet.SignChannelDigest(digest)
	if err != nil {
		return nil, err
	}
	p.st.Version = version
	p.st.Paid = paid
	p.st.RecipientSig = sig
	p.st.GatewaySig = nil
	if err := p.persist(); err != nil {
		return nil, err
	}
	return &Update{
		ChannelID:    p.st.ID,
		Version:      version,
		Paid:         paid,
		RecipientSig: sig,
	}, nil
}

// NoteAck records the gateway's countersignature for a version the payer
// signed, shrinking the in-flight window. Stale acknowledgements (below
// the current acked version) are ignored.
func (p *Payer) NoteAck(version uint64, gatewaySig []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if version <= p.st.AckedVersion {
		return nil
	}
	if version != p.st.Version {
		return fmt.Errorf("%w: ack version %d, latest signed %d", ErrStaleVersion, version, p.st.Version)
	}
	digest, err := CommitmentDigest(p.st.Params, p.st.ID, version, p.st.Paid)
	if err != nil {
		return err
	}
	if !bccrypto.VerifyECDigest(p.st.GatewayPub, digest[:], gatewaySig) {
		return fmt.Errorf("%w: gateway countersignature", ErrBadSignature)
	}
	p.st.GatewaySig = append([]byte(nil), gatewaySig...)
	p.st.AckedVersion = version
	p.st.AckedPaid = p.st.Paid
	// Keep the full signature pair of the acked commitment: SignUpdate
	// drops GatewaySig for the next version, and without this copy an
	// unacked in-flight update would leave the payer with no broadcastable
	// commitment at all.
	p.st.AckedRecipientSig = append([]byte(nil), p.st.RecipientSig...)
	p.st.AckedGatewaySig = append([]byte(nil), gatewaySig...)
	return p.persist()
}

// UnilateralClose broadcasts the commitment at the payer's highest
// acknowledged version, settling the channel without the gateway's help.
// It is the payer's close of last resort: the gateway keeps everything it
// has been acknowledged, the payer reclaims the remainder — strictly
// fairer than the full-capacity CLTV refund whenever AckedVersion > 0.
func (p *Payer) UnilateralClose() (*chain.Tx, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.st.Status == StatusClosed || p.st.Status == StatusRefunded {
		return nil, ErrClosed
	}
	tx, err := AckedCommitment(p.st)
	if err != nil {
		return nil, err
	}
	if err := p.ledger.Submit(tx); err != nil {
		return nil, fmt.Errorf("channel: submit unilateral close: %w", err)
	}
	p.st.Status = StatusClosed
	if err := p.persist(); err != nil {
		return nil, err
	}
	return tx, nil
}

// Refund reclaims the channel capacity through the CLTV path once the
// chain has reached the refund height. Used when the gateway abandons the
// channel.
func (p *Payer) Refund(fee uint64) (*chain.Tx, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if height := p.ledger.Height(); height < p.st.RefundHeight {
		return nil, fmt.Errorf("%w: height %d < refund height %d", ErrRefundTooEarly, height, p.st.RefundHeight)
	}
	funding, _, ok := p.ledger.FindTx(p.st.ID)
	if !ok {
		if funding, ok = p.ledger.PendingTx(p.st.ID); !ok {
			return nil, fmt.Errorf("%w: funding tx %s not found", ErrUnknownChannel, p.st.ID)
		}
	}
	tx, err := p.wallet.BuildChannelRefund(
		chain.OutPoint{TxID: p.st.ID, Index: 0}, funding.Outputs[0], p.st.RefundHeight, fee)
	if err != nil {
		return nil, err
	}
	if err := p.ledger.Submit(tx); err != nil {
		return nil, fmt.Errorf("channel: submit refund: %w", err)
	}
	p.st.Status = StatusRefunded
	if err := p.persist(); err != nil {
		return nil, err
	}
	return tx, nil
}

// MarkClosing flags the channel so no further updates are signed.
func (p *Payer) MarkClosing() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.st.Status == StatusOpen {
		p.st.Status = StatusClosing
		return p.persist()
	}
	return nil
}

func (p *Payer) persist() error {
	if p.store == nil {
		return nil
	}
	return p.store.Save(p.st)
}

// Payee is the gateway-side channel endpoint: it verifies and countersigns
// updates and broadcasts the latest commitment at close.
type Payee struct {
	mu     sync.Mutex
	st     *State
	wallet *wallet.Wallet
	ledger fairex.Ledger
	store  *Store
	// priceFloor is the minimum cumulative-paid increase per update. Zero
	// disables the check (raw endpoint use); the daemon sets it to the
	// gateway's delivery price so an underpaying update can never buy a
	// key disclosure.
	priceFloor uint64
}

// SetPriceFloor sets the minimum paid delta ApplyUpdate accepts per
// update. Each update must pay at least this much on top of the previous
// cumulative balance.
func (g *Payee) SetPriceFloor(v uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.priceFloor = v
}

// AcceptPayee validates a funding transaction against the agreed terms
// and creates the payee endpoint. The funding transaction is submitted to
// the payee's own mempool so it sees the channel anchor even if gossip
// lags.
func AcceptPayee(w *wallet.Wallet, ledger fairex.Ledger, store *Store, funding *chain.Tx, p Params, peerAddr string) (*Payee, error) {
	if !bytes.Equal(p.GatewayPub, w.PublicBytes()) {
		return nil, fmt.Errorf("%w: gateway key is not ours", ErrBadFunding)
	}
	if err := VerifyFunding(funding, p); err != nil {
		return nil, err
	}
	if p.RefundHeight <= ledger.Height() {
		return nil, fmt.Errorf("%w: refund height %d already reached (height %d)", ErrBadFunding, p.RefundHeight, ledger.Height())
	}
	// Best effort: the funding tx usually arrives via gossip too, so an
	// already-known (or already-confirmed) funding is not an error.
	if _, _, confirmed := ledger.FindTx(funding.ID()); !confirmed {
		if _, pending := ledger.PendingTx(funding.ID()); !pending {
			if err := ledger.Submit(funding); err != nil {
				return nil, fmt.Errorf("%w: funding rejected: %v", ErrBadFunding, err)
			}
		}
	}
	st := &State{
		ID:       funding.ID(),
		Params:   p,
		Role:     RolePayee,
		Status:   StatusOpen,
		PeerAddr: peerAddr,
	}
	g := &Payee{st: st, wallet: w, ledger: ledger, store: store}
	if err := g.persist(); err != nil {
		return nil, err
	}
	return g, nil
}

// LoadPayee rebuilds a payee endpoint from a persisted state.
func LoadPayee(st *State, w *wallet.Wallet, ledger fairex.Ledger, store *Store) (*Payee, error) {
	if st.Role != RolePayee {
		return nil, fmt.Errorf("%w: state role %s is not payee", ErrUnknownChannel, st.Role)
	}
	return &Payee{st: st, wallet: w, ledger: ledger, store: store}, nil
}

// State returns a copy of the endpoint's channel state.
func (g *Payee) State() State {
	g.mu.Lock()
	defer g.mu.Unlock()
	return *g.st
}

// ApplyUpdate verifies a payer update — monotonic version, increasing
// cumulative amount within capacity, valid payer signature — then
// countersigns it. The new state is persisted BEFORE the countersignature
// is returned, so a key disclosure never outruns durable channel state.
func (g *Payee) ApplyUpdate(u *Update) ([]byte, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.st.Status != StatusOpen {
		return nil, ErrClosed
	}
	if u.ChannelID != g.st.ID {
		return nil, ErrUnknownChannel
	}
	if u.Version <= g.st.Version {
		return nil, fmt.Errorf("%w: got %d, have %d", ErrStaleVersion, u.Version, g.st.Version)
	}
	if u.Paid <= g.st.Paid {
		return nil, fmt.Errorf("%w: paid must increase (got %d, have %d)", ErrBadUpdate, u.Paid, g.st.Paid)
	}
	if g.priceFloor > 0 && u.Paid-g.st.Paid < g.priceFloor {
		return nil, fmt.Errorf("%w: delta %d underpays the %d delivery price", ErrBadUpdate, u.Paid-g.st.Paid, g.priceFloor)
	}
	if u.Paid+g.st.CloseFee > g.st.Capacity {
		return nil, fmt.Errorf("%w: paid %d + fee %d > capacity %d", ErrExhausted, u.Paid, g.st.CloseFee, g.st.Capacity)
	}
	digest, err := CommitmentDigest(g.st.Params, g.st.ID, u.Version, u.Paid)
	if err != nil {
		return nil, err
	}
	if !bccrypto.VerifyECDigest(g.st.RecipientPub, digest[:], u.RecipientSig) {
		return nil, fmt.Errorf("%w: payer signature", ErrBadSignature)
	}
	gwSig, err := g.wallet.SignChannelDigest(digest)
	if err != nil {
		return nil, err
	}
	g.st.Version = u.Version
	g.st.Paid = u.Paid
	g.st.RecipientSig = append([]byte(nil), u.RecipientSig...)
	g.st.GatewaySig = gwSig
	if err := g.persist(); err != nil {
		return nil, err
	}
	return gwSig, nil
}

// Close broadcasts the latest fully-signed commitment, settling all
// off-chain payments in one on-chain transaction. Safe to call on either
// a cooperative or a unilateral close — both paths publish the same
// highest-version commitment.
func (g *Payee) Close() (*chain.Tx, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.st.Status == StatusClosed {
		return nil, ErrClosed
	}
	tx, err := SignedCommitment(g.st)
	if err != nil {
		return nil, err
	}
	if err := g.ledger.Submit(tx); err != nil {
		return nil, fmt.Errorf("channel: submit close: %w", err)
	}
	g.st.Status = StatusClosed
	if err := g.persist(); err != nil {
		return nil, err
	}
	return tx, nil
}

// Abandon retires a payee channel that has earned nothing (Version 0, so
// there is no commitment to broadcast): it only flips the status so no
// further updates are countersigned. The funder's CLTV refund is the
// on-chain settlement of such a channel.
func (g *Payee) Abandon() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.st.Status != StatusOpen {
		return nil
	}
	g.st.Status = StatusClosed
	return g.persist()
}

func (g *Payee) persist() error {
	if g.store == nil {
		return nil
	}
	return g.store.Save(g.st)
}
