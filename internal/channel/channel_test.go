package channel_test

import (
	"crypto/rand"
	"errors"
	"testing"
	"time"

	"bcwan/internal/chain"
	"bcwan/internal/channel"
	"bcwan/internal/fairex"
	"bcwan/internal/wallet"
)

// rig is a single-chain playground with a funded payer wallet, a payee
// wallet, and a miner.
type rig struct {
	t      *testing.T
	chain  *chain.Chain
	pool   *chain.Mempool
	miner  *chain.Miner
	ledger *fairex.Node
	payerW *wallet.Wallet
	payeeW *wallet.Wallet
	now    time.Time
}

const payerFunds = 1_000_000

func newRig(t *testing.T) *rig {
	t.Helper()
	payerW, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	payeeW, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	minerW, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	genesis := chain.GenesisBlock(map[[20]byte]uint64{payerW.PubKeyHash(): payerFunds})
	c, err := chain.New(chain.DefaultParams(), genesis)
	if err != nil {
		t.Fatal(err)
	}
	c.AuthorizeMiner(minerW.PublicBytes())
	pool := chain.NewMempool()
	return &rig{
		t:      t,
		chain:  c,
		pool:   pool,
		miner:  chain.NewMiner(minerW.Key(), c, pool, rand.Reader),
		ledger: &fairex.Node{Chain: c, Pool: pool},
		payerW: payerW,
		payeeW: payeeW,
		now:    time.Date(2018, 12, 10, 0, 0, 0, 0, time.UTC),
	}
}

func (r *rig) mine() *chain.Block {
	r.t.Helper()
	r.now = r.now.Add(r.chain.Params().BlockInterval)
	b, err := r.miner.Mine(r.now)
	if err != nil {
		r.t.Fatal(err)
	}
	return b
}

const (
	capacity = 10_000
	fundFee  = 10
	closeFee = 5
	price    = 100
)

func openChannel(t *testing.T, r *rig, payerStore, payeeStore *channel.Store) (*channel.Payer, *channel.Payee) {
	t.Helper()
	payer, funding, err := channel.OpenPayer(
		r.payerW, r.ledger, payerStore, r.payeeW.PublicBytes(),
		capacity, fundFee, closeFee, 100, "")
	if err != nil {
		t.Fatal(err)
	}
	payee, err := channel.AcceptPayee(r.payeeW, r.ledger, payeeStore, funding, payer.State().Params, "")
	if err != nil {
		t.Fatal(err)
	}
	r.mine()
	return payer, payee
}

func TestChannelLifecycle(t *testing.T) {
	r := newRig(t)
	payer, payee := openChannel(t, r, nil, nil)

	// Stream ten off-chain updates through the sign -> apply -> ack loop.
	for i := 1; i <= 10; i++ {
		upd, err := payer.SignUpdate(price)
		if err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		gwSig, err := payee.ApplyUpdate(upd)
		if err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
		if err := payer.NoteAck(upd.Version, gwSig); err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
	}
	if st := payer.State(); st.Paid != 10*price || st.InFlight() != 0 {
		t.Fatalf("payer state: paid %d inflight %d", st.Paid, st.InFlight())
	}

	// A replayed (stale) update must be rejected.
	stale := &channel.Update{ChannelID: payer.State().ID, Version: 3, Paid: 3 * price}
	if _, err := payee.ApplyUpdate(stale); !errors.Is(err, channel.ErrStaleVersion) {
		t.Fatalf("stale update err = %v", err)
	}
	// A forged signature must be rejected.
	forged := &channel.Update{ChannelID: payer.State().ID, Version: 11, Paid: 11 * price, RecipientSig: []byte("junk")}
	if _, err := payee.ApplyUpdate(forged); !errors.Is(err, channel.ErrBadSignature) {
		t.Fatalf("forged update err = %v", err)
	}

	// Close settles all ten payments in one on-chain transaction.
	closeTx, err := payee.Close()
	if err != nil {
		t.Fatal(err)
	}
	r.mine()
	if _, _, ok := r.ledger.FindTx(closeTx.ID()); !ok {
		t.Fatal("close tx not confirmed")
	}
	utxo := r.chain.UTXO()
	if got := utxo.BalanceOf(r.payeeW.PubKeyHash()); got != 10*price {
		t.Fatalf("payee balance = %d, want %d", got, 10*price)
	}
	if got := utxo.BalanceOf(r.payerW.PubKeyHash()); got != payerFunds-fundFee-10*price-closeFee {
		t.Fatalf("payer balance = %d", got)
	}
	// The channel rejects further updates once closed.
	if _, err := payee.ApplyUpdate(&channel.Update{}); !errors.Is(err, channel.ErrClosed) {
		t.Fatalf("post-close update err = %v", err)
	}
}

// TestPayeeRejectsUnderpayingUpdate pins the fair-exchange price floor:
// with SetPriceFloor the payee refuses any update whose paid delta is
// below the delivery price, so a key can never be bought for 1 unit. A
// later update covering the full cumulative amount still goes through.
func TestPayeeRejectsUnderpayingUpdate(t *testing.T) {
	r := newRig(t)
	payer, payee := openChannel(t, r, nil, nil)
	payee.SetPriceFloor(price)

	cheap, err := payer.SignUpdate(price - 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := payee.ApplyUpdate(cheap); !errors.Is(err, channel.ErrBadUpdate) {
		t.Fatalf("underpaying update err = %v, want ErrBadUpdate", err)
	}
	if st := payee.State(); st.Version != 0 || st.Paid != 0 {
		t.Fatalf("rejected update advanced payee state: version %d paid %d", st.Version, st.Paid)
	}

	// The payer catches up with a delta covering the full price.
	full, err := payer.SignUpdate(price + 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := payee.ApplyUpdate(full); err != nil {
		t.Fatalf("full-price update rejected: %v", err)
	}
	if st := payee.State(); st.Paid != 2*price {
		t.Fatalf("payee paid = %d, want %d", st.Paid, 2*price)
	}
}

// TestPayerUnilateralCloseAtAckedBalance pins the ack-timeout close path:
// after an unacknowledged in-flight update the latest commitment has no
// countersignature, but the acked pair survives SignUpdate (and a store
// reload), so the payer can still settle unilaterally at the acked
// balance instead of waiting for the full-capacity refund.
func TestPayerUnilateralCloseAtAckedBalance(t *testing.T) {
	r := newRig(t)
	payerStore, err := channel.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payer, payee := openChannel(t, r, payerStore, nil)
	for i := 0; i < 2; i++ {
		upd, err := payer.SignUpdate(price)
		if err != nil {
			t.Fatal(err)
		}
		gwSig, err := payee.ApplyUpdate(upd)
		if err != nil {
			t.Fatal(err)
		}
		if err := payer.NoteAck(upd.Version, gwSig); err != nil {
			t.Fatal(err)
		}
	}
	// Third update reaches the payee but the ack is lost.
	upd, err := payer.SignUpdate(price)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := payee.ApplyUpdate(upd); err != nil {
		t.Fatal(err)
	}

	// The latest (v3) commitment is not broadcastable by the payer…
	st := payer.State()
	if _, err := channel.SignedCommitment(&st); !errors.Is(err, channel.ErrNoCommitment) {
		t.Fatalf("latest commitment err = %v, want ErrNoCommitment", err)
	}
	// …but the acked v2 pair is, even through a restart.
	states, err := payerStore.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 {
		t.Fatalf("payer states = %d, want 1", len(states))
	}
	payer2, err := channel.LoadPayer(states[0], r.payerW, r.ledger, payerStore)
	if err != nil {
		t.Fatal(err)
	}
	closeTx, err := payer2.UnilateralClose()
	if err != nil {
		t.Fatal(err)
	}
	r.mine()
	if _, _, ok := r.ledger.FindTx(closeTx.ID()); !ok {
		t.Fatal("unilateral close not confirmed")
	}
	if got := closeTx.Outputs[0].Value; got != 2*price {
		t.Fatalf("close pays gateway %d, want the acked %d", got, 2*price)
	}
	if got := r.chain.UTXO().BalanceOf(r.payeeW.PubKeyHash()); got != 2*price {
		t.Fatalf("payee balance = %d, want %d", got, 2*price)
	}
	if got := r.chain.UTXO().BalanceOf(r.payerW.PubKeyHash()); got != payerFunds-fundFee-2*price-closeFee {
		t.Fatalf("payer balance = %d", got)
	}
	if got := payer2.State().Status; got != channel.StatusClosed {
		t.Fatalf("payer status = %s, want closed", got)
	}
}

func TestChannelExhaustion(t *testing.T) {
	r := newRig(t)
	payer, _ := openChannel(t, r, nil, nil)
	if _, err := payer.SignUpdate(capacity); !errors.Is(err, channel.ErrExhausted) {
		t.Fatalf("over-capacity update err = %v", err)
	}
}

func TestChannelRefundAfterTimeout(t *testing.T) {
	r := newRig(t)
	payer, funding, err := channel.OpenPayer(
		r.payerW, r.ledger, nil, r.payeeW.PublicBytes(), capacity, fundFee, closeFee, 3, "")
	if err != nil {
		t.Fatal(err)
	}
	_ = funding
	r.mine()

	// Too early: the ledger is below the refund height.
	if _, err := payer.Refund(closeFee); !errors.Is(err, channel.ErrRefundTooEarly) {
		t.Fatalf("early refund err = %v", err)
	}
	for r.chain.Height() < payer.State().RefundHeight {
		r.mine()
	}
	refund, err := payer.Refund(closeFee)
	if err != nil {
		t.Fatal(err)
	}
	r.mine()
	if _, _, ok := r.ledger.FindTx(refund.ID()); !ok {
		t.Fatal("refund tx not confirmed")
	}
	if got := r.chain.UTXO().BalanceOf(r.payerW.PubKeyHash()); got != payerFunds-fundFee-closeFee {
		t.Fatalf("payer balance after refund = %d", got)
	}
}

// TestChannelStoreRestart persists both endpoints mid-stream with one
// unacknowledged update, reloads them, and verifies the surviving views:
// the payee closes with its latest countersigned commitment and the payer
// knows its in-flight delta.
func TestChannelStoreRestart(t *testing.T) {
	r := newRig(t)
	payerStore, err := channel.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payeeStore, err := channel.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payer, payee := openChannel(t, r, payerStore, payeeStore)

	for i := 1; i <= 3; i++ {
		upd, err := payer.SignUpdate(price)
		if err != nil {
			t.Fatal(err)
		}
		gwSig, err := payee.ApplyUpdate(upd)
		if err != nil {
			t.Fatal(err)
		}
		if err := payer.NoteAck(upd.Version, gwSig); err != nil {
			t.Fatal(err)
		}
	}
	// Fourth update: applied by the payee (persisted) but the ack is lost.
	upd, err := payer.SignUpdate(price)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := payee.ApplyUpdate(upd); err != nil {
		t.Fatal(err)
	}

	// "Restart": reload both endpoints from their stores.
	payerStates, err := payerStore.Load()
	if err != nil {
		t.Fatal(err)
	}
	payeeStates, err := payeeStore.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(payerStates) != 1 || len(payeeStates) != 1 {
		t.Fatalf("state counts: payer %d payee %d", len(payerStates), len(payeeStates))
	}
	payer2, err := channel.LoadPayer(payerStates[0], r.payerW, r.ledger, payerStore)
	if err != nil {
		t.Fatal(err)
	}
	payee2, err := channel.LoadPayee(payeeStates[0], r.payeeW, r.ledger, payeeStore)
	if err != nil {
		t.Fatal(err)
	}
	pst, gst := payer2.State(), payee2.State()
	if pst.Version != 4 || pst.AckedVersion != 3 || pst.InFlight() != price {
		t.Fatalf("payer reload: version %d acked %d inflight %d", pst.Version, pst.AckedVersion, pst.InFlight())
	}
	if gst.Version != 4 || gst.Paid != 4*price {
		t.Fatalf("payee reload: version %d paid %d", gst.Version, gst.Paid)
	}

	// The reloaded payee settles everything it countersigned.
	if _, err := payee2.Close(); err != nil {
		t.Fatal(err)
	}
	r.mine()
	if got := r.chain.UTXO().BalanceOf(r.payeeW.PubKeyHash()); got != 4*price {
		t.Fatalf("payee balance = %d, want %d", got, 4*price)
	}
}
