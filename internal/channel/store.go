package channel

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"bcwan/internal/chain"
)

// Store persists channel states as one JSON file per channel, written
// atomically (temp file + rename) so a crash mid-write never corrupts the
// previous state. Both endpoints persist BEFORE acting on a state change:
// the payee saves the countersigned version before disclosing a key, and
// the payer saves a signed update before sending it, so a restart always
// knows the exact in-flight window.
type Store struct {
	dir string
}

// OpenStore creates (if needed) and opens a channel state directory.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("channel: open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// stateJSON is the serialized form of State: fixed-size byte arrays as
// hex, everything else verbatim.
type stateJSON struct {
	ID                string `json:"id"`
	GatewayPub        []byte `json:"gatewayPub"`
	RecipientPub      []byte `json:"recipientPub"`
	Capacity          uint64 `json:"capacity"`
	CloseFee          uint64 `json:"closeFee"`
	RefundHeight      int64  `json:"refundHeight"`
	Role              uint8  `json:"role"`
	Version           uint64 `json:"version"`
	Paid              uint64 `json:"paid"`
	RecipientSig      []byte `json:"recipientSig,omitempty"`
	GatewaySig        []byte `json:"gatewaySig,omitempty"`
	AckedVersion      uint64 `json:"ackedVersion"`
	AckedPaid         uint64 `json:"ackedPaid"`
	AckedRecipientSig []byte `json:"ackedRecipientSig,omitempty"`
	AckedGatewaySig   []byte `json:"ackedGatewaySig,omitempty"`
	Status            uint8  `json:"status"`
	PeerAddr          string `json:"peerAddr,omitempty"`
}

func toJSON(st *State) *stateJSON {
	return &stateJSON{
		ID:                st.ID.String(),
		GatewayPub:        st.GatewayPub,
		RecipientPub:      st.RecipientPub,
		Capacity:          st.Capacity,
		CloseFee:          st.CloseFee,
		RefundHeight:      st.RefundHeight,
		Role:              uint8(st.Role),
		Version:           st.Version,
		Paid:              st.Paid,
		RecipientSig:      st.RecipientSig,
		GatewaySig:        st.GatewaySig,
		AckedVersion:      st.AckedVersion,
		AckedPaid:         st.AckedPaid,
		AckedRecipientSig: st.AckedRecipientSig,
		AckedGatewaySig:   st.AckedGatewaySig,
		Status:            uint8(st.Status),
		PeerAddr:          st.PeerAddr,
	}
}

func fromJSON(j *stateJSON) (*State, error) {
	id, err := chain.HashFromString(j.ID)
	if err != nil {
		return nil, fmt.Errorf("channel: bad state id: %w", err)
	}
	return &State{
		ID: id,
		Params: Params{
			GatewayPub:   j.GatewayPub,
			RecipientPub: j.RecipientPub,
			Capacity:     j.Capacity,
			CloseFee:     j.CloseFee,
			RefundHeight: j.RefundHeight,
		},
		Role:              Role(j.Role),
		Version:           j.Version,
		Paid:              j.Paid,
		RecipientSig:      j.RecipientSig,
		GatewaySig:        j.GatewaySig,
		AckedVersion:      j.AckedVersion,
		AckedPaid:         j.AckedPaid,
		AckedRecipientSig: j.AckedRecipientSig,
		AckedGatewaySig:   j.AckedGatewaySig,
		Status:            Status(j.Status),
		PeerAddr:          j.PeerAddr,
	}, nil
}

func (s *Store) path(id chain.Hash, role Role) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s-%s.json", hex.EncodeToString(id[:8]), role))
}

// Save atomically and durably writes a channel state. Payer and payee
// states are kept in separate files so one process acting as both sides
// of different channels never collides. The temp file is fsynced before
// the rename and the directory after it: the protocol releases keys and
// signatures on the wire immediately after Save returns, so the persist
// must survive power loss, not just a process crash.
func (s *Store) Save(st *State) error {
	data, err := json.MarshalIndent(toJSON(st), "", "  ")
	if err != nil {
		return fmt.Errorf("channel: marshal state: %w", err)
	}
	path := s.path(st.ID, st.Role)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("channel: write state: %w", err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("channel: write state: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("channel: sync state: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("channel: write state: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("channel: commit state: %w", err)
	}
	dir, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("channel: sync store dir: %w", err)
	}
	defer dir.Close()
	if err := dir.Sync(); err != nil {
		return fmt.Errorf("channel: sync store dir: %w", err)
	}
	return nil
}

// Load reads every channel state in the store.
func (s *Store) Load() ([]*State, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("channel: read store: %w", err)
	}
	var states []*State
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("channel: read state %s: %w", e.Name(), err)
		}
		var j stateJSON
		if err := json.Unmarshal(data, &j); err != nil {
			return nil, fmt.Errorf("channel: parse state %s: %w", e.Name(), err)
		}
		st, err := fromJSON(&j)
		if err != nil {
			return nil, err
		}
		states = append(states, st)
	}
	return states, nil
}
