package daemon

import (
	"context"
	"crypto/rand"
	"encoding/json"
	"net"
	"testing"
	"time"

	"bcwan/internal/bccrypto"
	"bcwan/internal/chain"
	"bcwan/internal/device"
	"bcwan/internal/fairex"
	"bcwan/internal/gateway"
	"bcwan/internal/lora"
	"bcwan/internal/recipient"
	"bcwan/internal/rpc"
	"bcwan/internal/wallet"
)

// cluster is a deployed three-daemon federation over real localhost TCP:
// a mining master, a gateway daemon and a recipient daemon, each with its
// own chain replica synced by gossip.
type cluster struct {
	t      *testing.T
	params chain.Params
	master *Node
	gwd    *GatewayDaemon
	rcptd  *RecipientDaemon
	funds  *wallet.Wallet // treasury controlling the genesis allocation
}

func newCluster(t *testing.T) *cluster {
	t.Helper()
	treasury, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	minerKey, err := bccrypto.GenerateECKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	params := chain.DefaultParams()
	genesis := chain.GenesisBlock(map[[20]byte]uint64{treasury.PubKeyHash(): 10_000_000})
	miners := [][]byte{minerKey.PublicBytes()}

	master, err := NewNode(NodeConfig{
		Genesis:      genesis,
		Params:       params,
		Miners:       miners,
		MinerKey:     minerKey,
		MineInterval: time.Hour, // tests mine explicitly
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { master.Close() })

	gwNode, err := NewNode(NodeConfig{
		Genesis: genesis,
		Params:  params,
		Miners:  miners,
		Peers:   []string{master.P2PAddr()},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gwNode.Close() })

	rcptNode, err := NewNode(NodeConfig{
		Genesis: genesis,
		Params:  params,
		Miners:  miners,
		Peers:   []string{master.P2PAddr(), gwNode.P2PAddr()},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rcptNode.Close() })

	gwd, err := NewGatewayDaemon(gwNode, gateway.DefaultConfig(), rand.Reader, nil)
	if err != nil {
		t.Fatal(err)
	}
	rcptd, err := NewRecipientDaemon(rcptNode, recipient.DefaultConfig(), "127.0.0.1:0", rand.Reader, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rcptd.Close() })

	return &cluster{
		t:      t,
		params: params,
		master: master,
		gwd:    gwd,
		rcptd:  rcptd,
		funds:  treasury,
	}
}

// mine mints a block on the master and waits for every replica to adopt
// it.
func (c *cluster) mine() {
	c.t.Helper()
	b, err := c.master.MineNow()
	if err != nil {
		c.t.Fatal(err)
	}
	c.waitHeight(b.Header.Height)
}

func (c *cluster) waitHeight(h int64) {
	c.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if c.gwd.Node.Chain().Height() >= h && c.rcptd.Node.Chain().Height() >= h {
			return
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("replicas stuck below height %d (gw=%d rcpt=%d)",
				h, c.gwd.Node.Chain().Height(), c.rcptd.Node.Chain().Height())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitPooled blocks until the node's mempool holds the transaction.
func (c *cluster) waitPooled(n *Node, id chain.Hash) {
	c.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, ok := n.Ledger().PendingTx(id); ok {
			return
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("tx %s never reached the mempool", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// fundRecipient pays the recipient wallet from the treasury through the
// master's mempool.
func (c *cluster) fundRecipient(amount uint64) {
	c.t.Helper()
	tx, err := c.funds.BuildPayment(c.master.Ledger().UTXO(), c.rcptd.Recipient.Wallet().PubKeyHash(), amount, 1)
	if err != nil {
		c.t.Fatal(err)
	}
	if err := c.master.Ledger().Submit(tx); err != nil {
		c.t.Fatal(err)
	}
	c.mine()
}

func TestClusterReplicatesBlocks(t *testing.T) {
	c := newCluster(t)
	c.mine()
	c.mine()
	if got := c.rcptd.Node.Chain().Height(); got != 2 {
		t.Fatalf("replica height = %d, want 2", got)
	}
	if c.master.Chain().Tip().ID() != c.gwd.Node.Chain().Tip().ID() {
		t.Fatal("tips diverged")
	}
}

func TestClusterGossipsTransactions(t *testing.T) {
	c := newCluster(t)
	c.fundRecipient(1000)
	if got := c.rcptd.Recipient.Wallet().Balance(c.rcptd.Node.Ledger().UTXO()); got != 1000 {
		t.Fatalf("recipient replica balance = %d, want 1000", got)
	}
}

func TestClusterLateJoinerSyncs(t *testing.T) {
	c := newCluster(t)
	c.mine()
	c.mine()
	c.mine()

	late, err := NewNode(NodeConfig{
		Genesis: c.master.Chain().Genesis(),
		Params:  c.params,
		Miners:  [][]byte{},
		Peers:   []string{c.master.P2PAddr()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()

	deadline := time.Now().Add(10 * time.Second)
	for late.Chain().Height() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("late joiner stuck at height %d", late.Chain().Height())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestFullExchangeOverTCP(t *testing.T) {
	c := newCluster(t)
	c.fundRecipient(100_000)

	// The recipient publishes its binding; once mined, the gateway's
	// replica can resolve @R.
	bindTx, err := c.rcptd.PublishBinding(1)
	if err != nil {
		t.Fatal(err)
	}
	// Gossip is asynchronous: wait for the master to pool the binding
	// before mining it.
	c.waitPooled(c.master, bindTx.ID())
	c.mine()

	// Provision a sensor against the recipient daemon.
	sharedKey := make([]byte, bccrypto.AESKeySize)
	if _, err := rand.Read(sharedKey); err != nil {
		t.Fatal(err)
	}
	nodeKey, err := bccrypto.GenerateRSA512(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	eui := lora.DevEUI{0xaa, 1}
	dev, err := device.New(device.Provisioning{
		DevEUI:        eui,
		SharedKey:     sharedKey,
		SigningKey:    nodeKey,
		RecipientAddr: c.rcptd.Recipient.Wallet().PubKeyHash(),
	}, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	c.rcptd.Recipient.Provision(eui, recipient.DeviceInfo{SharedKey: sharedKey, NodePub: nodeKey.Public()})

	received := make(chan *recipient.Message, 1)
	c.rcptd.OnReceive(func(m *recipient.Message) { received <- m })

	// LoRa leg (simulated hardware): key request then data frame.
	keyResp, err := c.gwd.HandleUplink(dev.KeyRequestFrame())
	if err != nil {
		t.Fatal(err)
	}
	dataFrame, err := dev.DataFrame([]byte("7.3pH"), keyResp.Payload, keyResp.Counter)
	if err != nil {
		t.Fatal(err)
	}
	// Delivery over real TCP, payment over gossip, claim on the
	// gateway's replica.
	if _, err := c.gwd.HandleUplink(dataFrame); err != nil {
		t.Fatal(err)
	}

	// Mine so the claim confirms and the recipient daemon settles.
	deadline := time.Now().Add(15 * time.Second)
	for {
		c.mine()
		select {
		case msg := <-received:
			if string(msg.Plaintext) != "7.3pH" {
				t.Fatalf("plaintext = %q", msg.Plaintext)
			}
			if len(c.rcptd.Inbox()) != 1 {
				t.Fatalf("inbox = %d", len(c.rcptd.Inbox()))
			}
			return
		default:
			if time.Now().After(deadline) {
				t.Fatal("exchange never settled")
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

func TestRPCVisibleAcrossCluster(t *testing.T) {
	c := newCluster(t)
	c.mine()
	client := rpc.NewClient(c.rcptd.Node.RPCAddr())
	h, err := client.GetBlockCount(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h != 1 {
		t.Fatalf("rpc height = %d, want 1", h)
	}
}

func TestNodeCloseIdempotent(t *testing.T) {
	c := newCluster(t)
	if err := c.master.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.master.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDeliveryToDeadRecipientFails(t *testing.T) {
	c := newCluster(t)
	c.fundRecipient(100_000)
	bindTx, err := c.rcptd.PublishBinding(1)
	if err != nil {
		t.Fatal(err)
	}
	c.waitPooled(c.master, bindTx.ID())
	c.mine()

	// Kill the recipient's delivery listener; the binding still points
	// at the dead address.
	deadAddr := c.rcptd.Addr()
	if err := c.rcptd.Close(); err != nil {
		t.Fatal(err)
	}
	_ = deadAddr

	sharedKey := make([]byte, bccrypto.AESKeySize)
	if _, err := rand.Read(sharedKey); err != nil {
		t.Fatal(err)
	}
	nodeKey, err := bccrypto.GenerateRSA512(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	eui := lora.DevEUI{0xbb, 2}
	dev, err := device.New(device.Provisioning{
		DevEUI:        eui,
		SharedKey:     sharedKey,
		SigningKey:    nodeKey,
		RecipientAddr: c.rcptd.Recipient.Wallet().PubKeyHash(),
	}, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	keyResp, err := c.gwd.HandleUplink(dev.KeyRequestFrame())
	if err != nil {
		t.Fatal(err)
	}
	dataFrame, err := dev.DataFrame([]byte("x"), keyResp.Payload, keyResp.Counter)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.gwd.HandleUplink(dataFrame); err == nil {
		t.Fatal("delivery to dead recipient succeeded")
	}
}

func TestRecipientDaemonRejectsGarbageConnection(t *testing.T) {
	c := newCluster(t)
	conn, err := net.Dial("tcp", c.rcptd.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	// The daemon must survive; a valid status query still works.
	if got := len(c.rcptd.Inbox()); got != 0 {
		t.Fatalf("inbox = %d", got)
	}
	c.mine() // exercises settlePending with nothing pending
}

func TestRecipientDaemonRefusesUnknownSensorDelivery(t *testing.T) {
	c := newCluster(t)
	conn, err := net.Dial("tcp", c.rcptd.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	d := fairex.Delivery{DevEUI: lora.DevEUI{0xff}}
	if err := json.NewEncoder(conn).Encode(&d); err != nil {
		t.Fatal(err)
	}
	var ack fairex.Ack
	if err := json.NewDecoder(conn).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.Accepted {
		t.Fatal("unknown sensor accepted")
	}
	if ack.Reason == "" {
		t.Fatal("refusal without a reason")
	}
}
