package daemon

import (
	"crypto/rand"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bcwan/internal/bccrypto"
	"bcwan/internal/chain"
	"bcwan/internal/wallet"
)

// minedChain is storedChain with the miner handed back, so tests can
// keep extending the chain after a snapshot.
func minedChain(t *testing.T, blocks int) (*chain.Chain, *chain.Block, [][]byte, *chain.Miner, *time.Time) {
	t.Helper()
	w, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	minerKey, err := bccrypto.GenerateECKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	genesis := chain.GenesisBlock(map[[20]byte]uint64{w.PubKeyHash(): 1000})
	c, err := chain.New(chain.DefaultParams(), genesis)
	if err != nil {
		t.Fatal(err)
	}
	miners := [][]byte{minerKey.PublicBytes()}
	c.AuthorizeMiner(minerKey.PublicBytes())
	miner := chain.NewMiner(minerKey, c, chain.NewMempool(), rand.Reader)
	now := time.Date(2018, 12, 10, 0, 0, 0, 0, time.UTC)
	for i := 0; i < blocks; i++ {
		now = now.Add(15 * time.Second)
		if _, err := miner.Mine(now); err != nil {
			t.Fatal(err)
		}
	}
	return c, genesis, miners, miner, &now
}

func mineMore(t *testing.T, miner *chain.Miner, now *time.Time, blocks int) {
	t.Helper()
	for i := 0; i < blocks; i++ {
		*now = now.Add(15 * time.Second)
		if _, err := miner.Mine(*now); err != nil {
			t.Fatal(err)
		}
	}
}

// appendBest appends best-branch blocks [from, to] to the store.
func appendBest(t *testing.T, st *Store, c *chain.Chain, from, to int64) {
	t.Helper()
	for h := from; h <= to; h++ {
		b, ok := c.BlockAt(h)
		if !ok {
			t.Fatalf("missing height %d", h)
		}
		if err := st.AppendBlock(b); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStoreAppendReload(t *testing.T) {
	c, genesis, miners := storedChain(t, 5)
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendBest(t, st, c, 1, 5)
	if got := st.LogRecords(); got != 5 {
		t.Fatalf("LogRecords = %d, want 5", got)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	replica := freshReplica(t, genesis, miners)
	loaded, err := st2.Load(replica)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 5 {
		t.Fatalf("loaded = %d, want 5", loaded)
	}
	if replica.Tip().ID() != c.Tip().ID() {
		t.Fatal("restored tip differs")
	}
	if !replica.UTXO().Equal(c.UTXO()) {
		t.Fatal("restored UTXO set differs")
	}
}

func TestStoreCompactThenTailThenCrash(t *testing.T) {
	c, genesis, miners, miner, now := minedChain(t, 5)
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendBest(t, st, c, 1, 5)
	// Snapshot at height 5, resetting the log.
	if err := st.Compact(c); err != nil {
		t.Fatal(err)
	}
	if got := st.LogRecords(); got != 0 {
		t.Fatalf("LogRecords after compact = %d, want 0", got)
	}

	// Grow the chain and append the new blocks as the log tail.
	mineMore(t, miner, now, 3)
	appendBest(t, st, c, 6, 8)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash: tear the final record mid-payload.
	logPath := filepath.Join(dir, "blocks.log")
	info, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(logPath, info.Size()-7); err != nil {
		t.Fatal(err)
	}

	// Recovery: snapshot restores heights 1-5, the intact tail records
	// replay heights 6-7, the torn record for height 8 is dropped.
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	replica := freshReplica(t, genesis, miners)
	loaded, err := st2.Load(replica)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 7 {
		t.Fatalf("loaded = %d, want 7 (5 snapshot + 2 tail)", loaded)
	}
	if replica.Height() != 7 {
		t.Fatalf("replica height = %d, want 7", replica.Height())
	}
	if err := replica.CheckConsistency(); err != nil {
		t.Fatal(err)
	}

	// The truncated tail must not poison future appends: re-append the
	// lost block and reload once more.
	b8, _ := c.BlockAt(8)
	if err := replica.AddBlock(b8); err != nil {
		t.Fatal(err)
	}
	if err := st2.AppendBlock(b8); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	replica2 := freshReplica(t, genesis, miners)
	if loaded, err := st3.Load(replica2); err != nil || loaded != 8 {
		t.Fatalf("reload after repair: loaded = %d, err = %v, want 8", loaded, err)
	}
}

func TestStoreSnapshotCorruptionDetected(t *testing.T) {
	c, genesis, miners := storedChain(t, 4)
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendBest(t, st, c, 1, 4)
	if err := st.Compact(c); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	snapPath := filepath.Join(dir, "snapshot.dat")
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(snapPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	replica := freshReplica(t, genesis, miners)
	if _, err := st2.Load(replica); !errors.Is(err, ErrBadStore) {
		t.Fatalf("err = %v, want ErrBadStore", err)
	}
}

func TestStoreOutOfOrderLogReplays(t *testing.T) {
	c, genesis, miners := storedChain(t, 5)
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent subscription callbacks can append out of chain order;
	// Load's multi-pass replay must still connect everything.
	for _, h := range []int64{3, 1, 5, 2, 4} {
		b, _ := c.BlockAt(h)
		if err := st.AppendBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	replica := freshReplica(t, genesis, miners)
	loaded, err := st2.Load(replica)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 5 || replica.Height() != 5 {
		t.Fatalf("loaded = %d height = %d, want 5/5", loaded, replica.Height())
	}
}
