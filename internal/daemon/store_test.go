package daemon

import (
	"bytes"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bcwan/internal/bccrypto"
	"bcwan/internal/chain"
	"bcwan/internal/wallet"
)

func storedChain(t *testing.T, blocks int) (*chain.Chain, *chain.Block, [][]byte) {
	t.Helper()
	w, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	minerKey, err := bccrypto.GenerateECKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	genesis := chain.GenesisBlock(map[[20]byte]uint64{w.PubKeyHash(): 1000})
	c, err := chain.New(chain.DefaultParams(), genesis)
	if err != nil {
		t.Fatal(err)
	}
	miners := [][]byte{minerKey.PublicBytes()}
	c.AuthorizeMiner(minerKey.PublicBytes())
	miner := chain.NewMiner(minerKey, c, chain.NewMempool(), rand.Reader)
	now := time.Date(2018, 12, 10, 0, 0, 0, 0, time.UTC)
	for i := 0; i < blocks; i++ {
		now = now.Add(15 * time.Second)
		if _, err := miner.Mine(now); err != nil {
			t.Fatal(err)
		}
	}
	return c, genesis, miners
}

func freshReplica(t *testing.T, genesis *chain.Block, miners [][]byte) *chain.Chain {
	t.Helper()
	c, err := chain.New(chain.DefaultParams(), genesis)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range miners {
		c.AuthorizeMiner(m)
	}
	return c
}

// writeLegacyChain writes c's best branch in the retired whole-file
// format, standing in for a chain.dat left behind by an old build.
func writeLegacyChain(t *testing.T, c *chain.Chain, path string) {
	t.Helper()
	var buf bytes.Buffer
	buf.Write(storeMagic)
	for h := int64(1); h <= c.Height(); h++ {
		b, ok := c.BlockAt(h)
		if !ok {
			t.Fatalf("missing height %d", h)
		}
		raw := b.Serialize()
		var lenb [4]byte
		binary.BigEndian.PutUint32(lenb[:], uint32(len(raw)))
		buf.Write(lenb[:])
		buf.Write(raw)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o600); err != nil {
		t.Fatal(err)
	}
}

func openTestStore(t *testing.T, dir string) *Store {
	t.Helper()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestMigrateLegacyRoundTrip(t *testing.T) {
	c, genesis, miners := storedChain(t, 5)
	dir := t.TempDir()
	path := filepath.Join(dir, "chain.dat")
	writeLegacyChain(t, c, path)

	st := openTestStore(t, filepath.Join(dir, "chainstore"))
	replica := freshReplica(t, genesis, miners)
	migrated, err := MigrateLegacy(st, replica, path)
	if err != nil {
		t.Fatal(err)
	}
	if migrated != 5 {
		t.Fatalf("migrated = %d, want 5", migrated)
	}
	if replica.Tip().ID() != c.Tip().ID() {
		t.Fatal("restored tip differs")
	}
	if replica.UTXO().TotalValue() != c.UTXO().TotalValue() {
		t.Fatal("restored UTXO differs")
	}
	// The file moves aside so the next start skips it...
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("legacy file still present: %v", err)
	}
	if _, err := os.Stat(path + ".migrated"); err != nil {
		t.Fatalf("renamed copy missing: %v", err)
	}
	if again, err := MigrateLegacy(st, replica, path); err != nil || again != 0 {
		t.Fatalf("second migration = %d, %v", again, err)
	}
	// ...and the blocks are durable in the new log: a fresh chain
	// restores them from the store alone.
	restored := freshReplica(t, genesis, miners)
	loaded, err := st.Load(restored)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 5 || restored.Tip().ID() != c.Tip().ID() {
		t.Fatalf("store reload = %d blocks, tip match %v", loaded, restored.Tip().ID() == c.Tip().ID())
	}
}

func TestMigrateLegacyMissingFileIsFreshStart(t *testing.T) {
	_, genesis, miners := storedChain(t, 0)
	dir := t.TempDir()
	st := openTestStore(t, filepath.Join(dir, "chainstore"))
	replica := freshReplica(t, genesis, miners)
	migrated, err := MigrateLegacy(st, replica, filepath.Join(dir, "nope.dat"))
	if err != nil || migrated != 0 {
		t.Fatalf("migrated = %d, err = %v", migrated, err)
	}
}

func TestMigrateLegacyRejectsGarbage(t *testing.T) {
	_, genesis, miners := storedChain(t, 0)
	dir := t.TempDir()
	path := filepath.Join(dir, "chain.dat")
	if err := os.WriteFile(path, []byte("not a chain store at all"), 0o600); err != nil {
		t.Fatal(err)
	}
	st := openTestStore(t, filepath.Join(dir, "chainstore"))
	replica := freshReplica(t, genesis, miners)
	if _, err := MigrateLegacy(st, replica, path); !errors.Is(err, ErrBadStore) {
		t.Fatalf("err = %v, want ErrBadStore", err)
	}
}

func TestMigrateLegacyRejectsTamperedBlock(t *testing.T) {
	c, genesis, miners := storedChain(t, 3)
	dir := t.TempDir()
	path := filepath.Join(dir, "chain.dat")
	writeLegacyChain(t, c, path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0xff // corrupt inside the last block
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	st := openTestStore(t, filepath.Join(dir, "chainstore"))
	replica := freshReplica(t, genesis, miners)
	if _, err := MigrateLegacy(st, replica, path); err == nil {
		t.Fatal("tampered store accepted")
	}
}

func TestMigrateLegacyTruncatedFile(t *testing.T) {
	c, genesis, miners := storedChain(t, 5)
	dir := t.TempDir()
	path := filepath.Join(dir, "chain.dat")
	writeLegacyChain(t, c, path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the file mid-record, as a crash between write and rename
	// would: migration must surface ErrBadStore, keeping the blocks
	// that did round-trip intact (and leaving the file for inspection).
	if err := os.WriteFile(path, data[:len(data)-7], 0o600); err != nil {
		t.Fatal(err)
	}
	st := openTestStore(t, filepath.Join(dir, "chainstore"))
	replica := freshReplica(t, genesis, miners)
	migrated, err := MigrateLegacy(st, replica, path)
	if !errors.Is(err, ErrBadStore) {
		t.Fatalf("err = %v, want ErrBadStore", err)
	}
	if migrated != 4 {
		t.Fatalf("migrated = %d complete blocks, want 4", migrated)
	}
	if replica.Height() != 4 {
		t.Fatalf("replica height = %d, want 4", replica.Height())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("truncated file should stay in place: %v", err)
	}
}

func TestMigrateLegacyIdempotentBlocks(t *testing.T) {
	c, _, _ := storedChain(t, 4)
	dir := t.TempDir()
	path := filepath.Join(dir, "chain.dat")
	writeLegacyChain(t, c, path)
	st := openTestStore(t, filepath.Join(dir, "chainstore"))
	// Migrating into the same chain skips duplicates.
	migrated, err := MigrateLegacy(st, c, path)
	if err != nil {
		t.Fatal(err)
	}
	if migrated != 0 {
		t.Fatalf("re-migration added %d blocks", migrated)
	}
}

// TestStorePrunedSnapshotRoundTrip compacts a pruned chain (v2 snapshot
// generation: header spine + UTXO set at the horizon + full tail) and
// restores it into a fresh replica.
func TestStorePrunedSnapshotRoundTrip(t *testing.T) {
	c, genesis, miners := storedChain(t, 10)
	if err := c.PruneBelow(6); err != nil {
		t.Fatal(err)
	}
	st := openTestStore(t, filepath.Join(t.TempDir(), "chainstore"))
	if err := st.Compact(c); err != nil {
		t.Fatal(err)
	}

	restored := freshReplica(t, genesis, miners)
	if _, err := st.Load(restored); err != nil {
		t.Fatal(err)
	}
	if restored.Height() != 10 || restored.PruneBase() != 6 {
		t.Fatalf("restored height %d base %d, want 10/6", restored.Height(), restored.PruneBase())
	}
	if restored.Tip().ID() != c.Tip().ID() {
		t.Fatal("restored tip differs")
	}
	if restored.UTXO().TotalValue() != c.UTXO().TotalValue() {
		t.Fatal("restored UTXO set differs")
	}
	if b, ok := restored.BlockAt(3); !ok || len(b.Txs) != 0 {
		t.Fatal("height 3 should restore as a header-only stub")
	}
	if b, ok := restored.BlockAt(8); !ok || len(b.Txs) == 0 {
		t.Fatal("height 8 should keep its body")
	}
}

func TestDefaultChainPath(t *testing.T) {
	if got := DefaultChainPath("/data"); got != "/data/chain.dat" {
		t.Fatal(got)
	}
}
