package daemon

import (
	"crypto/rand"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bcwan/internal/bccrypto"
	"bcwan/internal/chain"
	"bcwan/internal/wallet"
)

func storedChain(t *testing.T, blocks int) (*chain.Chain, *chain.Block, [][]byte) {
	t.Helper()
	w, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	minerKey, err := bccrypto.GenerateECKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	genesis := chain.GenesisBlock(map[[20]byte]uint64{w.PubKeyHash(): 1000})
	c, err := chain.New(chain.DefaultParams(), genesis)
	if err != nil {
		t.Fatal(err)
	}
	miners := [][]byte{minerKey.PublicBytes()}
	c.AuthorizeMiner(minerKey.PublicBytes())
	miner := chain.NewMiner(minerKey, c, chain.NewMempool(), rand.Reader)
	now := time.Date(2018, 12, 10, 0, 0, 0, 0, time.UTC)
	for i := 0; i < blocks; i++ {
		now = now.Add(15 * time.Second)
		if _, err := miner.Mine(now); err != nil {
			t.Fatal(err)
		}
	}
	return c, genesis, miners
}

func freshReplica(t *testing.T, genesis *chain.Block, miners [][]byte) *chain.Chain {
	t.Helper()
	c, err := chain.New(chain.DefaultParams(), genesis)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range miners {
		c.AuthorizeMiner(m)
	}
	return c
}

func TestSaveLoadChainRoundTrip(t *testing.T) {
	c, genesis, miners := storedChain(t, 5)
	path := filepath.Join(t.TempDir(), "chain.dat")
	if err := SaveChain(c, path); err != nil {
		t.Fatal(err)
	}

	replica := freshReplica(t, genesis, miners)
	loaded, err := LoadChain(replica, path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 5 {
		t.Fatalf("loaded = %d, want 5", loaded)
	}
	if replica.Tip().ID() != c.Tip().ID() {
		t.Fatal("restored tip differs")
	}
	if replica.UTXO().TotalValue() != c.UTXO().TotalValue() {
		t.Fatal("restored UTXO differs")
	}
}

func TestLoadChainMissingFileIsFreshStart(t *testing.T) {
	_, genesis, miners := storedChain(t, 0)
	replica := freshReplica(t, genesis, miners)
	loaded, err := LoadChain(replica, filepath.Join(t.TempDir(), "nope.dat"))
	if err != nil || loaded != 0 {
		t.Fatalf("loaded = %d, err = %v", loaded, err)
	}
}

func TestLoadChainRejectsGarbage(t *testing.T) {
	_, genesis, miners := storedChain(t, 0)
	replica := freshReplica(t, genesis, miners)
	path := filepath.Join(t.TempDir(), "chain.dat")
	if err := os.WriteFile(path, []byte("not a chain store at all"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadChain(replica, path); !errors.Is(err, ErrBadStore) {
		t.Fatalf("err = %v, want ErrBadStore", err)
	}
}

func TestLoadChainRejectsTamperedBlock(t *testing.T) {
	c, genesis, miners := storedChain(t, 3)
	path := filepath.Join(t.TempDir(), "chain.dat")
	if err := SaveChain(c, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0xff // corrupt inside the last block
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	replica := freshReplica(t, genesis, miners)
	if _, err := LoadChain(replica, path); err == nil {
		t.Fatal("tampered store accepted")
	}
}

func TestLoadChainTruncatedFile(t *testing.T) {
	c, genesis, miners := storedChain(t, 5)
	path := filepath.Join(t.TempDir(), "chain.dat")
	if err := SaveChain(c, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the file mid-record, as a crash between write and rename
	// would: the loader must surface ErrBadStore, keeping the blocks
	// that did round-trip intact.
	if err := os.WriteFile(path, data[:len(data)-7], 0o600); err != nil {
		t.Fatal(err)
	}
	replica := freshReplica(t, genesis, miners)
	loaded, err := LoadChain(replica, path)
	if !errors.Is(err, ErrBadStore) {
		t.Fatalf("err = %v, want ErrBadStore", err)
	}
	if loaded != 4 {
		t.Fatalf("loaded = %d complete blocks, want 4", loaded)
	}
	if replica.Height() != 4 {
		t.Fatalf("replica height = %d, want 4", replica.Height())
	}
}

func TestLoadChainIdempotent(t *testing.T) {
	c, _, _ := storedChain(t, 4)
	path := filepath.Join(t.TempDir(), "chain.dat")
	if err := SaveChain(c, path); err != nil {
		t.Fatal(err)
	}
	// Loading into the same chain skips duplicates.
	loaded, err := LoadChain(c, path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 0 {
		t.Fatalf("re-load added %d blocks", loaded)
	}
}

func TestDefaultChainPath(t *testing.T) {
	if got := DefaultChainPath("/data"); got != "/data/chain.dat" {
		t.Fatal(got)
	}
}
