package daemon

import (
	"crypto/rand"
	"fmt"
	"testing"
	"time"

	"bcwan/internal/bccrypto"
	"bcwan/internal/chain"
	"bcwan/internal/p2p"
	"bcwan/internal/wallet"
)

// relayFixture is a genesis shared by a set of relay test daemons, with
// one single-output wallet per expected payment.
type relayFixture struct {
	params  chain.Params
	genesis *chain.Block
	miners  [][]byte
	miner   *bccrypto.ECKey
	wallets []*wallet.Wallet
}

func newRelayFixture(t *testing.T, nWallets int) *relayFixture {
	t.Helper()
	minerKey, err := bccrypto.GenerateECKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	wallets := make([]*wallet.Wallet, nWallets)
	alloc := make(map[[20]byte]uint64, nWallets)
	for i := range wallets {
		w, err := wallet.New(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		wallets[i] = w
		alloc[w.PubKeyHash()] = 1 << 32
	}
	return &relayFixture{
		params:  chain.DefaultParams(),
		genesis: chain.GenesisBlock(alloc),
		miners:  [][]byte{minerKey.PublicBytes()},
		miner:   minerKey,
		wallets: wallets,
	}
}

func (f *relayFixture) node(t *testing.T, tr p2p.Transport, mine bool, peers ...string) *Node {
	t.Helper()
	cfg := NodeConfig{
		Genesis:             f.genesis,
		Params:              f.params,
		Miners:              f.miners,
		Peers:               peers,
		Transport:           tr,
		MineInterval:        time.Hour,
		RelayRequestTimeout: 100 * time.Millisecond,
	}
	if mine {
		cfg.MinerKey = f.miner
	}
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

// payment builds wallet i's self-payment against the node's current
// UTXO set.
func (f *relayFixture) payment(t *testing.T, n *Node, i int) *chain.Tx {
	t.Helper()
	tx, err := f.wallets[i].BuildPayment(n.Chain().UTXO(), f.wallets[i].PubKeyHash(), 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func daemonCounter(n *Node, name string) uint64 {
	return n.Telemetry().Counter("bcwan_daemon_"+name, "").Value()
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCompactBlockReconstruction covers the sketch ladder's first two
// rungs: a block whose transactions are partly missing from the
// receiver's mempool reconstructs via one getblocktxn round trip, and a
// fully warm block reconstructs without any round trip.
func TestCompactBlockReconstruction(t *testing.T) {
	const warm, cold = 5, 3
	f := newRelayFixture(t, warm+cold)
	tr := p2p.NewMemTransport()
	a := f.node(t, tr, true)
	b := f.node(t, tr, false, a.P2PAddr())
	// a registers b only on b's first inbound message (its startup
	// sync); announce nothing until the mesh is bidirectional.
	waitCond(t, "a to learn b", func() bool { return len(a.gossip.Peers()) == 1 })

	// warm payments travel the normal submit path, so both pools hold
	// them; cold payments enter only a's pool, bypassing gossip.
	for i := 0; i < warm; i++ {
		if err := a.Ledger().Submit(f.payment(t, a, i)); err != nil {
			t.Fatal(err)
		}
	}
	waitCond(t, "b to pool the gossiped txs", func() bool {
		return b.Ledger().Pool.Len() == warm
	})
	for i := warm; i < warm+cold; i++ {
		tx := f.payment(t, a, i)
		if err := a.Ledger().Pool.Accept(tx, a.Chain().UTXO(), a.Chain().Height(), f.params); err != nil {
			t.Fatal(err)
		}
	}

	blk, err := a.MineNow()
	if err != nil {
		t.Fatal(err)
	}
	if len(blk.Txs) != 1+warm+cold {
		t.Fatalf("block carries %d txs, want %d", len(blk.Txs), 1+warm+cold)
	}
	waitCond(t, "b to adopt block 1", func() bool { return b.Chain().Height() == 1 })

	if got := daemonCounter(b, "cmpct_received_total"); got == 0 {
		t.Fatal("b never received a compact sketch")
	}
	if got := daemonCounter(b, "cmpct_txn_requests_total"); got != 1 {
		t.Fatalf("b issued %d getblocktxn round trips, want 1", got)
	}
	if got := daemonCounter(b, "cmpct_reconstructed_total"); got != 1 {
		t.Fatalf("b reconstructed %d blocks, want 1", got)
	}
	if got := daemonCounter(b, "cmpct_hits_total"); got != 0 {
		t.Fatalf("b counted %d mempool-only hits for a cold block", got)
	}
	if got := daemonCounter(b, "cmpct_full_fallbacks_total"); got != 0 {
		t.Fatalf("b fell back to a full block %d times", got)
	}
	if got := daemonCounter(a, "cmpct_txn_served_total"); got != 1 {
		t.Fatalf("a served %d blocktxn responses, want 1", got)
	}

	// Second block: every payment gossiped first, so b's pool is fully
	// warm and reconstruction needs no round trip.
	for i := 0; i < warm; i++ {
		if err := a.Ledger().Submit(f.payment(t, a, i)); err != nil {
			t.Fatal(err)
		}
	}
	waitCond(t, "b to pool the second round", func() bool {
		return b.Ledger().Pool.Len() == warm
	})
	if _, err := a.MineNow(); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "b to adopt block 2", func() bool { return b.Chain().Height() == 2 })
	if got := daemonCounter(b, "cmpct_hits_total"); got != 1 {
		t.Fatalf("warm block hits = %d, want 1", got)
	}
	if got := daemonCounter(b, "cmpct_txn_requests_total"); got != 1 {
		t.Fatalf("warm block issued extra round trips: %d", got)
	}
}

// TestCompactBlockFullFallback starves the getblocktxn rung: the sketch
// sender never answers, so the receiver's timeout must climb to the
// full-block getdata and still adopt the block.
func TestCompactBlockFullFallback(t *testing.T) {
	const nTxs = 3
	f := newRelayFixture(t, nTxs)
	tr := p2p.NewMemTransport()
	b := f.node(t, tr, false)

	// Build a valid block on a scratch chain b has never heard txs from.
	scratch, err := chain.New(f.params, f.genesis)
	if err != nil {
		t.Fatal(err)
	}
	scratch.AuthorizeMiner(f.miner.PublicBytes())
	pool := chain.NewMempool()
	for i := 0; i < nTxs; i++ {
		tx, err := f.wallets[i].BuildPayment(scratch.UTXO(), f.wallets[i].PubKeyHash(), 1000, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := pool.Accept(tx, scratch.UTXO(), scratch.Height(), f.params); err != nil {
			t.Fatal(err)
		}
	}
	blk, err := chain.NewMiner(f.miner, scratch, pool, rand.Reader).Mine(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	raw := blk.Serialize()

	// An adversarial peer that pushes the sketch, stonewalls the
	// getblocktxn rung, but answers the full-block getdata.
	faker, err := p2p.NewNode(tr, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer faker.Close()
	faker.HandleDirect("getblocktxn", func(string, p2p.Message) {})
	faker.HandleDirect("getdata", func(from string, msg p2p.Message) {
		faker.SendTo(from, "block", raw)
	})
	if err := faker.Connect(b.P2PAddr()); err != nil {
		t.Fatal(err)
	}
	if !faker.SendTo(b.P2PAddr(), "cmpctblock", chain.NewCompactBlock(blk).Serialize()) {
		t.Fatal("sketch not queued")
	}

	waitCond(t, "b to adopt the block via full fallback", func() bool {
		return b.Chain().Height() == 1
	})
	if got := daemonCounter(b, "cmpct_txn_requests_total"); got != 1 {
		t.Fatalf("b issued %d getblocktxn requests, want 1", got)
	}
	if got := daemonCounter(b, "cmpct_full_fallbacks_total"); got != 1 {
		t.Fatalf("b recorded %d full fallbacks, want 1", got)
	}
	if got := daemonCounter(b, "cmpct_reconstructed_total"); got != 0 {
		t.Fatalf("b counted %d reconstructions for a full-body fetch", got)
	}
}

// TestRelayMeshConvergesCheaperThanFlood runs the same two-block
// workload over a 4-daemon mesh in flood mode and in relay mode, and
// requires relay-mode convergence with strictly fewer wire bytes.
func TestRelayMeshConvergesCheaperThanFlood(t *testing.T) {
	const nNodes, nTxs = 4, 6
	run := func(flood bool) uint64 {
		f := newRelayFixture(t, nTxs)
		tr := p2p.NewMemTransport()
		nodes := make([]*Node, nNodes)
		for i := range nodes {
			cfg := NodeConfig{
				Genesis:      f.genesis,
				Params:       f.params,
				Miners:       f.miners,
				Transport:    tr,
				MineInterval: time.Hour,
				FloodRelay:   flood,
			}
			if i == 0 {
				cfg.MinerKey = f.miner
			} else {
				cfg.Peers = []string{nodes[i-1].P2PAddr()}
			}
			n, err := NewNode(cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { n.Close() })
			nodes[i] = n
		}
		// Ring closure for redundant paths. The extra sync is the first
		// message over the new link, teaching nodes[0] the dialer's
		// address; every node then learns both ring neighbours before the
		// workload starts (inbound peers register on first message).
		if err := nodes[nNodes-1].Connect(nodes[0].P2PAddr()); err != nil {
			t.Fatal(err)
		}
		nodes[nNodes-1].RequestSync()
		waitCond(t, "ring to become bidirectional", func() bool {
			for _, n := range nodes {
				if len(n.gossip.Peers()) != 2 {
					return false
				}
			}
			return true
		})

		for blkRound := 0; blkRound < 2; blkRound++ {
			for i := 0; i < nTxs; i++ {
				if err := nodes[0].Ledger().Submit(f.payment(t, nodes[0], i)); err != nil {
					t.Fatal(err)
				}
			}
			waitCond(t, "all pools warm", func() bool {
				for _, n := range nodes {
					if n.Ledger().Pool.Len() != nTxs {
						return false
					}
				}
				return true
			})
			want := int64(blkRound + 1)
			if _, err := nodes[0].MineNow(); err != nil {
				t.Fatal(err)
			}
			waitCond(t, fmt.Sprintf("height %d everywhere", want), func() bool {
				for _, n := range nodes {
					if n.Chain().Height() != want {
						return false
					}
				}
				return true
			})
		}
		time.Sleep(100 * time.Millisecond) // drain in-flight duplicates
		var bytes uint64
		for _, n := range nodes {
			bytes += n.Telemetry().Counter("bcwan_p2p_bytes_out_total", "").Value()
		}
		return bytes
	}

	floodBytes := run(true)
	relayBytes := run(false)
	if relayBytes >= floodBytes {
		t.Fatalf("relay mesh moved %d bytes, flood moved %d", relayBytes, floodBytes)
	}
	t.Logf("flood %d bytes, relay %d bytes (%.1fx reduction)",
		floodBytes, relayBytes, float64(floodBytes)/float64(relayBytes))
}
