package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"bcwan/internal/chain"
	"bcwan/internal/fairex"
	"bcwan/internal/gateway"
	"bcwan/internal/lora"
	"bcwan/internal/recipient"
	"bcwan/internal/registry"
	"bcwan/internal/reputation"
	"bcwan/internal/wallet"
)

// The Fig. 3 step 7 wire protocol: a gateway dials the recipient's
// published address, sends one JSON-encoded fairex.Delivery, and reads one
// fairex.Ack carrying the payment transaction id.

// deliveryTimeout bounds one delivery round trip.
const deliveryTimeout = 30 * time.Second

// GatewayDaemon is a deployable foreign gateway: a blockchain node plus
// the gateway actor and the TCP delivery client.
type GatewayDaemon struct {
	Node    *Node
	Gateway *gateway.Gateway
	logger  *log.Logger
	// channels is the payee-side channel manager (nil = on-chain only).
	channels *ChannelManager
}

// EnableChannels attaches a payee-side channel manager: the gateway
// advertises channel settlement in every delivery and answers verified
// commitment updates with the exchange's ephemeral key. A no-op
// returning nil when the node was configured with NoChannels.
func (g *GatewayDaemon) EnableChannels(cfg ChannelConfig) (*ChannelManager, error) {
	if g.Node.cfg.NoChannels {
		return nil, nil
	}
	if cfg.Price == 0 {
		// Every update must pay at least the delivery price, or a payer
		// could drain key disclosures for 1 unit apiece.
		cfg.Price = g.Gateway.Price()
	}
	mgr, err := newChannelManager(g.Node, g.Gateway.Wallet(), cfg, g.Gateway.DiscloseKey)
	if err != nil {
		return nil, err
	}
	g.channels = mgr
	g.Node.setChannelOps(mgr)
	return mgr, nil
}

// NewGatewayDaemon wires a gateway actor onto a node.
func NewGatewayDaemon(node *Node, cfg gateway.Config, random io.Reader, logger *log.Logger) (*GatewayDaemon, error) {
	w, err := wallet.New(randomOrDefault(random))
	if err != nil {
		return nil, fmt.Errorf("daemon: gateway wallet: %w", err)
	}
	gw := gateway.New(cfg, w, node.Ledger(), node.Directory(), randomOrDefault(random))
	gw.Instrument(node.Telemetry())
	return &GatewayDaemon{
		Node:    node,
		Gateway: gw,
		logger:  logger,
	}, nil
}

// HandleUplink processes one LoRa frame from a sensor: key requests are
// answered locally (the returned frame is the downlink); data frames are
// delivered to the recipient over TCP and the payment is claimed. It
// returns the downlink frame for key requests, nil otherwise.
func (g *GatewayDaemon) HandleUplink(f *lora.Frame) (*lora.Frame, error) {
	switch f.Type {
	case lora.FrameKeyRequest:
		return g.Gateway.HandleKeyRequest(f)
	case lora.FrameData:
		return nil, g.deliverAndClaim(f)
	default:
		return nil, fmt.Errorf("daemon: unexpected frame type %d", f.Type)
	}
}

func (g *GatewayDaemon) deliverAndClaim(f *lora.Frame) error {
	offerHeight := g.Node.Chain().Height()
	delivery, netAddr, err := g.Gateway.HandleData(f)
	if err != nil {
		return err
	}
	if g.channels != nil {
		// Advertise off-chain settlement: the recipient may pay through a
		// channel update instead of a payment transaction.
		delivery.GatewayPubKey = g.Gateway.Wallet().PublicBytes()
		delivery.GatewayP2P = g.Node.P2PAddr()
	}
	ack, err := sendDelivery(netAddr, delivery)
	if err != nil {
		return fmt.Errorf("daemon: deliver to %s: %w", netAddr, err)
	}
	g.Node.metrics.deliveriesSent.Inc()
	if !ack.Accepted {
		return fmt.Errorf("daemon: recipient refused delivery: %s", ack.Reason)
	}
	if ack.ChannelID != "" {
		// Settled off-chain: the channel manager already disclosed the
		// key against the countersigned update — nothing to claim.
		return nil
	}
	paymentID, err := chain.HashFromString(ack.PaymentTxID)
	if err != nil {
		return fmt.Errorf("daemon: ack payment id: %w", err)
	}
	// The payment was submitted on the recipient's node; wait for the
	// gossip to surface it here, then claim.
	deadline := time.Now().Add(deliveryTimeout)
	for {
		_, err := g.Gateway.VerifyAndClaim(delivery.DevEUI, delivery.Exchange, paymentID, offerHeight)
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon: claim: %w", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// sendDelivery performs the TCP round trip of Fig. 3 step 7.
func sendDelivery(addr string, d *fairex.Delivery) (*fairex.Ack, error) {
	conn, err := net.DialTimeout("tcp", addr, deliveryTimeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(deliveryTimeout)); err != nil {
		return nil, err
	}
	if err := json.NewEncoder(conn).Encode(d); err != nil {
		return nil, fmt.Errorf("send delivery: %w", err)
	}
	var ack fairex.Ack
	if err := json.NewDecoder(conn).Decode(&ack); err != nil {
		return nil, fmt.Errorf("read ack: %w", err)
	}
	return &ack, nil
}

// RecipientDaemon is a deployable recipient: a blockchain node plus the
// recipient actor, a TCP listener for gateway deliveries, and a chain
// watcher that settles exchanges as claims confirm.
type RecipientDaemon struct {
	Node      *Node
	Recipient *recipient.Recipient
	listener  net.Listener
	logger    *log.Logger
	// channels is the payer-side channel manager (nil = on-chain only).
	channels *ChannelManager

	mu       sync.Mutex
	inbox    []*recipient.Message
	onRecv   func(*recipient.Message)
	closed   bool
	loopDone chan struct{}
}

// NewRecipientDaemon wires a recipient actor onto a node, funds nothing
// (the caller funds its wallet), starts the delivery listener on
// listenAddr, and publishes the @R → IP binding once the wallet has
// funds (call PublishBinding).
func NewRecipientDaemon(node *Node, cfg recipient.Config, listenAddr string, random io.Reader, logger *log.Logger) (*RecipientDaemon, error) {
	w, err := wallet.New(randomOrDefault(random))
	if err != nil {
		return nil, fmt.Errorf("daemon: recipient wallet: %w", err)
	}
	l, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("daemon: recipient listen: %w", err)
	}
	r := &RecipientDaemon{
		Node:      node,
		Recipient: recipient.New(cfg, w, node.Ledger(), randomOrDefault(random)),
		listener:  l,
		logger:    logger,
		loopDone:  make(chan struct{}),
	}
	// Settle pending exchanges as blocks (with claims) arrive.
	node.Chain().Subscribe(func(*chain.Block) { r.settlePending() })
	go r.acceptLoop()
	return r, nil
}

// Addr returns the delivery listener address.
func (r *RecipientDaemon) Addr() string { return r.listener.Addr().String() }

// EnableChannels attaches a payer-side channel manager: deliveries that
// advertise a channel endpoint settle off-chain, falling back to the
// on-chain payment path on any channel failure. A no-op returning nil
// when the node was configured with NoChannels.
func (r *RecipientDaemon) EnableChannels(cfg ChannelConfig) (*ChannelManager, error) {
	if r.Node.cfg.NoChannels {
		return nil, nil
	}
	mgr, err := newChannelManager(r.Node, r.Recipient.Wallet(), cfg, nil)
	if err != nil {
		return nil, err
	}
	r.channels = mgr
	r.Node.setChannelOps(mgr)
	return mgr, nil
}

// UseReputation threads a shared reputation system into the delivery
// path: deliveries from untrusted gateways are refused before payment,
// replays are detected and reported, and a channel counterparty that
// takes a commitment update without disclosing a valid key is reported
// as a real loss (no refund script protects a channel delta).
func (r *RecipientDaemon) UseReputation(sys *reputation.System) {
	r.Recipient.UseReputation(sys)
}

// settleViaChannel pays for one delivery through a channel update and
// decrypts the message with the disclosed key.
func (r *RecipientDaemon) settleViaChannel(d *fairex.Delivery) (*recipient.Message, *ChannelSettlement, error) {
	if err := r.Recipient.AcceptDeliveryOffChain(d); err != nil {
		return nil, nil, err
	}
	settle, err := r.channels.SettleDelivery(d)
	if err != nil {
		r.Recipient.DropOffChain(d.DevEUI, d.Exchange)
		if errors.Is(err, fairex.ErrBadDisclosedKey) {
			// The gateway countersigned the update (it holds the new
			// commitment) but the disclosed key is junk: the delta is
			// gone. Unlike the on-chain script there is no refund path,
			// so this is the one bounded loss the invariant permits.
			r.Recipient.ReportNonDisclosure(d.GatewayPubKeyHash, d.Price)
		}
		return nil, nil, err
	}
	msg, err := r.Recipient.SettleOffChain(d.DevEUI, d.Exchange, settle.Key)
	if err != nil {
		return nil, nil, err
	}
	return msg, settle, nil
}

// OnReceive installs a callback for decrypted messages.
func (r *RecipientDaemon) OnReceive(fn func(*recipient.Message)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onRecv = fn
}

// Inbox returns the decrypted messages so far.
func (r *RecipientDaemon) Inbox() []*recipient.Message {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*recipient.Message(nil), r.inbox...)
}

// PublishBinding broadcasts the @R → IP binding transaction (§4.3) and
// returns it so callers can track its confirmation. The wallet must hold
// funds for the fee.
func (r *RecipientDaemon) PublishBinding(fee uint64) (*chain.Tx, error) {
	tx, err := registry.BuildPublish(r.Recipient.Wallet(), r.Node.Ledger().UTXO(), r.Addr(), fee)
	if err != nil {
		return nil, err
	}
	if err := r.Node.Ledger().Submit(tx); err != nil {
		return nil, err
	}
	return tx, nil
}

// Close stops the delivery listener.
func (r *RecipientDaemon) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	err := r.listener.Close()
	<-r.loopDone
	return err
}

func (r *RecipientDaemon) acceptLoop() {
	defer close(r.loopDone)
	for {
		conn, err := r.listener.Accept()
		if err != nil {
			return
		}
		go r.handleConn(conn)
	}
}

func (r *RecipientDaemon) handleConn(conn net.Conn) {
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(deliveryTimeout)); err != nil {
		return
	}
	var d fairex.Delivery
	if err := json.NewDecoder(conn).Decode(&d); err != nil {
		r.logf("delivery decode: %v", err)
		return
	}
	r.Node.metrics.deliveriesReceived.Inc()
	ack := fairex.Ack{}
	if r.channels != nil && len(d.GatewayPubKey) > 0 && d.GatewayP2P != "" {
		msg, settle, err := r.settleViaChannel(&d)
		if err == nil {
			ack.Accepted = true
			ack.ChannelID = settle.ChannelID.String()
			ack.ChannelVersion = settle.Version
			if err := json.NewEncoder(conn).Encode(&ack); err != nil {
				r.logf("ack encode: %v", err)
			}
			r.mu.Lock()
			r.inbox = append(r.inbox, msg)
			fn := r.onRecv
			r.mu.Unlock()
			if fn != nil {
				fn(msg)
			}
			return
		}
		r.logf("channel settle failed, falling back on-chain: %v", err)
	}
	payment, err := r.Recipient.HandleDelivery(&d)
	if err != nil {
		ack.Reason = err.Error()
	} else {
		ack.Accepted = true
		ack.PaymentTxID = payment.ID().String()
	}
	if err := json.NewEncoder(conn).Encode(&ack); err != nil {
		r.logf("ack encode: %v", err)
	}
}

// settlePending tries to settle every pending exchange from confirmed
// claims.
func (r *RecipientDaemon) settlePending() {
	for _, paymentID := range r.Recipient.PendingPayments() {
		msg, err := r.Recipient.SettleClaim(paymentID)
		if err != nil {
			continue // claim not on chain yet
		}
		r.mu.Lock()
		r.inbox = append(r.inbox, msg)
		fn := r.onRecv
		r.mu.Unlock()
		if fn != nil {
			fn(msg)
		}
	}
}

func (r *RecipientDaemon) logf(format string, args ...any) {
	if r.logger != nil {
		r.logger.Printf("recipient %s: %s", r.Addr(), fmt.Sprintf(format, args...))
	}
}
