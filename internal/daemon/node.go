// Package daemon assembles deployable BcWAN processes: a blockchain node
// that replicates the chain over the P2P overlay and serves JSON-RPC
// (§5.1's "BcWAN daemon" wrapping the blockchain module), plus the
// gateway- and recipient-side daemons that speak the Fig. 3 TCP delivery
// protocol between each other.
package daemon

import (
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"path/filepath"
	"sync"
	"time"

	"bcwan/internal/bccrypto"
	"bcwan/internal/chain"
	"bcwan/internal/fairex"
	"bcwan/internal/p2p"
	"bcwan/internal/registry"
	"bcwan/internal/rpc"
	"bcwan/internal/telemetry"
)

// NodeConfig configures a blockchain node daemon.
type NodeConfig struct {
	// Genesis is the shared genesis block (all daemons must agree).
	Genesis *chain.Block
	// Params are the shared chain parameters.
	Params chain.Params
	// Miners is the set of authorized miner public keys.
	Miners [][]byte
	// ListenP2P is the gossip listen address ("" = any localhost port).
	ListenP2P string
	// ListenRPC is the JSON-RPC listen address ("" = any).
	ListenRPC string
	// Peers are gossip addresses to dial at startup.
	Peers []string
	// MinerKey, when set, makes this node mine every MineInterval.
	MinerKey *bccrypto.ECKey
	// MineInterval defaults to Params.BlockInterval.
	MineInterval time.Duration
	// Transport defaults to TCP; tests may inject a MemTransport.
	Transport p2p.Transport
	// Random defaults to crypto/rand.
	Random io.Reader
	// Logger receives operational messages (nil = silent).
	Logger *log.Logger
	// Telemetry collects node-wide metrics; nil gets a fresh registry so
	// every node serves GET /metrics and getmetrics out of the box.
	Telemetry *telemetry.Registry
	// StoreCompactEvery is how many appended log records trigger a
	// snapshot + log compaction in a store opened via OpenStore
	// (0 = default of 64).
	StoreCompactEvery int
	// StoreGroupCommitDelay is the collection window the store's group
	// commit holds open to coalesce concurrent appends into one fsync
	// (0 = no added latency; only already-queued appends coalesce).
	StoreGroupCommitDelay time.Duration
	// StoreGroupCommitMaxBytes caps one group-commit batch's payload
	// (0 = the store default).
	StoreGroupCommitMaxBytes int
	// FloodRelay reverts to the legacy full-payload gossip flood instead
	// of the inventory/compact-block relay. Kept for the relaybench
	// baseline and as an escape hatch.
	FloodRelay bool
	// RelayRequestTimeout is how long the relay waits for an announced
	// object (and a blocktxn response) before falling back to the next
	// source (0 = the p2p default of 500ms).
	RelayRequestTimeout time.Duration
	// LegacySyncOnly disables the headers-first sync state machine and
	// keeps the height-blast anti-entropy as the only catch-up path.
	// Kept for the sync benchmark baseline and as an escape hatch.
	// FloodRelay implies it (the machine's tail fetch needs the relay).
	LegacySyncOnly bool
	// SnapshotSyncDisabled keeps headers-first sync but never bootstraps
	// from a peer-served snapshot (a fresh node always fetches bodies).
	SnapshotSyncDisabled bool
	// SnapshotInterval is the height spacing of miner snapshot
	// commitments (0 = default of 1024). Miners publish a signed
	// commitment whenever they mine a multiple of it.
	SnapshotInterval int64
	// SnapshotChunkSize is the snapshot transfer chunk size in bytes
	// (0 = default of 64 KiB).
	SnapshotChunkSize int
	// SnapshotMinGap is the minimum height deficit before a fresh node
	// prefers a snapshot bootstrap over fetching every body
	// (0 = default of 64).
	SnapshotMinGap int64
	// PruneDepth, when positive, drops block bodies more than this many
	// heights below the tip at every store compaction, keeping the node
	// a pruned gateway. Reorgs deeper than PruneDepth become impossible
	// for this node.
	PruneDepth int64
	// SyncRetryInterval is the sync state machine's retry tick
	// (0 = default of 500ms).
	SyncRetryInterval time.Duration
	// TamperSnapshot, when set, rewrites served snapshot chunk payloads
	// — a chaos-test hook that simulates a lying snapshot peer.
	TamperSnapshot func(height int64, chunk int32, payload []byte) []byte
	// NoChannels disables the payment-channel subsystem: EnableChannels
	// becomes a no-op and every delivery settles on-chain. Kept as the
	// escape hatch and for the channelbench baseline.
	NoChannels bool
	// MaxPeers bounds the gossip node's registered peer set (0 =
	// unlimited). Connections beyond the bound are refused; combined
	// with misbehavior bans this is the eclipse-recovery lever.
	MaxPeers int
	// BanThreshold overrides the misbehavior score at which a peer is
	// banned (0 = the p2p default).
	BanThreshold int
}

// misbehaviorPenalty is charged per malformed frame; an honest peer's
// occasional garbage stays far from the p2p ban threshold, a spammer
// crosses it within ~10 frames.
const misbehaviorPenalty = 10

// Node is one running blockchain daemon.
type Node struct {
	cfg    NodeConfig
	chain  *chain.Chain
	pool   *chain.Mempool
	ledger *fairex.Node
	dir    *registry.Directory
	gossip *p2p.Node
	relay  *p2p.Relay // nil when cfg.FloodRelay
	rpcSrv *rpc.Server
	miner  *chain.Miner
	store  *Store       // nil until Open; set before the append subscription
	sync   *syncManager // nil when LegacySyncOnly or FloodRelay
	reg    *telemetry.Registry
	// metrics is set once in NewNode, before any goroutine starts.
	metrics *daemonMetrics

	mu        sync.Mutex
	orphans   map[chain.Hash]*chain.Block // blocks waiting for their parent
	orphanTxs map[chain.Hash]*chain.Tx    // txs whose inputs are not visible yet
	// channelOps is the channel subsystem's RPC surface, installed late
	// by EnableChannels (the RPC server starts in NewNode).
	channelOps rpc.ChannelOps
	// pendingCmpct tracks compact blocks awaiting a blocktxn response.
	pendingCmpct map[chain.Hash]*pendingCompact

	stopMine chan struct{}
	mineDone chan struct{}
	closed   bool
}

// NewNode starts a blockchain daemon.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Transport == nil {
		cfg.Transport = p2p.TCPTransport{}
	}
	if cfg.MineInterval <= 0 {
		cfg.MineInterval = cfg.Params.BlockInterval
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	if cfg.Random != nil {
		// crypto/rand is safe as-is; injected deterministic streams are
		// not, and several node goroutines draw from the same source.
		cfg.Random = &lockedReader{r: cfg.Random}
	}
	c, err := chain.New(cfg.Params, cfg.Genesis)
	if err != nil {
		return nil, fmt.Errorf("daemon: %w", err)
	}
	for _, pub := range cfg.Miners {
		c.AuthorizeMiner(pub)
	}
	n := &Node{
		cfg:          cfg,
		chain:        c,
		pool:         chain.NewMempool(),
		orphans:      make(map[chain.Hash]*chain.Block),
		orphanTxs:    make(map[chain.Hash]*chain.Tx),
		pendingCmpct: make(map[chain.Hash]*pendingCompact),
		reg:          cfg.Telemetry,
		metrics:      newDaemonMetrics(cfg.Telemetry),
	}
	// Share the chain's verifier (worker pool + signature cache) so
	// gossip- and RPC-admitted transactions are not re-verified when
	// their block connects.
	n.pool.UseVerifier(c.Verifier())
	c.Instrument(n.reg)
	n.pool.Instrument(n.reg)
	n.dir = registry.NewDirectory()
	n.dir.Attach(c)

	gossip, err := p2p.NewNodeWithTelemetry(cfg.Transport, cfg.ListenP2P, cfg.Logger, n.reg)
	if err != nil {
		return nil, err
	}
	n.gossip = gossip
	if cfg.MaxPeers > 0 {
		gossip.SetMaxPeers(cfg.MaxPeers)
	}
	if cfg.BanThreshold > 0 {
		gossip.SetBanThreshold(cfg.BanThreshold)
	}
	n.ledger = &fairex.Node{
		Chain: c,
		Pool:  n.pool,
		OnSubmit: func(tx *chain.Tx) {
			n.broadcastTx(tx, false)
		},
	}
	if cfg.FloodRelay {
		gossip.Handle("tx", n.onTx)
		gossip.Handle("block", n.onBlock)
	} else {
		n.relay = p2p.NewRelay(gossip, p2p.RelayConfig{
			Have:           n.relayHave,
			Fetch:          n.relayFetch,
			RequestTimeout: cfg.RelayRequestTimeout,
		})
		n.relay.Handle("tx", n.onRelayTx)
		n.relay.Handle("block", n.onRelayBlock)
		gossip.HandleDirect("cmpctblock", n.onCompactBlock)
		gossip.HandleDirect("getblocktxn", n.onGetBlockTxn)
		gossip.HandleDirect("blocktxn", n.onBlockTxn)
	}
	gossip.Handle("sync", n.onSync)
	// Headers are served to anyone; the sync state machine needs the
	// relay (its tail fetch is a getdata batch), so FloodRelay falls
	// back to legacy sync.
	gossip.HandleDirect(p2p.MsgTypeGetHeaders, n.onGetHeaders)
	if !cfg.LegacySyncOnly && !cfg.FloodRelay {
		n.sync = newSyncManager(n)
		gossip.HandleDirect(p2p.MsgTypeHeaders, func(from string, msg p2p.Message) { n.sync.onHeaders(from, msg) })
		gossip.HandleDirect(p2p.MsgTypeGetSnapshot, n.onGetSnapshot)
		gossip.HandleDirect(p2p.MsgTypeSnapshotChunk, func(from string, msg p2p.Message) { n.sync.onSnapshotChunk(from, msg) })
		gossip.Handle(p2p.MsgTypeSnapCommit, n.onSnapCommit)
	}

	rpcSrv, err := rpc.NewServer(cfg.ListenRPC, rpc.Backend{
		Chain:   c,
		Mempool: n.pool,
		OnTxAccepted: func(tx *chain.Tx) {
			n.broadcastTx(tx, false)
		},
		Telemetry: n.reg,
		SyncInfo:  func() any { return n.SyncInfo() },
		Channels:  func() rpc.ChannelOps { return n.getChannelOps() },
	})
	if err != nil {
		gossip.Close()
		return nil, err
	}
	n.rpcSrv = rpcSrv

	for _, peer := range cfg.Peers {
		if err := gossip.Connect(peer); err != nil {
			n.logf("connect %s: %v", peer, err)
		}
	}
	n.RequestSync()
	if n.sync != nil {
		n.sync.start()
	}

	if cfg.MinerKey != nil {
		n.miner = chain.NewMiner(cfg.MinerKey, c, n.pool, randomOrDefault(cfg.Random))
		n.miner.Instrument(n.reg)
		n.stopMine = make(chan struct{})
		n.mineDone = make(chan struct{})
		go n.mineLoop()
	}
	return n, nil
}

// Telemetry returns the node's metrics registry.
func (n *Node) Telemetry() *telemetry.Registry { return n.reg }

// setChannelOps installs the channel subsystem behind the openchannel /
// getchannelinfo / closechannel RPC methods.
func (n *Node) setChannelOps(ops rpc.ChannelOps) {
	n.mu.Lock()
	n.channelOps = ops
	n.mu.Unlock()
}

func (n *Node) getChannelOps() rpc.ChannelOps {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.channelOps
}

// Open attaches persistence rooted at dataDir: the incremental store
// in dataDir/chainstore is loaded into the chain (snapshot plus log
// tail), a retired whole-file chain.dat found in dataDir is migrated
// into the store, and every future best-branch connect is appended
// (fsync'd) to the log, with a snapshot + log compaction every
// cfg.StoreCompactEvery appends. When cfg.PruneDepth is set, each
// compaction first prunes block bodies more than PruneDepth heights
// below the tip, so the store's next snapshot is the pruned form.
//
// Call once, after NewNode and before the node sees traffic. Returns
// the number of blocks restored from disk (including migrated ones).
func (n *Node) Open(dataDir string) (int, error) {
	st, err := OpenStore(filepath.Join(dataDir, "chainstore"))
	if err != nil {
		return 0, err
	}
	if n.cfg.StoreGroupCommitDelay > 0 || n.cfg.StoreGroupCommitMaxBytes > 0 {
		st.SetGroupCommit(n.cfg.StoreGroupCommitDelay, n.cfg.StoreGroupCommitMaxBytes)
	}
	start := time.Now()
	loaded, err := st.Load(n.chain)
	if err != nil {
		st.Close()
		return loaded, err
	}
	migrated, err := MigrateLegacy(st, n.chain, DefaultChainPath(dataDir))
	if err != nil {
		st.Close()
		return loaded + migrated, err
	}
	loaded += migrated
	n.metrics.storeLoadSeconds.ObserveSince(start)
	n.store = st
	every := n.cfg.StoreCompactEvery
	if every <= 0 {
		every = 64
	}
	n.chain.Subscribe(func(b *chain.Block) {
		appendStart := time.Now()
		if err := st.AppendBlock(b); err != nil {
			n.logf("store append %s: %v", b.ID(), err)
			return
		}
		n.metrics.storeAppendSeconds.ObserveSince(appendStart)
		if st.LogRecords() >= every {
			if depth := n.cfg.PruneDepth; depth > 0 {
				if target := n.chain.Height() - depth; target > n.chain.PruneBase() {
					if err := n.chain.PruneBelow(target); err != nil {
						n.logf("prune below %d: %v", target, err)
					}
				}
			}
			if err := st.Compact(n.chain); err != nil {
				n.logf("store compact: %v", err)
				return
			}
			n.metrics.storeCompactions.Inc()
		}
	})
	if sm := n.sync; sm != nil {
		// A restarting miner re-offers a commitment at its latest
		// snapshot boundary so joiners can bootstrap without waiting for
		// the next boundary to be mined.
		if n.cfg.MinerKey != nil {
			if h := (n.chain.Height() / n.snapshotInterval()) * n.snapshotInterval(); h > 0 && h >= n.chain.PruneBase() {
				n.publishSnapshotCommitment(h)
			}
		}
		sm.release()
	}
	return loaded, nil
}

// Store returns the attached incremental store (nil before OpenStore).
func (n *Node) Store() *Store { return n.store }

// Ledger exposes the node's chain+mempool view.
func (n *Node) Ledger() *fairex.Node { return n.ledger }

// Chain exposes the chain replica.
func (n *Node) Chain() *chain.Chain { return n.chain }

// Directory exposes the scanned IP directory.
func (n *Node) Directory() *registry.Directory { return n.dir }

// P2PAddr returns the gossip listen address.
func (n *Node) P2PAddr() string { return n.gossip.Addr() }

// Gossip exposes the p2p node (peer set, misbehavior scores, bans).
func (n *Node) Gossip() *p2p.Node { return n.gossip }

// misbehave charges a peer for a malformed frame. Only decode failures
// are charged — validation failures (a block we disagree with, a tx
// conflicting with our view) are legitimate fork ambiguity, not abuse.
func (n *Node) misbehave(from, reason string) {
	if from == "" {
		return
	}
	n.gossip.Misbehave(from, misbehaviorPenalty, reason)
}

// RPCAddr returns the JSON-RPC listen address.
func (n *Node) RPCAddr() string { return n.rpcSrv.Addr() }

// Connect dials an extra gossip peer.
func (n *Node) Connect(addr string) error { return n.gossip.Connect(addr) }

// RequestSync asks the mesh to re-broadcast blocks above our height
// (anti-entropy after partitions, restarts or message loss). The nonce
// keeps distinct requests from colliding in the gossip dedup cache.
// Orphan blocks whose ancestors are still missing — a fork where both
// sides mined, so the gap sits below our own height — trigger extra
// backfill requests from below the orphan.
func (n *Node) RequestSync() {
	if sm := n.sync; sm != nil && sm.active() {
		// The state machine owns catch-up until it goes live; a legacy
		// height blast during bootstrap would pull full bodies the
		// snapshot is about to make redundant.
		sm.kick()
		return
	}
	n.legacySyncBroadcast()
}

// legacySyncBroadcast is the height-blast anti-entropy request itself;
// the sync machine fires it once when it goes live to hand over.
func (n *Node) legacySyncBroadcast() {
	nonce := syncNonce(randomOrDefault(n.cfg.Random))
	n.gossip.Broadcast("sync", []byte(fmt.Sprintf("%d|%d", n.chain.Height(), nonce)))
	for _, from := range n.orphanGaps() {
		n.gossip.Broadcast("sync", []byte(fmt.Sprintf("%d|%d", from, nonce)))
	}
}

// orphanGaps returns, for each parked block whose parent is still
// unknown, the height to re-request blocks above so the gap refills.
func (n *Node) orphanGaps() []int64 {
	n.mu.Lock()
	parked := make([]*chain.Block, 0, len(n.orphans))
	for _, b := range n.orphans {
		parked = append(parked, b)
	}
	n.mu.Unlock()
	var gaps []int64
	for _, b := range parked {
		if _, ok := n.chain.BlockByID(b.Header.PrevBlock); !ok {
			gaps = append(gaps, b.Header.Height-2)
		}
	}
	return gaps
}

// RebroadcastPending re-gossips every pooled transaction. In flood mode
// gossip duplicate suppression drops copies peers already saw; in relay
// mode the whole pool goes out as one forced inv frame per peer —
// forced because a peer that lost the original inv to a fault would
// otherwise be skipped forever by its known-inventory entry, batched
// because per-tx announcements cost O(txs × peers) messages per call.
func (n *Node) RebroadcastPending() {
	txs := n.pool.Select(n.chain.Params().MaxBlockTxs)
	if len(txs) == 0 {
		return
	}
	if n.relay == nil {
		for _, tx := range txs {
			n.broadcastTx(tx, true)
		}
		return
	}
	ids := make([]p2p.ObjectID, len(txs))
	bodies := make([][]byte, len(txs))
	for i, tx := range txs {
		ids[i] = p2p.ObjectID(tx.ID())
		bodies[i] = tx.Serialize()
	}
	n.relay.AnnounceBatch("tx", ids, bodies, true)
}

// MineNow mints one block immediately (used by tests and by single-node
// setups instead of the timer loop).
func (n *Node) MineNow() (*chain.Block, error) {
	if n.miner == nil {
		return nil, fmt.Errorf("daemon: node is not a miner")
	}
	b, err := n.miner.Mine(time.Now())
	if err != nil {
		return nil, err
	}
	n.broadcastBlock(b)
	n.maybePublishCommitment(b)
	return b, nil
}

// Close stops mining, gossip and RPC.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	if n.stopMine != nil {
		close(n.stopMine)
		<-n.mineDone
	}
	if n.sync != nil {
		n.sync.close()
	}
	if n.relay != nil {
		n.relay.Close()
	}
	n.mu.Lock()
	for id, pc := range n.pendingCmpct {
		pc.timer.Stop()
		delete(n.pendingCmpct, id)
	}
	n.mu.Unlock()
	n.rpcSrv.Close()
	err := n.gossip.Close()
	if n.store != nil {
		if serr := n.store.Close(); err == nil {
			err = serr
		}
	}
	return err
}

func (n *Node) mineLoop() {
	defer close(n.mineDone)
	ticker := time.NewTicker(n.cfg.MineInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if _, err := n.MineNow(); err != nil {
				n.logf("mine: %v", err)
			}
		case <-n.stopMine:
			return
		}
	}
}

// maxOrphanTxs bounds the out-of-order transaction buffer.
const maxOrphanTxs = 10_000

func (n *Node) onTx(from string, msg p2p.Message) {
	tx, err := chain.DeserializeTx(msg.Payload)
	if err != nil {
		n.logf("gossiped tx undecodable: %v", err)
		n.misbehave(from, "undecodable tx")
		return
	}
	n.admitTx(tx)
}

// admitTx pools a gossiped transaction. A dependent transaction can
// arrive before the one funding it (the gateway's claim chains onto the
// unconfirmed payment), and gossip dedup means it will never be
// re-delivered — so transactions with missing inputs are parked and
// retried as the view grows instead of being dropped.
func (n *Node) admitTx(tx *chain.Tx) {
	err := n.acceptPooled(tx)
	switch {
	case err == nil:
		n.retryOrphanTxs()
	case containsErr(err, chain.ErrMissingUTXO):
		n.mu.Lock()
		if _, dup := n.orphanTxs[tx.ID()]; !dup && len(n.orphanTxs) < maxOrphanTxs {
			n.orphanTxs[tx.ID()] = tx
			n.metrics.orphanTxsParked.Inc()
		}
		n.mu.Unlock()
	default:
		// Gossiped duplicates and conflicts are normal; only log oddities.
		n.logf("gossiped tx %s rejected: %v", tx.ID(), err)
	}
}

// acceptPooled validates tx against the chain's live UTXO set under its
// read lock. The old path cloned the full set (and pre-extended it with
// pooled transactions Accept layers on anyway); the overlay admission
// makes both redundant.
func (n *Node) acceptPooled(tx *chain.Tx) error {
	var err error
	n.chain.ReadState(func(tip *chain.Block, utxo chain.UTXOReader) {
		err = n.pool.Accept(tx, utxo, tip.Header.Height, n.chain.Params())
	})
	return err
}

// retryOrphanTxs re-attempts parked transactions until a full pass
// admits nothing new (an admitted tx can unblock another).
func (n *Node) retryOrphanTxs() {
	for {
		n.mu.Lock()
		pending := make([]*chain.Tx, 0, len(n.orphanTxs))
		for _, tx := range n.orphanTxs {
			pending = append(pending, tx)
		}
		n.mu.Unlock()
		progressed := false
		for _, tx := range pending {
			err := n.acceptPooled(tx)
			if err == nil {
				progressed = true
			}
			if err == nil || !containsErr(err, chain.ErrMissingUTXO) {
				// Admitted, already known, conflicting or invalid:
				// either way it no longer needs parking.
				n.mu.Lock()
				delete(n.orphanTxs, tx.ID())
				n.mu.Unlock()
			}
		}
		if !progressed {
			return
		}
	}
}

func (n *Node) onBlock(from string, msg p2p.Message) {
	b, err := chain.DeserializeBlock(msg.Payload)
	if err != nil {
		n.logf("gossiped block undecodable: %v", err)
		n.misbehave(from, "undecodable block")
		return
	}
	n.acceptBlock(b)
}

// acceptBlock adds a block, parking it as an orphan if its parent has not
// arrived yet, and retrying orphans after every acceptance.
func (n *Node) acceptBlock(b *chain.Block) {
	switch err := n.chain.AddBlock(b); {
	case err == nil:
		n.pool.RemoveConfirmed(b)
		n.drainOrphans()
		// Confirmed outputs may fund transactions parked out of order.
		n.retryOrphanTxs()
		if sm := n.sync; sm != nil {
			sm.noteBlockConnected()
		}
	case isOrphanErr(err):
		n.mu.Lock()
		if len(n.orphans) < 10_000 {
			n.orphans[b.Header.PrevBlock] = b
		}
		n.mu.Unlock()
		// While the sync machine is bootstrapping, live blocks park here
		// until the snapshot + tail catch up and drain them; a backfill
		// blast now would cascade full-body downloads to genesis and
		// defeat the snapshot.
		if sm := n.sync; sm != nil && sm.active() {
			return
		}
		// Ask the mesh for the missing ancestors right away; after a
		// fork where both sides mined they sit below our own height, so
		// the regular catch-up request never covers them. The nonce is
		// derived from the orphan so the request passes gossip dedup
		// once per distinct gap (RequestSync retries with fresh nonces
		// if this one is lost).
		id := b.ID()
		nonce := int64(binary.BigEndian.Uint64(id[:8]) >> 1)
		n.gossip.Broadcast("sync", []byte(fmt.Sprintf("%d|%d", b.Header.Height-2, nonce)))
	default:
		n.logf("block %s rejected: %v", b.ID(), err)
	}
}

// drainOrphans attaches every parked block whose parent is now in the
// index — on the best branch or a side branch (AddBlock reorganizes if
// the side branch takes the lead) — repeating until a pass makes no
// progress.
func (n *Node) drainOrphans() {
	for {
		n.mu.Lock()
		pending := make([]*chain.Block, 0, len(n.orphans))
		for _, b := range n.orphans {
			pending = append(pending, b)
		}
		n.mu.Unlock()
		progress := false
		for _, b := range pending {
			if _, ok := n.chain.BlockByID(b.Header.PrevBlock); !ok {
				continue
			}
			n.mu.Lock()
			delete(n.orphans, b.Header.PrevBlock)
			n.mu.Unlock()
			switch err := n.chain.AddBlock(b); {
			case err == nil:
				n.pool.RemoveConfirmed(b)
				progress = true
			case containsErr(err, chain.ErrDuplicateBlock):
			default:
				n.logf("orphan %s rejected: %v", b.ID(), err)
			}
		}
		if !progress {
			return
		}
	}
}

func isOrphanErr(err error) bool {
	return err != nil && containsErr(err, chain.ErrBadPrevBlock)
}

// maxSyncBlocks caps one sync response. Answering with the whole gap
// melts down when the requester is far behind a live miner: every
// repeated request costs O(gap) ids, pending-fetch timers, and block
// bodies — enough to overflow the bounded per-peer send queue — while
// the gap keeps growing, so recovery work is quadratic in the deficit.
// A capped response hands over a bounded chunk; the requester's next
// sync continues from its new tip.
const maxSyncBlocks = 64

// onSync answers a peer's catch-up request. In relay mode the gap
// chunk is advertised as one batched inv to the peer the request
// arrived from (the requester, or a forwarder that then answers the
// requester itself when the flooded request reaches it); re-announcing
// every block to every peer amplified each request by O(gap × peers)
// and starved the send queues. Flood mode re-broadcasts full bodies
// and lets duplicate suppression clean up.
func (n *Node) onSync(from string, msg p2p.Message) {
	var reqHeight, nonce int64
	if _, err := fmt.Sscanf(string(msg.Payload), "%d|%d", &reqHeight, &nonce); err != nil {
		n.misbehave(from, "malformed sync request")
		return
	}
	if n.relay == nil {
		for h := reqHeight + 1; h <= n.chain.Height() && h <= reqHeight+maxSyncBlocks; h++ {
			// Pruned stubs have no body to serve (nor does any valid
			// serialization for one exist) — the requester must
			// bootstrap from a snapshot instead.
			if b, ok := n.chain.BlockAt(h); ok && len(b.Txs) > 0 {
				n.gossip.Broadcast("block", b.Serialize())
			}
		}
		return
	}
	var (
		ids    []p2p.ObjectID
		bodies [][]byte
	)
	for h := reqHeight + 1; h <= n.chain.Height() && len(ids) < maxSyncBlocks; h++ {
		if b, ok := n.chain.BlockAt(h); ok && len(b.Txs) > 0 {
			ids = append(ids, p2p.ObjectID(b.ID()))
			bodies = append(bodies, b.Serialize())
		}
	}
	if len(ids) == 0 {
		return
	}
	n.relay.AnnounceTo(from, "block", ids, bodies)
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logger != nil {
		n.cfg.Logger.Printf("daemon %s: %s", n.gossip.Addr(), fmt.Sprintf(format, args...))
	}
}
