// Package daemon assembles deployable BcWAN processes: a blockchain node
// that replicates the chain over the P2P overlay and serves JSON-RPC
// (§5.1's "BcWAN daemon" wrapping the blockchain module), plus the
// gateway- and recipient-side daemons that speak the Fig. 3 TCP delivery
// protocol between each other.
package daemon

import (
	"fmt"
	"io"
	"log"
	"sync"
	"time"

	"bcwan/internal/bccrypto"
	"bcwan/internal/chain"
	"bcwan/internal/fairex"
	"bcwan/internal/p2p"
	"bcwan/internal/registry"
	"bcwan/internal/rpc"
	"bcwan/internal/telemetry"
)

// NodeConfig configures a blockchain node daemon.
type NodeConfig struct {
	// Genesis is the shared genesis block (all daemons must agree).
	Genesis *chain.Block
	// Params are the shared chain parameters.
	Params chain.Params
	// Miners is the set of authorized miner public keys.
	Miners [][]byte
	// ListenP2P is the gossip listen address ("" = any localhost port).
	ListenP2P string
	// ListenRPC is the JSON-RPC listen address ("" = any).
	ListenRPC string
	// Peers are gossip addresses to dial at startup.
	Peers []string
	// MinerKey, when set, makes this node mine every MineInterval.
	MinerKey *bccrypto.ECKey
	// MineInterval defaults to Params.BlockInterval.
	MineInterval time.Duration
	// Transport defaults to TCP; tests may inject a MemTransport.
	Transport p2p.Transport
	// Random defaults to crypto/rand.
	Random io.Reader
	// Logger receives operational messages (nil = silent).
	Logger *log.Logger
	// Telemetry collects node-wide metrics; nil gets a fresh registry so
	// every node serves GET /metrics and getmetrics out of the box.
	Telemetry *telemetry.Registry
}

// Node is one running blockchain daemon.
type Node struct {
	cfg    NodeConfig
	chain  *chain.Chain
	pool   *chain.Mempool
	ledger *fairex.Node
	dir    *registry.Directory
	gossip *p2p.Node
	rpcSrv *rpc.Server
	miner  *chain.Miner
	reg    *telemetry.Registry
	// metrics is set once in NewNode, before any goroutine starts.
	metrics *daemonMetrics

	mu      sync.Mutex
	orphans map[chain.Hash]*chain.Block // blocks waiting for their parent

	stopMine chan struct{}
	mineDone chan struct{}
	closed   bool
}

// NewNode starts a blockchain daemon.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Transport == nil {
		cfg.Transport = p2p.TCPTransport{}
	}
	if cfg.MineInterval <= 0 {
		cfg.MineInterval = cfg.Params.BlockInterval
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	c, err := chain.New(cfg.Params, cfg.Genesis)
	if err != nil {
		return nil, fmt.Errorf("daemon: %w", err)
	}
	for _, pub := range cfg.Miners {
		c.AuthorizeMiner(pub)
	}
	n := &Node{
		cfg:     cfg,
		chain:   c,
		pool:    chain.NewMempool(),
		orphans: make(map[chain.Hash]*chain.Block),
		reg:     cfg.Telemetry,
		metrics: newDaemonMetrics(cfg.Telemetry),
	}
	// Share the chain's verifier (worker pool + signature cache) so
	// gossip- and RPC-admitted transactions are not re-verified when
	// their block connects.
	n.pool.UseVerifier(c.Verifier())
	c.Instrument(n.reg)
	n.pool.Instrument(n.reg)
	n.dir = registry.NewDirectory()
	n.dir.Attach(c)

	gossip, err := p2p.NewNodeWithTelemetry(cfg.Transport, cfg.ListenP2P, cfg.Logger, n.reg)
	if err != nil {
		return nil, err
	}
	n.gossip = gossip
	n.ledger = &fairex.Node{
		Chain: c,
		Pool:  n.pool,
		OnSubmit: func(tx *chain.Tx) {
			gossip.Broadcast("tx", tx.Serialize())
		},
	}
	gossip.Handle("tx", n.onTx)
	gossip.Handle("block", n.onBlock)
	gossip.Handle("sync", n.onSync)

	rpcSrv, err := rpc.NewServer(cfg.ListenRPC, rpc.Backend{
		Chain:   c,
		Mempool: n.pool,
		OnTxAccepted: func(tx *chain.Tx) {
			gossip.Broadcast("tx", tx.Serialize())
		},
		Telemetry: n.reg,
	})
	if err != nil {
		gossip.Close()
		return nil, err
	}
	n.rpcSrv = rpcSrv

	for _, peer := range cfg.Peers {
		if err := gossip.Connect(peer); err != nil {
			n.logf("connect %s: %v", peer, err)
		}
	}
	// Ask the mesh for blocks we are missing. The nonce keeps distinct
	// nodes' requests from colliding in the gossip dedup cache.
	gossip.Broadcast("sync", []byte(fmt.Sprintf("%d|%d", c.Height(), syncNonce(randomOrDefault(cfg.Random)))))

	if cfg.MinerKey != nil {
		n.miner = chain.NewMiner(cfg.MinerKey, c, n.pool, randomOrDefault(cfg.Random))
		n.miner.Instrument(n.reg)
		n.stopMine = make(chan struct{})
		n.mineDone = make(chan struct{})
		go n.mineLoop()
	}
	return n, nil
}

// Telemetry returns the node's metrics registry.
func (n *Node) Telemetry() *telemetry.Registry { return n.reg }

// SaveChain persists the best branch to path, recording the store
// latency in the node's telemetry.
func (n *Node) SaveChain(path string) error {
	start := time.Now()
	err := SaveChain(n.chain, path)
	if err == nil {
		n.metrics.storeSaveSeconds.ObserveSince(start)
	}
	return err
}

// LoadChain replays a stored branch into the node's chain, recording
// the load latency in the node's telemetry.
func (n *Node) LoadChain(path string) (int, error) {
	start := time.Now()
	loaded, err := LoadChain(n.chain, path)
	if err == nil {
		n.metrics.storeLoadSeconds.ObserveSince(start)
	}
	return loaded, err
}

// Ledger exposes the node's chain+mempool view.
func (n *Node) Ledger() *fairex.Node { return n.ledger }

// Chain exposes the chain replica.
func (n *Node) Chain() *chain.Chain { return n.chain }

// Directory exposes the scanned IP directory.
func (n *Node) Directory() *registry.Directory { return n.dir }

// P2PAddr returns the gossip listen address.
func (n *Node) P2PAddr() string { return n.gossip.Addr() }

// RPCAddr returns the JSON-RPC listen address.
func (n *Node) RPCAddr() string { return n.rpcSrv.Addr() }

// Connect dials an extra gossip peer.
func (n *Node) Connect(addr string) error { return n.gossip.Connect(addr) }

// MineNow mints one block immediately (used by tests and by single-node
// setups instead of the timer loop).
func (n *Node) MineNow() (*chain.Block, error) {
	if n.miner == nil {
		return nil, fmt.Errorf("daemon: node is not a miner")
	}
	b, err := n.miner.Mine(time.Now())
	if err != nil {
		return nil, err
	}
	n.gossip.Broadcast("block", b.Serialize())
	return b, nil
}

// Close stops mining, gossip and RPC.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	if n.stopMine != nil {
		close(n.stopMine)
		<-n.mineDone
	}
	n.rpcSrv.Close()
	return n.gossip.Close()
}

func (n *Node) mineLoop() {
	defer close(n.mineDone)
	ticker := time.NewTicker(n.cfg.MineInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if _, err := n.MineNow(); err != nil {
				n.logf("mine: %v", err)
			}
		case <-n.stopMine:
			return
		}
	}
}

func (n *Node) onTx(_ string, msg p2p.Message) {
	tx, err := chain.DeserializeTx(msg.Payload)
	if err != nil {
		n.logf("gossiped tx undecodable: %v", err)
		return
	}
	// Gossiped duplicates and conflicts are normal; only log oddities.
	if err := n.pool.Accept(tx, n.ledger.UTXO(), n.chain.Height(), n.chain.Params()); err != nil {
		n.logf("gossiped tx %s rejected: %v", tx.ID(), err)
	}
}

func (n *Node) onBlock(_ string, msg p2p.Message) {
	b, err := chain.DeserializeBlock(msg.Payload)
	if err != nil {
		n.logf("gossiped block undecodable: %v", err)
		return
	}
	n.acceptBlock(b)
}

// acceptBlock adds a block, parking it as an orphan if its parent has not
// arrived yet, and retrying orphans after every acceptance.
func (n *Node) acceptBlock(b *chain.Block) {
	switch err := n.chain.AddBlock(b); {
	case err == nil:
		n.pool.RemoveConfirmed(b)
		n.drainOrphans()
	case isOrphanErr(err):
		n.mu.Lock()
		if len(n.orphans) < 10_000 {
			n.orphans[b.Header.PrevBlock] = b
		}
		n.mu.Unlock()
	default:
		n.logf("block %s rejected: %v", b.ID(), err)
	}
}

func (n *Node) drainOrphans() {
	for {
		tip := n.chain.Tip().ID()
		n.mu.Lock()
		next, ok := n.orphans[tip]
		if ok {
			delete(n.orphans, tip)
		}
		n.mu.Unlock()
		if !ok {
			return
		}
		if err := n.chain.AddBlock(next); err != nil {
			n.logf("orphan %s rejected: %v", next.ID(), err)
			return
		}
		n.pool.RemoveConfirmed(next)
	}
}

func isOrphanErr(err error) bool {
	return err != nil && containsErr(err, chain.ErrBadPrevBlock)
}

// onSync answers a peer's catch-up request by re-broadcasting every block
// above the requested height (duplicate suppression keeps this cheap at
// PoC scale).
func (n *Node) onSync(_ string, msg p2p.Message) {
	var from, nonce int64
	if _, err := fmt.Sscanf(string(msg.Payload), "%d|%d", &from, &nonce); err != nil {
		return
	}
	for h := from + 1; h <= n.chain.Height(); h++ {
		if b, ok := n.chain.BlockAt(h); ok {
			n.gossip.Broadcast("block", b.Serialize())
		}
	}
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logger != nil {
		n.cfg.Logger.Printf("daemon %s: %s", n.gossip.Addr(), fmt.Sprintf(format, args...))
	}
}
