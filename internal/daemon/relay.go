package daemon

import (
	"time"

	"bcwan/internal/chain"
	"bcwan/internal/p2p"
)

// This file is the daemon side of the inventory/compact-block relay
// (DESIGN.md §12). Transactions and catch-up blocks travel as inv
// announcements resolved by getdata; a freshly mined block travels as a
// BIP152-style sketch, reconstructed from the receiver's mempool with a
// getblocktxn/blocktxn round trip for the misses and a full-block
// getdata as the last rung of the ladder.

// compactTxnTimeout returns how long a reconstruction waits for a
// blocktxn response before falling back to the full block.
func (n *Node) compactTxnTimeout() time.Duration {
	if n.cfg.RelayRequestTimeout > 0 {
		return n.cfg.RelayRequestTimeout
	}
	return 500 * time.Millisecond
}

// pendingCompact is one sketch waiting for its getblocktxn round trip.
type pendingCompact struct {
	cb      *chain.CompactBlock
	partial []*chain.Tx // nil at each index the blocktxn must fill
	from    string      // the peer that pushed the sketch
	timer   *time.Timer
}

// relayHave reports objects the node already holds outside the relay's
// own store, so announcements for them are not requested.
func (n *Node) relayHave(kind string, id p2p.ObjectID) bool {
	switch kind {
	case "tx":
		return n.pool.Contains(chain.Hash(id))
	case "block":
		_, ok := n.chain.BlockByID(chain.Hash(id))
		return ok
	}
	return false
}

// relayFetch re-serializes objects the relay's bounded store has
// evicted, so old getdata requests can still be answered.
func (n *Node) relayFetch(kind string, id p2p.ObjectID) ([]byte, bool) {
	switch kind {
	case "tx":
		if tx, ok := n.pool.Get(chain.Hash(id)); ok {
			return tx.Serialize(), true
		}
	case "block":
		// Pruned stubs keep their ID in the index but have no body left
		// to serve.
		if b, ok := n.chain.BlockByID(chain.Hash(id)); ok && len(b.Txs) > 0 {
			return b.Serialize(), true
		}
	}
	return nil, false
}

// onRelayTx consumes a transaction body delivered by the relay.
func (n *Node) onRelayTx(from string, payload []byte) (p2p.ObjectID, bool) {
	tx, err := chain.DeserializeTx(payload)
	if err != nil {
		n.logf("relayed tx undecodable: %v", err)
		n.misbehave(from, "undecodable relayed tx")
		return p2p.ObjectID{}, false
	}
	n.admitTx(tx)
	// Relay onward regardless of admission: parked orphans and
	// first-seen conflicts propagated under flooding too, and peers make
	// their own admission decisions.
	return p2p.ObjectID(tx.ID()), true
}

// onRelayBlock consumes a full block body delivered by the relay — the
// catch-up path and the last rung of the compact fallback ladder.
func (n *Node) onRelayBlock(from string, payload []byte) (p2p.ObjectID, bool) {
	b, err := chain.DeserializeBlock(payload)
	if err != nil {
		n.logf("relayed block undecodable: %v", err)
		n.misbehave(from, "undecodable relayed block")
		return p2p.ObjectID{}, false
	}
	id := b.ID()
	n.clearPendingCompact(id) // a full body supersedes any sketch round trip
	n.acceptBlock(b)
	return p2p.ObjectID(id), true
}

// broadcastTx hands a transaction to the active relay. force bypasses
// per-peer known-inventory suppression (sync repair).
func (n *Node) broadcastTx(tx *chain.Tx, force bool) {
	if n.relay == nil {
		n.gossip.Broadcast("tx", tx.Serialize())
		return
	}
	n.relay.Announce("tx", p2p.ObjectID(tx.ID()), tx.Serialize(), force)
}

// broadcastBlock propagates a freshly mined block: a compact sketch in
// relay mode, a full-body flood otherwise. Catch-up blocks travel
// through onSync's batched AnnounceTo instead.
func (n *Node) broadcastBlock(b *chain.Block) {
	if n.relay == nil {
		n.gossip.Broadcast("block", b.Serialize())
		return
	}
	n.relay.Put("block", p2p.ObjectID(b.ID()), b.Serialize())
	n.sendCompact(b, "")
}

// sendCompact pushes the sketch of b to every peer not yet known to
// hold the block, skipping the peer it came from.
func (n *Node) sendCompact(b *chain.Block, skip string) {
	id := p2p.ObjectID(b.ID())
	wire := chain.NewCompactBlock(b).Serialize()
	for _, addr := range n.gossip.Peers() {
		if addr == skip || n.relay.Known(addr, "block", id) {
			continue
		}
		if n.gossip.SendTo(addr, "cmpctblock", wire) {
			n.relay.MarkKnown(addr, "block", id)
			n.metrics.cmpctSent.Inc()
		}
	}
}

// onCompactBlock receives a sketch and climbs the reconstruction
// ladder: mempool resolution, then a getblocktxn round trip, then the
// full block.
func (n *Node) onCompactBlock(from string, msg p2p.Message) {
	cb, err := chain.DeserializeCompactBlock(msg.Payload)
	if err != nil {
		n.logf("compact block undecodable: %v", err)
		n.misbehave(from, "undecodable compact block")
		return
	}
	n.metrics.cmpctReceived.Inc()
	id := cb.BlockID()
	n.relay.MarkKnown(from, "block", p2p.ObjectID(id))

	// Already have the body, or a round trip for it is in flight.
	if n.relayHave("block", p2p.ObjectID(id)) || n.relay.Has("block", p2p.ObjectID(id)) {
		return
	}
	n.mu.Lock()
	_, inFlight := n.pendingCmpct[id]
	n.mu.Unlock()
	if inFlight {
		return
	}

	block, partial, missing, err := cb.Reconstruct(n.pool.GetByShort)
	switch {
	case err != nil:
		// Malformed sketch or merkle mismatch: the sketch is useless,
		// fetch the full block.
		n.metrics.cmpctFullFallbacks.Inc()
		n.relay.Request("block", p2p.ObjectID(id), from)
	case block != nil:
		n.metrics.cmpctHits.Inc()
		n.completeCompact(block, from)
	default:
		pc := &pendingCompact{cb: cb, partial: partial, from: from}
		pc.timer = time.AfterFunc(n.compactTxnTimeout(), func() { n.compactTimeout(id) })
		n.mu.Lock()
		n.pendingCmpct[id] = pc
		n.mu.Unlock()
		n.metrics.cmpctTxnRequests.Inc()
		if !n.gossip.SendTo(from, "getblocktxn", chain.EncodeGetBlockTxn(id, missing)) {
			// Peer gone or queue full: skip straight to the last rung.
			n.compactTimeout(id)
		}
	}
}

// onGetBlockTxn serves the transactions a reconstructing peer is
// missing, by absolute index.
func (n *Node) onGetBlockTxn(from string, msg p2p.Message) {
	id, indexes, err := chain.DecodeGetBlockTxn(msg.Payload)
	if err != nil {
		n.misbehave(from, "undecodable getblocktxn")
		return
	}
	b, ok := n.chain.BlockByID(chain.Hash(id))
	if !ok {
		// Not in the index (evicted or never accepted); the peer's
		// timeout will escalate to a full-block request elsewhere.
		return
	}
	fills := make([]chain.PrefilledTx, 0, len(indexes))
	for _, idx := range indexes {
		if int(idx) < len(b.Txs) {
			fills = append(fills, chain.PrefilledTx{Index: idx, Tx: b.Txs[idx]})
		}
	}
	if n.gossip.SendTo(from, "blocktxn", chain.EncodeBlockTxn(id, fills)) {
		n.metrics.cmpctTxnServed.Inc()
	}
}

// onBlockTxn completes a pending reconstruction with the transactions
// the sketch's sender shipped back.
func (n *Node) onBlockTxn(from string, msg p2p.Message) {
	id, fills, err := chain.DecodeBlockTxn(msg.Payload)
	if err != nil {
		n.misbehave(from, "undecodable blocktxn")
		return
	}
	n.mu.Lock()
	pc := n.pendingCmpct[id]
	if pc != nil {
		pc.timer.Stop()
		delete(n.pendingCmpct, id)
	}
	n.mu.Unlock()
	if pc == nil {
		return
	}
	block, err := pc.cb.Assemble(pc.partial, fills)
	if err != nil {
		// Wrong or incomplete fills (short-id collision, lying peer):
		// last rung, fetch the full block.
		n.logf("compact assemble %s: %v", id, err)
		n.metrics.cmpctFullFallbacks.Inc()
		n.relay.Request("block", p2p.ObjectID(id), pc.from)
		return
	}
	n.completeCompact(block, from)
}

// compactTimeout fires when a blocktxn response never arrived: abandon
// the sketch and fetch the full block from the peer that pushed it.
func (n *Node) compactTimeout(id chain.Hash) {
	n.mu.Lock()
	pc := n.pendingCmpct[id]
	if pc != nil {
		pc.timer.Stop()
		delete(n.pendingCmpct, id)
	}
	n.mu.Unlock()
	if pc == nil {
		return
	}
	n.metrics.cmpctFullFallbacks.Inc()
	n.relay.Request("block", p2p.ObjectID(id), pc.from)
}

// clearPendingCompact drops a sketch round trip obsoleted by the full
// body arriving through another path.
func (n *Node) clearPendingCompact(id chain.Hash) {
	n.mu.Lock()
	if pc, ok := n.pendingCmpct[id]; ok {
		pc.timer.Stop()
		delete(n.pendingCmpct, id)
	}
	n.mu.Unlock()
}

// completeCompact accepts a reconstructed block and forwards its sketch
// to peers that have not seen it, so compact propagation stays compact
// beyond the first hop.
func (n *Node) completeCompact(b *chain.Block, from string) {
	n.metrics.cmpctReconstructed.Inc()
	id := p2p.ObjectID(b.ID())
	n.relay.Put("block", id, b.Serialize())
	n.relay.MarkKnown(from, "block", id)
	n.acceptBlock(b)
	n.sendCompact(b, from)
}
