package daemon

import (
	"context"
	"strings"
	"testing"

	"bcwan/internal/rpc"
)

// TestNodeTelemetryEndToEnd checks a deployed cluster's registries carry
// series from every instrumented subsystem, and that Node.Open records
// store load latency.
func TestNodeTelemetryEndToEnd(t *testing.T) {
	c := newCluster(t)
	c.mine()
	c.mine()

	// One RPC round trip so rpc counters move.
	cli := rpc.NewClient(c.master.RPCAddr())
	if _, err := cli.GetBlockCount(context.Background()); err != nil {
		t.Fatal(err)
	}

	if _, err := c.master.Open(t.TempDir()); err != nil {
		t.Fatal(err)
	}

	have := make(map[string]float64)
	for _, m := range c.master.Telemetry().Snapshot() {
		have[m.Name] = m.Value
	}
	for name, wantNonZero := range map[string]bool{
		"bcwan_chain_blocks_connected_total": true,
		"bcwan_chain_utxo_size":              true,
		"bcwan_mempool_size":                 false,
		"bcwan_mempool_admitted_total":       false,
		"bcwan_miner_blocks_mined_total":     true,
		"bcwan_p2p_peer_count":               true,
		"bcwan_p2p_bytes_out_total":          true,
		"bcwan_rpc_inflight_requests":        false,
		"bcwan_daemon_deliveries_sent_total": false,
	} {
		v, ok := have[name]
		if !ok {
			t.Errorf("master registry missing %s", name)
			continue
		}
		if wantNonZero && v == 0 {
			t.Errorf("%s = 0, want > 0", name)
		}
	}
	for _, m := range c.master.Telemetry().Snapshot() {
		if m.Name == "bcwan_daemon_store_load_seconds" {
			if m.Histogram == nil || m.Histogram.Count != 1 {
				t.Errorf("%s count = %+v, want 1 observation", m.Name, m.Histogram)
			}
		}
	}

	// The gateway daemon's registry carries the fair-exchange series
	// (at zero — no exchange ran here).
	foundGateway := false
	for _, m := range c.gwd.Node.Telemetry().Snapshot() {
		if strings.HasPrefix(m.Name, "bcwan_gateway_") {
			foundGateway = true
		}
	}
	if !foundGateway {
		t.Error("gateway registry has no bcwan_gateway_ series")
	}
}
