package daemon

import (
	"crypto/rand"
	"errors"
	"io"
	"sync"
)

func containsErr(err, target error) bool { return errors.Is(err, target) }

// lockedReader serializes an injected random source. Tests hand in
// plain *math/rand.Rand streams, and the mine loop, the sync machine's
// goroutine and request handlers all draw from the one reader.
type lockedReader struct {
	mu sync.Mutex
	r  io.Reader
}

func (l *lockedReader) Read(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Read(p)
}

func randomOrDefault(r io.Reader) io.Reader {
	if r == nil {
		return rand.Reader
	}
	return r
}

// syncNonce draws a random tag so identical-height sync requests from
// different nodes are not deduplicated by the gossip layer.
func syncNonce(r io.Reader) int64 {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 1
	}
	var n int64
	for _, v := range b {
		n = n<<8 | int64(v)
	}
	if n < 0 {
		n = -n
	}
	return n
}
