package daemon

import (
	"crypto/rand"
	"errors"
	"io"
)

func containsErr(err, target error) bool { return errors.Is(err, target) }

func randomOrDefault(r io.Reader) io.Reader {
	if r == nil {
		return rand.Reader
	}
	return r
}

// syncNonce draws a random tag so identical-height sync requests from
// different nodes are not deduplicated by the gossip layer.
func syncNonce(r io.Reader) int64 {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 1
	}
	var n int64
	for _, v := range b {
		n = n<<8 | int64(v)
	}
	if n < 0 {
		n = -n
	}
	return n
}
