package daemon

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"bcwan/internal/chain"
)

// Chain persistence: bcwand stores the best branch as a length-prefixed
// sequence of serialized blocks, so a restarted daemon resumes from disk
// instead of replaying the gossip history.

// storeMagic guards against loading foreign files.
var storeMagic = []byte("BCWANCHAIN1\n")

// ErrBadStore reports an unreadable chain file.
var ErrBadStore = errors.New("daemon: malformed chain store")

// SaveChain writes the best branch (excluding genesis, which is
// configuration) to path atomically.
func SaveChain(c *chain.Chain, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("daemon: save chain: %w", err)
	}
	w := bufio.NewWriter(f)
	ok := false
	defer func() {
		if !ok {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if _, err := w.Write(storeMagic); err != nil {
		return err
	}
	for h := int64(1); h <= c.Height(); h++ {
		b, found := c.BlockAt(h)
		if !found {
			return fmt.Errorf("daemon: save chain: missing height %d", h)
		}
		raw := b.Serialize()
		var lenb [4]byte
		binary.BigEndian.PutUint32(lenb[:], uint32(len(raw)))
		if _, err := w.Write(lenb[:]); err != nil {
			return err
		}
		if _, err := w.Write(raw); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	ok = true
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("daemon: save chain: %w", err)
	}
	// The rename is only durable once the directory entry itself is on
	// disk: fsync the parent so a crash cannot resurrect the old file
	// (or leave none at all).
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("daemon: save chain: open dir: %w", err)
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return fmt.Errorf("daemon: save chain: sync dir: %w", err)
	}
	return d.Close()
}

// LoadChain replays a stored branch into the chain. Blocks that fail
// validation abort the load (the file is untrusted input). A missing file
// is not an error — the daemon simply starts fresh.
func LoadChain(c *chain.Chain, path string) (int, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("daemon: load chain: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)

	magic := make([]byte, len(storeMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadStore, err)
	}
	if string(magic) != string(storeMagic) {
		return 0, fmt.Errorf("%w: bad magic", ErrBadStore)
	}
	loaded := 0
	for {
		var lenb [4]byte
		if _, err := io.ReadFull(r, lenb[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return loaded, nil
			}
			return loaded, fmt.Errorf("%w: %v", ErrBadStore, err)
		}
		n := binary.BigEndian.Uint32(lenb[:])
		if n > 64<<20 {
			return loaded, fmt.Errorf("%w: block of %d bytes", ErrBadStore, n)
		}
		raw := make([]byte, n)
		if _, err := io.ReadFull(r, raw); err != nil {
			return loaded, fmt.Errorf("%w: %v", ErrBadStore, err)
		}
		b, err := chain.DeserializeBlock(raw)
		if err != nil {
			return loaded, fmt.Errorf("daemon: load chain: %w", err)
		}
		if err := c.AddBlock(b); err != nil {
			if errors.Is(err, chain.ErrDuplicateBlock) {
				continue
			}
			return loaded, fmt.Errorf("daemon: load chain height %d: %w", b.Header.Height, err)
		}
		loaded++
	}
}

// DefaultChainPath places the store under dir.
func DefaultChainPath(dir string) string { return filepath.Join(dir, "chain.dat") }
