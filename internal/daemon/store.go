package daemon

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"bcwan/internal/chain"
)

// Chain persistence: an fsync'd append-only block log plus a periodic
// snapshot (blocks + serialized UTXO set). Steady-state cost is O(1)
// per block; restart cost is O(snapshot) map work plus full validation
// of the short log tail. A torn final record — the crash case — is
// detected by CRC and truncated away.
//
// Snapshot generations:
//
//   - v1 (snapMagic): every best-branch block from height 1 plus the tip
//     UTXO set. Written by unpruned nodes.
//   - v2 (snapMagic2): the pruned form — headers only up to the prune
//     base, the UTXO set at the base, full blocks above it, and the tip
//     set's hash as an integrity cross-check. Written once the chain has
//     a pruned horizon; restoring installs the base through the chain's
//     trusted snapshot path, so a pruned gateway restarts without the
//     bodies it deliberately dropped.
//
// The legacy whole-file format (storeMagic, chain.dat) is read once by
// MigrateLegacy and never written again.

// storeMagic heads the retired whole-file format; MigrateLegacy still
// recognizes it.
var storeMagic = []byte("BCWANCHAIN1\n")

// logMagic and snapMagic/snapMagic2 head the incremental store's files.
var (
	logMagic   = []byte("BCWANLOG1\n")
	snapMagic  = []byte("BCWANSNAP1\n")
	snapMagic2 = []byte("BCWANSNAP2\n")
)

// ErrBadStore reports an unreadable chain file.
var ErrBadStore = errors.New("daemon: malformed chain store")

// MigrateLegacy absorbs a retired whole-file chain.dat into the open
// store: every stored block is replayed into the chain through full
// validation and, when newly connected, appended to the block log, and
// the file is renamed to path+".migrated" so the next start skips it.
// A missing file is not an error. Returns how many blocks migrated.
func MigrateLegacy(s *Store, c *chain.Chain, path string) (int, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("daemon: migrate legacy: %w", err)
	}
	r := bufio.NewReader(f)
	magic := make([]byte, len(storeMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != string(storeMagic) {
		f.Close()
		return 0, fmt.Errorf("%w: bad legacy magic", ErrBadStore)
	}
	migrated := 0
	for {
		var lenb [4]byte
		if _, err := io.ReadFull(r, lenb[:]); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			f.Close()
			return migrated, fmt.Errorf("%w: %v", ErrBadStore, err)
		}
		n := binary.BigEndian.Uint32(lenb[:])
		if n > maxStoredBlock {
			f.Close()
			return migrated, fmt.Errorf("%w: block of %d bytes", ErrBadStore, n)
		}
		raw := make([]byte, n)
		if _, err := io.ReadFull(r, raw); err != nil {
			f.Close()
			return migrated, fmt.Errorf("%w: %v", ErrBadStore, err)
		}
		b, err := chain.DeserializeBlock(raw)
		if err != nil {
			f.Close()
			return migrated, fmt.Errorf("daemon: migrate legacy: %w", err)
		}
		switch err := c.AddBlock(b); {
		case err == nil:
			// Durable in the new store before the old file goes away.
			if err := s.AppendBlock(b); err != nil {
				f.Close()
				return migrated, err
			}
			migrated++
		case errors.Is(err, chain.ErrDuplicateBlock):
		default:
			f.Close()
			return migrated, fmt.Errorf("daemon: migrate legacy height %d: %w", b.Header.Height, err)
		}
	}
	f.Close()
	if err := os.Rename(path, path+".migrated"); err != nil {
		return migrated, fmt.Errorf("daemon: migrate legacy: %w", err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		return migrated, fmt.Errorf("daemon: migrate legacy: %w", err)
	}
	return migrated, nil
}

// DefaultChainPath places the store under dir.
func DefaultChainPath(dir string) string { return filepath.Join(dir, "chain.dat") }

// maxStoredBlock bounds a single record so a corrupt length prefix
// cannot trigger a huge allocation.
const maxStoredBlock = 64 << 20

// Store is the incremental chain store: blocks.log receives one
// CRC-framed record per best-branch connect, snapshot.dat holds the last
// compaction point (all best-branch blocks plus the serialized UTXO set
// at that height). Restart loads the snapshot through the trusted fast
// path and replays only the log tail through full validation.
//
// Appends are group-committed: AppendBlock stays synchronous — it does
// not return until its record is on stable storage — but the fsync is
// amortized. All appends funnel through a single flusher goroutine that
// coalesces whatever requests have queued while the previous batch was
// writing (plus, when a coalescing delay is configured, a short
// collection window bounded by a byte threshold) into one write and one
// Sync. Under a single writer the behavior is the seed's one-sync-per-
// record; under concurrent subscription callbacks N appends cost one
// sync. Flush is a durability barrier (its own Sync), and Compact
// flushes synchronously before touching the snapshot — the snapshot
// boundary is never allowed to pass an open batch.
//
// Store methods are safe for concurrent use; appends arrive from chain
// subscription callbacks which may race each other, so log order is not
// guaranteed to be chain order — Load's replay is order-tolerant.
type Store struct {
	// mu guards the log fd and everything written through it (batches,
	// truncation, snapshot renames, replay).
	mu      sync.Mutex
	dir     string
	log     *os.File
	records int

	// qmu guards the append queue's lifecycle: closed, and the right to
	// send on reqCh.
	qmu    sync.Mutex
	closed bool
	reqCh  chan *appendReq
	// crashed (set by CrashForTest) makes the flusher discard queued
	// batches instead of writing them — the in-memory queue a real crash
	// would lose.
	crashed atomic.Bool
	flusher sync.WaitGroup

	// Group-commit knobs (atomics so the flusher reads them without a
	// lock): gcDelayNanos is the collection window opened after the
	// first request of a batch; gcMaxBytes caps a batch's payload.
	gcDelayNanos atomic.Int64
	gcMaxBytes   atomic.Int64

	// syncs counts log fsyncs; batched counts records that rode a batch
	// with at least one other record — together they expose the
	// amortization ratio to tests and metrics.
	syncs   atomic.Uint64
	batched atomic.Uint64
}

// appendReq is one queued log operation: a framed record to append, or
// a flush barrier (empty rec). done receives the batch's outcome.
type appendReq struct {
	rec  []byte
	done chan error
}

// defaultGCMaxBytes caps one group-commit batch's payload.
const defaultGCMaxBytes = 4 << 20

// errStoreClosed reports an append or flush against a closed store.
var errStoreClosed = errors.New("daemon: append block: store closed")

// dirSyncHook, when non-nil, observes every directory fsync — a test
// hook for asserting the fresh-log and rename durability windows.
var dirSyncHook func(dir string)

// OpenStore opens (creating if needed) the incremental store in dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("daemon: open store: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "blocks.log"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("daemon: open store: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("daemon: open store: %w", err)
	}
	if info.Size() == 0 {
		if _, err := f.Write(logMagic); err != nil {
			f.Close()
			return nil, fmt.Errorf("daemon: open store: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("daemon: open store: %w", err)
		}
		// The log file itself was just created: fsync the directory so
		// a crash before the first compaction cannot lose the file (a
		// synced file in an unsynced directory is unreachable after
		// power loss). Snapshot renames get the same treatment in
		// Compact; this covers the fresh-store window.
		if err := syncDir(dir); err != nil {
			f.Close()
			return nil, fmt.Errorf("daemon: open store: %w", err)
		}
	} else {
		magic := make([]byte, len(logMagic))
		if _, err := io.ReadFull(f, magic); err != nil || string(magic) != string(logMagic) {
			f.Close()
			return nil, fmt.Errorf("%w: bad log magic", ErrBadStore)
		}
	}
	s := &Store{dir: dir, log: f, reqCh: make(chan *appendReq, 64)}
	s.gcMaxBytes.Store(defaultGCMaxBytes)
	s.flusher.Add(1)
	go s.runFlusher()
	return s, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// SetGroupCommit configures the append coalescing knobs: delay is the
// collection window the flusher holds open after a batch's first
// record (0 — the default — coalesces only what queued while the
// previous batch was in flight, adding no latency to a lone writer);
// maxBytes caps a batch's payload (<= 0 restores the default).
func (s *Store) SetGroupCommit(delay time.Duration, maxBytes int) {
	if delay < 0 {
		delay = 0
	}
	if maxBytes <= 0 {
		maxBytes = defaultGCMaxBytes
	}
	s.gcDelayNanos.Store(int64(delay))
	s.gcMaxBytes.Store(int64(maxBytes))
}

// Syncs returns how many log fsyncs the store has issued.
func (s *Store) Syncs() uint64 { return s.syncs.Load() }

// BatchedRecords returns how many appended records shared their fsync
// with at least one other record.
func (s *Store) BatchedRecords() uint64 { return s.batched.Load() }

// LogRecords returns the number of block records currently in the log
// (valid records found at load time plus appends since). Compact resets
// it to zero.
func (s *Store) LogRecords() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.records
}

// Close flushes any queued appends durably and closes the log file.
func (s *Store) Close() error {
	s.qmu.Lock()
	if s.closed {
		s.qmu.Unlock()
		return nil
	}
	s.closed = true
	close(s.reqCh)
	s.qmu.Unlock()
	s.flusher.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	err := s.log.Close()
	s.log = nil
	return err
}

// enqueue hands one request to the flusher, failing fast on a closed
// store.
func (s *Store) enqueue(req *appendReq) error {
	s.qmu.Lock()
	if s.closed {
		s.qmu.Unlock()
		return errStoreClosed
	}
	s.reqCh <- req
	s.qmu.Unlock()
	return nil
}

// encodeRecord frames one block for the log:
// [len u32][crc32 u32][serialized block].
func encodeRecord(b *chain.Block) []byte {
	raw := b.Serialize()
	rec := make([]byte, 8+len(raw))
	binary.BigEndian.PutUint32(rec[0:4], uint32(len(raw)))
	binary.BigEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(raw))
	copy(rec[8:], raw)
	return rec
}

// AppendBlock durably appends one block to the log. The call returns
// only after the record's batch is fsync'd — group commit changes how
// many records share that fsync, never the durability contract.
func (s *Store) AppendBlock(b *chain.Block) error {
	done := make(chan error, 1)
	if err := s.enqueue(&appendReq{rec: encodeRecord(b), done: done}); err != nil {
		return err
	}
	return <-done
}

// Flush is a durability barrier: it returns once every append enqueued
// before it is on stable storage (issuing a Sync of its own, so it also
// orders against non-append log writes).
func (s *Store) Flush() error {
	done := make(chan error, 1)
	if err := s.enqueue(&appendReq{done: done}); err != nil {
		return err
	}
	return <-done
}

// runFlusher is the single log writer: it takes the oldest queued
// request, coalesces more up to the byte cap — non-blocking by default,
// or across the configured collection window — and commits the batch
// with one write and one Sync.
func (s *Store) runFlusher() {
	defer s.flusher.Done()
	for req := range s.reqCh {
		batch := []*appendReq{req}
		size := len(req.rec)
		maxBytes := int(s.gcMaxBytes.Load())
		// A flush barrier never waits for followers; append requests
		// coalesce.
		if delay := time.Duration(s.gcDelayNanos.Load()); delay > 0 && len(req.rec) > 0 {
			timer := time.NewTimer(delay)
		window:
			for size < maxBytes {
				select {
				case r, ok := <-s.reqCh:
					if !ok {
						break window
					}
					batch = append(batch, r)
					size += len(r.rec)
					if len(r.rec) == 0 {
						break window // flush barrier closes the batch
					}
				case <-timer.C:
					break window
				}
			}
			timer.Stop()
		} else {
		drain:
			for size < maxBytes {
				select {
				case r, ok := <-s.reqCh:
					if !ok {
						break drain
					}
					batch = append(batch, r)
					size += len(r.rec)
					if len(r.rec) == 0 {
						break drain
					}
				default:
					break drain
				}
			}
		}
		err := s.commitBatch(batch)
		for _, r := range batch {
			r.done <- err
		}
	}
}

// commitBatch writes a batch's records in one write and makes them
// durable with one Sync. Flush-only batches still Sync — the barrier
// semantics callers rely on.
func (s *Store) commitBatch(batch []*appendReq) error {
	if s.crashed.Load() {
		return errStoreClosed
	}
	var buf []byte
	recs := 0
	for _, r := range batch {
		if len(r.rec) > 0 {
			buf = append(buf, r.rec...)
			recs++
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil || s.crashed.Load() {
		return errStoreClosed
	}
	if recs > 0 {
		if _, err := s.log.Seek(0, io.SeekEnd); err != nil {
			return fmt.Errorf("daemon: append block: %w", err)
		}
		if _, err := s.log.Write(buf); err != nil {
			return fmt.Errorf("daemon: append block: %w", err)
		}
	}
	if err := s.log.Sync(); err != nil {
		return fmt.Errorf("daemon: append block: %w", err)
	}
	s.records += recs
	s.syncs.Add(1)
	if recs > 1 {
		s.batched.Add(uint64(recs))
	}
	return nil
}

// CrashForTest simulates a power cut mid-batch: queued appends are
// discarded (the in-memory queue a real crash loses), a torn prefix of
// one more record is left on disk without any fsync, and the fd is
// closed. tornBytes is clamped to strictly less than the full record so
// the tail is genuinely torn. Recovery is Load's job: the CRC framing
// must truncate the torn tail and keep every record flushed before the
// crash.
func (s *Store) CrashForTest(b *chain.Block, tornBytes int) error {
	s.crashed.Store(true)
	s.qmu.Lock()
	if s.closed {
		s.qmu.Unlock()
		return errStoreClosed
	}
	s.closed = true
	close(s.reqCh)
	s.qmu.Unlock()
	s.flusher.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return errStoreClosed
	}
	rec := encodeRecord(b)
	if tornBytes >= len(rec) {
		tornBytes = len(rec) - 1
	}
	if tornBytes < 0 {
		tornBytes = 0
	}
	if _, err := s.log.Seek(0, io.SeekEnd); err != nil {
		return err
	}
	if _, err := s.log.Write(rec[:tornBytes]); err != nil {
		return err
	}
	err := s.log.Close()
	s.log = nil
	return err
}

// Load restores the chain from the snapshot (if present) and the log
// tail. Snapshot blocks connect through the trusted fast path — script
// verification is skipped, every other rule still runs — and the
// restored UTXO set is cross-checked byte-for-byte against the set
// serialized into the snapshot. Log-tail blocks go through full
// validation. A torn or corrupt tail record is truncated away (the
// crash-recovery path), not treated as an error.
//
// The replay is multi-pass because appends can land out of chain order:
// blocks whose parent has not connected yet are retried until a full
// pass makes no progress. Returns the number of blocks connected.
func (s *Store) Load(c *chain.Chain) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	loaded, err := s.loadSnapshot(c)
	if err != nil {
		return loaded, err
	}
	tail, err := s.replayLog(c)
	return loaded + tail, err
}

// loadSnapshot restores snapshot.dat if it exists, dispatching on the
// generation magic.
func (s *Store) loadSnapshot(c *chain.Chain) (int, error) {
	raw, err := os.ReadFile(filepath.Join(s.dir, "snapshot.dat"))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("daemon: load snapshot: %w", err)
	}
	if len(raw) < len(snapMagic)+4 {
		return 0, fmt.Errorf("%w: bad snapshot magic", ErrBadStore)
	}
	pruned := false
	switch string(raw[:len(snapMagic)]) {
	case string(snapMagic):
	case string(snapMagic2):
		pruned = true
	default:
		return 0, fmt.Errorf("%w: bad snapshot magic", ErrBadStore)
	}
	body := raw[len(snapMagic) : len(raw)-4]
	wantCRC := binary.BigEndian.Uint32(raw[len(raw)-4:])
	if crc32.ChecksumIEEE(body) != wantCRC {
		return 0, fmt.Errorf("%w: snapshot checksum mismatch", ErrBadStore)
	}
	r := bytes.NewReader(body)
	if pruned {
		return s.loadSnapshotV2(c, r)
	}
	var scratch [4]byte
	if _, err := io.ReadFull(r, scratch[:]); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadStore, err)
	}
	count := binary.BigEndian.Uint32(scratch[:])
	loaded := 0
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(r, scratch[:]); err != nil {
			return loaded, fmt.Errorf("%w: %v", ErrBadStore, err)
		}
		n := binary.BigEndian.Uint32(scratch[:])
		if n > maxStoredBlock {
			return loaded, fmt.Errorf("%w: block of %d bytes", ErrBadStore, n)
		}
		blockRaw := make([]byte, n)
		if _, err := io.ReadFull(r, blockRaw); err != nil {
			return loaded, fmt.Errorf("%w: %v", ErrBadStore, err)
		}
		b, err := chain.DeserializeBlock(blockRaw)
		if err != nil {
			return loaded, fmt.Errorf("daemon: load snapshot: %w", err)
		}
		if err := c.AddBlockTrusted(b); err != nil {
			if errors.Is(err, chain.ErrDuplicateBlock) {
				continue
			}
			return loaded, fmt.Errorf("daemon: load snapshot height %d: %w", b.Header.Height, err)
		}
		loaded++
	}
	snapUTXO, err := chain.DeserializeUTXO(r)
	if err != nil {
		return loaded, fmt.Errorf("daemon: load snapshot: %w", err)
	}
	// The snapshot's serialized set must match the set the trusted
	// replay just rebuilt — this is the integrity check that makes
	// skipping script verification on restore safe to trust.
	if !snapUTXO.Equal(c.UTXO()) {
		return loaded, fmt.Errorf("%w: snapshot UTXO set does not match replayed chain state", ErrBadStore)
	}
	return loaded, nil
}

// maxStoredHeader bounds one header record in a v2 snapshot.
const maxStoredHeader = 4096

// loadSnapshotV2 restores a pruned snapshot: headers 1..base install as
// stubs with the base UTXO set through the chain's trusted snapshot
// path, full blocks above the base connect through the trusted fast
// path, and the stored tip-set hash cross-checks the rebuilt state.
func (s *Store) loadSnapshotV2(c *chain.Chain, r *bytes.Reader) (int, error) {
	var s8 [8]byte
	if _, err := io.ReadFull(r, s8[:]); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadStore, err)
	}
	base := int64(binary.BigEndian.Uint64(s8[:]))
	var s4 [4]byte
	if _, err := io.ReadFull(r, s4[:]); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadStore, err)
	}
	headerCount := binary.BigEndian.Uint32(s4[:])
	if int64(headerCount) != base {
		return 0, fmt.Errorf("%w: %d headers for prune base %d", ErrBadStore, headerCount, base)
	}
	headers := make([]*chain.Header, 0, headerCount)
	for i := uint32(0); i < headerCount; i++ {
		if _, err := io.ReadFull(r, s4[:]); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrBadStore, err)
		}
		n := binary.BigEndian.Uint32(s4[:])
		if n > maxStoredHeader {
			return 0, fmt.Errorf("%w: header of %d bytes", ErrBadStore, n)
		}
		raw := make([]byte, n)
		if _, err := io.ReadFull(r, raw); err != nil {
			return 0, fmt.Errorf("%w: %v", ErrBadStore, err)
		}
		h, err := chain.DeserializeHeader(raw)
		if err != nil {
			return 0, fmt.Errorf("daemon: load snapshot: %w", err)
		}
		headers = append(headers, h)
	}
	utxo, err := chain.DeserializeUTXO(r)
	if err != nil {
		return 0, fmt.Errorf("daemon: load snapshot: %w", err)
	}
	if err := c.InitFromSnapshot(headers, utxo); err != nil {
		return 0, fmt.Errorf("daemon: load snapshot: %w", err)
	}
	loaded := len(headers)
	if _, err := io.ReadFull(r, s4[:]); err != nil {
		return loaded, fmt.Errorf("%w: %v", ErrBadStore, err)
	}
	blockCount := binary.BigEndian.Uint32(s4[:])
	for i := uint32(0); i < blockCount; i++ {
		if _, err := io.ReadFull(r, s4[:]); err != nil {
			return loaded, fmt.Errorf("%w: %v", ErrBadStore, err)
		}
		n := binary.BigEndian.Uint32(s4[:])
		if n > maxStoredBlock {
			return loaded, fmt.Errorf("%w: block of %d bytes", ErrBadStore, n)
		}
		raw := make([]byte, n)
		if _, err := io.ReadFull(r, raw); err != nil {
			return loaded, fmt.Errorf("%w: %v", ErrBadStore, err)
		}
		b, err := chain.DeserializeBlock(raw)
		if err != nil {
			return loaded, fmt.Errorf("daemon: load snapshot: %w", err)
		}
		if err := c.AddBlockTrusted(b); err != nil {
			if errors.Is(err, chain.ErrDuplicateBlock) {
				continue
			}
			return loaded, fmt.Errorf("daemon: load snapshot height %d: %w", b.Header.Height, err)
		}
		loaded++
	}
	var tipHash chain.Hash
	if _, err := io.ReadFull(r, tipHash[:]); err != nil {
		return loaded, fmt.Errorf("%w: %v", ErrBadStore, err)
	}
	if r.Len() != 0 {
		return loaded, fmt.Errorf("%w: %d trailing bytes", ErrBadStore, r.Len())
	}
	// The stored tip-set hash must match the state the trusted replay
	// rebuilt — the integrity check that makes skipping script
	// verification on restore safe to trust.
	if chain.SnapshotHash(c.UTXO().SerializeUTXO()) != tipHash {
		return loaded, fmt.Errorf("%w: snapshot UTXO set does not match replayed chain state", ErrBadStore)
	}
	return loaded, nil
}

// replayLog replays every decodable log record through full validation,
// truncating the log at the first torn or corrupt record.
func (s *Store) replayLog(c *chain.Chain) (int, error) {
	if _, err := s.log.Seek(int64(len(logMagic)), io.SeekStart); err != nil {
		return 0, fmt.Errorf("daemon: replay log: %w", err)
	}
	r := bufio.NewReader(s.log)
	goodEnd := int64(len(logMagic))
	var pending []*chain.Block
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			break // clean EOF or torn length prefix: stop here
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		wantCRC := binary.BigEndian.Uint32(hdr[4:8])
		if n > maxStoredBlock {
			break
		}
		raw := make([]byte, n)
		if _, err := io.ReadFull(r, raw); err != nil {
			break // torn payload
		}
		if crc32.ChecksumIEEE(raw) != wantCRC {
			break // corrupt record
		}
		b, err := chain.DeserializeBlock(raw)
		if err != nil {
			break
		}
		goodEnd += 8 + int64(n)
		pending = append(pending, b)
	}
	// Drop everything after the last good record so future appends
	// start from a consistent tail.
	if err := s.log.Truncate(goodEnd); err != nil {
		return 0, fmt.Errorf("daemon: replay log: truncate: %w", err)
	}
	if err := s.log.Sync(); err != nil {
		return 0, fmt.Errorf("daemon: replay log: %w", err)
	}
	s.records = len(pending)

	// Multi-pass connect: appends may be out of chain order, so retry
	// parent-missing blocks until a pass admits nothing.
	loaded := 0
	for progressed := true; progressed && len(pending) > 0; {
		progressed = false
		next := pending[:0]
		for _, b := range pending {
			switch err := c.AddBlock(b); {
			case err == nil:
				loaded++
				progressed = true
			case errors.Is(err, chain.ErrDuplicateBlock):
				progressed = true
			case errors.Is(err, chain.ErrBadPrevBlock):
				next = append(next, b)
			default:
				return loaded, fmt.Errorf("daemon: replay log height %d: %w", b.Header.Height, err)
			}
		}
		pending = next
	}
	// Blocks whose ancestors never made it to disk (lost in the same
	// crash that tore the tail) stay unconnected; gossip anti-entropy
	// refills the gap at runtime.
	return loaded, nil
}

// Compact writes a fresh snapshot of the chain's best branch and UTXO
// set, then resets the log. Crash-safe ordering: queued appends are
// flushed synchronously first (the snapshot boundary never passes an
// open group-commit batch), then the snapshot rename is made durable
// before the log is truncated — so a crash in between leaves duplicate
// blocks in the log, which replay tolerates, never missing ones.
func (s *Store) Compact(c *chain.Chain) error {
	if err := s.Flush(); err != nil {
		return fmt.Errorf("daemon: compact: %w", err)
	}
	var body bytes.Buffer
	magic := snapMagic
	if c.PruneBase() > 0 {
		magic = snapMagic2
		if err := writePrunedBody(&body, c); err != nil {
			return err
		}
	} else if err := writeFullBody(&body, c); err != nil {
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return fmt.Errorf("daemon: compact: store closed")
	}
	path := filepath.Join(s.dir, "snapshot.dat")
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("daemon: compact: %w", err)
	}
	ok := false
	defer func() {
		if !ok {
			f.Close()
			os.Remove(tmp)
		}
	}()
	var crcb [4]byte
	binary.BigEndian.PutUint32(crcb[:], crc32.ChecksumIEEE(body.Bytes()))
	if _, err := f.Write(magic); err != nil {
		return fmt.Errorf("daemon: compact: %w", err)
	}
	if _, err := f.Write(body.Bytes()); err != nil {
		return fmt.Errorf("daemon: compact: %w", err)
	}
	if _, err := f.Write(crcb[:]); err != nil {
		return fmt.Errorf("daemon: compact: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("daemon: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("daemon: compact: %w", err)
	}
	ok = true
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("daemon: compact: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return fmt.Errorf("daemon: compact: %w", err)
	}
	// Snapshot durable: the log records below the snapshot height are
	// now redundant. Reset the log.
	if err := s.log.Truncate(int64(len(logMagic))); err != nil {
		return fmt.Errorf("daemon: compact: truncate log: %w", err)
	}
	if err := s.log.Sync(); err != nil {
		return fmt.Errorf("daemon: compact: %w", err)
	}
	s.records = 0
	return nil
}

// writeFullBody serializes the v1 snapshot body: every best-branch
// block from height 1 plus the tip UTXO set.
func writeFullBody(body *bytes.Buffer, c *chain.Chain) error {
	var scratch [4]byte
	height := c.Height()
	binary.BigEndian.PutUint32(scratch[:], uint32(height))
	body.Write(scratch[:])
	for h := int64(1); h <= height; h++ {
		b, ok := c.BlockAt(h)
		if !ok {
			return fmt.Errorf("daemon: compact: missing height %d", h)
		}
		raw := b.Serialize()
		binary.BigEndian.PutUint32(scratch[:], uint32(len(raw)))
		body.Write(scratch[:])
		body.Write(raw)
	}
	body.Write(c.UTXO().SerializeUTXO())
	return nil
}

// writePrunedBody serializes the v2 snapshot body: headers up to the
// prune base, the UTXO set at the base, full blocks above it, and the
// tip set's hash.
func writePrunedBody(body *bytes.Buffer, c *chain.Chain) error {
	var s8 [8]byte
	var s4 [4]byte
	base := c.PruneBase()
	height := c.Height()
	binary.BigEndian.PutUint64(s8[:], uint64(base))
	body.Write(s8[:])
	binary.BigEndian.PutUint32(s4[:], uint32(base))
	body.Write(s4[:])
	for h := int64(1); h <= base; h++ {
		b, ok := c.BlockAt(h)
		if !ok {
			return fmt.Errorf("daemon: compact: missing height %d", h)
		}
		raw := b.Header.Serialize()
		binary.BigEndian.PutUint32(s4[:], uint32(len(raw)))
		body.Write(s4[:])
		body.Write(raw)
	}
	baseState, err := c.StateAt(base)
	if err != nil {
		return fmt.Errorf("daemon: compact: %w", err)
	}
	body.Write(baseState.SerializeUTXO())
	binary.BigEndian.PutUint32(s4[:], uint32(height-base))
	body.Write(s4[:])
	for h := base + 1; h <= height; h++ {
		b, ok := c.BlockAt(h)
		if !ok {
			return fmt.Errorf("daemon: compact: missing height %d", h)
		}
		raw := b.Serialize()
		binary.BigEndian.PutUint32(s4[:], uint32(len(raw)))
		body.Write(s4[:])
		body.Write(raw)
	}
	tipHash := chain.SnapshotHash(c.UTXO().SerializeUTXO())
	body.Write(tipHash[:])
	return nil
}

// SnapshotChunks splits a serialized snapshot into fixed-size chunks
// for piecewise transfer; the final chunk carries the remainder.
func SnapshotChunks(data []byte, chunkSize int) [][]byte {
	if chunkSize <= 0 {
		chunkSize = 64 << 10
	}
	var chunks [][]byte
	for len(data) > chunkSize {
		chunks = append(chunks, data[:chunkSize:chunkSize])
		data = data[chunkSize:]
	}
	return append(chunks, data)
}

// AssembleSnapshot reassembles downloaded chunks, verifies them against
// the commitment (total size, then the committed hash), and decodes the
// UTXO set. Any mismatch rejects the whole download — a joiner never
// installs bytes the commitment does not vouch for.
func AssembleSnapshot(commit *chain.SnapshotCommitment, chunks [][]byte) (*chain.UTXOSet, error) {
	total := 0
	for _, ch := range chunks {
		total += len(ch)
	}
	if int64(total) != commit.UTXOSize {
		return nil, fmt.Errorf("%w: assembled %d bytes, commitment says %d", chain.ErrBadCommitment, total, commit.UTXOSize)
	}
	data := bytes.Join(chunks, nil)
	if chain.SnapshotHash(data) != commit.UTXOHash {
		return nil, fmt.Errorf("%w: snapshot hash mismatch", chain.ErrBadCommitment)
	}
	r := bytes.NewReader(data)
	u, err := chain.DeserializeUTXO(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", chain.ErrBadCommitment, err)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", chain.ErrBadCommitment, r.Len())
	}
	return u, nil
}

// syncDir fsyncs a directory so renames (and file creations) within it
// are durable.
func syncDir(dir string) error {
	if dirSyncHook != nil {
		dirSyncHook(dir)
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}
