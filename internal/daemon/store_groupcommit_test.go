package daemon

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// Tests for the store's group-commit append path: durability per
// AppendBlock return, fsync amortization under concurrency, the Flush
// barrier, the fresh-directory sync window, and torn-tail crash
// recovery of a half-committed batch.

func TestGroupCommitConcurrentAppendsShareSyncs(t *testing.T) {
	c, genesis, miners := storedChain(t, 12)
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// A generous collection window: concurrent appends must coalesce.
	st.SetGroupCommit(50*time.Millisecond, 0)

	base := st.Syncs()
	var wg sync.WaitGroup
	for h := int64(1); h <= 12; h++ {
		b, ok := c.BlockAt(h)
		if !ok {
			t.Fatalf("missing height %d", h)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := st.AppendBlock(b); err != nil {
				t.Errorf("append: %v", err)
			}
		}()
	}
	wg.Wait()
	if got := st.LogRecords(); got != 12 {
		t.Fatalf("LogRecords = %d, want 12", got)
	}
	syncs := st.Syncs() - base
	if syncs >= 12 {
		t.Fatalf("12 concurrent appends issued %d fsyncs; group commit did not amortize", syncs)
	}
	if st.BatchedRecords() == 0 {
		t.Fatal("no record shared a batch despite the collection window")
	}

	// Everything a returned AppendBlock promised must replay.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenStore(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	replica := freshReplica(t, genesis, miners)
	loaded, err := st2.Load(replica)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 12 || replica.Height() != 12 {
		t.Fatalf("reloaded %d blocks to height %d, want 12", loaded, replica.Height())
	}
}

func TestGroupCommitSequentialAppendsStaySynchronous(t *testing.T) {
	// With no collection window (the default), a lone sequential writer
	// must not be delayed — and still gets one fsync per append, the
	// seed's exact durability cadence.
	c, _, _ := storedChain(t, 5)
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	base := st.Syncs()
	appendBest(t, st, c, 1, 5)
	if syncs := st.Syncs() - base; syncs != 5 {
		t.Fatalf("5 sequential appends issued %d fsyncs, want 5", syncs)
	}
	if st.BatchedRecords() != 0 {
		t.Fatalf("sequential appends reported %d batched records", st.BatchedRecords())
	}
}

func TestFlushIsDurabilityBarrier(t *testing.T) {
	c, _, _ := storedChain(t, 3)
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.SetGroupCommit(time.Hour, 0) // window longer than the test
	done := make(chan error, 1)
	go func() {
		b, _ := c.BlockAt(1)
		done <- st.AppendBlock(b)
	}()
	// Flush must close the open collection window and return only once
	// the append above is durable.
	time.Sleep(10 * time.Millisecond)
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("append still blocked after Flush returned")
	}
	if got := st.LogRecords(); got != 1 {
		t.Fatalf("LogRecords = %d, want 1", got)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	c, _, _ := storedChain(t, 1)
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	b, _ := c.BlockAt(1)
	if err := st.AppendBlock(b); !errors.Is(err, errStoreClosed) {
		t.Fatalf("append after close: %v, want errStoreClosed", err)
	}
	if err := st.Flush(); !errors.Is(err, errStoreClosed) {
		t.Fatalf("flush after close: %v, want errStoreClosed", err)
	}
}

func TestFreshStoreSyncsDirectory(t *testing.T) {
	// A crash between creating blocks.log and the first compaction must
	// not lose the file: the directory entry has to be durable the
	// moment OpenStore returns. Assert through the syncDir hook that a
	// fresh store fsyncs its directory — the crash window the seed left
	// open (it only synced the directory on snapshot rename).
	var mu sync.Mutex
	var synced []string
	dirSyncHook = func(dir string) {
		mu.Lock()
		synced = append(synced, dir)
		mu.Unlock()
	}
	defer func() { dirSyncHook = nil }()

	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	fresh := len(synced)
	mu.Unlock()
	if fresh == 0 || synced[0] != dir {
		t.Fatalf("fresh OpenStore issued no directory sync (saw %v)", synced)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopening an existing store must not pay the directory sync again.
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	mu.Lock()
	reopen := len(synced) - fresh
	mu.Unlock()
	if reopen != 0 {
		t.Fatalf("reopening an existing store issued %d directory syncs, want 0", reopen)
	}
}

func TestCrashMidBatchTruncatesTornTail(t *testing.T) {
	c, genesis, miners := storedChain(t, 6)
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Flushed records 1..4, then a crash mid-write of record 5 leaves a
	// torn tail and discards anything still queued.
	appendBest(t, st, c, 1, 4)
	b5, _ := c.BlockAt(5)
	if err := st.CrashForTest(b5, 13); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendBlock(b5); !errors.Is(err, errStoreClosed) {
		t.Fatalf("append after crash: %v, want errStoreClosed", err)
	}

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	replica := freshReplica(t, genesis, miners)
	loaded, err := st2.Load(replica)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 4 || replica.Height() != 4 {
		t.Fatalf("recovered %d blocks to height %d, want the 4 flushed records", loaded, replica.Height())
	}
	// The torn tail is gone: appending the lost block again must leave
	// a cleanly replayable log.
	if err := st2.AppendBlock(b5); err != nil {
		t.Fatal(err)
	}
	b6, _ := c.BlockAt(6)
	if err := st2.AppendBlock(b6); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	replica2 := freshReplica(t, genesis, miners)
	if _, err := st3.Load(replica2); err != nil {
		t.Fatal(err)
	}
	if replica2.Height() != 6 {
		t.Fatalf("post-recovery height %d, want 6", replica2.Height())
	}
}
