package daemon

import (
	"context"
	"errors"
	"testing"
	"time"

	"bcwan/internal/chain"
	"bcwan/internal/p2p"
	"bcwan/internal/rpc"
)

// syncTestNode builds a node with fast sync knobs: a small snapshot
// interval and chunk size so a short chain crosses several commitment
// boundaries and a snapshot spans multiple chunks, and a 10ms retry
// tick so the state machine converges within test deadlines.
func syncTestNode(t *testing.T, f *relayFixture, tr p2p.Transport, tweak func(*NodeConfig), peers ...string) *Node {
	t.Helper()
	cfg := NodeConfig{
		Genesis:             f.genesis,
		Params:              f.params,
		Miners:              f.miners,
		Peers:               peers,
		Transport:           tr,
		MineInterval:        time.Hour,
		RelayRequestTimeout: 100 * time.Millisecond,
		SnapshotInterval:    8,
		SnapshotMinGap:      4,
		SnapshotChunkSize:   256,
		SyncRetryInterval:   10 * time.Millisecond,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

// TestSnapshotChunksAssembleRoundTrip covers the transfer encoding: a
// serialized UTXO set split into chunks reassembles against its
// commitment, and any corruption, truncation or loss is rejected with
// ErrBadCommitment before the bytes could reach the chain.
func TestSnapshotChunksAssembleRoundTrip(t *testing.T) {
	c, _, _ := storedChain(t, 3)
	data := c.UTXO().SerializeUTXO()
	commit := &chain.SnapshotCommitment{
		Height:   c.Height(),
		UTXOHash: chain.SnapshotHash(data),
		UTXOSize: int64(len(data)),
	}

	chunks := SnapshotChunks(data, 16)
	if len(chunks) < 2 {
		t.Fatalf("chunk size 16 produced %d chunks for %d bytes", len(chunks), len(data))
	}
	utxo, err := AssembleSnapshot(commit, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if utxo.TotalValue() != c.UTXO().TotalValue() {
		t.Fatal("reassembled set differs from the original")
	}

	// A single chunk at the default size round-trips too.
	if one := SnapshotChunks(data, 0); len(one) != 1 {
		t.Fatalf("default chunk size split %d bytes into %d chunks", len(data), len(one))
	}

	// One flipped byte anywhere fails the commitment hash.
	bad := make([][]byte, len(chunks))
	copy(bad, chunks)
	bad[1] = append([]byte(nil), chunks[1]...)
	bad[1][0] ^= 0xff
	if _, err := AssembleSnapshot(commit, bad); !errors.Is(err, chain.ErrBadCommitment) {
		t.Fatalf("corrupted chunk: err = %v, want ErrBadCommitment", err)
	}

	// A truncated final chunk fails the size check.
	trunc := make([][]byte, len(chunks))
	copy(trunc, chunks)
	last := chunks[len(chunks)-1]
	trunc[len(trunc)-1] = last[:len(last)-1]
	if _, err := AssembleSnapshot(commit, trunc); !errors.Is(err, chain.ErrBadCommitment) {
		t.Fatalf("truncated chunk: err = %v, want ErrBadCommitment", err)
	}

	// A dropped chunk fails the size check.
	if _, err := AssembleSnapshot(commit, chunks[:len(chunks)-1]); !errors.Is(err, chain.ErrBadCommitment) {
		t.Fatalf("missing chunk: err = %v, want ErrBadCommitment", err)
	}
}

// TestSnapshotBootstrapEndToEnd is the tentpole happy path: a fresh
// joiner behind a 24-block mesh fetches the header spine, bootstraps
// from the miner's signed snapshot at height 24, and goes live as a
// pruned replica that still settles payments.
func TestSnapshotBootstrapEndToEnd(t *testing.T) {
	f := newRelayFixture(t, 1)
	tr := p2p.NewMemTransport()
	miner := syncTestNode(t, f, tr, func(cfg *NodeConfig) { cfg.MinerKey = f.miner })
	for i := 0; i < 24; i++ {
		if _, err := miner.MineNow(); err != nil {
			t.Fatal(err)
		}
	}

	joiner := syncTestNode(t, f, tr, nil, miner.P2PAddr())
	waitCond(t, "joiner to go live at the miner's tip", func() bool {
		return joiner.SyncInfo().Phase == "live" && joiner.Chain().Height() == 24
	})
	if joiner.Chain().Tip().ID() != miner.Chain().Tip().ID() {
		t.Fatal("joiner tip differs from miner tip")
	}
	si := joiner.SyncInfo()
	if si.FullSyncFallback {
		t.Fatal("bootstrap fell back to a full sync")
	}
	if si.SnapshotHeight != 24 {
		t.Fatalf("snapshot height = %d, want 24", si.SnapshotHeight)
	}
	if got := joiner.Chain().PruneBase(); got != 24 {
		t.Fatalf("joiner prune base = %d, want 24 (the snapshot horizon)", got)
	}
	if b, ok := joiner.Chain().BlockAt(1); !ok || len(b.Txs) != 0 {
		t.Fatal("pre-horizon block should be a header-only stub")
	}
	if got := daemonCounter(joiner, "sync_headers_total"); got != 24 {
		t.Fatalf("headers synced = %d, want 24", got)
	}
	if si.SnapshotChunksTotal < 2 || si.SnapshotChunksGot != si.SnapshotChunksTotal {
		t.Fatalf("chunks = %d/%d, want a complete multi-chunk download",
			si.SnapshotChunksGot, si.SnapshotChunksTotal)
	}
	if got := daemonCounter(miner, "snapshot_chunks_served_total"); got == 0 {
		t.Fatal("miner served no snapshot chunks")
	}

	// The same progress surface is served over RPC.
	var rpcInfo SyncInfo
	if err := rpc.NewClient(joiner.RPCAddr()).Call(context.Background(), "getsyncinfo", &rpcInfo); err != nil {
		t.Fatal(err)
	}
	if rpcInfo.Phase != "live" || rpcInfo.PruneBase != 24 || rpcInfo.ChainHeight != 24 {
		t.Fatalf("getsyncinfo = %+v", rpcInfo)
	}

	// The pruned joiner still participates: a payment submitted to it
	// pools on the miner, and the mined block extends both replicas.
	tx, err := f.wallets[0].BuildPayment(joiner.Chain().UTXO(), f.wallets[0].PubKeyHash(), 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := joiner.Ledger().Submit(tx); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "miner to pool the payment", func() bool { return miner.Ledger().Pool.Len() == 1 })
	if _, err := miner.MineNow(); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "joiner to adopt block 25", func() bool { return joiner.Chain().Height() == 25 })
	spender, h, ok := joiner.Chain().FindSpender(tx.Inputs[0].Prev)
	if !ok || h != 25 || spender.ID() != tx.ID() {
		t.Fatalf("payment not settled on the pruned joiner (found %v at %d)", ok, h)
	}
}

// TestSnapshotTamperFallsBackToFullSync puts a lying snapshot peer in
// the joiner's way: the served chunks fail the commitment hash, the
// peer is abandoned, and — with no other snapshot source — the joiner
// completes a full body sync from genesis without ever installing the
// bad state.
func TestSnapshotTamperFallsBackToFullSync(t *testing.T) {
	f := newRelayFixture(t, 1)
	tr := p2p.NewMemTransport()
	miner := syncTestNode(t, f, tr, func(cfg *NodeConfig) {
		cfg.MinerKey = f.miner
		cfg.TamperSnapshot = func(_ int64, chunk int32, payload []byte) []byte {
			if chunk != 0 || len(payload) == 0 {
				return payload
			}
			bad := append([]byte(nil), payload...)
			bad[0] ^= 0xff
			return bad
		}
	})
	for i := 0; i < 24; i++ {
		if _, err := miner.MineNow(); err != nil {
			t.Fatal(err)
		}
	}

	joiner := syncTestNode(t, f, tr, nil, miner.P2PAddr())
	waitCond(t, "joiner to finish a full sync", func() bool {
		return joiner.SyncInfo().Phase == "live" && joiner.Chain().Height() == 24
	})
	if !joiner.SyncInfo().FullSyncFallback {
		t.Fatal("expected the full-sync fallback after the tampered snapshot")
	}
	if daemonCounter(joiner, "snapshot_rejected_total") == 0 {
		t.Fatal("tampered snapshot was never counted as rejected")
	}
	if daemonCounter(joiner, "sync_full_fallbacks_total") != 1 {
		t.Fatal("full-sync fallback not counted")
	}
	if joiner.Chain().PruneBase() != 0 {
		t.Fatal("fallback must not leave a prune horizon")
	}
	if b, ok := joiner.Chain().BlockAt(1); !ok || len(b.Txs) == 0 {
		t.Fatal("full sync should restore complete bodies")
	}
	if joiner.Chain().Tip().ID() != miner.Chain().Tip().ID() {
		t.Fatal("joiner tip differs from miner tip")
	}
}

// TestSnapshotBootstrapPrefersHonestPeer gives the joiner two snapshot
// sources — one tampering, one honest — and checks the deterministic
// failover lands on the honest one instead of degrading to a full sync.
func TestSnapshotBootstrapPrefersHonestPeer(t *testing.T) {
	f := newRelayFixture(t, 1)
	tr := p2p.NewMemTransport()
	tamper := func(cfg *NodeConfig) {
		cfg.MinerKey = f.miner
		cfg.TamperSnapshot = func(_ int64, chunk int32, payload []byte) []byte {
			if chunk != 0 || len(payload) == 0 {
				return payload
			}
			bad := append([]byte(nil), payload...)
			bad[0] ^= 0xff
			return bad
		}
	}
	liar := syncTestNode(t, f, tr, tamper)
	for i := 0; i < 24; i++ {
		if _, err := liar.MineNow(); err != nil {
			t.Fatal(err)
		}
	}
	// The honest node replicates the liar's chain (the tamper hook only
	// rewrites served snapshot chunks, not blocks), then serves joiners.
	honest := syncTestNode(t, f, tr, func(cfg *NodeConfig) { cfg.SnapshotSyncDisabled = true }, liar.P2PAddr())
	waitCond(t, "honest node to replicate the chain", func() bool {
		return honest.SyncInfo().Phase == "live" && honest.Chain().Height() == 24
	})
	// An honest full replica can serve snapshots once it holds a
	// verifiable commitment; the liar's mine-time broadcasts predate it,
	// so hand it one directly.
	waitCond(t, "honest node to cache a commitment", func() bool {
		honest.onSnapCommit("test", p2p.Message{Payload: mustServeCommit(t, liar).Serialize()})
		honest.sync.mu.Lock()
		defer honest.sync.mu.Unlock()
		return honest.sync.serveCommit != nil
	})

	joiner := syncTestNode(t, f, tr, nil, liar.P2PAddr(), honest.P2PAddr())
	waitCond(t, "joiner to bootstrap from the honest peer", func() bool {
		return joiner.SyncInfo().Phase == "live" && joiner.Chain().Height() == 24
	})
	if joiner.SyncInfo().FullSyncFallback {
		t.Fatal("joiner degraded to a full sync despite an honest snapshot peer")
	}
	if joiner.Chain().PruneBase() != 24 {
		t.Fatalf("joiner prune base = %d, want 24", joiner.Chain().PruneBase())
	}
	if joiner.Chain().Tip().ID() != honest.Chain().Tip().ID() {
		t.Fatal("joiner tip differs")
	}
}

// mustServeCommit reads a node's cached serving commitment.
func mustServeCommit(t *testing.T, n *Node) *chain.SnapshotCommitment {
	t.Helper()
	n.sync.mu.Lock()
	defer n.sync.mu.Unlock()
	if n.sync.serveCommit == nil {
		t.Fatal("node has no serving commitment")
	}
	return n.sync.serveCommit
}

// TestPrunedNodeRestartSettlesPayments runs a pruning miner against a
// store, restarts it from the v2 pruned snapshot, and checks the
// revived node still mines and settles payments with every body below
// the horizon gone.
func TestPrunedNodeRestartSettlesPayments(t *testing.T) {
	f := newRelayFixture(t, 1)
	dir := t.TempDir()
	tr := p2p.NewMemTransport()
	mk := func() *Node {
		return syncTestNode(t, f, tr, func(cfg *NodeConfig) {
			cfg.MinerKey = f.miner
			cfg.PruneDepth = 4
			cfg.StoreCompactEvery = 4
		})
	}

	n1 := mk()
	if _, err := n1.Open(dir); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := n1.MineNow(); err != nil {
			t.Fatal(err)
		}
	}
	if n1.Chain().PruneBase() == 0 {
		t.Fatal("compaction never pruned")
	}
	tip := n1.Chain().Tip().ID()
	if err := n1.Close(); err != nil {
		t.Fatal(err)
	}

	n2 := mk()
	loaded, err := n2.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded == 0 {
		t.Fatal("restart loaded nothing from the store")
	}
	if n2.Chain().Height() != 12 || n2.Chain().Tip().ID() != tip {
		t.Fatalf("restart height = %d, tip match %v", n2.Chain().Height(), n2.Chain().Tip().ID() == tip)
	}
	base := n2.Chain().PruneBase()
	if base == 0 {
		t.Fatal("restart lost the prune horizon")
	}
	if b, ok := n2.Chain().BlockAt(base); !ok || len(b.Txs) != 0 {
		t.Fatalf("height %d should be a header-only stub after restart", base)
	}
	// The restarting miner re-offers its boundary commitment.
	if mustServeCommit(t, n2).Height != 8 {
		t.Fatalf("restart commitment height = %d, want 8", mustServeCommit(t, n2).Height)
	}

	tx, err := f.wallets[0].BuildPayment(n2.Chain().UTXO(), f.wallets[0].PubKeyHash(), 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n2.Ledger().Submit(tx); err != nil {
		t.Fatal(err)
	}
	if _, err := n2.MineNow(); err != nil {
		t.Fatal(err)
	}
	spender, h, ok := n2.Chain().FindSpender(tx.Inputs[0].Prev)
	if !ok || h != 13 || spender.ID() != tx.ID() {
		t.Fatalf("payment not settled after restart (found %v at %d)", ok, h)
	}
}
