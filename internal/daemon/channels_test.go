package daemon

import (
	"context"
	"crypto/rand"
	"errors"
	"strings"
	"testing"
	"time"

	"bcwan/internal/bccrypto"
	"bcwan/internal/chain"
	"bcwan/internal/channel"
	"bcwan/internal/device"
	"bcwan/internal/gateway"
	"bcwan/internal/lora"
	"bcwan/internal/p2p"
	"bcwan/internal/recipient"
	"bcwan/internal/rpc"
	"bcwan/internal/wallet"
)

// enableChannels switches both cluster daemons to channel settlement with
// short timeouts, returning the two managers.
func (c *cluster) enableChannels(t *testing.T) (gw, rcpt *ChannelManager) {
	t.Helper()
	ccfg := DefaultChannelConfig()
	ccfg.OpenTimeout = 5 * time.Second
	ccfg.UpdateTimeout = 5 * time.Second
	gw, err := c.gwd.EnableChannels(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	rcpt, err = c.rcptd.EnableChannels(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if gw == nil || rcpt == nil {
		t.Fatal("channel managers not enabled")
	}
	return gw, rcpt
}

// provisionSensor registers one device with the recipient daemon and
// returns the simulated hardware.
func (c *cluster) provisionSensor(t *testing.T, eui lora.DevEUI) *device.Device {
	t.Helper()
	sharedKey := make([]byte, bccrypto.AESKeySize)
	if _, err := rand.Read(sharedKey); err != nil {
		t.Fatal(err)
	}
	nodeKey, err := bccrypto.GenerateRSA512(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := device.New(device.Provisioning{
		DevEUI:        eui,
		SharedKey:     sharedKey,
		SigningKey:    nodeKey,
		RecipientAddr: c.rcptd.Recipient.Wallet().PubKeyHash(),
	}, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	c.rcptd.Recipient.Provision(eui, recipient.DeviceInfo{SharedKey: sharedKey, NodePub: nodeKey.Public()})
	return dev
}

// uplink runs one full key-request + data-frame exchange through the
// gateway daemon.
func (c *cluster) uplink(t *testing.T, dev *device.Device, payload []byte) {
	t.Helper()
	keyResp, err := c.gwd.HandleUplink(dev.KeyRequestFrame())
	if err != nil {
		t.Fatal(err)
	}
	dataFrame, err := dev.DataFrame(payload, keyResp.Payload, keyResp.Counter)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.gwd.HandleUplink(dataFrame); err != nil {
		t.Fatal(err)
	}
}

// publishBinding funds the recipient and mines its @R → IP binding.
func (c *cluster) publishBinding(t *testing.T) {
	t.Helper()
	c.fundRecipient(100_000)
	bindTx, err := c.rcptd.PublishBinding(1)
	if err != nil {
		t.Fatal(err)
	}
	c.waitPooled(c.master, bindTx.ID())
	c.mine()
}

// TestChannelDeliveryEndToEnd streams several deliveries through one
// payment channel — no block is mined between them — then settles the
// whole batch with a single on-chain close.
func TestChannelDeliveryEndToEnd(t *testing.T) {
	c := newCluster(t)
	_, rcptMgr := c.enableChannels(t)
	c.publishBinding(t)
	dev := c.provisionSensor(t, lora.DevEUI{0xc4, 1})

	const deliveries = 3
	heightBefore := c.master.Chain().Height()
	for i := 0; i < deliveries; i++ {
		c.uplink(t, dev, []byte("reading"))
	}
	// Every delivery settled synchronously off-chain: the plaintext is in
	// the inbox already, with zero blocks mined in between.
	if got := len(c.rcptd.Inbox()); got != deliveries {
		t.Fatalf("inbox = %d, want %d", got, deliveries)
	}
	if got := c.master.Chain().Height(); got != heightBefore {
		t.Fatalf("height moved %d → %d during off-chain settling", heightBefore, got)
	}
	if got := c.gwd.Gateway.Stats.OffChainClaims; got != deliveries {
		t.Fatalf("gateway off-chain claims = %d, want %d", got, deliveries)
	}
	if got := c.gwd.Gateway.Stats.Claims; got != 0 {
		t.Fatalf("gateway on-chain claims = %d, want 0", got)
	}
	if got := c.rcptd.Recipient.Stats.OffChainSettles; got != deliveries {
		t.Fatalf("recipient off-chain settles = %d, want %d", got, deliveries)
	}

	// One payer channel holding all three acked updates.
	list, err := rcptMgr.ListChannels()
	if err != nil {
		t.Fatal(err)
	}
	summaries := list.([]ChannelSummary)
	if len(summaries) != 1 {
		t.Fatalf("channels = %d, want 1", len(summaries))
	}
	sum := summaries[0]
	wantPaid := uint64(deliveries) * gateway.DefaultConfig().Price
	if sum.Paid != wantPaid || sum.Version != deliveries || sum.AckedVersion != deliveries {
		t.Fatalf("channel summary = %+v, want paid %d at version %d", sum, wantPaid, deliveries)
	}

	// Confirm the funding, then close: the gateway broadcasts its latest
	// commitment and one mined block settles the whole batch.
	c.mine()
	if _, err := rcptMgr.CloseChannel(sum.ID); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		c.mine()
		if got := c.gwd.Gateway.Wallet().Balance(c.gwd.Node.Ledger().UTXO()); got == wantPaid {
			break
		} else if got > wantPaid {
			t.Fatalf("gateway balance = %d, want %d", got, wantPaid)
		}
		if time.Now().After(deadline) {
			t.Fatalf("gateway never received the %d batched payout", wantPaid)
		}
		time.Sleep(10 * time.Millisecond)
	}
	info, err := rcptMgr.ChannelInfo(sum.ID)
	if err != nil {
		t.Fatal(err)
	}
	if status := info.(ChannelSummary).Status; status == "open" {
		t.Fatalf("channel still open after close (status %q)", status)
	}
}

// TestChannelCloseAndRefundMempoolAcceptance pins the daemon mempool and
// miner behavior for the two channel-settlement transactions: a
// commitment close is accepted and mined immediately, while a CLTV
// refund is rejected as non-final until the next block height reaches
// the refund height, and accepted exactly there.
func TestChannelCloseAndRefundMempoolAcceptance(t *testing.T) {
	c := newCluster(t)
	ledger := c.master.Ledger()
	payerW := c.funds
	payeeW, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}

	// Channel 1: fund, one off-chain update, close with the commitment.
	payer, funding, err := channel.OpenPayer(payerW, ledger, nil, payeeW.PublicBytes(), 10_000, 1, 1, 100, "")
	if err != nil {
		t.Fatal(err)
	}
	payee, err := channel.AcceptPayee(payeeW, ledger, nil, funding, payer.State().Params, "")
	if err != nil {
		t.Fatal(err)
	}
	c.mine() // confirm the funding
	u, err := payer.SignUpdate(400)
	if err != nil {
		t.Fatal(err)
	}
	gwSig, err := payee.ApplyUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	if err := payer.NoteAck(u.Version, gwSig); err != nil {
		t.Fatal(err)
	}
	closeTx, err := payee.Close()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ledger.PendingTx(closeTx.ID()); !ok {
		t.Fatal("close commitment not in the mempool")
	}
	c.mine()
	if _, _, ok := ledger.FindTx(closeTx.ID()); !ok {
		t.Fatal("close commitment not mined")
	}
	if got := payeeW.Balance(ledger.UTXO()); got != 400 {
		t.Fatalf("payee balance = %d, want 400", got)
	}

	// Channel 2: abandoned. The refund transaction carries
	// LockTime = refundHeight, so the mempool (validating for the next
	// block) rejects it while next height < refundHeight and accepts it
	// as soon as the next block is the refund height.
	const refundWindow = 5
	payer2, funding2, err := channel.OpenPayer(payerW, ledger, nil, payeeW.PublicBytes(), 5_000, 1, 1, refundWindow, "")
	if err != nil {
		t.Fatal(err)
	}
	refundHeight := payer2.State().RefundHeight
	c.mine() // confirm the funding
	for ledger.Height() < refundHeight-2 {
		c.mine()
	}
	refund, err := payerW.BuildChannelRefund(
		chain.OutPoint{TxID: funding2.ID(), Index: 0}, funding2.Outputs[0], refundHeight, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ledger.Submit(refund); !errors.Is(err, chain.ErrTxNotFinal) {
		t.Fatalf("refund below CLTV height: err = %v, want ErrTxNotFinal", err)
	}
	c.mine() // next block height is now exactly refundHeight
	if err := ledger.Submit(refund); err != nil {
		t.Fatalf("refund at CLTV boundary rejected: %v", err)
	}
	c.mine()
	if _, height, ok := ledger.FindTx(refund.ID()); !ok || height != refundHeight {
		t.Fatalf("refund mined at height %d (found %v), want %d", height, ok, refundHeight)
	}
}

// TestChannelRPCMethods drives the channel subsystem through JSON-RPC:
// openchannel / getchannelinfo / listchannels / closechannel on an
// enabled daemon, and the disabled error on a bare node.
func TestChannelRPCMethods(t *testing.T) {
	c := newCluster(t)
	c.enableChannels(t)
	c.fundRecipient(50_000)

	ctx := context.Background()

	// The master never enabled channels: its methods exist but fail.
	bare := rpc.NewClient(c.master.RPCAddr())
	var out ChannelSummary
	err := bare.Call(ctx, "openchannel", &out, c.gwd.Node.P2PAddr())
	if err == nil || !strings.Contains(err.Error(), "channel subsystem disabled") {
		t.Fatalf("openchannel on bare node: %v", err)
	}

	client := rpc.NewClient(c.rcptd.Node.RPCAddr())
	if err := client.Call(ctx, "openchannel", &out, c.gwd.Node.P2PAddr(), uint64(7_000)); err != nil {
		t.Fatal(err)
	}
	if out.Status != "open" || out.Role != "payer" || out.Capacity != 7_000 {
		t.Fatalf("openchannel result = %+v", out)
	}

	var info ChannelSummary
	if err := client.Call(ctx, "getchannelinfo", &info, out.ID); err != nil {
		t.Fatal(err)
	}
	if info.ID != out.ID || info.RefundHeight != out.RefundHeight {
		t.Fatalf("getchannelinfo = %+v, want %+v", info, out)
	}

	// The gateway daemon sees the same channel from the payee side.
	gwClient := rpc.NewClient(c.gwd.Node.RPCAddr())
	var gwInfo ChannelSummary
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := gwClient.Call(ctx, "getchannelinfo", &gwInfo, out.ID); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("gateway never accepted the channel: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if gwInfo.Role != "payee" || gwInfo.Capacity != 7_000 {
		t.Fatalf("gateway getchannelinfo = %+v", gwInfo)
	}

	var list []ChannelSummary
	if err := client.Call(ctx, "listchannels", &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != out.ID {
		t.Fatalf("listchannels = %+v", list)
	}

	if err := client.Call(ctx, "closechannel", &info, out.ID); err != nil {
		t.Fatal(err)
	}
	if info.Status == "open" {
		t.Fatalf("closechannel left status %q", info.Status)
	}

	if err := client.Call(ctx, "getchannelinfo", &info, "zz-not-a-hash"); err == nil {
		t.Fatal("getchannelinfo accepted a bad id")
	}
}

// TestChannelFundRejectsShortRefundHeight drives the payee handlers
// directly with a hostile funder: an open whose refund window is below
// the gateway's floor is refused, and a funding whose RefundHeight is
// nearly reached (which would let the funder take a key and immediately
// reclaim the capacity via CLTV) never creates a channel.
func TestChannelFundRejectsShortRefundHeight(t *testing.T) {
	c := newCluster(t)
	gwMgr, _ := c.enableChannels(t)
	payerW := c.funds

	// Refund window below the payee's configured floor: refused at open.
	short := &p2p.MsgChannelOpen{RecipientPub: payerW.PublicBytes(), Capacity: 5_000, RefundWindow: 3}
	gwMgr.onChanOpen("127.0.0.1:1", p2p.Message{Type: p2p.MsgTypeChannelOpen, Payload: short.Encode()})
	gwMgr.mu.Lock()
	_, pending := gwMgr.pendingOpens["127.0.0.1:1"]
	gwMgr.mu.Unlock()
	if pending {
		t.Fatal("gateway accepted an open below its refund-window floor")
	}

	// Honest open terms, then a funding that shrinks the refund height.
	open := &p2p.MsgChannelOpen{
		RecipientPub: payerW.PublicBytes(),
		Capacity:     5_000,
		RefundWindow: DefaultChannelConfig().RefundWindow,
	}
	gwMgr.onChanOpen("127.0.0.1:1", p2p.Message{Type: p2p.MsgTypeChannelOpen, Payload: open.Encode()})
	height := c.gwd.Node.Ledger().Height()
	params := channel.Params{
		GatewayPub:   c.gwd.Gateway.Wallet().PublicBytes(),
		RecipientPub: payerW.PublicBytes(),
		Capacity:     5_000,
		CloseFee:     1,
		RefundHeight: height + 1,
	}
	funding, err := payerW.BuildChannelFunding(c.gwd.Node.Ledger().UTXO(), params.ScriptParams(), 5_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	fund := &p2p.MsgChannelFund{
		ChannelID:    funding.ID(),
		RefundHeight: height + 1,
		CloseFee:     1,
		FundingTx:    funding.Serialize(),
	}
	gwMgr.onChanFund("127.0.0.1:1", p2p.Message{Type: p2p.MsgTypeChannelFund, Payload: fund.Encode()})
	list, err := gwMgr.ListChannels()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(list.([]ChannelSummary)); got != 0 {
		t.Fatalf("gateway opened %d channels on a near-expiry funding, want 0", got)
	}
}

// TestChannelPayeeClosesBeforeRefundDeadline runs a channel into its CLTV
// deadline: the gateway's block subscriber must broadcast its commitment
// within CloseMargin of the refund height, and the payer must never
// confiscate the acked balance through the full-capacity refund.
func TestChannelPayeeClosesBeforeRefundDeadline(t *testing.T) {
	c := newCluster(t)
	ccfg := DefaultChannelConfig()
	ccfg.RefundWindow = 12
	ccfg.CloseMargin = 4
	ccfg.OpenTimeout = 5 * time.Second
	ccfg.UpdateTimeout = 5 * time.Second
	if _, err := c.gwd.EnableChannels(ccfg); err != nil {
		t.Fatal(err)
	}
	rcptMgr, err := c.rcptd.EnableChannels(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	c.publishBinding(t)
	dev := c.provisionSensor(t, lora.DevEUI{0xc4, 9})
	c.uplink(t, dev, []byte("reading"))
	wantPaid := gateway.DefaultConfig().Price

	list, err := rcptMgr.ListChannels()
	if err != nil {
		t.Fatal(err)
	}
	summaries := list.([]ChannelSummary)
	if len(summaries) != 1 {
		t.Fatalf("channels = %d, want 1", len(summaries))
	}
	refundHeight := summaries[0].RefundHeight

	// Mine through the deadline and past the refund height: the payee's
	// deadline close must land, crediting exactly the earned balance.
	deadline := time.Now().Add(20 * time.Second)
	for {
		c.mine()
		bal := c.gwd.Gateway.Wallet().Balance(c.master.Ledger().UTXO())
		if bal == wantPaid && c.master.Chain().Height() > refundHeight+1 {
			break
		}
		if bal > wantPaid {
			t.Fatalf("gateway balance = %d, want %d", bal, wantPaid)
		}
		if time.Now().After(deadline) {
			t.Fatalf("gateway balance = %d at height %d, want %d before refund height %d",
				bal, c.master.Chain().Height(), wantPaid, refundHeight)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The payer side never refunded the channel out from under the payee.
	info, err := rcptMgr.ChannelInfo(summaries[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if status := info.(ChannelSummary).Status; status == "refunded" {
		t.Fatalf("payer refunded a channel with an acked balance (status %q)", status)
	}
	if got := c.gwd.Gateway.Wallet().Balance(c.master.Ledger().UTXO()); got != wantPaid {
		t.Fatalf("gateway balance after refund window = %d, want %d", got, wantPaid)
	}
}

// TestNoChannelsEscapeHatch proves the -no-channels escape hatch: a
// recipient node configured with NoChannels ignores EnableChannels and
// every delivery settles through the legacy on-chain path even when the
// gateway advertises a channel endpoint.
func TestNoChannelsEscapeHatch(t *testing.T) {
	c := newCluster(t)
	// Rebuild the recipient daemon on a NoChannels node.
	rcptNode, err := NewNode(NodeConfig{
		Genesis:    c.master.Chain().Genesis(),
		Params:     c.params,
		Miners:     [][]byte{},
		Peers:      []string{c.master.P2PAddr(), c.gwd.Node.P2PAddr()},
		NoChannels: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rcptNode.Close() })
	rcptd, err := NewRecipientDaemon(rcptNode, recipient.DefaultConfig(), "127.0.0.1:0", rand.Reader, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rcptd.Close() })
	c.rcptd = rcptd

	ccfg := DefaultChannelConfig()
	if _, err := c.gwd.EnableChannels(ccfg); err != nil {
		t.Fatal(err)
	}
	mgr, err := rcptd.EnableChannels(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if mgr != nil {
		t.Fatal("NoChannels node still enabled channels")
	}

	c.publishBinding(t)
	dev := c.provisionSensor(t, lora.DevEUI{0xc4, 2})
	received := make(chan *recipient.Message, 1)
	rcptd.OnReceive(func(m *recipient.Message) { received <- m })
	c.uplink(t, dev, []byte("on-chain"))

	// The on-chain exchange needs the claim mined before it settles.
	deadline := time.Now().Add(15 * time.Second)
	for {
		c.mine()
		select {
		case msg := <-received:
			if string(msg.Plaintext) != "on-chain" {
				t.Fatalf("plaintext = %q", msg.Plaintext)
			}
			if got := c.gwd.Gateway.Stats.OffChainClaims; got != 0 {
				t.Fatalf("off-chain claims = %d, want 0", got)
			}
			if got := c.gwd.Gateway.Stats.Claims; got != 1 {
				t.Fatalf("on-chain claims = %d, want 1", got)
			}
			return
		default:
			if time.Now().After(deadline) {
				t.Fatal("exchange never settled on-chain")
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}
