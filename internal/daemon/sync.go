package daemon

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"time"

	"bcwan/internal/chain"
	"bcwan/internal/p2p"
)

// Headers-first sync and snapshot bootstrap (DESIGN.md §13). A joining
// node walks a state machine — headers → snapshot → tail → live —
// instead of replaying every block from genesis:
//
//  1. headers: fetch the header spine with locator-based getheaders
//     batches, validating linkage, miner membership and signatures as
//     batches arrive. The spine pins every block ID below the tip.
//  2. snapshot: fetch a miner-signed snapshot commitment (the manifest)
//     and the serialized UTXO set it commits to, in checksummed chunks.
//     The commitment is trusted only if its signature verifies against
//     the authorized miner set AND its block ID matches our own spine
//     at that height AND the assembled bytes hash to the committed
//     value. A peer that fails any check is abandoned for the next;
//     when every peer has failed, the machine falls back to a full
//     sync from genesis — it never installs unverified state.
//  3. tail: fetch full bodies for the spine IDs above the snapshot
//     horizon (or above genesis, in the fallback) as direct getdata
//     batches served by the PR 5 relay.
//  4. live: the machine retires; ongoing replication is the relay's
//     inv/compact-block gossip plus the legacy sync anti-entropy.
//
// Every phase is driven by a retry ticker with deterministic peer
// rotation (sorted peer names, round-robin counter), so chaos runs
// replay identically under a fixed seed.

// Sync phases.
const (
	syncHeaders = iota
	syncSnapshot
	syncTail
	syncLive
)

var syncPhaseNames = map[int]string{
	syncHeaders:  "headers",
	syncSnapshot: "snapshot",
	syncTail:     "tail",
	syncLive:     "live",
}

const (
	// headersBatchMax is the getheaders response cap; a full batch
	// signals the requester to immediately ask for more.
	headersBatchMax = 2000
	// syncStallTicks is how many retry ticks a phase may stall before
	// the machine gives up on it (headers/tail degrade to live, where
	// legacy anti-entropy takes over).
	syncStallTicks = 10
	// snapshotStallTicks is how many ticks a snapshot peer may stall
	// before the machine fails over to the next one.
	snapshotStallTicks = 4
	// maxSnapshotBytes bounds a snapshot download (UTXOSize claimed by
	// the manifest) so a lying manifest cannot demand the moon.
	maxSnapshotBytes = 1 << 30
)

// SyncInfo is the sync-progress surface exposed over RPC.
type SyncInfo struct {
	// Phase is "headers", "snapshot", "tail", "live" or "legacy" (no
	// sync machine configured).
	Phase       string `json:"phase"`
	ChainHeight int64  `json:"chainheight"`
	// SpineHeight is the validated header spine tip (0 before any
	// headers arrive; meaningless in legacy mode).
	SpineHeight int64 `json:"spineheight"`
	PruneBase   int64 `json:"prunebase"`
	// SnapshotHeight is the horizon of the snapshot being downloaded or
	// installed (0 = none).
	SnapshotHeight      int64 `json:"snapshotheight"`
	SnapshotChunksGot   int   `json:"snapshotchunksgot"`
	SnapshotChunksTotal int   `json:"snapshotchunkstotal"`
	// FullSyncFallback reports that every snapshot peer failed and the
	// node reverted to a full sync from genesis.
	FullSyncFallback bool `json:"fullsyncfallback"`
}

// syncManager drives the bootstrap state machine and owns the node's
// snapshot-serving cache.
type syncManager struct {
	n *Node

	mu    sync.Mutex
	phase int
	spine *chain.HeaderChain
	// rot is the deterministic peer-rotation counter.
	rot   int
	stall int
	// lastTailHeight detects tail progress between ticks.
	lastTailHeight int64
	// headersSent records that the opening getheaders went out, so
	// later ticks only re-send after a silent interval.
	headersSent bool
	// tailReqEnd is the top of the last requested tail batch; the
	// connect hook sends the next batch once the chain reaches it.
	tailReqEnd int64

	// Snapshot download state.
	// held suppresses ticks until Node.Open has loaded the store (or
	// the first retry tick fires, for nodes that never open one), so a
	// network bootstrap cannot race the disk load into a half-initialized
	// chain.
	held bool

	snapPeer  string
	commit    *chain.SnapshotCommitment
	chunks    [][]byte
	got       int
	triedSnap map[string]bool
	fullOnly  bool
	installed int64

	// Snapshot serving state: the latest verified commitment and its
	// serialized set (built lazily on first request).
	serveCommit *chain.SnapshotCommitment
	serveData   []byte

	stop chan struct{}
	done chan struct{}
}

func newSyncManager(n *Node) *syncManager {
	return &syncManager{
		n:         n,
		phase:     syncHeaders,
		held:      true,
		spine:     chain.NewHeaderChain(n.cfg.Genesis, n.cfg.Miners),
		triedSnap: make(map[string]bool),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
}

// start launches the retry loop. Called once from NewNode after the
// initial peer connects.
func (sm *syncManager) start() {
	go sm.run()
}

func (sm *syncManager) run() {
	defer close(sm.done)
	ticker := time.NewTicker(sm.n.syncRetryInterval())
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			sm.release()
			if sm.tick() {
				return
			}
		case <-sm.stop:
			return
		}
	}
}

func (sm *syncManager) close() {
	sm.mu.Lock()
	if sm.phase != syncLive {
		sm.phase = syncLive
	}
	sm.mu.Unlock()
	select {
	case <-sm.stop:
	default:
		close(sm.stop)
	}
	<-sm.done
}

// active reports whether the machine is still bootstrapping (legacy
// sync broadcasts are suppressed while it is).
func (sm *syncManager) active() bool {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.phase != syncLive
}

// kick triggers an immediate retry step (RequestSync delegates here
// during bootstrap, so chaos pump rounds advance the machine).
func (sm *syncManager) kick() {
	sm.tick()
}

// release lifts the startup hold; ticks are no-ops until then.
func (sm *syncManager) release() {
	sm.mu.Lock()
	sm.held = false
	sm.mu.Unlock()
}

// tick advances the machine one retry step; returns true once live.
func (sm *syncManager) tick() bool {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if sm.held {
		return false
	}
	// Every phase self-paces off its responses (onHeaders chains the
	// next batch, onSnapshotChunk the next chunk, the block-connect hook
	// the next tail getdata), so a tick re-sends only after a full
	// silent interval (stall ≥ 2) — a fast retry tick must not flood
	// duplicates while a response is still being verified.
	switch sm.phase {
	case syncHeaders:
		sm.stall++
		if sm.stall > syncStallTicks {
			// Nobody answered. If the spine learned anything, fetch
			// those bodies; either way stop blocking the node — legacy
			// anti-entropy covers whatever was missed.
			if sm.spine.Height() > sm.n.chain.Height() {
				sm.toTailLocked()
			} else {
				sm.toLiveLocked()
			}
			return sm.phase == syncLive
		}
		if !sm.headersSent || sm.stall >= 2 {
			sm.sendGetHeadersLocked(sm.nextPeerLocked())
			sm.headersSent = true
		}
	case syncSnapshot:
		sm.stall++
		if sm.stall > snapshotStallTicks {
			sm.failSnapshotPeerLocked("stalled")
			return false
		}
		if sm.stall >= 2 {
			sm.resendSnapshotRequestLocked()
		}
	case syncTail:
		h := sm.n.chain.Height()
		if h > sm.lastTailHeight {
			sm.lastTailHeight = h
			sm.stall = 0
		}
		if h >= sm.spine.Height() {
			sm.toLiveLocked()
			return true
		}
		sm.stall++
		if sm.stall > syncStallTicks {
			sm.toLiveLocked()
			return true
		}
		if sm.stall >= 2 {
			sm.sendTailRequestLocked(sm.nextPeerLocked())
		}
	case syncLive:
		return true
	}
	return false
}

// nextPeerLocked rotates deterministically through the sorted peer set.
func (sm *syncManager) nextPeerLocked() string {
	peers := sm.n.gossip.Peers()
	if len(peers) == 0 {
		return ""
	}
	sort.Strings(peers)
	p := peers[sm.rot%len(peers)]
	sm.rot++
	return p
}

func (sm *syncManager) sendGetHeadersLocked(peer string) {
	if peer == "" {
		return
	}
	loc := sm.spine.Locator()
	msg := &p2p.MsgGetHeaders{Locator: make([][32]byte, len(loc)), Max: headersBatchMax}
	for i, id := range loc {
		msg.Locator[i] = id
	}
	sm.n.gossip.SendTo(peer, p2p.MsgTypeGetHeaders, msg.Encode())
}

// onHeaders consumes a headers batch: validate and connect to the
// spine, then either ask for more (full batch) or decide how to fetch
// state (short batch = the peer's tip).
func (sm *syncManager) onHeaders(from string, msg p2p.Message) {
	dec, err := p2p.DecodeHeaders(msg.Payload)
	if err != nil {
		sm.n.logf("headers from %s: %v", from, err)
		sm.n.misbehave(from, "undecodable headers")
		return
	}
	headers := make([]*chain.Header, 0, len(dec.Headers))
	for _, raw := range dec.Headers {
		h, err := chain.DeserializeHeader(raw)
		if err != nil {
			sm.n.logf("header from %s undecodable: %v", from, err)
			return
		}
		headers = append(headers, h)
	}
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if sm.phase != syncHeaders {
		return
	}
	added, err := sm.spine.Connect(headers)
	if added > 0 {
		sm.stall = 0
		sm.n.metrics.headersSynced.Add(uint64(added))
	}
	if err != nil {
		sm.n.logf("header spine from %s: %v", from, err)
		return
	}
	if len(headers) >= headersBatchMax {
		// Chain the next batch only off responses that taught us
		// something: a duplicate response (a stall retry crossing the
		// answer in flight) chaining too would double the request
		// stream every batch.
		if added > 0 {
			sm.sendGetHeadersLocked(from)
		}
		return
	}
	sm.decideLocked()
}

// decideLocked picks the state-fetch strategy once the spine stops
// growing: snapshot bootstrap for a fresh node far behind a snapshot-
// capable mesh, a plain tail fetch otherwise.
func (sm *syncManager) decideLocked() {
	our := sm.n.chain.Height()
	if sm.spine.Height() <= our {
		sm.toLiveLocked()
		return
	}
	useSnapshot := !sm.fullOnly &&
		!sm.n.cfg.SnapshotSyncDisabled &&
		our == 0 && // InitFromSnapshot needs an empty chain
		sm.spine.Height()-our >= sm.n.snapshotMinGap()
	if !useSnapshot {
		sm.toTailLocked()
		return
	}
	sm.phase = syncSnapshot
	sm.stall = 0
	sm.snapPeer = sm.nextUntriedSnapPeerLocked()
	if sm.snapPeer == "" {
		sm.fullOnly = true
		sm.toTailLocked()
		return
	}
	sm.requestManifestLocked()
}

func (sm *syncManager) nextUntriedSnapPeerLocked() string {
	peers := sm.n.gossip.Peers()
	sort.Strings(peers)
	for _, p := range peers {
		if !sm.triedSnap[p] {
			return p
		}
	}
	return ""
}

func (sm *syncManager) requestManifestLocked() {
	msg := &p2p.MsgGetSnapshot{Height: -1, Chunk: -1}
	sm.n.gossip.SendTo(sm.snapPeer, p2p.MsgTypeGetSnapshot, msg.Encode())
}

func (sm *syncManager) requestChunkLocked(chunk int32) {
	msg := &p2p.MsgGetSnapshot{Height: sm.commit.Height, Chunk: chunk}
	sm.n.gossip.SendTo(sm.snapPeer, p2p.MsgTypeGetSnapshot, msg.Encode())
}

func (sm *syncManager) resendSnapshotRequestLocked() {
	if sm.commit == nil {
		sm.requestManifestLocked()
		return
	}
	sm.requestChunkLocked(int32(sm.got))
}

// failSnapshotPeerLocked abandons the current snapshot peer and moves
// to the next untried one; when all are exhausted, falls back to a full
// sync from genesis.
func (sm *syncManager) failSnapshotPeerLocked(why string) {
	sm.n.logf("snapshot peer %s abandoned: %s", sm.snapPeer, why)
	if sm.snapPeer != "" {
		sm.triedSnap[sm.snapPeer] = true
	}
	sm.commit = nil
	sm.chunks = nil
	sm.got = 0
	sm.stall = 0
	sm.snapPeer = sm.nextUntriedSnapPeerLocked()
	if sm.snapPeer == "" {
		sm.fullOnly = true
		sm.n.metrics.syncFullFallbacks.Inc()
		sm.toTailLocked()
		return
	}
	sm.requestManifestLocked()
}

// onSnapshotChunk consumes manifest and chunk responses from the
// current snapshot peer.
func (sm *syncManager) onSnapshotChunk(from string, msg p2p.Message) {
	dec, err := p2p.DecodeSnapshotChunk(msg.Payload)
	if err != nil {
		sm.n.logf("snapshotchunk from %s: %v", from, err)
		sm.n.misbehave(from, "undecodable snapshotchunk")
		return
	}
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if sm.phase != syncSnapshot || from != sm.snapPeer {
		return
	}
	if dec.Chunk < 0 {
		sm.acceptManifestLocked(dec)
		return
	}
	if sm.commit == nil || dec.Height != sm.commit.Height || int(dec.Chunk) != sm.got {
		return
	}
	if len(dec.Payload) == 0 {
		sm.n.metrics.snapshotRejected.Inc()
		sm.failSnapshotPeerLocked("empty chunk")
		return
	}
	sm.chunks[sm.got] = dec.Payload
	sm.got++
	sm.stall = 0
	if sm.got < len(sm.chunks) {
		sm.requestChunkLocked(int32(sm.got))
		return
	}
	sm.installSnapshotLocked()
}

// acceptManifestLocked verifies a snapshot commitment against the miner
// set and our own validated spine before any chunk is downloaded.
func (sm *syncManager) acceptManifestLocked(dec *p2p.MsgSnapshotChunk) {
	if sm.commit != nil {
		return // already have one in flight
	}
	if len(dec.Manifest) == 0 || dec.Total <= 0 {
		sm.failSnapshotPeerLocked("no snapshot offered")
		return
	}
	commit, err := chain.DeserializeSnapshotCommitment(dec.Manifest)
	if err != nil {
		sm.n.metrics.snapshotRejected.Inc()
		sm.failSnapshotPeerLocked(fmt.Sprintf("manifest: %v", err))
		return
	}
	spineID, onSpine := sm.spine.IDAt(commit.Height)
	switch {
	case !sm.n.chain.IsAuthorizedMiner(commit.MinerPubKey):
		err = fmt.Errorf("unauthorized commitment signer")
	case !commit.VerifySignature():
		err = fmt.Errorf("bad commitment signature")
	case !onSpine || spineID != commit.BlockID:
		err = fmt.Errorf("commitment block %s at height %d not on our spine", commit.BlockID, commit.Height)
	case commit.Height <= sm.n.chain.Height():
		err = fmt.Errorf("commitment height %d not ahead of chain", commit.Height)
	case commit.UTXOSize <= 0 || commit.UTXOSize > maxSnapshotBytes:
		err = fmt.Errorf("implausible snapshot size %d", commit.UTXOSize)
	case int64(dec.Total) > commit.UTXOSize:
		err = fmt.Errorf("%d chunks for %d bytes", dec.Total, commit.UTXOSize)
	}
	if err != nil {
		sm.n.metrics.snapshotRejected.Inc()
		sm.failSnapshotPeerLocked(err.Error())
		return
	}
	sm.commit = commit
	sm.chunks = make([][]byte, dec.Total)
	sm.got = 0
	sm.stall = 0
	sm.requestChunkLocked(0)
}

// installSnapshotLocked verifies the assembled bytes against the
// commitment and installs the set through the chain's trusted path,
// persisting the result so a restart does not re-bootstrap.
func (sm *syncManager) installSnapshotLocked() {
	utxo, err := AssembleSnapshot(sm.commit, sm.chunks)
	if err != nil {
		sm.n.metrics.snapshotRejected.Inc()
		sm.failSnapshotPeerLocked(err.Error())
		return
	}
	headers := sm.spine.Headers(1, sm.commit.Height)
	if err := sm.n.chain.InitFromSnapshot(headers, utxo); err != nil {
		// Verified bytes that still refuse to install mean the local
		// chain moved (no longer empty) — not a peer fault. Finish the
		// join as a tail fetch.
		sm.n.logf("snapshot install: %v", err)
		sm.toTailLocked()
		return
	}
	sm.installed = sm.commit.Height
	sm.n.metrics.snapshotInstalledHeight.Set(sm.commit.Height)
	// Cache the verified snapshot so this node can serve joiners.
	sm.serveCommit = sm.commit
	sm.serveData = bytes.Join(sm.chunks, nil)
	if st := sm.n.store; st != nil {
		if err := st.Compact(sm.n.chain); err != nil {
			sm.n.logf("snapshot persist: %v", err)
		}
	}
	sm.n.logf("snapshot installed at height %d (%d chunks)", sm.commit.Height, len(sm.chunks))
	sm.toTailLocked()
}

func (sm *syncManager) toTailLocked() {
	sm.phase = syncTail
	sm.stall = 0
	sm.lastTailHeight = sm.n.chain.Height()
	sm.sendTailRequestLocked(sm.nextPeerLocked())
}

// sendTailRequestLocked asks a peer for the next batch of spine block
// bodies as a direct getdata — answered by the peer's relay exactly
// like any other inventory request.
func (sm *syncManager) sendTailRequestLocked(peer string) {
	if peer == "" {
		return
	}
	our := sm.n.chain.Height()
	var ids []p2p.ObjectID
	for h := our + 1; h <= sm.spine.Height() && len(ids) < maxSyncBlocks; h++ {
		id, ok := sm.spine.IDAt(h)
		if !ok {
			break
		}
		ids = append(ids, p2p.ObjectID(id))
	}
	if len(ids) == 0 {
		return
	}
	sm.tailReqEnd = our + int64(len(ids))
	sm.n.gossip.SendTo(peer, "getdata", p2p.EncodeInv("block", ids...))
}

// noteBlockConnected is called from acceptBlock whenever the chain
// grows: during the tail phase it requests the next getdata batch as
// soon as the previous one has fully connected, so the backfill is
// response-paced instead of waiting out a retry tick per batch.
func (sm *syncManager) noteBlockConnected() {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if sm.phase != syncTail {
		return
	}
	h := sm.n.chain.Height()
	if h > sm.lastTailHeight {
		sm.lastTailHeight = h
		sm.stall = 0
	}
	if h >= sm.spine.Height() {
		sm.toLiveLocked()
		return
	}
	if h >= sm.tailReqEnd {
		sm.sendTailRequestLocked(sm.nextPeerLocked())
	}
}

func (sm *syncManager) toLiveLocked() {
	if sm.phase != syncLive {
		sm.phase = syncLive
		sm.n.logf("sync live at height %d", sm.n.chain.Height())
		// Hand ongoing anti-entropy back to the legacy height blast; the
		// broadcast also announces this node to peers it dialed but never
		// messaged during bootstrap (inbound peers register on first
		// message).
		sm.n.legacySyncBroadcast()
	}
}

// info snapshots the machine state for RPC.
func (sm *syncManager) info() SyncInfo {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	si := SyncInfo{
		Phase:            syncPhaseNames[sm.phase],
		SpineHeight:      sm.spine.Height(),
		FullSyncFallback: sm.fullOnly,
		SnapshotHeight:   sm.installed,
	}
	if sm.commit != nil {
		si.SnapshotHeight = sm.commit.Height
		si.SnapshotChunksGot = sm.got
		si.SnapshotChunksTotal = len(sm.chunks)
	}
	return si
}

// --- Serving side -----------------------------------------------------

// onGetHeaders serves best-branch headers above the requester's
// locator. Pruned heights still serve — stubs keep their headers.
func (n *Node) onGetHeaders(from string, msg p2p.Message) {
	dec, err := p2p.DecodeGetHeaders(msg.Payload)
	if err != nil {
		n.misbehave(from, "undecodable getheaders")
		return
	}
	max := int(dec.Max)
	if max <= 0 || max > headersBatchMax {
		max = headersBatchMax
	}
	loc := make([]chain.Hash, len(dec.Locator))
	for i, id := range dec.Locator {
		loc[i] = id
	}
	headers := n.chain.HeadersAfter(loc, max)
	resp := &p2p.MsgHeaders{Headers: make([][]byte, len(headers))}
	for i, h := range headers {
		resp.Headers[i] = h.Serialize()
	}
	n.gossip.SendTo(from, p2p.MsgTypeHeaders, resp.Encode())
}

// onGetSnapshot serves the snapshot manifest (latest verified
// commitment) and its chunks.
func (n *Node) onGetSnapshot(from string, msg p2p.Message) {
	dec, err := p2p.DecodeGetSnapshot(msg.Payload)
	if err != nil {
		n.misbehave(from, "undecodable getsnapshot")
		return
	}
	sm := n.sync
	if sm == nil {
		return
	}
	sm.mu.Lock()
	commit, data := sm.serveCommit, sm.serveData
	if commit != nil && data == nil {
		data = sm.buildServeDataLocked()
	}
	sm.mu.Unlock()

	if dec.Chunk < 0 {
		resp := &p2p.MsgSnapshotChunk{Height: -1, Chunk: -1}
		if commit != nil && data != nil {
			resp.Height = commit.Height
			resp.Total = int32((len(data) + n.snapshotChunkSize() - 1) / n.snapshotChunkSize())
			resp.Manifest = commit.Serialize()
		}
		n.gossip.SendTo(from, p2p.MsgTypeSnapshotChunk, resp.Encode())
		return
	}
	if commit == nil || data == nil || dec.Height != commit.Height {
		return
	}
	chunks := SnapshotChunks(data, n.snapshotChunkSize())
	if int(dec.Chunk) >= len(chunks) {
		return
	}
	payload := chunks[dec.Chunk]
	if n.cfg.TamperSnapshot != nil {
		payload = n.cfg.TamperSnapshot(dec.Height, dec.Chunk, payload)
	}
	resp := &p2p.MsgSnapshotChunk{
		Height:  commit.Height,
		Chunk:   dec.Chunk,
		Total:   int32(len(chunks)),
		Payload: payload,
	}
	if n.gossip.SendTo(from, p2p.MsgTypeSnapshotChunk, resp.Encode()) {
		n.metrics.snapshotChunksServed.Inc()
	}
}

// buildServeDataLocked materializes the serialized set for the cached
// commitment by unwinding undo journals to the commitment height. A
// commitment the chain can no longer back (pruned past, failed hash)
// is dropped.
func (sm *syncManager) buildServeDataLocked() []byte {
	commit := sm.serveCommit
	u, err := sm.n.chain.StateAt(commit.Height)
	if err != nil {
		sm.n.logf("snapshot serve at %d: %v", commit.Height, err)
		sm.serveCommit = nil
		return nil
	}
	data := u.SerializeUTXO()
	if chain.SnapshotHash(data) != commit.UTXOHash || int64(len(data)) != commit.UTXOSize {
		sm.n.logf("snapshot serve at %d: local state does not match commitment", commit.Height)
		sm.serveCommit = nil
		return nil
	}
	sm.serveData = data
	return data
}

// onSnapCommit consumes a gossiped snapshot commitment: verify it
// against the miner set and our own best branch, and cache the newest
// one for serving.
func (n *Node) onSnapCommit(from string, msg p2p.Message) {
	sm := n.sync
	if sm == nil {
		return
	}
	commit, err := chain.DeserializeSnapshotCommitment(msg.Payload)
	if err != nil {
		return
	}
	if !n.chain.IsAuthorizedMiner(commit.MinerPubKey) || !commit.VerifySignature() {
		n.metrics.snapshotRejected.Inc()
		return
	}
	b, ok := n.chain.BlockAt(commit.Height)
	if !ok || b.ID() != commit.BlockID {
		// Not verifiable against our branch (behind, or a fork): ignore
		// rather than cache — serving requires local proof.
		return
	}
	sm.mu.Lock()
	if sm.serveCommit == nil || commit.Height > sm.serveCommit.Height {
		sm.serveCommit = commit
		sm.serveData = nil
	}
	sm.mu.Unlock()
}

// publishSnapshotCommitment builds, signs, caches and gossips a
// commitment to this miner's state at the given height.
func (n *Node) publishSnapshotCommitment(height int64) {
	if n.cfg.MinerKey == nil || n.sync == nil || height <= 0 {
		return
	}
	u, err := n.chain.StateAt(height)
	if err != nil {
		n.logf("snapshot commitment at %d: %v", height, err)
		return
	}
	b, ok := n.chain.BlockAt(height)
	if !ok {
		return
	}
	data := u.SerializeUTXO()
	commit := &chain.SnapshotCommitment{
		Version:  1,
		Height:   height,
		BlockID:  b.ID(),
		UTXOHash: chain.SnapshotHash(data),
		UTXOSize: int64(len(data)),
	}
	if err := commit.Sign(n.cfg.MinerKey, randomOrDefault(n.cfg.Random)); err != nil {
		n.logf("snapshot commitment sign: %v", err)
		return
	}
	sm := n.sync
	sm.mu.Lock()
	if sm.serveCommit == nil || commit.Height >= sm.serveCommit.Height {
		sm.serveCommit = commit
		sm.serveData = data
	}
	sm.mu.Unlock()
	n.gossip.Broadcast(p2p.MsgTypeSnapCommit, commit.Serialize())
}

// maybePublishCommitment publishes after mining a block on a snapshot
// interval boundary.
func (n *Node) maybePublishCommitment(b *chain.Block) {
	if n.sync == nil || n.cfg.MinerKey == nil {
		return
	}
	if interval := n.snapshotInterval(); b.Header.Height%interval == 0 {
		n.publishSnapshotCommitment(b.Header.Height)
	}
}

// SyncInfo reports bootstrap progress (RPC getsyncinfo).
func (n *Node) SyncInfo() SyncInfo {
	si := SyncInfo{Phase: "legacy"}
	if n.sync != nil {
		si = n.sync.info()
	}
	si.ChainHeight = n.chain.Height()
	si.PruneBase = n.chain.PruneBase()
	return si
}

// Config accessors with defaults.

func (n *Node) snapshotInterval() int64 {
	if n.cfg.SnapshotInterval > 0 {
		return n.cfg.SnapshotInterval
	}
	return 1024
}

func (n *Node) snapshotChunkSize() int {
	if n.cfg.SnapshotChunkSize > 0 {
		return n.cfg.SnapshotChunkSize
	}
	return 64 << 10
}

func (n *Node) snapshotMinGap() int64 {
	if n.cfg.SnapshotMinGap > 0 {
		return n.cfg.SnapshotMinGap
	}
	return 64
}

func (n *Node) syncRetryInterval() time.Duration {
	if n.cfg.SyncRetryInterval > 0 {
		return n.cfg.SyncRetryInterval
	}
	return 500 * time.Millisecond
}
