package daemon

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"bcwan/internal/chain"
	"bcwan/internal/channel"
	"bcwan/internal/fairex"
	"bcwan/internal/lora"
	"bcwan/internal/p2p"
	"bcwan/internal/wallet"
)

// ChannelConfig tunes the payment-channel subsystem of a daemon.
type ChannelConfig struct {
	// Capacity is the amount locked into each funding transaction; it
	// bounds how many deliveries one channel settles before rolling over.
	Capacity uint64
	// FundingFee, CloseFee and RefundFee are the fees of the three
	// on-chain channel transactions.
	FundingFee uint64
	CloseFee   uint64
	RefundFee  uint64
	// RefundWindow is the CLTV timeout in blocks: past it the funder can
	// reclaim the capacity unilaterally, so the gateway must close first.
	// A payee rejects opens offering a shorter window than its own.
	RefundWindow int64
	// CloseMargin is the payee's safety margin in blocks: it closes any
	// open channel once the chain is within CloseMargin of RefundHeight,
	// so its earned balance is on-chain before the refund path unlocks.
	CloseMargin int64
	// Price is the payee's minimum paid delta per update (the delivery
	// price): an update paying less never buys a key disclosure. Zero on
	// a gateway daemon defaults to the gateway's configured price.
	Price uint64
	// OpenTimeout bounds the open/accept handshake; UpdateTimeout bounds
	// one update/ack round trip.
	OpenTimeout   time.Duration
	UpdateTimeout time.Duration
	// StoreDir, when set, persists channel state there so endpoints
	// survive a daemon restart ("" = in-memory only).
	StoreDir string
}

// DefaultChannelConfig mirrors the fair-exchange defaults: 100 per
// delivery against a 10k channel, the paper's 100-block refund window.
func DefaultChannelConfig() ChannelConfig {
	return ChannelConfig{
		Capacity:      10_000,
		FundingFee:    1,
		CloseFee:      1,
		RefundFee:     1,
		RefundWindow:  100,
		CloseMargin:   10,
		OpenTimeout:   10 * time.Second,
		UpdateTimeout: 10 * time.Second,
	}
}

// chanHeightSkew is how many blocks a funder's chain view may lag the
// payee's when the payee checks a funded RefundHeight against the agreed
// window.
const chanHeightSkew = 2

// ErrChannelsDisabled reports a channel operation on a daemon without an
// enabled channel subsystem.
var ErrChannelsDisabled = errors.New("daemon: channel subsystem disabled")

// ChannelSettlement is the payer-side outcome of one off-chain delivery
// settlement: which commitment paid for it and the disclosed key.
type ChannelSettlement struct {
	ChannelID chain.Hash
	Version   uint64
	Key       []byte
}

// ChannelSummary is the RPC-facing view of one channel endpoint.
type ChannelSummary struct {
	ID           string `json:"id"`
	Role         string `json:"role"`
	Status       string `json:"status"`
	Capacity     uint64 `json:"capacity"`
	Paid         uint64 `json:"paid"`
	Version      uint64 `json:"version"`
	AckedVersion uint64 `json:"ackedVersion,omitempty"`
	RefundHeight int64  `json:"refundHeight"`
	Peer         string `json:"peer,omitempty"`
}

func summarizeChannel(st channel.State) ChannelSummary {
	return ChannelSummary{
		ID:           st.ID.String(),
		Role:         st.Role.String(),
		Status:       st.Status.String(),
		Capacity:     st.Capacity,
		Paid:         st.Paid,
		Version:      st.Version,
		AckedVersion: st.AckedVersion,
		RefundHeight: st.RefundHeight,
		Peer:         st.PeerAddr,
	}
}

// updateKey names one in-flight update round trip.
type updateKey struct {
	id      chain.Hash
	version uint64
}

// ChannelManager runs the channel control plane of one daemon over the
// p2p overlay. A recipient daemon runs it in payer mode (it funds
// channels and signs updates); a gateway daemon runs it in payee mode
// (disclose != nil: it countersigns updates and answers each with the
// ephemeral key of the exchange the update pays for).
type ChannelManager struct {
	cfg    ChannelConfig
	node   *Node
	wallet *wallet.Wallet
	store  *channel.Store // nil when cfg.StoreDir == ""
	// disclose resolves a verified update into the exchange's ephemeral
	// private key (payee mode only).
	disclose func(lora.DevEUI, uint32) ([]byte, error)

	// settleMu serializes payer-side rounds so commitment versions leave
	// in signing order.
	settleMu sync.Mutex

	mu            sync.Mutex
	payers        map[chain.Hash]*channel.Payer
	payees        map[chain.Hash]*channel.Payee
	byGateway     map[string]chain.Hash // gateway pubkey → open payer channel
	pendingOpens  map[string]*p2p.MsgChannelOpen
	openWaiters   map[string]chan *p2p.MsgChannelAccept
	updateWaiters map[updateKey]chan *p2p.MsgChannelUpdateAck
}

// newChannelManager builds the manager, reloads persisted endpoints and
// registers the p2p handlers for its mode.
func newChannelManager(node *Node, w *wallet.Wallet, cfg ChannelConfig, disclose func(lora.DevEUI, uint32) ([]byte, error)) (*ChannelManager, error) {
	def := DefaultChannelConfig()
	if cfg.Capacity == 0 {
		cfg.Capacity = def.Capacity
	}
	if cfg.RefundWindow == 0 {
		cfg.RefundWindow = def.RefundWindow
	}
	if cfg.CloseMargin <= 0 {
		cfg.CloseMargin = def.CloseMargin
	}
	if cfg.CloseMargin >= cfg.RefundWindow {
		cfg.CloseMargin = cfg.RefundWindow / 2
	}
	if cfg.OpenTimeout <= 0 {
		cfg.OpenTimeout = def.OpenTimeout
	}
	if cfg.UpdateTimeout <= 0 {
		cfg.UpdateTimeout = def.UpdateTimeout
	}
	m := &ChannelManager{
		cfg:           cfg,
		node:          node,
		wallet:        w,
		disclose:      disclose,
		payers:        make(map[chain.Hash]*channel.Payer),
		payees:        make(map[chain.Hash]*channel.Payee),
		byGateway:     make(map[string]chain.Hash),
		pendingOpens:  make(map[string]*p2p.MsgChannelOpen),
		openWaiters:   make(map[string]chan *p2p.MsgChannelAccept),
		updateWaiters: make(map[updateKey]chan *p2p.MsgChannelUpdateAck),
	}
	if cfg.StoreDir != "" {
		store, err := channel.OpenStore(cfg.StoreDir)
		if err != nil {
			return nil, err
		}
		m.store = store
		if err := m.reload(); err != nil {
			return nil, err
		}
	}
	if disclose != nil {
		node.gossip.HandleDirect(p2p.MsgTypeChannelOpen, m.onChanOpen)
		node.gossip.HandleDirect(p2p.MsgTypeChannelFund, m.onChanFund)
		node.gossip.HandleDirect(p2p.MsgTypeChannelUpdate, m.onChanUpdate)
		node.gossip.HandleDirect(p2p.MsgTypeChannelClose, m.onChanClose)
		// A payee must have its earned balance on-chain before the CLTV
		// refund path unlocks: close every channel nearing its deadline.
		node.Chain().Subscribe(func(*chain.Block) { m.CloseExpiring() })
	} else {
		node.gossip.HandleDirect(p2p.MsgTypeChannelAccept, m.onChanAccept)
		node.gossip.HandleDirect(p2p.MsgTypeChannelUpdateAck, m.onChanUpdateAck)
		// A payer abandoned past the CLTV timeout reclaims its capacity.
		node.Chain().Subscribe(func(*chain.Block) { m.RefundExpired() })
	}
	return m, nil
}

// reload rebuilds endpoints from the store after a restart.
func (m *ChannelManager) reload() error {
	states, err := m.store.Load()
	if err != nil {
		return err
	}
	for _, st := range states {
		switch st.Role {
		case channel.RolePayer:
			p, err := channel.LoadPayer(st, m.wallet, m.node.Ledger(), m.store)
			if err != nil {
				return err
			}
			m.payers[st.ID] = p
			if st.Status == channel.StatusOpen {
				m.byGateway[string(st.GatewayPub)] = st.ID
			}
		case channel.RolePayee:
			g, err := channel.LoadPayee(st, m.wallet, m.node.Ledger(), m.store)
			if err != nil {
				return err
			}
			g.SetPriceFloor(m.cfg.Price)
			m.payees[st.ID] = g
		}
		if st.Status == channel.StatusOpen {
			m.node.metrics.channelsOpen.Inc()
		}
	}
	return nil
}

// send delivers a direct message, dialing the peer first if the overlay
// has no live connection yet.
func (m *ChannelManager) send(addr, msgType string, payload []byte) bool {
	if m.node.gossip.SendTo(addr, msgType, payload) {
		return true
	}
	if err := m.node.gossip.Connect(addr); err != nil {
		return false
	}
	return m.node.gossip.SendTo(addr, msgType, payload)
}

// --- payee (gateway) side ---------------------------------------------

func (m *ChannelManager) onChanOpen(from string, msg p2p.Message) {
	req, err := p2p.DecodeChannelOpen(msg.Payload)
	if err != nil {
		m.node.logf("chanopen from %s: %v", from, err)
		return
	}
	reply := &p2p.MsgChannelAccept{RecipientPub: req.RecipientPub}
	if len(req.RecipientPub) == 0 || req.Capacity == 0 || req.RefundWindow <= 0 {
		reply.OK = p2p.ChannelAckRejected
		reply.Reason = "bad open terms"
	} else if req.RefundWindow < m.cfg.RefundWindow {
		// A short window lets the funder hit the CLTV refund path before
		// the gateway's close margin can fire.
		reply.OK = p2p.ChannelAckRejected
		reply.Reason = fmt.Sprintf("refund window %d below the %d floor", req.RefundWindow, m.cfg.RefundWindow)
	} else {
		m.mu.Lock()
		m.pendingOpens[from] = req
		m.mu.Unlock()
		reply.GatewayPub = m.wallet.PublicBytes()
		reply.OK = p2p.ChannelAckOK
	}
	m.send(from, p2p.MsgTypeChannelAccept, reply.Encode())
}

func (m *ChannelManager) onChanFund(from string, msg p2p.Message) {
	fund, err := p2p.DecodeChannelFund(msg.Payload)
	if err != nil {
		m.node.logf("chanfund from %s: %v", from, err)
		return
	}
	m.mu.Lock()
	open := m.pendingOpens[from]
	delete(m.pendingOpens, from)
	m.mu.Unlock()
	if open == nil {
		m.node.logf("chanfund from %s without a pending open", from)
		return
	}
	funding, err := chain.DeserializeTx(fund.FundingTx)
	if err != nil {
		m.node.logf("chanfund from %s: funding tx: %v", from, err)
		return
	}
	if len(funding.Outputs) == 0 {
		m.node.logf("chanfund from %s: funding tx has no outputs", from)
		return
	}
	// The funder picks RefundHeight itself; hold it to the window agreed
	// in the open (modulo chain-view skew) or the funder could fund with
	// RefundHeight = height+1, extract a key and reclaim the capacity
	// through the CLTV path before the payee can close.
	height := m.node.Ledger().Height()
	minRefund := height + open.RefundWindow - chanHeightSkew
	if floor := height + m.cfg.CloseMargin + 1; minRefund < floor {
		minRefund = floor
	}
	if fund.RefundHeight < minRefund {
		m.node.logf("chanfund from %s rejected: refund height %d below %d (height %d, window %d)",
			from, fund.RefundHeight, minRefund, height, open.RefundWindow)
		return
	}
	params := channel.Params{
		GatewayPub:   m.wallet.PublicBytes(),
		RecipientPub: open.RecipientPub,
		Capacity:     funding.Outputs[0].Value,
		CloseFee:     fund.CloseFee,
		RefundHeight: fund.RefundHeight,
	}
	payee, err := channel.AcceptPayee(m.wallet, m.node.Ledger(), m.store, funding, params, from)
	if err != nil {
		m.node.logf("chanfund from %s rejected: %v", from, err)
		return
	}
	payee.SetPriceFloor(m.cfg.Price)
	st := payee.State()
	m.mu.Lock()
	m.payees[st.ID] = payee
	m.mu.Unlock()
	m.node.metrics.channelsOpened.Inc()
	m.node.metrics.channelsOpen.Inc()
}

func (m *ChannelManager) onChanUpdate(from string, msg p2p.Message) {
	u, err := p2p.DecodeChannelUpdate(msg.Payload)
	if err != nil {
		m.node.logf("chanupdate from %s: %v", from, err)
		return
	}
	ack := &p2p.MsgChannelUpdateAck{
		ChannelID:   u.ChannelID,
		ChanVersion: u.ChanVersion,
		DevEUI:      u.DevEUI,
		Exchange:    u.Exchange,
	}
	id := chain.Hash(u.ChannelID)
	m.mu.Lock()
	payee := m.payees[id]
	m.mu.Unlock()
	if payee == nil {
		ack.Status = p2p.ChannelAckRejected
		ack.Reason = "unknown channel"
		m.send(from, p2p.MsgTypeChannelUpdateAck, ack.Encode())
		return
	}
	prevPaid := payee.State().Paid
	gwSig, err := payee.ApplyUpdate(&channel.Update{
		ChannelID:    id,
		Version:      u.ChanVersion,
		Paid:         u.Paid,
		RecipientSig: u.RecipientSig,
	})
	if err != nil {
		ack.Status = p2p.ChannelAckRejected
		ack.Reason = err.Error()
		m.send(from, p2p.MsgTypeChannelUpdateAck, ack.Encode())
		return
	}
	// The update is countersigned and durable; only now is the key
	// released — the off-chain half of the fair exchange.
	key, err := m.disclose(lora.DevEUI(u.DevEUI), u.Exchange)
	if err != nil {
		ack.Status = p2p.ChannelAckRejected
		ack.Reason = err.Error()
		m.send(from, p2p.MsgTypeChannelUpdateAck, ack.Encode())
		return
	}
	ack.Status = p2p.ChannelAckOK
	ack.Key = key
	ack.GatewaySig = gwSig
	m.node.metrics.channelUpdates.Inc()
	m.node.metrics.channelValue.Add(u.Paid - prevPaid)
	m.send(from, p2p.MsgTypeChannelUpdateAck, ack.Encode())
}

func (m *ChannelManager) onChanClose(from string, msg p2p.Message) {
	req, err := p2p.DecodeChannelClose(msg.Payload)
	if err != nil {
		m.node.logf("chanclose from %s: %v", from, err)
		return
	}
	id := chain.Hash(req.ChannelID)
	m.mu.Lock()
	payee := m.payees[id]
	m.mu.Unlock()
	if payee == nil {
		return
	}
	if _, err := payee.Close(); err != nil {
		m.node.logf("channel %s close: %v", id, err)
		return
	}
	m.node.metrics.channelsClosed.Inc()
	m.node.metrics.channelsOpen.Dec()
}

// --- payer (recipient) side -------------------------------------------

func (m *ChannelManager) onChanAccept(from string, msg p2p.Message) {
	acc, err := p2p.DecodeChannelAccept(msg.Payload)
	if err != nil {
		m.node.logf("chanaccept from %s: %v", from, err)
		return
	}
	m.mu.Lock()
	waiter := m.openWaiters[from]
	m.mu.Unlock()
	if waiter != nil {
		select {
		case waiter <- acc:
		default:
		}
	}
}

func (m *ChannelManager) onChanUpdateAck(from string, msg p2p.Message) {
	ack, err := p2p.DecodeChannelUpdateAck(msg.Payload)
	if err != nil {
		m.node.logf("chanupdateack from %s: %v", from, err)
		return
	}
	m.mu.Lock()
	waiter := m.updateWaiters[updateKey{chain.Hash(ack.ChannelID), ack.ChanVersion}]
	m.mu.Unlock()
	if waiter != nil {
		select {
		case waiter <- ack:
		default:
		}
	}
}

// SettleDelivery pays for one delivery off-chain: it signs the next
// commitment update, sends it to the gateway, waits for the
// countersignature plus the disclosed ephemeral key, verifies both and
// acknowledges. A channel is opened (or rolled over) on demand. On any
// failure the channel is retired so the caller can fall back to on-chain
// settlement with at most one update delta in flight.
func (m *ChannelManager) SettleDelivery(d *fairex.Delivery) (*ChannelSettlement, error) {
	if m.disclose != nil {
		return nil, errors.New("daemon: payee-side manager cannot settle deliveries")
	}
	m.settleMu.Lock()
	defer m.settleMu.Unlock()
	payer, err := m.payerFor(d.GatewayP2P, d.GatewayPubKey, d.Price)
	if err != nil {
		return nil, err
	}
	u, err := payer.SignUpdate(d.Price)
	if err != nil {
		return nil, err
	}
	waiter := make(chan *p2p.MsgChannelUpdateAck, 1)
	wk := updateKey{u.ChannelID, u.Version}
	m.mu.Lock()
	m.updateWaiters[wk] = waiter
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.updateWaiters, wk)
		m.mu.Unlock()
	}()
	upd := &p2p.MsgChannelUpdate{
		ChannelID:    u.ChannelID,
		ChanVersion:  u.Version,
		Paid:         u.Paid,
		DevEUI:       d.DevEUI,
		Exchange:     d.Exchange,
		RecipientSig: u.RecipientSig,
	}
	if !m.send(d.GatewayP2P, p2p.MsgTypeChannelUpdate, upd.Encode()) {
		m.retirePayer(payer)
		return nil, fmt.Errorf("daemon: channel peer %s unreachable", d.GatewayP2P)
	}
	var ack *p2p.MsgChannelUpdateAck
	timeout := time.NewTimer(m.cfg.UpdateTimeout)
	defer timeout.Stop()
	select {
	case ack = <-waiter:
	case <-timeout.C:
		// The gateway may have applied the update without us seeing the
		// ack: the delta stays in flight and the channel is retired, so
		// the divergence never exceeds one update.
		m.retirePayer(payer)
		return nil, fmt.Errorf("daemon: channel update %d timed out", u.Version)
	}
	if ack.Status != p2p.ChannelAckOK {
		m.retirePayer(payer)
		return nil, fmt.Errorf("daemon: channel update rejected: %s", ack.Reason)
	}
	if _, err := fairex.VerifyDisclosedKey(d, ack.Key); err != nil {
		m.retirePayer(payer)
		return nil, err
	}
	if err := payer.NoteAck(u.Version, ack.GatewaySig); err != nil {
		m.retirePayer(payer)
		return nil, err
	}
	m.node.metrics.channelUpdates.Inc()
	m.node.metrics.channelValue.Add(d.Price)
	return &ChannelSettlement{ChannelID: u.ChannelID, Version: u.Version, Key: ack.Key}, nil
}

// payerFor returns an open channel to the gateway with room for one more
// payment, rolling an exhausted or dead channel over into a fresh one.
func (m *ChannelManager) payerFor(peer string, gwPub []byte, price uint64) (*channel.Payer, error) {
	if peer == "" || len(gwPub) == 0 {
		return nil, errors.New("daemon: delivery offers no channel endpoint")
	}
	m.mu.Lock()
	var existing *channel.Payer
	if id, ok := m.byGateway[string(gwPub)]; ok {
		existing = m.payers[id]
	}
	m.mu.Unlock()
	if existing != nil {
		st := existing.State()
		if st.Status == channel.StatusOpen && st.Paid+price+st.CloseFee <= st.Capacity {
			return existing, nil
		}
		m.retirePayer(existing)
	}
	return m.openPayer(peer, gwPub, m.cfg.Capacity)
}

// openPayer runs the open/accept/fund handshake and funds a new channel.
// wantGwPub, when non-nil, pins the gateway key the accept must name.
func (m *ChannelManager) openPayer(peer string, wantGwPub []byte, capacity uint64) (*channel.Payer, error) {
	waiter := make(chan *p2p.MsgChannelAccept, 1)
	m.mu.Lock()
	m.openWaiters[peer] = waiter
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.openWaiters, peer)
		m.mu.Unlock()
	}()
	open := &p2p.MsgChannelOpen{
		RecipientPub: m.wallet.PublicBytes(),
		Capacity:     capacity,
		RefundWindow: m.cfg.RefundWindow,
	}
	if !m.send(peer, p2p.MsgTypeChannelOpen, open.Encode()) {
		return nil, fmt.Errorf("daemon: channel peer %s unreachable", peer)
	}
	var acc *p2p.MsgChannelAccept
	timeout := time.NewTimer(m.cfg.OpenTimeout)
	defer timeout.Stop()
	select {
	case acc = <-waiter:
	case <-timeout.C:
		return nil, fmt.Errorf("daemon: channel open to %s timed out", peer)
	}
	if acc.OK != p2p.ChannelAckOK {
		return nil, fmt.Errorf("daemon: channel open refused: %s", acc.Reason)
	}
	if len(wantGwPub) > 0 && !bytes.Equal(acc.GatewayPub, wantGwPub) {
		return nil, errors.New("daemon: channel accept names a different gateway key")
	}
	payer, funding, err := channel.OpenPayer(m.wallet, m.node.Ledger(), m.store,
		acc.GatewayPub, capacity, m.cfg.FundingFee, m.cfg.CloseFee, m.cfg.RefundWindow, peer)
	if err != nil {
		return nil, err
	}
	st := payer.State()
	fund := &p2p.MsgChannelFund{
		ChannelID:    st.ID,
		RefundHeight: st.RefundHeight,
		CloseFee:     st.CloseFee,
		FundingTx:    funding.Serialize(),
	}
	if !m.send(peer, p2p.MsgTypeChannelFund, fund.Encode()) {
		return nil, fmt.Errorf("daemon: channel peer %s unreachable", peer)
	}
	m.mu.Lock()
	m.payers[st.ID] = payer
	m.byGateway[string(st.GatewayPub)] = st.ID
	m.mu.Unlock()
	m.node.metrics.channelsOpened.Inc()
	m.node.metrics.channelsOpen.Inc()
	return payer, nil
}

// retirePayer takes a channel out of rotation and settles it: a
// cooperative close request to the gateway when reachable, otherwise a
// unilateral broadcast of the latest fully-signed commitment.
func (m *ChannelManager) retirePayer(p *channel.Payer) {
	st := p.State()
	m.mu.Lock()
	if id, ok := m.byGateway[string(st.GatewayPub)]; ok && id == st.ID {
		delete(m.byGateway, string(st.GatewayPub))
	}
	m.mu.Unlock()
	if st.Status != channel.StatusOpen {
		return
	}
	if err := p.MarkClosing(); err != nil {
		m.node.logf("channel %s mark closing: %v", st.ID, err)
	}
	req := &p2p.MsgChannelClose{ChannelID: st.ID, Kind: p2p.ChannelCloseCooperative}
	if !m.send(st.PeerAddr, p2p.MsgTypeChannelClose, req.Encode()) {
		// The gateway is unreachable: broadcast the acked commitment
		// ourselves. ErrNoCommitment just means nothing was ever acked —
		// the CLTV refund is then the only settlement left.
		if _, err := p.UnilateralClose(); err != nil && !errors.Is(err, channel.ErrNoCommitment) {
			m.node.logf("channel %s unilateral close: %v", st.ID, err)
		}
	}
	m.node.metrics.channelsClosed.Inc()
	m.node.metrics.channelsOpen.Dec()
}

// RefundExpired settles every payer channel whose CLTV refund height has
// been reached without an on-chain close. A channel the gateway earned
// nothing on (no acked update) is refunded in full; one with an acked
// balance is never confiscated — the payer first asks for a cooperative
// close, then broadcasts the acked commitment itself, so the gateway
// keeps everything it was acknowledged. Returns how many full-capacity
// refunds were broadcast.
func (m *ChannelManager) RefundExpired() int {
	m.mu.Lock()
	candidates := make([]*channel.Payer, 0, len(m.payers))
	for _, p := range m.payers {
		candidates = append(candidates, p)
	}
	m.mu.Unlock()
	refunded := 0
	for _, p := range candidates {
		st := p.State()
		if st.Status != channel.StatusOpen && st.Status != channel.StatusClosing {
			continue
		}
		if m.node.Ledger().Height() < st.RefundHeight {
			continue
		}
		// Already closed on-chain? The funding output is spent and the
		// refund would be rejected; skip quietly.
		if _, _, spent := m.node.Ledger().FindSpender(chain.OutPoint{TxID: st.ID, Index: 0}); spent {
			continue
		}
		if st.AckedVersion > 0 {
			if st.Status == channel.StatusOpen {
				// Give the gateway one chance to settle cooperatively;
				// retirePayer falls back to broadcasting the acked
				// commitment when the peer is unreachable.
				m.retirePayer(p)
				continue
			}
			// Closing and still unspent: settle the acked balance
			// unilaterally instead of refunding the full capacity.
			if _, err := p.UnilateralClose(); err != nil {
				m.node.logf("channel %s unilateral close: %v", st.ID, err)
			}
			continue
		}
		if _, err := p.Refund(m.cfg.RefundFee); err != nil {
			m.node.logf("channel %s refund: %v", st.ID, err)
			continue
		}
		m.mu.Lock()
		if id, ok := m.byGateway[string(st.GatewayPub)]; ok && id == st.ID {
			delete(m.byGateway, string(st.GatewayPub))
		}
		m.mu.Unlock()
		m.node.metrics.channelRefunds.Inc()
		if st.Status == channel.StatusOpen {
			// A closing channel already left the open gauge in retirePayer.
			m.node.metrics.channelsOpen.Dec()
		}
		refunded++
	}
	return refunded
}

// CloseExpiring (payee side) closes every open channel once the chain is
// within the configured CloseMargin of its refund height, putting the
// earned balance on-chain before the funder's CLTV path unlocks. Channels
// that never saw an update are abandoned locally — the funder's refund is
// their settlement. Returns how many channels were retired.
func (m *ChannelManager) CloseExpiring() int {
	height := m.node.Ledger().Height()
	m.mu.Lock()
	candidates := make([]*channel.Payee, 0, len(m.payees))
	for _, g := range m.payees {
		candidates = append(candidates, g)
	}
	m.mu.Unlock()
	closed := 0
	for _, g := range candidates {
		st := g.State()
		if st.Status != channel.StatusOpen {
			continue
		}
		if height < st.RefundHeight-m.cfg.CloseMargin {
			continue
		}
		if st.Version == 0 {
			if err := g.Abandon(); err != nil {
				m.node.logf("channel %s abandon: %v", st.ID, err)
				continue
			}
		} else if _, err := g.Close(); err != nil {
			m.node.logf("channel %s deadline close: %v", st.ID, err)
			continue
		}
		m.node.metrics.channelsClosed.Inc()
		m.node.metrics.channelsOpen.Dec()
		closed++
	}
	return closed
}

// --- RPC surface (rpc.ChannelOps) -------------------------------------

// OpenChannel opens a channel to a gateway's overlay address (payer mode
// only). A zero capacity uses the configured default.
func (m *ChannelManager) OpenChannel(peer string, capacity uint64) (any, error) {
	if m.disclose != nil {
		return nil, errors.New("daemon: a gateway daemon accepts channels, it does not open them")
	}
	if capacity == 0 {
		capacity = m.cfg.Capacity
	}
	m.settleMu.Lock()
	defer m.settleMu.Unlock()
	payer, err := m.openPayer(peer, nil, capacity)
	if err != nil {
		return nil, err
	}
	return summarizeChannel(payer.State()), nil
}

// ChannelInfo returns the state of one channel endpoint by id.
func (m *ChannelManager) ChannelInfo(id string) (any, error) {
	h, err := chain.HashFromString(id)
	if err != nil {
		return nil, fmt.Errorf("daemon: channel id: %w", err)
	}
	m.mu.Lock()
	payer := m.payers[h]
	payee := m.payees[h]
	m.mu.Unlock()
	switch {
	case payer != nil:
		return summarizeChannel(payer.State()), nil
	case payee != nil:
		return summarizeChannel(payee.State()), nil
	default:
		return nil, fmt.Errorf("daemon: %w: %s", channel.ErrUnknownChannel, id)
	}
}

// CloseChannel settles a channel on-chain: a payer asks the gateway to
// close cooperatively (broadcasting itself if the gateway is gone), a
// payee broadcasts its latest commitment directly.
func (m *ChannelManager) CloseChannel(id string) (any, error) {
	h, err := chain.HashFromString(id)
	if err != nil {
		return nil, fmt.Errorf("daemon: channel id: %w", err)
	}
	m.mu.Lock()
	payer := m.payers[h]
	payee := m.payees[h]
	m.mu.Unlock()
	switch {
	case payer != nil:
		m.settleMu.Lock()
		m.retirePayer(payer)
		m.settleMu.Unlock()
		return summarizeChannel(payer.State()), nil
	case payee != nil:
		if _, err := payee.Close(); err != nil {
			return nil, err
		}
		m.node.metrics.channelsClosed.Inc()
		m.node.metrics.channelsOpen.Dec()
		return summarizeChannel(payee.State()), nil
	default:
		return nil, fmt.Errorf("daemon: %w: %s", channel.ErrUnknownChannel, id)
	}
}

// ListChannels returns every known channel endpoint, payers first, in
// stable id order.
func (m *ChannelManager) ListChannels() (any, error) {
	m.mu.Lock()
	out := make([]ChannelSummary, 0, len(m.payers)+len(m.payees))
	for _, p := range m.payers {
		out = append(out, summarizeChannel(p.State()))
	}
	for _, g := range m.payees {
		out = append(out, summarizeChannel(g.State()))
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Role != out[j].Role {
			return out[i].Role < out[j].Role
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}
