package daemon

import "bcwan/internal/telemetry"

// daemonMetrics instruments the deployable daemons: Fig. 3 step-7 TCP
// deliveries on both sides, and chain-store persistence latency.
type daemonMetrics struct {
	deliveriesSent     *telemetry.Counter
	deliveriesReceived *telemetry.Counter
	orphanTxsParked    *telemetry.Counter
	storeLoadSeconds   *telemetry.Histogram
	storeAppendSeconds *telemetry.Histogram
	storeCompactions   *telemetry.Counter

	// Headers-first sync and snapshot bootstrap (DESIGN.md §13).
	headersSynced           *telemetry.Counter
	snapshotRejected        *telemetry.Counter
	snapshotChunksServed    *telemetry.Counter
	syncFullFallbacks       *telemetry.Counter
	snapshotInstalledHeight *telemetry.Gauge

	// Compact block relay (BIP152-style; see DESIGN.md §12). Hit rate =
	// hits/received; the fallback ladder shows up as txn round trips and
	// full-block fetches.
	cmpctSent          *telemetry.Counter
	cmpctReceived      *telemetry.Counter
	cmpctHits          *telemetry.Counter
	cmpctReconstructed *telemetry.Counter
	cmpctTxnRequests   *telemetry.Counter
	cmpctTxnServed     *telemetry.Counter
	cmpctFullFallbacks *telemetry.Counter

	// Payment channels (DESIGN.md §14): off-chain settlement volume and
	// the lifecycle of the on-chain anchors.
	channelsOpen   *telemetry.Gauge
	channelsOpened *telemetry.Counter
	channelsClosed *telemetry.Counter
	channelRefunds *telemetry.Counter
	channelUpdates *telemetry.Counter
	channelValue   *telemetry.Counter
}

func newDaemonMetrics(reg *telemetry.Registry) *daemonMetrics {
	ns := reg.Namespace("daemon")
	return &daemonMetrics{
		deliveriesSent:     ns.Counter("deliveries_sent_total", "TCP deliveries a gateway daemon pushed to recipients."),
		deliveriesReceived: ns.Counter("deliveries_received_total", "TCP deliveries a recipient daemon accepted from gateways."),
		orphanTxsParked:    ns.Counter("orphan_txs_parked_total", "Gossiped transactions parked until their inputs become visible."),
		storeLoadSeconds:   ns.Histogram("store_load_seconds", "Chain store load latency in seconds.", nil),
		storeAppendSeconds: ns.Histogram("store_append_seconds", "Block-log append+fsync latency in seconds.", nil),
		storeCompactions:   ns.Counter("store_compactions_total", "Snapshot + log-compaction cycles of the incremental store."),

		headersSynced:           ns.Counter("sync_headers_total", "Headers appended to the sync spine during headers-first sync."),
		snapshotRejected:        ns.Counter("snapshot_rejected_total", "Snapshot manifests, chunks or commitments that failed verification."),
		snapshotChunksServed:    ns.Counter("snapshot_chunks_served_total", "Snapshot chunks served to bootstrapping peers."),
		syncFullFallbacks:       ns.Counter("sync_full_fallbacks_total", "Bootstraps that fell back to full sync after every snapshot peer failed."),
		snapshotInstalledHeight: ns.Gauge("snapshot_installed_height", "Horizon height of the installed snapshot bootstrap (0 = full sync)."),

		cmpctSent:          ns.Counter("cmpct_sent_total", "Compact block sketches pushed to peers."),
		cmpctReceived:      ns.Counter("cmpct_received_total", "Compact block sketches received from peers."),
		cmpctHits:          ns.Counter("cmpct_hits_total", "Compact blocks reconstructed entirely from the local mempool."),
		cmpctReconstructed: ns.Counter("cmpct_reconstructed_total", "Compact blocks reconstructed, including via a getblocktxn round trip."),
		cmpctTxnRequests:   ns.Counter("cmpct_txn_requests_total", "getblocktxn round trips issued for transactions missing from the mempool."),
		cmpctTxnServed:     ns.Counter("cmpct_txn_served_total", "getblocktxn requests answered with a blocktxn response."),
		cmpctFullFallbacks: ns.Counter("cmpct_full_fallbacks_total", "Compact reconstructions abandoned for a full-block fetch."),

		channelsOpen:   ns.Gauge("channels_open", "Payment channels currently open on this daemon."),
		channelsOpened: ns.Counter("channels_opened_total", "Payment channels opened (funded or accepted)."),
		channelsClosed: ns.Counter("channels_closed_total", "Payment channels settled by a commitment broadcast."),
		channelRefunds: ns.Counter("channel_refunds_total", "Channels reclaimed through the CLTV refund path."),
		channelUpdates: ns.Counter("channel_updates_total", "Off-chain commitment updates settled (one per delivery)."),
		channelValue:   ns.Counter("channel_offchain_value_total", "Cumulative value moved by off-chain channel updates."),
	}
}
