package daemon

import "bcwan/internal/telemetry"

// daemonMetrics instruments the deployable daemons: Fig. 3 step-7 TCP
// deliveries on both sides, and chain-store persistence latency.
type daemonMetrics struct {
	deliveriesSent     *telemetry.Counter
	deliveriesReceived *telemetry.Counter
	orphanTxsParked    *telemetry.Counter
	storeSaveSeconds   *telemetry.Histogram
	storeLoadSeconds   *telemetry.Histogram
	storeAppendSeconds *telemetry.Histogram
	storeCompactions   *telemetry.Counter
}

func newDaemonMetrics(reg *telemetry.Registry) *daemonMetrics {
	ns := reg.Namespace("daemon")
	return &daemonMetrics{
		deliveriesSent:     ns.Counter("deliveries_sent_total", "TCP deliveries a gateway daemon pushed to recipients."),
		deliveriesReceived: ns.Counter("deliveries_received_total", "TCP deliveries a recipient daemon accepted from gateways."),
		orphanTxsParked:    ns.Counter("orphan_txs_parked_total", "Gossiped transactions parked until their inputs become visible."),
		storeSaveSeconds:   ns.Histogram("store_save_seconds", "Chain store save latency in seconds.", nil),
		storeLoadSeconds:   ns.Histogram("store_load_seconds", "Chain store load latency in seconds.", nil),
		storeAppendSeconds: ns.Histogram("store_append_seconds", "Block-log append+fsync latency in seconds.", nil),
		storeCompactions:   ns.Counter("store_compactions_total", "Snapshot + log-compaction cycles of the incremental store."),
	}
}
