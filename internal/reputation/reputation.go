// Package reputation implements the reputation-based fair-exchange
// alternative the paper considers and rejects (§4.4): the recipient pays
// first, misbehaving gateways lose reputation, and recipients refuse to
// deal with gateways below a trust threshold. It "reduces the probability
// of misbehavior but does not eliminate the problem" — the ablation
// benchmark quantifies exactly that residual loss against BcWAN's
// script-enforced exchange.
package reputation

import (
	"math/rand"
	"sync"
)

// Outcome classifies one exchange attempt.
type Outcome int

// Exchange outcomes.
const (
	// OutcomeDelivered: payment made, data delivered.
	OutcomeDelivered Outcome = 1 + iota
	// OutcomeCheated: payment made, data withheld.
	OutcomeCheated
	// OutcomeRefused: the recipient refused to pay an untrusted
	// gateway; no payment, no data.
	OutcomeRefused
)

// Config tunes the reputation system.
type Config struct {
	// InitialScore is a new gateway's reputation.
	InitialScore float64
	// DeliverReward is added on honest delivery.
	DeliverReward float64
	// CheatPenalty is subtracted when the recipient reports
	// non-delivery.
	CheatPenalty float64
	// TrustThreshold is the minimum score a recipient deals with.
	TrustThreshold float64
}

// DefaultConfig gives new gateways the benefit of the doubt and banishes
// them after roughly two cheats.
func DefaultConfig() Config {
	return Config{
		InitialScore:   1.0,
		DeliverReward:  0.1,
		CheatPenalty:   0.6,
		TrustThreshold: 0.5,
	}
}

// System is the recipients' shared reputation table.
type System struct {
	cfg Config

	mu     sync.Mutex
	scores map[string]float64

	// Stats aggregates outcomes.
	Stats Stats
}

// Stats counts exchange outcomes and losses.
type Stats struct {
	Delivered uint64
	Cheated   uint64
	Refused   uint64
	// PaymentsLost is the total value paid without delivery — the
	// quantity BcWAN's script reduces to zero.
	PaymentsLost uint64
}

// New creates a reputation system.
func New(cfg Config) *System {
	return &System{cfg: cfg, scores: make(map[string]float64)}
}

// Score returns a gateway's current reputation.
func (s *System) Score(gatewayID string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scoreLocked(gatewayID)
}

func (s *System) scoreLocked(gatewayID string) float64 {
	if v, ok := s.scores[gatewayID]; ok {
		return v
	}
	return s.cfg.InitialScore
}

// Trusted reports whether a recipient would pay the gateway.
func (s *System) Trusted(gatewayID string) bool {
	return s.Score(gatewayID) >= s.cfg.TrustThreshold
}

// Exchange plays one pay-first exchange: the recipient checks trust, pays
// price, and the gateway delivers unless it cheats (per cheats). The
// reputation table is updated from the observed outcome.
func (s *System) Exchange(gatewayID string, price uint64, cheats bool) Outcome {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.scoreLocked(gatewayID) < s.cfg.TrustThreshold {
		s.Stats.Refused++
		return OutcomeRefused
	}
	if cheats {
		s.scores[gatewayID] = s.scoreLocked(gatewayID) - s.cfg.CheatPenalty
		s.Stats.Cheated++
		s.Stats.PaymentsLost += price
		return OutcomeCheated
	}
	s.scores[gatewayID] = s.scoreLocked(gatewayID) + s.cfg.DeliverReward
	s.Stats.Delivered++
	return OutcomeDelivered
}

// SimResult summarizes a Monte Carlo run.
type SimResult struct {
	Exchanges    int
	Delivered    uint64
	Cheated      uint64
	Refused      uint64
	PaymentsLost uint64
	// LossRate is PaymentsLost / (total value offered).
	LossRate float64
}

// Simulate runs rounds of exchanges against a gateway population where a
// fraction of gateways cheat with the given probability. It returns the
// realized loss rate — nonzero for reputation, structurally zero for the
// BcWAN script exchange.
func Simulate(cfg Config, seed int64, gateways int, cheaterFraction, cheatProb float64, rounds int, price uint64) SimResult {
	rng := rand.New(rand.NewSource(seed))
	sys := New(cfg)
	ids := make([]string, gateways)
	cheater := make([]bool, gateways)
	for i := range ids {
		ids[i] = gatewayID(i)
		cheater[i] = rng.Float64() < cheaterFraction
	}
	total := uint64(0)
	for r := 0; r < rounds; r++ {
		g := rng.Intn(gateways)
		cheats := cheater[g] && rng.Float64() < cheatProb
		if sys.Exchange(ids[g], price, cheats) != OutcomeRefused {
			total += price
		}
	}
	res := SimResult{
		Exchanges:    rounds,
		Delivered:    sys.Stats.Delivered,
		Cheated:      sys.Stats.Cheated,
		Refused:      sys.Stats.Refused,
		PaymentsLost: sys.Stats.PaymentsLost,
	}
	if total > 0 {
		res.LossRate = float64(res.PaymentsLost) / float64(total)
	}
	return res
}

func gatewayID(i int) string {
	return "gw-" + string(rune('A'+i%26)) + string(rune('0'+i/26))
}
