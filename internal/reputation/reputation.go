// Package reputation implements the reputation-based fair-exchange
// alternative the paper considers and rejects (§4.4): the recipient pays
// first, misbehaving gateways lose reputation, and recipients refuse to
// deal with gateways below a trust threshold. It "reduces the probability
// of misbehavior but does not eliminate the problem" — the ablation
// benchmark quantifies exactly that residual loss against BcWAN's
// script-enforced exchange.
//
// Since PR 8 the same scoring table also backs the live defense layer:
// recipients report non-disclosure and replayed deliveries against a
// gateway's score, and refuse to exchange with gateways below the
// threshold (the chaos Byzantine campaign exercises this end to end).
package reputation

import (
	"encoding/hex"
	"math/rand"
	"sync"

	"bcwan/internal/telemetry"
)

// Outcome classifies one exchange attempt.
type Outcome int

// Exchange outcomes.
const (
	// OutcomeDelivered: payment made, data delivered.
	OutcomeDelivered Outcome = 1 + iota
	// OutcomeCheated: payment made, data withheld.
	OutcomeCheated
	// OutcomeRefused: the recipient refused to pay an untrusted
	// gateway; no payment, no data.
	OutcomeRefused
)

// Config tunes the reputation system.
type Config struct {
	// InitialScore is a new gateway's reputation.
	InitialScore float64
	// DeliverReward is added on honest delivery.
	DeliverReward float64
	// CheatPenalty is subtracted when the recipient reports
	// non-delivery.
	CheatPenalty float64
	// TrustThreshold is the minimum score a recipient deals with.
	TrustThreshold float64
	// MaxScore caps accrued credit (0 = uncapped). Without a cap a
	// patient adversary banks honest deliveries and then cheats several
	// times before crossing the threshold; with MaxScore - CheatPenalty
	// below TrustThreshold, ONE proven cheat ejects from any reachable
	// score, which is what makes the chaos bounded-loss invariant
	// structural rather than probabilistic.
	MaxScore float64
}

// DefaultConfig gives new gateways the benefit of the doubt but caps
// credit low enough that a single proven cheat ejects.
func DefaultConfig() Config {
	return Config{
		InitialScore:   1.0,
		DeliverReward:  0.1,
		CheatPenalty:   0.6,
		TrustThreshold: 0.5,
		// Half a reward of headroom: 1.05 - 0.6 = 0.45 < 0.5.
		MaxScore: 1.05,
	}
}

// System is the recipients' shared reputation table. All methods are
// safe for concurrent use; the stats are only exposed through Snapshot
// so no caller can observe them without the lock.
type System struct {
	cfg Config

	mu     sync.Mutex
	scores map[string]float64
	stats  Stats
	// metrics is set by Instrument before concurrent use; all uses are
	// nil-safe.
	metrics *repMetrics
}

// Stats counts exchange outcomes and losses.
type Stats struct {
	Delivered uint64
	Cheated   uint64
	Refused   uint64
	// Replays counts deliveries rejected because the same ciphertext was
	// already sold once.
	Replays uint64
	// PaymentsLost is the total value paid without delivery — the
	// quantity BcWAN's script reduces to zero.
	PaymentsLost uint64
}

// New creates a reputation system.
func New(cfg Config) *System {
	return &System{cfg: cfg, scores: make(map[string]float64)}
}

// IDFromHash derives the reputation identity of a gateway from its
// public-key hash (the @G that signs its claims and bindings).
func IDFromHash(hash [20]byte) string {
	return hex.EncodeToString(hash[:])
}

// Instrument registers report counters in reg. Call before concurrent
// use; a nil registry is a no-op.
func (s *System) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics = newRepMetrics(reg)
}

// Snapshot returns a copy of the outcome counters.
func (s *System) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Score returns a gateway's current reputation.
func (s *System) Score(gatewayID string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scoreLocked(gatewayID)
}

func (s *System) scoreLocked(gatewayID string) float64 {
	if v, ok := s.scores[gatewayID]; ok {
		return v
	}
	return s.cfg.InitialScore
}

// Threshold returns the trust threshold below which recipients refuse a
// gateway.
func (s *System) Threshold() float64 { return s.cfg.TrustThreshold }

// Trusted reports whether a recipient would pay the gateway.
func (s *System) Trusted(gatewayID string) bool {
	return s.Score(gatewayID) >= s.cfg.TrustThreshold
}

// ReportDelivered rewards a gateway for a completed exchange (the key
// was disclosed and the plaintext recovered).
func (s *System) ReportDelivered(gatewayID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rewardLocked(gatewayID)
	s.stats.Delivered++
	s.metrics.report("delivered")
}

// ReportWithheld penalizes a gateway that took a payment (or a channel
// delta) without disclosing the key. lost is the value actually lost —
// zero when the Listing 1 refund path made the victim whole, one update
// delta when a channel counterparty kept a countersigned balance.
func (s *System) ReportWithheld(gatewayID string, lost uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.penalizeLocked(gatewayID)
	s.stats.Cheated++
	s.stats.PaymentsLost += lost
	s.metrics.report("withheld")
}

// ReportReplay penalizes a gateway that re-delivered a message it
// already sold once (double-sell).
func (s *System) ReportReplay(gatewayID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.penalizeLocked(gatewayID)
	s.stats.Replays++
	s.metrics.report("replay")
}

// ReportRefused records that a recipient declined to deal with an
// untrusted gateway (no payment moved).
func (s *System) ReportRefused(gatewayID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Refused++
	s.metrics.refused()
}

func (s *System) rewardLocked(gatewayID string) {
	v := s.scoreLocked(gatewayID) + s.cfg.DeliverReward
	if s.cfg.MaxScore > 0 && v > s.cfg.MaxScore {
		v = s.cfg.MaxScore
	}
	s.scores[gatewayID] = v
}

func (s *System) penalizeLocked(gatewayID string) {
	before := s.scoreLocked(gatewayID)
	after := before - s.cfg.CheatPenalty
	s.scores[gatewayID] = after
	if before >= s.cfg.TrustThreshold && after < s.cfg.TrustThreshold {
		s.metrics.ejected()
	}
}

// Exchange plays one pay-first exchange: the recipient checks trust, pays
// price, and the gateway delivers unless it cheats (per cheats). The
// reputation table is updated from the observed outcome.
func (s *System) Exchange(gatewayID string, price uint64, cheats bool) Outcome {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.scoreLocked(gatewayID) < s.cfg.TrustThreshold {
		s.stats.Refused++
		s.metrics.refused()
		return OutcomeRefused
	}
	if cheats {
		s.penalizeLocked(gatewayID)
		s.stats.Cheated++
		s.stats.PaymentsLost += price
		s.metrics.report("withheld")
		return OutcomeCheated
	}
	s.rewardLocked(gatewayID)
	s.stats.Delivered++
	s.metrics.report("delivered")
	return OutcomeDelivered
}

// SimResult summarizes a Monte Carlo run.
type SimResult struct {
	Exchanges    int
	Delivered    uint64
	Cheated      uint64
	Refused      uint64
	PaymentsLost uint64
	// LossRate is PaymentsLost / (total value offered).
	LossRate float64
}

// Simulate runs rounds of exchanges against a gateway population where a
// fraction of gateways cheat with the given probability. It returns the
// realized loss rate — nonzero for reputation, structurally zero for the
// BcWAN script exchange. All randomness comes from the caller's seed (a
// private rand.Source, never the global one), so runs replay exactly and
// stay data-race-free under concurrent Simulate calls.
func Simulate(cfg Config, seed int64, gateways int, cheaterFraction, cheatProb float64, rounds int, price uint64) SimResult {
	rng := rand.New(rand.NewSource(seed))
	sys := New(cfg)
	ids := make([]string, gateways)
	cheater := make([]bool, gateways)
	for i := range ids {
		ids[i] = gatewayID(i)
		cheater[i] = rng.Float64() < cheaterFraction
	}
	total := uint64(0)
	for r := 0; r < rounds; r++ {
		g := rng.Intn(gateways)
		cheats := cheater[g] && rng.Float64() < cheatProb
		if sys.Exchange(ids[g], price, cheats) != OutcomeRefused {
			total += price
		}
	}
	stats := sys.Snapshot()
	res := SimResult{
		Exchanges:    rounds,
		Delivered:    stats.Delivered,
		Cheated:      stats.Cheated,
		Refused:      stats.Refused,
		PaymentsLost: stats.PaymentsLost,
	}
	if total > 0 {
		res.LossRate = float64(res.PaymentsLost) / float64(total)
	}
	return res
}

func gatewayID(i int) string {
	return "gw-" + string(rune('A'+i%26)) + string(rune('0'+i/26))
}

// repMetrics counts reports; nil-safe so an uninstrumented system costs
// nothing.
type repMetrics struct {
	reports   map[string]*telemetry.Counter
	refusals  *telemetry.Counter
	ejections *telemetry.Counter
}

func newRepMetrics(reg *telemetry.Registry) *repMetrics {
	ns := reg.Namespace("reputation")
	m := &repMetrics{
		reports:   make(map[string]*telemetry.Counter),
		refusals:  ns.Counter("refusals_total", "Exchanges refused because the gateway was below the trust threshold."),
		ejections: ns.Counter("ejections_total", "Gateways whose score crossed below the trust threshold."),
	}
	for _, kind := range []string{"delivered", "withheld", "replay"} {
		m.reports[kind] = ns.Counter("reports_total",
			"Exchange outcome reports, by kind.", telemetry.L("kind", kind))
	}
	return m
}

func (m *repMetrics) report(kind string) {
	if m != nil {
		m.reports[kind].Inc()
	}
}

func (m *repMetrics) refused() {
	if m != nil {
		m.refusals.Inc()
	}
}

func (m *repMetrics) ejected() {
	if m != nil {
		m.ejections.Inc()
	}
}
