package reputation

import (
	"testing"
)

func TestHonestGatewayGainsReputation(t *testing.T) {
	s := New(DefaultConfig())
	before := s.Score("gw")
	if got := s.Exchange("gw", 100, false); got != OutcomeDelivered {
		t.Fatalf("outcome = %v", got)
	}
	if s.Score("gw") <= before {
		t.Fatal("score did not increase")
	}
	if s.Stats.PaymentsLost != 0 {
		t.Fatal("honest delivery recorded a loss")
	}
}

func TestCheatingLosesPaymentAndReputation(t *testing.T) {
	s := New(DefaultConfig())
	if got := s.Exchange("gw", 100, true); got != OutcomeCheated {
		t.Fatalf("outcome = %v", got)
	}
	if s.Stats.PaymentsLost != 100 {
		t.Fatalf("PaymentsLost = %d, want 100 (pay-first exchange)", s.Stats.PaymentsLost)
	}
	if s.Score("gw") >= DefaultConfig().InitialScore {
		t.Fatal("score did not drop")
	}
}

func TestRepeatOffenderEventuallyRefused(t *testing.T) {
	s := New(DefaultConfig())
	refused := false
	for i := 0; i < 10; i++ {
		if s.Exchange("gw", 100, true) == OutcomeRefused {
			refused = true
			break
		}
	}
	if !refused {
		t.Fatal("cheater never banished")
	}
	// Refusals stop further losses.
	before := s.Stats.PaymentsLost
	s.Exchange("gw", 100, true)
	if s.Stats.PaymentsLost != before {
		t.Fatal("refused exchange still lost payment")
	}
}

func TestUntrustedGatewayRefused(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InitialScore = 0 // below threshold: nobody starts trusted
	s := New(cfg)
	if got := s.Exchange("gw", 100, false); got != OutcomeRefused {
		t.Fatalf("outcome = %v, want refused", got)
	}
}

func TestSimulateAllHonestLosesNothing(t *testing.T) {
	res := Simulate(DefaultConfig(), 1, 10, 0, 0, 2000, 100)
	if res.PaymentsLost != 0 || res.LossRate != 0 {
		t.Fatalf("loss = %d (%f)", res.PaymentsLost, res.LossRate)
	}
	if res.Delivered != 2000 {
		t.Fatalf("delivered = %d", res.Delivered)
	}
}

func TestSimulateCheatersCauseBoundedLoss(t *testing.T) {
	// The §4.4 claim: reputation reduces but does not eliminate loss.
	res := Simulate(DefaultConfig(), 42, 10, 0.3, 0.5, 5000, 100)
	if res.PaymentsLost == 0 {
		t.Fatal("cheaters caused no loss — reputation would equal fair exchange")
	}
	if res.LossRate >= 0.5 {
		t.Fatalf("loss rate %.2f implausibly high — banishment not working", res.LossRate)
	}
	if res.Refused == 0 {
		t.Fatal("no cheater was ever banished")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a := Simulate(DefaultConfig(), 7, 10, 0.3, 0.5, 1000, 100)
	b := Simulate(DefaultConfig(), 7, 10, 0.3, 0.5, 1000, 100)
	if a != b {
		t.Fatal("same seed produced different results")
	}
}

func TestMoreAggressiveCheatingBanishedFaster(t *testing.T) {
	gentle := Simulate(DefaultConfig(), 3, 10, 0.3, 0.1, 5000, 100)
	brazen := Simulate(DefaultConfig(), 3, 10, 0.3, 1.0, 5000, 100)
	// A brazen cheater is caught quickly, so per-exchange loss rate
	// stays comparable or lower than sustained sneaky cheating at
	// scale; at minimum both must lose something and refusals must be
	// higher for brazen cheaters.
	if brazen.Refused <= gentle.Refused {
		t.Fatalf("brazen refusals %d ≤ gentle %d", brazen.Refused, gentle.Refused)
	}
}
