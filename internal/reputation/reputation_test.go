package reputation

import (
	"sync"
	"testing"

	"bcwan/internal/telemetry"
)

func TestHonestGatewayGainsReputation(t *testing.T) {
	s := New(DefaultConfig())
	before := s.Score("gw")
	if got := s.Exchange("gw", 100, false); got != OutcomeDelivered {
		t.Fatalf("outcome = %v", got)
	}
	if s.Score("gw") <= before {
		t.Fatal("score did not increase")
	}
	if s.Snapshot().PaymentsLost != 0 {
		t.Fatal("honest delivery recorded a loss")
	}
}

func TestCheatingLosesPaymentAndReputation(t *testing.T) {
	s := New(DefaultConfig())
	if got := s.Exchange("gw", 100, true); got != OutcomeCheated {
		t.Fatalf("outcome = %v", got)
	}
	if lost := s.Snapshot().PaymentsLost; lost != 100 {
		t.Fatalf("PaymentsLost = %d, want 100 (pay-first exchange)", lost)
	}
	if s.Score("gw") >= DefaultConfig().InitialScore {
		t.Fatal("score did not drop")
	}
}

func TestRepeatOffenderEventuallyRefused(t *testing.T) {
	s := New(DefaultConfig())
	refused := false
	for i := 0; i < 10; i++ {
		if s.Exchange("gw", 100, true) == OutcomeRefused {
			refused = true
			break
		}
	}
	if !refused {
		t.Fatal("cheater never banished")
	}
	// Refusals stop further losses.
	before := s.Snapshot().PaymentsLost
	s.Exchange("gw", 100, true)
	if s.Snapshot().PaymentsLost != before {
		t.Fatal("refused exchange still lost payment")
	}
}

func TestUntrustedGatewayRefused(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InitialScore = 0 // below threshold: nobody starts trusted
	s := New(cfg)
	if got := s.Exchange("gw", 100, false); got != OutcomeRefused {
		t.Fatalf("outcome = %v, want refused", got)
	}
}

func TestReportsAdjustScoreAndStats(t *testing.T) {
	s := New(DefaultConfig())
	s.Instrument(telemetry.NewRegistry())
	s.ReportDelivered("gw")
	if got := s.Score("gw"); got <= DefaultConfig().InitialScore || got > DefaultConfig().MaxScore {
		t.Fatalf("score after delivery = %v", got)
	}
	s.ReportWithheld("gw", 100)
	s.ReportReplay("gw")
	s.ReportRefused("gw")
	if s.Trusted("gw") {
		t.Fatal("gateway still trusted after withhold + replay")
	}
	got := s.Snapshot()
	want := Stats{Delivered: 1, Cheated: 1, Refused: 1, Replays: 1, PaymentsLost: 100}
	if got != want {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}
}

func TestConcurrentReportsRaceFree(t *testing.T) {
	s := New(DefaultConfig())
	s.Instrument(telemetry.NewRegistry())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := IDFromHash([20]byte{byte(w)})
			for i := 0; i < 200; i++ {
				switch i % 5 {
				case 0:
					s.ReportDelivered(id)
				case 1:
					s.ReportWithheld(id, 1)
				case 2:
					s.ReportReplay(id)
				case 3:
					s.Exchange(id, 1, i%2 == 0)
				default:
					_ = s.Trusted(id)
					_ = s.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.Snapshot(); got.Delivered == 0 || got.Cheated == 0 {
		t.Fatalf("stats lost updates: %+v", got)
	}
}

// TestCreditCapBoundsLossToOneCheat is the score-cap rationale: even an
// adversary that banks maximal honest credit first is ejected by its
// FIRST cheat, so a victim never pays a given adversary for more than
// one withheld delivery.
func TestCreditCapBoundsLossToOneCheat(t *testing.T) {
	s := New(DefaultConfig())
	for i := 0; i < 50; i++ { // bank as much credit as the system allows
		s.ReportDelivered("gw")
	}
	if got := s.Score("gw"); got > DefaultConfig().MaxScore {
		t.Fatalf("score %v exceeds cap %v", got, DefaultConfig().MaxScore)
	}
	s.ReportWithheld("gw", 100)
	if s.Trusted("gw") {
		t.Fatalf("score %v still trusted after one cheat from the cap", s.Score("gw"))
	}
	if lost := s.Snapshot().PaymentsLost; lost != 100 {
		t.Fatalf("PaymentsLost = %d, want exactly one payment", lost)
	}
}

func TestSimulateAllHonestLosesNothing(t *testing.T) {
	res := Simulate(DefaultConfig(), 1, 10, 0, 0, 2000, 100)
	if res.PaymentsLost != 0 || res.LossRate != 0 {
		t.Fatalf("loss = %d (%f)", res.PaymentsLost, res.LossRate)
	}
	if res.Delivered != 2000 {
		t.Fatalf("delivered = %d", res.Delivered)
	}
}

func TestSimulateCheatersCauseBoundedLoss(t *testing.T) {
	// The §4.4 claim: reputation reduces but does not eliminate loss.
	res := Simulate(DefaultConfig(), 42, 10, 0.3, 0.5, 5000, 100)
	if res.PaymentsLost == 0 {
		t.Fatal("cheaters caused no loss — reputation would equal fair exchange")
	}
	if res.LossRate >= 0.5 {
		t.Fatalf("loss rate %.2f implausibly high — banishment not working", res.LossRate)
	}
	if res.Refused == 0 {
		t.Fatal("no cheater was ever banished")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a := Simulate(DefaultConfig(), 7, 10, 0.3, 0.5, 1000, 100)
	b := Simulate(DefaultConfig(), 7, 10, 0.3, 0.5, 1000, 100)
	if a != b {
		t.Fatal("same seed produced different results")
	}
}

func TestMoreAggressiveCheatingBanishedFaster(t *testing.T) {
	gentle := Simulate(DefaultConfig(), 3, 10, 0.3, 0.1, 5000, 100)
	brazen := Simulate(DefaultConfig(), 3, 10, 0.3, 1.0, 5000, 100)
	// A brazen cheater is caught quickly, so per-exchange loss rate
	// stays comparable or lower than sustained sneaky cheating at
	// scale; at minimum both must lose something and refusals must be
	// higher for brazen cheaters.
	if brazen.Refused <= gentle.Refused {
		t.Fatalf("brazen refusals %d ≤ gentle %d", brazen.Refused, gentle.Refused)
	}
}
