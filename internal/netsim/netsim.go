// Package netsim models the wide-area network between gateways and
// recipients. The paper's evaluation ran on five PlanetLab nodes plus an
// EC2 master; here, per-link latencies are sampled from lognormal
// distributions calibrated to planetary-scale RTTs, deterministically
// seeded so experiments are reproducible.
package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// LinkDist is a lognormal one-way latency distribution.
type LinkDist struct {
	// MedianMS is the distribution median in milliseconds.
	MedianMS float64
	// Sigma is the lognormal shape parameter (spread).
	Sigma float64
}

// Sample draws one latency.
func (d LinkDist) Sample(rng *rand.Rand) time.Duration {
	if d.MedianMS <= 0 {
		return 0
	}
	mu := math.Log(d.MedianMS)
	ms := math.Exp(rng.NormFloat64()*d.Sigma + mu)
	return time.Duration(ms * float64(time.Millisecond))
}

// Mean returns the distribution mean in milliseconds.
func (d LinkDist) Mean() float64 {
	return d.MedianMS * math.Exp(d.Sigma*d.Sigma/2)
}

// Network is a complete latency graph over n nodes.
type Network struct {
	n     int
	links [][]LinkDist
	rng   *rand.Rand
	// ProcessingDelay is added to every message to model endpoint
	// scheduling/CPU (the PlanetLab nodes had 4 cores and 512 MB).
	ProcessingDelay time.Duration
}

// NewPlanetLab builds a network shaped like the paper's deployment:
// node-to-node medians drawn uniformly in [20, 120] ms with moderate
// jitter, symmetric links, seeded deterministically.
func NewPlanetLab(seed int64, n int) *Network {
	rng := rand.New(rand.NewSource(seed))
	net := &Network{
		n:               n,
		links:           make([][]LinkDist, n),
		rng:             rng,
		ProcessingDelay: 2 * time.Millisecond,
	}
	for i := range net.links {
		net.links[i] = make([]LinkDist, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := LinkDist{
				MedianMS: 20 + 100*rng.Float64(),
				Sigma:    0.25,
			}
			net.links[i][j] = d
			net.links[j][i] = d
		}
	}
	return net
}

// NewUniform builds a network where every link has the same distribution.
func NewUniform(seed int64, n int, dist LinkDist) *Network {
	net := NewPlanetLab(seed, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				net.links[i][j] = dist
			}
		}
	}
	return net
}

// Size returns the node count.
func (net *Network) Size() int { return net.n }

// Latency samples a one-way latency for a message from node a to node b.
func (net *Network) Latency(a, b int) time.Duration {
	if a < 0 || b < 0 || a >= net.n || b >= net.n {
		panic(fmt.Sprintf("netsim: node out of range: %d -> %d (n=%d)", a, b, net.n))
	}
	if a == b {
		return net.ProcessingDelay
	}
	return net.links[a][b].Sample(net.rng) + net.ProcessingDelay
}

// RTT samples a round trip a→b→a.
func (net *Network) RTT(a, b int) time.Duration {
	return net.Latency(a, b) + net.Latency(b, a)
}

// MedianMS returns the configured median for a link (useful in tests and
// reports).
func (net *Network) MedianMS(a, b int) float64 {
	if a == b {
		return 0
	}
	return net.links[a][b].MedianMS
}
