package netsim

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestLinkDistSamplepositive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := LinkDist{MedianMS: 50, Sigma: 0.25}
	for i := 0; i < 1000; i++ {
		if s := d.Sample(rng); s <= 0 {
			t.Fatalf("sample %v not positive", s)
		}
	}
}

func TestLinkDistMedianApproximate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	d := LinkDist{MedianMS: 80, Sigma: 0.25}
	samples := make([]float64, 5001)
	for i := range samples {
		samples[i] = float64(d.Sample(rng)) / float64(time.Millisecond)
	}
	// Median of samples ≈ configured median (±10%).
	med := median(samples)
	if math.Abs(med-80) > 8 {
		t.Fatalf("sample median = %.1f ms, want ≈80", med)
	}
}

func median(v []float64) float64 {
	sorted := append([]float64(nil), v...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}

func TestLinkDistZeroMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if s := (LinkDist{}).Sample(rng); s != 0 {
		t.Fatalf("zero dist sampled %v", s)
	}
}

func TestLinkDistMean(t *testing.T) {
	d := LinkDist{MedianMS: 100, Sigma: 0.5}
	want := 100 * math.Exp(0.125)
	if math.Abs(d.Mean()-want) > 1e-9 {
		t.Fatalf("Mean = %f, want %f", d.Mean(), want)
	}
}

func TestPlanetLabDeterministic(t *testing.T) {
	a := NewPlanetLab(7, 5)
	b := NewPlanetLab(7, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if a.MedianMS(i, j) != b.MedianMS(i, j) {
				t.Fatal("same seed produced different topologies")
			}
		}
	}
	if a.Latency(0, 1) != b.Latency(0, 1) {
		t.Fatal("same seed produced different samples")
	}
}

func TestPlanetLabSymmetricMedians(t *testing.T) {
	net := NewPlanetLab(3, 6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if net.MedianMS(i, j) != net.MedianMS(j, i) {
				t.Fatal("link medians not symmetric")
			}
		}
	}
}

func TestPlanetLabMediansInRange(t *testing.T) {
	net := NewPlanetLab(11, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i == j {
				continue
			}
			m := net.MedianMS(i, j)
			if m < 20 || m > 120 {
				t.Fatalf("median %f outside [20,120]", m)
			}
		}
	}
}

func TestSelfLatencyIsProcessingOnly(t *testing.T) {
	net := NewPlanetLab(5, 3)
	if got := net.Latency(1, 1); got != net.ProcessingDelay {
		t.Fatalf("self latency = %v, want %v", got, net.ProcessingDelay)
	}
}

func TestLatencyPanicsOutOfRange(t *testing.T) {
	net := NewPlanetLab(5, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range node")
		}
	}()
	net.Latency(0, 9)
}

func TestRTTIsSumOfLegs(t *testing.T) {
	net := NewUniform(5, 2, LinkDist{MedianMS: 40, Sigma: 0.1})
	rtt := net.RTT(0, 1)
	// Each leg ≥ processing delay, so RTT ≥ 2×.
	if rtt < 2*net.ProcessingDelay {
		t.Fatalf("RTT %v implausibly small", rtt)
	}
}

func TestNewUniformOverridesLinks(t *testing.T) {
	net := NewUniform(5, 4, LinkDist{MedianMS: 55, Sigma: 0.2})
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				continue
			}
			if net.MedianMS(i, j) != 55 {
				t.Fatalf("link %d->%d median = %f, want 55", i, j, net.MedianMS(i, j))
			}
		}
	}
}
