// Package recipient implements the BcWAN recipient (the home party of a
// roaming sensor): it verifies deliveries from foreign gateways, pays for
// them with the Listing 1 key-release script, watches the chain for the
// gateway's claim, and recovers the plaintext by stripping both
// encryption layers (Fig. 3 steps 8–9 plus the final decryption).
package recipient

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"sync"

	"bcwan/internal/bccrypto"
	"bcwan/internal/chain"
	"bcwan/internal/fairex"
	"bcwan/internal/lora"
	"bcwan/internal/reputation"
	"bcwan/internal/script"
	"bcwan/internal/wallet"
)

// Config tunes the recipient's exchange policy.
type Config struct {
	// MaxPrice is the highest delivery price the recipient accepts.
	MaxPrice uint64
	// RefundWindow is the refund lock the recipient writes into its
	// payments, in blocks.
	RefundWindow int64
	// PaymentFee is the fee attached to payment transactions.
	PaymentFee uint64
	// RefundFee is the fee attached to refund transactions.
	RefundFee uint64
}

// DefaultConfig accepts the gateway default price.
func DefaultConfig() Config {
	return Config{MaxPrice: 100, RefundWindow: 100, PaymentFee: 1, RefundFee: 1}
}

// DeviceInfo is the recipient-side provisioning for one sensor: the
// shared AES key K and the node's RSA-512 public key Pk.
type DeviceInfo struct {
	SharedKey []byte
	NodePub   *bccrypto.RSA512PublicKey
}

// Recipient errors.
var (
	// ErrUnknownSensor reports a delivery for a device the recipient
	// was never provisioned with.
	ErrUnknownSensor = errors.New("recipient: unknown device")
	// ErrExchangeNotFound reports a claim settlement for an unknown
	// payment.
	ErrExchangeNotFound = errors.New("recipient: no pending exchange for payment")
	// ErrUntrustedGateway reports a delivery refused because the
	// gateway's reputation is below the trust threshold.
	ErrUntrustedGateway = errors.New("recipient: gateway below trust threshold")
	// ErrReplayedDelivery reports a delivery whose ciphertext was
	// already bought once — a double-sell attempt.
	ErrReplayedDelivery = errors.New("recipient: delivery already settled (replay)")
)

// maxSettledMemory bounds the replay-detection window (digests of
// ciphertexts already settled).
const maxSettledMemory = 4096

// pendingPayment tracks an exchange between payment and claim.
type pendingPayment struct {
	delivery *fairex.Delivery
	payment  *chain.Tx
}

// Message is a fully decrypted sensor reading.
type Message struct {
	DevEUI    lora.DevEUI
	Plaintext []byte
	PaymentID chain.Hash
}

// Recipient is one home party.
type Recipient struct {
	cfg    Config
	wallet *wallet.Wallet
	ledger fairex.Ledger
	random io.Reader

	mu              sync.Mutex
	devices         map[lora.DevEUI]DeviceInfo
	pending         map[chain.Hash]*pendingPayment
	pendingOffchain map[offchainKey]*fairex.Delivery

	// rep, when set, gates deliveries on gateway trust and feeds exchange
	// outcomes back as reputation reports (PR 8 defense layer).
	rep *reputation.System
	// settled remembers digests of already-settled ciphertexts so a
	// gateway cannot sell the same message twice; settledRing evicts the
	// oldest digest once maxSettledMemory is reached.
	settled     map[[sha256.Size]byte]bool
	settledRing [][sha256.Size]byte
	settledHead int

	// Stats aggregates outcomes.
	Stats Stats
}

// offchainKey identifies an exchange settled through a channel update
// (no payment transaction exists to key on).
type offchainKey struct {
	eui     lora.DevEUI
	counter uint32
}

// Stats counts recipient outcomes.
type Stats struct {
	Deliveries     uint64
	RejectedOffers uint64
	Payments       uint64
	Decryptions    uint64
	Refunds        uint64
	// OffChainSettles counts exchanges settled through a payment-channel
	// update instead of an on-chain payment + claim pair.
	OffChainSettles uint64
	// RefusedUntrusted counts deliveries refused because the gateway's
	// reputation was below the trust threshold.
	RefusedUntrusted uint64
	// ReplaysDetected counts double-sell attempts rejected before any
	// payment moved.
	ReplaysDetected uint64
}

// New creates a recipient.
func New(cfg Config, w *wallet.Wallet, ledger fairex.Ledger, random io.Reader) *Recipient {
	return &Recipient{
		cfg:             cfg,
		wallet:          w,
		ledger:          ledger,
		random:          random,
		devices:         make(map[lora.DevEUI]DeviceInfo),
		pending:         make(map[chain.Hash]*pendingPayment),
		pendingOffchain: make(map[offchainKey]*fairex.Delivery),
		settled:         make(map[[sha256.Size]byte]bool),
	}
}

// UseReputation attaches a reputation system: deliveries from gateways
// below the trust threshold are refused, replayed ciphertexts are
// rejected and reported, and settlements/refunds feed outcome reports.
// Call before concurrent use; a nil system disables the gate.
func (r *Recipient) UseReputation(sys *reputation.System) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rep = sys
}

// admit runs the PR 8 defense gate over an offer that already passed the
// signature and price checks: replayed ciphertexts are rejected (and
// charged against the gateway), then untrusted gateways are refused.
func (r *Recipient) admit(d *fairex.Delivery) error {
	digest := sha256.Sum256(d.Em)
	gw := reputation.IDFromHash(d.GatewayPubKeyHash)
	r.mu.Lock()
	rep := r.rep
	replayed := r.settled[digest]
	if replayed {
		r.Stats.ReplaysDetected++
	}
	r.mu.Unlock()
	if replayed {
		if rep != nil {
			rep.ReportReplay(gw)
		}
		return fmt.Errorf("%w: exchange %d of %s", ErrReplayedDelivery, d.Exchange, d.DevEUI)
	}
	if rep != nil && !rep.Trusted(gw) {
		rep.ReportRefused(gw)
		r.mu.Lock()
		r.Stats.RefusedUntrusted++
		r.mu.Unlock()
		return fmt.Errorf("%w: %s (score %.2f < %.2f)", ErrUntrustedGateway, gw, rep.Score(gw), rep.Threshold())
	}
	return nil
}

// markSettled remembers a settled ciphertext for replay detection and
// credits the gateway.
func (r *Recipient) markSettled(d *fairex.Delivery) {
	digest := sha256.Sum256(d.Em)
	r.mu.Lock()
	if !r.settled[digest] {
		r.settled[digest] = true
		if len(r.settledRing) < maxSettledMemory {
			r.settledRing = append(r.settledRing, digest)
		} else {
			delete(r.settled, r.settledRing[r.settledHead])
			r.settledRing[r.settledHead] = digest
			r.settledHead = (r.settledHead + 1) % maxSettledMemory
		}
	}
	rep := r.rep
	r.mu.Unlock()
	if rep != nil {
		rep.ReportDelivered(reputation.IDFromHash(d.GatewayPubKeyHash))
	}
}

// Wallet returns the recipient's wallet.
func (r *Recipient) Wallet() *wallet.Wallet { return r.wallet }

// Provision registers a sensor's keys (the provisioning phase of §4.4).
func (r *Recipient) Provision(eui lora.DevEUI, info DeviceInfo) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.devices[eui] = info
}

// HandleDelivery performs Fig. 3 steps 8–9: verify the signature, accept
// the terms, build the key-release payment, and submit it. It returns the
// payment transaction (whose ID the Ack carries back to the gateway).
func (r *Recipient) HandleDelivery(d *fairex.Delivery) (*chain.Tx, error) {
	r.mu.Lock()
	info, known := r.devices[d.DevEUI]
	r.Stats.Deliveries++
	r.mu.Unlock()
	if !known {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSensor, d.DevEUI)
	}
	// Step 8: authenticity and integrity via the node's signature.
	if err := fairex.VerifyOffer(info.NodePub, d); err != nil {
		r.bumpRejected()
		return nil, err
	}
	if d.Price > r.cfg.MaxPrice {
		r.bumpRejected()
		return nil, fmt.Errorf("%w: asked %d, max %d", fairex.ErrPriceTooHigh, d.Price, r.cfg.MaxPrice)
	}
	if err := r.admit(d); err != nil {
		return nil, err
	}

	// Step 9: the Listing 1 payment.
	window := d.RefundWindow
	if r.cfg.RefundWindow > window {
		window = r.cfg.RefundWindow
	}
	params := script.KeyReleaseParams{
		RSAPubKey:         d.EPk,
		GatewayPubKeyHash: d.GatewayPubKeyHash,
		RefundHeight:      r.ledger.Height() + window,
		BuyerPubKeyHash:   r.wallet.PubKeyHash(),
	}
	payment, err := r.wallet.BuildKeyReleasePayment(r.ledger.UTXO(), params, d.Price, r.cfg.PaymentFee)
	if err != nil {
		return nil, fmt.Errorf("recipient: build payment: %w", err)
	}
	if err := r.ledger.Submit(payment); err != nil {
		return nil, fmt.Errorf("recipient: submit payment: %w", err)
	}

	r.mu.Lock()
	r.pending[payment.ID()] = &pendingPayment{delivery: d, payment: payment}
	r.Stats.Payments++
	r.mu.Unlock()
	return payment, nil
}

// SettleClaim completes the exchange once the gateway's claim is
// confirmed: extract eSk from the claim's unlocking script, strip the
// RSA layer, then the AES layer, and return the plaintext.
func (r *Recipient) SettleClaim(paymentID chain.Hash) (*Message, error) {
	eSk, err := fairex.ExtractKeyFromClaim(r.ledger, paymentID)
	if err != nil {
		return nil, err
	}
	return r.settle(paymentID, eSk)
}

// SettleClaimTx completes the exchange from a claim transaction observed
// unconfirmed (gossiped or in the mempool) — the proof of concept's
// zero-confirmation mode, whose double-spend exposure §6 discusses.
func (r *Recipient) SettleClaimTx(paymentID chain.Hash, claim *chain.Tx) (*Message, error) {
	for _, in := range claim.Inputs {
		if in.Prev.TxID != paymentID || in.Prev.Index != 0 {
			continue
		}
		keyBytes, err := script.ExtractClaimedRSAKey(in.Unlock)
		if err != nil {
			return nil, fmt.Errorf("recipient: claim unlock: %w", err)
		}
		eSk, err := bccrypto.UnmarshalRSA512PrivateKey(keyBytes)
		if err != nil {
			return nil, fmt.Errorf("recipient: revealed key: %w", err)
		}
		return r.settle(paymentID, eSk)
	}
	return nil, fairex.ErrNoClaim
}

func (r *Recipient) settle(paymentID chain.Hash, eSk *bccrypto.RSA512PrivateKey) (*Message, error) {
	r.mu.Lock()
	pend, ok := r.pending[paymentID]
	if !ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrExchangeNotFound, paymentID)
	}
	info := r.devices[pend.delivery.DevEUI]
	r.mu.Unlock()

	frame, err := bccrypto.DecryptRSA512(eSk, pend.delivery.Em)
	if err != nil {
		return nil, fmt.Errorf("recipient: rsa layer: %w", err)
	}
	plaintext, err := bccrypto.DecryptFrame(info.SharedKey, frame)
	if err != nil {
		return nil, fmt.Errorf("recipient: aes layer: %w", err)
	}
	r.mu.Lock()
	delete(r.pending, paymentID)
	r.Stats.Decryptions++
	r.mu.Unlock()
	r.markSettled(pend.delivery)
	return &Message{
		DevEUI:    pend.delivery.DevEUI,
		Plaintext: plaintext,
		PaymentID: paymentID,
	}, nil
}

// AcceptDeliveryOffChain performs the channel-mode variant of Fig. 3
// steps 8–9: it verifies the offer signature and price exactly like
// HandleDelivery, but instead of broadcasting an on-chain payment it
// registers the exchange for settlement through a channel update. The
// caller then streams the update and settles with SettleOffChain once the
// key is disclosed.
func (r *Recipient) AcceptDeliveryOffChain(d *fairex.Delivery) error {
	r.mu.Lock()
	info, known := r.devices[d.DevEUI]
	r.Stats.Deliveries++
	r.mu.Unlock()
	if !known {
		return fmt.Errorf("%w: %s", ErrUnknownSensor, d.DevEUI)
	}
	if err := fairex.VerifyOffer(info.NodePub, d); err != nil {
		r.bumpRejected()
		return err
	}
	if d.Price > r.cfg.MaxPrice {
		r.bumpRejected()
		return fmt.Errorf("%w: asked %d, max %d", fairex.ErrPriceTooHigh, d.Price, r.cfg.MaxPrice)
	}
	if err := r.admit(d); err != nil {
		return err
	}
	r.mu.Lock()
	r.pendingOffchain[offchainKey{eui: d.DevEUI, counter: d.Exchange}] = d
	r.mu.Unlock()
	return nil
}

// SettleOffChain completes a channel-mode exchange: verify that the
// disclosed key bytes match the delivery's ePk, strip both encryption
// layers, and return the plaintext. Called with the key carried by the
// gateway's channel update acknowledgement.
func (r *Recipient) SettleOffChain(devEUI lora.DevEUI, exchange uint32, keyBytes []byte) (*Message, error) {
	ok := offchainKey{eui: devEUI, counter: exchange}
	r.mu.Lock()
	d, found := r.pendingOffchain[ok]
	info := r.devices[devEUI]
	r.mu.Unlock()
	if !found {
		return nil, fmt.Errorf("%w: %s (exchange %d)", ErrExchangeNotFound, devEUI, exchange)
	}
	eSk, err := fairex.VerifyDisclosedKey(d, keyBytes)
	if err != nil {
		return nil, err
	}
	frame, err := bccrypto.DecryptRSA512(eSk, d.Em)
	if err != nil {
		return nil, fmt.Errorf("recipient: rsa layer: %w", err)
	}
	plaintext, err := bccrypto.DecryptFrame(info.SharedKey, frame)
	if err != nil {
		return nil, fmt.Errorf("recipient: aes layer: %w", err)
	}
	r.mu.Lock()
	delete(r.pendingOffchain, ok)
	r.Stats.Decryptions++
	r.Stats.OffChainSettles++
	r.mu.Unlock()
	r.markSettled(d)
	return &Message{DevEUI: devEUI, Plaintext: plaintext}, nil
}

// DropOffChain abandons a registered off-chain exchange (e.g. the channel
// path failed and the delivery is being re-settled on-chain).
func (r *Recipient) DropOffChain(devEUI lora.DevEUI, exchange uint32) {
	r.mu.Lock()
	delete(r.pendingOffchain, offchainKey{eui: devEUI, counter: exchange})
	r.mu.Unlock()
}

// Refund reclaims an expired, unclaimed payment through the Listing 1
// OP_ELSE path. It fails (at the ledger) before the refund height.
func (r *Recipient) Refund(paymentID chain.Hash) (*chain.Tx, error) {
	r.mu.Lock()
	pend, ok := r.pending[paymentID]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrExchangeNotFound, paymentID)
	}
	params, err := script.ParseKeyRelease(pend.payment.Outputs[0].Lock)
	if err != nil {
		return nil, fmt.Errorf("recipient: parse own payment: %w", err)
	}
	refund, err := r.wallet.BuildRefund(
		chain.OutPoint{TxID: paymentID, Index: 0},
		pend.payment.Outputs[0], params.RefundHeight, r.cfg.RefundFee)
	if err != nil {
		return nil, fmt.Errorf("recipient: build refund: %w", err)
	}
	if err := r.ledger.Submit(refund); err != nil {
		return nil, fmt.Errorf("recipient: submit refund: %w", err)
	}
	r.mu.Lock()
	delete(r.pending, paymentID)
	r.Stats.Refunds++
	rep := r.rep
	r.mu.Unlock()
	// A refund means the gateway took the payment's escrow hostage and
	// never disclosed the key: the Listing 1 OP_ELSE path made the victim
	// whole (lost = 0), but the non-disclosure still decays the gateway's
	// score so persistent withholders get refused.
	if rep != nil {
		rep.ReportWithheld(reputation.IDFromHash(pend.delivery.GatewayPubKeyHash), 0)
	}
	return refund, nil
}

// ReportNonDisclosure charges a gateway that kept an off-chain delivery's
// payment without ever disclosing the key (the channel settlement path,
// where there is no refund script to fall back on). lost is the channel
// delta that cannot be recovered.
func (r *Recipient) ReportNonDisclosure(gatewayPubKeyHash [20]byte, lost uint64) {
	r.mu.Lock()
	rep := r.rep
	r.mu.Unlock()
	if rep != nil {
		rep.ReportWithheld(reputation.IDFromHash(gatewayPubKeyHash), lost)
	}
}

// PendingPayments lists the exchanges awaiting a claim.
func (r *Recipient) PendingPayments() []chain.Hash {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]chain.Hash, 0, len(r.pending))
	for id := range r.pending {
		out = append(out, id)
	}
	return out
}

func (r *Recipient) bumpRejected() {
	r.mu.Lock()
	r.Stats.RejectedOffers++
	r.mu.Unlock()
}
