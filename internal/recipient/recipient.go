// Package recipient implements the BcWAN recipient (the home party of a
// roaming sensor): it verifies deliveries from foreign gateways, pays for
// them with the Listing 1 key-release script, watches the chain for the
// gateway's claim, and recovers the plaintext by stripping both
// encryption layers (Fig. 3 steps 8–9 plus the final decryption).
package recipient

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"bcwan/internal/bccrypto"
	"bcwan/internal/chain"
	"bcwan/internal/fairex"
	"bcwan/internal/lora"
	"bcwan/internal/script"
	"bcwan/internal/wallet"
)

// Config tunes the recipient's exchange policy.
type Config struct {
	// MaxPrice is the highest delivery price the recipient accepts.
	MaxPrice uint64
	// RefundWindow is the refund lock the recipient writes into its
	// payments, in blocks.
	RefundWindow int64
	// PaymentFee is the fee attached to payment transactions.
	PaymentFee uint64
	// RefundFee is the fee attached to refund transactions.
	RefundFee uint64
}

// DefaultConfig accepts the gateway default price.
func DefaultConfig() Config {
	return Config{MaxPrice: 100, RefundWindow: 100, PaymentFee: 1, RefundFee: 1}
}

// DeviceInfo is the recipient-side provisioning for one sensor: the
// shared AES key K and the node's RSA-512 public key Pk.
type DeviceInfo struct {
	SharedKey []byte
	NodePub   *bccrypto.RSA512PublicKey
}

// Recipient errors.
var (
	// ErrUnknownSensor reports a delivery for a device the recipient
	// was never provisioned with.
	ErrUnknownSensor = errors.New("recipient: unknown device")
	// ErrExchangeNotFound reports a claim settlement for an unknown
	// payment.
	ErrExchangeNotFound = errors.New("recipient: no pending exchange for payment")
)

// pendingPayment tracks an exchange between payment and claim.
type pendingPayment struct {
	delivery *fairex.Delivery
	payment  *chain.Tx
}

// Message is a fully decrypted sensor reading.
type Message struct {
	DevEUI    lora.DevEUI
	Plaintext []byte
	PaymentID chain.Hash
}

// Recipient is one home party.
type Recipient struct {
	cfg    Config
	wallet *wallet.Wallet
	ledger fairex.Ledger
	random io.Reader

	mu              sync.Mutex
	devices         map[lora.DevEUI]DeviceInfo
	pending         map[chain.Hash]*pendingPayment
	pendingOffchain map[offchainKey]*fairex.Delivery

	// Stats aggregates outcomes.
	Stats Stats
}

// offchainKey identifies an exchange settled through a channel update
// (no payment transaction exists to key on).
type offchainKey struct {
	eui     lora.DevEUI
	counter uint32
}

// Stats counts recipient outcomes.
type Stats struct {
	Deliveries     uint64
	RejectedOffers uint64
	Payments       uint64
	Decryptions    uint64
	Refunds        uint64
	// OffChainSettles counts exchanges settled through a payment-channel
	// update instead of an on-chain payment + claim pair.
	OffChainSettles uint64
}

// New creates a recipient.
func New(cfg Config, w *wallet.Wallet, ledger fairex.Ledger, random io.Reader) *Recipient {
	return &Recipient{
		cfg:             cfg,
		wallet:          w,
		ledger:          ledger,
		random:          random,
		devices:         make(map[lora.DevEUI]DeviceInfo),
		pending:         make(map[chain.Hash]*pendingPayment),
		pendingOffchain: make(map[offchainKey]*fairex.Delivery),
	}
}

// Wallet returns the recipient's wallet.
func (r *Recipient) Wallet() *wallet.Wallet { return r.wallet }

// Provision registers a sensor's keys (the provisioning phase of §4.4).
func (r *Recipient) Provision(eui lora.DevEUI, info DeviceInfo) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.devices[eui] = info
}

// HandleDelivery performs Fig. 3 steps 8–9: verify the signature, accept
// the terms, build the key-release payment, and submit it. It returns the
// payment transaction (whose ID the Ack carries back to the gateway).
func (r *Recipient) HandleDelivery(d *fairex.Delivery) (*chain.Tx, error) {
	r.mu.Lock()
	info, known := r.devices[d.DevEUI]
	r.Stats.Deliveries++
	r.mu.Unlock()
	if !known {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSensor, d.DevEUI)
	}
	// Step 8: authenticity and integrity via the node's signature.
	if err := fairex.VerifyOffer(info.NodePub, d); err != nil {
		r.bumpRejected()
		return nil, err
	}
	if d.Price > r.cfg.MaxPrice {
		r.bumpRejected()
		return nil, fmt.Errorf("%w: asked %d, max %d", fairex.ErrPriceTooHigh, d.Price, r.cfg.MaxPrice)
	}

	// Step 9: the Listing 1 payment.
	window := d.RefundWindow
	if r.cfg.RefundWindow > window {
		window = r.cfg.RefundWindow
	}
	params := script.KeyReleaseParams{
		RSAPubKey:         d.EPk,
		GatewayPubKeyHash: d.GatewayPubKeyHash,
		RefundHeight:      r.ledger.Height() + window,
		BuyerPubKeyHash:   r.wallet.PubKeyHash(),
	}
	payment, err := r.wallet.BuildKeyReleasePayment(r.ledger.UTXO(), params, d.Price, r.cfg.PaymentFee)
	if err != nil {
		return nil, fmt.Errorf("recipient: build payment: %w", err)
	}
	if err := r.ledger.Submit(payment); err != nil {
		return nil, fmt.Errorf("recipient: submit payment: %w", err)
	}

	r.mu.Lock()
	r.pending[payment.ID()] = &pendingPayment{delivery: d, payment: payment}
	r.Stats.Payments++
	r.mu.Unlock()
	return payment, nil
}

// SettleClaim completes the exchange once the gateway's claim is
// confirmed: extract eSk from the claim's unlocking script, strip the
// RSA layer, then the AES layer, and return the plaintext.
func (r *Recipient) SettleClaim(paymentID chain.Hash) (*Message, error) {
	eSk, err := fairex.ExtractKeyFromClaim(r.ledger, paymentID)
	if err != nil {
		return nil, err
	}
	return r.settle(paymentID, eSk)
}

// SettleClaimTx completes the exchange from a claim transaction observed
// unconfirmed (gossiped or in the mempool) — the proof of concept's
// zero-confirmation mode, whose double-spend exposure §6 discusses.
func (r *Recipient) SettleClaimTx(paymentID chain.Hash, claim *chain.Tx) (*Message, error) {
	for _, in := range claim.Inputs {
		if in.Prev.TxID != paymentID || in.Prev.Index != 0 {
			continue
		}
		keyBytes, err := script.ExtractClaimedRSAKey(in.Unlock)
		if err != nil {
			return nil, fmt.Errorf("recipient: claim unlock: %w", err)
		}
		eSk, err := bccrypto.UnmarshalRSA512PrivateKey(keyBytes)
		if err != nil {
			return nil, fmt.Errorf("recipient: revealed key: %w", err)
		}
		return r.settle(paymentID, eSk)
	}
	return nil, fairex.ErrNoClaim
}

func (r *Recipient) settle(paymentID chain.Hash, eSk *bccrypto.RSA512PrivateKey) (*Message, error) {
	r.mu.Lock()
	pend, ok := r.pending[paymentID]
	if !ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrExchangeNotFound, paymentID)
	}
	info := r.devices[pend.delivery.DevEUI]
	r.mu.Unlock()

	frame, err := bccrypto.DecryptRSA512(eSk, pend.delivery.Em)
	if err != nil {
		return nil, fmt.Errorf("recipient: rsa layer: %w", err)
	}
	plaintext, err := bccrypto.DecryptFrame(info.SharedKey, frame)
	if err != nil {
		return nil, fmt.Errorf("recipient: aes layer: %w", err)
	}
	r.mu.Lock()
	delete(r.pending, paymentID)
	r.Stats.Decryptions++
	r.mu.Unlock()
	return &Message{
		DevEUI:    pend.delivery.DevEUI,
		Plaintext: plaintext,
		PaymentID: paymentID,
	}, nil
}

// AcceptDeliveryOffChain performs the channel-mode variant of Fig. 3
// steps 8–9: it verifies the offer signature and price exactly like
// HandleDelivery, but instead of broadcasting an on-chain payment it
// registers the exchange for settlement through a channel update. The
// caller then streams the update and settles with SettleOffChain once the
// key is disclosed.
func (r *Recipient) AcceptDeliveryOffChain(d *fairex.Delivery) error {
	r.mu.Lock()
	info, known := r.devices[d.DevEUI]
	r.Stats.Deliveries++
	r.mu.Unlock()
	if !known {
		return fmt.Errorf("%w: %s", ErrUnknownSensor, d.DevEUI)
	}
	if err := fairex.VerifyOffer(info.NodePub, d); err != nil {
		r.bumpRejected()
		return err
	}
	if d.Price > r.cfg.MaxPrice {
		r.bumpRejected()
		return fmt.Errorf("%w: asked %d, max %d", fairex.ErrPriceTooHigh, d.Price, r.cfg.MaxPrice)
	}
	r.mu.Lock()
	r.pendingOffchain[offchainKey{eui: d.DevEUI, counter: d.Exchange}] = d
	r.mu.Unlock()
	return nil
}

// SettleOffChain completes a channel-mode exchange: verify that the
// disclosed key bytes match the delivery's ePk, strip both encryption
// layers, and return the plaintext. Called with the key carried by the
// gateway's channel update acknowledgement.
func (r *Recipient) SettleOffChain(devEUI lora.DevEUI, exchange uint32, keyBytes []byte) (*Message, error) {
	ok := offchainKey{eui: devEUI, counter: exchange}
	r.mu.Lock()
	d, found := r.pendingOffchain[ok]
	info := r.devices[devEUI]
	r.mu.Unlock()
	if !found {
		return nil, fmt.Errorf("%w: %s (exchange %d)", ErrExchangeNotFound, devEUI, exchange)
	}
	eSk, err := fairex.VerifyDisclosedKey(d, keyBytes)
	if err != nil {
		return nil, err
	}
	frame, err := bccrypto.DecryptRSA512(eSk, d.Em)
	if err != nil {
		return nil, fmt.Errorf("recipient: rsa layer: %w", err)
	}
	plaintext, err := bccrypto.DecryptFrame(info.SharedKey, frame)
	if err != nil {
		return nil, fmt.Errorf("recipient: aes layer: %w", err)
	}
	r.mu.Lock()
	delete(r.pendingOffchain, ok)
	r.Stats.Decryptions++
	r.Stats.OffChainSettles++
	r.mu.Unlock()
	return &Message{DevEUI: devEUI, Plaintext: plaintext}, nil
}

// DropOffChain abandons a registered off-chain exchange (e.g. the channel
// path failed and the delivery is being re-settled on-chain).
func (r *Recipient) DropOffChain(devEUI lora.DevEUI, exchange uint32) {
	r.mu.Lock()
	delete(r.pendingOffchain, offchainKey{eui: devEUI, counter: exchange})
	r.mu.Unlock()
}

// Refund reclaims an expired, unclaimed payment through the Listing 1
// OP_ELSE path. It fails (at the ledger) before the refund height.
func (r *Recipient) Refund(paymentID chain.Hash) (*chain.Tx, error) {
	r.mu.Lock()
	pend, ok := r.pending[paymentID]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrExchangeNotFound, paymentID)
	}
	params, err := script.ParseKeyRelease(pend.payment.Outputs[0].Lock)
	if err != nil {
		return nil, fmt.Errorf("recipient: parse own payment: %w", err)
	}
	refund, err := r.wallet.BuildRefund(
		chain.OutPoint{TxID: paymentID, Index: 0},
		pend.payment.Outputs[0], params.RefundHeight, r.cfg.RefundFee)
	if err != nil {
		return nil, fmt.Errorf("recipient: build refund: %w", err)
	}
	if err := r.ledger.Submit(refund); err != nil {
		return nil, fmt.Errorf("recipient: submit refund: %w", err)
	}
	r.mu.Lock()
	delete(r.pending, paymentID)
	r.Stats.Refunds++
	r.mu.Unlock()
	return refund, nil
}

// PendingPayments lists the exchanges awaiting a claim.
func (r *Recipient) PendingPayments() []chain.Hash {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]chain.Hash, 0, len(r.pending))
	for id := range r.pending {
		out = append(out, id)
	}
	return out
}

func (r *Recipient) bumpRejected() {
	r.mu.Lock()
	r.Stats.RejectedOffers++
	r.mu.Unlock()
}
