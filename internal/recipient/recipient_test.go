package recipient

import (
	"crypto/rand"
	"errors"
	"testing"
	"time"

	"bcwan/internal/bccrypto"
	"bcwan/internal/chain"
	"bcwan/internal/fairex"
	"bcwan/internal/lora"
	"bcwan/internal/wallet"
)

type fixture struct {
	rcpt    *Recipient
	node    *fairex.Node
	miner   *chain.Miner
	gw      *wallet.Wallet
	nodeKey *bccrypto.RSA512PrivateKey
	eKey    *bccrypto.RSA512PrivateKey
	shared  []byte
	eui     lora.DevEUI
	now     time.Time
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	rcptW, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	gwW, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	minerW, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	genesis := chain.GenesisBlock(map[[20]byte]uint64{rcptW.PubKeyHash(): 100_000})
	c, err := chain.New(chain.DefaultParams(), genesis)
	if err != nil {
		t.Fatal(err)
	}
	c.AuthorizeMiner(minerW.PublicBytes())
	pool := chain.NewMempool()
	node := &fairex.Node{Chain: c, Pool: pool}

	nodeKey, err := bccrypto.GenerateRSA512(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	eKey, err := bccrypto.GenerateRSA512(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	shared := make([]byte, bccrypto.AESKeySize)
	if _, err := rand.Read(shared); err != nil {
		t.Fatal(err)
	}
	eui := lora.DevEUI{0x01}

	r := New(DefaultConfig(), rcptW, node, rand.Reader)
	r.Provision(eui, DeviceInfo{SharedKey: shared, NodePub: nodeKey.Public()})
	return &fixture{
		rcpt:    r,
		node:    node,
		miner:   chain.NewMiner(minerW.Key(), c, pool, rand.Reader),
		gw:      gwW,
		nodeKey: nodeKey,
		eKey:    eKey,
		shared:  shared,
		eui:     eui,
		now:     time.Date(2018, 12, 10, 0, 0, 0, 0, time.UTC),
	}
}

func (f *fixture) mine(t *testing.T) {
	t.Helper()
	f.now = f.now.Add(15 * time.Second)
	if _, err := f.miner.Mine(f.now); err != nil {
		t.Fatal(err)
	}
}

// delivery builds a valid signed Delivery for the fixture's device.
func (f *fixture) delivery(t *testing.T, plaintext string) *fairex.Delivery {
	t.Helper()
	frame, err := bccrypto.EncryptFrame(rand.Reader, f.shared, []byte(plaintext))
	if err != nil {
		t.Fatal(err)
	}
	em, err := bccrypto.EncryptRSA512(rand.Reader, f.eKey.Public(), frame)
	if err != nil {
		t.Fatal(err)
	}
	ePk := bccrypto.MarshalRSA512PublicKey(f.eKey.Public())
	sig := bccrypto.SignRSA512(f.nodeKey, fairex.SignedBlob(em, ePk))
	return &fairex.Delivery{
		DevEUI:            f.eui,
		Exchange:          1,
		Em:                em,
		EPk:               ePk,
		Sig:               sig,
		GatewayPubKeyHash: f.gw.PubKeyHash(),
		Price:             100,
		RefundWindow:      100,
	}
}

func TestHandleDeliveryThenSettleClaimTx(t *testing.T) {
	f := newFixture(t)
	payment, err := f.rcpt.HandleDelivery(f.delivery(t, "9.81m/s2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.rcpt.PendingPayments()) != 1 {
		t.Fatal("payment not pending")
	}

	claim, err := f.gw.BuildClaim(chain.OutPoint{TxID: payment.ID(), Index: 0}, payment.Outputs[0], f.eKey, 1)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := f.rcpt.SettleClaimTx(payment.ID(), claim)
	if err != nil {
		t.Fatal(err)
	}
	if string(msg.Plaintext) != "9.81m/s2" {
		t.Fatalf("plaintext = %q", msg.Plaintext)
	}
	if len(f.rcpt.PendingPayments()) != 0 {
		t.Fatal("exchange not cleared after settle")
	}
	if f.rcpt.Stats.Decryptions != 1 || f.rcpt.Stats.Payments != 1 {
		t.Fatalf("stats = %+v", f.rcpt.Stats)
	}
}

func TestSettleClaimTxRejectsWrongSpender(t *testing.T) {
	f := newFixture(t)
	payment, err := f.rcpt.HandleDelivery(f.delivery(t, "x"))
	if err != nil {
		t.Fatal(err)
	}
	// A claim that does not spend this payment.
	other := &chain.Tx{Version: 9, Inputs: []chain.TxIn{{Prev: chain.OutPoint{TxID: chain.Hash{0xee}}}}}
	if _, err := f.rcpt.SettleClaimTx(payment.ID(), other); !errors.Is(err, fairex.ErrNoClaim) {
		t.Fatalf("err = %v, want ErrNoClaim", err)
	}
}

func TestSettleClaimTxUnknownPayment(t *testing.T) {
	f := newFixture(t)
	claimLike := &chain.Tx{Version: 1, Inputs: []chain.TxIn{{Prev: chain.OutPoint{TxID: chain.Hash{0x01}, Index: 0}}}}
	if _, err := f.rcpt.SettleClaimTx(chain.Hash{0x01}, claimLike); err == nil {
		t.Fatal("settle for unknown payment succeeded")
	}
}

func TestHandleDeliveryInsufficientFunds(t *testing.T) {
	f := newFixture(t)
	d := f.delivery(t, "x")
	d.Price = 100
	// Drain the recipient by paying out everything first.
	drain, err := f.rcpt.Wallet().BuildPayment(f.node.UTXO(), f.gw.PubKeyHash(), 99_998, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.node.Submit(drain); err != nil {
		t.Fatal(err)
	}
	if _, err := f.rcpt.HandleDelivery(d); err == nil {
		t.Fatal("payment built without funds")
	}
}

func TestRefundUnknownPayment(t *testing.T) {
	f := newFixture(t)
	if _, err := f.rcpt.Refund(chain.Hash{0x42}); !errors.Is(err, ErrExchangeNotFound) {
		t.Fatalf("err = %v, want ErrExchangeNotFound", err)
	}
}

func TestRefundLifecycle(t *testing.T) {
	f := newFixture(t)
	payment, err := f.rcpt.HandleDelivery(f.delivery(t, "x"))
	if err != nil {
		t.Fatal(err)
	}
	f.mine(t)
	// Before expiry the ledger rejects; the exchange stays pending.
	if _, err := f.rcpt.Refund(payment.ID()); err == nil {
		t.Fatal("early refund accepted")
	}
	if len(f.rcpt.PendingPayments()) != 1 {
		t.Fatal("failed refund dropped the exchange")
	}
	for f.node.Height() < 101 {
		f.mine(t)
	}
	if _, err := f.rcpt.Refund(payment.ID()); err != nil {
		t.Fatalf("refund after expiry: %v", err)
	}
	if f.rcpt.Stats.Refunds != 1 {
		t.Fatalf("stats = %+v", f.rcpt.Stats)
	}
}

func TestSettleClaimFromChain(t *testing.T) {
	f := newFixture(t)
	payment, err := f.rcpt.HandleDelivery(f.delivery(t, "42"))
	if err != nil {
		t.Fatal(err)
	}
	claim, err := f.gw.BuildClaim(chain.OutPoint{TxID: payment.ID(), Index: 0}, payment.Outputs[0], f.eKey, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.node.Submit(claim); err != nil {
		t.Fatal(err)
	}
	// Unconfirmed: chain-scan settle fails.
	if _, err := f.rcpt.SettleClaim(payment.ID()); !errors.Is(err, fairex.ErrNoClaim) {
		t.Fatalf("err = %v, want ErrNoClaim before confirmation", err)
	}
	f.mine(t)
	msg, err := f.rcpt.SettleClaim(payment.ID())
	if err != nil {
		t.Fatal(err)
	}
	if string(msg.Plaintext) != "42" {
		t.Fatalf("plaintext = %q", msg.Plaintext)
	}
}
