package bccrypto

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"
	"testing/quick"
)

func testAESKey() []byte {
	key := make([]byte, AESKeySize)
	for i := range key {
		key[i] = byte(i)
	}
	return key
}

func TestEncryptFrameCanonicalSize(t *testing.T) {
	// Fig. 4: plaintext under 16 bytes yields exactly a 34-byte frame.
	key := testAESKey()
	for _, size := range []int{0, 1, 8, MaxCanonicalPlaintext} {
		frame, err := EncryptFrame(rand.Reader, key, make([]byte, size))
		if err != nil {
			t.Fatalf("encrypt %d bytes: %v", size, err)
		}
		if len(frame) != CanonicalFrameLen {
			t.Errorf("frame size for %d-byte plaintext = %d, want %d (Fig. 4)",
				size, len(frame), CanonicalFrameLen)
		}
	}
}

func TestEncryptFrameLayout(t *testing.T) {
	key := testAESKey()
	frame, err := EncryptFrame(rand.Reader, key, []byte("21.5C"))
	if err != nil {
		t.Fatal(err)
	}
	if frame[0] != FrameIVLen {
		t.Errorf("IV length byte = %d, want %d", frame[0], FrameIVLen)
	}
	if frame[1+FrameIVLen] != 16 {
		t.Errorf("ciphertext length byte = %d, want 16", frame[1+FrameIVLen])
	}
}

func TestFrameRoundTrip(t *testing.T) {
	key := testAESKey()
	for _, msg := range []string{"", "t", "21.5C;48%", "a sixteen-byte!!", "a message longer than one CBC block"} {
		frame, err := EncryptFrame(rand.Reader, key, []byte(msg))
		if err != nil {
			t.Fatalf("encrypt %q: %v", msg, err)
		}
		pt, err := DecryptFrame(key, frame)
		if err != nil {
			t.Fatalf("decrypt %q: %v", msg, err)
		}
		if string(pt) != msg {
			t.Fatalf("round trip %q: got %q", msg, pt)
		}
	}
}

func TestFrameRoundTripQuick(t *testing.T) {
	key := testAESKey()
	f := func(msg []byte) bool {
		if len(msg) > 200 {
			msg = msg[:200]
		}
		frame, err := EncryptFrame(rand.Reader, key, msg)
		if err != nil {
			return false
		}
		pt, err := DecryptFrame(key, frame)
		return err == nil && bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameWrongKeyFails(t *testing.T) {
	key := testAESKey()
	other := make([]byte, AESKeySize)
	copy(other, key)
	other[0] ^= 0xff
	frame, err := EncryptFrame(rand.Reader, key, []byte("reading"))
	if err != nil {
		t.Fatal(err)
	}
	// Wrong key almost surely corrupts the padding. (A 1-in-256 false
	// accept is possible with CBC; the fixed vector here does not hit it.)
	if pt, err := DecryptFrame(other, frame); err == nil && bytes.Equal(pt, []byte("reading")) {
		t.Fatal("wrong key produced the original plaintext")
	}
}

func TestFrameRejectsBadKeySize(t *testing.T) {
	if _, err := EncryptFrame(rand.Reader, make([]byte, 16), nil); !errors.Is(err, ErrBadKeySize) {
		t.Fatalf("encrypt err = %v, want ErrBadKeySize", err)
	}
	if _, err := DecryptFrame(make([]byte, 16), make([]byte, CanonicalFrameLen)); !errors.Is(err, ErrBadKeySize) {
		t.Fatalf("decrypt err = %v, want ErrBadKeySize", err)
	}
}

func TestDecryptFrameRejectsMalformed(t *testing.T) {
	key := testAESKey()
	good, err := EncryptFrame(rand.Reader, key, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":             {},
		"one byte":          {16},
		"bad iv len":        append([]byte{15}, good[1:]...),
		"truncated body":    good[:20],
		"bad ct len":        func() []byte { f := append([]byte(nil), good...); f[1+FrameIVLen] = 15; return f }(),
		"extra bytes":       append(append([]byte(nil), good...), 0x00),
		"zero-length ct":    {16, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		"non-block-mult ct": func() []byte { f := append([]byte(nil), good...); f[1+FrameIVLen] = 17; return append(f, 0x00) }(),
	}
	for name, frame := range cases {
		if _, err := DecryptFrame(key, frame); err == nil {
			t.Errorf("%s: malformed frame accepted", name)
		}
	}
}

func TestDecryptFrameCorruptedCiphertext(t *testing.T) {
	key := testAESKey()
	frame, err := EncryptFrame(rand.Reader, key, []byte("integrity"))
	if err != nil {
		t.Fatal(err)
	}
	frame[len(frame)-1] ^= 0x01
	if pt, err := DecryptFrame(key, frame); err == nil && string(pt) == "integrity" {
		t.Fatal("corrupted ciphertext decrypted to original plaintext")
	}
}

func TestPKCS7Properties(t *testing.T) {
	f := func(data []byte) bool {
		padded := pkcs7Pad(data, 16)
		if len(padded)%16 != 0 || len(padded) <= len(data) {
			return false
		}
		out, err := pkcs7Unpad(padded, 16)
		return err == nil && bytes.Equal(out, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPKCS7UnpadRejects(t *testing.T) {
	cases := [][]byte{
		nil,
		make([]byte, 15),                     // not block multiple
		append(make([]byte, 15), 0),          // zero pad byte
		append(make([]byte, 15), 17),         // pad > block
		append(make([]byte, 14), 0x01, 0x02), // inconsistent pad bytes
	}
	for i, c := range cases {
		if _, err := pkcs7Unpad(c, 16); err == nil {
			t.Errorf("case %d: invalid padding accepted", i)
		}
	}
}

func TestDoubleEncryptionFig3(t *testing.T) {
	// End-to-end of Fig. 3 step 3: AES frame wrapped in RSA-512 must fit
	// one RSA block and round-trip.
	key, _ := testKeys(t)
	sharedK := testAESKey()
	frame, err := EncryptFrame(rand.Reader, sharedK, []byte("22.1C"))
	if err != nil {
		t.Fatal(err)
	}
	em, err := EncryptRSA512(rand.Reader, key.Public(), frame)
	if err != nil {
		t.Fatalf("34-byte frame does not fit RSA-512 block: %v", err)
	}
	if len(em) != RSA512ModulusLen {
		t.Fatalf("Em length = %d, want %d (64-byte double encryption)", len(em), RSA512ModulusLen)
	}
	frameBack, err := DecryptRSA512(key, em)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := DecryptFrame(sharedK, frameBack)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "22.1C" {
		t.Fatalf("double decryption = %q, want 22.1C", pt)
	}
}

func BenchmarkEncryptFrame(b *testing.B) {
	key := testAESKey()
	msg := []byte("21.5C;48%;ok")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncryptFrame(rand.Reader, key, msg); err != nil {
			b.Fatal(err)
		}
	}
}
