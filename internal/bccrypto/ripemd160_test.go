package bccrypto

import (
	"bytes"
	"encoding/hex"
	"strings"
	"testing"
	"testing/quick"
)

// Official test vectors from the RIPEMD-160 specification
// (Dobbertin, Bosselaers, Preneel).
var ripemdVectors = []struct {
	in   string
	want string
}{
	{"", "9c1185a5c5e9fc54612808977ee8f548b2258d31"},
	{"a", "0bdc9d2d256b3ee9daae347be6f4dc835a467ffe"},
	{"abc", "8eb208f7e05d987a9b044a8e98c6b087f15a0bfc"},
	{"message digest", "5d0689ef49d2fae572b881b123a85ffa21595f36"},
	{"abcdefghijklmnopqrstuvwxyz", "f71c27109c692c1b56bbdceb5b9d2865b3708dbc"},
	{
		"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
		"12a053384a9c0c88e405a06c27dcf49ada62eb2b",
	},
	{
		"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
		"b0e20b6e3116640286ed3a87a5713079b21f5189",
	},
	{
		strings.Repeat("1234567890", 8),
		"9b752e45573d4b39f4dbd3323cab82bf63326bfb",
	},
}

func TestRipemd160Vectors(t *testing.T) {
	for _, tt := range ripemdVectors {
		got := Ripemd160([]byte(tt.in))
		if hex.EncodeToString(got[:]) != tt.want {
			t.Errorf("Ripemd160(%q) = %x, want %s", tt.in, got, tt.want)
		}
	}
}

func TestRipemd160MillionA(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping 1M-byte vector in short mode")
	}
	h := NewRipemd160()
	chunk := bytes.Repeat([]byte("a"), 1000)
	for i := 0; i < 1000; i++ {
		h.Write(chunk)
	}
	got := hex.EncodeToString(h.Sum(nil))
	const want = "52783243c1697bdbe16d37f97f68f08325dc1528"
	if got != want {
		t.Fatalf("Ripemd160(1M x 'a') = %s, want %s", got, want)
	}
}

func TestRipemd160IncrementalMatchesOneShot(t *testing.T) {
	// Property: writing in arbitrary chunk sizes yields the same digest
	// as a single Write.
	data := []byte(strings.Repeat("BcWAN federated LPWAN ", 41))
	want := Ripemd160(data)
	for _, chunk := range []int{1, 3, 7, 63, 64, 65, 128} {
		h := NewRipemd160()
		for i := 0; i < len(data); i += chunk {
			end := i + chunk
			if end > len(data) {
				end = len(data)
			}
			h.Write(data[i:end])
		}
		if got := h.Sum(nil); !bytes.Equal(got, want[:]) {
			t.Errorf("chunk %d: digest %x, want %x", chunk, got, want)
		}
	}
}

func TestRipemd160SumDoesNotMutateState(t *testing.T) {
	h := NewRipemd160()
	h.Write([]byte("partial"))
	first := h.Sum(nil)
	second := h.Sum(nil)
	if !bytes.Equal(first, second) {
		t.Fatalf("Sum mutates state: %x then %x", first, second)
	}
	h.Write([]byte(" more"))
	want := Ripemd160([]byte("partial more"))
	if got := h.Sum(nil); !bytes.Equal(got, want[:]) {
		t.Fatalf("continued digest %x, want %x", got, want)
	}
}

func TestRipemd160Reset(t *testing.T) {
	h := NewRipemd160()
	h.Write([]byte("garbage"))
	h.Reset()
	h.Write([]byte("abc"))
	got := hex.EncodeToString(h.Sum(nil))
	if want := "8eb208f7e05d987a9b044a8e98c6b087f15a0bfc"; got != want {
		t.Fatalf("after Reset digest = %s, want %s", got, want)
	}
}

func TestRipemd160SumAppends(t *testing.T) {
	h := NewRipemd160()
	h.Write([]byte("abc"))
	prefix := []byte{0xde, 0xad}
	out := h.Sum(prefix)
	if !bytes.Equal(out[:2], prefix) {
		t.Fatalf("Sum did not preserve prefix: %x", out[:2])
	}
	if len(out) != 2+Ripemd160Size {
		t.Fatalf("Sum length = %d, want %d", len(out), 2+Ripemd160Size)
	}
}

func TestRipemd160QuickDeterministic(t *testing.T) {
	// Property: the digest is a pure function of its input.
	f := func(data []byte) bool {
		return Ripemd160(data) == Ripemd160(append([]byte(nil), data...))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRipemd160QuickLengthBoundaries(t *testing.T) {
	// Exercise every padding branch: lengths 0..130 must all produce
	// 20-byte digests and distinct digests for distinct all-zero lengths.
	seen := make(map[[Ripemd160Size]byte]int, 131)
	for n := 0; n <= 130; n++ {
		d := Ripemd160(make([]byte, n))
		if prev, dup := seen[d]; dup {
			t.Fatalf("lengths %d and %d collide", prev, n)
		}
		seen[d] = n
	}
}

func BenchmarkRipemd160(b *testing.B) {
	data := make([]byte, 1024)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Ripemd160(data)
	}
}
