// Package bccrypto implements the cryptographic primitives BcWAN needs on
// top of the Go standard library: RIPEMD-160 and base58check for blockchain
// addresses, the AES-256-CBC message frame of the paper's Fig. 4, and
// RSA-512 (built from scratch on math/big because crypto/rsa refuses keys
// under 1024 bits) for the ephemeral fair-exchange keys and node
// signatures.
//
// RSA-512 is intentionally weak; the paper (§6) accepts this because the
// cost of factoring a 512-bit modulus exceeds the micro-payment value each
// key protects, and the LoRa payload budget cannot fit larger keys.
package bccrypto

import (
	"encoding/binary"
	"hash"
)

// RIPEMD-160, implemented from the original Dobbertin/Bosselaers/Preneel
// specification. Used for HASH160 = RIPEMD160(SHA256(x)), the address and
// script-hash digest of the blockchain substrate.

// Ripemd160Size is the digest size in bytes.
const Ripemd160Size = 20

const ripemd160BlockSize = 64

type ripemd160 struct {
	s   [5]uint32
	x   [ripemd160BlockSize]byte
	nx  int
	len uint64
}

var _ hash.Hash = (*ripemd160)(nil)

// NewRipemd160 returns a new RIPEMD-160 hash.Hash.
func NewRipemd160() hash.Hash {
	d := new(ripemd160)
	d.Reset()
	return d
}

// Ripemd160 returns the RIPEMD-160 digest of data.
func Ripemd160(data []byte) [Ripemd160Size]byte {
	d := new(ripemd160)
	d.Reset()
	d.Write(data)
	var out [Ripemd160Size]byte
	copy(out[:], d.Sum(nil))
	return out
}

func (d *ripemd160) Reset() {
	d.s = [5]uint32{0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0}
	d.nx = 0
	d.len = 0
}

func (d *ripemd160) Size() int { return Ripemd160Size }

func (d *ripemd160) BlockSize() int { return ripemd160BlockSize }

func (d *ripemd160) Write(p []byte) (int, error) {
	n := len(p)
	d.len += uint64(n)
	if d.nx > 0 {
		c := copy(d.x[d.nx:], p)
		d.nx += c
		if d.nx == ripemd160BlockSize {
			d.block(d.x[:])
			d.nx = 0
		}
		p = p[c:]
	}
	for len(p) >= ripemd160BlockSize {
		d.block(p[:ripemd160BlockSize])
		p = p[ripemd160BlockSize:]
	}
	if len(p) > 0 {
		d.nx = copy(d.x[:], p)
	}
	return n, nil
}

func (d *ripemd160) Sum(in []byte) []byte {
	// Clone so Sum does not mutate the running state.
	dd := *d
	var pad [ripemd160BlockSize + 8]byte
	pad[0] = 0x80
	// Pad with 0x80 then zeros so that 8 bytes remain in the final block
	// for the little-endian bit length.
	padLen := ripemd160BlockSize - (dd.len+8)%ripemd160BlockSize
	msgBits := dd.len << 3
	dd.Write(pad[:padLen])
	var lenb [8]byte
	binary.LittleEndian.PutUint64(lenb[:], msgBits)
	dd.Write(lenb[:])
	var out [Ripemd160Size]byte
	for i, v := range dd.s {
		binary.LittleEndian.PutUint32(out[i*4:], v)
	}
	return append(in, out[:]...)
}

// Message word selection and rotation amounts for the two parallel lines.
var (
	ripemdRL = [80]uint{
		0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
		7, 4, 13, 1, 10, 6, 15, 3, 12, 0, 9, 5, 2, 14, 11, 8,
		3, 10, 14, 4, 9, 15, 8, 1, 2, 7, 0, 6, 13, 11, 5, 12,
		1, 9, 11, 10, 0, 8, 12, 4, 13, 3, 7, 15, 14, 5, 6, 2,
		4, 0, 5, 9, 7, 12, 2, 10, 14, 1, 3, 8, 11, 6, 15, 13,
	}
	ripemdRR = [80]uint{
		5, 14, 7, 0, 9, 2, 11, 4, 13, 6, 15, 8, 1, 10, 3, 12,
		6, 11, 3, 7, 0, 13, 5, 10, 14, 15, 8, 12, 4, 9, 1, 2,
		15, 5, 1, 3, 7, 14, 6, 9, 11, 8, 12, 2, 10, 0, 4, 13,
		8, 6, 4, 1, 3, 11, 15, 0, 5, 12, 2, 13, 9, 7, 10, 14,
		12, 15, 10, 4, 1, 5, 8, 7, 6, 2, 13, 14, 0, 3, 9, 11,
	}
	ripemdSL = [80]uint{
		11, 14, 15, 12, 5, 8, 7, 9, 11, 13, 14, 15, 6, 7, 9, 8,
		7, 6, 8, 13, 11, 9, 7, 15, 7, 12, 15, 9, 11, 7, 13, 12,
		11, 13, 6, 7, 14, 9, 13, 15, 14, 8, 13, 6, 5, 12, 7, 5,
		11, 12, 14, 15, 14, 15, 9, 8, 9, 14, 5, 6, 8, 6, 5, 12,
		9, 15, 5, 11, 6, 8, 13, 12, 5, 12, 13, 14, 11, 8, 5, 6,
	}
	ripemdSR = [80]uint{
		8, 9, 9, 11, 13, 15, 15, 5, 7, 7, 8, 11, 14, 14, 12, 6,
		9, 13, 15, 7, 12, 8, 9, 11, 7, 7, 12, 7, 6, 15, 13, 11,
		9, 7, 15, 11, 8, 6, 6, 14, 12, 13, 5, 14, 13, 13, 7, 5,
		15, 5, 8, 11, 14, 14, 6, 14, 6, 9, 12, 9, 12, 5, 15, 8,
		8, 5, 12, 9, 12, 5, 14, 6, 8, 13, 6, 5, 15, 13, 11, 11,
	}
)

func rol32(x uint32, s uint) uint32 { return x<<s | x>>(32-s) }

func (d *ripemd160) block(p []byte) {
	var x [16]uint32
	for i := range x {
		x[i] = binary.LittleEndian.Uint32(p[i*4:])
	}

	a, b, c, dd, e := d.s[0], d.s[1], d.s[2], d.s[3], d.s[4]
	aa, bb, cc, ddd, ee := a, b, c, dd, e

	for j := 0; j < 80; j++ {
		round := j / 16

		// Left line: f1..f5, constants K.
		var f, k uint32
		switch round {
		case 0:
			f, k = b^c^dd, 0x00000000
		case 1:
			f, k = (b&c)|(^b&dd), 0x5a827999
		case 2:
			f, k = (b|^c)^dd, 0x6ed9eba1
		case 3:
			f, k = (b&dd)|(c&^dd), 0x8f1bbcdc
		default:
			f, k = b^(c|^dd), 0xa953fd4e
		}
		t := rol32(a+f+x[ripemdRL[j]]+k, ripemdSL[j]) + e
		a, e, dd, c, b = e, dd, rol32(c, 10), b, t

		// Right line: f5..f1, constants K'.
		switch round {
		case 0:
			f, k = bb^(cc|^ddd), 0x50a28be6
		case 1:
			f, k = (bb&ddd)|(cc&^ddd), 0x5c4dd124
		case 2:
			f, k = (bb|^cc)^ddd, 0x6d703ef3
		case 3:
			f, k = (bb&cc)|(^bb&ddd), 0x7a6d76e9
		default:
			f, k = bb^cc^ddd, 0x00000000
		}
		t = rol32(aa+f+x[ripemdRR[j]]+k, ripemdSR[j]) + ee
		aa, ee, ddd, cc, bb = ee, ddd, rol32(cc, 10), bb, t
	}

	t := d.s[1] + c + ddd
	d.s[1] = d.s[2] + dd + ee
	d.s[2] = d.s[3] + e + aa
	d.s[3] = d.s[4] + a + bb
	d.s[4] = d.s[0] + b + cc
	d.s[0] = t
}
