package bccrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"errors"
	"fmt"
	"io"
)

// AES-256-CBC message frame per the paper's Fig. 4:
//
//	| Len | Initialization Vector (IV) | Len | Ciphertext |
//	  1 B            16 B               1 B     n·16 B
//
// For the paper's canonical sensor readings (plaintext under 16 bytes,
// e.g. temperature or humidity) the ciphertext is one block and the frame
// is exactly 34 bytes, small enough to be wrapped whole in a single
// RSA-512 encryption (the "double encryption" of Fig. 3 step 3).

// AESKeySize is the symmetric key size: AES-256.
const AESKeySize = 32

// FrameIVLen is the CBC initialization-vector length.
const FrameIVLen = aes.BlockSize

// CanonicalFrameLen is the Fig. 4 frame size for a single-block message:
// 1 + 16 + 1 + 16 = 34 bytes.
const CanonicalFrameLen = 2 + FrameIVLen + aes.BlockSize

// MaxCanonicalPlaintext is the largest plaintext that still yields the
// canonical 34-byte frame (one CBC block after PKCS#7 padding).
const MaxCanonicalPlaintext = aes.BlockSize - 1

var (
	// ErrBadKeySize reports a symmetric key that is not 32 bytes.
	ErrBadKeySize = errors.New("bccrypto: AES key must be 32 bytes")
	// ErrBadFrame reports a malformed Fig. 4 frame.
	ErrBadFrame = errors.New("bccrypto: malformed AES message frame")
	// ErrBadPadding reports invalid PKCS#7 padding after decryption,
	// i.e. a wrong key or corrupted ciphertext.
	ErrBadPadding = errors.New("bccrypto: bad PKCS#7 padding")
)

// EncryptFrame encrypts plaintext under the 32-byte shared key K with a
// random IV and returns the Fig. 4 frame.
func EncryptFrame(random io.Reader, key, plaintext []byte) ([]byte, error) {
	if len(key) != AESKeySize {
		return nil, ErrBadKeySize
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("aes: %w", err)
	}
	iv := make([]byte, FrameIVLen)
	if _, err := io.ReadFull(random, iv); err != nil {
		return nil, fmt.Errorf("iv: %w", err)
	}
	padded := pkcs7Pad(plaintext, aes.BlockSize)
	if len(padded) > 255 {
		return nil, fmt.Errorf("%w: plaintext too long", ErrBadFrame)
	}
	ct := make([]byte, len(padded))
	cipher.NewCBCEncrypter(block, iv).CryptBlocks(ct, padded)

	frame := make([]byte, 0, 2+len(iv)+len(ct))
	frame = append(frame, byte(len(iv)))
	frame = append(frame, iv...)
	frame = append(frame, byte(len(ct)))
	frame = append(frame, ct...)
	return frame, nil
}

// DecryptFrame reverses EncryptFrame.
func DecryptFrame(key, frame []byte) ([]byte, error) {
	if len(key) != AESKeySize {
		return nil, ErrBadKeySize
	}
	if len(frame) < 2 {
		return nil, ErrBadFrame
	}
	ivLen := int(frame[0])
	if ivLen != FrameIVLen || len(frame) < 1+ivLen+1 {
		return nil, ErrBadFrame
	}
	iv := frame[1 : 1+ivLen]
	ctLen := int(frame[1+ivLen])
	ct := frame[2+ivLen:]
	if len(ct) != ctLen || ctLen == 0 || ctLen%aes.BlockSize != 0 {
		return nil, ErrBadFrame
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("aes: %w", err)
	}
	padded := make([]byte, ctLen)
	cipher.NewCBCDecrypter(block, iv).CryptBlocks(padded, ct)
	return pkcs7Unpad(padded, aes.BlockSize)
}

func pkcs7Pad(data []byte, blockSize int) []byte {
	pad := blockSize - len(data)%blockSize
	out := make([]byte, len(data)+pad)
	copy(out, data)
	for i := len(data); i < len(out); i++ {
		out[i] = byte(pad)
	}
	return out
}

func pkcs7Unpad(data []byte, blockSize int) ([]byte, error) {
	if len(data) == 0 || len(data)%blockSize != 0 {
		return nil, ErrBadPadding
	}
	pad := int(data[len(data)-1])
	if pad == 0 || pad > blockSize {
		return nil, ErrBadPadding
	}
	for _, b := range data[len(data)-pad:] {
		if int(b) != pad {
			return nil, ErrBadPadding
		}
	}
	return append([]byte(nil), data[:len(data)-pad]...), nil
}
