package bccrypto

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// ECDSA over P-256 is the blockchain's signature scheme (§2: "direct
// payment to one another by using ECDSA signatures and keys"). Public keys
// are serialized as uncompressed points; signatures are ASN.1 DER.

// ECPublicKeyLen is the serialized public key length: 0x04 ‖ X ‖ Y.
const ECPublicKeyLen = 1 + 2*32

// ErrBadPublicKey reports an unparseable serialized public key.
var ErrBadPublicKey = errors.New("bccrypto: invalid EC public key")

// ECKey is an ECDSA P-256 keypair used for blockchain identities.
type ECKey struct {
	priv *ecdsa.PrivateKey
}

// GenerateECKey creates a fresh P-256 keypair.
func GenerateECKey(random io.Reader) (*ECKey, error) {
	priv, err := ecdsa.GenerateKey(elliptic.P256(), random)
	if err != nil {
		return nil, fmt.Errorf("generate ecdsa key: %w", err)
	}
	return &ECKey{priv: priv}, nil
}

// PublicBytes returns the uncompressed public point 0x04 ‖ X ‖ Y.
func (k *ECKey) PublicBytes() []byte {
	out := make([]byte, ECPublicKeyLen)
	out[0] = 0x04
	k.priv.PublicKey.X.FillBytes(out[1:33])
	k.priv.PublicKey.Y.FillBytes(out[33:])
	return out
}

// PubKeyHash returns HASH160 of the serialized public key — the payment
// destination used in P2PKH outputs.
func (k *ECKey) PubKeyHash() [Ripemd160Size]byte {
	return Hash160(k.PublicBytes())
}

// Address returns the base58check address (version 0x19, chosen for this
// chain) of the key. This is the paper's blockchain address @R.
func (k *ECKey) Address() string {
	h := k.PubKeyHash()
	return Base58CheckEncode(AddressVersion, h[:])
}

// AddressVersion is the base58check version byte for BcWAN addresses.
const AddressVersion = 0x19

// AddressFromPubKeyHash renders a pubkey hash as a base58check address.
func AddressFromPubKeyHash(h [Ripemd160Size]byte) string {
	return Base58CheckEncode(AddressVersion, h[:])
}

// PubKeyHashFromAddress parses a base58check address back to its pubkey
// hash.
func PubKeyHashFromAddress(addr string) ([Ripemd160Size]byte, error) {
	var out [Ripemd160Size]byte
	version, payload, err := Base58CheckDecode(addr)
	if err != nil {
		return out, err
	}
	if version != AddressVersion {
		return out, fmt.Errorf("bccrypto: address version %#x, want %#x", version, AddressVersion)
	}
	if len(payload) != Ripemd160Size {
		return out, fmt.Errorf("bccrypto: address payload length %d", len(payload))
	}
	copy(out[:], payload)
	return out, nil
}

// SignDigest signs a 32-byte digest, returning an ASN.1 DER signature.
func (k *ECKey) SignDigest(random io.Reader, digest []byte) ([]byte, error) {
	sig, err := ecdsa.SignASN1(random, k.priv, digest)
	if err != nil {
		return nil, fmt.Errorf("ecdsa sign: %w", err)
	}
	return sig, nil
}

// Sign signs the SHA-256 digest of msg.
func (k *ECKey) Sign(random io.Reader, msg []byte) ([]byte, error) {
	digest := sha256.Sum256(msg)
	return k.SignDigest(random, digest[:])
}

// VerifyECDigest verifies an ASN.1 signature over a 32-byte digest with a
// serialized public key.
func VerifyECDigest(pubKey, digest, sig []byte) bool {
	pub, err := ParseECPublicKey(pubKey)
	if err != nil {
		return false
	}
	return ecdsa.VerifyASN1(pub, digest, sig)
}

// VerifyEC verifies a signature over the SHA-256 digest of msg.
func VerifyEC(pubKey, msg, sig []byte) bool {
	digest := sha256.Sum256(msg)
	return VerifyECDigest(pubKey, digest[:], sig)
}

// MarshalECPrivateKey encodes the private scalar as 32 big-endian bytes.
func (k *ECKey) MarshalECPrivateKey() []byte {
	out := make([]byte, 32)
	k.priv.D.FillBytes(out)
	return out
}

// ParseECPrivateKey reconstructs a keypair from a 32-byte private scalar.
func ParseECPrivateKey(data []byte) (*ECKey, error) {
	if len(data) != 32 {
		return nil, fmt.Errorf("bccrypto: private key length %d, want 32", len(data))
	}
	d := new(big.Int).SetBytes(data)
	curve := elliptic.P256()
	if d.Sign() <= 0 || d.Cmp(curve.Params().N) >= 0 {
		return nil, errors.New("bccrypto: private scalar out of range")
	}
	priv := new(ecdsa.PrivateKey)
	priv.Curve = curve
	priv.D = d
	priv.X, priv.Y = curve.ScalarBaseMult(data)
	return &ECKey{priv: priv}, nil
}

// ParseECPublicKey parses an uncompressed P-256 point.
func ParseECPublicKey(data []byte) (*ecdsa.PublicKey, error) {
	if len(data) != ECPublicKeyLen || data[0] != 0x04 {
		return nil, ErrBadPublicKey
	}
	x := new(big.Int).SetBytes(data[1:33])
	y := new(big.Int).SetBytes(data[33:])
	curve := elliptic.P256()
	// Reject points not on the curve (including the identity).
	if x.Sign() == 0 && y.Sign() == 0 {
		return nil, ErrBadPublicKey
	}
	if !onCurveP256(curve, x, y) {
		return nil, ErrBadPublicKey
	}
	return &ecdsa.PublicKey{Curve: curve, X: x, Y: y}, nil
}

// onCurveP256 checks y² = x³ - 3x + b (mod p) without using the deprecated
// elliptic.Unmarshal helpers.
func onCurveP256(curve elliptic.Curve, x, y *big.Int) bool {
	p := curve.Params().P
	if x.Cmp(p) >= 0 || y.Cmp(p) >= 0 || x.Sign() < 0 || y.Sign() < 0 {
		return false
	}
	y2 := new(big.Int).Mul(y, y)
	y2.Mod(y2, p)
	x3 := new(big.Int).Mul(x, x)
	x3.Mul(x3, x)
	threeX := new(big.Int).Lsh(x, 1)
	threeX.Add(threeX, x)
	x3.Sub(x3, threeX)
	x3.Add(x3, curve.Params().B)
	x3.Mod(x3, p)
	return y2.Cmp(x3) == 0
}
