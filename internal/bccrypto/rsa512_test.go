package bccrypto

import (
	"bytes"
	"crypto/rand"
	"errors"
	"math/big"
	"sync"
	"testing"
)

// testKeys caches generated keypairs: RSA-512 keygen costs tens of
// milliseconds and many tests only need *a* valid key.
var (
	testKeyOnce sync.Once
	testKeyA    *RSA512PrivateKey
	testKeyB    *RSA512PrivateKey
)

func testKeys(t testing.TB) (*RSA512PrivateKey, *RSA512PrivateKey) {
	t.Helper()
	testKeyOnce.Do(func() {
		var err error
		testKeyA, err = GenerateRSA512(rand.Reader)
		if err != nil {
			panic(err)
		}
		testKeyB, err = GenerateRSA512(rand.Reader)
		if err != nil {
			panic(err)
		}
	})
	return testKeyA, testKeyB
}

func TestGenerateRSA512Properties(t *testing.T) {
	key, _ := testKeys(t)
	if got := key.N.BitLen(); got != RSA512Bits {
		t.Errorf("modulus bit length = %d, want %d", got, RSA512Bits)
	}
	if key.E != 65537 {
		t.Errorf("public exponent = %d, want 65537", key.E)
	}
	// n = p·q must hold.
	if pq := new(big.Int).Mul(key.P, key.Q); pq.Cmp(key.N) != 0 {
		t.Error("N != P*Q")
	}
	// e·d ≡ 1 mod φ(n).
	one := big.NewInt(1)
	phi := new(big.Int).Mul(new(big.Int).Sub(key.P, one), new(big.Int).Sub(key.Q, one))
	ed := new(big.Int).Mul(big.NewInt(key.E), key.D)
	if new(big.Int).Mod(ed, phi).Cmp(one) != 0 {
		t.Error("e*d mod phi(n) != 1")
	}
}

func TestRSA512EncryptDecryptRoundTrip(t *testing.T) {
	key, _ := testKeys(t)
	for _, size := range []int{0, 1, 16, 34, 53} {
		msg := make([]byte, size)
		for i := range msg {
			msg[i] = byte(i * 7)
		}
		ct, err := EncryptRSA512(rand.Reader, key.Public(), msg)
		if err != nil {
			t.Fatalf("encrypt %d bytes: %v", size, err)
		}
		if len(ct) != RSA512ModulusLen {
			t.Fatalf("ciphertext length = %d, want %d", len(ct), RSA512ModulusLen)
		}
		pt, err := DecryptRSA512(key, ct)
		if err != nil {
			t.Fatalf("decrypt %d bytes: %v", size, err)
		}
		if !bytes.Equal(pt, msg) {
			t.Fatalf("round trip %d bytes: got %x, want %x", size, pt, msg)
		}
	}
}

func TestRSA512EncryptTooLong(t *testing.T) {
	key, _ := testKeys(t)
	msg := make([]byte, RSA512ModulusLen-10)
	if _, err := EncryptRSA512(rand.Reader, key.Public(), msg); !errors.Is(err, ErrMessageTooLong) {
		t.Fatalf("err = %v, want ErrMessageTooLong", err)
	}
}

func TestRSA512DecryptWrongKeyFails(t *testing.T) {
	keyA, keyB := testKeys(t)
	ct, err := EncryptRSA512(rand.Reader, keyA.Public(), []byte("sensor reading"))
	if err != nil {
		t.Fatal(err)
	}
	if pt, err := DecryptRSA512(keyB, ct); err == nil {
		t.Fatalf("decrypt with wrong key succeeded: %x", pt)
	}
}

func TestRSA512DecryptRejectsBadLength(t *testing.T) {
	key, _ := testKeys(t)
	if _, err := DecryptRSA512(key, make([]byte, 10)); !errors.Is(err, ErrDecryption) {
		t.Fatalf("err = %v, want ErrDecryption", err)
	}
}

func TestRSA512SignVerify(t *testing.T) {
	key, _ := testKeys(t)
	msg := []byte("Em || ePk payload to authenticate")
	sig := SignRSA512(key, msg)
	if len(sig) != RSA512ModulusLen {
		t.Fatalf("signature length = %d, want %d", len(sig), RSA512ModulusLen)
	}
	if err := VerifyRSA512(key.Public(), msg, sig); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestRSA512VerifyRejectsTamperedMessage(t *testing.T) {
	key, _ := testKeys(t)
	sig := SignRSA512(key, []byte("original"))
	if err := VerifyRSA512(key.Public(), []byte("tampered"), sig); !errors.Is(err, ErrVerification) {
		t.Fatalf("err = %v, want ErrVerification", err)
	}
}

func TestRSA512VerifyRejectsTamperedSignature(t *testing.T) {
	key, _ := testKeys(t)
	msg := []byte("original")
	sig := SignRSA512(key, msg)
	sig[10] ^= 0x01
	if err := VerifyRSA512(key.Public(), msg, sig); !errors.Is(err, ErrVerification) {
		t.Fatalf("err = %v, want ErrVerification", err)
	}
}

func TestRSA512VerifyRejectsWrongKey(t *testing.T) {
	keyA, keyB := testKeys(t)
	msg := []byte("original")
	sig := SignRSA512(keyA, msg)
	if err := VerifyRSA512(keyB.Public(), msg, sig); !errors.Is(err, ErrVerification) {
		t.Fatalf("err = %v, want ErrVerification", err)
	}
}

func TestMatchesPublic(t *testing.T) {
	keyA, keyB := testKeys(t)
	if !keyA.MatchesPublic(keyA.Public()) {
		t.Error("key does not match its own public half")
	}
	if keyA.MatchesPublic(keyB.Public()) {
		t.Error("key matches a foreign public key")
	}
	// A forged private key with the right modulus but wrong exponent must
	// not pass: this is exactly the cheating gateway OP_CHECKRSA512PAIR
	// defends against.
	forged := &RSA512PrivateKey{
		RSA512PublicKey: *keyA.Public(),
		D:               new(big.Int).Add(keyA.D, big.NewInt(2)),
	}
	if forged.MatchesPublic(keyA.Public()) {
		t.Error("forged private exponent passes pair check")
	}
}

func TestMatchesPublicNilSafety(t *testing.T) {
	keyA, _ := testKeys(t)
	var nilKey *RSA512PrivateKey
	if nilKey.MatchesPublic(keyA.Public()) {
		t.Error("nil private key matches")
	}
	if keyA.MatchesPublic(nil) {
		t.Error("matches nil public key")
	}
}

func TestRSA512PublicKeyMarshalRoundTrip(t *testing.T) {
	key, _ := testKeys(t)
	data := MarshalRSA512PublicKey(key.Public())
	if len(data) != 8+RSA512ModulusLen {
		t.Fatalf("encoded length = %d, want %d", len(data), 8+RSA512ModulusLen)
	}
	back, err := UnmarshalRSA512PublicKey(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.N.Cmp(key.N) != 0 || back.E != key.E {
		t.Fatal("public key round trip mismatch")
	}
}

func TestRSA512PrivateKeyMarshalRoundTrip(t *testing.T) {
	key, _ := testKeys(t)
	data := MarshalRSA512PrivateKey(key)
	back, err := UnmarshalRSA512PrivateKey(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.N.Cmp(key.N) != 0 || back.D.Cmp(key.D) != 0 {
		t.Fatal("private key round trip mismatch")
	}
	// The deserialized key (without P/Q) must still decrypt and pass the
	// pair check — the gateway's claim script carries exactly this form.
	ct, err := EncryptRSA512(rand.Reader, key.Public(), []byte("frame"))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := DecryptRSA512(back, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, []byte("frame")) {
		t.Fatal("deserialized key decryption mismatch")
	}
	if !back.MatchesPublic(key.Public()) {
		t.Fatal("deserialized key fails pair check")
	}
}

func TestUnmarshalRSA512Rejects(t *testing.T) {
	if _, err := UnmarshalRSA512PublicKey(make([]byte, 5)); err == nil {
		t.Error("short public key accepted")
	}
	if _, err := UnmarshalRSA512PublicKey(make([]byte, 8+RSA512ModulusLen)); err == nil {
		t.Error("all-zero public key accepted")
	}
	if _, err := UnmarshalRSA512PrivateKey(make([]byte, 5)); err == nil {
		t.Error("short private key accepted")
	}
}

func BenchmarkGenerateRSA512(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateRSA512(rand.Reader); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSA512Encrypt(b *testing.B) {
	key, _ := testKeys(b)
	msg := make([]byte, CanonicalFrameLen)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncryptRSA512(rand.Reader, key.Public(), msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSA512Decrypt(b *testing.B) {
	key, _ := testKeys(b)
	ct, err := EncryptRSA512(rand.Reader, key.Public(), make([]byte, CanonicalFrameLen))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecryptRSA512(key, ct); err != nil {
			b.Fatal(err)
		}
	}
}
