package bccrypto

import (
	"bytes"
	"encoding/hex"
	"errors"
	"testing"
	"testing/quick"
)

func TestBase58KnownVectors(t *testing.T) {
	tests := []struct {
		hexIn string
		want  string
	}{
		{"", ""},
		{"61", "2g"},
		{"626262", "a3gV"},
		{"636363", "aPEr"},
		{"73696d706c792061206c6f6e6720737472696e67", "2cFupjhnEsSn59qHXstmK2ffpLv2"},
		{"00eb15231dfceb60925886b67d065299925915aeb172c06647", "1NS17iag9jJgTHD1VXjvLCEnZuQ3rJDE9L"},
		{"516b6fcd0f", "ABnLTmg"},
		{"bf4f89001e670274dd", "3SEo3LWLoPntC"},
		{"572e4794", "3EFU7m"},
		{"ecac89cad93923c02321", "EJDM8drfXA6uyA"},
		{"10c8511e", "Rt5zm"},
		{"00000000000000000000", "1111111111"},
	}
	for _, tt := range tests {
		in, err := hex.DecodeString(tt.hexIn)
		if err != nil {
			t.Fatal(err)
		}
		if got := Base58Encode(in); got != tt.want {
			t.Errorf("Base58Encode(%s) = %q, want %q", tt.hexIn, got, tt.want)
		}
		back, err := Base58Decode(tt.want)
		if err != nil {
			t.Errorf("Base58Decode(%q): %v", tt.want, err)
			continue
		}
		if !bytes.Equal(back, in) {
			t.Errorf("Base58Decode(%q) = %x, want %s", tt.want, back, tt.hexIn)
		}
	}
}

func TestBase58DecodeRejectsBadChars(t *testing.T) {
	for _, s := range []string{"0", "O", "I", "l", "abc!", "+x"} {
		if _, err := Base58Decode(s); !errors.Is(err, ErrBadBase58) {
			t.Errorf("Base58Decode(%q) err = %v, want ErrBadBase58", s, err)
		}
	}
}

func TestBase58RoundTripQuick(t *testing.T) {
	f := func(data []byte) bool {
		back, err := Base58Decode(Base58Encode(data))
		return err == nil && bytes.Equal(back, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBase58CheckRoundTrip(t *testing.T) {
	payload := []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}
	s := Base58CheckEncode(0x42, payload)
	version, data, err := Base58CheckDecode(s)
	if err != nil {
		t.Fatal(err)
	}
	if version != 0x42 {
		t.Errorf("version = %#x, want 0x42", version)
	}
	if !bytes.Equal(data, payload) {
		t.Errorf("payload = %x, want %x", data, payload)
	}
}

func TestBase58CheckDetectsCorruption(t *testing.T) {
	s := Base58CheckEncode(0x00, []byte("gateway-address-payload!"))
	// Flip one character to another alphabet character.
	b := []byte(s)
	if b[3] == 'z' {
		b[3] = 'y'
	} else {
		b[3] = 'z'
	}
	if _, _, err := Base58CheckDecode(string(b)); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("corrupted decode err = %v, want ErrBadChecksum", err)
	}
}

func TestBase58CheckTooShort(t *testing.T) {
	if _, _, err := Base58CheckDecode("1"); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("short decode err = %v, want ErrBadChecksum", err)
	}
}

func TestBase58CheckQuick(t *testing.T) {
	f := func(version byte, payload []byte) bool {
		v, data, err := Base58CheckDecode(Base58CheckEncode(version, payload))
		return err == nil && v == version && bytes.Equal(data, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHash160KnownVector(t *testing.T) {
	// HASH160 of the empty string: RIPEMD160(SHA256("")).
	got := Hash160(nil)
	const want = "b472a266d0bd89c13706a4132ccfb16f7c3b9fcb"
	if hex.EncodeToString(got[:]) != want {
		t.Fatalf("Hash160(nil) = %x, want %s", got, want)
	}
}

func TestDoubleSHA256KnownVector(t *testing.T) {
	// Double SHA-256 of "hello".
	got := DoubleSHA256([]byte("hello"))
	const want = "9595c9df90075148eb06860365df33584b75bff782a510c6cd4883a419833d50"
	if hex.EncodeToString(got[:]) != want {
		t.Fatalf("DoubleSHA256(hello) = %x, want %s", got, want)
	}
}
