package bccrypto

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"
)

// Base58 (Bitcoin alphabet) and base58check, used for blockchain addresses
// (@R in the paper) so node firmware and provisioning tools exchange
// human-safe identifiers.

const base58Alphabet = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz"

var (
	// ErrBadBase58 reports a character outside the base58 alphabet.
	ErrBadBase58 = errors.New("bccrypto: invalid base58 character")
	// ErrBadChecksum reports a base58check payload whose checksum does
	// not match.
	ErrBadChecksum = errors.New("bccrypto: base58check checksum mismatch")

	base58Index = buildBase58Index()
	big58       = big.NewInt(58)
)

func buildBase58Index() [256]int8 {
	var idx [256]int8
	for i := range idx {
		idx[i] = -1
	}
	for i := 0; i < len(base58Alphabet); i++ {
		idx[base58Alphabet[i]] = int8(i)
	}
	return idx
}

// Base58Encode encodes data in base58.
func Base58Encode(data []byte) string {
	// Count leading zero bytes; each encodes as '1'.
	zeros := 0
	for zeros < len(data) && data[zeros] == 0 {
		zeros++
	}
	n := new(big.Int).SetBytes(data)
	// Worst-case output length: log(256)/log(58) ≈ 1.37 digits per byte.
	out := make([]byte, 0, len(data)*137/100+zeros+1)
	mod := new(big.Int)
	for n.Sign() > 0 {
		n.DivMod(n, big58, mod)
		out = append(out, base58Alphabet[mod.Int64()])
	}
	for i := 0; i < zeros; i++ {
		out = append(out, '1')
	}
	// Digits were produced least-significant first.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return string(out)
}

// Base58Decode decodes a base58 string.
func Base58Decode(s string) ([]byte, error) {
	zeros := 0
	for zeros < len(s) && s[zeros] == '1' {
		zeros++
	}
	n := new(big.Int)
	for i := zeros; i < len(s); i++ {
		d := base58Index[s[i]]
		if d < 0 {
			return nil, fmt.Errorf("%w: %q at %d", ErrBadBase58, s[i], i)
		}
		n.Mul(n, big58)
		n.Add(n, big.NewInt(int64(d)))
	}
	body := n.Bytes()
	out := make([]byte, zeros+len(body))
	copy(out[zeros:], body)
	return out, nil
}

// Base58CheckEncode prefixes data with version, appends the 4-byte double
// SHA-256 checksum, and base58-encodes the result.
func Base58CheckEncode(version byte, data []byte) string {
	payload := make([]byte, 0, 1+len(data)+4)
	payload = append(payload, version)
	payload = append(payload, data...)
	sum := checksum(payload)
	payload = append(payload, sum[:]...)
	return Base58Encode(payload)
}

// Base58CheckDecode reverses Base58CheckEncode, returning the version byte
// and payload after validating the checksum.
func Base58CheckDecode(s string) (version byte, data []byte, err error) {
	raw, err := Base58Decode(s)
	if err != nil {
		return 0, nil, err
	}
	if len(raw) < 5 {
		return 0, nil, fmt.Errorf("%w: too short", ErrBadChecksum)
	}
	body, sum := raw[:len(raw)-4], raw[len(raw)-4:]
	want := checksum(body)
	for i := range sum {
		if sum[i] != want[i] {
			return 0, nil, ErrBadChecksum
		}
	}
	return body[0], append([]byte(nil), body[1:]...), nil
}

func checksum(payload []byte) [4]byte {
	first := sha256.Sum256(payload)
	second := sha256.Sum256(first[:])
	var out [4]byte
	copy(out[:], second[:4])
	return out
}

// Hash160 computes RIPEMD160(SHA256(data)), the digest behind blockchain
// addresses and the script operator OP_HASH160.
func Hash160(data []byte) [Ripemd160Size]byte {
	first := sha256.Sum256(data)
	return Ripemd160(first[:])
}

// DoubleSHA256 computes SHA256(SHA256(data)), the transaction and block
// identifier digest.
func DoubleSHA256(data []byte) [sha256.Size]byte {
	first := sha256.Sum256(data)
	return sha256.Sum256(first[:])
}
