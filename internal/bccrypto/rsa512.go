package bccrypto

import (
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// RSA-512 implemented directly on math/big.
//
// The paper deliberately chooses RSA-512 (§6): the LoRa payload budget is
// tiny, and the cost of factoring a 512-bit modulus exceeds the value of
// the micro-payment each ephemeral key protects. Go's crypto/rsa refuses
// keys under 1024 bits, so the primitive is built here from scratch. The
// same code also powers the node's message signature (Sk/Pk in Fig. 3) and
// the OP_CHECKRSA512PAIR script operator's private/public pair check.

// RSA512Bits is the modulus size of every key produced by GenerateRSA512.
const RSA512Bits = 512

// RSA512ModulusLen is the modulus length in bytes: ciphertexts and
// signatures are exactly this long, matching the paper's 64-byte blocks
// (Em and Sig are 64 bytes each, giving the 128-byte minimum payload).
const RSA512ModulusLen = RSA512Bits / 8

const rsa512PublicExponent = 65537

var (
	// ErrMessageTooLong reports a plaintext that cannot fit the padded
	// modulus.
	ErrMessageTooLong = errors.New("bccrypto: message too long for RSA-512 block")
	// ErrDecryption reports an undecryptable or badly padded ciphertext.
	ErrDecryption = errors.New("bccrypto: RSA-512 decryption error")
	// ErrVerification reports a signature that does not match.
	ErrVerification = errors.New("bccrypto: RSA-512 verification error")
	// ErrKeyPairMismatch reports a private key that does not correspond
	// to the presented public key (the OP_CHECKRSA512PAIR failure case).
	ErrKeyPairMismatch = errors.New("bccrypto: RSA-512 key pair mismatch")
)

// RSA512PublicKey is a 512-bit RSA public key.
type RSA512PublicKey struct {
	N *big.Int // modulus
	E int64    // public exponent
}

// RSA512PrivateKey is a 512-bit RSA private key, carrying its public half.
type RSA512PrivateKey struct {
	RSA512PublicKey
	D *big.Int // private exponent
	P *big.Int // prime factor 1
	Q *big.Int // prime factor 2
}

// GenerateRSA512 creates a fresh 512-bit keypair from the given entropy
// source. BcWAN gateways call this once per message to mint the ephemeral
// pair (ePk, eSk) of Fig. 3 step 1.
func GenerateRSA512(random io.Reader) (*RSA512PrivateKey, error) {
	e := big.NewInt(rsa512PublicExponent)
	one := big.NewInt(1)
	for {
		p, err := rand.Prime(random, RSA512Bits/2)
		if err != nil {
			return nil, fmt.Errorf("generate prime p: %w", err)
		}
		q, err := rand.Prime(random, RSA512Bits/2)
		if err != nil {
			return nil, fmt.Errorf("generate prime q: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != RSA512Bits {
			continue
		}
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		phi := new(big.Int).Mul(pm1, qm1)
		d := new(big.Int).ModInverse(e, phi)
		if d == nil {
			// e not invertible mod phi; retry with new primes.
			continue
		}
		return &RSA512PrivateKey{
			RSA512PublicKey: RSA512PublicKey{N: n, E: rsa512PublicExponent},
			D:               d,
			P:               p,
			Q:               q,
		}, nil
	}
}

// Public returns the public half of the key.
func (k *RSA512PrivateKey) Public() *RSA512PublicKey {
	return &RSA512PublicKey{N: new(big.Int).Set(k.N), E: k.E}
}

// MatchesPublic reports whether the private key corresponds to pub. This is
// the check OpenSSL's VerifyPubKey performs and that the script operator
// OP_CHECKRSA512PAIR exposes on-chain: same modulus, and e·d ≡ 1 modulo
// λ-compatible φ(n) — verified constructively by a round trip on a probe
// value, which is sound without trusting the P/Q factors of an
// attacker-supplied key.
func (k *RSA512PrivateKey) MatchesPublic(pub *RSA512PublicKey) bool {
	if k == nil || pub == nil || k.N == nil || pub.N == nil || k.D == nil {
		return false
	}
	if k.N.Cmp(pub.N) != 0 || k.E != pub.E {
		return false
	}
	// Probe: x^(e·d) mod n must equal x for x coprime to n.
	probe := big.NewInt(2)
	enc := new(big.Int).Exp(probe, big.NewInt(pub.E), pub.N)
	dec := new(big.Int).Exp(enc, k.D, k.N)
	return dec.Cmp(probe) == 0
}

// EncryptRSA512 encrypts msg under pub with randomized PKCS#1-v1.5-style
// padding (0x00 0x02 nonzero-random 0x00 msg). Maximum plaintext length is
// RSA512ModulusLen-11 = 53 bytes, which comfortably fits the paper's
// 34-byte Fig. 4 frame.
func EncryptRSA512(random io.Reader, pub *RSA512PublicKey, msg []byte) ([]byte, error) {
	k := RSA512ModulusLen
	if len(msg) > k-11 {
		return nil, ErrMessageTooLong
	}
	em := make([]byte, k)
	em[0] = 0x00
	em[1] = 0x02
	ps := em[2 : k-len(msg)-1]
	if err := fillNonZero(random, ps); err != nil {
		return nil, fmt.Errorf("pad: %w", err)
	}
	em[k-len(msg)-1] = 0x00
	copy(em[k-len(msg):], msg)

	m := new(big.Int).SetBytes(em)
	c := new(big.Int).Exp(m, big.NewInt(pub.E), pub.N)
	return leftPad(c.Bytes(), k), nil
}

// DecryptRSA512 reverses EncryptRSA512.
func DecryptRSA512(priv *RSA512PrivateKey, ciphertext []byte) ([]byte, error) {
	if len(ciphertext) != RSA512ModulusLen {
		return nil, ErrDecryption
	}
	c := new(big.Int).SetBytes(ciphertext)
	if c.Cmp(priv.N) >= 0 {
		return nil, ErrDecryption
	}
	m := new(big.Int).Exp(c, priv.D, priv.N)
	em := leftPad(m.Bytes(), RSA512ModulusLen)
	if em[0] != 0x00 || em[1] != 0x02 {
		return nil, ErrDecryption
	}
	// Find the 0x00 separator after at least 8 padding bytes.
	sep := bytes.IndexByte(em[2:], 0x00)
	if sep < 8 {
		return nil, ErrDecryption
	}
	return append([]byte(nil), em[2+sep+1:]...), nil
}

// SignRSA512 signs the SHA-256 digest of msg: s = pad(hash)^d mod n.
// The node uses this with its provisioned secret key Sk to authenticate
// (Em ‖ ePk) toward the recipient (Fig. 3 step 4).
func SignRSA512(priv *RSA512PrivateKey, msg []byte) []byte {
	digest := sha256.Sum256(msg)
	em := padSignature(digest[:])
	m := new(big.Int).SetBytes(em)
	s := new(big.Int).Exp(m, priv.D, priv.N)
	return leftPad(s.Bytes(), RSA512ModulusLen)
}

// VerifyRSA512 checks a SignRSA512 signature against pub.
func VerifyRSA512(pub *RSA512PublicKey, msg, sig []byte) error {
	if len(sig) != RSA512ModulusLen {
		return ErrVerification
	}
	s := new(big.Int).SetBytes(sig)
	if s.Cmp(pub.N) >= 0 {
		return ErrVerification
	}
	m := new(big.Int).Exp(s, big.NewInt(pub.E), pub.N)
	em := leftPad(m.Bytes(), RSA512ModulusLen)
	digest := sha256.Sum256(msg)
	want := padSignature(digest[:])
	if !bytes.Equal(em, want) {
		return ErrVerification
	}
	return nil
}

// padSignature builds the deterministic 0x00 0x01 0xFF… 0x00 digest block.
func padSignature(digest []byte) []byte {
	k := RSA512ModulusLen
	em := make([]byte, k)
	em[0] = 0x00
	em[1] = 0x01
	for i := 2; i < k-len(digest)-1; i++ {
		em[i] = 0xff
	}
	em[k-len(digest)-1] = 0x00
	copy(em[k-len(digest):], digest)
	return em
}

func fillNonZero(random io.Reader, out []byte) error {
	buf := make([]byte, len(out))
	i := 0
	for i < len(out) {
		if _, err := io.ReadFull(random, buf); err != nil {
			return err
		}
		for _, b := range buf {
			if b != 0 && i < len(out) {
				out[i] = b
				i++
			}
		}
	}
	return nil
}

func leftPad(b []byte, size int) []byte {
	if len(b) >= size {
		return b
	}
	out := make([]byte, size)
	copy(out[size-len(b):], b)
	return out
}

// Key wire encodings. Public keys travel over LoRa (step 2 of Fig. 3) and
// appear verbatim inside blockchain scripts; private keys appear in the
// claim transaction's unlocking script (step 10).

// MarshalRSA512PublicKey encodes pub as 8-byte big-endian E followed by the
// 64-byte modulus (72 bytes total).
func MarshalRSA512PublicKey(pub *RSA512PublicKey) []byte {
	out := make([]byte, 8+RSA512ModulusLen)
	binary.BigEndian.PutUint64(out[:8], uint64(pub.E))
	copy(out[8:], leftPad(pub.N.Bytes(), RSA512ModulusLen))
	return out
}

// UnmarshalRSA512PublicKey reverses MarshalRSA512PublicKey.
func UnmarshalRSA512PublicKey(data []byte) (*RSA512PublicKey, error) {
	if len(data) != 8+RSA512ModulusLen {
		return nil, fmt.Errorf("bccrypto: public key length %d, want %d", len(data), 8+RSA512ModulusLen)
	}
	e := binary.BigEndian.Uint64(data[:8])
	if e == 0 || e > 1<<31 {
		return nil, errors.New("bccrypto: implausible RSA exponent")
	}
	n := new(big.Int).SetBytes(data[8:])
	if n.Sign() <= 0 {
		return nil, errors.New("bccrypto: zero RSA modulus")
	}
	return &RSA512PublicKey{N: n, E: int64(e)}, nil
}

// MarshalRSA512PrivateKey encodes priv as the public encoding followed by
// the 64-byte private exponent D (136 bytes total). P and Q are not
// serialized: the claim script only needs (N, E, D).
func MarshalRSA512PrivateKey(priv *RSA512PrivateKey) []byte {
	out := make([]byte, 0, 8+2*RSA512ModulusLen)
	out = append(out, MarshalRSA512PublicKey(&priv.RSA512PublicKey)...)
	out = append(out, leftPad(priv.D.Bytes(), RSA512ModulusLen)...)
	return out
}

// UnmarshalRSA512PrivateKey reverses MarshalRSA512PrivateKey.
func UnmarshalRSA512PrivateKey(data []byte) (*RSA512PrivateKey, error) {
	if len(data) != 8+2*RSA512ModulusLen {
		return nil, fmt.Errorf("bccrypto: private key length %d, want %d", len(data), 8+2*RSA512ModulusLen)
	}
	pub, err := UnmarshalRSA512PublicKey(data[:8+RSA512ModulusLen])
	if err != nil {
		return nil, err
	}
	d := new(big.Int).SetBytes(data[8+RSA512ModulusLen:])
	if d.Sign() <= 0 {
		return nil, errors.New("bccrypto: zero RSA private exponent")
	}
	return &RSA512PrivateKey{RSA512PublicKey: *pub, D: d}, nil
}
