package bccrypto

import (
	"crypto/rand"
	"strings"
	"testing"
)

func newECKey(t testing.TB) *ECKey {
	t.Helper()
	key, err := GenerateECKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

func TestECKeySignVerify(t *testing.T) {
	key := newECKey(t)
	msg := []byte("transaction sighash preimage")
	sig, err := key.Sign(rand.Reader, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyEC(key.PublicBytes(), msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if VerifyEC(key.PublicBytes(), []byte("other message"), sig) {
		t.Fatal("signature accepted for wrong message")
	}
	other := newECKey(t)
	if VerifyEC(other.PublicBytes(), msg, sig) {
		t.Fatal("signature accepted for wrong key")
	}
}

func TestECKeyPublicBytesFormat(t *testing.T) {
	key := newECKey(t)
	pub := key.PublicBytes()
	if len(pub) != ECPublicKeyLen {
		t.Fatalf("public key length = %d, want %d", len(pub), ECPublicKeyLen)
	}
	if pub[0] != 0x04 {
		t.Fatalf("public key prefix = %#x, want 0x04", pub[0])
	}
	if _, err := ParseECPublicKey(pub); err != nil {
		t.Fatalf("own public key unparseable: %v", err)
	}
}

func TestParseECPublicKeyRejects(t *testing.T) {
	key := newECKey(t)
	good := key.PublicBytes()

	cases := map[string][]byte{
		"short":      good[:10],
		"bad prefix": append([]byte{0x02}, good[1:]...),
		"off curve":  func() []byte { b := append([]byte(nil), good...); b[10] ^= 0xff; return b }(),
		"zero point": make([]byte, ECPublicKeyLen),
		"coord over p": func() []byte {
			b := append([]byte(nil), good...)
			for i := 1; i < 33; i++ {
				b[i] = 0xff
			}
			return b
		}(),
	}
	cases["zero point"][0] = 0x04
	for name, data := range cases {
		if _, err := ParseECPublicKey(data); err == nil {
			t.Errorf("%s: invalid key parsed", name)
		}
	}
}

func TestVerifyECRejectsGarbage(t *testing.T) {
	key := newECKey(t)
	if VerifyEC(key.PublicBytes(), []byte("msg"), []byte("not-asn1")) {
		t.Fatal("garbage signature accepted")
	}
	if VerifyEC([]byte("not-a-key"), []byte("msg"), []byte("sig")) {
		t.Fatal("garbage public key accepted")
	}
}

func TestAddressRoundTrip(t *testing.T) {
	key := newECKey(t)
	addr := key.Address()
	hash, err := PubKeyHashFromAddress(addr)
	if err != nil {
		t.Fatal(err)
	}
	if hash != key.PubKeyHash() {
		t.Fatal("address round trip mismatch")
	}
}

func TestAddressRejectsWrongVersion(t *testing.T) {
	h := Hash160([]byte("x"))
	foreign := Base58CheckEncode(0x00, h[:])
	if _, err := PubKeyHashFromAddress(foreign); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("err = %v, want version error", err)
	}
}

func TestAddressRejectsWrongLength(t *testing.T) {
	bad := Base58CheckEncode(AddressVersion, []byte("short"))
	if _, err := PubKeyHashFromAddress(bad); err == nil {
		t.Fatal("short payload accepted")
	}
}

func TestAddressesDistinct(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 8; i++ {
		addr := newECKey(t).Address()
		if seen[addr] {
			t.Fatal("duplicate address generated")
		}
		seen[addr] = true
	}
}

func BenchmarkECSign(b *testing.B) {
	key := newECKey(b)
	msg := []byte("benchmark message")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := key.Sign(rand.Reader, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkECVerify(b *testing.B) {
	key := newECKey(b)
	msg := []byte("benchmark message")
	sig, err := key.Sign(rand.Reader, msg)
	if err != nil {
		b.Fatal(err)
	}
	pub := key.PublicBytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !VerifyEC(pub, msg, sig) {
			b.Fatal("verify failed")
		}
	}
}

func TestECPrivateKeyMarshalRoundTrip(t *testing.T) {
	key := newECKey(t)
	data := key.MarshalECPrivateKey()
	if len(data) != 32 {
		t.Fatalf("encoded length = %d, want 32", len(data))
	}
	back, err := ParseECPrivateKey(data)
	if err != nil {
		t.Fatal(err)
	}
	if string(back.PublicBytes()) != string(key.PublicBytes()) {
		t.Fatal("public key changed in round trip")
	}
	// The restored key signs verifiably.
	sig, err := back.Sign(rand.Reader, []byte("msg"))
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyEC(key.PublicBytes(), []byte("msg"), sig) {
		t.Fatal("signature from restored key rejected")
	}
}

func TestParseECPrivateKeyRejects(t *testing.T) {
	if _, err := ParseECPrivateKey(make([]byte, 10)); err == nil {
		t.Error("short key accepted")
	}
	if _, err := ParseECPrivateKey(make([]byte, 32)); err == nil {
		t.Error("zero scalar accepted")
	}
	all := make([]byte, 32)
	for i := range all {
		all[i] = 0xff
	}
	if _, err := ParseECPrivateKey(all); err == nil {
		t.Error("out-of-range scalar accepted")
	}
}
