// Package fairex carries the shared vocabulary of BcWAN's fair exchange
// (§4.4): the TCP-level delivery message a gateway sends a recipient, the
// ledger interface both sides watch, offer verification, and extraction of
// the ephemeral private key from a confirmed claim transaction.
package fairex

import (
	"bytes"
	"errors"
	"fmt"

	"bcwan/internal/bccrypto"
	"bcwan/internal/chain"
	"bcwan/internal/lora"
	"bcwan/internal/script"
)

// Delivery is the Fig. 3 step 7 message: the gateway forwards the doubly
// encrypted message (Em), the ephemeral public key (ePk) and the node's
// signature (Sig) to the recipient over TCP/IP, together with the terms
// of the exchange.
type Delivery struct {
	// DevEUI identifies the originating sensor, so the recipient can
	// select the shared key K and the node's public key Pk.
	DevEUI lora.DevEUI `json:"deveui"`
	// Exchange is the key-request counter naming this exchange on the
	// gateway (the ephemeral pair is minted per request).
	Exchange uint32 `json:"exchange"`
	// Em is the double encryption of the message (64 bytes).
	Em []byte `json:"em"`
	// EPk is the serialized ephemeral RSA-512 public key.
	EPk []byte `json:"epk"`
	// Sig is the node's RSA-512 signature over Em ‖ EPk.
	Sig []byte `json:"sig"`
	// GatewayPubKeyHash is the payment destination of the claim path.
	GatewayPubKeyHash [20]byte `json:"gateway"`
	// Price is the amount (in chain units) the gateway asks for the
	// key disclosure ("fixed or negotiated with the gateway", step 9).
	Price uint64 `json:"price"`
	// RefundWindow is the number of blocks after which the buyer may
	// reclaim the payment (Listing 1 uses block_height+100).
	RefundWindow int64 `json:"refundWindow"`
	// GatewayPubKey, when present, is the gateway's EC public key and
	// signals that the gateway accepts off-chain settlement through a
	// payment channel funded against this key.
	GatewayPubKey []byte `json:"gatewayPubKey,omitempty"`
	// GatewayP2P is the gateway's p2p overlay address for the channel
	// control plane (open/update/close messages).
	GatewayP2P string `json:"gatewayP2p,omitempty"`
}

// Ack is the recipient's answer: the payment transaction it broadcast,
// or — when the exchange settled off-chain — the channel update that
// paid for it.
type Ack struct {
	Accepted    bool   `json:"accepted"`
	PaymentTxID string `json:"paymentTxid,omitempty"`
	Reason      string `json:"reason,omitempty"`
	// ChannelID and ChannelVersion identify the off-chain commitment
	// update that settled this delivery, when channel mode was used.
	ChannelID      string `json:"channelId,omitempty"`
	ChannelVersion uint64 `json:"channelVersion,omitempty"`
}

// Fair-exchange errors.
var (
	// ErrBadOfferSignature reports a Delivery whose Sig does not verify
	// under the node's provisioned public key — authenticity (§4.4
	// property 3) fails.
	ErrBadOfferSignature = errors.New("fairex: offer signature invalid")
	// ErrPriceTooHigh reports a gateway asking more than the recipient
	// accepts.
	ErrPriceTooHigh = errors.New("fairex: price above acceptance threshold")
	// ErrNoClaim reports that no claim transaction spends the payment.
	ErrNoClaim = errors.New("fairex: claim not found")
	// ErrBadPayment reports a payment transaction that does not match
	// the offered terms.
	ErrBadPayment = errors.New("fairex: payment does not match offer")
)

// SignedBlob returns the byte string the node signs: Em ‖ ePk. Signing
// the ephemeral key too guarantees "that ePk was the genuine ephemeral
// public key used in the process" (§5.1).
func SignedBlob(em, ePk []byte) []byte {
	out := make([]byte, 0, len(em)+len(ePk))
	out = append(out, em...)
	out = append(out, ePk...)
	return out
}

// VerifyOffer checks the Delivery's authenticity against the node's
// provisioned RSA-512 public key (Fig. 3 step 8).
func VerifyOffer(nodePub *bccrypto.RSA512PublicKey, d *Delivery) error {
	if err := bccrypto.VerifyRSA512(nodePub, SignedBlob(d.Em, d.EPk), d.Sig); err != nil {
		return fmt.Errorf("%w: %v", ErrBadOfferSignature, err)
	}
	return nil
}

// Ledger is the view of the blockchain both exchange parties share. It is
// implemented by Node for in-process use and mirrors what the paper's
// daemon reaches over Multichain's JSON-RPC.
type Ledger interface {
	// Height returns the best-branch height.
	Height() int64
	// UTXO returns a snapshot of the spendable set.
	UTXO() *chain.UTXOSet
	// Submit validates a transaction into the mempool and gossips it.
	Submit(tx *chain.Tx) error
	// FindTx locates a confirmed transaction.
	FindTx(id chain.Hash) (*chain.Tx, int64, bool)
	// FindSpender locates the confirmed transaction spending an output.
	FindSpender(op chain.OutPoint) (*chain.Tx, int64, bool)
	// Confirmations counts blocks confirming a transaction.
	Confirmations(id chain.Hash) int64
	// PendingTx looks a transaction up in the mempool.
	PendingTx(id chain.Hash) (*chain.Tx, bool)
	// Params exposes the chain parameters.
	Params() chain.Params
}

// Node adapts an in-process chain + mempool to Ledger.
type Node struct {
	Chain *chain.Chain
	Pool  *chain.Mempool
	// OnSubmit, when set, is called after a successful Submit (e.g. to
	// gossip the transaction to peers).
	OnSubmit func(*chain.Tx)
}

var _ Ledger = (*Node)(nil)

// Height implements Ledger.
func (n *Node) Height() int64 { return n.Chain.Height() }

// UTXO implements Ledger: the confirmed set extended with mempool
// transactions, so wallets can chain spends onto unconfirmed change (and
// the gateway's claim can chain onto the unconfirmed payment).
func (n *Node) UTXO() *chain.UTXOSet {
	view := n.Chain.UTXO()
	n.Pool.ExtendView(view, n.Chain.Height())
	return view
}

// Submit implements Ledger. Admission validates against the chain's
// live UTXO set under its read lock — no clone — with pooled ancestors
// layered on inside Accept's copy-on-write overlay.
func (n *Node) Submit(tx *chain.Tx) error {
	var err error
	n.Chain.ReadState(func(tip *chain.Block, utxo chain.UTXOReader) {
		err = n.Pool.Accept(tx, utxo, tip.Header.Height, n.Chain.Params())
	})
	if err != nil {
		return err
	}
	if n.OnSubmit != nil {
		n.OnSubmit(tx)
	}
	return nil
}

// FindTx implements Ledger.
func (n *Node) FindTx(id chain.Hash) (*chain.Tx, int64, bool) { return n.Chain.FindTx(id) }

// FindSpender implements Ledger.
func (n *Node) FindSpender(op chain.OutPoint) (*chain.Tx, int64, bool) {
	return n.Chain.FindSpender(op)
}

// Confirmations implements Ledger.
func (n *Node) Confirmations(id chain.Hash) int64 { return n.Chain.Confirmations(id) }

// PendingTx implements Ledger.
func (n *Node) PendingTx(id chain.Hash) (*chain.Tx, bool) { return n.Pool.Get(id) }

// Params implements Ledger.
func (n *Node) Params() chain.Params { return n.Chain.Params() }

// CheckPayment verifies that a payment transaction honors the Delivery
// terms: output 0 locked by the Listing 1 script with the offered ePk,
// the gateway's hash, at least the price, and the agreed refund window
// measured from the height the offer was made at (with slack for blocks
// mined in between).
func CheckPayment(d *Delivery, payment *chain.Tx, offerHeight int64) error {
	if len(payment.Outputs) == 0 {
		return fmt.Errorf("%w: no outputs", ErrBadPayment)
	}
	out := payment.Outputs[0]
	params, err := script.ParseKeyRelease(out.Lock)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadPayment, err)
	}
	if !bytes.Equal(params.RSAPubKey, d.EPk) {
		return fmt.Errorf("%w: wrong ephemeral key", ErrBadPayment)
	}
	if params.GatewayPubKeyHash != d.GatewayPubKeyHash {
		return fmt.Errorf("%w: wrong gateway hash", ErrBadPayment)
	}
	if out.Value < d.Price {
		return fmt.Errorf("%w: pays %d, price %d", ErrBadPayment, out.Value, d.Price)
	}
	if params.RefundHeight < offerHeight+d.RefundWindow {
		return fmt.Errorf("%w: refund height %d too early (want ≥ %d)",
			ErrBadPayment, params.RefundHeight, offerHeight+d.RefundWindow)
	}
	return nil
}

// ExtractKeyFromClaim finds the confirmed transaction spending the
// payment's output 0 and returns the RSA-512 private key its unlocking
// script reveals.
func ExtractKeyFromClaim(ledger Ledger, paymentID chain.Hash) (*bccrypto.RSA512PrivateKey, error) {
	spender, _, ok := ledger.FindSpender(chain.OutPoint{TxID: paymentID, Index: 0})
	if !ok {
		return nil, ErrNoClaim
	}
	for _, in := range spender.Inputs {
		if in.Prev.TxID != paymentID || in.Prev.Index != 0 {
			continue
		}
		keyBytes, err := script.ExtractClaimedRSAKey(in.Unlock)
		if err != nil {
			// The spender is the refund, not a claim.
			return nil, fmt.Errorf("%w: spender is not a claim", ErrNoClaim)
		}
		key, err := bccrypto.UnmarshalRSA512PrivateKey(keyBytes)
		if err != nil {
			return nil, fmt.Errorf("fairex: revealed key malformed: %w", err)
		}
		return key, nil
	}
	return nil, ErrNoClaim
}

// ErrBadDisclosedKey reports an off-chain disclosed key that does not
// match the delivery's ephemeral public key.
var ErrBadDisclosedKey = errors.New("fairex: disclosed key does not match ePk")

// VerifyDisclosedKey checks that key bytes disclosed through a channel
// update really are the ephemeral private key matching the delivery's
// ePk — the off-chain analogue of extracting eSk from a claim
// transaction. Fair exchange holds because the recipient only
// acknowledges (and thereby finalizes) the channel update after this
// check passes.
func VerifyDisclosedKey(d *Delivery, keyBytes []byte) (*bccrypto.RSA512PrivateKey, error) {
	key, err := bccrypto.UnmarshalRSA512PrivateKey(keyBytes)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDisclosedKey, err)
	}
	pub, err := bccrypto.UnmarshalRSA512PublicKey(d.EPk)
	if err != nil {
		return nil, fmt.Errorf("%w: bad ePk: %v", ErrBadDisclosedKey, err)
	}
	if !key.MatchesPublic(pub) {
		return nil, ErrBadDisclosedKey
	}
	return key, nil
}
