package fairex

import (
	"crypto/rand"
	"errors"
	"sync"
	"testing"

	"bcwan/internal/bccrypto"
	"bcwan/internal/chain"
	"bcwan/internal/script"
)

var (
	keysOnce sync.Once
	nodeKey  *bccrypto.RSA512PrivateKey
	eKey     *bccrypto.RSA512PrivateKey
)

func keys(t testing.TB) (*bccrypto.RSA512PrivateKey, *bccrypto.RSA512PrivateKey) {
	t.Helper()
	keysOnce.Do(func() {
		var err error
		if nodeKey, err = bccrypto.GenerateRSA512(rand.Reader); err != nil {
			panic(err)
		}
		if eKey, err = bccrypto.GenerateRSA512(rand.Reader); err != nil {
			panic(err)
		}
	})
	return nodeKey, eKey
}

func signedDelivery(t testing.TB) *Delivery {
	t.Helper()
	nk, ek := keys(t)
	em := make([]byte, 64)
	em[0] = 7
	ePk := bccrypto.MarshalRSA512PublicKey(ek.Public())
	sig := bccrypto.SignRSA512(nk, SignedBlob(em, ePk))
	return &Delivery{
		Em:                em,
		EPk:               ePk,
		Sig:               sig,
		GatewayPubKeyHash: [20]byte{0x11},
		Price:             100,
		RefundWindow:      100,
	}
}

func TestVerifyOfferAcceptsValid(t *testing.T) {
	nk, _ := keys(t)
	if err := VerifyOffer(nk.Public(), signedDelivery(t)); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyOfferRejectsTampering(t *testing.T) {
	nk, _ := keys(t)
	d := signedDelivery(t)
	d.Em[1] ^= 1
	if err := VerifyOffer(nk.Public(), d); !errors.Is(err, ErrBadOfferSignature) {
		t.Fatalf("err = %v, want ErrBadOfferSignature", err)
	}
}

func TestSignedBlobConcatenation(t *testing.T) {
	blob := SignedBlob([]byte{1, 2}, []byte{3, 4})
	if len(blob) != 4 || blob[0] != 1 || blob[3] != 4 {
		t.Fatalf("blob = %v", blob)
	}
}

func paymentFor(t testing.TB, d *Delivery, value uint64, refundHeight int64) *chain.Tx {
	t.Helper()
	params := script.KeyReleaseParams{
		RSAPubKey:         d.EPk,
		GatewayPubKeyHash: d.GatewayPubKeyHash,
		RefundHeight:      refundHeight,
		BuyerPubKeyHash:   [20]byte{0x22},
	}
	return &chain.Tx{
		Version: 1,
		Inputs:  []chain.TxIn{{Prev: chain.OutPoint{TxID: chain.Hash{9}, Index: 0}}},
		Outputs: []chain.TxOut{{Value: value, Lock: script.KeyRelease(params)}},
	}
}

func TestCheckPaymentAccepts(t *testing.T) {
	d := signedDelivery(t)
	payment := paymentFor(t, d, 100, 150)
	if err := CheckPayment(d, payment, 50); err != nil {
		t.Fatal(err)
	}
}

func TestCheckPaymentRejections(t *testing.T) {
	d := signedDelivery(t)
	_, ek := keys(t)
	_ = ek

	tests := map[string]*chain.Tx{
		"no outputs":   {Version: 1},
		"underpaid":    paymentFor(t, d, 50, 150),
		"early refund": paymentFor(t, d, 100, 120), // < offerHeight+window
		"not a key release": {
			Version: 1,
			Outputs: []chain.TxOut{{Value: 100, Lock: script.PayToPubKeyHash([20]byte{1})}},
		},
	}
	for name, payment := range tests {
		if err := CheckPayment(d, payment, 50); !errors.Is(err, ErrBadPayment) {
			t.Errorf("%s: err = %v, want ErrBadPayment", name, err)
		}
	}
}

func TestCheckPaymentWrongEphemeralKey(t *testing.T) {
	d := signedDelivery(t)
	other, err := bccrypto.GenerateRSA512(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	swapped := *d
	swapped.EPk = bccrypto.MarshalRSA512PublicKey(other.Public())
	payment := paymentFor(t, d, 100, 200)
	if err := CheckPayment(&swapped, payment, 50); !errors.Is(err, ErrBadPayment) {
		t.Fatalf("err = %v, want ErrBadPayment", err)
	}
}

func TestCheckPaymentWrongGateway(t *testing.T) {
	d := signedDelivery(t)
	mod := *d
	mod.GatewayPubKeyHash = [20]byte{0x99}
	payment := paymentFor(t, d, 100, 200)
	if err := CheckPayment(&mod, payment, 50); !errors.Is(err, ErrBadPayment) {
		t.Fatalf("err = %v, want ErrBadPayment", err)
	}
}
