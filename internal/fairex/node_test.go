package fairex

import (
	"crypto/rand"
	"errors"
	"testing"
	"time"

	"bcwan/internal/bccrypto"
	"bcwan/internal/chain"
	"bcwan/internal/script"
	"bcwan/internal/wallet"
)

type nodeFixture struct {
	node  *Node
	miner *chain.Miner
	buyer *wallet.Wallet
	gw    *wallet.Wallet
	now   time.Time
}

func newNodeFixture(t *testing.T) *nodeFixture {
	t.Helper()
	buyer, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	gw, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	minerW, err := wallet.New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	genesis := chain.GenesisBlock(map[[20]byte]uint64{buyer.PubKeyHash(): 100_000})
	c, err := chain.New(chain.DefaultParams(), genesis)
	if err != nil {
		t.Fatal(err)
	}
	c.AuthorizeMiner(minerW.PublicBytes())
	pool := chain.NewMempool()
	return &nodeFixture{
		node:  &Node{Chain: c, Pool: pool},
		miner: chain.NewMiner(minerW.Key(), c, pool, rand.Reader),
		buyer: buyer,
		gw:    gw,
		now:   time.Date(2018, 12, 10, 0, 0, 0, 0, time.UTC),
	}
}

func (f *nodeFixture) mine(t *testing.T) {
	t.Helper()
	f.now = f.now.Add(15 * time.Second)
	if _, err := f.miner.Mine(f.now); err != nil {
		t.Fatal(err)
	}
}

func TestNodeSubmitInvokesOnSubmit(t *testing.T) {
	f := newNodeFixture(t)
	var submitted []*chain.Tx
	f.node.OnSubmit = func(tx *chain.Tx) { submitted = append(submitted, tx) }

	tx, err := f.buyer.BuildPayment(f.node.UTXO(), f.gw.PubKeyHash(), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.node.Submit(tx); err != nil {
		t.Fatal(err)
	}
	if len(submitted) != 1 || submitted[0].ID() != tx.ID() {
		t.Fatalf("OnSubmit calls = %d", len(submitted))
	}
	// A rejected Submit must not invoke the hook.
	if err := f.node.Submit(tx); err == nil {
		t.Fatal("duplicate accepted")
	}
	if len(submitted) != 1 {
		t.Fatal("hook fired for rejected tx")
	}
}

func TestNodeUTXOIncludesMempool(t *testing.T) {
	f := newNodeFixture(t)
	tx, err := f.buyer.BuildPayment(f.node.UTXO(), f.gw.PubKeyHash(), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.node.Submit(tx); err != nil {
		t.Fatal(err)
	}
	// The unconfirmed output is spendable in the Node's view.
	if bal := f.node.UTXO().BalanceOf(f.gw.PubKeyHash()); bal != 10 {
		t.Fatalf("gateway mempool balance = %d, want 10", bal)
	}
	// But not in the chain's confirmed view.
	if bal := f.node.Chain.UTXO().BalanceOf(f.gw.PubKeyHash()); bal != 0 {
		t.Fatalf("gateway confirmed balance = %d, want 0", bal)
	}
}

func TestNodeLedgerViews(t *testing.T) {
	f := newNodeFixture(t)
	if f.node.Height() != 0 {
		t.Fatal("fresh height not 0")
	}
	if f.node.Params().BlockInterval <= 0 {
		t.Fatal("params not exposed")
	}
	tx, err := f.buyer.BuildPayment(f.node.UTXO(), f.gw.PubKeyHash(), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.node.Submit(tx); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.node.PendingTx(tx.ID()); !ok {
		t.Fatal("pending tx invisible")
	}
	f.mine(t)
	if f.node.Confirmations(tx.ID()) != 1 {
		t.Fatal("confirmations != 1 after mining")
	}
	if _, _, ok := f.node.FindTx(tx.ID()); !ok {
		t.Fatal("FindTx missed confirmed tx")
	}
}

func TestExtractKeyFromClaimPaths(t *testing.T) {
	f := newNodeFixture(t)
	eKey, err := bccrypto.GenerateRSA512(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	params := script.KeyReleaseParams{
		RSAPubKey:         bccrypto.MarshalRSA512PublicKey(eKey.Public()),
		GatewayPubKeyHash: f.gw.PubKeyHash(),
		RefundHeight:      f.node.Height() + 100,
		BuyerPubKeyHash:   f.buyer.PubKeyHash(),
	}
	payment, err := f.buyer.BuildKeyReleasePayment(f.node.UTXO(), params, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.node.Submit(payment); err != nil {
		t.Fatal(err)
	}
	f.mine(t)

	// No spender yet.
	if _, err := ExtractKeyFromClaim(f.node, payment.ID()); !errors.Is(err, ErrNoClaim) {
		t.Fatalf("err = %v, want ErrNoClaim", err)
	}

	claim, err := f.gw.BuildClaim(chain.OutPoint{TxID: payment.ID(), Index: 0}, payment.Outputs[0], eKey, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.node.Submit(claim); err != nil {
		t.Fatal(err)
	}
	// Unconfirmed claim: FindSpender scans the chain only.
	if _, err := ExtractKeyFromClaim(f.node, payment.ID()); !errors.Is(err, ErrNoClaim) {
		t.Fatalf("unconfirmed err = %v, want ErrNoClaim", err)
	}
	f.mine(t)
	got, err := ExtractKeyFromClaim(f.node, payment.ID())
	if err != nil {
		t.Fatal(err)
	}
	if !got.MatchesPublic(eKey.Public()) {
		t.Fatal("extracted key mismatch")
	}
}

func TestExtractKeyFromRefundIsNotAClaim(t *testing.T) {
	f := newNodeFixture(t)
	eKey, err := bccrypto.GenerateRSA512(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	params := script.KeyReleaseParams{
		RSAPubKey:         bccrypto.MarshalRSA512PublicKey(eKey.Public()),
		GatewayPubKeyHash: f.gw.PubKeyHash(),
		RefundHeight:      2,
		BuyerPubKeyHash:   f.buyer.PubKeyHash(),
	}
	payment, err := f.buyer.BuildKeyReleasePayment(f.node.UTXO(), params, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.node.Submit(payment); err != nil {
		t.Fatal(err)
	}
	f.mine(t)
	f.mine(t) // height 2: refund unlocked

	refund, err := f.buyer.BuildRefund(chain.OutPoint{TxID: payment.ID(), Index: 0}, payment.Outputs[0], 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.node.Submit(refund); err != nil {
		t.Fatal(err)
	}
	f.mine(t)
	// The spender exists, but it is the refund — no key to extract.
	if _, err := ExtractKeyFromClaim(f.node, payment.ID()); !errors.Is(err, ErrNoClaim) {
		t.Fatalf("err = %v, want ErrNoClaim for refund spender", err)
	}
}
