package wallet

import (
	"crypto/rand"
	"errors"
	"testing"

	"bcwan/internal/bccrypto"
	"bcwan/internal/chain"
	"bcwan/internal/script"
)

func fundedWallet(t *testing.T, amounts ...uint64) (*Wallet, *chain.UTXOSet) {
	t.Helper()
	w, err := New(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	utxo := chain.NewUTXOSet()
	for i, amt := range amounts {
		tx := &chain.Tx{
			Version: int32(i + 1), // distinct IDs
			Inputs:  []chain.TxIn{{Prev: chain.OutPoint{TxID: chain.Hash{byte(i + 1)}, Index: 0}, Unlock: script.Script{byte(i + 1)}}},
			Outputs: []chain.TxOut{{Value: amt, Lock: script.PayToPubKeyHash(w.PubKeyHash())}},
		}
		// Inject directly: simulate a confirmed funding tx. ApplyTx
		// requires the inputs to exist, so bypass via a coinbase shape.
		fund := &chain.Tx{
			Version: tx.Version,
			Inputs:  []chain.TxIn{{Prev: chain.OutPoint{Index: 0xffffffff}, Unlock: script.NewBuilder().AddInt64(int64(i + 1)).Script()}},
			Outputs: tx.Outputs,
		}
		if err := utxo.ApplyTx(fund, 0); err != nil {
			t.Fatal(err)
		}
	}
	return w, utxo
}

func TestBalance(t *testing.T) {
	w, utxo := fundedWallet(t, 100, 250)
	if got := w.Balance(utxo); got != 350 {
		t.Fatalf("balance = %d, want 350", got)
	}
}

func TestBuildPaymentAddsChange(t *testing.T) {
	w, utxo := fundedWallet(t, 1000)
	to := bccrypto.Hash160([]byte("dest"))
	tx, err := w.BuildPayment(utxo, to, 300, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tx.Outputs) != 2 {
		t.Fatalf("outputs = %d, want payment + change", len(tx.Outputs))
	}
	if tx.Outputs[0].Value != 300 {
		t.Fatalf("payment value = %d", tx.Outputs[0].Value)
	}
	if tx.Outputs[1].Value != 690 {
		t.Fatalf("change value = %d, want 690", tx.Outputs[1].Value)
	}
	changeHash, err := script.ExtractP2PKHHash(tx.Outputs[1].Lock)
	if err != nil || changeHash != w.PubKeyHash() {
		t.Fatal("change does not pay the wallet")
	}
}

func TestBuildPaymentExactNoChange(t *testing.T) {
	w, utxo := fundedWallet(t, 310)
	to := bccrypto.Hash160([]byte("dest"))
	tx, err := w.BuildPayment(utxo, to, 300, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tx.Outputs) != 1 {
		t.Fatalf("outputs = %d, want 1 (no change)", len(tx.Outputs))
	}
}

func TestBuildPaymentMultiInput(t *testing.T) {
	w, utxo := fundedWallet(t, 100, 100, 100)
	to := bccrypto.Hash160([]byte("dest"))
	tx, err := w.BuildPayment(utxo, to, 250, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tx.Inputs) != 3 {
		t.Fatalf("inputs = %d, want 3", len(tx.Inputs))
	}
	// All inputs must carry valid signatures.
	for i, in := range tx.Inputs {
		entry, ok := utxo.Get(in.Prev)
		if !ok {
			t.Fatalf("input %d outpoint missing", i)
		}
		if err := tx.VerifyInput(i, entry.Out.Lock); err != nil {
			t.Fatalf("input %d: %v", i, err)
		}
	}
}

func TestBuildPaymentInsufficient(t *testing.T) {
	w, utxo := fundedWallet(t, 100)
	to := bccrypto.Hash160([]byte("dest"))
	if _, err := w.BuildPayment(utxo, to, 300, 10); !errors.Is(err, ErrInsufficientFunds) {
		t.Fatalf("err = %v, want ErrInsufficientFunds", err)
	}
}

func TestBuildDataPublish(t *testing.T) {
	w, utxo := fundedWallet(t, 100)
	payload := []byte("R=xyz;ip=192.0.2.4:7000")
	tx, err := w.BuildDataPublish(utxo, payload, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := script.ExtractNullData(tx.Outputs[0].Lock)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload = %q", got)
	}
	if tx.Outputs[0].Value != 0 {
		t.Fatalf("OP_RETURN output value = %d, want 0", tx.Outputs[0].Value)
	}
}

func TestBuildClaimRejectsDustOutput(t *testing.T) {
	w, _ := fundedWallet(t)
	eKey, err := bccrypto.GenerateRSA512(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	prevOut := chain.TxOut{Value: 3, Lock: script.Script{0x51}}
	if _, err := w.BuildClaim(chain.OutPoint{}, prevOut, eKey, 5); !errors.Is(err, ErrInsufficientFunds) {
		t.Fatalf("err = %v, want ErrInsufficientFunds", err)
	}
	if _, err := w.BuildRefund(chain.OutPoint{}, prevOut, 10, 5); !errors.Is(err, ErrInsufficientFunds) {
		t.Fatalf("refund err = %v, want ErrInsufficientFunds", err)
	}
}

func TestCoinSelectionDeterministic(t *testing.T) {
	w, utxo := fundedWallet(t, 100, 200, 300)
	to := bccrypto.Hash160([]byte("dest"))
	tx1, err := w.BuildPayment(utxo, to, 150, 0)
	if err != nil {
		t.Fatal(err)
	}
	tx2, err := w.BuildPayment(utxo, to, 150, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tx1.Inputs) != len(tx2.Inputs) {
		t.Fatal("coin selection not deterministic")
	}
	for i := range tx1.Inputs {
		if tx1.Inputs[i].Prev != tx2.Inputs[i].Prev {
			t.Fatal("coin selection order not deterministic")
		}
	}
}

func TestAddressStable(t *testing.T) {
	w, _ := fundedWallet(t)
	if w.Address() != w.Address() {
		t.Fatal("address not stable")
	}
	if _, err := bccrypto.PubKeyHashFromAddress(w.Address()); err != nil {
		t.Fatalf("address not parseable: %v", err)
	}
}

func TestFromKeyPreservesIdentity(t *testing.T) {
	w, _ := fundedWallet(t, 100)
	clone := FromKey(w.Key(), rand.Reader)
	if clone.Address() != w.Address() {
		t.Fatal("FromKey changed the identity")
	}
}

func TestBuildKeyReleasePayment(t *testing.T) {
	w, utxo := fundedWallet(t, 1000)
	eKey, err := bccrypto.GenerateRSA512(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	params := script.KeyReleaseParams{
		RSAPubKey:         bccrypto.MarshalRSA512PublicKey(eKey.Public()),
		GatewayPubKeyHash: bccrypto.Hash160([]byte("gw")),
		RefundHeight:      150,
		BuyerPubKeyHash:   w.PubKeyHash(),
	}
	tx, err := w.BuildKeyReleasePayment(utxo, params, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	if script.Classify(tx.Outputs[0].Lock) != script.ClassKeyRelease {
		t.Fatal("output 0 is not a key-release script")
	}
	back, err := script.ParseKeyRelease(tx.Outputs[0].Lock)
	if err != nil || back.RefundHeight != 150 {
		t.Fatalf("parsed params = %+v, %v", back, err)
	}
	// Signed and spendable.
	for i, in := range tx.Inputs {
		entry, _ := utxo.Get(in.Prev)
		if err := tx.VerifyInput(i, entry.Out.Lock); err != nil {
			t.Fatalf("input %d: %v", i, err)
		}
	}
}

func TestBuildClaimAndRefundScripts(t *testing.T) {
	w, utxo := fundedWallet(t, 1000)
	eKey, err := bccrypto.GenerateRSA512(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	params := script.KeyReleaseParams{
		RSAPubKey:         bccrypto.MarshalRSA512PublicKey(eKey.Public()),
		GatewayPubKeyHash: w.PubKeyHash(), // this wallet plays the gateway
		RefundHeight:      150,
		BuyerPubKeyHash:   w.PubKeyHash(), // and the buyer
	}
	payment, err := w.BuildKeyReleasePayment(utxo, params, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	op := chain.OutPoint{TxID: payment.ID(), Index: 0}

	claim, err := w.BuildClaim(op, payment.Outputs[0], eKey, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := claim.VerifyInput(0, payment.Outputs[0].Lock); err != nil {
		t.Fatalf("claim script: %v", err)
	}
	if claim.Outputs[0].Value != 295 {
		t.Fatalf("claim value = %d, want 295", claim.Outputs[0].Value)
	}

	refund, err := w.BuildRefund(op, payment.Outputs[0], 150, 5)
	if err != nil {
		t.Fatal(err)
	}
	if refund.LockTime != 150 {
		t.Fatalf("refund lock time = %d, want 150", refund.LockTime)
	}
	if err := refund.VerifyInput(0, payment.Outputs[0].Lock); err != nil {
		t.Fatalf("refund script: %v", err)
	}
}

func TestSignP2PKHInputsMissingOutpoint(t *testing.T) {
	w, utxo := fundedWallet(t, 100)
	tx := &chain.Tx{
		Version: 1,
		Inputs:  []chain.TxIn{{Prev: chain.OutPoint{TxID: chain.Hash{0xff}, Index: 0}}},
		Outputs: []chain.TxOut{{Value: 1, Lock: script.PayToPubKeyHash(w.PubKeyHash())}},
	}
	if err := w.SignP2PKHInputs(tx, utxo); err == nil {
		t.Fatal("signing against missing outpoint succeeded")
	}
}
