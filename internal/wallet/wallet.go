// Package wallet builds and signs BcWAN blockchain transactions: plain
// P2PKH payments, OP_RETURN data publishes (the gateway IP directory),
// and the three fair-exchange transactions — the Listing 1 key-release
// payment, the gateway's claim, and the buyer's time-locked refund.
package wallet

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"bcwan/internal/bccrypto"
	"bcwan/internal/chain"
	"bcwan/internal/script"
)

// Wallet owns an ECDSA identity and assembles transactions against a UTXO
// view.
type Wallet struct {
	key    *bccrypto.ECKey
	random io.Reader
}

// Wallet errors.
var (
	// ErrInsufficientFunds reports a balance below the requested spend.
	ErrInsufficientFunds = errors.New("wallet: insufficient funds")
)

// New creates a wallet with a fresh keypair.
func New(random io.Reader) (*Wallet, error) {
	key, err := bccrypto.GenerateECKey(random)
	if err != nil {
		return nil, fmt.Errorf("wallet: %w", err)
	}
	return &Wallet{key: key, random: random}, nil
}

// FromKey wraps an existing keypair.
func FromKey(key *bccrypto.ECKey, random io.Reader) *Wallet {
	return &Wallet{key: key, random: random}
}

// Address returns the wallet's base58check address — the blockchain
// address @R used by sensors to name their recipient.
func (w *Wallet) Address() string { return w.key.Address() }

// PubKeyHash returns the wallet's HASH160.
func (w *Wallet) PubKeyHash() [script.HashLen]byte { return w.key.PubKeyHash() }

// PublicBytes returns the serialized public key.
func (w *Wallet) PublicBytes() []byte { return w.key.PublicBytes() }

// Key exposes the underlying keypair (for block mining).
func (w *Wallet) Key() *bccrypto.ECKey { return w.key }

// Balance sums the wallet's spendable P2PKH outputs.
func (w *Wallet) Balance(utxo *chain.UTXOSet) uint64 {
	return utxo.BalanceOf(w.PubKeyHash())
}

// selectCoins picks outpoints worth at least target, deterministically
// (sorted by outpoint) for reproducible simulations.
func (w *Wallet) selectCoins(utxo *chain.UTXOSet, target uint64) ([]chain.OutPoint, uint64, error) {
	candidates := utxo.FindByPubKeyHash(w.PubKeyHash())
	sort.Slice(candidates, func(i, j int) bool {
		a, b := candidates[i], candidates[j]
		for k := range a.TxID {
			if a.TxID[k] != b.TxID[k] {
				return a.TxID[k] < b.TxID[k]
			}
		}
		return a.Index < b.Index
	})
	var picked []chain.OutPoint
	var total uint64
	for _, op := range candidates {
		entry, ok := utxo.Get(op)
		if !ok {
			continue
		}
		picked = append(picked, op)
		total += entry.Out.Value
		if total >= target {
			return picked, total, nil
		}
	}
	return nil, 0, fmt.Errorf("%w: have %d, need %d", ErrInsufficientFunds, total, target)
}

// buildSpend assembles a transaction paying the given outputs from the
// wallet's coins, adding a change output when needed, and signs every
// input.
func (w *Wallet) buildSpend(utxo *chain.UTXOSet, outputs []chain.TxOut, fee uint64) (*chain.Tx, error) {
	var outTotal uint64
	for _, o := range outputs {
		outTotal += o.Value
	}
	ins, inTotal, err := w.selectCoins(utxo, outTotal+fee)
	if err != nil {
		return nil, err
	}
	tx := &chain.Tx{Version: 1, Outputs: outputs}
	for _, op := range ins {
		tx.Inputs = append(tx.Inputs, chain.TxIn{Prev: op})
	}
	if change := inTotal - outTotal - fee; change > 0 {
		tx.Outputs = append(tx.Outputs, chain.TxOut{
			Value: change,
			Lock:  script.PayToPubKeyHash(w.PubKeyHash()),
		})
	}
	if err := w.SignP2PKHInputs(tx, utxo); err != nil {
		return nil, err
	}
	return tx, nil
}

// SignP2PKHInputs signs every input of tx, assuming each spends a P2PKH
// output present in utxo.
func (w *Wallet) SignP2PKHInputs(tx *chain.Tx, utxo *chain.UTXOSet) error {
	for i, in := range tx.Inputs {
		entry, ok := utxo.Get(in.Prev)
		if !ok {
			return fmt.Errorf("wallet: input %d: %w", i, chain.ErrMissingUTXO)
		}
		digest := tx.SigHash(i, entry.Out.Lock)
		sig, err := w.key.SignDigest(w.random, digest[:])
		if err != nil {
			return fmt.Errorf("wallet: sign input %d: %w", i, err)
		}
		tx.Inputs[i].Unlock = script.UnlockP2PKH(sig, w.PublicBytes())
	}
	return nil
}

// BuildPayment pays amount to a pubkey hash.
func (w *Wallet) BuildPayment(utxo *chain.UTXOSet, to [script.HashLen]byte, amount, fee uint64) (*chain.Tx, error) {
	return w.buildSpend(utxo, []chain.TxOut{{Value: amount, Lock: script.PayToPubKeyHash(to)}}, fee)
}

// BuildDataPublish embeds data in an OP_RETURN output (zero value). BcWAN
// recipients use it to broadcast their IP binding (§4.3).
func (w *Wallet) BuildDataPublish(utxo *chain.UTXOSet, data []byte, fee uint64) (*chain.Tx, error) {
	return w.buildSpend(utxo, []chain.TxOut{{Value: 0, Lock: script.NullData(data)}}, fee)
}

// BuildKeyReleasePayment creates the Fig. 3 step 9 payment: an output of
// the given amount locked by the Listing 1 script.
func (w *Wallet) BuildKeyReleasePayment(utxo *chain.UTXOSet, params script.KeyReleaseParams, amount, fee uint64) (*chain.Tx, error) {
	return w.buildSpend(utxo, []chain.TxOut{{Value: amount, Lock: script.KeyRelease(params)}}, fee)
}

// BuildClaim spends a key-release output through the claim path,
// publishing the ephemeral RSA private key on-chain (Fig. 3 step 10). The
// spent value, minus fee, pays the wallet itself.
func (w *Wallet) BuildClaim(prev chain.OutPoint, prevOut chain.TxOut, rsaPriv *bccrypto.RSA512PrivateKey, fee uint64) (*chain.Tx, error) {
	if prevOut.Value < fee {
		return nil, fmt.Errorf("%w: output %d below fee %d", ErrInsufficientFunds, prevOut.Value, fee)
	}
	tx := &chain.Tx{
		Version: 1,
		Inputs:  []chain.TxIn{{Prev: prev}},
		Outputs: []chain.TxOut{{
			Value: prevOut.Value - fee,
			Lock:  script.PayToPubKeyHash(w.PubKeyHash()),
		}},
	}
	digest := tx.SigHash(0, prevOut.Lock)
	sig, err := w.key.SignDigest(w.random, digest[:])
	if err != nil {
		return nil, fmt.Errorf("wallet: sign claim: %w", err)
	}
	tx.Inputs[0].Unlock = script.UnlockKeyReleaseClaim(
		sig, w.PublicBytes(), bccrypto.MarshalRSA512PrivateKey(rsaPriv))
	return tx, nil
}

// BuildChannelFunding locks capacity into a payment-channel output (the
// channel's on-chain anchor). The wallet must be the channel funder: its
// coins pay for the output and its hash is the refund destination.
func (w *Wallet) BuildChannelFunding(utxo *chain.UTXOSet, params script.ChannelParams, capacity, fee uint64) (*chain.Tx, error) {
	return w.buildSpend(utxo, []chain.TxOut{{Value: capacity, Lock: script.Channel(params)}}, fee)
}

// SignChannelDigest signs a channel commitment digest (a spending
// transaction's SigHash against the funding script) with the wallet key.
// Both channel parties contribute one such signature to the 2-of-2 close
// path.
func (w *Wallet) SignChannelDigest(digest [32]byte) ([]byte, error) {
	sig, err := w.key.SignDigest(w.random, digest[:])
	if err != nil {
		return nil, fmt.Errorf("wallet: sign channel digest: %w", err)
	}
	return sig, nil
}

// BuildChannelRefund spends a channel funding output through the
// time-locked refund path, reclaiming the full capacity minus fee to the
// funder. The transaction carries LockTime = refundHeight, so the chain
// will not accept it before that height.
func (w *Wallet) BuildChannelRefund(prev chain.OutPoint, prevOut chain.TxOut, refundHeight int64, fee uint64) (*chain.Tx, error) {
	if prevOut.Value < fee {
		return nil, fmt.Errorf("%w: output %d below fee %d", ErrInsufficientFunds, prevOut.Value, fee)
	}
	tx := &chain.Tx{
		Version:  1,
		LockTime: refundHeight,
		Inputs:   []chain.TxIn{{Prev: prev}},
		Outputs: []chain.TxOut{{
			Value: prevOut.Value - fee,
			Lock:  script.PayToPubKeyHash(w.PubKeyHash()),
		}},
	}
	digest := tx.SigHash(0, prevOut.Lock)
	sig, err := w.key.SignDigest(w.random, digest[:])
	if err != nil {
		return nil, fmt.Errorf("wallet: sign channel refund: %w", err)
	}
	tx.Inputs[0].Unlock = script.UnlockChannelRefund(sig, w.PublicBytes())
	return tx, nil
}

// BuildRefund spends a key-release output through the time-locked refund
// path. The transaction carries LockTime = refundHeight, so the chain will
// not accept it before that height.
func (w *Wallet) BuildRefund(prev chain.OutPoint, prevOut chain.TxOut, refundHeight int64, fee uint64) (*chain.Tx, error) {
	if prevOut.Value < fee {
		return nil, fmt.Errorf("%w: output %d below fee %d", ErrInsufficientFunds, prevOut.Value, fee)
	}
	tx := &chain.Tx{
		Version:  1,
		LockTime: refundHeight,
		Inputs:   []chain.TxIn{{Prev: prev}},
		Outputs: []chain.TxOut{{
			Value: prevOut.Value - fee,
			Lock:  script.PayToPubKeyHash(w.PubKeyHash()),
		}},
	}
	digest := tx.SigHash(0, prevOut.Lock)
	sig, err := w.key.SignDigest(w.random, digest[:])
	if err != nil {
		return nil, fmt.Errorf("wallet: sign refund: %w", err)
	}
	tx.Inputs[0].Unlock = script.UnlockKeyReleaseRefund(sig, w.PublicBytes())
	return tx, nil
}
