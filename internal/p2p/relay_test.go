package p2p

import (
	"crypto/sha256"
	"testing"
	"time"

	"bcwan/internal/telemetry"
)

// relayTestNode bundles a node, its relay, its registry and a collector
// for received object bodies.
type relayTestNode struct {
	node  *Node
	relay *Relay
	reg   *telemetry.Registry
	got   collector
}

func newRelayTestNode(t *testing.T, tr Transport, cfg RelayConfig) *relayTestNode {
	t.Helper()
	reg := telemetry.NewRegistry()
	n, err := NewNodeWithTelemetry(tr, "", nil, reg)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRelay(n, cfg)
	rt := &relayTestNode{node: n, relay: r, reg: reg}
	r.Handle("tx", func(from string, payload []byte) (ObjectID, bool) {
		rt.got.handler(from, Message{Type: "tx", From: from, Payload: payload})
		return sha256.Sum256(payload), true
	})
	t.Cleanup(func() {
		r.Close()
		n.Close()
	})
	return rt
}

// counterValue reads a registered series; zero when it does not exist.
func counterValue(reg *telemetry.Registry, name string, labels ...telemetry.Label) uint64 {
	return reg.Namespace("p2p").Counter(name, "", labels...).Value()
}

// TestRelayMeshFewerBytesThanFlood runs the same payload through the
// same sparse mesh twice — naive flood vs inventory relay — and
// requires the relay to converge with strictly fewer wire bytes.
func TestRelayMeshFewerBytesThanFlood(t *testing.T) {
	const nNodes = 8
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i * 7)
	}

	// connectMesh wires a ring with +2 chords: degree 4, redundant paths.
	connectMesh := func(t *testing.T, addrs []string, connect func(i int, addr string)) {
		for i := range addrs {
			connect(i, addrs[(i+1)%nNodes])
			connect(i, addrs[(i+2)%nNodes])
		}
	}

	// Flood baseline.
	floodBytes := func() uint64 {
		tr := NewMemTransport()
		regs := make([]*telemetry.Registry, nNodes)
		nodes := make([]*Node, nNodes)
		cols := make([]collector, nNodes)
		addrs := make([]string, nNodes)
		for i := range nodes {
			regs[i] = telemetry.NewRegistry()
			n, err := NewNodeWithTelemetry(tr, "", nil, regs[i])
			if err != nil {
				t.Fatal(err)
			}
			defer n.Close()
			nodes[i] = n
			addrs[i] = n.Addr()
			nodes[i].Handle("tx", cols[i].handler)
		}
		connectMesh(t, addrs, func(i int, addr string) {
			if err := nodes[i].Connect(addr); err != nil {
				t.Fatal(err)
			}
		})
		nodes[0].Broadcast("tx", payload)
		for i := 1; i < nNodes; i++ {
			cols[i].waitFor(t, 1)
		}
		// Let in-flight duplicate floods finish before counting.
		time.Sleep(100 * time.Millisecond)
		var total uint64
		for _, reg := range regs {
			total += counterValue(reg, "bytes_out_total")
		}
		return total
	}()

	// Inventory relay over the identical topology and payload.
	relayBytes := func() uint64 {
		tr := NewMemTransport()
		rts := make([]*relayTestNode, nNodes)
		addrs := make([]string, nNodes)
		for i := range rts {
			rts[i] = newRelayTestNode(t, tr, RelayConfig{})
			addrs[i] = rts[i].node.Addr()
		}
		connectMesh(t, addrs, func(i int, addr string) {
			if err := rts[i].node.Connect(addr); err != nil {
				t.Fatal(err)
			}
		})
		id := sha256.Sum256(payload)
		rts[0].relay.Announce("tx", id, payload, false)
		for i := 1; i < nNodes; i++ {
			rts[i].got.waitFor(t, 1)
		}
		time.Sleep(100 * time.Millisecond)
		var total uint64
		for _, rt := range rts {
			total += counterValue(rt.reg, "bytes_out_total")
		}
		return total
	}()

	if relayBytes >= floodBytes {
		t.Fatalf("relay moved %d bytes, flood %d — relay must be strictly cheaper", relayBytes, floodBytes)
	}
	t.Logf("flood %d bytes, relay %d bytes (%.1fx reduction)",
		floodBytes, relayBytes, float64(floodBytes)/float64(relayBytes))
}

// TestRelayRerequestsFromSecondAnnouncer starves the first getdata: a
// silent peer announces first, an honest peer announces second, and the
// request timeout must move the fetch to the honest peer.
func TestRelayRerequestsFromSecondAnnouncer(t *testing.T) {
	tr := NewMemTransport()
	target := newRelayTestNode(t, tr, RelayConfig{RequestTimeout: 50 * time.Millisecond})

	payload := []byte("relayed-object-body")
	id := sha256.Sum256(payload)
	inv := encodeInv("tx", id)

	// silent announces the object but never answers getdata.
	silent, err := NewNode(tr, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	silent.HandleDirect("getdata", func(string, Message) {})

	// honest serves the body on request.
	honest, err := NewNode(tr, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer honest.Close()
	honest.HandleDirect("getdata", func(from string, msg Message) {
		if kind, ids, ok := decodeInv(msg.Payload); ok && kind == "tx" && ids[0] == id {
			honest.SendTo(from, "tx", payload)
		}
	})

	if err := silent.Connect(target.node.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := honest.Connect(target.node.Addr()); err != nil {
		t.Fatal(err)
	}

	// The silent peer's inv must arrive (and be asked) first.
	silent.SendTo(target.node.Addr(), "inv", inv)
	deadline := time.Now().Add(5 * time.Second)
	for counterValue(target.reg, "relay_requests_total",
		telemetry.L("kind", "tx"), telemetry.L("dir", "out")) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("target never requested from the silent announcer")
		}
		time.Sleep(time.Millisecond)
	}
	honest.SendTo(target.node.Addr(), "inv", inv)

	target.got.waitFor(t, 1)
	if string(target.got.msgs[0].Payload) != string(payload) {
		t.Fatalf("payload = %q", target.got.msgs[0].Payload)
	}
	if v := counterValue(target.reg, "relay_rerequests_total"); v == 0 {
		t.Fatal("fetch succeeded without a re-request — timeout path untested")
	}
	if v := counterValue(target.reg, "relay_request_timeouts_total"); v == 0 {
		t.Fatal("timeout counter did not advance")
	}
}

// TestRelayNeverAnnouncesBack checks the per-peer known-inventory set:
// the node that taught us an object must not be told about it again.
func TestRelayNeverAnnouncesBack(t *testing.T) {
	tr := NewMemTransport()
	a := newRelayTestNode(t, tr, RelayConfig{})
	b := newRelayTestNode(t, tr, RelayConfig{})
	if err := a.node.Connect(b.node.Addr()); err != nil {
		t.Fatal(err)
	}

	payload := []byte("no-echo")
	id := sha256.Sum256(payload)
	a.relay.Announce("tx", id, payload, false)
	b.got.waitFor(t, 1)

	// b's handler relayed the object onward; its only peer is a, which is
	// known to hold it, so b must announce nothing.
	time.Sleep(100 * time.Millisecond)
	if v := counterValue(b.reg, "relay_announces_total",
		telemetry.L("kind", "tx"), telemetry.L("dir", "out")); v != 0 {
		t.Fatalf("b announced %d times back toward its teacher", v)
	}
	if v := counterValue(a.reg, "relay_announces_total",
		telemetry.L("kind", "tx"), telemetry.L("dir", "in")); v != 0 {
		t.Fatalf("a received %d echo announcements", v)
	}
	if !b.relay.Known(a.node.Addr(), "tx", id) {
		t.Fatal("b did not record a as knowing the object")
	}
}

// TestRelayDedupAcrossAnnouncers checks that two announcers cause one
// fetch: the second inv registers as a backup announcer, not a second
// getdata.
func TestRelayDedupAcrossAnnouncers(t *testing.T) {
	tr := NewMemTransport()
	target := newRelayTestNode(t, tr, RelayConfig{RequestTimeout: time.Minute})

	payload := []byte("fetched-once")
	id := sha256.Sum256(payload)
	inv := encodeInv("tx", id)

	mkServer := func() *Node {
		n, err := NewNode(tr, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		n.HandleDirect("getdata", func(from string, msg Message) {
			n.SendTo(from, "tx", payload)
		})
		if err := n.Connect(target.node.Addr()); err != nil {
			t.Fatal(err)
		}
		return n
	}
	s1 := mkServer()
	s2 := mkServer()
	s1.SendTo(target.node.Addr(), "inv", inv)
	s2.SendTo(target.node.Addr(), "inv", inv)

	target.got.waitFor(t, 1)
	time.Sleep(100 * time.Millisecond)
	if got := target.got.count(); got != 1 {
		t.Fatalf("object delivered %d times, want 1", got)
	}
	out := counterValue(target.reg, "relay_requests_total",
		telemetry.L("kind", "tx"), telemetry.L("dir", "out"))
	if out != 1 {
		t.Fatalf("sent %d getdata, want exactly 1", out)
	}
}

func TestInvEncodingRoundTrip(t *testing.T) {
	id1 := sha256.Sum256([]byte("a"))
	id2 := sha256.Sum256([]byte("b"))
	kind, ids, ok := decodeInv(encodeInv("block", id1, id2))
	if !ok || kind != "block" || len(ids) != 2 || ids[0] != id1 || ids[1] != id2 {
		t.Fatalf("round trip failed: %q %v %v", kind, ids, ok)
	}
	for _, bad := range [][]byte{nil, {}, {5, 'a'}, encodeInv("tx")[:3], append(encodeInv("tx", id1), 1)} {
		if _, _, ok := decodeInv(bad); ok {
			t.Fatalf("decodeInv accepted malformed frame %v", bad)
		}
	}
}
