package p2p

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Typed payment-channel messages. The channel control plane (open /
// accept / fund / update / ack / close) rides the p2p overlay as
// point-to-point direct messages, following the sync-message conventions:
// a version byte leads every encoding, decoders reject unknown versions
// and bound every variable-length field, and unknown message *types* are
// simply ignored by nodes without a handler — channel-speaking and
// channel-less nodes coexist on one mesh.

// Channel message type names, registered with Node.HandleDirect.
const (
	MsgTypeChannelOpen      = "chanopen"
	MsgTypeChannelAccept    = "chanaccept"
	MsgTypeChannelFund      = "chanfund"
	MsgTypeChannelUpdate    = "chanupdate"
	MsgTypeChannelUpdateAck = "chanupdateack"
	MsgTypeChannelClose     = "chanclose"
)

// channelMsgVersion is the encoding version this build speaks.
const channelMsgVersion = 1

// Bounds on untrusted decode inputs.
const (
	maxChanPubKeyBytes  = 256
	maxChanSigBytes     = 256
	maxChanKeyBytes     = 1024
	maxChanReasonBytes  = 256
	maxChanFundingBytes = 1 << 20
)

// ErrBadChannelMsg reports an undecodable or unsupported channel message.
var ErrBadChannelMsg = errors.New("p2p: malformed channel message")

// Channel close kinds, carried by MsgChannelClose.
const (
	ChannelCloseCooperative uint8 = iota
	ChannelCloseUnilateral
)

// Channel update ack statuses.
const (
	ChannelAckOK uint8 = iota
	ChannelAckRejected
)

// MsgChannelOpen is the payer's opening request: its public key plus the
// capacity and refund window it proposes.
type MsgChannelOpen struct {
	Version      uint8
	RecipientPub []byte
	Capacity     uint64
	RefundWindow int64
}

// MsgChannelAccept is the payee's answer, echoing the payer key and
// naming the gateway public key the funding script must pay.
type MsgChannelAccept struct {
	Version      uint8
	RecipientPub []byte
	GatewayPub   []byte
	OK           uint8
	Reason       string
}

// MsgChannelFund delivers the funding transaction and the channel terms
// the payer committed to.
type MsgChannelFund struct {
	Version      uint8
	ChannelID    [32]byte
	RefundHeight int64
	CloseFee     uint64
	FundingTx    []byte
}

// MsgChannelUpdate is one off-chain payment: the payer's signature over
// commitment (ChanVersion, Paid), tagged with the exchange it settles.
type MsgChannelUpdate struct {
	Version      uint8
	ChannelID    [32]byte
	ChanVersion  uint64
	Paid         uint64
	DevEUI       [8]byte
	Exchange     uint32
	RecipientSig []byte
}

// MsgChannelUpdateAck carries the payee's countersignature and — the
// point of the whole exchange — the disclosed ephemeral RSA private key.
type MsgChannelUpdateAck struct {
	Version     uint8
	ChannelID   [32]byte
	ChanVersion uint64
	DevEUI      [8]byte
	Exchange    uint32
	Status      uint8
	Reason      string
	Key         []byte
	GatewaySig  []byte
}

// MsgChannelClose asks the remote endpoint to settle the channel on-chain.
type MsgChannelClose struct {
	Version   uint8
	ChannelID [32]byte
	Kind      uint8
}

func appendChanBytes(out, b []byte) []byte {
	out = binary.BigEndian.AppendUint32(out, uint32(len(b)))
	return append(out, b...)
}

func readChanBytes(rest []byte, bound int, what string) ([]byte, []byte, error) {
	if len(rest) < 4 {
		return nil, nil, fmt.Errorf("%w: truncated %s length", ErrBadChannelMsg, what)
	}
	n := int(binary.BigEndian.Uint32(rest))
	rest = rest[4:]
	if n > bound || len(rest) < n {
		return nil, nil, fmt.Errorf("%w: %s of %d bytes", ErrBadChannelMsg, what, n)
	}
	return rest[:n:n], rest[n:], nil
}

func checkChannelVersion(payload []byte) error {
	if len(payload) < 1 {
		return fmt.Errorf("%w: empty", ErrBadChannelMsg)
	}
	if payload[0] != channelMsgVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrBadChannelMsg, payload[0])
	}
	return nil
}

func (m *MsgChannelOpen) Encode() []byte {
	out := make([]byte, 0, 1+4+len(m.RecipientPub)+8+8)
	out = append(out, channelMsgVersion)
	out = appendChanBytes(out, m.RecipientPub)
	out = binary.BigEndian.AppendUint64(out, m.Capacity)
	return binary.BigEndian.AppendUint64(out, uint64(m.RefundWindow))
}

func DecodeChannelOpen(payload []byte) (*MsgChannelOpen, error) {
	if err := checkChannelVersion(payload); err != nil {
		return nil, err
	}
	m := &MsgChannelOpen{Version: payload[0]}
	pub, rest, err := readChanBytes(payload[1:], maxChanPubKeyBytes, "pubkey")
	if err != nil {
		return nil, err
	}
	m.RecipientPub = pub
	if len(rest) != 16 {
		return nil, fmt.Errorf("%w: chanopen tail %d bytes", ErrBadChannelMsg, len(rest))
	}
	m.Capacity = binary.BigEndian.Uint64(rest)
	m.RefundWindow = int64(binary.BigEndian.Uint64(rest[8:]))
	return m, nil
}

func (m *MsgChannelAccept) Encode() []byte {
	out := make([]byte, 0, 1+4+len(m.RecipientPub)+4+len(m.GatewayPub)+1+4+len(m.Reason))
	out = append(out, channelMsgVersion)
	out = appendChanBytes(out, m.RecipientPub)
	out = appendChanBytes(out, m.GatewayPub)
	out = append(out, m.OK)
	return appendChanBytes(out, []byte(m.Reason))
}

func DecodeChannelAccept(payload []byte) (*MsgChannelAccept, error) {
	if err := checkChannelVersion(payload); err != nil {
		return nil, err
	}
	m := &MsgChannelAccept{Version: payload[0]}
	rcPub, rest, err := readChanBytes(payload[1:], maxChanPubKeyBytes, "recipient pubkey")
	if err != nil {
		return nil, err
	}
	gwPub, rest, err := readChanBytes(rest, maxChanPubKeyBytes, "gateway pubkey")
	if err != nil {
		return nil, err
	}
	if len(rest) < 1 {
		return nil, fmt.Errorf("%w: truncated chanaccept status", ErrBadChannelMsg)
	}
	m.RecipientPub, m.GatewayPub, m.OK = rcPub, gwPub, rest[0]
	reason, rest, err := readChanBytes(rest[1:], maxChanReasonBytes, "reason")
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadChannelMsg, len(rest))
	}
	m.Reason = string(reason)
	return m, nil
}

func (m *MsgChannelFund) Encode() []byte {
	out := make([]byte, 0, 1+32+8+8+4+len(m.FundingTx))
	out = append(out, channelMsgVersion)
	out = append(out, m.ChannelID[:]...)
	out = binary.BigEndian.AppendUint64(out, uint64(m.RefundHeight))
	out = binary.BigEndian.AppendUint64(out, m.CloseFee)
	return appendChanBytes(out, m.FundingTx)
}

func DecodeChannelFund(payload []byte) (*MsgChannelFund, error) {
	if err := checkChannelVersion(payload); err != nil {
		return nil, err
	}
	rest := payload[1:]
	if len(rest) < 32+8+8 {
		return nil, fmt.Errorf("%w: truncated chanfund", ErrBadChannelMsg)
	}
	m := &MsgChannelFund{Version: payload[0]}
	copy(m.ChannelID[:], rest)
	m.RefundHeight = int64(binary.BigEndian.Uint64(rest[32:]))
	m.CloseFee = binary.BigEndian.Uint64(rest[40:])
	tx, rest, err := readChanBytes(rest[48:], maxChanFundingBytes, "funding tx")
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadChannelMsg, len(rest))
	}
	m.FundingTx = tx
	return m, nil
}

func (m *MsgChannelUpdate) Encode() []byte {
	out := make([]byte, 0, 1+32+8+8+8+4+4+len(m.RecipientSig))
	out = append(out, channelMsgVersion)
	out = append(out, m.ChannelID[:]...)
	out = binary.BigEndian.AppendUint64(out, m.ChanVersion)
	out = binary.BigEndian.AppendUint64(out, m.Paid)
	out = append(out, m.DevEUI[:]...)
	out = binary.BigEndian.AppendUint32(out, m.Exchange)
	return appendChanBytes(out, m.RecipientSig)
}

func DecodeChannelUpdate(payload []byte) (*MsgChannelUpdate, error) {
	if err := checkChannelVersion(payload); err != nil {
		return nil, err
	}
	rest := payload[1:]
	if len(rest) < 32+8+8+8+4 {
		return nil, fmt.Errorf("%w: truncated chanupdate", ErrBadChannelMsg)
	}
	m := &MsgChannelUpdate{Version: payload[0]}
	copy(m.ChannelID[:], rest)
	m.ChanVersion = binary.BigEndian.Uint64(rest[32:])
	m.Paid = binary.BigEndian.Uint64(rest[40:])
	copy(m.DevEUI[:], rest[48:])
	m.Exchange = binary.BigEndian.Uint32(rest[56:])
	sig, rest, err := readChanBytes(rest[60:], maxChanSigBytes, "signature")
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadChannelMsg, len(rest))
	}
	m.RecipientSig = sig
	return m, nil
}

func (m *MsgChannelUpdateAck) Encode() []byte {
	out := make([]byte, 0, 1+32+8+8+4+1+4+len(m.Reason)+4+len(m.Key)+4+len(m.GatewaySig))
	out = append(out, channelMsgVersion)
	out = append(out, m.ChannelID[:]...)
	out = binary.BigEndian.AppendUint64(out, m.ChanVersion)
	out = append(out, m.DevEUI[:]...)
	out = binary.BigEndian.AppendUint32(out, m.Exchange)
	out = append(out, m.Status)
	out = appendChanBytes(out, []byte(m.Reason))
	out = appendChanBytes(out, m.Key)
	return appendChanBytes(out, m.GatewaySig)
}

func DecodeChannelUpdateAck(payload []byte) (*MsgChannelUpdateAck, error) {
	if err := checkChannelVersion(payload); err != nil {
		return nil, err
	}
	rest := payload[1:]
	if len(rest) < 32+8+8+4+1 {
		return nil, fmt.Errorf("%w: truncated chanupdateack", ErrBadChannelMsg)
	}
	m := &MsgChannelUpdateAck{Version: payload[0]}
	copy(m.ChannelID[:], rest)
	m.ChanVersion = binary.BigEndian.Uint64(rest[32:])
	copy(m.DevEUI[:], rest[40:])
	m.Exchange = binary.BigEndian.Uint32(rest[48:])
	m.Status = rest[52]
	reason, rest, err := readChanBytes(rest[53:], maxChanReasonBytes, "reason")
	if err != nil {
		return nil, err
	}
	key, rest, err := readChanBytes(rest, maxChanKeyBytes, "key")
	if err != nil {
		return nil, err
	}
	sig, rest, err := readChanBytes(rest, maxChanSigBytes, "signature")
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadChannelMsg, len(rest))
	}
	m.Reason, m.Key, m.GatewaySig = string(reason), key, sig
	return m, nil
}

func (m *MsgChannelClose) Encode() []byte {
	out := make([]byte, 0, 1+32+1)
	out = append(out, channelMsgVersion)
	out = append(out, m.ChannelID[:]...)
	return append(out, m.Kind)
}

func DecodeChannelClose(payload []byte) (*MsgChannelClose, error) {
	if err := checkChannelVersion(payload); err != nil {
		return nil, err
	}
	if len(payload) != 1+32+1 {
		return nil, fmt.Errorf("%w: chanclose length %d", ErrBadChannelMsg, len(payload))
	}
	m := &MsgChannelClose{Version: payload[0]}
	copy(m.ChannelID[:], payload[1:])
	m.Kind = payload[33]
	return m, nil
}
