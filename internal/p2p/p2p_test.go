package p2p

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

// collector accumulates received messages thread-safely.
type collector struct {
	mu   sync.Mutex
	msgs []Message
}

func (c *collector) handler(_ string, m Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, m)
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs)
}

func (c *collector) waitFor(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.count() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d messages, have %d", n, c.count())
		}
		time.Sleep(time.Millisecond)
	}
}

func transports(t *testing.T) map[string]func() Transport {
	t.Helper()
	return map[string]func() Transport{
		"mem": func() Transport { return NewMemTransport() },
		"tcp": func() Transport { return TCPTransport{} },
	}
}

func TestDirectBroadcast(t *testing.T) {
	for name, mk := range transports(t) {
		t.Run(name, func(t *testing.T) {
			tr := mk()
			a, err := NewNode(tr, "", nil)
			if err != nil {
				t.Fatal(err)
			}
			defer a.Close()
			b, err := NewNode(tr, "", nil)
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()

			var got collector
			b.Handle("tx", got.handler)
			if err := a.Connect(b.Addr()); err != nil {
				t.Fatal(err)
			}
			a.Broadcast("tx", []byte("payload-1"))
			got.waitFor(t, 1)
			if string(got.msgs[0].Payload) != "payload-1" {
				t.Fatalf("payload = %q", got.msgs[0].Payload)
			}
			if got.msgs[0].From != a.Addr() {
				t.Fatalf("from = %q, want %q", got.msgs[0].From, a.Addr())
			}
		})
	}
}

func TestGossipReachesIndirectPeers(t *testing.T) {
	for name, mk := range transports(t) {
		t.Run(name, func(t *testing.T) {
			tr := mk()
			// Chain topology: a — b — c. A broadcast from a must reach c.
			nodes := make([]*Node, 3)
			for i := range nodes {
				n, err := NewNode(tr, "", nil)
				if err != nil {
					t.Fatal(err)
				}
				defer n.Close()
				nodes[i] = n
			}
			var got collector
			nodes[2].Handle("block", got.handler)
			if err := nodes[0].Connect(nodes[1].Addr()); err != nil {
				t.Fatal(err)
			}
			if err := nodes[1].Connect(nodes[2].Addr()); err != nil {
				t.Fatal(err)
			}
			nodes[0].Broadcast("block", []byte("b-100"))
			got.waitFor(t, 1)
		})
	}
}

func TestDuplicateSuppression(t *testing.T) {
	tr := NewMemTransport()
	// Triangle: every node connected to both others; each message must be
	// handled exactly once per node despite multiple delivery paths.
	nodes := make([]*Node, 3)
	for i := range nodes {
		n, err := NewNode(tr, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nodes[i] = n
	}
	cols := make([]collector, 3)
	for i := range nodes {
		nodes[i].Handle("tx", cols[i].handler)
	}
	for i := range nodes {
		for j := range nodes {
			if i != j {
				if err := nodes[i].Connect(nodes[j].Addr()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	nodes[0].Broadcast("tx", []byte("once"))
	cols[1].waitFor(t, 1)
	cols[2].waitFor(t, 1)
	// Give any duplicate a chance to arrive, then assert exactly one.
	time.Sleep(50 * time.Millisecond)
	if cols[1].count() != 1 || cols[2].count() != 1 {
		t.Fatalf("handled %d and %d times, want exactly 1",
			cols[1].count(), cols[2].count())
	}
}

func TestBidirectionalAfterInbound(t *testing.T) {
	tr := NewMemTransport()
	a, err := NewNode(tr, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewNode(tr, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var aGot collector
	a.Handle("tx", aGot.handler)
	var bGot collector
	b.Handle("tx", bGot.handler)

	// Only a dials b. After a's first broadcast, b must be able to
	// answer over the learned inbound connection.
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	a.Broadcast("tx", []byte("hello"))
	bGot.waitFor(t, 1)
	b.Broadcast("tx", []byte("reply"))
	aGot.waitFor(t, 1)
	if string(aGot.msgs[0].Payload) != "reply" {
		t.Fatalf("payload = %q", aGot.msgs[0].Payload)
	}
}

func TestConnectSelfIsNoop(t *testing.T) {
	tr := NewMemTransport()
	a, err := NewNode(tr, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Connect(a.Addr()); err != nil {
		t.Fatal(err)
	}
	if len(a.Peers()) != 0 {
		t.Fatal("node connected to itself")
	}
}

func TestConnectUnknownAddressFails(t *testing.T) {
	tr := NewMemTransport()
	a, err := NewNode(tr, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Connect("mem:999"); err == nil {
		t.Fatal("dial to unknown address succeeded")
	}
}

func TestCloseIsIdempotentAndStopsUse(t *testing.T) {
	tr := NewMemTransport()
	a, err := NewNode(tr, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Connect("mem:other-node"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Connect after Close err = %v, want ErrClosed", err)
	}
}

func TestMemConnCloseUnblocksReceive(t *testing.T) {
	a, b := newMemConnPair()
	done := make(chan error, 1)
	go func() {
		_, err := b.Receive()
		done <- err
	}()
	a.Close()
	select {
	case err := <-done:
		if !errors.Is(err, io.EOF) {
			t.Fatalf("Receive err = %v, want EOF", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Receive did not unblock on peer close")
	}
}

func TestMemConnDrainsQueuedBeforeEOF(t *testing.T) {
	a, b := newMemConnPair()
	if err := a.Send(Message{Type: "tx", Payload: []byte("queued")}); err != nil {
		t.Fatal(err)
	}
	a.Close()
	m, err := b.Receive()
	if err != nil {
		t.Fatalf("Receive = %v, want queued message", err)
	}
	if string(m.Payload) != "queued" {
		t.Fatalf("payload = %q", m.Payload)
	}
}

func TestTCPFrameRoundTrip(t *testing.T) {
	tr := TCPTransport{}
	l, err := tr.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	done := make(chan Message, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		m, err := conn.Receive()
		if err != nil {
			return
		}
		done <- m
	}()

	c, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	payload := make([]byte, 10_000)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := c.Send(Message{Type: "block", From: "me", Payload: payload}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-done:
		if m.Type != "block" || len(m.Payload) != len(payload) {
			t.Fatalf("got %s/%d bytes", m.Type, len(m.Payload))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("frame not received")
	}
}

func TestMeshBroadcastStress(t *testing.T) {
	tr := NewMemTransport()
	const nNodes = 5
	const nMsgs = 20
	nodes := make([]*Node, nNodes)
	cols := make([]collector, nNodes)
	for i := range nodes {
		n, err := NewNode(tr, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nodes[i] = n
		nodes[i].Handle("tx", cols[i].handler)
	}
	// Ring topology.
	for i := range nodes {
		if err := nodes[i].Connect(nodes[(i+1)%nNodes].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	for m := 0; m < nMsgs; m++ {
		nodes[m%nNodes].Broadcast("tx", []byte(fmt.Sprintf("msg-%d", m)))
	}
	// Every node receives every message it did not originate.
	for i := range cols {
		want := nMsgs - nMsgs/nNodes
		cols[i].waitFor(t, want)
	}
}
