package p2p

import (
	"encoding/binary"
	"errors"
	"testing"
	"time"
)

func waitPeers(t *testing.T, n *Node, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for len(n.Peers()) != want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d peers, have %v", want, n.Peers())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMisbehaveCrossingThresholdBans(t *testing.T) {
	tr := NewMemTransport()
	a, err := NewNode(tr, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewNode(tr, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	a.SetBanThreshold(20)
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	a.Misbehave(b.Addr(), 10, "malformed frame")
	if a.Banned(b.Addr()) {
		t.Fatal("banned below threshold")
	}
	a.Misbehave(b.Addr(), 10, "malformed frame")
	if !a.Banned(b.Addr()) {
		t.Fatal("not banned at threshold")
	}
	if got := a.BanScore(b.Addr()); got != 20 {
		t.Fatalf("ban score = %d, want 20", got)
	}
	waitPeers(t, a, 0)
	if err := a.Connect(b.Addr()); !errors.Is(err, ErrBanned) {
		t.Fatalf("reconnect err = %v, want ErrBanned", err)
	}
}

func TestBannedInboundRefusedAndNotDispatched(t *testing.T) {
	tr := NewMemTransport()
	a, err := NewNode(tr, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewNode(tr, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var got collector
	a.Handle("tx", got.handler)
	a.SetBanThreshold(1)
	a.Misbehave(b.Addr(), 1, "preemptive")

	if err := b.Connect(a.Addr()); err != nil {
		t.Fatal(err)
	}
	b.Broadcast("tx", []byte("from-banned"))
	time.Sleep(50 * time.Millisecond)
	if got.count() != 0 {
		t.Fatalf("dispatched %d messages from a banned peer", got.count())
	}
	if len(a.Peers()) != 0 {
		t.Fatalf("banned peer registered: %v", a.Peers())
	}
}

func TestMaxPeersRefusesExtraAndBanFreesSlot(t *testing.T) {
	tr := NewMemTransport()
	mk := func() *Node {
		n, err := NewNode(tr, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		return n
	}
	a, b, c := mk(), mk(), mk()

	a.SetMaxPeers(1)
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := a.Connect(c.Addr()); !errors.Is(err, ErrPeerLimit) {
		t.Fatalf("outbound over limit err = %v, want ErrPeerLimit", err)
	}

	// Inbound beyond the limit is refused too: c's connection is closed
	// and never registered.
	if err := c.Connect(a.Addr()); err != nil {
		t.Fatal(err)
	}
	c.Broadcast("tx", []byte("hello"))
	time.Sleep(50 * time.Millisecond)
	if len(a.Peers()) != 1 || a.Peers()[0] != b.Addr() {
		t.Fatalf("peers = %v, want just %s", a.Peers(), b.Addr())
	}

	// Banning the slot squatter frees the slot for the honest peer.
	a.Misbehave(b.Addr(), DefaultBanThreshold, "squatting")
	waitPeers(t, a, 0)
	if err := a.Connect(c.Addr()); err != nil {
		t.Fatal(err)
	}
	waitPeers(t, a, 1)
	if a.Peers()[0] != c.Addr() {
		t.Fatalf("peers = %v, want %s", a.Peers(), c.Addr())
	}
}

// FuzzSyncMsgDecode drives the four sync decoders with hostile inputs:
// none may panic, every accepted message must respect the documented
// bounds, and decode/encode/decode must agree.
func FuzzSyncMsgDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add((&MsgGetHeaders{Locator: [][32]byte{{1}, {2}}, Max: 100}).Encode())
	f.Add((&MsgHeaders{Headers: [][]byte{[]byte("hdr-a"), []byte("hdr-b")}}).Encode())
	f.Add((&MsgGetSnapshot{Height: 42, Chunk: -1}).Encode())
	f.Add((&MsgSnapshotChunk{Height: 42, Chunk: 0, Total: 3, Manifest: []byte("m"), Payload: []byte("p")}).Encode())

	// Hostile-field seeds: counts that lie, lengths that overflow what is
	// present, negative-as-unsigned values, wrong versions, truncations
	// and trailing garbage.
	hugeLocators := []byte{syncMsgVersion, 0xFF, 0xFF}
	f.Add(hugeLocators)
	hugeHeaders := append([]byte{syncMsgVersion}, 0xFF, 0xFF, 0xFF, 0xFF)
	f.Add(hugeHeaders)
	lyingHeaderLen := (&MsgHeaders{Headers: [][]byte{[]byte("hdr")}}).Encode()
	binary.BigEndian.PutUint32(lyingHeaderLen[5:], 1<<30)
	f.Add(lyingHeaderLen)
	wrongVersion := (&MsgGetSnapshot{Height: 1, Chunk: 0}).Encode()
	wrongVersion[0] = 0xFE
	f.Add(wrongVersion)
	negChunk := (&MsgGetSnapshot{Height: -1, Chunk: -2}).Encode()
	f.Add(negChunk)
	lyingManifest := (&MsgSnapshotChunk{Manifest: []byte("m")}).Encode()
	binary.BigEndian.PutUint32(lyingManifest[17:], maxManifestBytes+1)
	f.Add(lyingManifest)
	lyingPayload := (&MsgSnapshotChunk{Payload: []byte("p")}).Encode()
	f.Add(lyingPayload[:len(lyingPayload)-1])
	trailing := append((&MsgGetHeaders{Max: 1}).Encode(), 0xAA)
	f.Add(trailing)

	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := DecodeGetHeaders(data); err == nil {
			if len(m.Locator) > maxLocatorIDs {
				t.Fatalf("accepted %d locator ids", len(m.Locator))
			}
			m2, err := DecodeGetHeaders(m.Encode())
			if err != nil {
				t.Fatalf("re-decode getheaders: %v", err)
			}
			if len(m2.Locator) != len(m.Locator) || m2.Max != m.Max {
				t.Fatal("getheaders round-trip mismatch")
			}
		}
		if m, err := DecodeHeaders(data); err == nil {
			if len(m.Headers) > maxHeadersPerMsg {
				t.Fatalf("accepted %d headers", len(m.Headers))
			}
			for _, h := range m.Headers {
				if len(h) > maxHeaderBytes {
					t.Fatalf("accepted %d-byte header", len(h))
				}
			}
			if _, err := DecodeHeaders(m.Encode()); err != nil {
				t.Fatalf("re-decode headers: %v", err)
			}
		}
		if m, err := DecodeGetSnapshot(data); err == nil {
			m2, err := DecodeGetSnapshot(m.Encode())
			if err != nil {
				t.Fatalf("re-decode getsnapshot: %v", err)
			}
			if *m2 != *m {
				t.Fatalf("getsnapshot round-trip mismatch: %+v vs %+v", m, m2)
			}
		}
		if m, err := DecodeSnapshotChunk(data); err == nil {
			if len(m.Manifest) > maxManifestBytes || len(m.Payload) > maxSnapshotChunk {
				t.Fatalf("accepted oversized chunk: manifest %d payload %d", len(m.Manifest), len(m.Payload))
			}
			if _, err := DecodeSnapshotChunk(m.Encode()); err != nil {
				t.Fatalf("re-decode snapshotchunk: %v", err)
			}
		}
	})
}
