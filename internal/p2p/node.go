package p2p

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"log"
	"sync"

	"bcwan/internal/telemetry"
)

// ErrBanned reports a connection attempt to or from a banned peer.
var ErrBanned = errors.New("p2p: peer banned")

// ErrPeerLimit reports that the node's peer slots are full.
var ErrPeerLimit = errors.New("p2p: peer limit reached")

// DefaultBanThreshold is the misbehavior score at which a peer is
// disconnected and refused; ~10 malformed frames at the daemon's
// standard 10-point penalty.
const DefaultBanThreshold = 100

// Handler processes a gossip message. Handlers run on per-connection
// reader goroutines; implementations must be safe for concurrent use.
type Handler func(from string, msg Message)

// Node is one gossip participant: it listens for peers, maintains
// outbound connections, and floods messages with duplicate suppression.
type Node struct {
	transport Transport
	listener  Listener
	logger    *log.Logger

	// metrics is set once before the accept loop starts (see
	// NewNodeWithTelemetry) and never mutated, so reads need no lock.
	// All its methods are nil-safe no-ops when unset.
	metrics *p2pMetrics

	mu       sync.Mutex
	peers    map[string]*peer
	conns    map[Conn]bool // every live conn, incl. unregistered inbound
	handlers map[string]Handler
	// direct marks message types that are addressed point-to-point (the
	// relay's inv/getdata/fulfillment traffic): they bypass duplicate
	// suppression — the same getdata from two peers must be answered
	// twice — and are never re-flooded.
	direct map[string]bool
	seen   map[[sha256.Size]byte]bool
	// seenRing is a fixed-capacity ring over the keys of seen, in
	// insertion order. It grows to maxSeen and is then overwritten in
	// place at seenHead — unlike the previous slice-shift eviction,
	// the backing array is allocated once and old digests become
	// collectable as soon as they are overwritten.
	seenRing [][sha256.Size]byte
	seenHead int
	closed   bool

	// Misbehavior accounting (PR 8): protocol-level abuse accumulates a
	// per-address score; crossing banThreshold drops the peer and refuses
	// further connections either way. maxPeers (0 = unlimited) bounds the
	// registered-peer set so an adversary cannot add slots at will — and
	// banning a slot-squatter is the recovery path from an eclipse.
	banScore     map[string]int
	banned       map[string]bool
	banThreshold int
	maxPeers     int

	wg sync.WaitGroup
}

// maxSeen bounds the duplicate-suppression memory.
const maxSeen = 100_000

// sendQueueLen bounds each peer's outbound queue. Handlers run on
// reader goroutines and re-flood what they receive; if those floods
// wrote to the transport directly, two nodes with full transport
// buffers could block each other's readers forever (send-side
// head-of-line deadlock). Sends therefore enqueue to a per-peer writer
// goroutine and the queue sheds load when a peer stalls — gossip's
// sync repair re-delivers anything dropped.
const sendQueueLen = 256

// peer is one registered neighbor: its connection plus the outbound
// queue its writer goroutine drains.
type peer struct {
	conn Conn
	out  chan Message
	die  chan struct{}
	once sync.Once
}

// stop wakes the writer so it exits; safe to call more than once.
func (p *peer) stop() { p.once.Do(func() { close(p.die) }) }

// enqueue offers msg to the writer without ever blocking the caller;
// it reports false when the queue is full and the message was shed.
func (p *peer) enqueue(msg Message) bool {
	select {
	case p.out <- msg:
		return true
	default:
		return false
	}
}

// NewNode starts a node listening on addr (empty = transport default).
func NewNode(transport Transport, addr string, logger *log.Logger) (*Node, error) {
	return NewNodeWithTelemetry(transport, addr, logger, nil)
}

// NewNodeWithTelemetry starts a node whose gossip traffic is recorded
// in reg (messages and bytes in/out by type, duplicate suppression,
// peer count, dial failures). A nil registry disables instrumentation.
func NewNodeWithTelemetry(transport Transport, addr string, logger *log.Logger, reg *telemetry.Registry) (*Node, error) {
	listener, err := transport.Listen(addr)
	if err != nil {
		return nil, err
	}
	n := &Node{
		transport:    transport,
		listener:     listener,
		logger:       logger,
		peers:        make(map[string]*peer),
		conns:        make(map[Conn]bool),
		handlers:     make(map[string]Handler),
		direct:       make(map[string]bool),
		seen:         make(map[[sha256.Size]byte]bool),
		banScore:     make(map[string]int),
		banned:       make(map[string]bool),
		banThreshold: DefaultBanThreshold,
	}
	if reg != nil {
		n.metrics = newP2PMetrics(reg)
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.listener.Addr() }

// Handle registers the handler for a message type. Must be called before
// messages of that type arrive.
func (n *Node) Handle(msgType string, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[msgType] = h
}

// HandleDirect registers a handler for a point-to-point message type:
// no duplicate suppression and no gossip re-flood. Handlers must be
// idempotent — the wire may deliver the same message more than once.
func (n *Node) HandleDirect(msgType string, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[msgType] = h
	n.direct[msgType] = true
}

// SetMaxPeers bounds the number of registered peers (0 = unlimited).
// Connections beyond the bound — outbound or inbound — are refused.
func (n *Node) SetMaxPeers(k int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.maxPeers = k
}

// SetBanThreshold overrides the misbehavior score at which a peer is
// banned.
func (n *Node) SetBanThreshold(v int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.banThreshold = v
}

// Misbehave charges points of protocol abuse (malformed frames, bogus
// requests) against an address. Crossing the ban threshold disconnects
// the peer and refuses it from then on. Callers pick the points so that
// an honest peer's occasional garbage never reaches the threshold.
func (n *Node) Misbehave(addr string, points int, reason string) {
	if addr == "" || addr == n.Addr() {
		return
	}
	n.mu.Lock()
	n.banScore[addr] += points
	score := n.banScore[addr]
	freshBan := score >= n.banThreshold && !n.banned[addr]
	if freshBan {
		n.banned[addr] = true
	}
	n.mu.Unlock()
	if m := n.metrics; m != nil {
		m.misbehavior.Add(uint64(points))
	}
	if freshBan {
		n.logf("banning %s (score %d): %s", addr, score, reason)
		if m := n.metrics; m != nil {
			m.bans.Inc()
		}
		n.dropPeer(addr)
	}
}

// Banned reports whether an address is currently banned.
func (n *Node) Banned(addr string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.banned[addr]
}

// BanScore returns an address's accumulated misbehavior score.
func (n *Node) BanScore(addr string) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.banScore[addr]
}

// Connect dials a peer and starts reading from it. Connecting to an
// already connected address is a no-op; banned addresses and connects
// beyond the peer limit are refused.
func (n *Node) Connect(addr string) error {
	if addr == n.Addr() {
		return nil
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	if _, dup := n.peers[addr]; dup {
		n.mu.Unlock()
		return nil
	}
	if n.banned[addr] {
		n.mu.Unlock()
		if m := n.metrics; m != nil {
			m.connRefused("banned").Inc()
		}
		return ErrBanned
	}
	if n.maxPeers > 0 && len(n.peers) >= n.maxPeers {
		n.mu.Unlock()
		if m := n.metrics; m != nil {
			m.connRefused("full").Inc()
		}
		return ErrPeerLimit
	}
	n.mu.Unlock()

	conn, err := n.transport.Dial(addr)
	if err != nil {
		if m := n.metrics; m != nil {
			m.dialFailures.Inc()
		}
		return err
	}
	n.addPeer(addr, conn)
	return nil
}

// Peers returns the addresses of connected peers.
func (n *Node) Peers() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.peers))
	for addr := range n.peers {
		out = append(out, addr)
	}
	return out
}

// Broadcast floods a message to every connected peer. The message is
// marked seen locally so a gossiped echo is not re-processed. Sends are
// queued to per-peer writers and never block the caller.
func (n *Node) Broadcast(msgType string, payload []byte) {
	msg := Message{Type: msgType, From: n.Addr(), Payload: payload}
	n.markSeen(msg)
	n.sendToPeers(msg, "")
}

// SendTo queues a message to one connected peer only — the relay's
// announcement, request and fulfillment traffic. It reports false when
// the peer is unknown or its queue was full (the message was shed).
func (n *Node) SendTo(addr, msgType string, payload []byte) bool {
	msg := Message{Type: msgType, From: n.Addr(), Payload: payload}
	n.mu.Lock()
	p := n.peers[addr]
	n.mu.Unlock()
	if p == nil {
		return false
	}
	if !p.enqueue(msg) {
		if m := n.metrics; m != nil {
			m.queueDrops.Inc()
		}
		return false
	}
	if m := n.metrics; m != nil {
		m.msgOut(msg.Type).Inc()
		m.bytesOut.Add(uint64(msg.WireSize()))
	}
	return true
}

// sendToPeers queues msg to every peer except the one named by skip.
func (n *Node) sendToPeers(msg Message, skip string) {
	n.mu.Lock()
	targets := make([]*peer, 0, len(n.peers))
	for addr, p := range n.peers {
		if addr == skip {
			continue
		}
		targets = append(targets, p)
	}
	n.mu.Unlock()
	for _, p := range targets {
		if !p.enqueue(msg) {
			if m := n.metrics; m != nil {
				m.queueDrops.Inc()
			}
			continue
		}
		if m := n.metrics; m != nil {
			m.msgOut(msg.Type).Inc()
			m.bytesOut.Add(uint64(msg.WireSize()))
		}
	}
}

// Close shuts the node down and waits for its goroutines.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	conns := make([]Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	for _, p := range n.peers {
		p.stop()
	}
	n.peers = make(map[string]*peer)
	n.conns = make(map[Conn]bool)
	n.peerGaugeLocked()
	n.mu.Unlock()

	n.listener.Close()
	for _, c := range conns {
		c.Close()
	}
	n.wg.Wait()
	return nil
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.listener.Accept()
		if err != nil {
			return
		}
		// Inbound peers are keyed by their advertised From address on
		// first message; until then track under a placeholder.
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.conns[conn] = true
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop("", conn)
	}
}

func (n *Node) addPeer(addr string, conn Conn) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		conn.Close()
		return
	}
	if old, dup := n.peers[addr]; dup {
		old.stop()
		old.conn.Close()
		delete(n.conns, old.conn)
	}
	n.registerPeerLocked(addr, conn)
	n.conns[conn] = true
	n.mu.Unlock()
	n.wg.Add(1)
	go n.readLoop(addr, conn)
}

// registerPeerLocked records a peer and starts its writer; the caller
// holds n.mu.
func (n *Node) registerPeerLocked(addr string, conn Conn) *peer {
	p := &peer{conn: conn, out: make(chan Message, sendQueueLen), die: make(chan struct{})}
	n.peers[addr] = p
	n.peerGaugeLocked()
	n.wg.Add(1)
	go n.writeLoop(addr, p)
	return p
}

// writeLoop drains one peer's outbound queue onto its connection. A
// send error drops the peer (the read loop notices the closed conn and
// exits as well).
func (n *Node) writeLoop(addr string, p *peer) {
	defer n.wg.Done()
	for {
		select {
		case msg := <-p.out:
			if err := p.conn.Send(msg); err != nil {
				n.logf("send %s to %s: %v", msg.Type, addr, err)
				n.dropPeer(addr)
				return
			}
		case <-p.die:
			return
		}
	}
}

func (n *Node) dropPeer(addr string) {
	n.mu.Lock()
	p, ok := n.peers[addr]
	if ok {
		delete(n.peers, addr)
		n.peerGaugeLocked()
	}
	n.mu.Unlock()
	if ok {
		p.stop()
		p.conn.Close()
	}
}

func (n *Node) readLoop(addr string, conn Conn) {
	defer n.wg.Done()
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.conns, conn)
		n.mu.Unlock()
	}()
	for {
		msg, err := conn.Receive()
		if err != nil {
			if addr != "" {
				n.dropPeer(addr)
			}
			return
		}
		// Learn inbound peer addresses so broadcasts reach them, and
		// so the mesh becomes bidirectional without extra dials. Banned
		// addresses and inbounds beyond the peer limit are refused — the
		// connection is closed, not just left unregistered, so a refused
		// peer cannot keep feeding us traffic.
		if addr == "" && msg.From != "" && msg.From != n.Addr() {
			addr = msg.From
			n.mu.Lock()
			refuse := ""
			if n.banned[addr] {
				refuse = "banned"
			} else if _, dup := n.peers[addr]; !dup && !n.closed {
				if n.maxPeers > 0 && len(n.peers) >= n.maxPeers {
					refuse = "full"
				} else {
					n.registerPeerLocked(addr, conn)
				}
			}
			n.mu.Unlock()
			if refuse != "" {
				if m := n.metrics; m != nil {
					m.connRefused(refuse).Inc()
				}
				n.logf("refusing inbound %s: %s", addr, refuse)
				return
			}
		}
		if m := n.metrics; m != nil {
			m.msgIn(msg.Type).Inc()
			m.bytesIn.Add(uint64(msg.WireSize()))
			m.messageBytes.Observe(float64(msg.WireSize()))
		}
		n.dispatch(msg)
	}
}

// dispatch runs the handler once per unique message and re-floods it.
// Direct (point-to-point) types skip both the duplicate suppression and
// the re-flood.
func (n *Node) dispatch(msg Message) {
	n.mu.Lock()
	h := n.handlers[msg.Type]
	direct := n.direct[msg.Type]
	n.mu.Unlock()
	if direct {
		if h != nil {
			h(msg.From, msg)
		}
		return
	}
	if !n.markSeen(msg) {
		if m := n.metrics; m != nil {
			m.dupSuppressed.Inc()
		}
		return
	}
	if h != nil {
		h(msg.From, msg)
	}
	// Gossip re-flood with our own origin, so indirect peers learn it.
	n.sendToPeers(Message{Type: msg.Type, From: n.Addr(), Payload: msg.Payload}, msg.From)
}

// messageDigest is the duplicate-suppression key. The payload is hashed
// on its own first (Sum256 runs over the original slice, no copy), then
// combined with the type through a small stack buffer — the previous
// type+payload concatenation allocated a fresh payload-sized buffer for
// every message on the hot path. Types longer than 63 bytes are
// truncated; gossip types are short constants.
func messageDigest(msgType string, payload []byte) [sha256.Size]byte {
	inner := sha256.Sum256(payload)
	var buf [63 + 1 + sha256.Size]byte
	n := copy(buf[:63], msgType)
	buf[n] = 0
	n++
	n += copy(buf[n:], inner[:])
	return sha256.Sum256(buf[:n])
}

// markSeen records the message body; it reports true the first time.
// Once the ring reaches maxSeen entries the oldest digest is evicted in
// place, keeping memory constant.
func (n *Node) markSeen(msg Message) bool {
	sum := messageDigest(msg.Type, msg.Payload)
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.seen[sum] {
		return false
	}
	n.seen[sum] = true
	if len(n.seenRing) < maxSeen {
		n.seenRing = append(n.seenRing, sum)
		return true
	}
	delete(n.seen, n.seenRing[n.seenHead])
	n.seenRing[n.seenHead] = sum
	n.seenHead = (n.seenHead + 1) % maxSeen
	if m := n.metrics; m != nil {
		m.seenEvictions.Inc()
	}
	return true
}

// peerGaugeLocked syncs the peer-count gauge; the caller holds n.mu.
func (n *Node) peerGaugeLocked() {
	if m := n.metrics; m != nil {
		m.peerCount.Set(int64(len(n.peers)))
	}
}

func (n *Node) logf(format string, args ...any) {
	if n.logger != nil {
		n.logger.Printf("p2p %s: %s", n.Addr(), fmt.Sprintf(format, args...))
	}
}
