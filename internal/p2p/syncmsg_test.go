package p2p

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestGetHeadersRoundTrip(t *testing.T) {
	m := &MsgGetHeaders{Version: 1, Locator: [][32]byte{{1}, {2, 2}, {3}}, Max: 500}
	got, err := DecodeGetHeaders(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Max != 500 || len(got.Locator) != 3 || got.Locator[1] != m.Locator[1] {
		t.Fatalf("round trip = %+v", got)
	}
	// Empty locator is legal (a from-genesis request).
	empty := &MsgGetHeaders{Version: 1, Max: 10}
	if _, err := DecodeGetHeaders(empty.Encode()); err != nil {
		t.Fatal(err)
	}
}

func TestHeadersRoundTrip(t *testing.T) {
	m := &MsgHeaders{Version: 1, Headers: [][]byte{{0xaa, 0xbb}, {0xcc}}}
	got, err := DecodeHeaders(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Headers) != 2 || !bytes.Equal(got.Headers[0], m.Headers[0]) || !bytes.Equal(got.Headers[1], m.Headers[1]) {
		t.Fatalf("round trip = %+v", got)
	}
	none := &MsgHeaders{Version: 1}
	if got, err := DecodeHeaders(none.Encode()); err != nil || len(got.Headers) != 0 {
		t.Fatalf("empty batch: %v %+v", err, got)
	}
}

func TestGetSnapshotRoundTrip(t *testing.T) {
	m := &MsgGetSnapshot{Version: 1, Height: 99_328, Chunk: -1}
	got, err := DecodeGetSnapshot(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Height != 99_328 || got.Chunk != -1 {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestSnapshotChunkRoundTrip(t *testing.T) {
	m := &MsgSnapshotChunk{Version: 1, Height: 1024, Chunk: -1, Total: 17, Manifest: []byte("manifest")}
	got, err := DecodeSnapshotChunk(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Total != 17 || got.Chunk != -1 || !bytes.Equal(got.Manifest, m.Manifest) || len(got.Payload) != 0 {
		t.Fatalf("manifest round trip = %+v", got)
	}
	data := &MsgSnapshotChunk{Version: 1, Height: 1024, Chunk: 3, Total: 17, Payload: bytes.Repeat([]byte{7}, 1000)}
	got, err = DecodeSnapshotChunk(data.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Chunk != 3 || !bytes.Equal(got.Payload, data.Payload) {
		t.Fatalf("data round trip: chunk %d, %d payload bytes", got.Chunk, len(got.Payload))
	}
}

func TestSyncMsgRejectsBadInput(t *testing.T) {
	// Unknown version byte.
	m := &MsgGetSnapshot{Height: 5, Chunk: 0}
	enc := m.Encode()
	enc[0] = 99
	if _, err := DecodeGetSnapshot(enc); !errors.Is(err, ErrBadSyncMsg) {
		t.Fatalf("future version: %v", err)
	}
	// Truncations and empty payloads.
	for _, decode := range []func([]byte) error{
		func(b []byte) error { _, err := DecodeGetHeaders(b); return err },
		func(b []byte) error { _, err := DecodeHeaders(b); return err },
		func(b []byte) error { _, err := DecodeGetSnapshot(b); return err },
		func(b []byte) error { _, err := DecodeSnapshotChunk(b); return err },
	} {
		if err := decode(nil); !errors.Is(err, ErrBadSyncMsg) {
			t.Fatalf("empty payload: %v", err)
		}
		if err := decode([]byte{1, 0}); !errors.Is(err, ErrBadSyncMsg) {
			t.Fatalf("truncated payload: %v", err)
		}
	}
	// A headers message lying about its count.
	lying := []byte{1, 0, 0, 0, 5}
	if _, err := DecodeHeaders(lying); !errors.Is(err, ErrBadSyncMsg) {
		t.Fatalf("lying count: %v", err)
	}
}

// TestUnknownMessageTypeTolerated proves old and new nodes coexist: a
// node with no handler for a message type ignores it — direct or
// flooded — and keeps serving the types it does know.
func TestUnknownMessageTypeTolerated(t *testing.T) {
	tr := NewMemTransport()
	oldNode, err := NewNode(tr, "old", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer oldNode.Close()
	newNode, err := NewNode(tr, "new", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer newNode.Close()

	known := make(chan Message, 4)
	oldNode.Handle("block", func(from string, msg Message) { known <- msg })
	if err := newNode.Connect("old"); err != nil {
		t.Fatal(err)
	}

	// The new node speaks messages the old one has never heard of,
	// point-to-point and flooded, then a type both understand.
	newNode.SendTo("old", MsgTypeGetHeaders, (&MsgGetHeaders{Max: 10}).Encode())
	newNode.SendTo("old", MsgTypeGetSnapshot, (&MsgGetSnapshot{Height: 9, Chunk: -1}).Encode())
	newNode.Broadcast(MsgTypeSnapCommit, []byte{1, 2, 3})
	newNode.Broadcast("block", []byte("payload"))

	select {
	case msg := <-known:
		if string(msg.Payload) != "payload" {
			t.Fatalf("known message payload = %q", msg.Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("known message never delivered after unknown ones")
	}
}
