package p2p

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestDialTimeoutBounds asserts an unreachable peer cannot stall Dial
// past the configured bound (it used to block for the OS default).
func TestDialTimeoutBounds(t *testing.T) {
	old := tcpDialTimeout
	tcpDialTimeout = 500 * time.Millisecond
	defer func() { tcpDialTimeout = old }()

	start := time.Now()
	// TEST-NET-3 (RFC 5737) is never routed; depending on the host it
	// black-holes (exercising the timeout) or errors immediately —
	// either way Dial must return well inside the bound.
	conn, err := TCPTransport{}.Dial("203.0.113.1:9")
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dial took %v, timeout not applied", elapsed)
	}
	if err == nil {
		// Some environments (transparent proxies, captive networks)
		// answer for any address; the bound above still held.
		conn.Close()
		t.Skip("network answers for TEST-NET addresses; connect timeout not exercisable here")
	}
}

// TestSendWriteDeadline asserts that a peer which stops reading turns
// into a send error instead of wedging the writer forever: the write
// deadline fires once the kernel buffers fill.
func TestSendWriteDeadline(t *testing.T) {
	old := tcpWriteTimeout
	tcpWriteTimeout = 300 * time.Millisecond
	defer func() { tcpWriteTimeout = old }()

	lis, err := TCPTransport{}.Listen("")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer lis.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err == nil {
			accepted <- c // never read from: the peer is stalled
		}
	}()
	sender, err := TCPTransport{}.Dial(lis.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer sender.Close()
	defer func() {
		select {
		case c := <-accepted:
			c.Close()
		default:
		}
	}()

	msg := Message{Type: "t", From: "a", Payload: make([]byte, 1<<20)}
	errc := make(chan error, 1)
	go func() {
		for i := 0; i < 256; i++ {
			if err := sender.Send(msg); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("256 MiB vanished into an unread socket without an error")
		}
		if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
			t.Logf("send failed with non-timeout error %v (acceptable: peer reset)", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("send to stalled peer never returned; write deadline not applied")
	}
}

// TestNodeCloseReleasesGoroutines asserts Close tears down accept,
// reader and writer goroutines — the regression guard for the per-peer
// writer loops.
func TestNodeCloseReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	tr := NewMemTransport()
	var nodes []*Node
	for i := 0; i < 4; i++ {
		n, err := NewNode(tr, fmt.Sprintf("n%d", i), nil)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		nodes = append(nodes, n)
	}
	for _, a := range nodes {
		for _, b := range nodes {
			if a != b {
				if err := a.Connect(b.Addr()); err != nil {
					t.Fatalf("connect: %v", err)
				}
			}
		}
	}
	for i, n := range nodes {
		n.Broadcast("t", []byte{byte(i)})
	}
	for _, n := range nodes {
		if err := n.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d before, %d after close\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFloodDoesNotDeadlock is the regression test for the send-side
// head-of-line deadlock: handlers used to re-flood synchronously on
// reader goroutines, so two nodes with full transport buffers blocked
// each other's readers forever. With per-peer writer queues the flood
// below completes; before the fix it hung.
func TestFloodDoesNotDeadlock(t *testing.T) {
	tr := NewMemTransport()
	a, err := NewNode(tr, "a", nil)
	if err != nil {
		t.Fatalf("node a: %v", err)
	}
	b, err := NewNode(tr, "b", nil)
	if err != nil {
		t.Fatalf("node b: %v", err)
	}
	if err := a.Connect("b"); err != nil {
		t.Fatalf("connect: %v", err)
	}
	if err := b.Connect("a"); err != nil {
		t.Fatalf("connect: %v", err)
	}

	// Well past the 64-message transport buffer and the send queues,
	// from both sides at once.
	const floods = 4
	const msgs = 2000
	done := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		for f := 0; f < floods; f++ {
			wg.Add(2)
			go func(f int) {
				defer wg.Done()
				for i := 0; i < msgs; i++ {
					a.Broadcast("t", []byte(fmt.Sprintf("a/%d/%d", f, i)))
				}
			}(f)
			go func(f int) {
				defer wg.Done()
				for i := 0; i < msgs; i++ {
					b.Broadcast("t", []byte(fmt.Sprintf("b/%d/%d", f, i)))
				}
			}(f)
		}
		wg.Wait()
		a.Close()
		b.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("bidirectional flood deadlocked")
	}
}
