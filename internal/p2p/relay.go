package p2p

import (
	"sync"
	"time"
)

// This file implements inventory-based relay on top of the gossip node:
// instead of flooding full transaction and block bodies to every peer,
// a node that obtains a new object announces its 32-byte digest ("inv")
// and peers request only the bodies they do not already hold
// ("getdata"). Per-peer known-inventory sets keep a node from
// announcing an object back to the peer it learned it from, and a
// timeout re-requests an announced object from the next announcer when
// the first one never answers. The naive flood path in node.go remains
// available (daemon.NodeConfig.FloodRelay) so the relaybench experiment
// can print the before/after wire-byte ratio.

// ObjectID is the 32-byte content identifier inventory gossip relays
// (transaction and block hashes).
type ObjectID = [32]byte

const (
	// maxKnownPerPeer bounds each peer's known-inventory ring.
	maxKnownPerPeer = 8192
	// defaultMaxRelayObjects bounds the relay's payload store.
	defaultMaxRelayObjects = 4096
	// defaultRequestTimeout is how long a getdata waits before the
	// relay asks the next announcer.
	defaultRequestTimeout = 500 * time.Millisecond
)

// RelayConfig wires an inventory relay to its consumer.
type RelayConfig struct {
	// Have reports whether the consumer already holds the object
	// outside the relay's own store (mempool or chain lookup); such
	// inventory is never requested. Nil means "only the store knows".
	Have func(kind string, id ObjectID) bool
	// Fetch recovers the serialized object after the relay's bounded
	// store evicted it (e.g. old blocks re-serialized from the chain).
	Fetch func(kind string, id ObjectID) ([]byte, bool)
	// RequestTimeout overrides defaultRequestTimeout (tests shrink it).
	RequestTimeout time.Duration
	// MaxObjects overrides defaultMaxRelayObjects.
	MaxObjects int
}

// ObjectHandler consumes one relayed object body. It returns the
// object's content id and whether the object is valid enough to relay
// onward. Handlers must be idempotent: a re-requested object can be
// delivered by more than one announcer.
type ObjectHandler func(from string, payload []byte) (id ObjectID, relay bool)

// invKey identifies one relayable object.
type invKey struct {
	kind string
	id   ObjectID
}

// invSet is a bounded set of object identities with ring eviction, the
// same discipline as the node's seen ring.
type invSet struct {
	set  map[invKey]bool
	ring []invKey
	head int
	cap  int
}

func newInvSet(capacity int) *invSet {
	return &invSet{set: make(map[invKey]bool), cap: capacity}
}

// add records the key, evicting the oldest entry once full; it reports
// false when the key was already present.
func (s *invSet) add(k invKey) bool {
	if s.set[k] {
		return false
	}
	s.set[k] = true
	if len(s.ring) < s.cap {
		s.ring = append(s.ring, k)
		return true
	}
	delete(s.set, s.ring[s.head])
	s.ring[s.head] = k
	s.head = (s.head + 1) % s.cap
	return true
}

func (s *invSet) has(k invKey) bool { return s.set[k] }

// pendingFetch tracks one outstanding getdata: who has announced the
// object, who we already asked, and the timer that escalates to the
// next announcer.
type pendingFetch struct {
	announcers []string // arrival order
	asked      map[string]bool
	timer      *time.Timer
}

// Relay is the inventory-relay state bolted onto a Node.
type Relay struct {
	node    *Node
	cfg     RelayConfig
	timeout time.Duration

	mu       sync.Mutex
	handlers map[string]ObjectHandler
	store    map[invKey][]byte
	ring     []invKey
	head     int
	maxObjs  int
	known    map[string]*invSet // peer addr → inventory it is known to have
	pending  map[invKey]*pendingFetch
	closed   bool
}

// NewRelay attaches inventory relay to n. Call Handle for every object
// kind before traffic arrives.
func NewRelay(n *Node, cfg RelayConfig) *Relay {
	r := &Relay{
		node:     n,
		cfg:      cfg,
		timeout:  cfg.RequestTimeout,
		handlers: make(map[string]ObjectHandler),
		store:    make(map[invKey][]byte),
		maxObjs:  cfg.MaxObjects,
		known:    make(map[string]*invSet),
		pending:  make(map[invKey]*pendingFetch),
	}
	if r.timeout <= 0 {
		r.timeout = defaultRequestTimeout
	}
	if r.maxObjs <= 0 {
		r.maxObjs = defaultMaxRelayObjects
	}
	n.HandleDirect("inv", r.onInv)
	n.HandleDirect("getdata", r.onGetData)
	return r
}

// Handle registers the consumer callback for an object kind and starts
// accepting bodies of that kind over the wire.
func (r *Relay) Handle(kind string, h ObjectHandler) {
	r.mu.Lock()
	r.handlers[kind] = h
	r.mu.Unlock()
	r.node.HandleDirect(kind, func(from string, msg Message) {
		r.onObject(kind, from, msg.Payload)
	})
}

// Close stops every outstanding request timer. The relay must not be
// used afterwards.
func (r *Relay) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	for _, p := range r.pending {
		p.timer.Stop()
	}
	r.pending = make(map[invKey]*pendingFetch)
}

// Announce stores the object and advertises its digest to connected
// peers. Peers already known to hold the object are skipped unless
// force is set — sync repair forces, because the original requester of
// a catch-up is hidden behind gossip re-flooding and may have missed an
// earlier announcement.
func (r *Relay) Announce(kind string, id ObjectID, payload []byte, force bool) {
	key := invKey{kind, id}
	peers := r.node.Peers()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.storeLocked(key, payload)
	r.clearPendingLocked(key)
	r.pruneKnownLocked(peers)
	targets := make([]string, 0, len(peers))
	for _, addr := range peers {
		if force || !r.knownLocked(addr).has(key) {
			targets = append(targets, addr)
		}
	}
	m := r.node.metrics
	r.mu.Unlock()

	if len(targets) == 0 {
		return
	}
	wire := encodeInv(kind, id)
	var sent []string
	for _, addr := range targets {
		if r.node.SendTo(addr, "inv", wire) {
			sent = append(sent, addr)
			m.relayAnnounce(kind, "out").Inc()
		}
	}
	r.mu.Lock()
	for _, addr := range sent {
		r.knownLocked(addr).add(key)
	}
	r.mu.Unlock()
}

// AnnounceTo stores a batch of objects and advertises all their digests
// to one peer in a single inv frame — the sync-response path. Fanning a
// forced per-object announcement to every peer amplified one catch-up
// request into O(gap × peers) messages and starved the send queues the
// getdata responses share; a batched digest list to the requester costs
// one message. Known-inventory is deliberately not consulted or marked:
// the peer told us what it lacks, and a lost inv must be repairable by
// the next request.
func (r *Relay) AnnounceTo(addr, kind string, ids []ObjectID, bodies [][]byte) {
	if len(ids) == 0 || len(ids) != len(bodies) {
		return
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	for i, id := range ids {
		key := invKey{kind, id}
		r.storeLocked(key, bodies[i])
		r.clearPendingLocked(key)
	}
	m := r.node.metrics
	r.mu.Unlock()
	if r.node.SendTo(addr, "inv", encodeInv(kind, ids...)) {
		m.relayAnnounce(kind, "out").Add(uint64(len(ids)))
	}
}

// AnnounceBatch stores a batch of objects and advertises them with one
// inv frame per peer — the mempool-rebroadcast path, which would
// otherwise cost one message per object per peer every pump. Forced
// batches still go to every peer (known-inventory can hold false
// positives when a send was enqueued but lost); unforced ones skip ids
// a peer is known to hold and peers with nothing new.
func (r *Relay) AnnounceBatch(kind string, ids []ObjectID, bodies [][]byte, force bool) {
	if len(ids) == 0 || len(ids) != len(bodies) {
		return
	}
	peers := r.node.Peers()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	keys := make([]invKey, len(ids))
	for i, id := range ids {
		keys[i] = invKey{kind, id}
		r.storeLocked(keys[i], bodies[i])
		r.clearPendingLocked(keys[i])
	}
	r.pruneKnownLocked(peers)
	type batch struct {
		addr string
		send []ObjectID
		keys []invKey
	}
	batches := make([]batch, 0, len(peers))
	for _, addr := range peers {
		known := r.knownLocked(addr)
		var send []ObjectID
		var sendKeys []invKey
		for i, key := range keys {
			if force || !known.has(key) {
				send = append(send, ids[i])
				sendKeys = append(sendKeys, key)
			}
		}
		if len(send) > 0 {
			batches = append(batches, batch{addr, send, sendKeys})
		}
	}
	m := r.node.metrics
	r.mu.Unlock()

	for _, b := range batches {
		if r.node.SendTo(b.addr, "inv", encodeInv(kind, b.send...)) {
			m.relayAnnounce(kind, "out").Add(uint64(len(b.send)))
			r.mu.Lock()
			known := r.knownLocked(b.addr)
			for _, key := range b.keys {
				known.add(key)
			}
			r.mu.Unlock()
		}
	}
}

// Put stores an object body without announcing it — the compact-block
// path pushes its own announcement format but must still be able to
// answer getdata and getblocktxn for the block.
func (r *Relay) Put(kind string, id ObjectID, payload []byte) {
	key := invKey{kind, id}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.storeLocked(key, payload)
	r.clearPendingLocked(key)
}

// Has reports whether the relay's store holds the object body.
func (r *Relay) Has(kind string, id ObjectID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.store[invKey{kind, id}]
	return ok
}

// Known reports whether the peer is known to hold the object.
func (r *Relay) Known(addr, kind string, id ObjectID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.knownLocked(addr).has(invKey{kind, id})
}

// MarkKnown records that the peer holds the object (e.g. it sent or
// received the block through the compact path).
func (r *Relay) MarkKnown(addr, kind string, id ObjectID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.knownLocked(addr).add(invKey{kind, id})
}

// Request asks one specific peer for the full object — the compact
// block reconstruction's last-resort fallback. The normal timeout and
// re-request machinery takes over if the peer never answers.
func (r *Relay) Request(kind string, id ObjectID, from string) {
	key := invKey{kind, id}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	if _, have := r.store[key]; have {
		r.mu.Unlock()
		return
	}
	if p, exists := r.pending[key]; exists {
		if !p.asked[from] {
			p.announcers = append(p.announcers, from)
		}
		r.mu.Unlock()
		return
	}
	r.newPendingLocked(key, from)
	m := r.node.metrics
	r.mu.Unlock()
	m.relayRequest(kind, "out").Inc()
	r.node.SendTo(from, "getdata", encodeInv(kind, id))
}

// onInv records the announcer and requests any object this node lacks.
func (r *Relay) onInv(from string, msg Message) {
	kind, ids, ok := decodeInv(msg.Payload)
	if !ok {
		return
	}
	m := r.node.metrics
	var want []ObjectID
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	if _, handled := r.handlers[kind]; !handled {
		r.mu.Unlock()
		return
	}
	for _, id := range ids {
		m.relayAnnounce(kind, "in").Inc()
		key := invKey{kind, id}
		r.knownLocked(from).add(key)
		if p, exists := r.pending[key]; exists {
			if !p.asked[from] {
				p.announcers = append(p.announcers, from)
			}
			continue
		}
		if body, have := r.store[key]; have {
			// A flood design would have pushed the full body here; the
			// announcement cost a digest instead.
			if saved := len(body) - len(msg.Payload); saved > 0 {
				m.relayBytesSaved(kind).Add(uint64(saved))
			}
			continue
		}
		if r.cfg.Have != nil && r.cfg.Have(kind, id) {
			continue
		}
		r.newPendingLocked(key, from)
		want = append(want, id)
	}
	r.mu.Unlock()
	if len(want) > 0 {
		m.relayRequest(kind, "out").Add(uint64(len(want)))
		r.node.SendTo(from, "getdata", encodeInv(kind, want...))
	}
}

// onGetData answers requests from the store, falling back to the
// consumer's Fetch for evicted objects.
func (r *Relay) onGetData(from string, msg Message) {
	kind, ids, ok := decodeInv(msg.Payload)
	if !ok {
		return
	}
	m := r.node.metrics
	for _, id := range ids {
		m.relayRequest(kind, "in").Inc()
		key := invKey{kind, id}
		r.mu.Lock()
		body, have := r.store[key]
		r.mu.Unlock()
		if !have && r.cfg.Fetch != nil {
			body, have = r.cfg.Fetch(kind, id)
		}
		if !have {
			m.relayUnfulfilled.Inc()
			continue
		}
		if r.node.SendTo(from, kind, body) {
			m.relayFulfill(kind, "out").Inc()
			r.mu.Lock()
			r.knownLocked(from).add(key)
			r.mu.Unlock()
		}
	}
}

// onObject runs the consumer handler for a delivered body, then relays
// the object onward by announcement.
func (r *Relay) onObject(kind, from string, payload []byte) {
	r.mu.Lock()
	h := r.handlers[kind]
	r.mu.Unlock()
	if h == nil {
		return
	}
	r.node.metrics.relayFulfill(kind, "in").Inc()
	id, relayOn := h(from, payload)
	key := invKey{kind, id}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.knownLocked(from).add(key)
	r.clearPendingLocked(key)
	_, already := r.store[key]
	r.mu.Unlock()
	if relayOn && !already {
		r.Announce(kind, id, payload, false)
	}
}

// expire fires when an asked announcer did not deliver in time: ask the
// next one, or abandon the fetch (a later announcement recreates it).
func (r *Relay) expire(key invKey) {
	m := r.node.metrics
	r.mu.Lock()
	p := r.pending[key]
	if p == nil || r.closed {
		r.mu.Unlock()
		return
	}
	m.relayTimeouts.Inc()
	next := ""
	for _, a := range p.announcers {
		if !p.asked[a] {
			next = a
			break
		}
	}
	if next == "" {
		delete(r.pending, key)
		m.relayExpired.Inc()
		r.mu.Unlock()
		return
	}
	p.asked[next] = true
	p.timer = time.AfterFunc(r.timeout, func() { r.expire(key) })
	r.mu.Unlock()
	m.relayRerequests.Inc()
	m.relayRequest(key.kind, "out").Inc()
	r.node.SendTo(next, "getdata", encodeInv(key.kind, key.id))
}

// newPendingLocked registers an outstanding fetch asked of from; the
// caller holds r.mu.
func (r *Relay) newPendingLocked(key invKey, from string) {
	p := &pendingFetch{
		announcers: []string{from},
		asked:      map[string]bool{from: true},
	}
	p.timer = time.AfterFunc(r.timeout, func() { r.expire(key) })
	r.pending[key] = p
}

// clearPendingLocked drops the outstanding fetch for key, if any; the
// caller holds r.mu.
func (r *Relay) clearPendingLocked(key invKey) {
	if p, ok := r.pending[key]; ok {
		p.timer.Stop()
		delete(r.pending, key)
	}
}

// storeLocked inserts the body with ring eviction; the caller holds
// r.mu.
func (r *Relay) storeLocked(key invKey, payload []byte) {
	if _, dup := r.store[key]; dup {
		return
	}
	r.store[key] = payload
	if len(r.ring) < r.maxObjs {
		r.ring = append(r.ring, key)
		return
	}
	delete(r.store, r.ring[r.head])
	r.ring[r.head] = key
	r.head = (r.head + 1) % r.maxObjs
}

// knownLocked returns the peer's known-inventory set, creating it on
// first use; the caller holds r.mu.
func (r *Relay) knownLocked(addr string) *invSet {
	s := r.known[addr]
	if s == nil {
		s = newInvSet(maxKnownPerPeer)
		r.known[addr] = s
	}
	return s
}

// pruneKnownLocked drops known-inventory state for departed peers; the
// caller holds r.mu.
func (r *Relay) pruneKnownLocked(peers []string) {
	if len(r.known) <= len(peers) {
		return
	}
	live := make(map[string]bool, len(peers))
	for _, addr := range peers {
		live[addr] = true
	}
	for addr := range r.known {
		if !live[addr] {
			delete(r.known, addr)
		}
	}
}

// encodeInv frames an inventory payload: 1-byte kind length, the kind,
// then one or more 32-byte ids.
func encodeInv(kind string, ids ...ObjectID) []byte {
	out := make([]byte, 0, 1+len(kind)+32*len(ids))
	out = append(out, byte(len(kind)))
	out = append(out, kind...)
	for i := range ids {
		out = append(out, ids[i][:]...)
	}
	return out
}

// decodeInv parses an encodeInv payload. It rejects empty, truncated or
// ragged frames.
func decodeInv(payload []byte) (kind string, ids []ObjectID, ok bool) {
	if len(payload) < 1 {
		return "", nil, false
	}
	kl := int(payload[0])
	rest := payload[1:]
	if len(rest) < kl {
		return "", nil, false
	}
	kind = string(rest[:kl])
	rest = rest[kl:]
	if len(rest) == 0 || len(rest)%32 != 0 {
		return "", nil, false
	}
	ids = make([]ObjectID, 0, len(rest)/32)
	for len(rest) > 0 {
		var id ObjectID
		copy(id[:], rest[:32])
		ids = append(ids, id)
		rest = rest[32:]
	}
	return kind, ids, true
}
