package p2p

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Typed sync messages for headers-first synchronization and snapshot
// bootstrap. They replace the stringly height-blast "sync" payload with
// versioned binary structs: a version byte leads every encoding, and
// decoders reject versions they do not understand, so a future format
// bump fails loudly at the requester instead of corrupting a sync. The
// message *types* themselves stay forward compatible the same way the
// rest of the gossip layer is — a node simply has no handler registered
// for a type it does not know and ignores it.

// Sync message type names, as registered with Node.HandleDirect (the
// request/response pairs are point-to-point, not flooded) and
// Node.Handle (snapshot commitments gossip like blocks).
const (
	MsgTypeGetHeaders    = "getheaders"
	MsgTypeHeaders       = "headers"
	MsgTypeGetSnapshot   = "getsnapshot"
	MsgTypeSnapshotChunk = "snapshotchunk"
	MsgTypeSnapCommit    = "snapcommit"
)

// syncMsgVersion is the encoding version this build speaks.
const syncMsgVersion = 1

// Bounds on untrusted decode inputs. Generous relative to real use but
// far below maxFrameSize, so a hostile peer cannot make a decoder
// allocate unboundedly.
const (
	maxLocatorIDs    = 256
	maxHeadersPerMsg = 4096
	maxHeaderBytes   = 4096
	maxSnapshotChunk = 4 << 20
	maxManifestBytes = 64 << 10
)

// ErrBadSyncMsg reports an undecodable or unsupported sync message.
var ErrBadSyncMsg = errors.New("p2p: malformed sync message")

// MsgGetHeaders asks a peer for best-branch headers above the locator
// (block IDs of the requester's spine, tip first).
type MsgGetHeaders struct {
	Version uint8
	Locator [][32]byte
	// Max caps the response batch.
	Max uint32
}

// MsgHeaders answers MsgGetHeaders with serialized headers in height
// order. Headers stay opaque bytes at this layer — the chain package
// owns their encoding.
type MsgHeaders struct {
	Version uint8
	Headers [][]byte
}

// MsgGetSnapshot requests snapshot data. Chunk == -1 asks for the
// manifest (the serialized snapshot commitment plus the chunk count);
// otherwise it names one chunk of the snapshot at Height.
type MsgGetSnapshot struct {
	Version uint8
	Height  int64
	Chunk   int32
}

// MsgSnapshotChunk carries snapshot data. For a manifest response
// (Chunk == -1) Manifest holds the serialized commitment and Total the
// chunk count; for a data response Payload holds the chunk bytes.
type MsgSnapshotChunk struct {
	Version  uint8
	Height   int64
	Chunk    int32
	Total    int32
	Manifest []byte
	Payload  []byte
}

func (m *MsgGetHeaders) Encode() []byte {
	out := make([]byte, 0, 1+2+32*len(m.Locator)+4)
	out = append(out, syncMsgVersion)
	out = binary.BigEndian.AppendUint16(out, uint16(len(m.Locator)))
	for i := range m.Locator {
		out = append(out, m.Locator[i][:]...)
	}
	return binary.BigEndian.AppendUint32(out, m.Max)
}

func DecodeGetHeaders(payload []byte) (*MsgGetHeaders, error) {
	if err := checkVersion(payload); err != nil {
		return nil, err
	}
	rest := payload[1:]
	if len(rest) < 2 {
		return nil, fmt.Errorf("%w: truncated locator count", ErrBadSyncMsg)
	}
	n := int(binary.BigEndian.Uint16(rest))
	rest = rest[2:]
	if n > maxLocatorIDs {
		return nil, fmt.Errorf("%w: %d locator ids", ErrBadSyncMsg, n)
	}
	if len(rest) != 32*n+4 {
		return nil, fmt.Errorf("%w: getheaders length %d for %d ids", ErrBadSyncMsg, len(payload), n)
	}
	m := &MsgGetHeaders{Version: payload[0], Locator: make([][32]byte, n)}
	for i := 0; i < n; i++ {
		copy(m.Locator[i][:], rest[:32])
		rest = rest[32:]
	}
	m.Max = binary.BigEndian.Uint32(rest)
	return m, nil
}

func (m *MsgHeaders) Encode() []byte {
	size := 1 + 4
	for _, h := range m.Headers {
		size += 4 + len(h)
	}
	out := make([]byte, 0, size)
	out = append(out, syncMsgVersion)
	out = binary.BigEndian.AppendUint32(out, uint32(len(m.Headers)))
	for _, h := range m.Headers {
		out = binary.BigEndian.AppendUint32(out, uint32(len(h)))
		out = append(out, h...)
	}
	return out
}

func DecodeHeaders(payload []byte) (*MsgHeaders, error) {
	if err := checkVersion(payload); err != nil {
		return nil, err
	}
	rest := payload[1:]
	if len(rest) < 4 {
		return nil, fmt.Errorf("%w: truncated header count", ErrBadSyncMsg)
	}
	n := int(binary.BigEndian.Uint32(rest))
	rest = rest[4:]
	if n > maxHeadersPerMsg {
		return nil, fmt.Errorf("%w: %d headers", ErrBadSyncMsg, n)
	}
	m := &MsgHeaders{Version: payload[0], Headers: make([][]byte, 0, n)}
	for i := 0; i < n; i++ {
		if len(rest) < 4 {
			return nil, fmt.Errorf("%w: truncated header %d", ErrBadSyncMsg, i)
		}
		hl := int(binary.BigEndian.Uint32(rest))
		rest = rest[4:]
		if hl > maxHeaderBytes || len(rest) < hl {
			return nil, fmt.Errorf("%w: header %d of %d bytes", ErrBadSyncMsg, i, hl)
		}
		m.Headers = append(m.Headers, rest[:hl:hl])
		rest = rest[hl:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadSyncMsg, len(rest))
	}
	return m, nil
}

func (m *MsgGetSnapshot) Encode() []byte {
	out := make([]byte, 0, 1+8+4)
	out = append(out, syncMsgVersion)
	out = binary.BigEndian.AppendUint64(out, uint64(m.Height))
	return binary.BigEndian.AppendUint32(out, uint32(m.Chunk))
}

func DecodeGetSnapshot(payload []byte) (*MsgGetSnapshot, error) {
	if err := checkVersion(payload); err != nil {
		return nil, err
	}
	if len(payload) != 1+8+4 {
		return nil, fmt.Errorf("%w: getsnapshot length %d", ErrBadSyncMsg, len(payload))
	}
	return &MsgGetSnapshot{
		Version: payload[0],
		Height:  int64(binary.BigEndian.Uint64(payload[1:9])),
		Chunk:   int32(binary.BigEndian.Uint32(payload[9:13])),
	}, nil
}

func (m *MsgSnapshotChunk) Encode() []byte {
	out := make([]byte, 0, 1+8+4+4+4+len(m.Manifest)+4+len(m.Payload))
	out = append(out, syncMsgVersion)
	out = binary.BigEndian.AppendUint64(out, uint64(m.Height))
	out = binary.BigEndian.AppendUint32(out, uint32(m.Chunk))
	out = binary.BigEndian.AppendUint32(out, uint32(m.Total))
	out = binary.BigEndian.AppendUint32(out, uint32(len(m.Manifest)))
	out = append(out, m.Manifest...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(m.Payload)))
	return append(out, m.Payload...)
}

func DecodeSnapshotChunk(payload []byte) (*MsgSnapshotChunk, error) {
	if err := checkVersion(payload); err != nil {
		return nil, err
	}
	rest := payload[1:]
	if len(rest) < 8+4+4+4 {
		return nil, fmt.Errorf("%w: truncated snapshotchunk", ErrBadSyncMsg)
	}
	m := &MsgSnapshotChunk{Version: payload[0]}
	m.Height = int64(binary.BigEndian.Uint64(rest))
	m.Chunk = int32(binary.BigEndian.Uint32(rest[8:]))
	m.Total = int32(binary.BigEndian.Uint32(rest[12:]))
	rest = rest[16:]
	ml := int(binary.BigEndian.Uint32(rest))
	rest = rest[4:]
	if ml > maxManifestBytes || len(rest) < ml {
		return nil, fmt.Errorf("%w: manifest of %d bytes", ErrBadSyncMsg, ml)
	}
	m.Manifest = rest[:ml:ml]
	rest = rest[ml:]
	if len(rest) < 4 {
		return nil, fmt.Errorf("%w: truncated payload length", ErrBadSyncMsg)
	}
	pl := int(binary.BigEndian.Uint32(rest))
	rest = rest[4:]
	if pl > maxSnapshotChunk || len(rest) != pl {
		return nil, fmt.Errorf("%w: payload of %d bytes with %d present", ErrBadSyncMsg, pl, len(rest))
	}
	m.Payload = rest[:pl:pl]
	return m, nil
}

func checkVersion(payload []byte) error {
	if len(payload) < 1 {
		return fmt.Errorf("%w: empty", ErrBadSyncMsg)
	}
	if payload[0] != syncMsgVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrBadSyncMsg, payload[0])
	}
	return nil
}

// EncodeInv exposes the relay's inventory framing so the sync state
// machine can issue direct getdata batches for tail blocks through the
// same code path the relay answers.
func EncodeInv(kind string, ids ...ObjectID) []byte { return encodeInv(kind, ids...) }

// DecodeInv parses an EncodeInv payload.
func DecodeInv(payload []byte) (kind string, ids []ObjectID, ok bool) {
	return decodeInv(payload)
}
