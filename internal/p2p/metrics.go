package p2p

import "bcwan/internal/telemetry"

// p2pMetrics holds the gossip node's instrumentation. All fields are
// nil-safe no-ops when the node was built without a registry, so the
// hot paths only pay a nil check.
type p2pMetrics struct {
	ns            *telemetry.Namespace
	bytesIn       *telemetry.Counter
	bytesOut      *telemetry.Counter
	messageBytes  *telemetry.Histogram
	dupSuppressed *telemetry.Counter
	seenEvictions *telemetry.Counter
	peerCount     *telemetry.Gauge
	dialFailures  *telemetry.Counter
	queueDrops    *telemetry.Counter
}

// knownMessageTypes are pre-registered so the per-type series exist at
// zero before the first message of each type flows.
var knownMessageTypes = []string{"tx", "block", "sync"}

func newP2PMetrics(reg *telemetry.Registry) *p2pMetrics {
	ns := reg.Namespace("p2p")
	m := &p2pMetrics{
		ns:            ns,
		bytesIn:       ns.Counter("bytes_in_total", "Total payload bytes received from peers."),
		bytesOut:      ns.Counter("bytes_out_total", "Total payload bytes sent to peers."),
		messageBytes:  ns.Histogram("message_bytes", "Distribution of received message payload sizes in bytes.", telemetry.SizeBuckets),
		dupSuppressed: ns.Counter("duplicates_suppressed_total", "Gossip messages dropped because they were already seen."),
		seenEvictions: ns.Counter("seen_evictions_total", "Entries evicted from the duplicate-suppression ring."),
		peerCount:     ns.Gauge("peer_count", "Connected gossip peers."),
		dialFailures:  ns.Counter("dial_failures_total", "Outbound connection attempts that failed."),
		queueDrops:    ns.Counter("send_queue_drops_total", "Outbound messages dropped because a peer's send queue was full."),
	}
	for _, t := range knownMessageTypes {
		m.msgIn(t)
		m.msgOut(t)
	}
	return m
}

// msgIn returns the received-message counter for a type. The registry's
// create-or-get semantics make this cheap after first use.
func (m *p2pMetrics) msgIn(msgType string) *telemetry.Counter {
	if m == nil {
		return nil
	}
	return m.ns.Counter("messages_in_total", "Gossip messages received, by type.", telemetry.L("type", msgType))
}

// msgOut returns the sent-message counter for a type.
func (m *p2pMetrics) msgOut(msgType string) *telemetry.Counter {
	if m == nil {
		return nil
	}
	return m.ns.Counter("messages_out_total", "Gossip messages sent, by type.", telemetry.L("type", msgType))
}
