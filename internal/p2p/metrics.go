package p2p

import "bcwan/internal/telemetry"

// p2pMetrics holds the gossip node's instrumentation. All fields are
// nil-safe no-ops when the node was built without a registry, so the
// hot paths only pay a nil check.
type p2pMetrics struct {
	ns            *telemetry.Namespace
	bytesIn       *telemetry.Counter
	bytesOut      *telemetry.Counter
	messageBytes  *telemetry.Histogram
	dupSuppressed *telemetry.Counter
	seenEvictions *telemetry.Counter
	peerCount     *telemetry.Gauge
	dialFailures  *telemetry.Counter
	queueDrops    *telemetry.Counter
	misbehavior   *telemetry.Counter
	bans          *telemetry.Counter

	// Inventory-relay counters (see relay.go). All nil-safe through the
	// label-lookup helpers below.
	relayTimeouts    *telemetry.Counter
	relayRerequests  *telemetry.Counter
	relayExpired     *telemetry.Counter
	relayUnfulfilled *telemetry.Counter
}

// knownMessageTypes are pre-registered so the per-type series exist at
// zero before the first message of each type flows.
var knownMessageTypes = []string{"tx", "block", "sync", "inv", "getdata", "cmpctblock", "getblocktxn", "blocktxn"}

func newP2PMetrics(reg *telemetry.Registry) *p2pMetrics {
	ns := reg.Namespace("p2p")
	m := &p2pMetrics{
		ns:            ns,
		bytesIn:       ns.Counter("bytes_in_total", "Total message bytes (type, sender, payload) received from peers."),
		bytesOut:      ns.Counter("bytes_out_total", "Total message bytes (type, sender, payload) sent to peers."),
		messageBytes:  ns.Histogram("message_bytes", "Distribution of received message sizes in bytes (type, sender, payload).", telemetry.SizeBuckets),
		dupSuppressed: ns.Counter("duplicates_suppressed_total", "Gossip messages dropped because they were already seen."),
		seenEvictions: ns.Counter("seen_evictions_total", "Entries evicted from the duplicate-suppression ring."),
		peerCount:     ns.Gauge("peer_count", "Connected gossip peers."),
		dialFailures:  ns.Counter("dial_failures_total", "Outbound connection attempts that failed."),
		queueDrops:    ns.Counter("send_queue_drops_total", "Outbound messages dropped because a peer's send queue was full."),
		misbehavior:   ns.Counter("misbehavior_points_total", "Misbehavior points charged against peers for protocol abuse."),
		bans:          ns.Counter("bans_total", "Peers banned after crossing the misbehavior threshold."),

		relayTimeouts:    ns.Counter("relay_request_timeouts_total", "Object requests that timed out waiting for the asked announcer."),
		relayRerequests:  ns.Counter("relay_rerequests_total", "Timed-out object requests retried against another announcer."),
		relayExpired:     ns.Counter("relay_requests_expired_total", "Object requests abandoned after every announcer was tried."),
		relayUnfulfilled: ns.Counter("relay_getdata_unfulfilled_total", "getdata requests for objects this node no longer holds."),
	}
	for _, t := range knownMessageTypes {
		m.msgIn(t)
		m.msgOut(t)
	}
	return m
}

// msgIn returns the received-message counter for a type. The registry's
// create-or-get semantics make this cheap after first use.
func (m *p2pMetrics) msgIn(msgType string) *telemetry.Counter {
	if m == nil {
		return nil
	}
	return m.ns.Counter("messages_in_total", "Gossip messages received, by type.", telemetry.L("type", msgType))
}

// msgOut returns the sent-message counter for a type.
func (m *p2pMetrics) msgOut(msgType string) *telemetry.Counter {
	if m == nil {
		return nil
	}
	return m.ns.Counter("messages_out_total", "Gossip messages sent, by type.", telemetry.L("type", msgType))
}

// connRefused returns the refused-connection counter for a reason
// ("banned" or "full").
func (m *p2pMetrics) connRefused(reason string) *telemetry.Counter {
	if m == nil {
		return nil
	}
	return m.ns.Counter("connections_refused_total", "Connections refused, by reason.",
		telemetry.L("reason", reason))
}

// relayAnnounce returns the inv-announcement counter for a kind and
// direction ("in"/"out").
func (m *p2pMetrics) relayAnnounce(kind, dir string) *telemetry.Counter {
	if m == nil {
		return nil
	}
	return m.ns.Counter("relay_announces_total", "Inventory digests announced, by object kind and direction.",
		telemetry.L("kind", kind), telemetry.L("dir", dir))
}

// relayRequest returns the getdata counter for a kind and direction.
func (m *p2pMetrics) relayRequest(kind, dir string) *telemetry.Counter {
	if m == nil {
		return nil
	}
	return m.ns.Counter("relay_requests_total", "Objects requested via getdata, by kind and direction.",
		telemetry.L("kind", kind), telemetry.L("dir", dir))
}

// relayFulfill returns the fulfillment counter for a kind and direction.
func (m *p2pMetrics) relayFulfill(kind, dir string) *telemetry.Counter {
	if m == nil {
		return nil
	}
	return m.ns.Counter("relay_fulfills_total", "Objects delivered in answer to getdata, by kind and direction.",
		telemetry.L("kind", kind), telemetry.L("dir", dir))
}

// relayBytesSaved returns the estimated-savings counter for a kind: the
// full-body bytes a naive flood would have pushed for announcements of
// objects this node already held.
func (m *p2pMetrics) relayBytesSaved(kind string) *telemetry.Counter {
	if m == nil {
		return nil
	}
	return m.ns.Counter("relay_bytes_saved_total", "Estimated wire bytes saved vs naive flooding: object bytes not re-sent because an announcement found the object already present.",
		telemetry.L("kind", kind))
}
