// Package p2p implements the gateway-to-gateway overlay of the BcWAN
// architecture (Fig. 2): with the network server removed, gateway daemons
// gossip transactions and blocks directly to each other over TCP. An
// in-memory transport with identical semantics backs the tests and the
// simulation harness.
package p2p

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Message is one framed gossip datagram.
type Message struct {
	// Type routes the message to a handler ("tx", "block", "inv", …).
	Type string `json:"type"`
	// From is the sender's listen address, so receivers can dial back.
	From string `json:"from"`
	// Payload is the message body (hex/base64-free: JSON array of
	// bytes is wasteful, so payloads are raw bytes via base64 per
	// encoding/json's []byte convention).
	Payload []byte `json:"payload"`
}

// WireSize is the logical size of the message on the wire: type, sender
// and payload bytes. Transport framing (JSON field names, base64
// expansion, length prefixes) is excluded so byte metrics compare
// protocols, not encodings. The relay-savings telemetry and the
// relaybench experiment both use this measure on each side.
func (m *Message) WireSize() int { return len(m.Type) + len(m.From) + len(m.Payload) }

// maxFrameSize bounds a single framed message (a full block with many
// transactions fits comfortably).
const maxFrameSize = 8 << 20

// Transport abstracts the wire so TCP and in-memory networks share the
// Node implementation.
type Transport interface {
	// Listen starts accepting connections on addr ("" lets the
	// transport choose). It returns the bound address.
	Listen(addr string) (Listener, error)
	// Dial opens a connection to a listening address.
	Dial(addr string) (Conn, error)
}

// Listener accepts inbound connections.
type Listener interface {
	Accept() (Conn, error)
	Addr() string
	Close() error
}

// Conn is a bidirectional message stream.
type Conn interface {
	Send(Message) error
	Receive() (Message, error)
	Close() error
}

// ErrClosed reports use of a closed connection or listener.
var ErrClosed = errors.New("p2p: closed")

// TCPTransport implements Transport over real sockets with 4-byte
// length-prefixed JSON frames.
type TCPTransport struct{}

var _ Transport = TCPTransport{}

// Socket timeouts, variables so tests can shrink them. Without the dial
// bound a black-holed peer stalls Connect for the OS default (minutes);
// without the write bound a peer that stops reading wedges its writer
// goroutine forever instead of surfacing a send error that drops it.
var (
	tcpDialTimeout  = 10 * time.Second
	tcpWriteTimeout = 30 * time.Second
)

// Listen implements Transport.
func (TCPTransport) Listen(addr string) (Listener, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("p2p listen: %w", err)
	}
	return &tcpListener{l: l}, nil
}

// Dial implements Transport.
func (TCPTransport) Dial(addr string) (Conn, error) {
	c, err := net.DialTimeout("tcp", addr, tcpDialTimeout)
	if err != nil {
		return nil, fmt.Errorf("p2p dial %s: %w", addr, err)
	}
	return &tcpConn{c: c}, nil
}

type tcpListener struct {
	l net.Listener
}

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	return &tcpConn{c: c}, nil
}

func (t *tcpListener) Addr() string { return t.l.Addr().String() }

func (t *tcpListener) Close() error { return t.l.Close() }

type tcpConn struct {
	c  net.Conn
	mu sync.Mutex // serializes Send frames
}

func (t *tcpConn) Send(m Message) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("p2p marshal: %w", err)
	}
	if len(data) > maxFrameSize {
		return fmt.Errorf("p2p: frame of %d bytes exceeds limit", len(data))
	}
	var lenb [4]byte
	binary.BigEndian.PutUint32(lenb[:], uint32(len(data)))
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.c.SetWriteDeadline(time.Now().Add(tcpWriteTimeout)); err != nil {
		return err
	}
	if _, err := t.c.Write(lenb[:]); err != nil {
		return err
	}
	_, err = t.c.Write(data)
	return err
}

func (t *tcpConn) Receive() (Message, error) {
	var lenb [4]byte
	if _, err := io.ReadFull(t.c, lenb[:]); err != nil {
		return Message{}, err
	}
	n := binary.BigEndian.Uint32(lenb[:])
	if n > maxFrameSize {
		return Message{}, fmt.Errorf("p2p: frame of %d bytes exceeds limit", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(t.c, data); err != nil {
		return Message{}, err
	}
	var m Message
	if err := json.Unmarshal(data, &m); err != nil {
		return Message{}, fmt.Errorf("p2p unmarshal: %w", err)
	}
	return m, nil
}

func (t *tcpConn) Close() error { return t.c.Close() }

// MemTransport is an in-process Transport: addresses are arbitrary
// strings, connections are paired channels. Safe for concurrent use.
type MemTransport struct {
	mu        sync.Mutex
	listeners map[string]*memListener
	nextAddr  int
}

var _ Transport = (*MemTransport)(nil)

// NewMemTransport returns an empty in-memory network.
func NewMemTransport() *MemTransport {
	return &MemTransport{listeners: make(map[string]*memListener)}
}

// Listen implements Transport.
func (m *MemTransport) Listen(addr string) (Listener, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if addr == "" {
		m.nextAddr++
		addr = fmt.Sprintf("mem:%d", m.nextAddr)
	}
	if _, taken := m.listeners[addr]; taken {
		return nil, fmt.Errorf("p2p: address %s in use", addr)
	}
	l := &memListener{addr: addr, incoming: make(chan Conn, 16), transport: m}
	m.listeners[addr] = l
	return l, nil
}

// Dial implements Transport.
func (m *MemTransport) Dial(addr string) (Conn, error) {
	m.mu.Lock()
	l, ok := m.listeners[addr]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("p2p dial %s: connection refused", addr)
	}
	a, b := newMemConnPair()
	select {
	case l.incoming <- b:
		return a, nil
	default:
		a.Close()
		b.Close()
		return nil, fmt.Errorf("p2p dial %s: accept queue full", addr)
	}
}

type memListener struct {
	addr      string
	incoming  chan Conn
	transport *MemTransport
	closeOnce sync.Once
	closed    chan struct{}
}

func (l *memListener) Accept() (Conn, error) {
	c, ok := <-l.incoming
	if !ok {
		return nil, ErrClosed
	}
	return c, nil
}

func (l *memListener) Addr() string { return l.addr }

func (l *memListener) Close() error {
	l.closeOnce.Do(func() {
		l.transport.mu.Lock()
		delete(l.transport.listeners, l.addr)
		l.transport.mu.Unlock()
		close(l.incoming)
	})
	return nil
}

type memConn struct {
	in        chan Message
	out       chan Message
	closeOnce sync.Once
	closed    chan struct{}
	peer      *memConn
}

func newMemConnPair() (*memConn, *memConn) {
	ab := make(chan Message, 64)
	ba := make(chan Message, 64)
	a := &memConn{in: ba, out: ab, closed: make(chan struct{})}
	b := &memConn{in: ab, out: ba, closed: make(chan struct{})}
	a.peer = b
	b.peer = a
	return a, b
}

func (c *memConn) Send(m Message) error {
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peer.closed:
		return ErrClosed
	case c.out <- m:
		return nil
	}
}

func (c *memConn) Receive() (Message, error) {
	select {
	case <-c.closed:
		return Message{}, ErrClosed
	case m := <-c.in:
		return m, nil
	case <-c.peer.closed:
		// Drain anything already queued before reporting closure.
		select {
		case m := <-c.in:
			return m, nil
		default:
			return Message{}, io.EOF
		}
	}
}

func (c *memConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return nil
}
