package p2p

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestChannelOpenRoundTrip(t *testing.T) {
	m := &MsgChannelOpen{Version: 1, RecipientPub: []byte("rc-pub"), Capacity: 10_000, RefundWindow: 144}
	got, err := DecodeChannelOpen(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.RecipientPub, m.RecipientPub) || got.Capacity != 10_000 || got.RefundWindow != 144 {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestChannelAcceptRoundTrip(t *testing.T) {
	m := &MsgChannelAccept{Version: 1, RecipientPub: []byte("rc"), GatewayPub: []byte("gw"), OK: ChannelAckOK}
	got, err := DecodeChannelAccept(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.GatewayPub, m.GatewayPub) || got.OK != ChannelAckOK || got.Reason != "" {
		t.Fatalf("round trip = %+v", got)
	}
	rej := &MsgChannelAccept{Version: 1, RecipientPub: []byte("rc"), OK: 1, Reason: "channels disabled"}
	got, err = DecodeChannelAccept(rej.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Reason != "channels disabled" {
		t.Fatalf("reason = %q", got.Reason)
	}
}

func TestChannelFundRoundTrip(t *testing.T) {
	m := &MsgChannelFund{Version: 1, ChannelID: [32]byte{9, 9}, RefundHeight: 512, CloseFee: 5, FundingTx: bytes.Repeat([]byte{0xfe}, 300)}
	got, err := DecodeChannelFund(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.ChannelID != m.ChannelID || got.RefundHeight != 512 || got.CloseFee != 5 || !bytes.Equal(got.FundingTx, m.FundingTx) {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestChannelUpdateRoundTrip(t *testing.T) {
	m := &MsgChannelUpdate{
		Version: 1, ChannelID: [32]byte{1}, ChanVersion: 42, Paid: 4200,
		DevEUI: [8]byte{0xde, 0xca}, Exchange: 7, RecipientSig: []byte("sig"),
	}
	got, err := DecodeChannelUpdate(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.ChanVersion != 42 || got.Paid != 4200 || got.DevEUI != m.DevEUI ||
		got.Exchange != 7 || !bytes.Equal(got.RecipientSig, m.RecipientSig) {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestChannelUpdateAckRoundTrip(t *testing.T) {
	m := &MsgChannelUpdateAck{
		Version: 1, ChannelID: [32]byte{2}, ChanVersion: 42, DevEUI: [8]byte{1},
		Exchange: 7, Status: ChannelAckOK, Key: bytes.Repeat([]byte{3}, 136), GatewaySig: []byte("gwsig"),
	}
	got, err := DecodeChannelUpdateAck(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.ChanVersion != 42 || got.Status != ChannelAckOK ||
		!bytes.Equal(got.Key, m.Key) || !bytes.Equal(got.GatewaySig, m.GatewaySig) {
		t.Fatalf("round trip = %+v", got)
	}
	rej := &MsgChannelUpdateAck{Version: 1, Status: ChannelAckRejected, Reason: "stale version"}
	got, err = DecodeChannelUpdateAck(rej.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != ChannelAckRejected || got.Reason != "stale version" || len(got.Key) != 0 {
		t.Fatalf("rejection round trip = %+v", got)
	}
}

func TestChannelCloseRoundTrip(t *testing.T) {
	m := &MsgChannelClose{Version: 1, ChannelID: [32]byte{0xaa}, Kind: ChannelCloseUnilateral}
	got, err := DecodeChannelClose(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.ChannelID != m.ChannelID || got.Kind != ChannelCloseUnilateral {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestChannelMsgRejectsBadInput(t *testing.T) {
	// Unknown version byte.
	enc := (&MsgChannelClose{ChannelID: [32]byte{1}}).Encode()
	enc[0] = 99
	if _, err := DecodeChannelClose(enc); !errors.Is(err, ErrBadChannelMsg) {
		t.Fatalf("future version: %v", err)
	}
	decoders := []func([]byte) error{
		func(b []byte) error { _, err := DecodeChannelOpen(b); return err },
		func(b []byte) error { _, err := DecodeChannelAccept(b); return err },
		func(b []byte) error { _, err := DecodeChannelFund(b); return err },
		func(b []byte) error { _, err := DecodeChannelUpdate(b); return err },
		func(b []byte) error { _, err := DecodeChannelUpdateAck(b); return err },
		func(b []byte) error { _, err := DecodeChannelClose(b); return err },
	}
	for i, decode := range decoders {
		if err := decode(nil); !errors.Is(err, ErrBadChannelMsg) {
			t.Fatalf("decoder %d empty payload: %v", i, err)
		}
		if err := decode([]byte{1, 0}); !errors.Is(err, ErrBadChannelMsg) {
			t.Fatalf("decoder %d truncated payload: %v", i, err)
		}
	}
	// A field length lying beyond its bound must be rejected, not
	// allocated.
	lying := []byte{1, 0xff, 0xff, 0xff, 0xff}
	if _, err := DecodeChannelOpen(lying); !errors.Is(err, ErrBadChannelMsg) {
		t.Fatalf("lying length: %v", err)
	}
	// Trailing garbage after a well-formed message.
	trailing := append((&MsgChannelUpdate{RecipientSig: []byte("s")}).Encode(), 0xcc)
	if _, err := DecodeChannelUpdate(trailing); !errors.Is(err, ErrBadChannelMsg) {
		t.Fatalf("trailing bytes: %v", err)
	}
}

// TestChannelUnknownTypeTolerated proves channel-speaking and channel-less
// nodes coexist: a node with no channel handlers ignores every channel
// message type and keeps serving the types it knows.
func TestChannelUnknownTypeTolerated(t *testing.T) {
	tr := NewMemTransport()
	oldNode, err := NewNode(tr, "old", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer oldNode.Close()
	newNode, err := NewNode(tr, "new", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer newNode.Close()

	known := make(chan Message, 4)
	oldNode.Handle("block", func(from string, msg Message) { known <- msg })
	if err := newNode.Connect("old"); err != nil {
		t.Fatal(err)
	}

	newNode.SendTo("old", MsgTypeChannelOpen, (&MsgChannelOpen{RecipientPub: []byte("rc")}).Encode())
	newNode.SendTo("old", MsgTypeChannelUpdate, (&MsgChannelUpdate{ChanVersion: 1}).Encode())
	newNode.SendTo("old", MsgTypeChannelClose, (&MsgChannelClose{}).Encode())
	newNode.Broadcast("block", []byte("payload"))

	select {
	case msg := <-known:
		if string(msg.Payload) != "payload" {
			t.Fatalf("known message payload = %q", msg.Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("known message never delivered after channel ones")
	}
}

// FuzzChannelMsgDecode drives every channel decoder with arbitrary bytes:
// none may panic, and every successful decode must re-encode to bytes the
// decoder accepts again (decode/encode/decode agreement).
func FuzzChannelMsgDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add((&MsgChannelOpen{RecipientPub: []byte("rc"), Capacity: 1, RefundWindow: 2}).Encode())
	f.Add((&MsgChannelAccept{RecipientPub: []byte("rc"), GatewayPub: []byte("gw"), Reason: "r"}).Encode())
	f.Add((&MsgChannelFund{ChannelID: [32]byte{1}, FundingTx: []byte{1, 2, 3}}).Encode())
	f.Add((&MsgChannelUpdate{ChanVersion: 3, RecipientSig: []byte("sig")}).Encode())
	f.Add((&MsgChannelUpdateAck{Key: []byte("key"), GatewaySig: []byte("sig")}).Encode())
	f.Add((&MsgChannelClose{Kind: ChannelCloseUnilateral}).Encode())
	// Hostile-field seeds: for every valid encoding also seed a version
	// flip, a mid-message length byte forced to 0xFF (lying interior
	// length prefixes), a truncation, and trailing garbage — adversarial
	// values the random mutator takes much longer to reach.
	for _, valid := range [][]byte{
		(&MsgChannelOpen{RecipientPub: []byte("rc"), Capacity: 1, RefundWindow: 2}).Encode(),
		(&MsgChannelAccept{RecipientPub: []byte("rc"), GatewayPub: []byte("gw"), Reason: "r"}).Encode(),
		(&MsgChannelFund{ChannelID: [32]byte{1}, FundingTx: []byte{1, 2, 3}}).Encode(),
		(&MsgChannelUpdate{ChanVersion: 3, RecipientSig: []byte("sig")}).Encode(),
		(&MsgChannelUpdateAck{Key: []byte("key"), GatewaySig: []byte("sig")}).Encode(),
		(&MsgChannelClose{Kind: ChannelCloseUnilateral}).Encode(),
	} {
		verFlip := append([]byte(nil), valid...)
		verFlip[0] ^= 0xFF
		f.Add(verFlip)
		lying := append([]byte(nil), valid...)
		lying[len(lying)/2] = 0xFF
		f.Add(lying)
		f.Add(valid[:len(valid)-1])
		f.Add(append(append([]byte(nil), valid...), 0xDE, 0xAD, 0xBE, 0xEF))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := DecodeChannelOpen(data); err == nil {
			if _, err := DecodeChannelOpen(m.Encode()); err != nil {
				t.Fatalf("re-decode open: %v", err)
			}
		}
		if m, err := DecodeChannelAccept(data); err == nil {
			if _, err := DecodeChannelAccept(m.Encode()); err != nil {
				t.Fatalf("re-decode accept: %v", err)
			}
		}
		if m, err := DecodeChannelFund(data); err == nil {
			if _, err := DecodeChannelFund(m.Encode()); err != nil {
				t.Fatalf("re-decode fund: %v", err)
			}
		}
		if m, err := DecodeChannelUpdate(data); err == nil {
			if _, err := DecodeChannelUpdate(m.Encode()); err != nil {
				t.Fatalf("re-decode update: %v", err)
			}
		}
		if m, err := DecodeChannelUpdateAck(data); err == nil {
			if _, err := DecodeChannelUpdateAck(m.Encode()); err != nil {
				t.Fatalf("re-decode updateack: %v", err)
			}
		}
		if m, err := DecodeChannelClose(data); err == nil {
			if _, err := DecodeChannelClose(m.Encode()); err != nil {
				t.Fatalf("re-decode close: %v", err)
			}
		}
	})
}
