package p2p

import (
	"fmt"
	"testing"
	"time"

	"bcwan/internal/telemetry"
)

func snapValue(t *testing.T, reg *telemetry.Registry, name string, labels map[string]string) float64 {
	t.Helper()
	for _, m := range reg.Snapshot() {
		if m.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if m.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return m.Value
		}
	}
	t.Fatalf("metric %s %v not in snapshot", name, labels)
	return 0
}

// TestSeenRingEviction fills the duplicate-suppression ring past
// capacity and checks memory stays bounded, old entries are forgotten,
// fresh ones are remembered, and evictions are counted.
func TestSeenRingEviction(t *testing.T) {
	tr := NewMemTransport()
	reg := telemetry.NewRegistry()
	n, err := NewNodeWithTelemetry(tr, "", nil, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	const extra = 10
	for i := 0; i < maxSeen+extra; i++ {
		msg := Message{Type: "tx", Payload: []byte(fmt.Sprintf("m-%d", i))}
		if !n.markSeen(msg) {
			t.Fatalf("message %d reported as duplicate", i)
		}
	}

	n.mu.Lock()
	seenLen, ringLen, ringCap := len(n.seen), len(n.seenRing), cap(n.seenRing)
	n.mu.Unlock()
	if seenLen != maxSeen || ringLen != maxSeen {
		t.Fatalf("seen=%d ring=%d, want both %d", seenLen, ringLen, maxSeen)
	}
	if ringCap > 2*maxSeen {
		t.Fatalf("ring capacity %d grew past bound", ringCap)
	}

	// The first `extra` messages were evicted: re-marking them is "new".
	if !n.markSeen(Message{Type: "tx", Payload: []byte("m-0")}) {
		t.Fatal("evicted message still marked seen")
	}
	// A recent message is still remembered.
	recent := Message{Type: "tx", Payload: []byte(fmt.Sprintf("m-%d", maxSeen+extra-1))}
	if n.markSeen(recent) {
		t.Fatal("recent message forgotten")
	}

	// maxSeen+extra inserts + the re-mark of m-0 → extra+1 evictions.
	if got := snapValue(t, reg, "bcwan_p2p_seen_evictions_total", nil); got != extra+1 {
		t.Fatalf("evictions = %v, want %d", got, extra+1)
	}
}

// TestP2PTelemetryCounters runs a two-node gossip exchange and checks
// message/byte/peer metrics on both sides.
func TestP2PTelemetryCounters(t *testing.T) {
	tr := NewMemTransport()
	regA := telemetry.NewRegistry()
	regB := telemetry.NewRegistry()
	a, err := NewNodeWithTelemetry(tr, "", nil, regA)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewNodeWithTelemetry(tr, "", nil, regB)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var got collector
	b.Handle("tx", got.handler)
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	payload := []byte("payload-1")
	a.Broadcast("tx", payload)
	got.waitFor(t, 1)

	if got := snapValue(t, regA, "bcwan_p2p_messages_out_total", map[string]string{"type": "tx"}); got != 1 {
		t.Fatalf("a messages_out = %v, want 1", got)
	}
	// Byte counters cover the whole message — type, sender and payload —
	// so relay-savings comparisons are honest about announcement overhead.
	wire := (&Message{Type: "tx", From: a.Addr(), Payload: payload}).WireSize()
	if got := snapValue(t, regA, "bcwan_p2p_bytes_out_total", nil); got != float64(wire) {
		t.Fatalf("a bytes_out = %v, want %d", got, wire)
	}
	if got := snapValue(t, regA, "bcwan_p2p_peer_count", nil); got != 1 {
		t.Fatalf("a peer_count = %v, want 1", got)
	}
	if got := snapValue(t, regB, "bcwan_p2p_messages_in_total", map[string]string{"type": "tx"}); got != 1 {
		t.Fatalf("b messages_in = %v, want 1", got)
	}
	if got := snapValue(t, regB, "bcwan_p2p_bytes_in_total", nil); got != float64(wire) {
		t.Fatalf("b bytes_in = %v, want %d", got, wire)
	}
	// Pre-registered series exist at zero even for unseen types.
	if got := snapValue(t, regB, "bcwan_p2p_messages_in_total", map[string]string{"type": "block"}); got != 0 {
		t.Fatalf("b block messages_in = %v, want 0", got)
	}

	// B re-delivering the same message to itself is suppressed and
	// counted: feed the duplicate through dispatch directly.
	b.dispatch(Message{Type: "tx", From: a.Addr(), Payload: payload})
	deadline := time.Now().Add(2 * time.Second)
	for snapValue(t, regB, "bcwan_p2p_duplicates_suppressed_total", nil) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("duplicate suppression not counted")
		}
		time.Sleep(time.Millisecond)
	}

	// Dial failures are counted.
	if err := a.Connect("mem-no-such-node"); err == nil {
		t.Fatal("dial to bogus address succeeded")
	}
	if got := snapValue(t, regA, "bcwan_p2p_dial_failures_total", nil); got != 1 {
		t.Fatalf("dial_failures = %v, want 1", got)
	}
}
