// Package device implements the BcWAN end-device (the sensor "node" of
// Fig. 3). A provisioning phase loads the shared AES-256 key K and the
// RSA-512 signing key Sk onto the node (§4.4); at runtime the node
// requests an ephemeral key from whatever gateway answers, double-encrypts
// its reading, signs it, and ships (Em ‖ Sig ‖ @R) over LoRa.
package device

import (
	"errors"
	"fmt"
	"io"

	"bcwan/internal/bccrypto"
	"bcwan/internal/lora"
)

// Provisioning is the state loaded onto the node before deployment.
type Provisioning struct {
	// DevEUI is the node's hardware identifier.
	DevEUI lora.DevEUI
	// SharedKey is K, the AES-256 key shared with the recipient.
	SharedKey []byte
	// SigningKey is Sk, the node's RSA-512 secret key; the recipient
	// holds the matching Pk.
	SigningKey *bccrypto.RSA512PrivateKey
	// RecipientAddr is @R — the recipient's blockchain address (pubkey
	// hash), the only addressing information the node carries.
	RecipientAddr [20]byte
}

// Validate checks the provisioning is complete.
func (p *Provisioning) Validate() error {
	if len(p.SharedKey) != bccrypto.AESKeySize {
		return fmt.Errorf("device: shared key must be %d bytes", bccrypto.AESKeySize)
	}
	if p.SigningKey == nil {
		return errors.New("device: missing signing key")
	}
	return nil
}

// Device is a provisioned sensor node.
type Device struct {
	prov    Provisioning
	random  io.Reader
	counter uint32
}

// New creates a device from its provisioning.
func New(prov Provisioning, random io.Reader) (*Device, error) {
	if err := prov.Validate(); err != nil {
		return nil, err
	}
	return &Device{prov: prov, random: random}, nil
}

// EUI returns the device identifier.
func (d *Device) EUI() lora.DevEUI { return d.prov.DevEUI }

// KeyRequestFrame builds the initial uplink that asks the gateway for an
// ephemeral public key (the unnumbered first request of Fig. 3).
func (d *Device) KeyRequestFrame() *lora.Frame {
	d.counter++
	return &lora.Frame{
		Type:    lora.FrameKeyRequest,
		DevEUI:  d.prov.DevEUI,
		Counter: d.counter,
	}
}

// DataPayload is the decoded body of a FrameData uplink: the double
// encryption, the signature, and the recipient's blockchain address.
type DataPayload struct {
	Em        []byte
	Sig       []byte
	Recipient [20]byte
}

// DataPayloadLen is the fixed encoding size: 64 B Em + 64 B Sig + 20 B @R.
// The paper's "predefined minimum payload of 128 bytes" covers Em+Sig;
// the recipient address rides along in the same frame.
const DataPayloadLen = 2*bccrypto.RSA512ModulusLen + 20

// ErrBadDataPayload reports an undecodable payload.
var ErrBadDataPayload = errors.New("device: malformed data payload")

// Encode serializes the payload.
func (p *DataPayload) Encode() []byte {
	out := make([]byte, 0, DataPayloadLen)
	out = append(out, p.Em...)
	out = append(out, p.Sig...)
	out = append(out, p.Recipient[:]...)
	return out
}

// DecodeDataPayload parses an encoded payload.
func DecodeDataPayload(data []byte) (*DataPayload, error) {
	if len(data) != DataPayloadLen {
		return nil, fmt.Errorf("%w: %d bytes, want %d", ErrBadDataPayload, len(data), DataPayloadLen)
	}
	p := &DataPayload{
		Em:  append([]byte(nil), data[:bccrypto.RSA512ModulusLen]...),
		Sig: append([]byte(nil), data[bccrypto.RSA512ModulusLen:2*bccrypto.RSA512ModulusLen]...),
	}
	copy(p.Recipient[:], data[2*bccrypto.RSA512ModulusLen:])
	return p, nil
}

// DataFrame performs Fig. 3 steps 3–5: double-encrypt the plaintext with
// K then the gateway's ephemeral key, sign (Em ‖ ePk) with Sk, and wrap
// everything with @R into a LoRa frame. The exchange argument echoes the
// counter of the gateway's key response, naming the ephemeral pair this
// message was encrypted under.
func (d *Device) DataFrame(plaintext, ePkBytes []byte, exchange uint32) (*lora.Frame, error) {
	if len(plaintext) > bccrypto.MaxCanonicalPlaintext {
		return nil, fmt.Errorf("device: plaintext %d bytes exceeds %d (single-block Fig. 4 frame)",
			len(plaintext), bccrypto.MaxCanonicalPlaintext)
	}
	ePk, err := bccrypto.UnmarshalRSA512PublicKey(ePkBytes)
	if err != nil {
		return nil, fmt.Errorf("device: ephemeral key: %w", err)
	}
	// Step 3a: symmetric layer (confidentiality toward the gateway AND
	// in transit; only the recipient holds K).
	frame, err := bccrypto.EncryptFrame(d.random, d.prov.SharedKey, plaintext)
	if err != nil {
		return nil, fmt.Errorf("device: aes layer: %w", err)
	}
	// Step 3b: asymmetric layer under ePk; only the holder of eSk (the
	// gateway, until it sells it) can strip it.
	em, err := bccrypto.EncryptRSA512(d.random, ePk, frame)
	if err != nil {
		return nil, fmt.Errorf("device: rsa layer: %w", err)
	}
	// Step 4: sign Em ‖ ePk with Sk.
	blob := make([]byte, 0, len(em)+len(ePkBytes))
	blob = append(blob, em...)
	blob = append(blob, ePkBytes...)
	sig := bccrypto.SignRSA512(d.prov.SigningKey, blob)

	payload := DataPayload{Em: em, Sig: sig, Recipient: d.prov.RecipientAddr}
	return &lora.Frame{
		Type:    lora.FrameData,
		DevEUI:  d.prov.DevEUI,
		Counter: exchange,
		Payload: payload.Encode(),
	}, nil
}
