package device

import (
	"crypto/rand"
	"errors"
	"sync"
	"testing"

	"bcwan/internal/bccrypto"
	"bcwan/internal/lora"
)

var (
	keyOnce  sync.Once
	nodeKey  *bccrypto.RSA512PrivateKey
	ephemKey *bccrypto.RSA512PrivateKey
)

func testProv(t testing.TB) Provisioning {
	t.Helper()
	keyOnce.Do(func() {
		var err error
		if nodeKey, err = bccrypto.GenerateRSA512(rand.Reader); err != nil {
			panic(err)
		}
		if ephemKey, err = bccrypto.GenerateRSA512(rand.Reader); err != nil {
			panic(err)
		}
	})
	key := make([]byte, bccrypto.AESKeySize)
	for i := range key {
		key[i] = byte(i * 3)
	}
	return Provisioning{
		DevEUI:        lora.DevEUI{1, 2, 3, 4, 5, 6, 7, 8},
		SharedKey:     key,
		SigningKey:    nodeKey,
		RecipientAddr: [20]byte{0xaa, 0xbb},
	}
}

func TestNewValidatesProvisioning(t *testing.T) {
	prov := testProv(t)
	if _, err := New(prov, rand.Reader); err != nil {
		t.Fatal(err)
	}
	bad := prov
	bad.SharedKey = []byte("short")
	if _, err := New(bad, rand.Reader); err == nil {
		t.Error("short shared key accepted")
	}
	bad = prov
	bad.SigningKey = nil
	if _, err := New(bad, rand.Reader); err == nil {
		t.Error("missing signing key accepted")
	}
}

func TestKeyRequestFrame(t *testing.T) {
	d, err := New(testProv(t), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	f1 := d.KeyRequestFrame()
	f2 := d.KeyRequestFrame()
	if f1.Type != lora.FrameKeyRequest {
		t.Fatalf("type = %d", f1.Type)
	}
	if f2.Counter <= f1.Counter {
		t.Fatal("counter not increasing")
	}
	if f1.DevEUI != d.EUI() {
		t.Fatal("EUI mismatch")
	}
}

func TestDataFrameStructure(t *testing.T) {
	prov := testProv(t)
	d, err := New(prov, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ePkBytes := bccrypto.MarshalRSA512PublicKey(ephemKey.Public())
	f, err := d.DataFrame([]byte("20.1C"), ePkBytes, 7)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != lora.FrameData {
		t.Fatalf("type = %d", f.Type)
	}
	payload, err := DecodeDataPayload(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if payload.Recipient != prov.RecipientAddr {
		t.Fatal("@R mismatch")
	}
	// Signature verifies over Em ‖ ePk with the node's public key.
	blob := append(append([]byte(nil), payload.Em...), ePkBytes...)
	if err := bccrypto.VerifyRSA512(nodeKey.Public(), blob, payload.Sig); err != nil {
		t.Fatalf("signature: %v", err)
	}
	// Full double decryption recovers the plaintext.
	frame, err := bccrypto.DecryptRSA512(ephemKey, payload.Em)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := bccrypto.DecryptFrame(prov.SharedKey, frame)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "20.1C" {
		t.Fatalf("plaintext = %q", pt)
	}
}

func TestDataFrameRejectsLongPlaintext(t *testing.T) {
	d, err := New(testProv(t), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ePkBytes := bccrypto.MarshalRSA512PublicKey(ephemKey.Public())
	if _, err := d.DataFrame(make([]byte, 16), ePkBytes, 1); err == nil {
		t.Fatal("16-byte plaintext accepted (would break the 34-byte frame)")
	}
}

func TestDataFrameRejectsBadEphemeralKey(t *testing.T) {
	d, err := New(testProv(t), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.DataFrame([]byte("x"), []byte("garbage"), 1); err == nil {
		t.Fatal("garbage ephemeral key accepted")
	}
}

func TestDataPayloadDecodeRejects(t *testing.T) {
	if _, err := DecodeDataPayload(make([]byte, 10)); !errors.Is(err, ErrBadDataPayload) {
		t.Fatalf("err = %v, want ErrBadDataPayload", err)
	}
	if _, err := DecodeDataPayload(make([]byte, DataPayloadLen+1)); !errors.Is(err, ErrBadDataPayload) {
		t.Fatalf("err = %v, want ErrBadDataPayload", err)
	}
}

func TestDataPayloadRoundTrip(t *testing.T) {
	p := &DataPayload{
		Em:        make([]byte, 64),
		Sig:       make([]byte, 64),
		Recipient: [20]byte{0x42},
	}
	p.Em[0] = 1
	p.Sig[63] = 2
	back, err := DecodeDataPayload(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Em[0] != 1 || back.Sig[63] != 2 || back.Recipient != p.Recipient {
		t.Fatal("round trip mismatch")
	}
}

func TestEncryptionIsRandomized(t *testing.T) {
	d, err := New(testProv(t), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ePkBytes := bccrypto.MarshalRSA512PublicKey(ephemKey.Public())
	f1, err := d.DataFrame([]byte("same"), ePkBytes, 1)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := d.DataFrame([]byte("same"), ePkBytes, 1)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := DecodeDataPayload(f1.Payload)
	p2, _ := DecodeDataPayload(f2.Payload)
	same := true
	for i := range p1.Em {
		if p1.Em[i] != p2.Em[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("identical plaintexts produced identical ciphertexts (no IV/pad randomness)")
	}
}
