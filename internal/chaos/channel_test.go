package chaos

import (
	"path/filepath"
	"testing"

	"bcwan/internal/chain"
	"bcwan/internal/channel"
)

// Channel fault scenarios: the off-chain settlement layer (DESIGN.md
// §14) must keep its bounded-loss promise through crashes. Both
// endpoints persist every state transition BEFORE it takes effect on
// the wire, so after any crash the payee can be at most one
// countersigned update ahead of the payer's acked prefix — and that
// one update delta is the worst either side can lose.

// chanPrice is the per-delivery update delta every scenario uses.
const chanPrice = 100

// openChaosChannel funds and confirms one channel between the recipient
// wallet (payer, on node rcptNode) and the gateway wallet (payee, on
// node gwNode), persisting both endpoints.
func openChaosChannel(t *testing.T, c *Cluster, rcptNode, gwNode int, payerStore, payeeStore *channel.Store,
	capacity uint64, refundWindow int64, miners []int) (*channel.Payer, *channel.Payee, *chain.Tx) {
	t.Helper()
	payer, funding, err := channel.OpenPayer(c.RecipientWallet, c.Node(rcptNode).Ledger(), payerStore,
		c.GatewayWallet.PublicBytes(), capacity, 1, 1, refundWindow, "")
	if err != nil {
		t.Fatalf("open payer: %v", err)
	}
	// The funding must gossip to the payee's node before it can verify
	// and countersign the open.
	if err := c.WaitFor(scenarioTimeout, nil, func() bool {
		return paymentEverywhere(c, funding.ID())
	}); err != nil {
		t.Fatalf("funding propagation: %v", err)
	}
	payee, err := channel.AcceptPayee(c.GatewayWallet, c.Node(gwNode).Ledger(), payeeStore,
		funding, payer.State().Params, "")
	if err != nil {
		t.Fatalf("accept payee: %v", err)
	}
	if err := c.WaitFor(scenarioTimeout, miners, func() bool {
		_, _, ok := c.Node(gwNode).Chain().FindTx(funding.ID())
		return ok
	}); err != nil {
		t.Fatalf("funding confirmation: %v", err)
	}
	return payer, payee, funding
}

// streamUpdate runs one full off-chain settlement round trip.
func streamUpdate(t *testing.T, payer *channel.Payer, payee *channel.Payee) {
	t.Helper()
	u, err := payer.SignUpdate(chanPrice)
	if err != nil {
		t.Fatalf("sign update: %v", err)
	}
	gwSig, err := payee.ApplyUpdate(u)
	if err != nil {
		t.Fatalf("apply update: %v", err)
	}
	if err := payer.NoteAck(u.Version, gwSig); err != nil {
		t.Fatalf("note ack: %v", err)
	}
}

// reloadState finds the persisted state of one channel in a store.
func reloadState(t *testing.T, store *channel.Store, id chain.Hash) *channel.State {
	t.Helper()
	states, err := store.Load()
	if err != nil {
		t.Fatalf("load store: %v", err)
	}
	for _, st := range states {
		if st.ID == id {
			return st
		}
	}
	t.Fatalf("channel %s not in store after restart", id)
	return nil
}

func TestChannelFaultScenarios(t *testing.T) {
	t.Run("crash-mid-update", testChannelCrashMidUpdate)
	t.Run("abandoned-refund", testChannelAbandonedRefund)
}

// testChannelCrashMidUpdate crashes BOTH endpoints at the worst moment:
// the payee has countersigned and persisted update v4, but the ack (and
// the disclosed key) never reached the payer. After restart the
// divergence is exactly one update delta, and the payee's unilateral
// close settles its latest commitment on-chain.
func testChannelCrashMidUpdate(t *testing.T) {
	seed, src := effectiveSeed(1111)
	t.Logf("scenario %q seed %d (%s); replay: CHAOS_SEED=%d go test -run 'TestChannelFaultScenarios/crash-mid-update' ./internal/chaos",
		"crash-mid-update", seed, src, seed)
	c, err := NewCluster(Options{Seed: seed, Nodes: 3, Miners: []int{0}, Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	defer c.Close()
	miners := []int{0}
	if err := c.WaitFor(scenarioTimeout, miners, func() bool { return allHeightsAtLeast(c, 1) }); err != nil {
		t.Fatalf("maturing genesis: %v", err)
	}

	// Channel stores survive the crash on disk, like the chain stores.
	dir := t.TempDir()
	payerStore, err := channel.OpenStore(filepath.Join(dir, "payer"))
	if err != nil {
		t.Fatal(err)
	}
	payeeStore, err := channel.OpenStore(filepath.Join(dir, "payee"))
	if err != nil {
		t.Fatal(err)
	}
	const capacity = 10_000
	payer, payee, funding := openChaosChannel(t, c, 2, 1, payerStore, payeeStore, capacity, 50, miners)

	// Three fully settled deliveries…
	for i := 0; i < 3; i++ {
		streamUpdate(t, payer, payee)
	}
	// …then v4 reaches the payee, both sides persist, and the federation
	// dies before the ack comes back.
	u, err := payer.SignUpdate(chanPrice)
	if err != nil {
		t.Fatalf("sign v4: %v", err)
	}
	if _, err := payee.ApplyUpdate(u); err != nil {
		t.Fatalf("apply v4: %v", err)
	}
	if err := c.Crash(1); err != nil {
		t.Fatalf("crash n1: %v", err)
	}
	if err := c.Crash(2); err != nil {
		t.Fatalf("crash n2: %v", err)
	}
	if _, err := c.Restart(1); err != nil {
		t.Fatalf("restart n1: %v", err)
	}
	if _, err := c.Restart(2); err != nil {
		t.Fatalf("restart n2: %v", err)
	}

	// Rebuild both endpoints from their persisted states.
	payer2, err := channel.LoadPayer(reloadState(t, payerStore, funding.ID()), c.RecipientWallet,
		c.Node(2).Ledger(), payerStore)
	if err != nil {
		t.Fatalf("reload payer: %v", err)
	}
	payee2, err := channel.LoadPayee(reloadState(t, payeeStore, funding.ID()), c.GatewayWallet,
		c.Node(1).Ledger(), payeeStore)
	if err != nil {
		t.Fatalf("reload payee: %v", err)
	}

	// Bounded loss: the divergence is exactly the one in-flight delta.
	payerSt, payeeSt := payer2.State(), payee2.State()
	if err := CheckChannelLossBound(payerSt, payeeSt, chanPrice); err != nil {
		t.Fatalf("loss bound violated: %v", err)
	}
	if gap := payeeSt.Paid - payerSt.AckedPaid; gap != chanPrice {
		t.Errorf("in-flight delta = %d, want exactly %d", gap, chanPrice)
	}
	if payeeSt.Version != 4 || payerSt.AckedVersion != 3 {
		t.Errorf("versions payee %d / payer acked %d, want 4 / 3", payeeSt.Version, payerSt.AckedVersion)
	}

	// Unilateral close: the payee broadcasts its latest commitment and
	// the chain records the v4 balance split.
	closeTx, err := payee2.Close()
	if err != nil {
		t.Fatalf("unilateral close: %v", err)
	}
	op := chain.OutPoint{TxID: funding.ID(), Index: 0}
	if err := c.WaitFor(scenarioTimeout, miners, func() bool {
		spender, _, ok := c.Node(0).Chain().FindSpender(op)
		return ok && spender.ID() == closeTx.ID()
	}); err != nil {
		t.Fatalf("close confirmation: %v", err)
	}
	if got := closeTx.Outputs[0].Value; got != payeeSt.Paid {
		t.Errorf("close pays gateway %d, want the payee balance %d", got, payeeSt.Paid)
	}
	if got, want := closeTx.Outputs[1].Value, capacity-payeeSt.Paid-payeeSt.CloseFee; got != want {
		t.Errorf("close change = %d, want %d", got, want)
	}
	if got := c.GatewayWallet.Balance(c.Node(0).Ledger().UTXO()); got != payeeSt.Paid {
		t.Errorf("gateway wallet holds %d on-chain, want %d", got, payeeSt.Paid)
	}

	if err := c.WaitFor(scenarioTimeout, miners, func() bool { return c.Converged() }); err != nil {
		t.Fatalf("final convergence: %v", err)
	}
	if err := CheckInvariants(c, nil); err != nil {
		t.Fatalf("invariants violated: %v", err)
	}
}

// testChannelAbandonedRefund kills the gateway for good mid-channel: the
// payee never closes, so once the CLTV window passes the payer reclaims
// the whole capacity through the refund path.
func testChannelAbandonedRefund(t *testing.T) {
	seed, src := effectiveSeed(2222)
	t.Logf("scenario %q seed %d (%s); replay: CHAOS_SEED=%d go test -run 'TestChannelFaultScenarios/abandoned-refund' ./internal/chaos",
		"abandoned-refund", seed, src, seed)
	c, err := NewCluster(Options{Seed: seed, Nodes: 3, Miners: []int{0}, Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	defer c.Close()
	miners := []int{0}
	if err := c.WaitFor(scenarioTimeout, miners, func() bool { return allHeightsAtLeast(c, 1) }); err != nil {
		t.Fatalf("maturing genesis: %v", err)
	}

	dir := t.TempDir()
	payerStore, err := channel.OpenStore(filepath.Join(dir, "payer"))
	if err != nil {
		t.Fatal(err)
	}
	payeeStore, err := channel.OpenStore(filepath.Join(dir, "payee"))
	if err != nil {
		t.Fatal(err)
	}
	payer, payee, funding := openChaosChannel(t, c, 2, 1, payerStore, payeeStore, 5_000, 8, miners)

	// One settled delivery, then the gateway dies and never closes —
	// forfeiting its countersigned balance to the refund.
	streamUpdate(t, payer, payee)
	if err := c.Crash(1); err != nil {
		t.Fatalf("crash n1: %v", err)
	}

	refundHeight := payer.State().RefundHeight
	if err := c.WaitFor(scenarioTimeout, miners, func() bool {
		return c.Node(2).Chain().Height() >= refundHeight
	}); err != nil {
		t.Fatalf("waiting out the CLTV window: %v", err)
	}
	var refundTx *chain.Tx
	if err := c.WaitFor(scenarioTimeout, miners, func() bool {
		tx, err := payer.Refund(1)
		if err != nil {
			return false
		}
		refundTx = tx
		return true
	}); err != nil {
		t.Fatalf("refund: %v", err)
	}
	op := chain.OutPoint{TxID: funding.ID(), Index: 0}
	if err := c.WaitFor(scenarioTimeout, miners, func() bool {
		spender, _, ok := c.Node(0).Chain().FindSpender(op)
		return ok && spender.ID() == refundTx.ID()
	}); err != nil {
		t.Fatalf("refund confirmation: %v", err)
	}
	// The payer is whole again minus the two anchor fees (funding and
	// refund); the unsettled off-chain balance never left its pocket.
	want := c.Opts.FundRecipient - 2
	if got := c.RecipientWallet.Balance(c.Node(0).Ledger().UTXO()); got != want {
		t.Errorf("payer wallet holds %d after refund, want %d", got, want)
	}

	// The dead gateway rejoins and converges onto the refunded history.
	if _, err := c.Restart(1); err != nil {
		t.Fatalf("restart n1: %v", err)
	}
	if err := c.WaitFor(scenarioTimeout, miners, func() bool { return c.Converged() }); err != nil {
		t.Fatalf("final convergence: %v", err)
	}
	if err := CheckInvariants(c, nil); err != nil {
		t.Fatalf("invariants violated: %v", err)
	}
}
