package chaos

import (
	"bytes"
	"errors"
	"fmt"
	mrand "math/rand"
	"path/filepath"
	"testing"
	"time"

	"bcwan/internal/chain"
	"bcwan/internal/channel"
	"bcwan/internal/daemon"
	"bcwan/internal/fairex"
	"bcwan/internal/gateway"
	"bcwan/internal/lora"
	"bcwan/internal/recipient"
	"bcwan/internal/registry"
	"bcwan/internal/reputation"
	"bcwan/internal/script"
)

// The Byzantine chaos campaign: adversarial gateways play every
// profitable deviation — withholding keys on-chain and off-chain,
// double-selling old deliveries, eclipsing a victim's peer slots,
// mining a withheld private branch, hijacking a directory binding —
// against the reputation-weighted admission defense. Every scenario
// checks the two adversarial invariants (bounded loss per victim,
// eventual ejection) on top of the chain safety invariants.

// byzPrice is the per-delivery price every Byzantine scenario uses.
const byzPrice = 100

// byzK bounds how many exchanges an adversary may keep earning after
// its first proven loss before the victim refuses it.
const byzK = 3

// byzEnv is the shared per-scenario state.
type byzEnv struct {
	c      *Cluster
	rep    *reputation.System
	rcpt   *recipient.Recipient
	sensor *Sensor
	byz    *Byzantine
	log    *ByzantineLog
	miners []int
	fatalf func(string, ...any)
	// advID is the adversary gateway's reputation identity.
	advID string
}

// nodeCounterSum sums every series of one metric name on one node
// (labeled counters surface one snapshot row per label set).
func nodeCounterSum(c *Cluster, node int, name string) float64 {
	total := 0.0
	for _, m := range c.Node(node).Telemetry().Snapshot() {
		if m.Name == name {
			total += m.Value
		}
	}
	return total
}

// newByzEnv builds a cluster with a reputation-armed recipient on
// recipientNode and a Byzantine gateway on byzNode, matures the genesis
// allocation and publishes + confirms the recipient's binding.
func newByzEnv(t *testing.T, name string, seed int64, opts Options, byzNode, recipientNode int) *byzEnv {
	t.Helper()
	fatalf := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("[replay: CHAOS_SEED=%d] scenario %q: %s", seed, name, fmt.Sprintf(format, args...))
	}
	opts.Seed = seed
	opts.Dir = t.TempDir()
	c, err := NewCluster(opts)
	if err != nil {
		fatalf("cluster: %v", err)
	}
	t.Cleanup(c.Close)

	env := &byzEnv{
		c:      c,
		rep:    reputation.New(reputation.DefaultConfig()),
		log:    &ByzantineLog{},
		miners: opts.Miners[:1],
		fatalf: fatalf,
	}
	env.rep.Instrument(c.Reg)
	env.rcpt = c.Recipient(recipientNode, recipient.Config{
		MaxPrice: byzPrice, RefundWindow: 5, PaymentFee: 1, RefundFee: 1,
	})
	env.rcpt.UseReputation(env.rep)
	env.byz = c.Byzantine(byzNode, gateway.Config{
		Price: byzPrice, RefundWindow: 5, WaitConfirmations: 0, ClaimFee: 1,
	})
	env.advID = reputation.IDFromHash(c.AdversaryWallet.PubKeyHash())
	env.sensor, err = c.NewSensor(lora.DevEUI{0xBE, 1, 2, 3, 4, 5, 6, 7}, env.rcpt)
	if err != nil {
		fatalf("sensor: %v", err)
	}

	if err := c.WaitFor(scenarioTimeout, env.miners, func() bool {
		return allHeightsAtLeast(c, 1)
	}); err != nil {
		fatalf("maturing genesis: %v", err)
	}
	if _, err := c.PublishBinding(recipientNode, "recipient.byz:0"); err != nil {
		fatalf("binding: %v", err)
	}
	rcptHash := c.RecipientWallet.PubKeyHash()
	dir := c.Node(byzNode).Directory()
	if err := c.WaitFor(scenarioTimeout, env.miners, func() bool {
		_, err := dir.Lookup(rcptHash)
		return err == nil
	}); err != nil {
		fatalf("binding propagation: %v", err)
	}
	if err := c.WaitFor(scenarioTimeout, nil, func() bool { return c.Converged() }); err != nil {
		fatalf("pre-attack convergence: %v", err)
	}
	return env
}

// byzDelivery plays the sensor-facing half of one exchange through the
// adversary and returns its (honestly signed) delivery offer.
func (env *byzEnv) byzDelivery(t *testing.T, plaintext []byte) (*fairex.Delivery, int64) {
	t.Helper()
	resp, err := env.byz.HandleKeyRequest(env.sensor.Dev.KeyRequestFrame())
	if err != nil {
		env.fatalf("key request: %v", err)
	}
	frame, err := env.sensor.Dev.DataFrame(plaintext, resp.Payload, resp.Counter)
	if err != nil {
		env.fatalf("data frame: %v", err)
	}
	offerHeight := env.c.Node(env.byz.node).Chain().Height()
	d, _, err := env.byz.HandleData(frame)
	if err != nil {
		env.fatalf("handle data: %v", err)
	}
	return d, offerHeight
}

// checkByz runs the adversarial invariants plus the chain safety
// invariants, as every Byzantine scenario must.
func (env *byzEnv) checkByz(t *testing.T, maxLoss uint64, exchanges []*Exchange) {
	t.Helper()
	if err := CheckByzantineInvariants(env.log, env.rep, maxLoss, byzK); err != nil {
		env.fatalf("byzantine invariants violated: %v", err)
	}
	if err := env.c.WaitFor(scenarioTimeout, env.miners, func() bool { return env.c.Converged() }); err != nil {
		env.fatalf("final convergence: %v", err)
	}
	if err := CheckInvariants(env.c, exchanges); err != nil {
		env.fatalf("invariants violated: %v", err)
	}
}

func TestByzantineScenarios(t *testing.T) {
	scenarios := []struct {
		name string
		seed int64
		run  func(t *testing.T, name string, seed int64)
	}{
		{"withhold-key-onchain", 7001, byzWithholdOnChain},
		{"withhold-key-channel", 7002, byzWithholdChannel},
		{"replay-double-deliver", 7003, byzReplay},
		{"eclipse-ban-recover", 7004, byzEclipse},
		{"private-mine-release", 7005, byzPrivateMine},
		{"equivocator-campaign", 7006, byzEquivocatorCampaign},
		{"forged-binding-hijack", 7007, byzForgedBinding},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			seed, src := effectiveSeed(sc.seed)
			t.Logf("scenario %q seed %d (%s); replay: CHAOS_SEED=%d go test -run 'TestByzantineScenarios/%s' ./internal/chaos",
				sc.name, seed, src, seed, sc.name)
			sc.run(t, sc.name, seed)
		})
	}
}

// byzWithholdOnChain: the adversary sells a delivery, takes the on-chain
// payment hostage and never discloses the key. The Listing 1 OP_ELSE
// refund makes the victim whole (lost = 0), the non-disclosure report
// ejects the adversary, and its next delivery is refused up front.
func byzWithholdOnChain(t *testing.T, name string, seed int64) {
	env := newByzEnv(t, name, seed,
		Options{Nodes: 3, Miners: []int{0}}, 1, 2)
	c := env.c

	d1, _ := env.byzDelivery(t, []byte("reading-1"))
	payment, err := env.rcpt.HandleDelivery(d1)
	if err != nil {
		env.fatalf("victim pays a still-trusted adversary: %v", err)
	}
	env.byz.WithholdClaim()
	env.log.Record(ExchangeAttempt{Gateway: env.advID, Paid: byzPrice, Lost: 0})
	ex := &Exchange{
		Delivery: d1, Payment: payment, SharedKey: env.sensor.SharedKey,
		Plaintext: []byte("reading-1"), BuyerPubKeyHash: c.RecipientWallet.PubKeyHash(),
	}
	if err := c.WaitFor(scenarioTimeout, env.miners, func() bool {
		return paymentEverywhere(c, payment.ID())
	}); err != nil {
		env.fatalf("payment propagation: %v", err)
	}

	// The key never comes; once the CLTV window passes the victim
	// reclaims and the refund reports the withholding.
	params, err := script.ParseKeyRelease(payment.Outputs[0].Lock)
	if err != nil {
		env.fatalf("parse payment lock: %v", err)
	}
	if err := c.WaitFor(scenarioTimeout, env.miners, func() bool {
		return c.Node(2).Chain().Height() >= params.RefundHeight
	}); err != nil {
		env.fatalf("waiting out refund window: %v", err)
	}
	if err := c.WaitFor(scenarioTimeout, env.miners, func() bool {
		_, err := env.rcpt.Refund(payment.ID())
		return err == nil
	}); err != nil {
		env.fatalf("refund: %v", err)
	}
	op := chain.OutPoint{TxID: payment.ID(), Index: 0}
	if err := c.WaitFor(scenarioTimeout, env.miners, func() bool {
		_, _, ok := c.Node(2).Chain().FindSpender(op)
		return ok
	}); err != nil {
		env.fatalf("refund confirmation: %v", err)
	}

	if env.rep.Trusted(env.advID) {
		env.fatalf("adversary still trusted after withholding (score %.2f)", env.rep.Score(env.advID))
	}
	// The second sale attempt dies at admission: no payment is built.
	d2, _ := env.byzDelivery(t, []byte("reading-2"))
	if _, err := env.rcpt.HandleDelivery(d2); !errors.Is(err, recipient.ErrUntrustedGateway) {
		env.fatalf("second delivery: err = %v, want ErrUntrustedGateway", err)
	}
	env.log.Record(ExchangeAttempt{Gateway: env.advID, Refused: true})

	if got := ByzantineAttacks(c, "withhold-key"); got != 1 {
		env.fatalf("withhold-key attacks = %d, want 1", got)
	}
	if got := env.rcpt.Stats.RefusedUntrusted; got != 1 {
		env.fatalf("RefusedUntrusted = %d, want 1", got)
	}
	env.checkByz(t, 0, []*Exchange{ex})
}

// byzWithholdChannel: the adversary countersigns a channel update (so
// the delta is irrevocably committed) and discloses junk instead of the
// key. There is no refund script off-chain: the victim loses exactly
// one delta, reports the non-disclosure, and refuses the adversary
// thereafter — the bounded-loss invariant at its tightest.
func byzWithholdChannel(t *testing.T, name string, seed int64) {
	env := newByzEnv(t, name, seed,
		Options{Nodes: 3, Miners: []int{0}}, 1, 2)
	c := env.c

	dir := t.TempDir()
	payerStore, err := channel.OpenStore(filepath.Join(dir, "payer"))
	if err != nil {
		env.fatalf("payer store: %v", err)
	}
	payeeStore, err := channel.OpenStore(filepath.Join(dir, "payee"))
	if err != nil {
		env.fatalf("payee store: %v", err)
	}
	payer, funding, err := channel.OpenPayer(c.RecipientWallet, c.Node(2).Ledger(), payerStore,
		c.AdversaryWallet.PublicBytes(), 10_000, 1, 1, 50, "")
	if err != nil {
		env.fatalf("open payer: %v", err)
	}
	if err := c.WaitFor(scenarioTimeout, nil, func() bool {
		return paymentEverywhere(c, funding.ID())
	}); err != nil {
		env.fatalf("funding propagation: %v", err)
	}
	payee, err := channel.AcceptPayee(c.AdversaryWallet, c.Node(1).Ledger(), payeeStore,
		funding, payer.State().Params, "")
	if err != nil {
		env.fatalf("accept payee: %v", err)
	}
	if err := c.WaitFor(scenarioTimeout, env.miners, func() bool {
		_, _, ok := c.Node(1).Chain().FindTx(funding.ID())
		return ok
	}); err != nil {
		env.fatalf("funding confirmation: %v", err)
	}

	d1, _ := env.byzDelivery(t, []byte("reading-1"))
	if err := env.rcpt.AcceptDeliveryOffChain(d1); err != nil {
		env.fatalf("accept off-chain: %v", err)
	}
	u, err := payer.SignUpdate(byzPrice)
	if err != nil {
		env.fatalf("sign update: %v", err)
	}
	if _, err := payee.ApplyUpdate(u); err != nil {
		env.fatalf("adversary countersign: %v", err)
	}
	// The adversary holds the countersigned delta; the disclosed key is
	// junk, so settlement fails and the victim does NOT ack.
	if _, err := env.rcpt.SettleOffChain(d1.DevEUI, d1.Exchange, env.byz.BadChannelKey()); !errors.Is(err, fairex.ErrBadDisclosedKey) {
		env.fatalf("settle with junk key: err = %v, want ErrBadDisclosedKey", err)
	}
	env.rcpt.DropOffChain(d1.DevEUI, d1.Exchange)
	env.rcpt.ReportNonDisclosure(d1.GatewayPubKeyHash, byzPrice)
	env.log.Record(ExchangeAttempt{Gateway: env.advID, Paid: byzPrice, Lost: byzPrice})

	// The one in-flight delta is the whole exposure.
	if err := CheckChannelLossBound(payer.State(), payee.State(), byzPrice); err != nil {
		env.fatalf("channel loss bound: %v", err)
	}
	if env.rep.Trusted(env.advID) {
		env.fatalf("adversary still trusted after channel non-disclosure")
	}
	d2, _ := env.byzDelivery(t, []byte("reading-2"))
	if err := env.rcpt.AcceptDeliveryOffChain(d2); !errors.Is(err, recipient.ErrUntrustedGateway) {
		env.fatalf("second off-chain delivery: err = %v, want ErrUntrustedGateway", err)
	}
	env.log.Record(ExchangeAttempt{Gateway: env.advID, Refused: true})

	if got := ByzantineAttacks(c, "bad-channel-key"); got != 1 {
		env.fatalf("bad-channel-key attacks = %d, want 1", got)
	}
	if got := env.rep.Snapshot().PaymentsLost; got != byzPrice {
		env.fatalf("PaymentsLost = %d, want exactly one delta %d", got, byzPrice)
	}
	env.checkByz(t, byzPrice, nil)
}

// byzReplay: the adversary completes one honest exchange (banking the
// capped credit), then tries to sell the same delivery again. The
// victim's settled-digest ring catches the replay before any payment is
// built, the report ejects the adversary, and fresh deliveries are
// refused too.
func byzReplay(t *testing.T, name string, seed int64) {
	env := newByzEnv(t, name, seed,
		Options{Nodes: 3, Miners: []int{0}}, 1, 2)
	c := env.c

	plaintext := []byte("reading-1")
	d1, offerHeight := env.byzDelivery(t, plaintext)
	payment, err := env.rcpt.HandleDelivery(d1)
	if err != nil {
		env.fatalf("first delivery: %v", err)
	}
	if err := c.WaitFor(scenarioTimeout, nil, func() bool {
		return paymentEverywhere(c, payment.ID())
	}); err != nil {
		env.fatalf("payment propagation: %v", err)
	}
	// The adversary claims honestly this once — valid offers and claims
	// are exactly what lets it build credit to burn later.
	if err := c.WaitFor(scenarioTimeout, env.miners, func() bool {
		_, err := env.byz.Gateway.VerifyAndClaim(d1.DevEUI, d1.Exchange, payment.ID(), offerHeight)
		return err == nil
	}); err != nil {
		env.fatalf("claim: %v", err)
	}
	var msg *recipient.Message
	if err := c.WaitFor(scenarioTimeout, env.miners, func() bool {
		m, err := env.rcpt.SettleClaim(payment.ID())
		if err != nil {
			return false
		}
		msg = m
		return true
	}); err != nil {
		env.fatalf("settle: %v", err)
	}
	if !bytes.Equal(msg.Plaintext, plaintext) {
		env.fatalf("settled plaintext %q, want %q", msg.Plaintext, plaintext)
	}
	env.log.Record(ExchangeAttempt{Gateway: env.advID, Paid: byzPrice, Delivered: true})
	ex := &Exchange{
		Delivery: d1, Payment: payment, SharedKey: env.sensor.SharedKey,
		Plaintext: plaintext, BuyerPubKeyHash: c.RecipientWallet.PubKeyHash(),
	}
	if !env.rep.Trusted(env.advID) {
		env.fatalf("adversary lost trust on an honest exchange")
	}

	// Double-sell: same ciphertext, same (still valid) signature.
	replayed := env.byz.ReplayDelivery(d1)
	if _, err := env.rcpt.HandleDelivery(replayed); !errors.Is(err, recipient.ErrReplayedDelivery) {
		env.fatalf("replay: err = %v, want ErrReplayedDelivery", err)
	}
	env.log.Record(ExchangeAttempt{Gateway: env.advID, Refused: true})
	// One replay from the capped credit crosses the threshold: the
	// MaxScore cap is what keeps banked honesty from financing fraud.
	if env.rep.Trusted(env.advID) {
		env.fatalf("adversary still trusted after replay (score %.2f)", env.rep.Score(env.advID))
	}
	d3, _ := env.byzDelivery(t, []byte("reading-3"))
	if _, err := env.rcpt.HandleDelivery(d3); !errors.Is(err, recipient.ErrUntrustedGateway) {
		env.fatalf("post-replay delivery: err = %v, want ErrUntrustedGateway", err)
	}
	env.log.Record(ExchangeAttempt{Gateway: env.advID, Refused: true})

	if env.rcpt.Stats.ReplaysDetected != 1 || env.rcpt.Stats.RefusedUntrusted != 1 {
		env.fatalf("stats = %+v, want 1 replay + 1 untrusted refusal", env.rcpt.Stats)
	}
	if got := env.rep.Snapshot().Replays; got != 1 {
		env.fatalf("reputation replays = %d, want 1", got)
	}
	if got := ByzantineAttacks(c, "replay"); got != 1 {
		env.fatalf("replay attacks = %d, want 1", got)
	}
	env.checkByz(t, 0, []*Exchange{ex})
}

// byzEclipse: the victim node has two peer slots and no auto-dial; the
// adversary occupies both with filtering identities, starving it of
// blocks. Misbehavior scoring bans the squatters (their spam is
// undecodable), freeing the slots, and the victim resyncs with honest
// peers. This attack is purely p2p-level, so the environment is just a
// cluster and the adversary — no exchange actors.
func byzEclipse(t *testing.T, name string, seed int64) {
	const victim = 2
	fatalf := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("[replay: CHAOS_SEED=%d] scenario %q: %s", seed, name, fmt.Sprintf(format, args...))
	}
	c, err := NewCluster(Options{
		Seed: seed, Dir: t.TempDir(),
		Nodes: 3, Miners: []int{0},
		NoDial: []int{victim},
		NodeTweak: func(i int, cfg *daemon.NodeConfig) {
			if i == victim {
				cfg.MaxPeers = 2
			}
		},
	})
	if err != nil {
		fatalf("cluster: %v", err)
	}
	t.Cleanup(c.Close)
	env := &byzEnv{c: c, rep: reputation.New(reputation.DefaultConfig()),
		log: &ByzantineLog{}, miners: []int{0}, fatalf: fatalf}
	env.byz = c.Byzantine(1, gateway.Config{Price: byzPrice, RefundWindow: 5, ClaimFee: 1})
	// The honest partition (n0 ↔ n1) makes progress; the victim cannot
	// see it yet.
	if err := c.WaitFor(scenarioTimeout, env.miners, func() bool {
		return c.Node(0).Chain().Height() >= 1 && c.Node(1).Chain().Height() >= 1
	}); err != nil {
		fatalf("maturing genesis: %v", err)
	}

	connA, err := env.byz.Occupy(nodeName(victim), "byz-a")
	if err != nil {
		env.fatalf("occupy slot a: %v", err)
	}
	connB, err := env.byz.Occupy(nodeName(victim), "byz-b")
	if err != nil {
		env.fatalf("occupy slot b: %v", err)
	}
	gossip := c.Node(victim).Gossip()
	deadline := time.Now().Add(scenarioTimeout)
	for len(gossip.Peers()) < 2 {
		if time.Now().After(deadline) {
			env.fatalf("adversary never filled the victim's slots: peers %v", gossip.Peers())
		}
		time.Sleep(time.Millisecond)
	}

	// An honest node dialing in is refused — the slots are taken.
	if err := c.Node(0).Connect(nodeName(victim)); err != nil {
		env.fatalf("honest dial: %v", err)
	}
	eclipsedAt := c.Node(victim).Chain().Height()
	for i := 0; i < 5; i++ {
		c.PumpRound(0)
	}
	if got := c.Node(victim).Chain().Height(); got != eclipsedAt {
		env.fatalf("eclipsed victim still advanced %d → %d", eclipsedAt, got)
	}
	if c.Node(0).Chain().Height() <= eclipsedAt {
		env.fatalf("honest chain did not outgrow the eclipsed victim")
	}

	// The squatters overplay their hand: undecodable traffic charges
	// misbehavior points until both are banned and disconnected.
	env.byz.Spam(connA, "byz-a", "tx", 12)
	env.byz.Spam(connB, "byz-b", "tx", 12)
	deadline = time.Now().Add(scenarioTimeout)
	for !(gossip.Banned("byz-a") && gossip.Banned("byz-b")) {
		if time.Now().After(deadline) {
			env.fatalf("squatters never banned: scores a=%d b=%d",
				gossip.BanScore("byz-a"), gossip.BanScore("byz-b"))
		}
		time.Sleep(time.Millisecond)
	}
	// A banned identity cannot re-occupy the freed slot.
	if _, err := env.byz.Occupy(nodeName(victim), "byz-a"); err == nil {
		deadline = time.Now().Add(time.Second)
		for time.Now().Before(deadline) {
			for _, p := range gossip.Peers() {
				if p == "byz-a" {
					env.fatalf("banned identity re-registered")
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Recovery: the freed slots go to honest peers and the victim
	// catches up.
	if err := c.Node(victim).Connect(nodeName(0)); err != nil {
		env.fatalf("reconnect n0: %v", err)
	}
	if err := c.Node(victim).Connect(nodeName(1)); err != nil {
		env.fatalf("reconnect n1: %v", err)
	}
	c.Node(victim).RequestSync()
	if err := c.WaitFor(scenarioTimeout, env.miners, func() bool { return c.Converged() }); err != nil {
		env.fatalf("post-recovery convergence: %v", err)
	}
	if got := nodeCounterSum(c, victim, "bcwan_p2p_bans_total"); got < 2 {
		env.fatalf("victim bans = %v, want ≥ 2", got)
	}
	if got := nodeCounterSum(c, victim, "bcwan_p2p_connections_refused_total"); got < 1 {
		env.fatalf("victim refused %v connections, want ≥ 1", got)
	}
	if got := ByzantineAttacks(c, "eclipse-occupy"); got < 2 {
		env.fatalf("eclipse-occupy attacks = %d, want ≥ 2", got)
	}
	env.checkByz(t, 0, nil)
}

// byzPrivateMine: an honest exchange settles, then the adversary's
// miner node partitions itself off, mines a longer private branch and
// springs it on the cluster. The honest side reorganizes — but the
// settled exchange sits below the fork point, so the claim survives on
// both branches and every safety invariant holds through the release.
func byzPrivateMine(t *testing.T, name string, seed int64) {
	const advNode = 3
	env := newByzEnv(t, name, seed,
		Options{Nodes: 4, Miners: []int{0, advNode}}, advNode, 2)
	c := env.c

	// A fully honest exchange through an honest gateway, settled and
	// converged BEFORE the attack: the fork point is above it.
	gw := c.Gateway(1, gateway.Config{Price: byzPrice, RefundWindow: 5, WaitConfirmations: 0, ClaimFee: 1})
	resp, err := gw.HandleKeyRequest(env.sensor.Dev.KeyRequestFrame())
	if err != nil {
		env.fatalf("key request: %v", err)
	}
	plaintext := []byte("reading-1")
	frame, err := env.sensor.Dev.DataFrame(plaintext, resp.Payload, resp.Counter)
	if err != nil {
		env.fatalf("data frame: %v", err)
	}
	offerHeight := c.Node(1).Chain().Height()
	d, _, err := gw.HandleData(frame)
	if err != nil {
		env.fatalf("handle data: %v", err)
	}
	payment, err := env.rcpt.HandleDelivery(d)
	if err != nil {
		env.fatalf("handle delivery: %v", err)
	}
	if err := c.WaitFor(scenarioTimeout, nil, func() bool {
		return paymentEverywhere(c, payment.ID())
	}); err != nil {
		env.fatalf("payment propagation: %v", err)
	}
	if err := c.WaitFor(scenarioTimeout, env.miners, func() bool {
		_, err := gw.VerifyAndClaim(d.DevEUI, d.Exchange, payment.ID(), offerHeight)
		return err == nil
	}); err != nil {
		env.fatalf("claim: %v", err)
	}
	if err := c.WaitFor(scenarioTimeout, env.miners, func() bool {
		_, err := env.rcpt.SettleClaim(payment.ID())
		return err == nil
	}); err != nil {
		env.fatalf("settle: %v", err)
	}
	ex := &Exchange{
		Delivery: d, Payment: payment, SharedKey: env.sensor.SharedKey,
		Plaintext: plaintext, BuyerPubKeyHash: c.RecipientWallet.PubKeyHash(),
	}
	if err := c.WaitFor(scenarioTimeout, env.miners, func() bool { return c.Converged() }); err != nil {
		env.fatalf("pre-attack convergence: %v", err)
	}
	forkHeight := c.Node(0).Chain().Height()

	// Selfish mining: three withheld blocks against one honest block.
	env.byz.StartPrivateMine()
	for i := 0; i < 3; i++ {
		c.PumpRound(advNode)
	}
	c.PumpRound(0)
	if got := c.Node(advNode).Chain().Height(); got != forkHeight+3 {
		env.fatalf("private branch at %d, want %d", got, forkHeight+3)
	}
	if got := c.Node(0).Chain().Height(); got != forkHeight+1 {
		env.fatalf("honest branch at %d, want %d", got, forkHeight+1)
	}
	env.byz.ReleasePrivateChain()
	if err := c.WaitFor(scenarioTimeout, nil, func() bool {
		return c.Converged() && c.Node(0).Chain().Height() >= forkHeight+3
	}); err != nil {
		env.fatalf("post-release convergence: %v", err)
	}

	reorgs := nodeCounterSum(c, 0, "bcwan_chain_reorgs_total") +
		nodeCounterSum(c, 1, "bcwan_chain_reorgs_total") +
		nodeCounterSum(c, 2, "bcwan_chain_reorgs_total")
	if reorgs == 0 {
		env.fatalf("released private chain caused no reorg on the honest side")
	}
	if _, _, ok := c.Node(0).Chain().FindTx(payment.ID()); !ok {
		env.fatalf("settled payment lost in the reorg")
	}
	if got := ByzantineAttacks(c, "private-mine"); got != 1 {
		env.fatalf("private-mine attacks = %d, want 1", got)
	}
	env.checkByz(t, 0, []*Exchange{ex})
}

// byzEquivocatorCampaign: the pay-first (§4.4) model under a seeded
// campaign. The adversary banks maximal credit with honest deliveries,
// then turns permanently malicious; the credit cap guarantees its FIRST
// cheat ejects it, so the victim loses exactly one payment and all
// subsequent demand routes to the honest gateway.
func byzEquivocatorCampaign(t *testing.T, name string, seed int64) {
	rng := mrand.New(mrand.NewSource(seed))
	rep := reputation.New(reputation.DefaultConfig())
	log := &ByzantineLog{}
	const rounds = 20
	adv, honest := "gw-byz", "gw-honest"
	onset := 3 + rng.Intn(3) // the adversary turns malicious here

	advEarned, honestEarned := uint64(0), uint64(0)
	victimLost := uint64(0)
	for k := 0; k < rounds; k++ {
		if !rep.Trusted(adv) {
			rep.ReportRefused(adv)
			log.Record(ExchangeAttempt{Gateway: adv, Refused: true})
			// Demand reroutes to the honest gateway.
			rep.ReportDelivered(honest)
			honestEarned += byzPrice
			log.Record(ExchangeAttempt{Gateway: honest, Paid: byzPrice, Delivered: true})
			continue
		}
		if k < onset {
			rep.ReportDelivered(adv)
			advEarned += byzPrice
			log.Record(ExchangeAttempt{Gateway: adv, Paid: byzPrice, Delivered: true})
			continue
		}
		// Pay-first: the payment is gone before the cheat is known.
		rep.ReportWithheld(adv, byzPrice)
		advEarned += byzPrice
		victimLost += byzPrice
		log.Record(ExchangeAttempt{Gateway: adv, Paid: byzPrice, Lost: byzPrice})
	}

	if err := CheckByzantineInvariants(log, rep, byzPrice, byzK); err != nil {
		t.Fatalf("[replay: CHAOS_SEED=%d] scenario %q: byzantine invariants violated: %v", seed, name, err)
	}
	if victimLost != byzPrice {
		t.Fatalf("victim lost %d, want exactly one payment %d", victimLost, byzPrice)
	}
	if want := uint64(onset+1) * byzPrice; advEarned != want {
		t.Fatalf("adversary earned %d, want %d (stops earning at its first cheat)", advEarned, want)
	}
	if want := uint64(rounds-onset-1) * byzPrice; honestEarned != want {
		t.Fatalf("honest gateway earned %d, want %d (all post-ejection demand)", honestEarned, want)
	}
	if rep.Trusted(adv) || !rep.Trusted(honest) {
		t.Fatalf("trust inverted: adv %.2f honest %.2f", rep.Score(adv), rep.Score(honest))
	}
	if got := rep.Snapshot().Refused; got == 0 {
		t.Fatal("no refusal ever recorded")
	}
}

// byzForgedBinding: a funded adversary publishes a directory record
// claiming the victim's @R. The carrying transaction cannot prove
// control of @R, so every node's directory drops it and the victim's
// true binding keeps resolving. The adversary's own (legitimate)
// binding is then ignored once its reputation ejects it.
func byzForgedBinding(t *testing.T, name string, seed int64) {
	env := newByzEnv(t, name, seed,
		Options{Nodes: 3, Miners: []int{0}, FundAdversary: 10_000}, 1, 2)
	c := env.c
	victimHash := c.RecipientWallet.PubKeyHash()

	forged, err := env.byz.ForgeBinding(victimHash, "evil.adv:0", 1)
	if err != nil {
		env.fatalf("forge binding: %v", err)
	}
	if err := c.WaitFor(scenarioTimeout, env.miners, func() bool {
		for i := 0; i < c.Opts.Nodes; i++ {
			if _, _, ok := c.Node(i).Chain().FindTx(forged.ID()); !ok {
				return false
			}
		}
		return true
	}); err != nil {
		env.fatalf("forged binding confirmation: %v", err)
	}
	for i := 0; i < c.Opts.Nodes; i++ {
		dir := c.Node(i).Directory()
		b, err := dir.Lookup(victimHash)
		if err != nil || b.NetAddr != "recipient.byz:0" {
			env.fatalf("n%d: victim binding = %+v (%v), hijack got through", i, b, err)
		}
		if dir.ForgedRejected() == 0 {
			env.fatalf("n%d: forged binding was not counted as rejected", i)
		}
	}

	// The adversary CAN bind its own address — until its reputation
	// crosses the threshold, at which point its binding is ignored too.
	led := c.Node(1).Ledger()
	own, err := registry.BuildPublish(c.AdversaryWallet, led.UTXO(), "adv.gw:0", 1)
	if err != nil {
		env.fatalf("build own binding: %v", err)
	}
	if err := led.Submit(own); err != nil {
		env.fatalf("submit own binding: %v", err)
	}
	advHash := c.AdversaryWallet.PubKeyHash()
	dir := c.Node(2).Directory()
	if err := c.WaitFor(scenarioTimeout, env.miners, func() bool {
		_, err := dir.Lookup(advHash)
		return err == nil
	}); err != nil {
		env.fatalf("own binding propagation: %v", err)
	}
	before := dir.Len()
	env.rep.ReportWithheld(env.advID, 0) // one proven cheat…
	if env.rep.Trusted(env.advID) {
		env.fatalf("adversary still trusted")
	}
	dir.Eject(advHash) // …and the recipient stops honoring its binding
	if _, err := dir.Lookup(advHash); !errors.Is(err, registry.ErrUntrusted) {
		env.fatalf("ejected lookup err = %v, want ErrUntrusted", err)
	}
	if got := dir.Len(); got != before-1 {
		env.fatalf("Len after ejection = %d, want %d", got, before-1)
	}
	env.log.Record(ExchangeAttempt{Gateway: env.advID, Refused: true})

	if got := ByzantineAttacks(c, "forge-binding"); got != 1 {
		env.fatalf("forge-binding attacks = %d, want 1", got)
	}
	env.checkByz(t, 0, nil)
}
