package chaos

import (
	"fmt"
	mrand "math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"bcwan/internal/chain"
	"bcwan/internal/daemon"
	"bcwan/internal/script"
	"bcwan/internal/wallet"
)

// Store crash scenarios: the daemon store's group-commit append path
// (DESIGN.md §16) must keep its durability promise through power cuts.
// AppendBlock returning nil means the record survived an fsync, even
// when the fsync was shared with a whole batch — so after a crash that
// tears the tail of blocks.log mid-write and vaporizes the in-memory
// queue, recovery must replay exactly the flushed prefix, truncate the
// torn record, and leave a log clean enough to keep appending to.

// storeScenario is the seeded world one crash round operates on: a
// pre-built valid block sequence and a factory for fresh replicas.
type storeScenario struct {
	t      *testing.T
	seed   int64
	name   string
	blocks []*chain.Block // blocks[h] extends blocks[h-1]; blocks[0] is genesis
	mk     func() *chain.Chain
}

func (s *storeScenario) failf(format string, args ...any) {
	s.t.Helper()
	s.t.Fatalf("[replay: CHAOS_SEED=%d] scenario %q: %s", s.seed, s.name,
		fmt.Sprintf(format, args...))
}

// buildStoreScenario mines n empty signed blocks on a private chain so
// every round replays the same deterministic history.
func buildStoreScenario(t *testing.T, name string, seed int64, n int) *storeScenario {
	t.Helper()
	rng := mrand.New(mrand.NewSource(seed))
	minerW, err := wallet.New(rng)
	if err != nil {
		t.Fatal(err)
	}
	ownerW, err := wallet.New(rng)
	if err != nil {
		t.Fatal(err)
	}
	params := chain.DefaultParams()
	params.VerifyScripts = false
	genesis := chain.GenesisBlock(map[[20]byte]uint64{ownerW.PubKeyHash(): 1_000})

	mk := func() *chain.Chain {
		g, err := chain.DeserializeBlock(genesis.Serialize())
		if err != nil {
			t.Fatal(err)
		}
		c, err := chain.New(params, g)
		if err != nil {
			t.Fatal(err)
		}
		c.AuthorizeMiner(minerW.PublicBytes())
		return c
	}

	builder := mk()
	base := time.Date(2018, 12, 10, 0, 0, 0, 0, time.UTC)
	blocks := make([]*chain.Block, n+1)
	blocks[0] = builder.Tip()
	for h := 1; h <= n; h++ {
		parent := blocks[h-1]
		coinbase := &chain.Tx{
			Inputs: []chain.TxIn{{
				Prev: chain.OutPoint{Index: 0xffffffff},
				Unlock: script.NewBuilder().
					AddInt64(int64(h)).
					AddInt64(rng.Int63()).Script(),
			}},
			Outputs: []chain.TxOut{{
				Value: params.CoinbaseReward,
				Lock:  script.PayToPubKeyHash(ownerW.PubKeyHash()),
			}},
		}
		b := &chain.Block{
			Header: chain.Header{
				Version:    1,
				PrevBlock:  parent.ID(),
				MerkleRoot: chain.MerkleRoot([]*chain.Tx{coinbase}),
				Time:       base.Add(time.Duration(h) * 15 * time.Second).UnixNano(),
				Height:     int64(h),
			},
			Txs: []*chain.Tx{coinbase},
		}
		if err := b.Header.Sign(minerW.Key(), rng); err != nil {
			t.Fatal(err)
		}
		if err := builder.AddBlock(b); err != nil {
			t.Fatalf("building height %d: %v", h, err)
		}
		blocks[h] = b
	}
	return &storeScenario{t: t, seed: seed, name: name, blocks: blocks, mk: mk}
}

func TestStoreCrashScenarios(t *testing.T) {
	t.Run("group-commit-torn-tail", testStoreGroupCommitTornTail)
}

// testStoreGroupCommitTornTail loops crash/recover rounds against one
// on-disk store: each round appends a random burst of blocks through
// concurrent AppendBlock calls (sharing group-commit fsyncs), flushes,
// then pulls the plug mid-write of the NEXT record with a seeded torn
// prefix. Reopening must recover exactly the flushed prefix, pass
// CheckConsistency, and accept the re-append of the lost block — the
// same block a restarted node would refetch over gossip.
func testStoreGroupCommitTornTail(t *testing.T) {
	const name = "group-commit-torn-tail"
	seed, src := effectiveSeed(7331)
	t.Logf("scenario %q seed %d (%s); replay: CHAOS_SEED=%d go test -run 'TestStoreCrashScenarios/group-commit-torn-tail' ./internal/chaos",
		name, seed, src, seed)

	const maxHeight = 20
	s := buildStoreScenario(t, name, seed, maxHeight)
	rng := mrand.New(mrand.NewSource(seed + 1))

	dir := filepath.Join(t.TempDir(), "store")
	// A generous collection window so each round's burst shares fsyncs;
	// the Flush barrier closes the window early once the burst is in.
	const window = 200 * time.Millisecond

	st, err := daemon.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.SetGroupCommit(window, 0)

	durable := 0
	var batchedTotal uint64
	for round := 0; round < 3 && durable+1 < maxHeight; round++ {
		burst := 2 + rng.Intn(4)
		if durable+burst >= maxHeight {
			burst = maxHeight - durable - 1
		}
		start, end := durable+1, durable+burst

		syncsBefore := st.Syncs()
		var wg sync.WaitGroup
		for h := start; h <= end; h++ {
			b := s.blocks[h]
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := st.AppendBlock(b); err != nil {
					t.Errorf("round %d: append height %d: %v", round, b.Header.Height, err)
				}
			}()
		}
		wg.Wait()
		if t.Failed() {
			s.failf("round %d: burst append failed", round)
		}
		if err := st.Flush(); err != nil {
			s.failf("round %d: flush: %v", round, err)
		}
		// The whole burst plus the barrier must fit in very few fsyncs;
		// one-per-record would mean group commit regressed to the seed.
		if syncs := st.Syncs() - syncsBefore; burst >= 3 && syncs >= uint64(burst) {
			s.failf("round %d: %d appends cost %d fsyncs; batch did not coalesce", round, burst, syncs)
		}
		batchedTotal += st.BatchedRecords()
		durable = end

		// Power cut mid-write of the next record: a seeded torn prefix
		// lands on disk unsynced, queued work is gone.
		torn := rng.Intn(512)
		if err := st.CrashForTest(s.blocks[durable+1], torn); err != nil {
			s.failf("round %d: crash: %v", round, err)
		}

		st, err = daemon.OpenStore(dir)
		if err != nil {
			s.failf("round %d: reopen: %v", round, err)
		}
		st.SetGroupCommit(window, 0)
		replica := s.mk()
		loaded, err := st.Load(replica)
		if err != nil {
			s.failf("round %d: recovery load: %v", round, err)
		}
		if replica.Height() != int64(durable) {
			s.failf("round %d: recovered to height %d, want the %d flushed records (loaded %d, torn %d bytes)",
				round, replica.Height(), durable, loaded, torn)
		}
		if replica.Tip().ID() != s.blocks[durable].ID() {
			s.failf("round %d: recovered tip diverged from the flushed prefix", round)
		}
		if err := replica.CheckConsistency(); err != nil {
			s.failf("round %d: recovered chain inconsistent: %v", round, err)
		}
	}
	if batchedTotal == 0 {
		s.failf("no append ever shared a group-commit batch across %d-block bursts", durable)
	}

	// The store that lived through every crash keeps working: append the
	// rest of the history and hand it to a cold replica.
	for h := durable + 1; h <= maxHeight; h++ {
		if err := st.AppendBlock(s.blocks[h]); err != nil {
			s.failf("post-crash append height %d: %v", h, err)
		}
	}
	if err := st.Close(); err != nil {
		s.failf("close: %v", err)
	}
	st, err = daemon.OpenStore(dir)
	if err != nil {
		s.failf("final reopen: %v", err)
	}
	defer st.Close()
	replica := s.mk()
	if _, err := st.Load(replica); err != nil {
		s.failf("final load: %v", err)
	}
	if replica.Height() != maxHeight {
		s.failf("final height %d, want %d", replica.Height(), maxHeight)
	}
	if err := replica.CheckConsistency(); err != nil {
		s.failf("final chain inconsistent: %v", err)
	}
}
