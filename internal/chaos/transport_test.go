package chaos

import (
	"testing"
	"time"

	"bcwan/internal/netsim"
	"bcwan/internal/p2p"
	"bcwan/internal/simtime"
	"bcwan/internal/telemetry"
)

// pipe wires a one-directional a → b link through the fault layer and
// returns the sender conn and a channel of delivered messages.
func pipe(t *testing.T, n *Net) (p2p.Conn, <-chan p2p.Message) {
	t.Helper()
	lis, err := n.TransportFor("b").Listen("b")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	accepted := make(chan p2p.Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	sender, err := n.TransportFor("a").Dial("b")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	conn := <-accepted
	out := make(chan p2p.Message, 4096)
	go func() {
		defer close(out)
		for {
			m, err := conn.Receive()
			if err != nil {
				return
			}
			out <- m
		}
	}()
	return sender, out
}

func drain(out <-chan p2p.Message) int {
	n := 0
	for range out {
		n++
	}
	return n
}

// deliveredWithFaults runs count sends through a fresh Net with the
// given seed and faults and returns how many messages arrive.
func deliveredWithFaults(t *testing.T, seed int64, f Faults, count int) int {
	t.Helper()
	n := NewNet(seed)
	n.SetDefaultFaults(f)
	sender, out := pipe(t, n)
	for i := 0; i < count; i++ {
		if err := sender.Send(p2p.Message{Type: "t", From: "a", Payload: []byte{byte(i)}}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	n.Wait()
	sender.Close()
	return drain(out)
}

func TestDropIsSeedDeterministic(t *testing.T) {
	f := Faults{Drop: 0.3}
	first := deliveredWithFaults(t, 42, f, 400)
	if first == 400 || first == 0 {
		t.Fatalf("drop rate 0.3 delivered %d/400, expected a strict subset", first)
	}
	if again := deliveredWithFaults(t, 42, f, 400); again != first {
		t.Fatalf("same seed delivered %d then %d messages", first, again)
	}
	if other := deliveredWithFaults(t, 43, f, 400); other == first {
		t.Logf("different seed coincidentally delivered the same count %d (allowed, just unlikely)", other)
	}
}

func TestDuplicateDeliversTwice(t *testing.T) {
	got := deliveredWithFaults(t, 7, Faults{Duplicate: 1.0}, 50)
	if got != 100 {
		t.Fatalf("duplicate rate 1.0 delivered %d messages for 50 sends, want 100", got)
	}
}

func TestPartitionBlocksAndHeals(t *testing.T) {
	n := NewNet(1)
	reg := telemetry.NewRegistry()
	n.Instrument(reg)
	sender, out := pipe(t, n)

	n.Partition([]string{"a"}, []string{"b"})
	if err := sender.Send(p2p.Message{Type: "t", From: "a", Payload: []byte("lost")}); err != nil {
		t.Fatalf("send during partition: %v", err)
	}
	blocked := reg.Counter("bcwan_chaos_faults_injected_total",
		"Faults injected by kind.", telemetry.L("kind", "partition")).Value()
	if blocked != 1 {
		t.Fatalf("partition counter = %d, want 1", blocked)
	}

	n.Heal()
	if err := sender.Send(p2p.Message{Type: "t", From: "a", Payload: []byte("through")}); err != nil {
		t.Fatalf("send after heal: %v", err)
	}
	sender.Close()
	if got := drain(out); got != 1 {
		t.Fatalf("delivered %d messages, want only the post-heal one", got)
	}
}

func TestDelayHoldsUntilClockAdvances(t *testing.T) {
	n := NewNet(5)
	clock := simtime.NewSim(time.Unix(0, 0))
	n.SetClock(clock)
	// Sigma 0 makes the lognormal degenerate: every delay is exactly
	// the median.
	n.SetDefaultFaults(Faults{Delay: netsim.LinkDist{MedianMS: 50, Sigma: 0}})
	sender, out := pipe(t, n)

	if err := sender.Send(p2p.Message{Type: "t", From: "a", Payload: []byte("late")}); err != nil {
		t.Fatalf("send: %v", err)
	}
	select {
	case <-out:
		t.Fatal("message delivered before the simulated delay elapsed")
	case <-time.After(20 * time.Millisecond):
	}
	// Wait for the delivery goroutine to park on the sim clock, then
	// release it.
	deadline := time.Now().Add(2 * time.Second)
	for clock.Pending() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("delayed delivery never parked on the sim clock")
		}
		time.Sleep(time.Millisecond)
	}
	clock.Advance(time.Second)
	select {
	case m := <-out:
		if string(m.Payload) != "late" {
			t.Fatalf("unexpected payload %q", m.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("message not delivered after advancing the clock")
	}
	sender.Close()
}

func TestPerLinkOverrides(t *testing.T) {
	n := NewNet(9)
	n.SetDefaultFaults(Faults{Drop: 1.0})
	n.SetLinkFaults("a", "b", Faults{}) // this link is clean
	sender, out := pipe(t, n)
	for i := 0; i < 10; i++ {
		if err := sender.Send(p2p.Message{Type: "t", From: "a", Payload: []byte{byte(i)}}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	sender.Close()
	if got := drain(out); got != 10 {
		t.Fatalf("clean override link delivered %d/10", got)
	}
}

func TestLinkSeedIsStable(t *testing.T) {
	if linkSeed(1, "a", "b") != linkSeed(1, "a", "b") {
		t.Fatal("linkSeed not deterministic")
	}
	distinct := map[int64]bool{}
	for _, pair := range [][2]string{{"a", "b"}, {"b", "a"}, {"a", "c"}} {
		distinct[linkSeed(1, pair[0], pair[1])] = true
	}
	if len(distinct) != 3 {
		t.Fatalf("directed links share RNG seeds: %v", distinct)
	}
}

// TestClusterRestartRecoversFromStore exercises the harness crash /
// restart path in isolation: blocks mined before the crash come back
// from the durable store, not from gossip.
func TestClusterRestartRecoversFromStore(t *testing.T) {
	c, err := NewCluster(Options{Seed: 11, Nodes: 2, Miners: []int{0}, Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.Node(0).MineNow(); err != nil {
			t.Fatalf("mine: %v", err)
		}
	}
	if err := c.Crash(0); err != nil {
		t.Fatalf("crash: %v", err)
	}
	// Isolate the reborn node so the recovered blocks can only have
	// come from disk.
	if err := c.Crash(1); err != nil {
		t.Fatalf("crash n1: %v", err)
	}
	loaded, err := c.Restart(0)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if loaded != 3 {
		t.Fatalf("restart loaded %d blocks from store, want 3", loaded)
	}
	if h := c.Node(0).Chain().Height(); h != 3 {
		t.Fatalf("restarted height %d, want 3", h)
	}
}
