package chaos

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"bcwan/internal/chain"
	"bcwan/internal/fairex"
	"bcwan/internal/gateway"
	"bcwan/internal/lora"
	"bcwan/internal/netsim"
	"bcwan/internal/recipient"
	"bcwan/internal/script"
	"bcwan/internal/telemetry"
)

// chaosSeed overrides every scenario's seed, replaying a failure:
//
//	CHAOS_SEED=12345 go test -run 'TestFaultScenarios/<name>' ./internal/chaos
var chaosSeed = flag.Int64("chaos.seed", 0, "override scenario RNG seeds (0 = per-scenario defaults; CHAOS_SEED env works too)")

// scenarioTimeout bounds each wait phase; generous because fault rates
// make progress probabilistic per round, never impossible.
const scenarioTimeout = 30 * time.Second

// effectiveSeed resolves the scenario seed from flag, environment or
// the table default.
func effectiveSeed(def int64) (int64, string) {
	if *chaosSeed != 0 {
		return *chaosSeed, "flag -chaos.seed"
	}
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil && v != 0 {
			return v, "env CHAOS_SEED"
		}
	}
	return def, "scenario default"
}

// scenarioEnv is the per-run state hooks can inspect and mutate.
type scenarioEnv struct {
	c           *Cluster
	gw          *gateway.Gateway
	rcpt        *recipient.Recipient
	sensor      *Sensor
	delivery    *fairex.Delivery
	ex          *Exchange
	paymentID   chain.Hash
	offerHeight int64
	// miners is the set pumped while waiting; hooks reshape it (e.g. a
	// crash removes the only miner until restart).
	miners []int
	// restartLoaded records how many blocks the last Restart recovered
	// from the on-disk store.
	restartLoaded int
}

type scenario struct {
	name          string
	seed          int64
	nodes         int
	miners        []int
	gatewayNode   int
	recipientNode int
	faults        Faults
	// refund runs the gateway-death arm: no claim, the recipient
	// reclaims the payment through the Listing 1 OP_ELSE path.
	refund bool
	// midExchange fires after the payment is visible on every live
	// node, before the gateway claims.
	midExchange func(t *testing.T, env *scenarioEnv)
	// beforeSettle fires after the claim is submitted, before the
	// recipient settles (partitions heal, crashed nodes restart here).
	beforeSettle func(t *testing.T, env *scenarioEnv)
	// check runs scenario-specific assertions after the invariants.
	check func(t *testing.T, env *scenarioEnv)
}

// injectedFaults reads the chaos fault counter for one kind.
func injectedFaults(c *Cluster, kind string) uint64 {
	return c.Reg.Counter("bcwan_chaos_faults_injected_total",
		"Faults injected by kind.", telemetry.L("kind", kind)).Value()
}

// nodeCounter reads a counter from one node's own registry by name.
func nodeCounter(c *Cluster, node int, name string) float64 {
	for _, m := range c.Node(node).Telemetry().Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	return 0
}

func allHeightsAtLeast(c *Cluster, h int64) bool {
	for i := 0; i < c.Opts.Nodes; i++ {
		p := c.Peer(i)
		if p.Alive && p.Node.Chain().Height() < h {
			return false
		}
	}
	return true
}

// paymentEverywhere reports whether every live node sees the payment
// (pooled or confirmed).
func paymentEverywhere(c *Cluster, id chain.Hash) bool {
	for i := 0; i < c.Opts.Nodes; i++ {
		p := c.Peer(i)
		if !p.Alive {
			continue
		}
		led := p.Node.Ledger()
		if _, pooled := led.PendingTx(id); pooled {
			continue
		}
		if _, _, confirmed := led.FindTx(id); !confirmed {
			return false
		}
	}
	return true
}

func TestFaultScenarios(t *testing.T) {
	scenarios := []scenario{
		{
			name: "baseline", seed: 101, nodes: 3, miners: []int{0},
		},
		{
			name: "drop", seed: 202, nodes: 3, miners: []int{0},
			faults: Faults{Drop: 0.15},
			check: func(t *testing.T, env *scenarioEnv) {
				if injectedFaults(env.c, "drop") == 0 {
					t.Error("drop scenario injected no drops")
				}
			},
		},
		{
			name: "delay", seed: 303, nodes: 3, miners: []int{0},
			faults: Faults{Delay: netsim.LinkDist{MedianMS: 8, Sigma: 0.5}},
			check: func(t *testing.T, env *scenarioEnv) {
				if injectedFaults(env.c, "delay") == 0 {
					t.Error("delay scenario injected no delays")
				}
			},
		},
		{
			name: "reorder", seed: 404, nodes: 3, miners: []int{0},
			faults: Faults{Reorder: 0.3, ReorderDelay: 25 * time.Millisecond},
			check: func(t *testing.T, env *scenarioEnv) {
				if injectedFaults(env.c, "reorder") == 0 {
					t.Error("reorder scenario injected no reorders")
				}
			},
		},
		{
			name: "duplicate", seed: 505, nodes: 3, miners: []int{0},
			faults: Faults{Duplicate: 0.4},
			check: func(t *testing.T, env *scenarioEnv) {
				if injectedFaults(env.c, "duplicate") == 0 {
					t.Error("duplicate scenario injected no duplicates")
				}
			},
		},
		{
			// Sides A = {n0 miner, n1 gateway} and B = {n2 recipient,
			// n3 miner} both confirm the shared payment on their own
			// branch; after heal only A mines, so B reorganizes onto
			// A's branch carrying the claim.
			name: "partition-heal", seed: 606, nodes: 4, miners: []int{0, 3},
			midExchange: func(t *testing.T, env *scenarioEnv) {
				env.c.Net.Partition([]string{"n0", "n1"}, []string{"n2", "n3"})
				for i := 0; i < 3; i++ {
					env.c.PumpRound(0, 3)
				}
			},
			beforeSettle: func(t *testing.T, env *scenarioEnv) {
				env.c.Net.Heal()
			},
			check: func(t *testing.T, env *scenarioEnv) {
				if injectedFaults(env.c, "partition") == 0 {
					t.Error("partition scenario blocked no messages")
				}
				reorgs := nodeCounter(env.c, 2, "bcwan_chain_reorgs_total") +
					nodeCounter(env.c, 3, "bcwan_chain_reorgs_total")
				if reorgs == 0 {
					t.Error("partition heal caused no reorg on the losing side")
				}
			},
		},
		{
			// The only miner dies mid-exchange with the payment pooled,
			// then restarts from its durable store and finishes the
			// exchange (zero-conf claim already happened while it was
			// down).
			name: "crash-restart", seed: 707, nodes: 3, miners: []int{0},
			midExchange: func(t *testing.T, env *scenarioEnv) {
				if err := env.c.Crash(0); err != nil {
					t.Fatalf("crash n0: %v", err)
				}
				env.miners = nil
			},
			beforeSettle: func(t *testing.T, env *scenarioEnv) {
				loaded, err := env.c.Restart(0)
				if err != nil {
					t.Fatalf("restart n0: %v", err)
				}
				env.restartLoaded = loaded
				env.miners = []int{0}
			},
			check: func(t *testing.T, env *scenarioEnv) {
				if env.restartLoaded < 1 {
					t.Errorf("restart recovered %d blocks from the store, want ≥ 1", env.restartLoaded)
				}
			},
		},
		{
			// The gateway node dies after the payment and never claims;
			// the recipient reclaims through the OP_ELSE refund path
			// once the lock height passes.
			name: "gateway-death-refund", seed: 808, nodes: 3, miners: []int{0},
			refund: true,
			midExchange: func(t *testing.T, env *scenarioEnv) {
				if err := env.c.Crash(1); err != nil {
					t.Fatalf("crash n1: %v", err)
				}
			},
		},
		{
			// n3 is cut off while the claim gossips, then the block
			// carrying it is mined immediately after heal: n3's compact
			// reconstruction is missing the claim tx and must climb to the
			// getblocktxn round trip (DESIGN.md §12 fallback ladder).
			name: "compact-missing-tx", seed: 1010, nodes: 4, miners: []int{0},
			midExchange: func(t *testing.T, env *scenarioEnv) {
				env.c.Net.Partition([]string{"n0", "n1", "n2"}, []string{"n3"})
				// No mining while split: the claim must stay pooled so the
				// post-heal block is the first n3 hears of it.
				env.miners = nil
			},
			beforeSettle: func(t *testing.T, env *scenarioEnv) {
				// The claim's inv/getdata round trip from the gateway node
				// is still in flight when the claim call returns; the mined
				// block must carry it, so wait for n0's pool first.
				deadline := time.Now().Add(scenarioTimeout)
				for env.c.Node(0).Ledger().Pool.Len() < 2 {
					if time.Now().After(deadline) {
						t.Fatalf("claim never reached the miner's pool")
					}
					time.Sleep(2 * time.Millisecond)
				}
				env.c.Net.Heal()
				// Mine before any pump round can re-announce pending txs,
				// so the sketch reaches n3 with the claim still unknown.
				blk, err := env.c.Node(0).MineNow()
				if err != nil {
					t.Fatalf("mine after heal: %v", err)
				}
				// Wait for n3 to adopt it without pumping: a pump round
				// would force-rebroadcast the claim, racing it into n3's
				// pool before the sketch and voiding the round trip.
				deadline = time.Now().Add(scenarioTimeout)
				for env.c.Node(3).Chain().Tip().ID() != blk.ID() {
					if time.Now().After(deadline) {
						t.Fatalf("n3 never adopted the post-heal block")
					}
					time.Sleep(2 * time.Millisecond)
				}
				env.miners = []int{0}
			},
			check: func(t *testing.T, env *scenarioEnv) {
				if got := nodeCounter(env.c, 3, "bcwan_daemon_cmpct_txn_requests_total"); got < 1 {
					t.Errorf("n3 issued %v getblocktxn round trips, want ≥ 1", got)
				}
				if got := nodeCounter(env.c, 3, "bcwan_daemon_cmpct_received_total"); got < 1 {
					t.Errorf("n3 received %v compact sketches, want ≥ 1", got)
				}
			},
		},
		{
			name: "churn", seed: 909, nodes: 4, miners: []int{0},
			faults: Faults{
				Drop:      0.1,
				Duplicate: 0.2,
				Reorder:   0.15,
				Delay:     netsim.LinkDist{MedianMS: 3, Sigma: 0.5},
			},
		},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) { runScenario(t, sc) })
	}
}

func runScenario(t *testing.T, sc scenario) {
	seed, src := effectiveSeed(sc.seed)
	t.Logf("scenario %q seed %d (%s); replay: CHAOS_SEED=%d go test -run 'TestFaultScenarios/%s' ./internal/chaos",
		sc.name, seed, src, seed, sc.name)
	fatalf := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("[replay: CHAOS_SEED=%d] scenario %q: %s", seed, sc.name, fmt.Sprintf(format, args...))
	}
	if sc.gatewayNode == 0 {
		sc.gatewayNode = 1
	}
	if sc.recipientNode == 0 {
		sc.recipientNode = 2
	}

	c, err := NewCluster(Options{
		Seed:   seed,
		Nodes:  sc.nodes,
		Miners: sc.miners,
		Dir:    t.TempDir(),
	})
	if err != nil {
		fatalf("cluster: %v", err)
	}
	defer c.Close()
	if sc.faults.Any() {
		c.Net.SetDefaultFaults(sc.faults)
	}

	env := &scenarioEnv{c: c, miners: sc.miners[:1]}
	env.gw = c.Gateway(sc.gatewayNode, gateway.Config{
		Price: 100, RefundWindow: 5, WaitConfirmations: 0, ClaimFee: 1,
	})
	env.rcpt = c.Recipient(sc.recipientNode, recipient.Config{
		MaxPrice: 100, RefundWindow: 5, PaymentFee: 1, RefundFee: 1,
	})
	env.sensor, err = c.NewSensor(lora.DevEUI{0xB0, 1, 2, 3, 4, 5, 6, 7}, env.rcpt)
	if err != nil {
		fatalf("sensor: %v", err)
	}

	// Mature the genesis allocation so the recipient's coins spend.
	if err := c.WaitFor(scenarioTimeout, env.miners, func() bool {
		return allHeightsAtLeast(c, 1)
	}); err != nil {
		fatalf("maturing genesis: %v", err)
	}

	// Publish and confirm the @R → IP binding (§4.3) so the gateway's
	// directory can resolve the recipient.
	if _, err := c.PublishBinding(sc.recipientNode, "recipient.chaos:0"); err != nil {
		fatalf("binding: %v", err)
	}
	rcptHash := c.RecipientWallet.PubKeyHash()
	dir := c.Node(sc.gatewayNode).Directory()
	if err := c.WaitFor(scenarioTimeout, env.miners, func() bool {
		_, err := dir.Lookup(rcptHash)
		return err == nil
	}); err != nil {
		fatalf("binding propagation: %v", err)
	}
	// Quiesce so every node agrees on the height the offer is made at.
	if err := c.WaitFor(scenarioTimeout, nil, func() bool { return c.Converged() }); err != nil {
		fatalf("pre-exchange convergence: %v", err)
	}

	// Fig. 3: key request → data frame → delivery → payment.
	resp, err := env.gw.HandleKeyRequest(env.sensor.Dev.KeyRequestFrame())
	if err != nil {
		fatalf("key request: %v", err)
	}
	// Canonical frames carry at most 15 plaintext bytes (Fig. 4).
	plaintext := []byte(fmt.Sprintf("t=21.5C s=%04x", uint16(seed)))
	frame, err := env.sensor.Dev.DataFrame(plaintext, resp.Payload, resp.Counter)
	if err != nil {
		fatalf("data frame: %v", err)
	}
	env.offerHeight = c.Node(sc.gatewayNode).Chain().Height()
	env.delivery, _, err = env.gw.HandleData(frame)
	if err != nil {
		fatalf("handle data: %v", err)
	}
	payment, err := env.rcpt.HandleDelivery(env.delivery)
	if err != nil {
		fatalf("handle delivery: %v", err)
	}
	env.paymentID = payment.ID()
	env.ex = &Exchange{
		Delivery:        env.delivery,
		Payment:         payment,
		SharedKey:       env.sensor.SharedKey,
		Plaintext:       plaintext,
		BuyerPubKeyHash: rcptHash,
	}

	// The payment must be visible cluster-wide before faults like
	// partitions bite, so both sides of a split confirm the same coins.
	if err := c.WaitFor(scenarioTimeout, nil, func() bool {
		return paymentEverywhere(c, env.paymentID)
	}); err != nil {
		fatalf("payment propagation: %v", err)
	}

	if sc.midExchange != nil {
		sc.midExchange(t, env)
	}

	if !sc.refund {
		// Fig. 3 step 10: the gateway claims by revealing eSk.
		if err := c.WaitFor(scenarioTimeout, env.miners, func() bool {
			_, err := env.gw.VerifyAndClaim(env.delivery.DevEUI, env.delivery.Exchange, env.paymentID, env.offerHeight)
			return err == nil
		}); err != nil {
			fatalf("claim: %v", err)
		}
	}

	if sc.beforeSettle != nil {
		sc.beforeSettle(t, env)
	}

	if sc.refund {
		runRefund(t, fatalf, env)
	} else {
		var msg *recipient.Message
		if err := c.WaitFor(scenarioTimeout, env.miners, func() bool {
			m, err := env.rcpt.SettleClaim(env.paymentID)
			if err != nil {
				return false
			}
			msg = m
			return true
		}); err != nil {
			fatalf("settle: %v", err)
		}
		if !bytes.Equal(msg.Plaintext, plaintext) {
			fatalf("settled plaintext %q, want %q", msg.Plaintext, plaintext)
		}
	}

	// Let the cluster quiesce on one branch, then check every safety
	// property.
	if err := c.WaitFor(scenarioTimeout, env.miners, func() bool { return c.Converged() }); err != nil {
		fatalf("final convergence: %v", err)
	}
	if err := CheckInvariants(c, []*Exchange{env.ex}); err != nil {
		fatalf("invariants violated: %v", err)
	}
	if sc.check != nil {
		sc.check(t, env)
	}
}

// runRefund drives the OP_ELSE arm: wait out the lock window, reclaim,
// and confirm the refund.
func runRefund(t *testing.T, fatalf func(string, ...any), env *scenarioEnv) {
	t.Helper()
	c := env.c
	params, err := script.ParseKeyRelease(env.ex.Payment.Outputs[0].Lock)
	if err != nil {
		fatalf("parse payment lock: %v", err)
	}
	rcptChain := c.Node(2).Chain()
	if err := c.WaitFor(scenarioTimeout, env.miners, func() bool {
		return rcptChain.Height() >= params.RefundHeight
	}); err != nil {
		fatalf("waiting out refund window: %v", err)
	}
	if err := c.WaitFor(scenarioTimeout, env.miners, func() bool {
		_, err := env.rcpt.Refund(env.paymentID)
		return err == nil
	}); err != nil {
		fatalf("refund: %v", err)
	}
	op := chain.OutPoint{TxID: env.paymentID, Index: 0}
	if err := c.WaitFor(scenarioTimeout, env.miners, func() bool {
		_, _, ok := rcptChain.FindSpender(op)
		return ok
	}); err != nil {
		fatalf("refund confirmation: %v", err)
	}
}
