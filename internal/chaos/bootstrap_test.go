package chaos

import (
	"testing"

	"bcwan/internal/daemon"
)

// Bootstrap scenarios: a late joiner enters a mesh that already has
// history and must come up through the headers-first sync machine
// (DESIGN.md §13) — via a verified snapshot when a peer serves an
// honest one, via the full-sync fallback when every snapshot source
// lies. Both paths must end converged with every safety invariant
// intact; the liar path must additionally never install the bad state.

// bootstrapTweak gives every node the scenario's snapshot cadence:
// boundaries every 8 blocks, bootstrap preferred once 4 behind.
func bootstrapTweak(cfg *daemon.NodeConfig) {
	cfg.SnapshotInterval = 8
	cfg.SnapshotMinGap = 4
	cfg.SnapshotChunkSize = 256
}

// tamperChunk0 flips a byte of the first served snapshot chunk — a
// lying peer whose download passes every cheap check and fails only
// the commitment hash over the assembled bytes.
func tamperChunk0(_ int64, chunk int32, payload []byte) []byte {
	if chunk != 0 || len(payload) == 0 {
		return payload
	}
	bad := append([]byte(nil), payload...)
	bad[0] ^= 0xff
	return bad
}

func TestBootstrapSnapshotJoin(t *testing.T) {
	seed, src := effectiveSeed(1111)
	t.Logf("seed %d (%s)", seed, src)
	c, err := NewCluster(Options{
		Seed:       seed,
		Nodes:      4,
		Miners:     []int{0},
		Dir:        t.TempDir(),
		DeferStart: []int{3},
		NodeTweak:  func(_ int, cfg *daemon.NodeConfig) { bootstrapTweak(cfg) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Build history well past several snapshot boundaries.
	if err := c.WaitFor(scenarioTimeout, []int{0}, func() bool {
		return allHeightsAtLeast(c, 26)
	}); err != nil {
		t.Fatal(err)
	}

	if _, err := c.Start(3); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitFor(scenarioTimeout, []int{0}, func() bool {
		return c.Peer(3).Node.SyncInfo().Phase == "live" && c.Converged()
	}); err != nil {
		t.Fatalf("joiner never converged: %v", err)
	}

	joiner := c.Node(3)
	si := joiner.SyncInfo()
	if si.FullSyncFallback {
		t.Error("joiner degraded to a full sync with an honest snapshot peer available")
	}
	base := joiner.Chain().PruneBase()
	if base < 8 || base%8 != 0 {
		t.Errorf("joiner prune base = %d, want a snapshot boundary ≥ 8", base)
	}
	if got := nodeCounter(c, 3, "bcwan_daemon_snapshot_installed_height"); int64(got) != base {
		t.Errorf("snapshot_installed_height = %v, want %d", got, base)
	}
	if b, ok := joiner.Chain().BlockAt(1); !ok || len(b.Txs) != 0 {
		t.Error("pre-horizon block should be a header-only stub on the joiner")
	}

	// The pruned joiner keeps up with live blocks after bootstrap.
	target := c.Node(0).Chain().Height() + 3
	if err := c.WaitFor(scenarioTimeout, []int{0}, func() bool {
		return allHeightsAtLeast(c, target)
	}); err != nil {
		t.Fatalf("joiner fell behind after bootstrap: %v", err)
	}
	if err := CheckInvariants(c, nil); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestBootstrapAllSnapshotPeersLie(t *testing.T) {
	seed, src := effectiveSeed(2222)
	t.Logf("seed %d (%s)", seed, src)
	c, err := NewCluster(Options{
		Seed:       seed,
		Nodes:      3,
		Miners:     []int{0},
		Dir:        t.TempDir(),
		DeferStart: []int{2},
		NodeTweak: func(_ int, cfg *daemon.NodeConfig) {
			bootstrapTweak(cfg)
			// Every node that could serve a snapshot serves corrupted
			// chunks; the joiner must reject them all and fall back.
			cfg.TamperSnapshot = tamperChunk0
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.WaitFor(scenarioTimeout, []int{0}, func() bool {
		return allHeightsAtLeast(c, 26)
	}); err != nil {
		t.Fatal(err)
	}

	if _, err := c.Start(2); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitFor(scenarioTimeout, []int{0}, func() bool {
		return c.Peer(2).Node.SyncInfo().Phase == "live" && c.Converged()
	}); err != nil {
		t.Fatalf("joiner never converged: %v", err)
	}

	joiner := c.Node(2)
	if !joiner.SyncInfo().FullSyncFallback {
		t.Error("joiner should have fallen back to a full sync")
	}
	if nodeCounter(c, 2, "bcwan_daemon_snapshot_rejected_total") == 0 {
		t.Error("tampered snapshot was never rejected")
	}
	if got := joiner.Chain().PruneBase(); got != 0 {
		t.Errorf("joiner prune base = %d after rejecting every snapshot, want 0", got)
	}
	if b, ok := joiner.Chain().BlockAt(1); !ok || len(b.Txs) == 0 {
		t.Error("full-sync fallback should restore complete bodies")
	}
	if err := CheckInvariants(c, nil); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestBootstrapRestartKeepsHorizon restarts a snapshot-bootstrapped
// joiner: the pruned store must bring it back at its horizon without a
// re-bootstrap, and it must rejoin the mesh and keep converging.
func TestBootstrapRestartKeepsHorizon(t *testing.T) {
	seed, src := effectiveSeed(3333)
	t.Logf("seed %d (%s)", seed, src)
	c, err := NewCluster(Options{
		Seed:       seed,
		Nodes:      3,
		Miners:     []int{0},
		Dir:        t.TempDir(),
		DeferStart: []int{2},
		NodeTweak:  func(_ int, cfg *daemon.NodeConfig) { bootstrapTweak(cfg) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.WaitFor(scenarioTimeout, []int{0}, func() bool {
		return allHeightsAtLeast(c, 26)
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Start(2); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitFor(scenarioTimeout, []int{0}, func() bool {
		return c.Peer(2).Node.SyncInfo().Phase == "live" && c.Converged()
	}); err != nil {
		t.Fatalf("joiner never converged: %v", err)
	}
	base := c.Node(2).Chain().PruneBase()
	if base == 0 {
		t.Fatal("joiner did not bootstrap from a snapshot")
	}

	if err := c.Crash(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		c.PumpRound(0) // history the joiner misses while down
	}
	loaded, err := c.Restart(2)
	if err != nil {
		t.Fatal(err)
	}
	if loaded == 0 {
		t.Error("restart recovered nothing from the pruned store")
	}
	if got := c.Node(2).Chain().PruneBase(); got < base {
		t.Errorf("restart prune base = %d, want ≥ %d", got, base)
	}
	if err := c.WaitFor(scenarioTimeout, []int{0}, func() bool {
		return c.Peer(2).Node.SyncInfo().Phase == "live" && c.Converged()
	}); err != nil {
		t.Fatalf("restarted joiner never reconverged: %v", err)
	}
	if err := CheckInvariants(c, nil); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}
