package chaos

import (
	"bytes"
	"errors"
	"fmt"

	"bcwan/internal/bccrypto"
	"bcwan/internal/chain"
	"bcwan/internal/channel"
	"bcwan/internal/fairex"
	"bcwan/internal/reputation"
	"bcwan/internal/script"
)

// The four safety properties every scenario must preserve (§4.4 and §6
// of the paper): value conservation, convergence, fair-exchange
// atomicity, and no double spend across reorgs.

// Exchange records one fair exchange so the atomicity invariant can be
// checked against whatever the chain ended up recording.
type Exchange struct {
	// Delivery is the gateway's offer (carries ePk, Em and the
	// gateway's payment hash).
	Delivery *fairex.Delivery
	// Payment is the recipient's Listing 1 payment transaction.
	Payment *chain.Tx
	// SharedKey is the device↔recipient AES key K.
	SharedKey []byte
	// Plaintext is the sensor reading the exchange transported.
	Plaintext []byte
	// BuyerPubKeyHash is the refund destination (the recipient).
	BuyerPubKeyHash [20]byte
}

// PaymentID is the payment transaction id.
func (e *Exchange) PaymentID() chain.Hash { return e.Payment.ID() }

// CheckInvariants runs every invariant against the cluster's live
// nodes and the recorded exchanges, returning all violations joined.
func CheckInvariants(c *Cluster, exchanges []*Exchange) error {
	var errs []error
	if err := CheckConvergence(c); err != nil {
		errs = append(errs, err)
	}
	var ref *chain.Chain
	for _, p := range c.peers {
		if !p.Alive {
			continue
		}
		ch := p.Node.Chain()
		if ref == nil {
			ref = ch
		}
		if err := CheckConservation(ch, c.GenesisValue); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", p.Name, err))
		}
		if err := CheckNoDoubleSpend(ch); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", p.Name, err))
		}
		// The incremental state (undo-journal UTXO set, tx/spender
		// indexes) must match a from-genesis replay exactly — the chain's
		// own O(n) cross-check of its O(depth) bookkeeping.
		if err := ch.CheckConsistency(); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", p.Name, err))
		}
	}
	if ref != nil {
		for i, ex := range exchanges {
			if err := CheckAtomicity(ref, ex); err != nil {
				errs = append(errs, fmt.Errorf("exchange %d: %w", i, err))
			}
		}
	}
	return errors.Join(errs...)
}

// CheckConvergence asserts all live nodes agree on the best tip.
func CheckConvergence(c *Cluster) error {
	if c.Converged() {
		return nil
	}
	var tips []string
	for _, p := range c.peers {
		if p.Alive {
			t := p.Node.Chain().Tip()
			tips = append(tips, fmt.Sprintf("%s@%d=%s", p.Name, t.Header.Height, t.ID()))
		}
	}
	return fmt.Errorf("chaos: chains diverged: %v", tips)
}

// CheckConservation asserts no value was minted or burned outside the
// coinbase schedule: the spendable total must be exactly the genesis
// allocation plus one reward per mined block. (Fees move value into
// the coinbase rather than destroying it, so they cancel out.)
func CheckConservation(ch *chain.Chain, genesisValue uint64) error {
	want := genesisValue + ch.Params().CoinbaseReward*uint64(ch.Height())
	got := ch.UTXO().TotalValue()
	if got != want {
		return fmt.Errorf("chaos: value not conserved at height %d: UTXO total %d, want %d",
			ch.Height(), got, want)
	}
	return nil
}

// CheckNoDoubleSpend replays the best branch into a fresh UTXO set; a
// transaction spending a missing (already spent) output or recreating
// an existing one means the chain the node converged to contains a
// double spend. A pruned node has no bodies below its horizon, so the
// replay starts from the horizon state (itself cross-checked against
// the undo journals by Chain.CheckConsistency) instead of genesis.
func CheckNoDoubleSpend(ch *chain.Chain) error {
	utxo := chain.NewUTXOSet()
	start := int64(0)
	if base := ch.PruneBase(); base > 0 {
		u, err := ch.StateAt(base)
		if err != nil {
			return fmt.Errorf("chaos: double-spend check: %w", err)
		}
		utxo, start = u, base+1
	}
	for h := start; h <= ch.Height(); h++ {
		b, ok := ch.BlockAt(h)
		if !ok {
			return fmt.Errorf("chaos: best branch missing height %d", h)
		}
		for i, tx := range b.Txs {
			if err := utxo.ApplyTx(tx, h); err != nil {
				return fmt.Errorf("chaos: double-spend check: height %d tx %d (%s): %w",
					h, i, tx.ID(), err)
			}
		}
	}
	if got, want := utxo.TotalValue(), ch.UTXO().TotalValue(); got != want {
		return fmt.Errorf("chaos: replayed UTXO total %d differs from node's %d", got, want)
	}
	return nil
}

// CheckAtomicity asserts the fair-exchange property on one exchange:
// the gateway is paid ⟺ the RSA-512 key is disclosed on-chain ⟺ the
// recipient can decrypt. Three terminal states are legal — unsettled
// (payment unspent: nobody paid, nothing disclosed), claimed (gateway
// paid AND key disclosed AND plaintext recoverable), refunded (buyer
// repaid, no key). Anything else is a violation.
func CheckAtomicity(ch *chain.Chain, ex *Exchange) error {
	op := chain.OutPoint{TxID: ex.PaymentID(), Index: 0}
	spender, _, spent := ch.FindSpender(op)
	if !spent {
		// Unsettled: safe (liveness is the scenario's business).
		return nil
	}
	if _, _, ok := ch.FindTx(ex.PaymentID()); !ok {
		return fmt.Errorf("chaos: atomicity: spender confirmed but payment %s is not", ex.PaymentID())
	}
	for _, in := range spender.Inputs {
		if in.Prev != op {
			continue
		}
		keyBytes, err := script.ExtractClaimedRSAKey(in.Unlock)
		if err != nil {
			return checkRefund(spender, ex)
		}
		return checkClaim(spender, ex, keyBytes)
	}
	return fmt.Errorf("chaos: atomicity: spender %s does not reference payment output", spender.ID())
}

// checkClaim verifies the claim arm: key disclosed ⇒ it is the offered
// ephemeral key, the ciphertext decrypts to the original reading, and
// the money went to the gateway.
func checkClaim(spender *chain.Tx, ex *Exchange, keyBytes []byte) error {
	eSk, err := bccrypto.UnmarshalRSA512PrivateKey(keyBytes)
	if err != nil {
		return fmt.Errorf("chaos: atomicity: disclosed key unparseable: %w", err)
	}
	ePk, err := bccrypto.UnmarshalRSA512PublicKey(ex.Delivery.EPk)
	if err != nil {
		return fmt.Errorf("chaos: atomicity: offered ePk unparseable: %w", err)
	}
	if !eSk.MatchesPublic(ePk) {
		return fmt.Errorf("chaos: atomicity: gateway paid but disclosed key does not match offered ePk")
	}
	frame, err := bccrypto.DecryptRSA512(eSk, ex.Delivery.Em)
	if err != nil {
		return fmt.Errorf("chaos: atomicity: gateway paid but RSA layer does not decrypt: %w", err)
	}
	plain, err := bccrypto.DecryptFrame(ex.SharedKey, frame)
	if err != nil {
		return fmt.Errorf("chaos: atomicity: gateway paid but AES layer does not decrypt: %w", err)
	}
	if !bytes.Equal(plain, ex.Plaintext) {
		return fmt.Errorf("chaos: atomicity: decrypted plaintext differs from the sensor reading")
	}
	if len(spender.Outputs) == 0 {
		return fmt.Errorf("chaos: atomicity: claim has no outputs")
	}
	hash, err := script.ExtractP2PKHHash(spender.Outputs[0].Lock)
	if err != nil {
		return fmt.Errorf("chaos: atomicity: claim output 0 is not P2PKH: %w", err)
	}
	if hash != ex.Delivery.GatewayPubKeyHash {
		return fmt.Errorf("chaos: atomicity: key disclosed but the claim pays %x, not the gateway", hash)
	}
	return nil
}

// CheckChannelLossBound asserts the bounded-loss property of an
// off-chain payment channel (DESIGN.md §14) after an arbitrary crash:
// the payee's countersigned balance may run ahead of the payer's acked
// prefix by at most ONE update worth at most maxDelta, and neither side
// may hold a balance the other never signed.
func CheckChannelLossBound(payer, payee channel.State, maxDelta uint64) error {
	if payer.ID != payee.ID {
		return fmt.Errorf("chaos: channel states %s and %s are different channels", payer.ID, payee.ID)
	}
	var errs []error
	if payee.Paid < payer.AckedPaid {
		errs = append(errs, fmt.Errorf("chaos: payee balance %d below the payer's acked %d — a countersigned update was lost",
			payee.Paid, payer.AckedPaid))
	} else if diff := payee.Paid - payer.AckedPaid; diff > maxDelta {
		errs = append(errs, fmt.Errorf("chaos: channel divergence %d exceeds one update delta %d", diff, maxDelta))
	}
	if payee.Version > payer.AckedVersion+1 {
		errs = append(errs, fmt.Errorf("chaos: payee at version %d with payer acked %d — more than one update in flight",
			payee.Version, payer.AckedVersion))
	}
	if payer.Paid < payee.Paid {
		errs = append(errs, fmt.Errorf("chaos: payee holds balance %d the payer only signed up to %d",
			payee.Paid, payer.Paid))
	}
	if payer.Capacity != payee.Capacity {
		errs = append(errs, fmt.Errorf("chaos: capacity disagreement: payer %d, payee %d", payer.Capacity, payee.Capacity))
	}
	if payer.Paid+payer.CloseFee > payer.Capacity {
		errs = append(errs, fmt.Errorf("chaos: payer signed %d + close fee %d past capacity %d",
			payer.Paid, payer.CloseFee, payer.Capacity))
	}
	return errors.Join(errs...)
}

// --- Byzantine invariants ---------------------------------------------
//
// The two properties the reputation defense must deliver against
// adversarial gateways (DESIGN.md §15): a victim never loses more than
// one in-flight payment to any single adversary before refusing it
// (bounded loss), and a persistent equivocator's score crosses the
// trust threshold and it stops earning within a bounded number of
// exchanges (eventual ejection).

// ExchangeAttempt records one attempted exchange with a gateway from
// the victim's point of view, in the order the attempts were made.
type ExchangeAttempt struct {
	// Gateway is the counterparty's reputation id.
	Gateway string
	// Paid is what the victim irrevocably committed to the gateway in
	// this attempt (claimed payment or countersigned channel delta).
	Paid uint64
	// Lost is the part of Paid that is unrecoverable (0 when a refund
	// script or an honest settlement made the victim whole).
	Lost uint64
	// Refused marks an attempt the victim rejected up front (untrusted
	// gateway or detected replay) — nothing was committed.
	Refused bool
	// Delivered marks a fully settled honest exchange.
	Delivered bool
}

// ByzantineLog accumulates the attempts of one scenario.
type ByzantineLog struct {
	Attempts []ExchangeAttempt
}

// Record appends one attempt.
func (l *ByzantineLog) Record(a ExchangeAttempt) { l.Attempts = append(l.Attempts, a) }

// CheckBoundedLossPerVictim asserts the bounded-loss invariant: for
// every gateway, the victim's total unrecoverable loss is at most
// maxLoss (one in-flight payment), and once the victim has refused a
// gateway it never commits to — or loses — anything to it again.
func CheckBoundedLossPerVictim(log *ByzantineLog, maxLoss uint64) error {
	var errs []error
	lost := make(map[string]uint64)
	refused := make(map[string]bool)
	for i, a := range log.Attempts {
		if refused[a.Gateway] && (a.Paid > 0 || a.Lost > 0) {
			errs = append(errs, fmt.Errorf(
				"chaos: bounded loss: attempt %d committed %d (lost %d) to %s AFTER refusing it",
				i, a.Paid, a.Lost, a.Gateway))
		}
		lost[a.Gateway] += a.Lost
		if lost[a.Gateway] > maxLoss {
			errs = append(errs, fmt.Errorf(
				"chaos: bounded loss: total loss to %s reached %d after attempt %d, bound is %d",
				a.Gateway, lost[a.Gateway], i, maxLoss))
		}
		if a.Refused {
			refused[a.Gateway] = true
		}
	}
	return errors.Join(errs...)
}

// CheckEventualEjection asserts the eventual-ejection invariant: every
// gateway that cost the victim anything has (a) a reputation score
// below the trust threshold, (b) at least one refused attempt on
// record, and (c) no more than maxExchanges attempts between its first
// loss and its first refusal — the window in which it could still earn.
func CheckEventualEjection(log *ByzantineLog, sys *reputation.System, maxExchanges int) error {
	var errs []error
	firstLoss := make(map[string]int)
	firstRefusal := make(map[string]int)
	for i, a := range log.Attempts {
		if a.Lost > 0 {
			if _, ok := firstLoss[a.Gateway]; !ok {
				firstLoss[a.Gateway] = i
			}
		}
		if a.Refused {
			if _, ok := firstRefusal[a.Gateway]; !ok {
				firstRefusal[a.Gateway] = i
			}
		}
	}
	for gw, lossIdx := range firstLoss {
		if score := sys.Score(gw); score >= sys.Threshold() {
			errs = append(errs, fmt.Errorf(
				"chaos: eventual ejection: %s cost the victim money but still scores %.2f (threshold %.2f)",
				gw, score, sys.Threshold()))
		}
		refIdx, ok := firstRefusal[gw]
		if !ok {
			errs = append(errs, fmt.Errorf(
				"chaos: eventual ejection: %s cost the victim money and was never refused", gw))
			continue
		}
		if refIdx > lossIdx && refIdx-lossIdx > maxExchanges {
			errs = append(errs, fmt.Errorf(
				"chaos: eventual ejection: %s kept earning for %d attempts after its first loss, bound is %d",
				gw, refIdx-lossIdx, maxExchanges))
		}
	}
	return errors.Join(errs...)
}

// CheckByzantineInvariants runs both adversarial invariants. A log with
// no losses passes vacuously — honest scenarios can call it too.
func CheckByzantineInvariants(log *ByzantineLog, sys *reputation.System, maxLoss uint64, maxExchanges int) error {
	return errors.Join(
		CheckBoundedLossPerVictim(log, maxLoss),
		CheckEventualEjection(log, sys, maxExchanges),
	)
}

// checkRefund verifies the refund arm: no key disclosed ⇒ the money
// went back to the buyer.
func checkRefund(spender *chain.Tx, ex *Exchange) error {
	if len(spender.Outputs) == 0 {
		return fmt.Errorf("chaos: atomicity: refund has no outputs")
	}
	hash, err := script.ExtractP2PKHHash(spender.Outputs[0].Lock)
	if err != nil {
		return fmt.Errorf("chaos: atomicity: refund output 0 is not P2PKH: %w", err)
	}
	if hash != ex.BuyerPubKeyHash {
		return fmt.Errorf("chaos: atomicity: payment spent without key disclosure and pays %x, not the buyer", hash)
	}
	return nil
}
