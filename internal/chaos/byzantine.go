package chaos

import (
	"fmt"
	mrand "math/rand"

	"bcwan/internal/chain"
	"bcwan/internal/fairex"
	"bcwan/internal/gateway"
	"bcwan/internal/lora"
	"bcwan/internal/p2p"
	"bcwan/internal/registry"
	"bcwan/internal/telemetry"
)

// Byzantine is an adversarial gateway: it speaks the honest protocol
// through an embedded gateway actor (so its offers verify and its
// deliveries decrypt) but deviates wherever deviation pays — taking
// payment without disclosing the key, double-selling old deliveries,
// monopolizing a victim's peer slots, or mining a withheld private
// branch. Every deviation is counted in the cluster registry under
// bcwan_chaos_byzantine_attacks_total{kind} so scenarios can assert the
// attack actually ran.
type Byzantine struct {
	c *Cluster
	// Gateway is the inner honest actor, operating on the cluster's
	// adversary wallet. The adversary uses it to produce valid offers;
	// the cheating happens in what it does (or refuses to do) next.
	Gateway *gateway.Gateway
	// Name is the transport identity raw dials are tagged with.
	Name string
	node int
	rng  *mrand.Rand
	// conns holds raw connections opened by Occupy/Spam so Close can
	// release the victim's peer slots.
	conns []p2p.Conn
}

// attack counts one adversarial act in the cluster registry.
func (b *Byzantine) attack(kind string) {
	b.c.Reg.Namespace("chaos").Counter("byzantine_attacks_total",
		"Adversarial acts performed by Byzantine actors, by kind.",
		telemetry.L("kind", kind)).Inc()
}

// ByzantineAttacks reads the cluster-wide count of one attack kind.
func ByzantineAttacks(c *Cluster, kind string) uint64 {
	return c.Reg.Namespace("chaos").Counter("byzantine_attacks_total",
		"Adversarial acts performed by Byzantine actors, by kind.",
		telemetry.L("kind", kind)).Value()
}

// Byzantine builds an adversarial gateway operating through node i's
// ledger on the adversary wallet. Its random stream is derived from the
// cluster seed but independent of every honest actor's, so adding an
// adversary to a scenario never perturbs honest behavior.
func (c *Cluster) Byzantine(i int, cfg gateway.Config) *Byzantine {
	seed := linkSeed(c.Opts.Seed, nodeName(i), "byzantine")
	g := gateway.New(cfg, c.AdversaryWallet, c.Node(i).Ledger(), c.Node(i).Directory(),
		mrand.New(mrand.NewSource(seed)))
	return &Byzantine{
		c:       c,
		Gateway: g,
		Name:    "byz-" + nodeName(i),
		node:    i,
		rng:     mrand.New(mrand.NewSource(linkSeed(seed, "byzantine", "faults"))),
	}
}

// HandleKeyRequest delegates to the honest actor: the sensor-facing
// half of the protocol is played straight so the offers verify.
func (b *Byzantine) HandleKeyRequest(f *lora.Frame) (*lora.Frame, error) {
	return b.Gateway.HandleKeyRequest(f)
}

// HandleData delegates to the honest actor and returns a well-formed,
// correctly signed delivery — the bait for every payment-level attack.
func (b *Byzantine) HandleData(f *lora.Frame) (*fairex.Delivery, string, error) {
	return b.Gateway.HandleData(f)
}

// WithholdClaim records the key-withholding attack: the adversary has a
// confirmed payment it could claim but never discloses eSk, betting the
// recipient forgets to refund. It is a bookkeeping call — the attack IS
// the absence of the claim.
func (b *Byzantine) WithholdClaim() {
	b.attack("withhold-key")
}

// ReplayDelivery returns a fresh copy of a previously sold delivery for
// a double-sell attempt: same ciphertext, same signature (both still
// valid — the offer really was signed by the sensor), hoping the
// recipient pays twice for one reading.
func (b *Byzantine) ReplayDelivery(d *fairex.Delivery) *fairex.Delivery {
	b.attack("replay")
	cp := *d
	return &cp
}

// BadChannelKey returns key bytes that will never verify against the
// delivery's ePk: the adversary countersigns the channel update (so the
// delta is committed) and then discloses junk.
func (b *Byzantine) BadChannelKey() []byte {
	b.attack("bad-channel-key")
	junk := make([]byte, 136)
	b.rng.Read(junk)
	return junk
}

// Occupy claims one peer slot on the victim by dialing it raw and
// introducing itself under the given fake identity. The connection
// filters everything: the adversary never forwards inv, headers or
// block traffic, so a victim whose slots are all Occupied is eclipsed.
// The returned connection is also tracked for Close.
func (b *Byzantine) Occupy(victim, identity string) (p2p.Conn, error) {
	conn, err := b.c.Net.TransportFor(identity).Dial(victim)
	if err != nil {
		return nil, fmt.Errorf("chaos: byzantine dial %s: %v", victim, err)
	}
	// An unknown message type registers the sender as a peer (the
	// gossip layer learns addresses from first contact) without
	// triggering any handler.
	if err := conn.Send(p2p.Message{Type: "byz-hello", From: identity}); err != nil {
		conn.Close()
		return nil, err
	}
	// Drain everything the victim sends and forward nothing — the
	// filtering half of the eclipse.
	go func() {
		for {
			if _, err := conn.Receive(); err != nil {
				return
			}
		}
	}()
	b.conns = append(b.conns, conn)
	b.attack("eclipse-occupy")
	return conn, nil
}

// Spam floods the victim with undecodable frames of a given gossip type
// from an identity the victim already knows. Payloads vary per frame so
// gossip dedup cannot absorb them; each one costs the sender
// misbehavior points at the victim. Send errors are swallowed — the
// victim banning us mid-flood closes the connection, which is the
// outcome the attack is probing for.
func (b *Byzantine) Spam(conn p2p.Conn, identity, msgType string, frames int) {
	for i := 0; i < frames; i++ {
		garbage := make([]byte, 16)
		b.rng.Read(garbage)
		if err := conn.Send(p2p.Message{Type: msgType, From: identity, Payload: garbage}); err != nil {
			break
		}
	}
	b.attack("spam")
}

// Close releases every raw connection the adversary holds open.
func (b *Byzantine) Close() {
	for _, conn := range b.conns {
		conn.Close()
	}
	b.conns = nil
}

// StartPrivateMine partitions the adversary's node away from the rest
// of the cluster so blocks it mines stay withheld.
func (b *Byzantine) StartPrivateMine() {
	rest := make([]string, 0, b.c.Opts.Nodes-1)
	for i := 0; i < b.c.Opts.Nodes; i++ {
		if i != b.node {
			rest = append(rest, nodeName(i))
		}
	}
	b.c.Net.Partition([]string{nodeName(b.node)}, rest)
	b.attack("private-mine")
}

// ReleasePrivateChain heals the partition, springing the withheld
// branch on the honest majority at once.
func (b *Byzantine) ReleasePrivateChain() {
	b.c.Net.Heal()
	b.attack("private-release")
}

// ForgeBinding builds and submits (on the adversary's node) a directory
// record claiming the victim's @R but pointing at the adversary's
// address. The carrying transaction is funded and signed by the
// adversary wallet, so it cannot prove control of @R — an authenticated
// directory must drop it.
func (b *Byzantine) ForgeBinding(victim [20]byte, netAddr string, fee uint64) (*chain.Tx, error) {
	b.attack("forge-binding")
	payload, err := registry.EncodeBinding(victim, netAddr)
	if err != nil {
		return nil, err
	}
	led := b.c.Node(b.node).Ledger()
	tx, err := b.c.AdversaryWallet.BuildDataPublish(led.UTXO(), payload, fee)
	if err != nil {
		return nil, fmt.Errorf("chaos: forge binding: %w", err)
	}
	if err := led.Submit(tx); err != nil {
		return nil, fmt.Errorf("chaos: submit forged binding: %w", err)
	}
	return tx, nil
}
