package chaos

import (
	"fmt"
	"io"
	"log"
	mrand "math/rand"
	"path/filepath"
	"time"

	"bcwan/internal/bccrypto"
	"bcwan/internal/chain"
	"bcwan/internal/daemon"
	"bcwan/internal/device"
	"bcwan/internal/gateway"
	"bcwan/internal/lora"
	"bcwan/internal/recipient"
	"bcwan/internal/registry"
	"bcwan/internal/telemetry"
	"bcwan/internal/wallet"
)

// Options configures a chaos cluster.
type Options struct {
	// Seed fixes every random decision — key material, fault draws,
	// sync nonces — so a scenario replays exactly.
	Seed int64
	// Nodes is the cluster size; node i listens on transport address
	// "n<i>".
	Nodes int
	// Miners lists the node indexes holding an authorized miner key.
	Miners []int
	// Dir is where each node persists its chain store (required).
	Dir string
	// FundRecipient is the genesis allocation of the recipient wallet
	// (defaults to 1,000,000).
	FundRecipient uint64
	// FundAdversary, when nonzero, allocates genesis funds to the
	// cluster's adversary wallet so Byzantine scenarios can publish
	// forged bindings and mine private branches that spend real coin.
	FundAdversary uint64
	// NoDial lists node indexes that do NOT auto-dial the rest of the
	// cluster on boot. An eclipse victim must start with empty peer
	// slots for the adversary to monopolize them.
	NoDial []int
	// PumpInterval is the pause after each gossip/mine round (defaults
	// to 10ms).
	PumpInterval time.Duration
	// DeferStart lists node indexes NOT booted by NewCluster; scenarios
	// start them later with Start, e.g. a gateway joining a mesh that
	// already has history to bootstrap from.
	DeferStart []int
	// NodeTweak, when set, may adjust each node's config just before it
	// boots (per-node prune depth, snapshot knobs, tamper hooks...).
	NodeTweak func(i int, cfg *daemon.NodeConfig)
	// Logger receives node logs (nil = silent).
	Logger *log.Logger
}

// Peer is one cluster member.
type Peer struct {
	Index int
	Name  string
	// DataDir is the node's persistence root; the incremental chain
	// store (append-only block log + periodic snapshot) lives under it.
	DataDir string
	Node    *daemon.Node
	Alive   bool
	// generation distinguishes restarts so a reborn node does not
	// replay the identical random stream (its sync nonces would be
	// suppressed by gossip dedup as already-seen).
	generation int
}

// Cluster is a multi-node BcWAN deployment over a fault-injecting
// in-memory network, with the exchange actors' wallets funded at
// genesis.
type Cluster struct {
	Opts    Options
	Net     *Net
	Reg     *telemetry.Registry
	Params  chain.Params
	Genesis *chain.Block
	// GenesisValue is the total value allocated at genesis, the base of
	// the conservation invariant.
	GenesisValue uint64

	RecipientWallet *wallet.Wallet
	GatewayWallet   *wallet.Wallet
	// AdversaryWallet is derived from its own seeded stream (not the
	// cluster rng) so adding an adversary never perturbs the random
	// draws of existing scenarios.
	AdversaryWallet *wallet.Wallet

	rng       *mrand.Rand
	minerKeys map[int]*bccrypto.ECKey
	minerPubs [][]byte
	peers     []*Peer
}

func nodeName(i int) string { return fmt.Sprintf("n%d", i) }

// NewCluster builds and starts a cluster of opts.Nodes daemons sharing
// one genesis.
func NewCluster(opts Options) (*Cluster, error) {
	if opts.Nodes < 1 {
		return nil, fmt.Errorf("chaos: need at least one node")
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("chaos: Options.Dir is required")
	}
	if opts.FundRecipient == 0 {
		opts.FundRecipient = 1_000_000
	}
	if opts.PumpInterval <= 0 {
		opts.PumpInterval = 10 * time.Millisecond
	}
	c := &Cluster{
		Opts:      opts,
		Net:       NewNet(opts.Seed),
		Reg:       telemetry.NewRegistry(),
		Params:    chain.DefaultParams(),
		rng:       mrand.New(mrand.NewSource(opts.Seed)),
		minerKeys: make(map[int]*bccrypto.ECKey),
	}
	c.Net.Instrument(c.Reg)

	var err error
	if c.RecipientWallet, err = wallet.New(c.rng); err != nil {
		return nil, fmt.Errorf("chaos: recipient wallet: %w", err)
	}
	if c.GatewayWallet, err = wallet.New(c.rng); err != nil {
		return nil, fmt.Errorf("chaos: gateway wallet: %w", err)
	}
	advRand := mrand.New(mrand.NewSource(linkSeed(opts.Seed, "adversary", "wallet")))
	if c.AdversaryWallet, err = wallet.New(advRand); err != nil {
		return nil, fmt.Errorf("chaos: adversary wallet: %w", err)
	}
	for _, idx := range opts.Miners {
		if idx < 0 || idx >= opts.Nodes {
			return nil, fmt.Errorf("chaos: miner index %d out of range", idx)
		}
		key, err := bccrypto.GenerateECKey(c.rng)
		if err != nil {
			return nil, fmt.Errorf("chaos: miner key: %w", err)
		}
		c.minerKeys[idx] = key
		c.minerPubs = append(c.minerPubs, key.PublicBytes())
	}

	alloc := map[[20]byte]uint64{c.RecipientWallet.PubKeyHash(): opts.FundRecipient}
	c.GenesisValue = opts.FundRecipient
	if opts.FundAdversary > 0 {
		alloc[c.AdversaryWallet.PubKeyHash()] = opts.FundAdversary
		c.GenesisValue += opts.FundAdversary
	}
	c.Genesis = chain.GenesisBlock(alloc)

	for i := 0; i < opts.Nodes; i++ {
		c.peers = append(c.peers, &Peer{
			Index:   i,
			Name:    nodeName(i),
			DataDir: filepath.Join(opts.Dir, nodeName(i)),
		})
	}
	deferred := make(map[int]bool, len(opts.DeferStart))
	for _, idx := range opts.DeferStart {
		if idx < 0 || idx >= opts.Nodes {
			c.Close()
			return nil, fmt.Errorf("chaos: defer-start index %d out of range", idx)
		}
		deferred[idx] = true
	}
	for i := range c.peers {
		if deferred[i] {
			continue
		}
		if _, err := c.startNode(i); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// nodeRandom derives a per-node, per-incarnation random stream from the
// cluster seed.
func (c *Cluster) nodeRandom(i, generation int) io.Reader {
	return mrand.New(mrand.NewSource(
		linkSeed(c.Opts.Seed, nodeName(i), fmt.Sprintf("random|%d", generation))))
}

// startNode boots peer i: fresh daemon, chain reloaded from its store,
// connections to every live peer, and a sync request for anything
// missed while down. It returns the number of blocks recovered from
// disk.
func (c *Cluster) startNode(i int) (int, error) {
	p := c.peers[i]
	cfg := daemon.NodeConfig{
		Genesis:      c.Genesis,
		Params:       c.Params,
		Miners:       c.minerPubs,
		ListenP2P:    p.Name,
		MinerKey:     c.minerKeys[i],
		MineInterval: time.Hour, // scenarios mine explicitly
		Transport:    c.Net.TransportFor(p.Name),
		Random:       c.nodeRandom(i, p.generation),
		Logger:       c.Opts.Logger,
		// Re-request dropped relay objects at the cluster's time scale
		// (10 ms pumps, ~3 ms links). At the 500 ms default a laggard
		// stalls half a second per faulted block body while the pump
		// keeps mining, and catch-up barely outruns block production.
		RelayRequestTimeout: 50 * time.Millisecond,
		// Drive the sync state machine at the same time scale; the pump
		// also kicks it every round through RequestSync.
		SyncRetryInterval: 20 * time.Millisecond,
		// Compact aggressively so restart scenarios exercise the
		// snapshot + log-tail recovery path, not just the log.
		StoreCompactEvery: 4,
	}
	if c.Opts.NodeTweak != nil {
		c.Opts.NodeTweak(i, &cfg)
	}
	node, err := daemon.NewNode(cfg)
	if err != nil {
		return 0, fmt.Errorf("chaos: start %s: %w", p.Name, err)
	}
	// The store appends every best-branch connect durably, so a crash at
	// any point restarts from the last fsync'd block.
	loaded, err := node.Open(p.DataDir)
	if err != nil {
		node.Close()
		return 0, fmt.Errorf("chaos: reload %s: %w", p.Name, err)
	}
	noDial := false
	for _, idx := range c.Opts.NoDial {
		if idx == i {
			noDial = true
		}
	}
	if !noDial {
		for _, other := range c.peers {
			if other != p && other.Alive {
				if err := node.Connect(other.Name); err != nil && c.Opts.Logger != nil {
					c.Opts.Logger.Printf("chaos: %s dial %s: %v", p.Name, other.Name, err)
				}
			}
		}
	}
	node.RequestSync()
	p.Node = node
	p.Alive = true
	return loaded, nil
}

// Peer returns cluster member i.
func (c *Cluster) Peer(i int) *Peer { return c.peers[i] }

// Node returns the daemon of cluster member i.
func (c *Cluster) Node(i int) *daemon.Node { return c.peers[i].Node }

// Crash kills node i without flushing anything: in-memory mempool and
// connections are lost, only the blocks already saved by the
// subscriber survive on disk.
func (c *Cluster) Crash(i int) error {
	p := c.peers[i]
	if !p.Alive {
		return nil
	}
	p.Alive = false
	return p.Node.Close()
}

// Restart reboots a crashed node from its on-disk store and returns
// how many blocks it recovered.
func (c *Cluster) Restart(i int) (int, error) {
	p := c.peers[i]
	if p.Alive {
		return 0, fmt.Errorf("chaos: %s is already running", p.Name)
	}
	p.generation++
	return c.startNode(i)
}

// Start boots a node deferred at cluster construction (DeferStart).
func (c *Cluster) Start(i int) (int, error) {
	p := c.peers[i]
	if p.Alive {
		return 0, fmt.Errorf("chaos: %s is already running", p.Name)
	}
	return c.startNode(i)
}

// Close stops every live node and drains in-flight deliveries.
func (c *Cluster) Close() {
	for _, p := range c.peers {
		if p.Alive {
			p.Alive = false
			p.Node.Close()
		}
	}
	c.Net.Wait()
}

// PumpRound drives one anti-entropy round: every live node re-gossips
// its pooled transactions and requests missing blocks, the given
// miners each mint one block, and the round then idles briefly so the
// gossip fans out.
func (c *Cluster) PumpRound(miners ...int) {
	for _, p := range c.peers {
		if p.Alive {
			p.Node.RebroadcastPending()
			p.Node.RequestSync()
		}
	}
	for _, i := range miners {
		if p := c.peers[i]; p.Alive {
			if _, err := p.Node.MineNow(); err != nil && c.Opts.Logger != nil {
				c.Opts.Logger.Printf("chaos: mine on %s: %v", p.Name, err)
			}
		}
	}
	time.Sleep(c.Opts.PumpInterval)
}

// WaitFor pumps rounds (mining on the given miners) until cond holds
// or the timeout expires.
func (c *Cluster) WaitFor(timeout time.Duration, miners []int, cond func() bool) error {
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: condition not reached within %s", timeout)
		}
		c.PumpRound(miners...)
	}
}

// Converged reports whether every live node agrees on the best tip.
func (c *Cluster) Converged() bool {
	var tip chain.Hash
	first := true
	for _, p := range c.peers {
		if !p.Alive {
			continue
		}
		id := p.Node.Chain().Tip().ID()
		if first {
			tip, first = id, false
		} else if id != tip {
			return false
		}
	}
	return true
}

// Gateway builds a gateway actor operating through node i's ledger.
// The actor holds the node's ledger pointer, so the node must stay up
// for the actor's lifetime (crash scenarios restart non-actor nodes).
func (c *Cluster) Gateway(i int, cfg gateway.Config) *gateway.Gateway {
	g := gateway.New(cfg, c.GatewayWallet, c.Node(i).Ledger(), c.Node(i).Directory(),
		mrand.New(mrand.NewSource(linkSeed(c.Opts.Seed, nodeName(i), "gateway"))))
	g.Instrument(c.Reg)
	return g
}

// Recipient builds a recipient actor operating through node i's ledger.
func (c *Cluster) Recipient(i int, cfg recipient.Config) *recipient.Recipient {
	return recipient.New(cfg, c.RecipientWallet, c.Node(i).Ledger(),
		mrand.New(mrand.NewSource(linkSeed(c.Opts.Seed, nodeName(i), "recipient"))))
}

// PublishBinding publishes the @R → netAddr directory binding from node
// i (the recipient's node) and returns the binding transaction.
func (c *Cluster) PublishBinding(i int, netAddr string) (*chain.Tx, error) {
	led := c.Node(i).Ledger()
	tx, err := registry.BuildPublish(c.RecipientWallet, led.UTXO(), netAddr, 1)
	if err != nil {
		return nil, fmt.Errorf("chaos: build binding: %w", err)
	}
	if err := led.Submit(tx); err != nil {
		return nil, fmt.Errorf("chaos: submit binding: %w", err)
	}
	return tx, nil
}

// Sensor is a provisioned end device plus the secrets its recipient
// shares with it.
type Sensor struct {
	Dev       *device.Device
	SharedKey []byte
	NodeKey   *bccrypto.RSA512PrivateKey
}

// NewSensor provisions a device and registers its keys with the
// recipient actor.
func (c *Cluster) NewSensor(eui lora.DevEUI, r *recipient.Recipient) (*Sensor, error) {
	sharedKey := make([]byte, bccrypto.AESKeySize)
	if _, err := io.ReadFull(c.rng, sharedKey); err != nil {
		return nil, err
	}
	nodeKey, err := bccrypto.GenerateRSA512(c.rng)
	if err != nil {
		return nil, fmt.Errorf("chaos: sensor key: %w", err)
	}
	dev, err := device.New(device.Provisioning{
		DevEUI:        eui,
		SharedKey:     sharedKey,
		SigningKey:    nodeKey,
		RecipientAddr: c.RecipientWallet.PubKeyHash(),
	}, c.rng)
	if err != nil {
		return nil, err
	}
	r.Provision(eui, recipient.DeviceInfo{SharedKey: sharedKey, NodePub: nodeKey.Public()})
	return &Sensor{Dev: dev, SharedKey: sharedKey, NodeKey: nodeKey}, nil
}
