// Package chaos is a deterministic fault-injection harness for BcWAN's
// federated setting: it wraps the in-memory p2p transport with seeded
// message drop/delay/reorder/duplication, network partitions with
// explicit heal, and node crash + restart from the on-disk store, then
// checks the end-to-end safety invariants the paper depends on (UTXO
// conservation, chain convergence, fair-exchange atomicity, no double
// spend). Every fault decision is drawn from a per-link RNG derived
// from one scenario seed, so a failing run is replayable from its seed
// alone.
package chaos

import (
	"hash/fnv"
	mrand "math/rand"
	"sync"
	"time"

	"bcwan/internal/netsim"
	"bcwan/internal/p2p"
	"bcwan/internal/simtime"
	"bcwan/internal/telemetry"
)

// Faults configures the failure modes of one directed link. Rates are
// probabilities in [0, 1]; a zero value injects nothing.
type Faults struct {
	// Drop is the probability a message is silently lost.
	Drop float64
	// Duplicate is the probability a message is delivered twice.
	Duplicate float64
	// Reorder is the probability a message is held back long enough for
	// later traffic to overtake it.
	Reorder float64
	// ReorderDelay is how long reordered messages are held
	// (defaultReorderDelay when zero).
	ReorderDelay time.Duration
	// Delay, when its median is non-zero, adds a lognormal latency to
	// every delivery (the netsim planetary-link model).
	Delay netsim.LinkDist
}

const defaultReorderDelay = 40 * time.Millisecond

// Any reports whether any fault is configured.
func (f Faults) Any() bool {
	return f.Drop > 0 || f.Duplicate > 0 || f.Reorder > 0 || f.Delay.MedianMS > 0
}

type linkKey struct{ from, to string }

// Net is a fault-injecting overlay on a p2p.MemTransport. Node names
// double as transport addresses; faults apply per directed link on the
// send path, so the receiver observes losses, duplicates and
// inversions exactly as a lossy WAN would deliver them.
type Net struct {
	inner *p2p.MemTransport
	clock simtime.Clock
	seed  int64

	mu          sync.Mutex
	def         Faults
	links       map[linkKey]Faults
	group       map[string]int
	partitioned bool
	metrics     *netMetrics

	// wg tracks in-flight delayed deliveries so Wait can drain them.
	wg sync.WaitGroup
}

// NewNet creates a fault-free network; configure faults and partitions
// before or during a scenario. The seed fixes every future fault
// decision.
func NewNet(seed int64) *Net {
	return &Net{
		inner: p2p.NewMemTransport(),
		clock: simtime.NewReal(),
		seed:  seed,
		links: make(map[linkKey]Faults),
		group: make(map[string]int),
	}
}

// SetClock replaces the delay clock (tests use simtime.Sim). Call
// before any traffic flows.
func (n *Net) SetClock(c simtime.Clock) { n.clock = c }

// Instrument registers fault counters in reg so injected faults are
// observable alongside the node metrics. Call before traffic flows; a
// nil registry is a no-op.
func (n *Net) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.metrics = newNetMetrics(reg)
}

// SetDefaultFaults applies f to every link without an override.
func (n *Net) SetDefaultFaults(f Faults) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.def = f
}

// SetLinkFaults overrides the faults of the directed link from → to.
func (n *Net) SetLinkFaults(from, to string, f Faults) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[linkKey{from, to}] = f
}

// Partition splits the network into the given groups: messages between
// nodes of different groups are dropped until Heal. Nodes not listed
// in any group keep full connectivity.
func (n *Net) Partition(groups ...[]string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.group = make(map[string]int)
	for i, g := range groups {
		for _, name := range g {
			n.group[name] = i
		}
	}
	n.partitioned = true
}

// Heal removes the partition.
func (n *Net) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitioned = false
	n.group = make(map[string]int)
}

// Partitioned reports whether a partition is active.
func (n *Net) Partitioned() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.partitioned
}

// Wait blocks until every delayed in-flight delivery has been handed
// to the inner transport (delivery into a closed connection is loss,
// as on a real network).
func (n *Net) Wait() { n.wg.Wait() }

// TransportFor returns the transport a node named name must use. The
// name identifies the local end of every link the node participates
// in, which is what per-link fault configuration keys on.
func (n *Net) TransportFor(name string) p2p.Transport {
	return &chaosTransport{net: n, local: name}
}

// verdict is one fault decision for one message.
type verdict struct {
	drop        bool
	partitioned bool
	// delays holds one entry per delivered copy (1 normally, 2 when
	// duplicated); zero means deliver inline.
	delays []time.Duration
}

// decide draws the fault outcome for one message on the from → to
// link. The caller owns rng's lock.
func (n *Net) decide(from, to string, rng *mrand.Rand) verdict {
	n.mu.Lock()
	f, ok := n.links[linkKey{from, to}]
	if !ok {
		f = n.def
	}
	blocked := false
	if n.partitioned {
		gf, okf := n.group[from]
		gt, okt := n.group[to]
		blocked = okf && okt && gf != gt
	}
	m := n.metrics
	n.mu.Unlock()

	m.sent()
	if blocked {
		m.fault("partition")
		return verdict{drop: true, partitioned: true}
	}
	if f.Drop > 0 && rng.Float64() < f.Drop {
		m.fault("drop")
		return verdict{drop: true}
	}
	copies := 1
	if f.Duplicate > 0 && rng.Float64() < f.Duplicate {
		copies = 2
		m.fault("duplicate")
	}
	v := verdict{delays: make([]time.Duration, copies)}
	for i := range v.delays {
		var d time.Duration
		if f.Delay.MedianMS > 0 {
			d = f.Delay.Sample(rng)
			m.fault("delay")
		}
		if f.Reorder > 0 && rng.Float64() < f.Reorder {
			hold := f.ReorderDelay
			if hold <= 0 {
				hold = defaultReorderDelay
			}
			d += hold
			m.fault("reorder")
		}
		v.delays[i] = d
	}
	return v
}

// linkSeed derives a per-link RNG seed from the scenario seed and the
// two endpoint names.
func linkSeed(seed int64, from, to string) int64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(seed >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(from))
	h.Write([]byte{0})
	h.Write([]byte(to))
	return int64(h.Sum64())
}

// chaosTransport tags connections with the local node name.
type chaosTransport struct {
	net   *Net
	local string
}

func (t *chaosTransport) Listen(addr string) (p2p.Listener, error) {
	l, err := t.net.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &chaosListener{net: t.net, local: t.local, inner: l}, nil
}

func (t *chaosTransport) Dial(addr string) (p2p.Conn, error) {
	c, err := t.net.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return newChaosConn(t.net, t.local, addr, c), nil
}

type chaosListener struct {
	net   *Net
	local string
	inner p2p.Listener
}

func (l *chaosListener) Accept() (p2p.Conn, error) {
	c, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	// The remote name is unknown until its first message arrives; the
	// gossip protocol never sends on an accepted conn before then.
	return newChaosConn(l.net, l.local, "", c), nil
}

func (l *chaosListener) Close() error { return l.inner.Close() }
func (l *chaosListener) Addr() string { return l.inner.Addr() }

// chaosConn injects faults on the send path of one connection.
type chaosConn struct {
	net   *Net
	local string
	inner p2p.Conn

	mu     sync.Mutex
	remote string
	rng    *mrand.Rand
}

func newChaosConn(net *Net, local, remote string, inner p2p.Conn) *chaosConn {
	return &chaosConn{net: net, local: local, remote: remote, inner: inner}
}

func (c *chaosConn) Send(m p2p.Message) error {
	c.mu.Lock()
	if c.rng == nil {
		c.rng = mrand.New(mrand.NewSource(linkSeed(c.net.seed, c.local, c.remote)))
	}
	v := c.net.decide(c.local, c.remote, c.rng)
	c.mu.Unlock()
	if v.drop {
		return nil // loss and partition are indistinguishable from slowness
	}
	for _, d := range v.delays {
		if d <= 0 {
			if err := c.inner.Send(m); err != nil {
				return err
			}
			continue
		}
		c.net.wg.Add(1)
		go func(d time.Duration) {
			defer c.net.wg.Done()
			c.net.clock.Sleep(d)
			// A late copy arriving at a closed conn is just loss.
			_ = c.inner.Send(m)
		}(d)
	}
	return nil
}

func (c *chaosConn) Receive() (p2p.Message, error) {
	m, err := c.inner.Receive()
	if err == nil && m.From != "" {
		c.mu.Lock()
		if c.remote == "" {
			c.remote = m.From
		}
		c.mu.Unlock()
	}
	return m, err
}

func (c *chaosConn) Close() error { return c.inner.Close() }

// netMetrics counts injected faults; nil-safe so an uninstrumented Net
// costs nothing.
type netMetrics struct {
	messages *telemetry.Counter
	faults   map[string]*telemetry.Counter
}

func newNetMetrics(reg *telemetry.Registry) *netMetrics {
	ns := reg.Namespace("chaos")
	m := &netMetrics{
		messages: ns.Counter("messages_total", "Messages offered to the fault layer."),
		faults:   make(map[string]*telemetry.Counter),
	}
	for _, kind := range []string{"drop", "duplicate", "delay", "reorder", "partition"} {
		m.faults[kind] = ns.Counter("faults_injected_total",
			"Faults injected by kind.", telemetry.L("kind", kind))
	}
	return m
}

func (m *netMetrics) sent() {
	if m != nil {
		m.messages.Inc()
	}
}

func (m *netMetrics) fault(kind string) {
	if m != nil {
		m.faults[kind].Inc()
	}
}
