package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

// goldenRegistry builds a registry with one of each metric kind,
// including a labeled family, so the encoder tests pin the exact wire
// formats.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("bcwan_chain_blocks_connected_total", "Blocks connected to the best branch.").Add(3)
	r.Counter("bcwan_p2p_messages_in_total", "Gossip messages received.", L("type", "tx")).Add(7)
	r.Counter("bcwan_p2p_messages_in_total", "Gossip messages received.", L("type", "block")).Add(2)
	r.Gauge("bcwan_chain_utxo_size", "Unspent outputs in the best-branch set.").Set(42)
	h := r.Histogram("bcwan_rpc_request_seconds", "RPC dispatch latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	return r
}

const goldenPrometheus = `# HELP bcwan_chain_blocks_connected_total Blocks connected to the best branch.
# TYPE bcwan_chain_blocks_connected_total counter
bcwan_chain_blocks_connected_total 3
# HELP bcwan_chain_utxo_size Unspent outputs in the best-branch set.
# TYPE bcwan_chain_utxo_size gauge
bcwan_chain_utxo_size 42
# HELP bcwan_p2p_messages_in_total Gossip messages received.
# TYPE bcwan_p2p_messages_in_total counter
bcwan_p2p_messages_in_total{type="block"} 2
bcwan_p2p_messages_in_total{type="tx"} 7
# HELP bcwan_rpc_request_seconds RPC dispatch latency.
# TYPE bcwan_rpc_request_seconds histogram
bcwan_rpc_request_seconds_bucket{le="0.01"} 1
bcwan_rpc_request_seconds_bucket{le="0.1"} 2
bcwan_rpc_request_seconds_bucket{le="1"} 3
bcwan_rpc_request_seconds_bucket{le="+Inf"} 4
bcwan_rpc_request_seconds_sum 5.555
bcwan_rpc_request_seconds_count 4
`

func TestPrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, goldenRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if b.String() != goldenPrometheus {
		t.Fatalf("prometheus text mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), goldenPrometheus)
	}
}

func TestJSONGolden(t *testing.T) {
	data, err := json.Marshal(goldenRegistry().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	const want = `[{"name":"bcwan_chain_blocks_connected_total","type":"counter","help":"Blocks connected to the best branch.","value":3},` +
		`{"name":"bcwan_chain_utxo_size","type":"gauge","help":"Unspent outputs in the best-branch set.","value":42},` +
		`{"name":"bcwan_p2p_messages_in_total","type":"counter","help":"Gossip messages received.","labels":{"type":"block"},"value":2},` +
		`{"name":"bcwan_p2p_messages_in_total","type":"counter","help":"Gossip messages received.","labels":{"type":"tx"},"value":7},` +
		`{"name":"bcwan_rpc_request_seconds","type":"histogram","help":"RPC dispatch latency.","value":5.555,` +
		`"histogram":{"buckets":[{"le":"0.01","count":1},{"le":"0.1","count":2},{"le":"1","count":3},{"le":"+Inf","count":4}],"sum":5.555,"count":4}}]`
	if string(data) != want {
		t.Fatalf("json mismatch:\n--- got ---\n%s\n--- want ---\n%s", data, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("bcwan_test_esc_total", "line1\nline2", L("reason", `say "hi"\now`)).Inc()
	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP bcwan_test_esc_total line1\nline2`) {
		t.Fatalf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `reason="say \"hi\"\\now"`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
}
