package telemetry

import (
	"bytes"
	"log"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("bcwan_test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("bcwan_test_size", "size")
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
}

func TestRegistryCreateOrGet(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("bcwan_test_x_total", "x", L("k", "v"))
	b := r.Counter("bcwan_test_x_total", "x", L("k", "v"))
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	other := r.Counter("bcwan_test_x_total", "x", L("k", "w"))
	if a == other {
		t.Fatal("distinct label values shared a counter")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("bcwan_test_y_total", "y")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("bcwan_test_y_total", "y")
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	ns := r.Namespace("chain")
	c := ns.Counter("x_total", "x")
	g := ns.Gauge("y", "y")
	h := ns.Histogram("z_seconds", "z", nil)
	c.Inc()
	g.Set(3)
	h.Observe(1)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics retained values")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot not nil")
	}
	var l *SnapshotLogger
	l.Stop() // must not panic
}

func TestNamespacePrefixes(t *testing.T) {
	r := NewRegistry()
	r.Namespace("chain").Counter("blocks_total", "blocks")
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Name != "bcwan_chain_blocks_total" {
		t.Fatalf("snapshot = %+v, want bcwan_chain_blocks_total", snap)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("bcwan_test_lat_seconds", "lat", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Histogram == nil {
		t.Fatalf("snapshot = %+v", snap)
	}
	hd := snap[0].Histogram
	// 0.05 and 0.1 (inclusive bound) fall in le=0.1; 0.5 in le=1; 2 in
	// le=10; 100 in +Inf. Buckets are cumulative.
	wantLE := []string{"0.1", "1", "10", "+Inf"}
	wantCum := []uint64{2, 3, 4, 5}
	for i, b := range hd.Buckets {
		if b.LE != wantLE[i] || b.Count != wantCum[i] {
			t.Fatalf("bucket %d = {%s %d}, want {%s %d}", i, b.LE, b.Count, wantLE[i], wantCum[i])
		}
	}
	if hd.Count != 5 {
		t.Fatalf("count = %d, want 5", hd.Count)
	}
	if hd.Sum != 102.65 {
		t.Fatalf("sum = %v, want 102.65", hd.Sum)
	}
}

// TestConcurrentHammering drives every metric type from many goroutines
// under -race and checks the totals are exact: the lock-free paths must
// not drop updates.
func TestConcurrentHammering(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 2000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			// Exercise create-or-get concurrently too.
			c := r.Counter("bcwan_test_hammer_total", "hammer")
			g := r.Gauge("bcwan_test_hammer_size", "hammer")
			h := r.Histogram("bcwan_test_hammer_seconds", "hammer", []float64{0.5})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Inc()
				h.Observe(0.25)
				h.Observe(0.75)
			}
		}()
	}
	wg.Wait()

	const n = workers * perWorker
	if got := r.Counter("bcwan_test_hammer_total", "hammer").Value(); got != n {
		t.Fatalf("counter = %d, want %d", got, n)
	}
	if got := r.Gauge("bcwan_test_hammer_size", "hammer").Value(); got != n {
		t.Fatalf("gauge = %d, want %d", got, n)
	}
	h := r.Histogram("bcwan_test_hammer_seconds", "hammer", []float64{0.5})
	if h.Count() != 2*n {
		t.Fatalf("histogram count = %d, want %d", h.Count(), 2*n)
	}
	if want := float64(n)*0.25 + float64(n)*0.75; h.Sum() != want {
		t.Fatalf("histogram sum = %v, want %v", h.Sum(), want)
	}
	snap := r.Snapshot()
	for _, m := range snap {
		if m.Histogram != nil {
			if m.Histogram.Buckets[0].Count != n || m.Histogram.Buckets[1].Count != 2*n {
				t.Fatalf("buckets = %+v", m.Histogram.Buckets)
			}
		}
	}
}

// TestSnapshotWhileWriting takes snapshots concurrently with updates;
// the invariant is that cumulative bucket counts never decrease and the
// +Inf bucket equals the reported count.
func TestSnapshotWhileWriting(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("bcwan_test_live_seconds", "live", []float64{1, 2})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.Observe(0.5)
				h.Observe(1.5)
				h.Observe(3)
			}
		}
	}()
	var prev uint64
	for i := 0; i < 200; i++ {
		snap := r.Snapshot()
		hd := snap[0].Histogram
		last := hd.Buckets[len(hd.Buckets)-1]
		if last.LE != "+Inf" || last.Count != hd.Count {
			t.Fatalf("+Inf bucket %d != count %d", last.Count, hd.Count)
		}
		for j := 1; j < len(hd.Buckets); j++ {
			if hd.Buckets[j].Count < hd.Buckets[j-1].Count {
				t.Fatalf("buckets not cumulative: %+v", hd.Buckets)
			}
		}
		if hd.Count < prev {
			t.Fatalf("count went backwards: %d -> %d", prev, hd.Count)
		}
		prev = hd.Count
	}
	close(stop)
	wg.Wait()
}

func TestSnapshotLoggerEmitsAndStops(t *testing.T) {
	r := NewRegistry()
	r.Counter("bcwan_test_logged_total", "logged").Add(9)
	var buf bytes.Buffer
	var mu sync.Mutex
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	l := StartSnapshotLogger(r, log.New(w, "", 0), 5*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		s := buf.String()
		mu.Unlock()
		if strings.Contains(s, "bcwan_test_logged_total") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("logger never emitted a snapshot")
		}
		time.Sleep(time.Millisecond)
	}
	l.Stop()
	l.Stop() // idempotent
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
