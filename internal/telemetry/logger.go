package telemetry

import (
	"encoding/json"
	"log"
	"sync"
	"time"
)

// SnapshotLogger periodically logs a registry snapshot as one compact
// JSON line, giving headless deployments a metrics trail without a
// scraper. Zero-valued series are elided to keep lines short.
type SnapshotLogger struct {
	reg      *Registry
	logger   *log.Logger
	interval time.Duration

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// StartSnapshotLogger begins logging every interval. It returns nil
// (a no-op logger is not started) when the registry or logger is nil or
// the interval is not positive.
func StartSnapshotLogger(reg *Registry, logger *log.Logger, interval time.Duration) *SnapshotLogger {
	if reg == nil || logger == nil || interval <= 0 {
		return nil
	}
	l := &SnapshotLogger{
		reg:      reg,
		logger:   logger,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go l.loop()
	return l
}

// Stop halts the logger and waits for its goroutine. Safe on nil and
// safe to call twice.
func (l *SnapshotLogger) Stop() {
	if l == nil {
		return
	}
	l.stopOnce.Do(func() { close(l.stop) })
	<-l.done
}

func (l *SnapshotLogger) loop() {
	defer close(l.done)
	ticker := time.NewTicker(l.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			l.logOnce()
		case <-l.stop:
			return
		}
	}
}

func (l *SnapshotLogger) logOnce() {
	snap := l.reg.Snapshot()
	active := make([]Metric, 0, len(snap))
	for _, m := range snap {
		if m.Value != 0 || (m.Histogram != nil && m.Histogram.Count > 0) {
			active = append(active, m)
		}
	}
	if len(active) == 0 {
		return
	}
	data, err := json.Marshal(active)
	if err != nil {
		l.logger.Printf("telemetry: snapshot marshal: %v", err)
		return
	}
	l.logger.Printf("telemetry %s", data)
}
