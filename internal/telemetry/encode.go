package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Metric is one snapshotted series. It marshals directly to the JSON
// shape the getmetrics RPC returns; the Prometheus encoder renders the
// same struct as text exposition format, so the two endpoints cannot
// drift apart.
type Metric struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Help   string            `json:"help,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value is the counter/gauge value; for histograms it mirrors Sum.
	Value     float64        `json:"value"`
	Histogram *HistogramData `json:"histogram,omitempty"`
}

// HistogramData is the snapshot of one histogram.
type HistogramData struct {
	// Buckets are cumulative counts per upper bound, ending at +Inf.
	Buckets []Bucket `json:"buckets"`
	Sum     float64  `json:"sum"`
	Count   uint64   `json:"count"`
}

// Bucket is one cumulative histogram bucket. LE is the upper bound
// rendered as a string ("0.005", "+Inf") so the JSON form can carry the
// infinity bucket.
type Bucket struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4). Series sharing a name form one family and get
// a single HELP/TYPE header; the snapshot's sort order guarantees they
// are adjacent.
func WritePrometheus(w io.Writer, snapshot []Metric) error {
	prevName := ""
	for i := range snapshot {
		m := &snapshot[i]
		if m.Name != prevName {
			if m.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, escapeHelp(m.Help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Type); err != nil {
				return err
			}
			prevName = m.Name
		}
		if err := writeSeries(w, m); err != nil {
			return err
		}
	}
	return nil
}

func writeSeries(w io.Writer, m *Metric) error {
	switch m.Type {
	case KindHistogram:
		for _, b := range m.Histogram.Buckets {
			labels := renderLabels(m.Labels, L("le", b.LE))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, labels, b.Count); err != nil {
				return err
			}
		}
		labels := renderLabels(m.Labels)
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.Name, labels, formatFloat(m.Histogram.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name, labels, m.Histogram.Count)
		return err
	default:
		_, err := fmt.Fprintf(w, "%s%s %s\n", m.Name, renderLabels(m.Labels), formatFloat(m.Value))
		return err
	}
}

// renderLabels formats a label set (plus any extra labels) as
// {k="v",...}, or "" when empty. Keys are emitted in sorted order to
// keep output deterministic.
func renderLabels(labels map[string]string, extra ...Label) string {
	if len(labels) == 0 && len(extra) == 0 {
		return ""
	}
	pairs := make([]Label, 0, len(labels)+len(extra))
	for k, v := range labels {
		pairs = append(pairs, Label{Key: k, Value: v})
	}
	pairs = sortedLabels(pairs)
	pairs = append(pairs, extra...)
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the way Prometheus clients expect:
// shortest round-trip representation, integers without an exponent.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
