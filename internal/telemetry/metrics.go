// Package telemetry is a dependency-free metrics subsystem for the
// BcWAN node: atomic Counter, Gauge and fixed-bucket Histogram types
// with a lock-free hot path, a labeled Registry with namespaced
// registration and point-in-time snapshots, and Prometheus-text and
// JSON encoders for exposition over the RPC server.
//
// Every metric type is nil-safe: methods on a nil *Counter, *Gauge or
// *Histogram are no-ops, and a nil *Registry (or *Namespace) hands out
// nil metrics. Uninstrumented components therefore pay only a nil check
// per operation, which keeps the registry-nil baseline of the
// block-connect benchmark honest.
//
// Naming convention: bcwan_<pkg>_<name>, with counters suffixed
// _total and histograms of durations suffixed _seconds (the Prometheus
// idiom). Registry.Namespace(pkg) applies the prefix for you.
package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is
// ready to use; a nil *Counter discards all updates.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an integer value that can go up and down (sizes, peer
// counts, in-flight requests). The zero value is ready to use; a nil
// *Gauge discards all updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets. Buckets are upper
// bounds (inclusive), sorted ascending; an implicit +Inf bucket catches
// everything above the last bound. Observations are lock-free: a bucket
// increment, a count increment and a CAS loop folding the value into
// the sum. A nil *Histogram discards all observations.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// newHistogram builds a histogram over the given bucket bounds. The
// caller (Registry) has already validated and copied the bounds.
func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, upd) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// DurationBuckets is the default bucket layout for operation latencies:
// 10µs to 10s, roughly logarithmic. Block connect, mempool admission
// and RPC dispatch all land inside this span on commodity hardware.
var DurationBuckets = []float64{
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// SizeBuckets is the default bucket layout for byte sizes: 64 B to
// 4 MiB in powers of four, bracketing LoRa frames up to full blocks.
var SizeBuckets = []float64{
	64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304,
}
