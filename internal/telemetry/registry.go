package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Label is one name=value metric dimension. Labels let a single family
// (e.g. bcwan_p2p_messages_in_total) fan out per message type, reject
// reason or error code without minting a new metric name per variant.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metric kind tags for snapshots and encoders.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// metric is one registered series: a name, its kind and help text, an
// optional sorted label set, and exactly one live value holder.
type metric struct {
	name   string
	kind   string
	help   string
	labels []Label

	counter   *Counter
	gauge     *Gauge
	histogram *Histogram
}

// Registry holds a node's metrics. Registration (Counter, Gauge,
// Histogram) is create-or-get: the first call with a given name+labels
// creates the series, subsequent calls return the same one — handlers
// can look series up per event without tracking pointers. A nil
// *Registry hands out nil metrics, so instrumentation can be threaded
// unconditionally and disabled by passing nil.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// Counter registers (or returns the existing) counter with the given
// name and label set.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.lookup(KindCounter, name, help, nil, labels)
	if m == nil {
		return nil
	}
	return m.counter
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.lookup(KindGauge, name, help, nil, labels)
	if m == nil {
		return nil
	}
	return m.gauge
}

// Histogram registers (or returns the existing) histogram over the
// given bucket upper bounds (nil or empty defaults to DurationBuckets).
// Bounds must be sorted ascending; the +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	m := r.lookup(KindHistogram, name, help, buckets, labels)
	if m == nil {
		return nil
	}
	return m.histogram
}

// Namespace returns a registration helper that prefixes every metric
// name with "bcwan_<pkg>_", the repository-wide naming convention.
func (r *Registry) Namespace(pkg string) *Namespace {
	if r == nil {
		return nil
	}
	return &Namespace{r: r, prefix: "bcwan_" + pkg + "_"}
}

// lookup implements create-or-get under a read-mostly lock. The fast
// path (series exists) takes only the read lock.
func (r *Registry) lookup(kind, name, help string, buckets []float64, labels []Label) *metric {
	if r == nil {
		return nil
	}
	validateName(name)
	labels = sortedLabels(labels)
	key := seriesKey(name, labels)

	r.mu.RLock()
	m, ok := r.metrics[key]
	r.mu.RUnlock()
	if ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: %s already registered as %s, requested %s", name, m.kind, kind))
		}
		return m
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: %s already registered as %s, requested %s", name, m.kind, kind))
		}
		return m
	}
	m = &metric{name: name, kind: kind, help: help, labels: labels}
	switch kind {
	case KindCounter:
		m.counter = &Counter{}
	case KindGauge:
		m.gauge = &Gauge{}
	case KindHistogram:
		if len(buckets) == 0 {
			buckets = DurationBuckets
		}
		bounds := make([]float64, len(buckets))
		copy(bounds, buckets)
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("telemetry: %s buckets not strictly ascending", name))
			}
		}
		m.histogram = newHistogram(bounds)
	}
	r.metrics[key] = m
	return m
}

// Snapshot returns a point-in-time copy of every registered series,
// sorted by name then label signature — the deterministic order both
// encoders rely on.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	r.mu.RUnlock()

	sort.Slice(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return seriesKey("", ms[i].labels) < seriesKey("", ms[j].labels)
	})

	out := make([]Metric, 0, len(ms))
	for _, m := range ms {
		out = append(out, m.snapshot())
	}
	return out
}

// snapshot reads one series into its exported form.
func (m *metric) snapshot() Metric {
	s := Metric{Name: m.name, Type: m.kind, Help: m.help}
	if len(m.labels) > 0 {
		s.Labels = make(map[string]string, len(m.labels))
		for _, l := range m.labels {
			s.Labels[l.Key] = l.Value
		}
	}
	switch m.kind {
	case KindCounter:
		s.Value = float64(m.counter.Value())
	case KindGauge:
		s.Value = float64(m.gauge.Value())
	case KindHistogram:
		h := m.histogram
		data := &HistogramData{
			Sum:     h.Sum(),
			Buckets: make([]Bucket, 0, len(h.counts)),
		}
		var cum uint64
		for i := range h.counts {
			cum += h.counts[i].Load()
			le := "+Inf"
			if i < len(h.bounds) {
				le = formatFloat(h.bounds[i])
			}
			data.Buckets = append(data.Buckets, Bucket{LE: le, Count: cum})
		}
		// Report the cumulative total as the count so bucket sums and
		// the count agree even if a concurrent Observe lands between
		// the bucket reads and a separate counter read.
		data.Count = cum
		s.Value = data.Sum
		s.Histogram = data
	}
	return s
}

// Namespace prefixes registrations with the package convention; see
// Registry.Namespace. A nil *Namespace hands out nil metrics.
type Namespace struct {
	r      *Registry
	prefix string
}

// Counter registers a counter named prefix+name.
func (ns *Namespace) Counter(name, help string, labels ...Label) *Counter {
	if ns == nil {
		return nil
	}
	return ns.r.Counter(ns.prefix+name, help, labels...)
}

// Gauge registers a gauge named prefix+name.
func (ns *Namespace) Gauge(name, help string, labels ...Label) *Gauge {
	if ns == nil {
		return nil
	}
	return ns.r.Gauge(ns.prefix+name, help, labels...)
}

// Histogram registers a histogram named prefix+name.
func (ns *Namespace) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if ns == nil {
		return nil
	}
	return ns.r.Histogram(ns.prefix+name, help, buckets, labels...)
}

// sortedLabels copies and sorts a label set by key.
func sortedLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	for i := 1; i < len(out); i++ {
		if out[i].Key == out[i-1].Key {
			panic(fmt.Sprintf("telemetry: duplicate label key %q", out[i].Key))
		}
	}
	for _, l := range out {
		validateName(l.Key)
	}
	return out
}

// seriesKey builds the registry key: name plus the sorted label pairs.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Key)
		b.WriteByte(1)
		b.WriteString(l.Value)
	}
	return b.String()
}

// validateName enforces the Prometheus identifier charset. Metric names
// are compile-time constants, so violations are programmer errors.
func validateName(name string) {
	if name == "" {
		panic("telemetry: empty metric or label name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			panic(fmt.Sprintf("telemetry: invalid metric or label name %q", name))
		}
	}
}
