package simtime

import (
	"math/rand"
	"testing"
	"time"

	"bcwan/internal/telemetry"
)

// seedSim is the pre-heap Sim engine, copied verbatim from the seed tree:
// a flat waiter slice with an O(n) earliest scan and a swap-delete removal.
// It is the reference the heap engine is property-tested against.
type seedSim struct {
	now     time.Time
	waiters []*seedWaiter
}

type seedWaiter struct {
	at time.Time
	ch chan time.Time
}

func newSeedSim(origin time.Time) *seedSim { return &seedSim{now: origin} }

func (s *seedSim) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- s.now
		return ch
	}
	s.waiters = append(s.waiters, &seedWaiter{at: s.now.Add(d), ch: ch})
	return ch
}

func (s *seedSim) Advance(d time.Duration) {
	target := s.now.Add(d)
	for {
		w := s.earliest()
		if w == nil || w.at.After(target) {
			break
		}
		s.now = w.at
		s.remove(w)
		w.ch <- s.now
	}
	s.now = target
}

// step fires exactly the earliest waiter — one iteration of the seed
// Advance loop — so tests can observe the seed engine's per-timer order.
func (s *seedSim) step() bool {
	w := s.earliest()
	if w == nil {
		return false
	}
	s.now = w.at
	s.remove(w)
	w.ch <- s.now
	return true
}

func (s *seedSim) earliest() *seedWaiter {
	var min *seedWaiter
	for _, w := range s.waiters {
		if min == nil || w.at.Before(min.at) {
			min = w
		}
	}
	return min
}

func (s *seedSim) remove(target *seedWaiter) {
	for i, w := range s.waiters {
		if w == target {
			s.waiters[i] = s.waiters[len(s.waiters)-1]
			s.waiters = s.waiters[:len(s.waiters)-1]
			return
		}
	}
}

// drainOrder empties chans of exactly one newly fired timer and returns its
// index, or -1 if none fired since the last call.
func drainOrder(chans []<-chan time.Time, fired []bool) int {
	for i, ch := range chans {
		if fired[i] {
			continue
		}
		select {
		case <-ch:
			fired[i] = true
			return i
		default:
		}
	}
	return -1
}

// TestSimEqualDeadlinesFIFO pins the satellite fix: timers sharing a
// deadline fire in arm order even when earlier removals have shuffled
// internal storage. The seed engine's swap-delete broke this.
func TestSimEqualDeadlinesFIFO(t *testing.T) {
	s := NewSim(origin)
	const n = 10
	chans := make([]<-chan time.Time, n)
	// An early timer whose removal reorders a slice-based store.
	early := s.After(time.Second)
	for i := range chans {
		chans[i] = s.After(5 * time.Second)
	}
	s.Advance(time.Second)
	<-early
	fired := make([]bool, n)
	for want := 0; want < n; want++ {
		if !s.Step() {
			t.Fatalf("Step() = false with %d timers left", n-want)
		}
		got := drainOrder(chans, fired)
		if got != want {
			t.Fatalf("equal-deadline fire order: got timer %d, want %d", got, want)
		}
	}
}

// makeDelays builds a random delay schedule; distinct guarantees no two
// timers share a deadline, otherwise coarse buckets force many ties.
func makeDelays(rng *rand.Rand, n int, distinct bool) []time.Duration {
	delays := make([]time.Duration, n)
	for i := range delays {
		if distinct {
			delays[i] = time.Duration(rng.Intn(100000)+1)*time.Second + time.Duration(i)*time.Millisecond
		} else {
			delays[i] = time.Duration(rng.Intn(16)+1) * time.Second
		}
	}
	return delays
}

// TestSimMatchesSeedEngineWindows drives both engines through identical
// random Advance windows: after every window the fired timer sets and the
// clock reading must agree exactly.
func TestSimMatchesSeedEngineWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(1810))
	for trial := 0; trial < 20; trial++ {
		const n = 64
		newClk := NewSim(origin)
		oldClk := newSeedSim(origin)
		delays := makeDelays(rng, n, trial%2 == 0)
		newCh := make([]<-chan time.Time, n)
		oldCh := make([]<-chan time.Time, n)
		for i, d := range delays {
			newCh[i] = newClk.After(d)
			oldCh[i] = oldClk.After(d)
		}
		newFired := make([]bool, n)
		oldFired := make([]bool, n)
		for window := 0; window < 30; window++ {
			w := time.Duration(rng.Intn(7000)) * time.Millisecond * 2
			newClk.Advance(w)
			oldClk.Advance(w)
			for drainOrder(newCh, newFired) >= 0 {
			}
			for drainOrder(oldCh, oldFired) >= 0 {
			}
			if got, want := newClk.Now(), oldClk.now; !got.Equal(want) {
				t.Fatalf("trial %d: clocks diverged: new %v old %v", trial, got, want)
			}
			for i := range newFired {
				if newFired[i] != oldFired[i] {
					t.Fatalf("trial %d window %d: timer %d fired=%v, seed fired=%v",
						trial, window, i, newFired[i], oldFired[i])
				}
			}
		}
		if newClk.Pending() != len(oldClk.waiters) {
			t.Fatalf("trial %d: pending %d, seed %d", trial, newClk.Pending(), len(oldClk.waiters))
		}
	}
}

// TestSimMatchesSeedEngineOrder steps both engines one fire at a time and
// compares per-timer order. With distinct deadlines the global orders must
// be identical; with ties the engines must agree on every fire instant and
// the heap engine must additionally be FIFO within each instant (which the
// seed engine's swap-delete never guaranteed).
func TestSimMatchesSeedEngineOrder(t *testing.T) {
	for _, tc := range []struct {
		name     string
		distinct bool
	}{{"distinct-deadlines", true}, {"with-ties", false}} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(2018))
			for trial := 0; trial < 10; trial++ {
				const n = 64
				newClk := NewSim(origin)
				oldClk := newSeedSim(origin)
				delays := makeDelays(rng, n, tc.distinct)
				newCh := make([]<-chan time.Time, n)
				oldCh := make([]<-chan time.Time, n)
				for i, d := range delays {
					newCh[i] = newClk.After(d)
					oldCh[i] = oldClk.After(d)
				}
				newFired := make([]bool, n)
				oldFired := make([]bool, n)
				var newOrder, oldOrder []int
				for step := 0; step < n; step++ {
					if !newClk.Step() || !oldClk.step() {
						t.Fatalf("trial %d: engine drained early at step %d", trial, step)
					}
					ni := drainOrder(newCh, newFired)
					oi := drainOrder(oldCh, oldFired)
					if ni < 0 || oi < 0 {
						t.Fatalf("trial %d step %d: no timer observed (new %d, old %d)", trial, step, ni, oi)
					}
					newOrder = append(newOrder, ni)
					oldOrder = append(oldOrder, oi)
					if delays[ni] != delays[oi] {
						t.Fatalf("trial %d step %d: fire instants diverged: new timer %d (%v) old timer %d (%v)",
							trial, step, ni, delays[ni], oi, delays[oi])
					}
					if got, want := newClk.Now(), oldClk.now; !got.Equal(want) {
						t.Fatalf("trial %d step %d: clocks diverged: new %v old %v", trial, step, got, want)
					}
				}
				if tc.distinct {
					for i := range newOrder {
						if newOrder[i] != oldOrder[i] {
							t.Fatalf("trial %d: fire order diverged at %d:\nnew %v\nold %v",
								trial, i, newOrder, oldOrder)
						}
					}
				} else {
					// FIFO within ties: arm order is index order, so within
					// a run of equal delays the indexes must increase.
					for i := 1; i < len(newOrder); i++ {
						if delays[newOrder[i]] == delays[newOrder[i-1]] && newOrder[i] < newOrder[i-1] {
							t.Fatalf("trial %d: heap engine not FIFO within tie: %v", trial, newOrder)
						}
					}
				}
			}
		})
	}
}

func TestSimTimerStop(t *testing.T) {
	s := NewSim(origin)
	tm := s.NewTimer(time.Second)
	if s.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", s.Pending())
	}
	if !tm.Stop() {
		t.Fatal("Stop() on pending timer = false")
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending() after Stop = %d, want 0", s.Pending())
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true")
	}
	s.Advance(2 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("stopped timer fired")
	default:
	}
}

func TestSimTimerStopAfterFire(t *testing.T) {
	s := NewSim(origin)
	tm := s.NewTimer(time.Second)
	s.Advance(time.Second)
	if tm.Stop() {
		t.Fatal("Stop() after fire = true")
	}
	if at := <-tm.C(); !at.Equal(origin.Add(time.Second)) {
		t.Fatalf("fired at %v, want %v", at, origin.Add(time.Second))
	}
}

func TestSimTimerStopMiddleOfHeap(t *testing.T) {
	s := NewSim(origin)
	const n = 32
	timers := make([]Timer, n)
	for i := range timers {
		timers[i] = s.NewTimer(time.Duration(i+1) * time.Second)
	}
	// Stop every third timer, then check only the survivors fire, in order.
	stopped := make(map[int]bool)
	for i := 0; i < n; i += 3 {
		if !timers[i].Stop() {
			t.Fatalf("Stop(%d) = false", i)
		}
		stopped[i] = true
	}
	prev := origin
	for i, tm := range timers {
		if stopped[i] {
			continue
		}
		s.Advance(s.timeUntil(tm))
		at := <-tm.C()
		if !at.After(prev) {
			t.Fatalf("timer %d fired at %v, not after %v", i, at, prev)
		}
		prev = at
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", s.Pending())
	}
}

// timeUntil is a test helper: the duration from now until tm's deadline.
func (s *Sim) timeUntil(tm Timer) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return tm.(*simTimer).at.Sub(s.now)
}

func TestRealTimerStop(t *testing.T) {
	c := NewReal()
	tm := c.NewTimer(time.Hour)
	if !tm.Stop() {
		t.Fatal("Stop() on pending real timer = false")
	}
	tm = c.NewTimer(time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(5 * time.Second):
		t.Fatal("real timer did not fire")
	}
	if tm.Stop() {
		t.Fatal("Stop() after fire = true")
	}
}

// TestSimAdvanceDeliversOutsideLock pins the satellite restructure: Advance
// must not hold s.mu across the channel send, so a receiver that re-arms
// immediately can never deadlock against it even if the buffer contract
// changes. The test swaps in an unbuffered channel to force the send to
// park mid-Advance, then proves the clock is still usable.
func TestSimAdvanceDeliversOutsideLock(t *testing.T) {
	s := NewSim(origin)
	tm := s.NewTimer(time.Second).(*simTimer)
	tm.ch = make(chan time.Time) // unbuffered: delivery must block
	advanced := make(chan struct{})
	go func() {
		s.Advance(2 * time.Second)
		close(advanced)
	}()
	// Let Advance park in the send.
	time.Sleep(10 * time.Millisecond)
	armed := make(chan struct{})
	go func() {
		s.After(10 * time.Second) // deadlocks here if Advance holds the lock
		close(armed)
	}()
	select {
	case <-armed:
	case <-time.After(5 * time.Second):
		t.Fatal("clock locked while Advance was delivering")
	}
	if at := <-tm.C(); !at.Equal(origin.Add(time.Second)) {
		t.Fatalf("fired at %v, want %v", at, origin.Add(time.Second))
	}
	select {
	case <-advanced:
	case <-time.After(5 * time.Second):
		t.Fatal("Advance did not return after delivery was received")
	}
}

// TestSimConcurrentRearmStress hammers the fire-outside-lock path: many
// goroutines chain-sleep on the clock while the driver advances.
func TestSimConcurrentRearmStress(t *testing.T) {
	s := NewSim(origin)
	const sleepers, hops = 16, 50
	done := make(chan struct{}, sleepers)
	for i := 0; i < sleepers; i++ {
		i := i
		go func() {
			for h := 0; h < hops; h++ {
				s.Sleep(time.Duration(i+h+1) * time.Millisecond)
			}
			done <- struct{}{}
		}()
	}
	finished := 0
	deadline := time.Now().Add(30 * time.Second)
	for finished < sleepers {
		s.Advance(time.Second)
		for {
			select {
			case <-done:
				finished++
				continue
			default:
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stress did not converge: %d/%d sleepers done", finished, sleepers)
		}
	}
}

func TestSchedulerEventCancel(t *testing.T) {
	sc := NewScheduler(origin)
	ran := false
	ev := sc.After(time.Second, func(time.Time) { ran = true })
	keep := 0
	sc.After(time.Second, func(time.Time) { keep++ })
	sc.After(2*time.Second, func(time.Time) { keep++ })
	if !ev.Cancel() {
		t.Fatal("Cancel() on pending event = false")
	}
	if ev.Cancel() {
		t.Fatal("second Cancel() = true")
	}
	if sc.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", sc.Len())
	}
	sc.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if keep != 2 {
		t.Fatalf("surviving events ran %d times, want 2", keep)
	}
	var nilEv *Event
	if nilEv.Cancel() {
		t.Fatal("Cancel() on nil event = true")
	}
}

func TestSchedulerCancelAfterRun(t *testing.T) {
	sc := NewScheduler(origin)
	ev := sc.After(time.Second, func(time.Time) {})
	sc.Run()
	if ev.Cancel() {
		t.Fatal("Cancel() after run = true")
	}
}

func TestSchedulerCancelPreservesFIFO(t *testing.T) {
	sc := NewScheduler(origin)
	var got []int
	var evs []*Event
	for i := 0; i < 10; i++ {
		i := i
		evs = append(evs, sc.After(time.Second, func(time.Time) { got = append(got, i) }))
	}
	evs[0].Cancel()
	evs[5].Cancel()
	evs[9].Cancel()
	sc.Run()
	want := []int{1, 2, 3, 4, 6, 7, 8}
	if len(got) != len(want) {
		t.Fatalf("ran %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ran %v, want %v", got, want)
		}
	}
}

func TestPendingTimerGauges(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := NewSim(origin)
	s.Instrument(reg)
	tm := s.NewTimer(time.Second)
	s.NewTimer(2 * time.Second)
	g := reg.Gauge("bcwan_sim_pending_timers", "")
	if g.Value() != 2 {
		t.Fatalf("pending gauge = %d, want 2", g.Value())
	}
	tm.Stop()
	if g.Value() != 1 {
		t.Fatalf("pending gauge after Stop = %d, want 1", g.Value())
	}
	s.Advance(time.Hour)
	if g.Value() != 0 {
		t.Fatalf("pending gauge after Advance = %d, want 0", g.Value())
	}

	reg2 := telemetry.NewRegistry()
	sc := NewScheduler(origin)
	sc.Instrument(reg2)
	ev := sc.After(time.Second, func(time.Time) {})
	sc.After(2*time.Second, func(time.Time) {})
	g2 := reg2.Gauge("bcwan_sim_pending_timers", "")
	if g2.Value() != 2 {
		t.Fatalf("scheduler gauge = %d, want 2", g2.Value())
	}
	ev.Cancel()
	sc.Run()
	if g2.Value() != 0 {
		t.Fatalf("scheduler gauge after run = %d, want 0", g2.Value())
	}
}

// BenchmarkSimTimers measures arming n timers with random deadlines and
// draining them through Advance — the heap engine vs the seed O(n²) engine.
func BenchmarkSimTimers(b *testing.B) {
	bench := func(b *testing.B, n int, seed bool) {
		rng := rand.New(rand.NewSource(42))
		delays := make([]time.Duration, n)
		for i := range delays {
			delays[i] = time.Duration(rng.Intn(3_600_000)) * time.Millisecond
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if seed {
				s := newSeedSim(origin)
				for _, d := range delays {
					s.After(d)
				}
				s.Advance(2 * time.Hour)
			} else {
				s := NewSim(origin)
				for _, d := range delays {
					s.After(d)
				}
				s.Advance(2 * time.Hour)
			}
		}
	}
	for _, n := range []int{1_000, 10_000, 100_000} {
		n := n
		b.Run(sizeName("heap", n), func(b *testing.B) { bench(b, n, false) })
	}
	// The seed engine is quadratic; 100k pending would take minutes per
	// iteration, so the reference stops at 10k.
	for _, n := range []int{1_000, 10_000} {
		n := n
		b.Run(sizeName("seed", n), func(b *testing.B) { bench(b, n, true) })
	}
}

func sizeName(engine string, n int) string {
	switch {
	case n >= 1000 && n%1000 == 0:
		return engine + "/" + itoa(n/1000) + "k"
	default:
		return engine + "/" + itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
