// Package simtime provides a clock abstraction with a real-time
// implementation and a discrete-event simulated implementation.
//
// All BcWAN protocol components take a Clock so that the experiment
// harness can replay thousands of exchanges — whose real-world latency is
// measured in seconds to minutes — in milliseconds of wall time, while the
// daemons and examples run on the real clock.
package simtime

import (
	"sync"
	"time"
)

// Clock is the time source used by all protocol components.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// Sleep blocks the calling goroutine for d.
	Sleep(d time.Duration)
	// After returns a channel that receives the then-current time once d
	// has elapsed.
	After(d time.Duration) <-chan time.Time
}

// Real is a Clock backed by the wall clock.
type Real struct{}

var _ Clock = Real{}

// NewReal returns a wall-clock Clock.
func NewReal() Real { return Real{} }

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sim is a discrete-event simulated Clock. Goroutines that Sleep on a Sim
// clock are suspended until the driver advances virtual time past their
// wake-up instant via Advance or RunUntilIdle.
//
// The zero value is not usable; construct with NewSim.
type Sim struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*waiter
}

type waiter struct {
	at time.Time
	ch chan time.Time
}

var _ Clock = (*Sim)(nil)

// NewSim returns a simulated clock starting at the given origin.
func NewSim(origin time.Time) *Sim {
	return &Sim{now: origin}
}

// Now implements Clock.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Sleep implements Clock. It suspends the caller until virtual time
// reaches now+d.
func (s *Sim) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-s.After(d)
}

// After implements Clock.
func (s *Sim) After(d time.Duration) <-chan time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- s.now
		return ch
	}
	s.waiters = append(s.waiters, &waiter{at: s.now.Add(d), ch: ch})
	return ch
}

// Advance moves virtual time forward by d, firing every timer whose
// deadline falls inside the window in deadline order.
func (s *Sim) Advance(d time.Duration) {
	s.mu.Lock()
	target := s.now.Add(d)
	for {
		w := s.earliestLocked()
		if w == nil || w.at.After(target) {
			break
		}
		s.now = w.at
		s.removeLocked(w)
		w.ch <- s.now
	}
	s.now = target
	s.mu.Unlock()
}

// Step advances virtual time to the next pending timer deadline and fires
// it. It reports whether a timer was pending.
func (s *Sim) Step() bool {
	s.mu.Lock()
	w := s.earliestLocked()
	if w == nil {
		s.mu.Unlock()
		return false
	}
	s.now = w.at
	s.removeLocked(w)
	w.ch <- s.now
	s.mu.Unlock()
	return true
}

// Pending reports how many timers are waiting to fire.
func (s *Sim) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiters)
}

func (s *Sim) earliestLocked() *waiter {
	var min *waiter
	for _, w := range s.waiters {
		if min == nil || w.at.Before(min.at) {
			min = w
		}
	}
	return min
}

func (s *Sim) removeLocked(target *waiter) {
	for i, w := range s.waiters {
		if w == target {
			s.waiters[i] = s.waiters[len(s.waiters)-1]
			s.waiters = s.waiters[:len(s.waiters)-1]
			return
		}
	}
}
