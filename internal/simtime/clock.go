// Package simtime provides a clock abstraction with a real-time
// implementation and a discrete-event simulated implementation.
//
// All BcWAN protocol components take a Clock so that the experiment
// harness can replay thousands of exchanges — whose real-world latency is
// measured in seconds to minutes — in milliseconds of wall time, while the
// daemons and examples run on the real clock.
package simtime

import (
	"container/heap"
	"sync"
	"time"

	"bcwan/internal/telemetry"
)

// Clock is the time source used by all protocol components.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// Sleep blocks the calling goroutine for d.
	Sleep(d time.Duration)
	// After returns a channel that receives the then-current time once d
	// has elapsed.
	After(d time.Duration) <-chan time.Time
	// NewTimer returns a cancellable one-shot timer that fires once d has
	// elapsed. Components that arm a timeout per operation must Stop the
	// timer on the fast path, or every completed operation leaks a pending
	// waiter until its deadline passes.
	NewTimer(d time.Duration) Timer
}

// Timer is a cancellable one-shot timer armed via Clock.NewTimer.
type Timer interface {
	// C returns the channel the fire time is delivered on. The channel has
	// a one-element buffer, so a fired timer never blocks its clock.
	C() <-chan time.Time
	// Stop cancels the timer and reports whether it was still pending.
	// False means the timer already fired (its time may be sitting in C)
	// or was stopped before. Stop does not drain C.
	Stop() bool
}

// Real is a Clock backed by the wall clock.
type Real struct{}

var _ Clock = Real{}

// NewReal returns a wall-clock Clock.
func NewReal() Real { return Real{} }

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// NewTimer implements Clock.
func (Real) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

type realTimer struct{ t *time.Timer }

func (rt realTimer) C() <-chan time.Time { return rt.t.C }
func (rt realTimer) Stop() bool          { return rt.t.Stop() }

// Sim is a discrete-event simulated Clock. Goroutines that Sleep on a Sim
// clock are suspended until the driver advances virtual time past their
// wake-up instant via Advance or Step.
//
// Pending timers live in a min-heap keyed on (deadline, arm sequence), so
// arming and firing are O(log n) and timers sharing a deadline fire in the
// order they were armed (FIFO) — the fire order is deterministic no matter
// how many timers are pending.
//
// The zero value is not usable; construct with NewSim.
type Sim struct {
	mu      sync.Mutex
	now     time.Time
	seq     uint64
	timers  timerHeap
	pending *telemetry.Gauge
}

var _ Clock = (*Sim)(nil)

// NewSim returns a simulated clock starting at the given origin.
func NewSim(origin time.Time) *Sim {
	return &Sim{now: origin}
}

// Instrument registers the bcwan_sim_pending_timers gauge on reg. A nil
// registry is a no-op.
func (s *Sim) Instrument(reg *telemetry.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending = reg.Namespace("sim").Gauge(
		"pending_timers", "Timers waiting to fire on the simulated clock.")
	s.pending.Set(int64(len(s.timers)))
}

// Now implements Clock.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Sleep implements Clock. It suspends the caller until virtual time
// reaches now+d.
func (s *Sim) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-s.After(d)
}

// After implements Clock.
func (s *Sim) After(d time.Duration) <-chan time.Time {
	return s.NewTimer(d).C()
}

// NewTimer implements Clock. A non-positive duration delivers the current
// virtual time immediately; Stop then reports false.
func (s *Sim) NewTimer(d time.Duration) Timer {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := &simTimer{sim: s, ch: make(chan time.Time, 1), idx: -1}
	if d <= 0 {
		t.ch <- s.now
		return t
	}
	t.at = s.now.Add(d)
	s.seq++
	t.seq = s.seq
	heap.Push(&s.timers, t)
	s.pending.Set(int64(len(s.timers)))
	return t
}

// Advance moves virtual time forward by d, firing every timer whose
// deadline falls inside the window in deadline order (FIFO among equal
// deadlines).
//
// Fire times are delivered with s.mu released: the buffered channel means
// the send can never block today, but dropping the lock first guarantees a
// receiver that wakes immediately and re-arms via After/NewTimer cannot
// deadlock against Advance even if the channel contract ever changes. A
// timer armed by such a receiver joins this same window if its deadline is
// inside it.
func (s *Sim) Advance(d time.Duration) {
	s.mu.Lock()
	target := s.now.Add(d)
	for len(s.timers) > 0 && !s.timers[0].at.After(target) {
		t := heap.Pop(&s.timers).(*simTimer)
		t.idx = -1
		s.now = t.at
		s.pending.Set(int64(len(s.timers)))
		s.mu.Unlock()
		t.ch <- t.at
		s.mu.Lock()
		if target.Before(s.now) {
			// A concurrent Advance moved time past our window while the
			// lock was released; never rewind.
			target = s.now
		}
	}
	if s.now.Before(target) {
		s.now = target
	}
	s.mu.Unlock()
}

// Step advances virtual time to the next pending timer deadline and fires
// it. It reports whether a timer was pending. Like Advance, the fire time
// is delivered with the lock released.
func (s *Sim) Step() bool {
	s.mu.Lock()
	if len(s.timers) == 0 {
		s.mu.Unlock()
		return false
	}
	t := heap.Pop(&s.timers).(*simTimer)
	t.idx = -1
	s.now = t.at
	s.pending.Set(int64(len(s.timers)))
	s.mu.Unlock()
	t.ch <- t.at
	return true
}

// Pending reports how many timers are waiting to fire.
func (s *Sim) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.timers)
}

// simTimer is a pending (or fired) one-shot timer on a Sim clock.
type simTimer struct {
	sim *Sim
	at  time.Time
	seq uint64
	ch  chan time.Time
	idx int // heap index, -1 once fired or stopped
}

func (t *simTimer) C() <-chan time.Time { return t.ch }

// Stop removes the timer from the heap in O(log n) via its tracked index.
func (t *simTimer) Stop() bool {
	s := t.sim
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.idx < 0 {
		return false
	}
	heap.Remove(&s.timers, t.idx)
	t.idx = -1
	s.pending.Set(int64(len(s.timers)))
	return true
}

// timerHeap is a min-heap ordered by (at, seq) with index tracking for
// O(log n) cancellation.
type timerHeap []*simTimer

func (h timerHeap) Len() int { return len(h) }

func (h timerHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}

func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *timerHeap) Push(x any) {
	t := x.(*simTimer)
	t.idx = len(*h)
	*h = append(*h, t)
}

func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
