package simtime

import (
	"container/heap"
	"time"

	"bcwan/internal/telemetry"
)

// Scheduler is a deterministic discrete-event scheduler. Events are
// executed strictly in timestamp order (FIFO among equal timestamps) on the
// caller's goroutine, so simulations built on it are single-threaded and
// reproducible.
//
// Handlers may schedule further events; Run keeps going until the queue is
// empty or the optional horizon is reached.
type Scheduler struct {
	now     time.Time
	queue   eventQueue
	seq     uint64
	pending *telemetry.Gauge
}

// Event is a scheduled callback handle. It can be cancelled while still
// queued; components that schedule a timeout per operation should Cancel on
// the fast path so completed operations stop leaking one-shot events.
type Event struct {
	at    time.Time
	seq   uint64
	fn    func(now time.Time)
	idx   int // heap index, -1 once run or cancelled
	sched *Scheduler
}

// Cancel removes the event from the queue in O(log n) and reports whether
// it was still pending. False means it already ran or was cancelled.
func (e *Event) Cancel() bool {
	if e == nil || e.idx < 0 {
		return false
	}
	s := e.sched
	heap.Remove(&s.queue, e.idx)
	e.idx = -1
	e.fn = nil
	s.pending.Set(int64(len(s.queue)))
	return true
}

// NewScheduler returns a Scheduler whose virtual time starts at origin.
func NewScheduler(origin time.Time) *Scheduler {
	return &Scheduler{now: origin}
}

// Instrument registers the bcwan_sim_pending_timers gauge on reg. A nil
// registry is a no-op.
func (s *Scheduler) Instrument(reg *telemetry.Registry) {
	s.pending = reg.Namespace("sim").Gauge(
		"pending_timers", "Events waiting to run on the discrete-event scheduler.")
	s.pending.Set(int64(len(s.queue)))
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Time { return s.now }

// At schedules fn to run at the absolute instant t. Instants in the past
// run at the current virtual time. The returned handle may be ignored or
// used to Cancel the event while it is still queued.
func (s *Scheduler) At(t time.Time, fn func(now time.Time)) *Event {
	if t.Before(s.now) {
		t = s.now
	}
	s.seq++
	ev := &Event{at: t, seq: s.seq, fn: fn, sched: s}
	heap.Push(&s.queue, ev)
	s.pending.Set(int64(len(s.queue)))
	return ev
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, fn func(now time.Time)) *Event {
	return s.At(s.now.Add(d), fn)
}

// Len reports the number of pending events.
func (s *Scheduler) Len() int { return s.queue.Len() }

// Step executes the earliest pending event, advancing virtual time to its
// timestamp. It reports whether an event was executed.
func (s *Scheduler) Step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	ev, ok := heap.Pop(&s.queue).(*Event)
	if !ok {
		return false
	}
	ev.idx = -1
	s.now = ev.at
	s.pending.Set(int64(len(s.queue)))
	ev.fn(s.now)
	return true
}

// Run executes events until the queue drains.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps not after the horizon, then sets
// virtual time to the horizon. Events beyond it stay queued.
func (s *Scheduler) RunUntil(horizon time.Time) {
	for s.queue.Len() > 0 && !s.queue[0].at.After(horizon) {
		s.Step()
	}
	if s.now.Before(horizon) {
		s.now = horizon
	}
}

// eventQueue is a min-heap ordered by (at, seq) with index tracking for
// O(log n) cancellation.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at.Equal(q[j].at) {
		return q[i].seq < q[j].seq
	}
	return q[i].at.Before(q[j].at)
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		return
	}
	ev.idx = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
