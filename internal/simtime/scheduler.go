package simtime

import (
	"container/heap"
	"time"
)

// Scheduler is a deterministic discrete-event scheduler. Events are
// executed strictly in timestamp order (FIFO among equal timestamps) on the
// caller's goroutine, so simulations built on it are single-threaded and
// reproducible.
//
// Handlers may schedule further events; Run keeps going until the queue is
// empty or the optional horizon is reached.
type Scheduler struct {
	now   time.Time
	queue eventQueue
	seq   uint64
}

// Event is a scheduled callback.
type event struct {
	at  time.Time
	seq uint64
	fn  func(now time.Time)
}

// NewScheduler returns a Scheduler whose virtual time starts at origin.
func NewScheduler(origin time.Time) *Scheduler {
	return &Scheduler{now: origin}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Time { return s.now }

// At schedules fn to run at the absolute instant t. Instants in the past
// run at the current virtual time.
func (s *Scheduler) At(t time.Time, fn func(now time.Time)) {
	if t.Before(s.now) {
		t = s.now
	}
	s.seq++
	heap.Push(&s.queue, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, fn func(now time.Time)) {
	s.At(s.now.Add(d), fn)
}

// Len reports the number of pending events.
func (s *Scheduler) Len() int { return s.queue.Len() }

// Step executes the earliest pending event, advancing virtual time to its
// timestamp. It reports whether an event was executed.
func (s *Scheduler) Step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	ev, ok := heap.Pop(&s.queue).(*event)
	if !ok {
		return false
	}
	s.now = ev.at
	ev.fn(s.now)
	return true
}

// Run executes events until the queue drains.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps not after the horizon, then sets
// virtual time to the horizon. Events beyond it stay queued.
func (s *Scheduler) RunUntil(horizon time.Time) {
	for s.queue.Len() > 0 && !s.queue[0].at.After(horizon) {
		s.Step()
	}
	if s.now.Before(horizon) {
		s.now = horizon
	}
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at.Equal(q[j].at) {
		return q[i].seq < q[j].seq
	}
	return q[i].at.Before(q[j].at)
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		return
	}
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
