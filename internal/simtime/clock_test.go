package simtime

import (
	"testing"
	"time"
)

var origin = time.Date(2018, 12, 10, 0, 0, 0, 0, time.UTC)

func TestRealClockNow(t *testing.T) {
	c := NewReal()
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real.Now() = %v, want within [%v, %v]", got, before, after)
	}
}

func TestRealClockAfter(t *testing.T) {
	c := NewReal()
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(5 * time.Second):
		t.Fatal("Real.After(1ms) did not fire within 5s")
	}
}

func TestSimNowStartsAtOrigin(t *testing.T) {
	s := NewSim(origin)
	if got := s.Now(); !got.Equal(origin) {
		t.Fatalf("Now() = %v, want %v", got, origin)
	}
}

func TestSimAdvanceMovesTime(t *testing.T) {
	s := NewSim(origin)
	s.Advance(90 * time.Second)
	if got, want := s.Now(), origin.Add(90*time.Second); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestSimAfterFiresOnAdvance(t *testing.T) {
	s := NewSim(origin)
	ch := s.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired before Advance")
	default:
	}
	s.Advance(10 * time.Second)
	select {
	case at := <-ch:
		if want := origin.Add(10 * time.Second); !at.Equal(want) {
			t.Fatalf("fired at %v, want %v", at, want)
		}
	default:
		t.Fatal("timer did not fire after Advance")
	}
}

func TestSimAfterZeroFiresImmediately(t *testing.T) {
	s := NewSim(origin)
	select {
	case <-s.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestSimAdvanceFiresTimersInOrder(t *testing.T) {
	s := NewSim(origin)
	ch2 := s.After(2 * time.Second)
	ch1 := s.After(1 * time.Second)
	s.Advance(5 * time.Second)
	at1 := <-ch1
	at2 := <-ch2
	if !at1.Before(at2) {
		t.Fatalf("timers out of order: %v then %v", at1, at2)
	}
}

func TestSimStep(t *testing.T) {
	s := NewSim(origin)
	if s.Step() {
		t.Fatal("Step() = true with no timers")
	}
	ch := s.After(time.Minute)
	if !s.Step() {
		t.Fatal("Step() = false with pending timer")
	}
	<-ch
	if got, want := s.Now(), origin.Add(time.Minute); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestSimSleepUnblocksOnAdvance(t *testing.T) {
	s := NewSim(origin)
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Sleep(time.Second)
	}()
	// Wait for the sleeper to register.
	deadline := time.Now().Add(5 * time.Second)
	for s.Pending() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sleeper never registered")
		}
		time.Sleep(time.Millisecond)
	}
	s.Advance(time.Second)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep did not return after Advance")
	}
}

func TestSchedulerRunsInTimestampOrder(t *testing.T) {
	sc := NewScheduler(origin)
	var got []int
	sc.After(3*time.Second, func(time.Time) { got = append(got, 3) })
	sc.After(1*time.Second, func(time.Time) { got = append(got, 1) })
	sc.After(2*time.Second, func(time.Time) { got = append(got, 2) })
	sc.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
}

func TestSchedulerFIFOAmongEqualTimestamps(t *testing.T) {
	sc := NewScheduler(origin)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		sc.After(time.Second, func(time.Time) { got = append(got, i) })
	}
	sc.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("equal-timestamp order %v not FIFO", got)
		}
	}
}

func TestSchedulerHandlersCanSchedule(t *testing.T) {
	sc := NewScheduler(origin)
	count := 0
	var tick func(time.Time)
	tick = func(time.Time) {
		count++
		if count < 5 {
			sc.After(time.Second, tick)
		}
	}
	sc.After(time.Second, tick)
	sc.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if got, want := sc.Now(), origin.Add(5*time.Second); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestSchedulerRunUntilLeavesFutureEvents(t *testing.T) {
	sc := NewScheduler(origin)
	ran := 0
	sc.After(time.Second, func(time.Time) { ran++ })
	sc.After(time.Hour, func(time.Time) { ran++ })
	sc.RunUntil(origin.Add(time.Minute))
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
	if got, want := sc.Now(), origin.Add(time.Minute); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
	if sc.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", sc.Len())
	}
}

func TestSchedulerPastEventRunsNow(t *testing.T) {
	sc := NewScheduler(origin)
	sc.RunUntil(origin.Add(time.Hour))
	var at time.Time
	sc.At(origin, func(now time.Time) { at = now })
	sc.Run()
	if want := origin.Add(time.Hour); !at.Equal(want) {
		t.Fatalf("past event ran at %v, want clamped to %v", at, want)
	}
}
