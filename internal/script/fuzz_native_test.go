package script

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// Native fuzz targets (go test -fuzz=FuzzName ./internal/script). The
// checked properties:
//
//  1. Verify never panics, whatever bytes arrive — the engine is
//     consensus code, a panic is a remote crash vector.
//  2. Parsing is a faithful codec: re-serializing the instruction
//     stream reproduces the input byte for byte, and parsing again
//     yields the same instructions.
//  3. Normalizing a script through the Builder (minimal pushes)
//     preserves evaluation: the engine must not care how a push was
//     encoded, only what it pushed.

// serializeInstructions re-encodes a parsed instruction stream
// preserving each push's original opcode form — the exact inverse of
// Parse, unlike the Builder, which normalizes.
func serializeInstructions(instrs []Instruction) Script {
	var out []byte
	for _, in := range instrs {
		switch {
		case in.Op >= 0x01 && in.Op <= maxDirectPush:
			out = append(out, byte(in.Op))
			out = append(out, in.Data...)
		case in.Op == OpPushData1:
			out = append(out, byte(OpPushData1), byte(len(in.Data)))
			out = append(out, in.Data...)
		case in.Op == OpPushData2:
			var n [2]byte
			binary.LittleEndian.PutUint16(n[:], uint16(len(in.Data)))
			out = append(out, byte(OpPushData2))
			out = append(out, n[:]...)
			out = append(out, in.Data...)
		default:
			out = append(out, byte(in.Op))
		}
	}
	return out
}

// pushedValue returns the stack element a push instruction produces,
// regardless of encoding (nil, false for non-push opcodes).
func pushedValue(in Instruction) ([]byte, bool) {
	if v, ok := in.Op.smallIntValue(); ok {
		return encodeNum(v), true
	}
	if in.Op.IsPush() {
		if in.Data == nil {
			return []byte{}, true
		}
		return in.Data, true
	}
	return nil, false
}

func fuzzSeedScripts() []Script {
	var hash [HashLen]byte
	krs := KeyRelease(KeyReleaseParams{
		RSAPubKey:         make([]byte, 72),
		GatewayPubKeyHash: hash,
		BuyerPubKeyHash:   hash,
		RefundHeight:      144,
	})
	return []Script{
		PayToPubKeyHash(hash),
		UnlockP2PKH(make([]byte, 70), make([]byte, 33)),
		NullData([]byte("bcwan")),
		krs,
		NewBuilder().AddInt64(17).AddInt64(-5).AddOp(OpAdd).Script(),
	}
}

// FuzzVerify feeds arbitrary unlock/lock pairs through the engine;
// reaching the end of the function means no panic.
func FuzzVerify(f *testing.F) {
	for _, s := range fuzzSeedScripts() {
		f.Add([]byte(nil), []byte(s))
		f.Add([]byte(s), []byte(s))
	}
	f.Fuzz(func(t *testing.T, unlock, lock []byte) {
		_ = Verify(unlock, lock, nil)
	})
}

// FuzzParseSerializeEval checks the codec and encoding-independence
// properties on every parseable input.
func FuzzParseSerializeEval(f *testing.F) {
	for _, s := range fuzzSeedScripts() {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		instrs, err := Parse(raw)
		if err != nil {
			return // unparseable input: nothing to round-trip
		}

		// Exact round trip: serialize(Parse(s)) == s, and parsing the
		// result reproduces the instruction stream.
		exact := serializeInstructions(instrs)
		if !bytes.Equal(exact, raw) {
			t.Fatalf("serialize(parse(s)) != s\n in: %x\nout: %x", raw, exact)
		}
		again, err := Parse(exact)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(again) != len(instrs) {
			t.Fatalf("re-parse produced %d instructions, want %d", len(again), len(instrs))
		}
		for i := range instrs {
			if instrs[i].Op != again[i].Op || !bytes.Equal(instrs[i].Data, again[i].Data) {
				t.Fatalf("instruction %d drifted: %v/%x vs %v/%x",
					i, instrs[i].Op, instrs[i].Data, again[i].Op, again[i].Data)
			}
		}

		// Normalized round trip: rebuilding through the Builder changes
		// push encodings but must not change what executes.
		norm := NewBuilder()
		for _, in := range instrs {
			if v, ok := pushedValue(in); ok {
				if sv, small := in.Op.smallIntValue(); small {
					norm.AddInt64(sv)
				} else {
					norm.AddData(v)
				}
				continue
			}
			norm.AddOp(in.Op)
		}
		normalized := norm.Script()
		normInstrs, err := Parse(normalized)
		if err != nil {
			t.Fatalf("normalized script unparseable: %v", err)
		}
		// Same push values and same non-push opcodes, in order.
		if len(normInstrs) != len(instrs) {
			t.Fatalf("normalization changed instruction count: %d vs %d", len(normInstrs), len(instrs))
		}
		for i := range instrs {
			ov, opush := pushedValue(instrs[i])
			nv, npush := pushedValue(normInstrs[i])
			if opush != npush {
				t.Fatalf("instruction %d changed push-ness", i)
			}
			if opush {
				if !bytes.Equal(ov, nv) {
					t.Fatalf("instruction %d pushes %x after normalization, was %x", i, nv, ov)
				}
			} else if instrs[i].Op != normInstrs[i].Op {
				t.Fatalf("instruction %d opcode changed: %v vs %v", i, instrs[i].Op, normInstrs[i].Op)
			}
		}
		// Encoding independence: the engine's verdict is identical.
		errOrig := Verify(nil, raw, nil)
		errNorm := Verify(nil, normalized, nil)
		if (errOrig == nil) != (errNorm == nil) {
			t.Fatalf("normalization changed the verdict: %v vs %v\n orig: %x\n norm: %x",
				errOrig, errNorm, raw, normalized)
		}
	})
}
