package script

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
)

// Script is a serialized script program.
type Script []byte

// Instruction is one decoded script element: either an opcode or a data
// push (in which case Data holds the pushed bytes).
type Instruction struct {
	Op   Opcode
	Data []byte
}

// Parse errors.
var (
	// ErrTruncatedPush reports a push opcode whose data runs past the end
	// of the script.
	ErrTruncatedPush = errors.New("script: truncated data push")
	// ErrScriptTooLarge reports a script above MaxScriptSize.
	ErrScriptTooLarge = errors.New("script: script too large")
)

// MaxScriptSize is the maximum serialized script length, mirroring
// Bitcoin's limit.
const MaxScriptSize = 10000

// Parse decodes a script into its instruction sequence.
func Parse(s Script) ([]Instruction, error) {
	if len(s) > MaxScriptSize {
		return nil, ErrScriptTooLarge
	}
	var out []Instruction
	for i := 0; i < len(s); {
		op := Opcode(s[i])
		i++
		switch {
		case op >= 0x01 && op <= maxDirectPush:
			n := int(op)
			if i+n > len(s) {
				return nil, ErrTruncatedPush
			}
			out = append(out, Instruction{Op: op, Data: s[i : i+n]})
			i += n
		case op == OpPushData1:
			if i >= len(s) {
				return nil, ErrTruncatedPush
			}
			n := int(s[i])
			i++
			if i+n > len(s) {
				return nil, ErrTruncatedPush
			}
			out = append(out, Instruction{Op: op, Data: s[i : i+n]})
			i += n
		case op == OpPushData2:
			if i+1 >= len(s) {
				return nil, ErrTruncatedPush
			}
			n := int(binary.LittleEndian.Uint16(s[i:]))
			i += 2
			if i+n > len(s) {
				return nil, ErrTruncatedPush
			}
			out = append(out, Instruction{Op: op, Data: s[i : i+n]})
			i += n
		default:
			out = append(out, Instruction{Op: op})
		}
	}
	return out, nil
}

// IsPushOnly reports whether the script consists solely of data pushes.
// Unlocking scripts are required to be push-only, which closes script
// malleability through executable unlocking programs.
func (s Script) IsPushOnly() bool {
	instrs, err := Parse(s)
	if err != nil {
		return false
	}
	for _, in := range instrs {
		if !in.Op.IsPush() {
			return false
		}
	}
	return true
}

// String disassembles the script for logs and debugging.
func (s Script) String() string {
	instrs, err := Parse(s)
	if err != nil {
		return fmt.Sprintf("<invalid script: %v>", err)
	}
	parts := make([]string, 0, len(instrs))
	for _, in := range instrs {
		if in.Data != nil || (in.Op >= 0x01 && in.Op <= maxDirectPush) {
			parts = append(parts, hex.EncodeToString(in.Data))
			continue
		}
		parts = append(parts, in.Op.String())
	}
	return strings.Join(parts, " ")
}

// Builder incrementally assembles a script. The zero value is ready to
// use; methods chain.
type Builder struct {
	buf []byte
}

// NewBuilder returns an empty script builder.
func NewBuilder() *Builder { return &Builder{} }

// AddOp appends a bare opcode.
func (b *Builder) AddOp(op Opcode) *Builder {
	b.buf = append(b.buf, byte(op))
	return b
}

// AddData appends a minimal push of data.
func (b *Builder) AddData(data []byte) *Builder {
	switch {
	case len(data) == 0:
		b.buf = append(b.buf, byte(OpFalse))
	case len(data) == 1 && data[0] >= 1 && data[0] <= 16:
		b.buf = append(b.buf, byte(OpTrue)+data[0]-1)
	case len(data) <= maxDirectPush:
		b.buf = append(b.buf, byte(len(data)))
		b.buf = append(b.buf, data...)
	case len(data) <= 0xff:
		b.buf = append(b.buf, byte(OpPushData1), byte(len(data)))
		b.buf = append(b.buf, data...)
	default:
		b.buf = append(b.buf, byte(OpPushData2))
		var n [2]byte
		binary.LittleEndian.PutUint16(n[:], uint16(len(data)))
		b.buf = append(b.buf, n[:]...)
		b.buf = append(b.buf, data...)
	}
	return b
}

// AddInt64 appends a push of the minimally encoded number.
func (b *Builder) AddInt64(n int64) *Builder {
	if n >= -1 && n <= 16 {
		switch {
		case n == 0:
			return b.AddOp(OpFalse)
		case n == -1:
			return b.AddOp(Op1Negate)
		default:
			return b.AddOp(OpTrue + Opcode(n-1))
		}
	}
	return b.AddData(encodeNum(n))
}

// Script returns the assembled script. The returned slice is a copy.
func (b *Builder) Script() Script {
	return append(Script(nil), b.buf...)
}
